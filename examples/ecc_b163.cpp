// Binary elliptic-curve arithmetic over GF(2^163) — the ECDSA application
// the paper's abstract leads with (all five NIST binary fields admit type II
// pentanomials; Table V benchmarks (163,66) and (163,68)).
//
// We work on the curve  y^2 + x*y = x^3 + a*x^2 + b  over GF(2^163) built
// from the type II pentanomial (m,n) = (163,66), find a point via
// half-trace point decompression, and exercise the group law.

#include "field/gf2m.h"

#include <cstdio>
#include <optional>

namespace {

using namespace gfr;
using Element = field::Field::Element;

struct Point {
    bool infinity = true;
    Element x;
    Element y;
};

class BinaryCurve {
public:
    BinaryCurve(const field::Field& f, Element a, Element b)
        : f_{&f}, a_{std::move(a)}, b_{std::move(b)} {}

    [[nodiscard]] bool on_curve(const Point& p) const {
        if (p.infinity) {
            return true;
        }
        // y^2 + xy == x^3 + a x^2 + b
        const auto lhs = f_->add(f_->sqr(p.y), f_->mul(p.x, p.y));
        const auto x2 = f_->sqr(p.x);
        const auto rhs = f_->add(f_->add(f_->mul(x2, p.x), f_->mul(a_, x2)), b_);
        return lhs == rhs;
    }

    [[nodiscard]] Point add(const Point& p, const Point& q) const {
        if (p.infinity) {
            return q;
        }
        if (q.infinity) {
            return p;
        }
        if (p.x == q.x) {
            if (f_->add(p.y, q.y) == p.x || (p.y == q.y && p.x.is_zero())) {
                return Point{};  // P + (-P) = O ; doubling of x=0 point
            }
            if (p.y == q.y) {
                return double_point(p);
            }
            return Point{};
        }
        const auto lambda =
            f_->mul(f_->add(p.y, q.y), f_->inv(f_->add(p.x, q.x)));
        const auto x3 = f_->add(
            f_->add(f_->add(f_->sqr(lambda), lambda), f_->add(p.x, q.x)), a_);
        const auto y3 =
            f_->add(f_->add(f_->mul(lambda, f_->add(p.x, x3)), x3), p.y);
        return Point{false, x3, y3};
    }

    [[nodiscard]] Point double_point(const Point& p) const {
        if (p.infinity || p.x.is_zero()) {
            return Point{};
        }
        const auto lambda = f_->add(p.x, f_->mul(p.y, f_->inv(p.x)));
        const auto x3 = f_->add(f_->add(f_->sqr(lambda), lambda), a_);
        // y3 = x^2 + lambda*x3 + x3
        const auto y3 =
            f_->add(f_->sqr(p.x), f_->add(f_->mul(lambda, x3), x3));
        return Point{false, x3, y3};
    }

    [[nodiscard]] Point scalar_mul(const Point& p, std::uint64_t k) const {
        Point acc;  // infinity
        Point base = p;
        while (k != 0) {
            if (k & 1U) {
                acc = add(acc, base);
            }
            base = double_point(base);
            k >>= 1U;
        }
        return acc;
    }

    /// Point decompression: given x != 0, solve y^2 + xy = x^3 + ax^2 + b via
    /// z^2 + z = c with c = rhs / x^2 (half-trace; needs Tr(c) = 0).
    [[nodiscard]] std::optional<Point> lift_x(const Element& x) const {
        if (x.is_zero()) {
            return std::nullopt;
        }
        const auto x2 = f_->sqr(x);
        const auto rhs = f_->add(f_->add(f_->mul(x2, x), f_->mul(a_, x2)), b_);
        const auto c = f_->mul(rhs, f_->inv(x2));
        const auto z = f_->solve_quadratic(c);
        if (!z) {
            return std::nullopt;
        }
        return Point{false, x, f_->mul(x, *z)};
    }

private:
    const field::Field* f_;
    Element a_;
    Element b_;
};

}  // namespace

int main() {
    const field::Field f = field::Field::type2(163, 66);
    std::printf("field: %s\n", f.to_string().c_str());

    // A curve with a = 1 and a modest b (demo parameters, not the NIST B-163
    // constants — those are tied to NIST's own reduction polynomial).
    const auto a = f.one();
    const auto b = f.from_bits(0x4ADF91);
    const BinaryCurve curve{f, a, b};

    // Find a point by lifting successive x candidates.
    Point base;
    for (std::uint64_t xv = 2;; ++xv) {
        if (const auto p = curve.lift_x(f.from_bits(xv))) {
            base = *p;
            break;
        }
    }
    std::printf("base point found: on_curve=%s\n",
                curve.on_curve(base) ? "yes" : "NO");

    // Group-law exercises.
    const auto p2 = curve.double_point(base);
    const auto p3 = curve.add(p2, base);
    const auto p5 = curve.add(p3, p2);
    const bool double_ok = curve.on_curve(p2);
    const bool add_ok = curve.on_curve(p3) && curve.on_curve(p5);

    // Scalar multiplication consistency: (k1 + k2) P == k1 P + k2 P.
    const auto k1p = curve.scalar_mul(base, 12345);
    const auto k2p = curve.scalar_mul(base, 67890);
    const auto sum = curve.add(k1p, k2p);
    const auto direct = curve.scalar_mul(base, 12345 + 67890);
    const bool scalar_ok = curve.on_curve(k1p) && curve.on_curve(k2p) &&
                           !direct.infinity && sum.x == direct.x && sum.y == direct.y;

    // Inverse: P + (-P) = O, with -P = (x, x + y) on binary curves.
    const Point neg{false, base.x, f.add(base.x, base.y)};
    const bool inverse_ok = curve.add(base, neg).infinity;

    std::printf("doubling on curve      : %s\n", double_ok ? "PASS" : "FAIL");
    std::printf("addition on curve      : %s\n", add_ok ? "PASS" : "FAIL");
    std::printf("scalar-mul distributes : %s\n", scalar_ok ? "PASS" : "FAIL");
    std::printf("P + (-P) = infinity    : %s\n", inverse_ok ? "PASS" : "FAIL");
    return (double_ok && add_ok && scalar_ok && inverse_ok) ? 0 : 1;
}
