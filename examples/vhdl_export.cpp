// Export the HDL the paper's flow starts from: structural VHDL (and Verilog,
// plus post-mapping LUT-level Verilog) for any (m, n, method).
//
//   vhdl_export [m n method_key out_prefix]
//   defaults: 8 2 date2018 ./gf2m_mult

#include "field/gf2m.h"
#include "fpga/flow.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "netlist/emit_verilog.h"
#include "netlist/emit_vhdl.h"
#include "opt/opt.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

void write_file(const std::string& path, const std::string& content) {
    std::ofstream out{path};
    out << content;
    std::printf("wrote %-28s (%zu bytes)\n", path.c_str(), content.size());
}

}  // namespace

int main(int argc, char** argv) {
    using namespace gfr;

    const int m = argc > 1 ? std::atoi(argv[1]) : 8;
    const int n = argc > 2 ? std::atoi(argv[2]) : 2;
    const std::string method_key = argc > 3 ? argv[3] : "date2018";
    const std::string prefix = argc > 4 ? argv[4] : "./gf2m_mult";

    const mult::MethodInfo* info = nullptr;
    for (const auto& mi : mult::all_methods()) {
        if (mi.key == method_key) {
            info = &mi;
        }
    }
    if (info == nullptr) {
        std::fprintf(stderr, "unknown method '%s'; options:", method_key.c_str());
        for (const auto& mi : mult::all_methods()) {
            std::fprintf(stderr, " %s", std::string{mi.key}.c_str());
        }
        std::fprintf(stderr, "\n");
        return 1;
    }

    const field::Field fld = field::Field::type2(m, n);
    std::printf("generating %s multiplier for %s\n", std::string{info->key}.c_str(),
                fld.to_string().c_str());
    const auto raw = mult::build_multiplier(info->method, fld);
    const auto raw_stats = raw.stats();
    std::printf("gate netlist: %lld AND, %lld XOR, delay %s\n",
                static_cast<long long>(raw_stats.n_and),
                static_cast<long long>(raw_stats.n_xor),
                raw_stats.delay_string().c_str());

    // Optimize before emitting: every pass is equivalence-gated, and the
    // optimized netlist is re-verified against the field arithmetic.
    const opt::OptResult optimized = mult::optimize_and_verify(raw, fld);
    const auto& nl = optimized.netlist;
    const auto stats = nl.stats();
    std::printf("optimized:    %lld AND, %lld XOR (%lld -> %lld gates), "
                "all passes verified\n",
                static_cast<long long>(stats.n_and),
                static_cast<long long>(stats.n_xor),
                static_cast<long long>(optimized.gates_before()),
                static_cast<long long>(optimized.gates_after()));

    const std::string entity =
        "gf2m_mult_" + std::to_string(m) + "_" + std::to_string(n);
    write_file(prefix + ".vhd", netlist::emit_vhdl(nl, entity));
    write_file(prefix + ".v", netlist::emit_verilog(nl, entity));

    fpga::FlowOptions opts;
    opts.synthesis_freedom = info->synthesis_freedom;
    const auto flow = fpga::run_flow(nl, opts);
    write_file(prefix + "_mapped.v",
               fpga::emit_verilog_luts(flow.network, entity + "_mapped"));
    std::printf("mapped: %d LUT6, depth %d, %.2f ns (model)\n", flow.luts,
                flow.lut_depth, flow.delay_ns);
    return 0;
}
