// Blind spec recovery: optimize a multiplier, strip and shuffle its ports,
// export it to VHDL, read the VHDL back with no metadata — then recover the
// field, the modulus and the port ordering from the gates alone, and PROVE
// the recovered spec algebraically.
//
//   spec_recovery            # GF(2^8) f = y^8+y^4+y^3+y^2+1 and GF(2^64)

#include "acv/acv.h"
#include "field/field_catalog.h"
#include "field/gf2m.h"
#include "multipliers/generator.h"
#include "netlist/emit_vhdl.h"
#include "netlist/parse_vhdl.h"
#include "opt/opt.h"

#include <cstdio>
#include <string>

namespace {

bool recover_one(const gfr::field::Field& field, const char* label,
                 std::uint64_t anonymize_seed) {
    using namespace gfr;

    std::printf("== %s ==\n", label);
    const auto flat = mult::build_multiplier(mult::Method::Date2018Flat, field);
    opt::OptOptions opt_options;
    opt_options.restructure = field.degree() <= 16;  // keep the demo quick
    const auto optimized = opt::optimize(flat, opt_options);
    std::printf("  optimized: %lld -> %lld gates\n",
                static_cast<long long>(optimized.gates_before()),
                static_cast<long long>(optimized.gates_after()));

    // Strip every meaningful name, shuffle the ports, and round-trip the
    // result through VHDL text — all the reverse engineer ever sees.
    const auto anon = acv::anonymize_ports(optimized.netlist, anonymize_seed);
    const std::string vhdl = netlist::emit_vhdl(anon.netlist, "mystery");
    std::printf("  exported %zu bytes of anonymous VHDL\n", vhdl.size());
    const auto blind = netlist::parse_vhdl(vhdl);

    const auto result = acv::reverse_engineer(blind);
    if (!result.recovered) {
        std::printf("  RECOVERY FAILED: %s\n", result.reason.c_str());
        return false;
    }
    std::printf("  recovered: %s\n", result.spec.to_string().c_str());
    if (result.spec.modulus != field.modulus()) {
        std::printf("  MODULUS MISMATCH vs the source field\n");
        return false;
    }

    // Re-expose the canonical interface per the recovered spec and prove it.
    const auto relabeled = acv::relabel_ports(blind, result.spec);
    if (const auto failure = acv::prove_multiplier(relabeled, field)) {
        std::printf("  PROOF FAILED: %s\n", failure->to_string().c_str());
        return false;
    }
    std::printf("  proved: C = A*B mod f for all inputs, zero simulation\n");
    return true;
}

}  // namespace

int main() {
    using namespace gfr;

    const field::Field gf256 = field::gf256_paper_field();
    const field::Field gf2_64 = field::Field::type2(64, 23);
    bool ok = recover_one(gf256, "GF(2^8), paper field", 0xB11D5EEDULL);
    ok = recover_one(gf2_64, "GF(2^64), type II (64, 23)", 0xB11D5EEEULL) && ok;
    if (!ok) {
        std::printf("spec recovery FAILED\n");
        return 1;
    }
    std::printf("all recoveries proved\n");
    return 0;
}
