// Erasure coding with rs::Codec — encode a stripe, lose the maximum n-k
// shards, and rebuild them bit-for-bit from the survivors.
//
// Where examples/reed_solomon.cpp streams interleaved RS(255,223) *error*
// correction (unknown error positions, syndrome decoding), this one is the
// storage shape: an (n, k) MDS *erasure* code where the lost shard indices
// are known (a dead disk, a dropped packet) and decoding is pure linear
// algebra — pick k surviving rows of [I ; P], invert that k x k matrix
// over GF(2^m), and region-multiply the survivors back into the holes.
//
// The same stripe is run twice to show the codec's reconfigurability, the
// paper's theme carried to the storage tier:
//   - RS(14,10) over GF(2^8)  — byte shards, nibble-shuffle/GFNI kernels;
//   - RS(14,10) over GF(2^16) — u16 shards (65536-symbol alphabet, the
//     PAR2 field x^16+x^12+x^3+x+1), split-byte tables.
//
// Every reconstruction is verified bit-identical to the original data and
// to a forced-scalar decode (GFR_BULK_FORCE_SCALAR / GFR_GUARD_FAULT drills
// exercise the same paths CI pins); any mismatch exits nonzero.

#include "field/field_catalog.h"
#include "field/gf2m.h"
#include "gf2/gf2_poly.h"
#include "rs/codec.h"

#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

namespace {

std::uint64_t splitmix(std::uint64_t& s) {
    s += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

template <typename T>
bool run_stripe(const gfr::field::Field& f, const char* label) {
    constexpr int kN = 14;
    constexpr int kK = 10;
    constexpr std::size_t kLen = 8192;

    const gfr::rs::Codec codec{f.ops(), kN, kK};
    const gfr::rs::Codec scalar{f.ops(), kN, kK, gfr::rs::GeneratorKind::Cauchy,
                                gfr::bulk::KernelKind::Scalar};
    const char* kernel =
        sizeof(T) == 1
            ? gfr::bulk::kernel_name(codec.engine().byte_kernel_kind())
            : "u16 split tables";
    std::printf("RS(%d,%d) over %s (%zu-byte symbols, kernel %s)\n", kN, kK,
                label, sizeof(T), kernel);

    // Fill k data shards with deterministic noise and encode the parity.
    std::vector<std::vector<T>> shards(kN, std::vector<T>(kLen, 0));
    std::uint64_t seed = 0xD15C0FD15C0ULL;
    const std::uint64_t mask = (std::uint64_t{1} << f.ops().degree()) - 1;
    for (int i = 0; i < kK; ++i) {
        for (auto& v : shards[static_cast<std::size_t>(i)]) {
            v = static_cast<T>(splitmix(seed) & mask);
        }
    }
    std::vector<std::span<const T>> data;
    std::vector<std::span<T>> parity;
    for (int i = 0; i < kK; ++i) {
        data.emplace_back(shards[static_cast<std::size_t>(i)]);
    }
    for (int i = kK; i < kN; ++i) {
        parity.emplace_back(shards[static_cast<std::size_t>(i)]);
    }
    codec.encode(data, parity);
    const std::vector<std::vector<T>> golden = shards;

    // Lose the maximum n-k = 4 shards: two data, two parity.
    std::vector<bool> present(kN, true);
    const int lost[] = {2, 9, kK, kK + 2};
    for (const int i : lost) {
        present[static_cast<std::size_t>(i)] = false;
        std::fill(shards[static_cast<std::size_t>(i)].begin(),
                  shards[static_cast<std::size_t>(i)].end(), static_cast<T>(0));
    }
    std::printf("  lost shards 2, 9 (data) and %d, %d (parity)\n", kK, kK + 2);

    // Decode in place from the 10 survivors; then a forced-scalar decode
    // of the same punctured stripe must agree bit for bit.
    std::vector<std::vector<T>> scalar_shards = shards;
    std::vector<std::span<T>> all;
    std::vector<std::span<T>> all_scalar;
    for (int i = 0; i < kN; ++i) {
        all.emplace_back(shards[static_cast<std::size_t>(i)]);
        all_scalar.emplace_back(scalar_shards[static_cast<std::size_t>(i)]);
    }
    codec.decode(all, present);
    scalar.decode(all_scalar, present);

    const bool recovered = shards == golden;
    const bool scalar_same = scalar_shards == golden;
    std::printf("  reconstruction: %s; forced-scalar decode: %s\n",
                recovered ? "bit-identical to the original stripe" : "MISMATCH",
                scalar_same ? "bit-identical" : "MISMATCH");
    return recovered && scalar_same;
}

}  // namespace

int main() {
    const gfr::field::Field f8 = gfr::field::gf256_paper_field();
    const gfr::field::Field f16{
        gfr::gf2::Poly::from_exponents({16, 12, 3, 1, 0})};

    bool ok = run_stripe<std::uint8_t>(f8, "GF(2^8)");
    ok = run_stripe<std::uint16_t>(f16, "GF(2^16)") && ok;

    std::printf(ok ? "all stripes recovered\n" : "FAILURE\n");
    return ok ? 0 : 1;
}
