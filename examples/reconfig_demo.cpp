// "Reconfigurable" in practice: a multiplier bank holding mapped LUT
// networks for several type II fields, hot-swapped at runtime the way a
// partially-reconfigurable FPGA region would be re-programmed.  One driver
// multiplies operands in whichever field is currently loaded.
//
// Each configuration's LUT network is compiled once at load time into an
// exec::Program tape (the "bitstream" of this software model); the active
// multiply executes the compiled tape, not a per-LUT interpretation.

#include "exec/program.h"
#include "field/field_catalog.h"
#include "fpga/flow.h"
#include "multipliers/generator.h"

#include <cstdio>
#include <map>
#include <random>
#include <string>

namespace {

using namespace gfr;

/// One "bitstream": the mapped multiplier, its compiled tape, and its field
/// for verification.
struct Configuration {
    field::Field field;
    fpga::LutNetwork network;
    exec::Program program;  ///< compiled at load, executed per multiply
    int luts = 0;
    double ns = 0;
};

class ReconfigurableMultiplier {
public:
    void load(const std::string& name, Configuration cfg) {
        configs_.insert_or_assign(name, std::move(cfg));
    }

    /// "Partial reconfiguration": swap the active configuration.
    void activate(const std::string& name) { active_ = name; }

    [[nodiscard]] const Configuration& active() const { return configs_.at(active_); }

    /// Multiply through the active configuration's compiled tape (one
    /// lane).  The caller owns the execution scratch — the same discipline
    /// as Program::run itself — so the bank stays shareable across threads.
    [[nodiscard]] field::Field::Element mul(const field::Field::Element& a,
                                            const field::Field::Element& b,
                                            exec::Program::Scratch& scratch) const {
        const auto& cfg = active();
        const int m = cfg.field.degree();
        std::vector<std::uint64_t> in(static_cast<std::size_t>(2 * m), 0);
        for (int i = 0; i < m; ++i) {
            in[static_cast<std::size_t>(i)] = a.coeff(i) ? 1 : 0;
            in[static_cast<std::size_t>(m + i)] = b.coeff(i) ? 1 : 0;
        }
        std::vector<std::uint64_t> out(static_cast<std::size_t>(m), 0);
        cfg.program.run(in, out, scratch);
        field::Field::Element c;
        for (int k = 0; k < m; ++k) {
            if (out[static_cast<std::size_t>(k)] & 1U) {
                c.set_coeff(k, true);
            }
        }
        return c;
    }

private:
    std::map<std::string, Configuration> configs_;
    std::string active_;
};

}  // namespace

int main() {
    ReconfigurableMultiplier bank;

    // Build configurations for three fields of Table V.
    for (const auto& spec : {field::FieldSpec{8, 2, ""}, field::FieldSpec{64, 23, ""},
                             field::FieldSpec{113, 4, "SECG"}}) {
        field::Field fld = spec.make();
        const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
        const auto raw_gates = nl.stats().gates();
        fpga::FlowOptions opts;
        opts.synthesis_freedom = true;
        // Run the campaign-gated optimization pipeline before mapping: each
        // "bitstream" is built from the optimized netlist, never the raw one.
        opts.optimize = true;
        auto flow = fpga::run_flow(nl, opts);
        auto program = exec::Program::compile(flow.network);
        std::printf(
            "built configuration %-14s: %5d LUTs, %.2f ns  "
            "(opt: %lld -> %lld gates; tape: %zu insns, %u slots)\n",
            spec.label().c_str(), flow.luts, flow.delay_ns,
            static_cast<long long>(raw_gates),
            static_cast<long long>(flow.gate_stats.gates()),
            program.instruction_count(), program.slot_count());
        bank.load(spec.label(),
                  Configuration{std::move(fld), std::move(flow.network),
                                std::move(program), flow.luts, flow.delay_ns});
    }

    // Swap configurations at runtime and multiply in each field.
    std::mt19937_64 rng{1234};
    exec::Program::Scratch scratch;  // this driver's execution scratch
    bool all_ok = true;
    for (const std::string name : {"(8,2)", "(64,23)", "(113,4) SECG"}) {
        bank.activate(name);
        const auto& fld = bank.active().field;
        int pass = 0;
        constexpr int kTrials = 25;
        for (int t = 0; t < kTrials; ++t) {
            const auto a = fld.random_element(rng);
            const auto b = fld.random_element(rng);
            if (bank.mul(a, b, scratch) == fld.mul(a, b)) {
                ++pass;
            }
        }
        all_ok = all_ok && pass == kTrials;
        std::printf("active %-14s: %d/%d products match reference arithmetic\n",
                    name.c_str(), pass, kTrials);
    }
    std::printf("reconfigurable bank: %s\n", all_ok ? "PASS" : "FAIL");
    return all_ok ? 0 : 1;
}
