// Streaming Reed-Solomon over GF(2^8) — the error-control-code application
// the paper's introduction motivates ("standardized for space communication
// by NASA and ESA and used in CD players"), now shaped like the traffic a
// production encoder actually serves.
//
// Instead of encoding one 255-byte codeword at a time, this example encodes
// kLanes = 4096 interleaved RS(255,223) codewords *column-wise*: the
// message arrives as 223 stripes of 4096 bytes (stripe i carries symbol i
// of every codeword), and the encoder keeps 32 parity stripes as its LFSR
// state.  Each incoming stripe costs one region XOR plus 32 constant-times-
// region multiply-accumulates — exactly bulk::RegionEngine::addmul_region,
// served by the runtime-dispatched SIMD kernels (AVX2/SSSE3 nibble shuffle
// on x86, portable scalar tables anywhere else).
//
// The encode is then cross-checked four independent ways:
//   - all 32 syndromes vanish on sampled codeword columns (reference field
//     arithmetic, element by element);
//   - the whole parity block is bit-identical to a forced-scalar re-encode
//     (the SIMD kernels against their portable anchor);
//   - column 0 is bit-identical to a symbol-at-a-time Field::mul encode;
//   - a sampled column survives inject-and-correct of a single symbol
//     error, and the paper's gate-level multiplier netlist agrees with the
//     engine on random products.
//
// On top of that sits the robustness tier: an ABFT-checked re-encode keeps
// one checksum symbol per parity stripe through the checked region ops,
// proves it bit-identical to the plain encode, then catches an injected
// memory bit flip; and the dispatcher's kernel self-test/quarantine report
// is printed (set GFR_GUARD_FAULT=all to watch the scalar fallback engage).

#include "bulk/region_engine.h"
#include "field/field_catalog.h"
#include "field/field_ops.h"
#include "guard/kernel_check.h"
#include "guard/status.h"
#include "multipliers/generator.h"
#include "netlist/simulate.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <stdexcept>
#include <vector>

namespace {

using namespace gfr;
using Element = field::Field::Element;

constexpr int kN = 255;
constexpr int kK = 223;
constexpr int kParity = kN - kK;  // 32 parity symbols, corrects 16 errors
constexpr std::size_t kLanes = 4096;  // interleaved codewords per stripe

/// Evaluate a polynomial with coefficients `coeffs` (degree order, index 0 =
/// constant) at point x.
Element poly_eval(const field::Field& f, const std::vector<Element>& coeffs,
                  const Element& x) {
    Element acc = f.zero();
    for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) {
        acc = f.add(f.mul(acc, x), *it);
    }
    return acc;
}

/// Generator polynomial g(x) = prod_{i=1..kParity} (x + alpha^i), degree
/// kParity, monic; returned as kParity+1 coefficient bytes (index = power).
std::vector<std::uint64_t> generator_poly(const field::Field& f,
                                          const Element& alpha) {
    std::vector<Element> g{f.one()};
    for (int i = 1; i <= kParity; ++i) {
        const Element root = f.pow(alpha, static_cast<std::uint64_t>(i));
        std::vector<Element> next(g.size() + 1, f.zero());
        for (std::size_t j = 0; j < g.size(); ++j) {
            next[j + 1] = f.add(next[j + 1], g[j]);        // x * g
            next[j] = f.add(next[j], f.mul(root, g[j]));   // root * g
        }
        g = std::move(next);
    }
    std::vector<std::uint64_t> bits;
    bits.reserve(g.size());
    for (const auto& gj : g) {
        bits.push_back(f.to_bits(gj));
    }
    return bits;
}

/// Streaming systematic RS(255,223) encoder over byte stripes: feed message
/// stripes highest codeword position first; parity() afterwards holds the
/// kParity remainder stripes (parity stripe j = coefficient x^j of every
/// column's remainder).  One LFSR step is a region XOR (feedback) plus
/// kParity region multiply-accumulates through the engine's dispatch.
class StripeEncoder {
public:
    StripeEncoder(const bulk::RegionEngine& eng, std::span<const std::uint64_t> g,
                  std::size_t lanes, bool checked = false)
        : eng_{&eng}, lanes_{lanes}, checked_{checked}, fb_(lanes, 0),
          parity_(static_cast<std::size_t>(kParity),
                  std::vector<std::uint8_t>(lanes, 0)),
          psum_(static_cast<std::size_t>(kParity), 0) {
        gmul_.reserve(static_cast<std::size_t>(kParity));
        for (int j = 0; j < kParity; ++j) {
            gmul_.push_back(eng.prepare(g[static_cast<std::size_t>(j)]));
        }
        one_ = eng.prepare(std::uint64_t{1});
    }

    void feed(std::span<const std::uint8_t> stripe) {
        if (stripe.size() != lanes_) {
            throw std::invalid_argument{
                "StripeEncoder::feed: stripe width != encoder lanes"};
        }
        // feedback = stripe ^ parity_top (region XOR = addmul by 1)
        std::copy(stripe.begin(), stripe.end(), fb_.begin());
        if (!checked_) {
            eng_->addmul_region(one_,
                                parity_[static_cast<std::size_t>(kParity - 1)],
                                fb_);
            std::rotate(parity_.rbegin(), parity_.rbegin() + 1, parity_.rend());
            eng_->mul_region(gmul_[0], fb_, parity_[0]);
            for (int j = 1; j < kParity; ++j) {
                eng_->addmul_region(gmul_[static_cast<std::size_t>(j)], fb_,
                                    parity_[static_cast<std::size_t>(j)]);
            }
            return;
        }
        // ABFT lane: every region op also carries its checksum symbol, so a
        // silent corruption anywhere in the parity block is caught by
        // verify() without re-reading the message.  The stripe checksum is
        // the one O(lanes) ingest fold; everything else is O(1) per op.
        std::uint64_t fb_sum = eng_->region_checksum(std::span<const std::uint8_t>{stripe});
        eng_->addmul_region_checked(
            one_, parity_[static_cast<std::size_t>(kParity - 1)],
            psum_[static_cast<std::size_t>(kParity - 1)], fb_, fb_sum);
        // Shift the register up one stripe (pointer rotation, no copies),
        // then overwrite the vacated x^0 stripe and accumulate the rest.
        std::rotate(parity_.rbegin(), parity_.rbegin() + 1, parity_.rend());
        std::rotate(psum_.rbegin(), psum_.rbegin() + 1, psum_.rend());
        eng_->mul_region_checked(gmul_[0], fb_, fb_sum, parity_[0], psum_[0]);
        for (int j = 1; j < kParity; ++j) {
            eng_->addmul_region_checked(gmul_[static_cast<std::size_t>(j)], fb_,
                                        fb_sum,
                                        parity_[static_cast<std::size_t>(j)],
                                        psum_[static_cast<std::size_t>(j)]);
        }
    }

    /// Recompute every parity stripe's fold and compare against the
    /// maintained checksum lane.  Only meaningful in checked mode.
    [[nodiscard]] guard::Status verify() const {
        for (int j = 0; j < kParity; ++j) {
            const guard::Status s = eng_->verify_region(
                std::span<const std::uint8_t>{
                    parity_[static_cast<std::size_t>(j)]},
                psum_[static_cast<std::size_t>(j)]);
            if (!s.ok()) {
                return s;
            }
        }
        return guard::Status::good();
    }

    [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& parity() const {
        return parity_;
    }

    [[nodiscard]] std::vector<std::vector<std::uint8_t>>& mutable_parity() {
        return parity_;
    }

private:
    const bulk::RegionEngine* eng_;
    std::size_t lanes_;
    bool checked_;
    std::vector<std::uint8_t> fb_;
    std::vector<std::vector<std::uint8_t>> parity_;
    std::vector<std::uint64_t> psum_;
    std::vector<bulk::RegionEngine::Prepared> gmul_;
    bulk::RegionEngine::Prepared one_;
};

/// Deterministic synthetic message byte for (stripe, lane).
std::uint8_t message_byte(int stripe, std::size_t lane) {
    return static_cast<std::uint8_t>(
        (static_cast<std::size_t>(stripe) * 31 + lane * 7 + 3) & 0xFF);
}

/// Extract one interleaved column as a 255-element codeword (index =
/// polynomial power): parity stripes are positions 0..31, message stripe i
/// sits at position kN-1-i (stripes are fed highest position first).
std::vector<Element> extract_column(
    const field::Field& f, const std::vector<std::vector<std::uint8_t>>& parity,
    std::size_t lane) {
    std::vector<Element> cw(kN, f.zero());
    for (int j = 0; j < kParity; ++j) {
        cw[static_cast<std::size_t>(j)] =
            f.from_bits(parity[static_cast<std::size_t>(j)][lane]);
    }
    for (int i = 0; i < kK; ++i) {
        cw[static_cast<std::size_t>(kN - 1 - i)] =
            f.from_bits(message_byte(i, lane));
    }
    return cw;
}

/// Multiply through the gate-level multiplier instead of reference
/// arithmetic: packs both operands into one simulation lane.
class NetlistMultiplier {
public:
    explicit NetlistMultiplier(const field::Field& f)
        : f_{&f}, nl_{mult::build_multiplier(mult::Method::Date2018Flat, f)},
          sim_{nl_} {}

    Element mul(const Element& a, const Element& b) {
        const int m = f_->degree();
        std::vector<std::uint64_t> in(static_cast<std::size_t>(2 * m), 0);
        for (int i = 0; i < m; ++i) {
            in[static_cast<std::size_t>(i)] = a.coeff(i) ? 1 : 0;
            in[static_cast<std::size_t>(m + i)] = b.coeff(i) ? 1 : 0;
        }
        const auto out = sim_.run(in);
        Element c;
        for (int k = 0; k < m; ++k) {
            if (out[static_cast<std::size_t>(k)] & 1U) {
                c.set_coeff(k, true);
            }
        }
        return c;
    }

private:
    const field::Field* f_;
    netlist::Netlist nl_;
    netlist::Simulator sim_;
};

}  // namespace

int main() {
    const field::Field f = field::gf256_paper_field();
    const Element alpha = f.from_bits(0x02);  // x generates the group here
    const auto g = generator_poly(f, alpha);

    const bulk::RegionEngine engine{f.ops()};
    std::printf("RS(%d,%d) over %s\n", kN, kK, f.to_string().c_str());
    std::printf("streaming %zu interleaved codewords; byte kernel: %s\n",
                kLanes, bulk::kernel_name(engine.byte_kernel_kind()));

    // Stream the message through the encoder, stripe by stripe (highest
    // codeword position first), and time the region traffic.  The stripes
    // are synthesized up front so the timed section holds nothing but the
    // encoder's region ops.
    StripeEncoder enc{engine, g, kLanes};
    std::vector<std::vector<std::uint8_t>> stripes(
        static_cast<std::size_t>(kK), std::vector<std::uint8_t>(kLanes));
    for (int i = 0; i < kK; ++i) {
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
            stripes[static_cast<std::size_t>(i)][lane] = message_byte(i, lane);
        }
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kK; ++i) {
        enc.feed(stripes[static_cast<std::size_t>(i)]);
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double payload_mb =
        static_cast<double>(kK) * static_cast<double>(kLanes) / 1.0e6;
    // Each payload byte drives kParity+1 region operations (feedback XOR,
    // one mul, kParity-1 addmuls), so the kernels stream ~33x the payload.
    const double region_gb = payload_mb * (kParity + 1) / 1e3;
    std::printf(
        "encoded %.1f MB of message payload in %.3f ms (%.0f MB/s payload, "
        "~%.1f GB/s region traffic)\n",
        payload_mb, secs * 1e3, payload_mb / secs, region_gb / secs);

    // All syndromes S_i = c(alpha^i) must vanish on sampled columns.
    bool valid = true;
    for (const std::size_t lane :
         {std::size_t{0}, std::size_t{1}, kLanes / 2, kLanes - 1}) {
        const auto cw = extract_column(f, enc.parity(), lane);
        for (int i = 1; i <= kParity; ++i) {
            if (!poly_eval(f, cw, f.pow(alpha, static_cast<std::uint64_t>(i)))
                     .is_zero()) {
                valid = false;
            }
        }
    }
    std::printf("sampled-column syndromes: %s\n",
                valid ? "all zero (OK)" : "NONZERO");

    // Differential anchor 1: forced-scalar re-encode must be bit-identical
    // (the dispatched SIMD kernels against the portable scalar kernel).
    const bulk::RegionEngine scalar_engine{f.ops(), bulk::KernelKind::Scalar};
    StripeEncoder scalar_enc{scalar_engine, g, kLanes};
    for (int i = 0; i < kK; ++i) {
        scalar_enc.feed(stripes[static_cast<std::size_t>(i)]);
    }
    bool scalar_match = true;
    for (int j = 0; j < kParity; ++j) {
        if (enc.parity()[static_cast<std::size_t>(j)] !=
            scalar_enc.parity()[static_cast<std::size_t>(j)]) {
            scalar_match = false;
        }
    }
    std::printf("SIMD vs scalar-kernel parity block: %s\n",
                scalar_match ? "bit-identical" : "MISMATCH");

    // Differential anchor 2: column 0 against a symbol-at-a-time LFSR on
    // reference element arithmetic.
    std::vector<std::uint64_t> preg(static_cast<std::size_t>(kParity), 0);
    for (int i = 0; i < kK; ++i) {
        const std::uint64_t fb =
            message_byte(i, 0) ^ preg[static_cast<std::size_t>(kParity - 1)];
        for (int j = kParity - 1; j > 0; --j) {
            preg[static_cast<std::size_t>(j)] =
                preg[static_cast<std::size_t>(j - 1)] ^
                f.ops().mul(g[static_cast<std::size_t>(j)], fb);
        }
        preg[0] = f.ops().mul(g[0], fb);
    }
    bool column_match = true;
    for (int j = 0; j < kParity; ++j) {
        if (preg[static_cast<std::size_t>(j)] !=
            enc.parity()[static_cast<std::size_t>(j)][0]) {
            column_match = false;
        }
    }
    std::printf("column 0 vs element-at-a-time encode: %s\n",
                column_match ? "bit-identical" : "MISMATCH");

    // Inject a single symbol error into a sampled column and correct it
    // from S1, S2 — the classic single-error decode.
    auto received = extract_column(f, enc.parity(), kLanes / 2);
    const auto codeword = received;
    const int error_pos = 120;
    const Element error_mag = f.from_bits(0x5A);
    received[error_pos] = f.add(received[error_pos], error_mag);

    const Element s1 = poly_eval(f, received, alpha);
    const Element s2 = poly_eval(f, received, f.pow(alpha, 2));
    // For one error at position j with magnitude e: S1 = e*alpha^j,
    // S2 = e*alpha^(2j) => alpha^j = S2/S1, e = S1^2/S2.
    const Element locator = f.mul(s2, f.inv(s1));
    int found_pos = -1;
    for (int j = 0; j < kN; ++j) {
        if (f.pow(alpha, static_cast<std::uint64_t>(j)) == locator) {
            found_pos = j;
            break;
        }
    }
    const Element found_mag = f.mul(f.sqr(s1), f.inv(s2));
    std::printf("injected error: pos=%d mag=0x%02llx; decoded: pos=%d mag=0x%02llx\n",
                error_pos, static_cast<unsigned long long>(f.to_bits(error_mag)),
                found_pos, static_cast<unsigned long long>(f.to_bits(found_mag)));
    bool corrected = false;
    if (found_pos >= 0) {
        received[static_cast<std::size_t>(found_pos)] =
            f.add(received[static_cast<std::size_t>(found_pos)], found_mag);
        corrected = received == codeword;
    }
    std::printf("correction: %s\n", corrected ? "codeword restored" : "FAILED");

    // ABFT re-encode: same stream through the checked region ops, which
    // maintain one checksum symbol per parity stripe.  The checked encode
    // must be bit-identical to the plain one (the checksum lane is pure
    // bookkeeping) and verify() must pass on the intact parity block.
    const auto encode_pass = [&stripes](StripeEncoder& e) {
        const auto t = std::chrono::steady_clock::now();
        for (int i = 0; i < kK; ++i) {
            e.feed(stripes[static_cast<std::size_t>(i)]);
        }
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t)
            .count();
    };
    // Best-of-3 fresh encodes each way: single-pass timings on a busy box
    // swing more than the checksum lane costs.
    StripeEncoder checked_enc{engine, g, kLanes, /*checked=*/true};
    double plain_best = 1e9;
    double checked_best = 1e9;
    for (int r = 0; r < 3; ++r) {
        StripeEncoder plain_r{engine, g, kLanes};
        plain_best = std::min(plain_best, encode_pass(plain_r));
        StripeEncoder fresh{engine, g, kLanes, /*checked=*/true};
        StripeEncoder& ce = (r == 2) ? checked_enc : fresh;
        checked_best = std::min(checked_best, encode_pass(ce));
    }
    bool checked_match = true;
    for (int j = 0; j < kParity; ++j) {
        if (checked_enc.parity()[static_cast<std::size_t>(j)] !=
            enc.parity()[static_cast<std::size_t>(j)]) {
            checked_match = false;
        }
    }
    std::printf(
        "ABFT-checked re-encode: %s in %.3f ms (%+.1f%% vs unchecked, "
        "best of 3)\n",
        checked_match ? "bit-identical" : "MISMATCH", checked_best * 1e3,
        (checked_best / plain_best - 1.0) * 100.0);
    const guard::Status clean_status = checked_enc.verify();
    std::printf("checksum verify on intact parity block: %s\n",
                clean_status.to_string().c_str());

    // Silent-data-corruption drill: flip one bit deep inside a parity
    // stripe, exactly what a DRAM upset or a buggy kernel would leave
    // behind, and let the checksum lane call it out.
    auto& victim = checked_enc.mutable_parity()[7];
    victim[kLanes / 3] ^= 0x10;
    const guard::Status flipped_status = checked_enc.verify();
    std::printf("after injected bit flip in parity stripe 7: %s\n",
                flipped_status.to_string().c_str());
    victim[kLanes / 3] ^= 0x10;
    const bool abft_ok = checked_match && clean_status.ok() &&
                         !flipped_status.ok() &&
                         flipped_status.fault == guard::Fault::RegionChecksum &&
                         checked_enc.verify().ok();

    // Every SIMD kernel the dispatcher selected passed its golden-vector
    // self-test at first use; anything quarantined fell back down the
    // ladder (scalar at worst) and is listed here.
    const auto& quarantined = guard::quarantine_report();
    if (quarantined.empty()) {
        std::printf("kernel self-tests: all selected kernels passed\n");
    } else {
        for (const auto& q : quarantined) {
            std::printf("kernel quarantined: %s\n", q.to_string().c_str());
        }
    }

    // Cross-check: the paper's gate-level multiplier computes the same
    // products the encoder's kernels do.
    NetlistMultiplier hw{f};
    bool hw_ok = true;
    for (int trial = 0; trial < 64; ++trial) {
        const Element a = f.from_bits(static_cast<std::uint64_t>(trial * 37 + 11));
        const Element b = f.from_bits(static_cast<std::uint64_t>(trial * 91 + 5));
        if (hw.mul(a, b) != f.mul(a, b)) {
            hw_ok = false;
        }
    }
    std::printf("gate-level multiplier cross-check: %s\n", hw_ok ? "PASS" : "FAIL");

    return (valid && scalar_match && column_match && corrected &&
            found_pos == error_pos && hw_ok && abft_ok)
               ? 0
               : 1;
}
