// Reed-Solomon over GF(2^8) — the error-control-code application the paper's
// introduction motivates ("standardized for space communication by NASA and
// ESA and used in CD players").
//
// This example builds a systematic RS(255, 223) encoder over the paper's
// GF(2^8) field, corrupts a codeword with a single symbol error, locates and
// corrects it from the syndromes, and cross-checks every symbol product
// against the paper's gate-level multiplier netlist.

#include "field/field_catalog.h"
#include "field/field_ops.h"
#include "multipliers/generator.h"
#include "netlist/simulate.h"

#include <cstdint>
#include <cstdio>
#include <vector>

namespace {

using namespace gfr;
using Element = field::Field::Element;

/// Evaluate a polynomial with coefficients `coeffs` (degree order, index 0 =
/// constant) at point x.
Element poly_eval(const field::Field& f, const std::vector<Element>& coeffs,
                  const Element& x) {
    Element acc = f.zero();
    for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) {
        acc = f.add(f.mul(acc, x), *it);
    }
    return acc;
}

/// Multiply through the gate-level multiplier instead of reference
/// arithmetic: packs both operands into one simulation lane.
class NetlistMultiplier {
public:
    explicit NetlistMultiplier(const field::Field& f)
        : f_{&f}, nl_{mult::build_multiplier(mult::Method::Date2018Flat, f)},
          sim_{nl_} {}

    Element mul(const Element& a, const Element& b) {
        const int m = f_->degree();
        std::vector<std::uint64_t> in(static_cast<std::size_t>(2 * m), 0);
        for (int i = 0; i < m; ++i) {
            in[static_cast<std::size_t>(i)] = a.coeff(i) ? 1 : 0;
            in[static_cast<std::size_t>(m + i)] = b.coeff(i) ? 1 : 0;
        }
        const auto out = sim_.run(in);
        Element c;
        for (int k = 0; k < m; ++k) {
            if (out[static_cast<std::size_t>(k)] & 1U) {
                c.set_coeff(k, true);
            }
        }
        return c;
    }

private:
    const field::Field* f_;
    netlist::Netlist nl_;
    netlist::Simulator sim_;
};

}  // namespace

int main() {
    const field::Field f = field::gf256_paper_field();
    const Element alpha = f.from_bits(0x02);  // x generates the group here
    constexpr int kN = 255;
    constexpr int kK = 223;
    constexpr int kParity = kN - kK;  // 32 parity symbols, corrects 16 errors

    // Generator polynomial g(x) = prod_{i=1..32} (x + alpha^i).
    std::vector<Element> g{f.one()};
    for (int i = 1; i <= kParity; ++i) {
        const Element root = f.pow(alpha, static_cast<std::uint64_t>(i));
        std::vector<Element> next(g.size() + 1, f.zero());
        for (std::size_t j = 0; j < g.size(); ++j) {
            next[j + 1] = f.add(next[j + 1], g[j]);        // x * g
            next[j] = f.add(next[j], f.mul(root, g[j]));   // root * g
        }
        g = std::move(next);
    }
    std::printf("RS(%d,%d) over %s\n", kN, kK, f.to_string().c_str());
    std::printf("generator degree: %zu (expect %d)\n", g.size() - 1, kParity);

    // Systematic encode: message = bytes 0..222; remainder of msg(x)*x^32 / g(x).
    std::vector<Element> codeword(kN, f.zero());
    for (int i = 0; i < kK; ++i) {
        codeword[static_cast<std::size_t>(kParity + i)] =
            f.from_bits(static_cast<std::uint64_t>((i * 7 + 3) & 0xFF));
    }
    // Long division of the shifted message by g, in the u64 symbol domain.
    // Each generator coefficient g[j] is a fixed constant multiplied across
    // all 223 message positions — exactly the constant-times-region traffic
    // the engine's window tables serve, so precompute one ConstMultiplier
    // per coefficient instead of calling Field::mul 223 * 33 times.
    std::vector<field::ConstMultiplier> gmul;
    gmul.reserve(g.size());
    for (const auto& gj : g) {
        gmul.emplace_back(f.ops(), f.to_bits(gj));
    }
    std::vector<std::uint64_t> rem(kN, 0);
    for (int i = 0; i < kN; ++i) {
        rem[static_cast<std::size_t>(i)] = f.to_bits(codeword[static_cast<std::size_t>(i)]);
    }
    for (int i = kN - 1; i >= kParity; --i) {
        const std::uint64_t coef = rem[static_cast<std::size_t>(i)];
        if (coef == 0) {
            continue;
        }
        for (std::size_t j = 0; j < g.size(); ++j) {
            rem[static_cast<std::size_t>(i) - (g.size() - 1) + j] ^= gmul[j].mul(coef);
        }
    }
    for (int i = 0; i < kParity; ++i) {
        codeword[static_cast<std::size_t>(i)] = f.from_bits(rem[static_cast<std::size_t>(i)]);
    }

    // All syndromes S_i = c(alpha^i) must vanish for a valid codeword.
    bool valid = true;
    for (int i = 1; i <= kParity; ++i) {
        if (!poly_eval(f, codeword, f.pow(alpha, static_cast<std::uint64_t>(i)))
                 .is_zero()) {
            valid = false;
        }
    }
    std::printf("clean codeword syndromes: %s\n", valid ? "all zero (OK)" : "NONZERO");

    // Inject a single symbol error and correct it from S1, S2.
    auto received = codeword;
    const int error_pos = 120;
    const Element error_mag = f.from_bits(0x5A);
    received[error_pos] = f.add(received[error_pos], error_mag);

    const Element s1 = poly_eval(f, received, alpha);
    const Element s2 = poly_eval(f, received, f.pow(alpha, 2));
    // For one error at position j with magnitude e: S1 = e*alpha^j,
    // S2 = e*alpha^(2j) => alpha^j = S2/S1, e = S1^2/S2.
    const Element locator = f.mul(s2, f.inv(s1));
    int found_pos = -1;
    for (int j = 0; j < kN; ++j) {
        if (f.pow(alpha, static_cast<std::uint64_t>(j)) == locator) {
            found_pos = j;
            break;
        }
    }
    const Element found_mag = f.mul(f.sqr(s1), f.inv(s2));
    std::printf("injected error: pos=%d mag=0x%02llx; decoded: pos=%d mag=0x%02llx\n",
                error_pos, static_cast<unsigned long long>(f.to_bits(error_mag)),
                found_pos, static_cast<unsigned long long>(f.to_bits(found_mag)));

    received[found_pos] = f.add(received[found_pos], found_mag);
    const bool corrected = received == codeword;
    std::printf("correction: %s\n", corrected ? "codeword restored" : "FAILED");

    // Bulk region traffic: scale the whole codeword by one constant (the kind
    // of row scaling erasure-coding interleavers do) through the region API,
    // and cross-check against a scalar multiply loop.
    const Element scale = f.from_bits(0xC3);
    std::vector<std::uint64_t> region(kN, 0);
    for (int i = 0; i < kN; ++i) {
        region[static_cast<std::size_t>(i)] = f.to_bits(codeword[static_cast<std::size_t>(i)]);
    }
    f.ops().mul_region_const(f.to_bits(scale), region);
    bool region_ok = true;
    for (int i = 0; i < kN; ++i) {
        if (region[static_cast<std::size_t>(i)] !=
            f.to_bits(f.mul(scale, codeword[static_cast<std::size_t>(i)]))) {
            region_ok = false;
        }
    }
    std::printf("region-scaled codeword vs scalar loop: %s\n",
                region_ok ? "match" : "MISMATCH");

    // Cross-check: the gate-level multiplier computes the same products the
    // encoder used.
    NetlistMultiplier hw{f};
    bool hw_ok = true;
    for (int trial = 0; trial < 64; ++trial) {
        const Element a = f.from_bits(static_cast<std::uint64_t>(trial * 37 + 11));
        const Element b = f.from_bits(static_cast<std::uint64_t>(trial * 91 + 5));
        if (hw.mul(a, b) != f.mul(a, b)) {
            hw_ok = false;
        }
    }
    std::printf("gate-level multiplier cross-check: %s\n", hw_ok ? "PASS" : "FAIL");
    return (valid && corrected && found_pos == error_pos && hw_ok && region_ok) ? 0 : 1;
}
