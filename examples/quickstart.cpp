// Quickstart: build the paper's GF(2^8) field, multiply two elements, build
// the proposed bit-parallel multiplier netlist, verify it, and run the full
// FPGA model flow to get Table V-style metrics.

#include "field/field_catalog.h"
#include "fpga/flow.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"

#include <cstdio>

int main() {
    using namespace gfr;

    // 1. The field of the paper's worked example: GF(2^8) with the type II
    //    pentanomial y^8 + y^4 + y^3 + y^2 + 1.
    const field::Field fld = field::gf256_paper_field();
    std::printf("field     : %s\n", fld.to_string().c_str());

    // 2. Reference arithmetic.
    const auto a = fld.from_bits(0x57);
    const auto b = fld.from_bits(0x83);
    const auto c = fld.mul(a, b);
    std::printf("reference : 0x57 * 0x83 = 0x%02llx\n",
                static_cast<unsigned long long>(fld.to_bits(c)));

    // 3. The paper's proposed multiplier: flat split-term sums (Table IV).
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    const auto stats = nl.stats();
    std::printf("netlist   : %lld AND, %lld XOR, delay %s\n",
                static_cast<long long>(stats.n_and), static_cast<long long>(stats.n_xor),
                stats.delay_string().c_str());

    // 4. Exhaustive functional verification against the reference (all 2^16
    //    operand pairs at m = 8).
    const auto failure = mult::verify_multiplier(nl, fld);
    std::printf("verify    : %s\n",
                failure ? failure->to_string().c_str() : "PASS (exhaustive)");

    // 5. The FPGA model flow with synthesis freedom — the paper's setting
    //    for this method.
    fpga::FlowOptions opts;
    opts.synthesis_freedom = true;
    const auto r = fpga::run_flow(nl, opts);
    std::printf("flow      : %d LUTs, %d slices, %.2f ns, AxT = %.2f\n", r.luts,
                r.slices, r.delay_ns, r.area_time);
    std::printf("paper     : 33 LUTs, 12 slices, 9.77 ns, AxT = 322.41 (Table V)\n");
    return failure ? 1 : 0;
}
