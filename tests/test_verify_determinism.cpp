// Determinism guarantees of the verification campaign.
//
// The whole point of the campaign design is that parallelism is invisible
// in the results: the verdict AND the counterexample are a pure function of
// (netlist, field, options), never of the thread count or the scheduler.
// Three pillars, each pinned here:
//
//   - shard-seed derivation: random sweep s draws its PRNG seed from
//     (options.seed, s) via Campaign::derive_sweep_seed.  Its values are
//     frozen — a logged counterexample's seed must replay forever;
//   - globally-first failure: the campaign returns the failure of the
//     lowest sweep index, which a 1-thread scan finds by construction, so
//     1 thread and N threads must report the identical VerifyFailure /
//     Mismatch;
//   - regime parity: exhaustive and random regimes both hold the guarantee.

#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "netlist/equivalence.h"
#include "verify/campaign.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace gfr::verify {
namespace {

TEST(SweepSeedDerivation, ValuesArePinned) {
    // Frozen constants: changing derive_sweep_seed silently invalidates
    // every previously logged counterexample seed.  Do not update these
    // without a migration story.
    EXPECT_EQ(Campaign::derive_sweep_seed(0xD1CEULL, 0), 0xC49EB8A07743C35CULL);
    EXPECT_EQ(Campaign::derive_sweep_seed(0xD1CEULL, 1), 0xC5FA5AE8A1E685A5ULL);
    EXPECT_EQ(Campaign::derive_sweep_seed(0xD1CEULL, 12345), 0xBB2D0A0B7690A450ULL);
    EXPECT_EQ(Campaign::derive_sweep_seed(0x5eed5eedULL, 0), 0x7035596C4E403667ULL);
    EXPECT_EQ(Campaign::derive_sweep_seed(0, 0), 0xE220A8397B1DCDAFULL);
}

TEST(SweepSeedDerivation, SweepsAreDecorrelated) {
    // Adjacent sweep seeds must not collide or correlate trivially: check
    // pairwise distinctness over a window (splitmix64 guarantees far more).
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 0; s < 512; ++s) {
        seeds.push_back(Campaign::derive_sweep_seed(0xD1CEULL, s));
    }
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

/// Single-fault multiplier: one XOR leaf dropped from output c_target by
/// XOR-ing it back in (x ^ x = 0 would vanish; instead corrupt by adding an
/// unrelated input), deterministic per field.
netlist::Netlist faulted_multiplier(const field::Field& f, mult::Method method) {
    const auto good = mult::build_multiplier(method, f);
    const std::size_t target = static_cast<std::size_t>(f.degree()) / 2;
    return testutil::clone_netlist(
        good, nullptr,
        [&](std::size_t index, std::span<const netlist::NodeId> mapped,
            netlist::Netlist& dst) {
            return index == target ? dst.make_xor(mapped[index], dst.inputs()[1].node)
                                   : mapped[index];
        });
}

std::string failure_string(const std::optional<mult::VerifyFailure>& f) {
    return f.has_value() ? f->to_string() : std::string{};
}

TEST(VerifyDeterminism, ExhaustiveRegimeIdenticalAtEveryThreadCount) {
    const field::Field f = field::gf256_paper_field();
    const auto bad = faulted_multiplier(f, mult::Method::Imana2012);

    mult::VerifyOptions opts;
    opts.threads = 1;
    const auto reference = mult::verify_multiplier(bad, f, opts);
    ASSERT_TRUE(reference.has_value());

    for (const int threads : {2, 3, 4, 8}) {
        opts.threads = threads;
        const auto failure = mult::verify_multiplier(bad, f, opts);
        ASSERT_TRUE(failure.has_value()) << threads << " threads";
        EXPECT_EQ(failure_string(failure), failure_string(reference))
            << threads << " threads";
        EXPECT_EQ(failure->coefficient, reference->coefficient);
        EXPECT_EQ(failure->a, reference->a);
        EXPECT_EQ(failure->b, reference->b);
    }
}

TEST(VerifyDeterminism, RandomRegimeIdenticalAtEveryThreadCount) {
    const field::Field f = field::Field::type2(64, 23);
    const auto bad = faulted_multiplier(f, mult::Method::RashidiDirect);

    // The comparison below is only meaningful if the threaded runs really
    // shard: with the random-regime floor (4 sweeps per worker), the
    // default 64 sweeps at 8 threads must spread across 8 workers.  Pin
    // the engine math so this suite can never silently collapse into
    // serial-vs-serial.
    ASSERT_EQ((Campaign{{.threads = 8, .min_sweeps_per_worker = 4}}.worker_count(64)),
              8);

    mult::VerifyOptions opts;
    opts.seed = 0xC0FFEE;
    opts.threads = 1;
    const auto reference = mult::verify_multiplier(bad, f, opts);
    ASSERT_TRUE(reference.has_value());

    for (const int threads : {2, 4, 8}) {
        opts.threads = threads;
        const auto failure = mult::verify_multiplier(bad, f, opts);
        ASSERT_TRUE(failure.has_value()) << threads << " threads";
        EXPECT_EQ(failure_string(failure), failure_string(reference))
            << threads << " threads";
    }
}

TEST(VerifyDeterminism, MultiWordRandomRegimeIdenticalAtEveryThreadCount) {
    const field::Field f = field::Field::type2(113, 4);
    const auto bad = faulted_multiplier(f, mult::Method::Date2018Flat);

    mult::VerifyOptions opts;
    opts.seed = 0xDEAD;
    opts.random_sweeps = 8;
    opts.threads = 1;
    const auto reference = mult::verify_multiplier(bad, f, opts);
    ASSERT_TRUE(reference.has_value());

    opts.threads = 6;
    const auto failure = mult::verify_multiplier(bad, f, opts);
    ASSERT_TRUE(failure.has_value());
    EXPECT_EQ(failure_string(failure), failure_string(reference));
}

TEST(VerifyDeterminism, SeedSelectsTheCounterexample) {
    // Different seeds may surface different counterexamples (random
    // regime); the same seed must always surface the same one.
    const field::Field f = field::Field::type2(64, 23);
    const auto bad = faulted_multiplier(f, mult::Method::SchoolReduce);

    mult::VerifyOptions opts;
    opts.seed = 1;
    const auto first = mult::verify_multiplier(bad, f, opts);
    const auto again = mult::verify_multiplier(bad, f, opts);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(failure_string(first), failure_string(again));
}

TEST(EquivalenceDeterminism, MismatchIdenticalAtEveryThreadCount) {
    // 30 inputs -> random regime.  The missing 30th XOR leaf flips half of
    // all assignments; every thread count must report the same lane.
    netlist::Netlist lhs;
    netlist::Netlist rhs;
    std::vector<netlist::NodeId> li;
    std::vector<netlist::NodeId> ri;
    for (int i = 0; i < 30; ++i) {
        li.push_back(lhs.add_input("i" + std::to_string(i)));
        ri.push_back(rhs.add_input("i" + std::to_string(i)));
    }
    lhs.add_output("y", lhs.make_xor_tree(li, netlist::TreeShape::Balanced));
    rhs.add_output("y",
                   rhs.make_xor_tree(std::span{ri.data(), 29}, netlist::TreeShape::Chain));

    netlist::EquivalenceOptions opts;
    opts.threads = 1;
    const auto reference = netlist::check_equivalence(lhs, rhs, opts);
    ASSERT_TRUE(reference.has_value());

    for (const int threads : {2, 4, 8}) {
        opts.threads = threads;
        const auto mm = netlist::check_equivalence(lhs, rhs, opts);
        ASSERT_TRUE(mm.has_value()) << threads << " threads";
        EXPECT_EQ(mm->to_string(), reference->to_string()) << threads << " threads";
        EXPECT_EQ(mm->input_bits, reference->input_bits);
        EXPECT_EQ(mm->output_name, reference->output_name);
    }
}

TEST(EquivalenceDeterminism, ExhaustiveMismatchIdenticalAtEveryThreadCount) {
    // 16 inputs -> exhaustive regime sharded across workers.
    const field::Field f = field::gf256_paper_field();
    const auto lhs = mult::build_multiplier(mult::Method::Imana2016Paren, f);
    const auto rhs = faulted_multiplier(f, mult::Method::Imana2016Paren);

    netlist::EquivalenceOptions opts;
    opts.threads = 1;
    const auto reference = netlist::check_equivalence(lhs, rhs, opts);
    ASSERT_TRUE(reference.has_value());

    for (const int threads : {2, 4, 8}) {
        opts.threads = threads;
        const auto mm = netlist::check_equivalence(lhs, rhs, opts);
        ASSERT_TRUE(mm.has_value()) << threads << " threads";
        EXPECT_EQ(mm->to_string(), reference->to_string()) << threads << " threads";
    }
}

}  // namespace
}  // namespace gfr::verify
