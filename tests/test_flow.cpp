// End-to-end FPGA flow: consistency of the Table V metrics and the paper's
// central claim at the flow level.

#include "fpga/flow.h"
#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "netlist/simulate.h"

#include <gtest/gtest.h>

namespace gfr::fpga {
namespace {

TEST(Flow, ProducesConsistentMetrics) {
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    FlowOptions opts;
    opts.synthesis_freedom = true;
    const auto result = run_flow(nl, opts);
    EXPECT_GT(result.luts, 0);
    EXPECT_GT(result.slices, 0);
    EXPECT_LE(result.slices, result.luts);
    EXPECT_GT(result.delay_ns, 0.0);
    EXPECT_DOUBLE_EQ(result.area_time, result.luts * result.delay_ns);
    EXPECT_EQ(result.network.lut_count(), result.luts);
    EXPECT_EQ(result.network.depth(), result.lut_depth);
}

TEST(Flow, SynthesisFreedomPreservesMultiplierFunction) {
    // The mapped-and-synthesised network must still multiply correctly: we
    // re-simulate the LUT network against field arithmetic via the netlist
    // round trip (flow keeps port names/order).
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    FlowOptions opts;
    opts.synthesis_freedom = true;
    const auto result = run_flow(nl, opts);

    // Exhaustive over all 2^16 operand pairs through the LUT network.
    for (std::uint64_t block = 0; block < (1U << 10); ++block) {
        std::vector<std::uint64_t> in(16);
        for (int i = 0; i < 16; ++i) {
            in[static_cast<std::size_t>(i)] = netlist::exhaustive_pattern(i, block);
        }
        const auto ref = netlist::simulate(nl, in);
        const auto got = result.network.simulate(in);
        for (std::size_t o = 0; o < ref.size(); ++o) {
            ASSERT_EQ(ref[o], got[o]) << "block " << block << " output " << o;
        }
    }
}

TEST(Flow, SynthesisFreedomHelpsFlatNetlist) {
    // The paper's core claim, at flow level: the flat Table IV netlist mapped
    // WITH synthesis freedom beats (or ties) the same netlist mapped as-given
    // on the A x T metric.
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    FlowOptions with;
    with.synthesis_freedom = true;
    FlowOptions without;
    without.synthesis_freedom = false;
    const auto r_with = run_flow(nl, with);
    const auto r_without = run_flow(nl, without);
    EXPECT_LE(r_with.area_time, r_without.area_time * 1.05);
}

TEST(Flow, GateStatsReflectSynthesis) {
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    FlowOptions with;
    with.synthesis_freedom = true;
    const auto result = run_flow(nl, with);
    // Synthesis never changes the AND layer of a PB multiplier.
    EXPECT_EQ(result.gate_stats.n_and, 64);
    EXPECT_EQ(result.gate_stats.and_depth, 1);
}

TEST(Flow, DefaultOptionsMapAsGiven) {
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Imana2016Paren, fld);
    const auto result = run_flow(nl);
    // As-given mapping preserves the gate stats of the input netlist.
    EXPECT_EQ(result.gate_stats.n_xor, nl.stats().n_xor);
    EXPECT_EQ(result.gate_stats.xor_depth, nl.stats().xor_depth);
}

TEST(Flow, LargerFieldsCostMore) {
    const auto nl8 = mult::build_multiplier(mult::Method::Date2018Flat,
                                            field::Field::type2(8, 2));
    const auto nl64 = mult::build_multiplier(mult::Method::Date2018Flat,
                                             field::Field::type2(64, 23));
    FlowOptions opts;
    opts.synthesis_freedom = true;
    const auto r8 = run_flow(nl8, opts);
    const auto r64 = run_flow(nl64, opts);
    EXPECT_GT(r64.luts, 10 * r8.luts);
    EXPECT_GT(r64.delay_ns, r8.delay_ns);
    EXPECT_GT(r64.area_time, r8.area_time);
}

}  // namespace
}  // namespace gfr::fpga
