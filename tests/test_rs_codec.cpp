// rs::Codec and rs_matrix — the Reed-Solomon erasure tier.
//
// The heart of this file is the exhaustive sweep: for RS(12,8) over both
// GF(2^8) (byte layout) and GF(2^16) (u16 layout), EVERY erasure pattern
// of <= n-k losses (794 subsets) must decode bit-identically to the
// original stripe, for both generator families.  A randomized large-stripe
// tier then cross-checks the codec against a brute-force Gaussian
// -elimination reference solver that shares no code with rs::invert.

#include "field/field_catalog.h"
#include "field/gf2m.h"
#include "rs/codec.h"
#include "rs/rs_matrix.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "testutil.h"

namespace gfr {
namespace {

using field::Field;
using rs::Codec;
using rs::GeneratorKind;
using rs::Matrix;
using testutil::Xorshift64Star;

/// The PAR2 field: x^16 + x^12 + x^3 + x + 1.
Field gf2_16_field() {
    return Field{gf2::Poly::from_exponents({16, 12, 3, 1, 0})};
}

/// EXPECT_THROW with the exact what() string (test_region_errors idiom).
template <typename Fn>
void expect_invalid(Fn&& fn, const std::string& message) {
    try {
        fn();
        ADD_FAILURE() << "expected std::invalid_argument: " << message;
    } catch (const std::invalid_argument& e) {
        EXPECT_EQ(std::string{e.what()}, message);
    }
}

/// A full stripe: n shards of len symbols, data filled from rng.
template <typename T>
struct Stripe {
    std::vector<std::vector<T>> shards;

    Stripe(const Field& f, int n, int k, std::size_t len, Xorshift64Star& rng)
        : shards(static_cast<std::size_t>(n), std::vector<T>(len)) {
        for (int i = 0; i < k; ++i) {
            for (auto& v : shards[static_cast<std::size_t>(i)]) {
                v = static_cast<T>(testutil::random_word_element(f, rng));
            }
        }
    }

    [[nodiscard]] std::vector<std::span<const T>> data_spans(int k) const {
        std::vector<std::span<const T>> s;
        for (int i = 0; i < k; ++i) {
            s.emplace_back(shards[static_cast<std::size_t>(i)]);
        }
        return s;
    }
    [[nodiscard]] std::vector<std::span<T>> parity_spans(int k) {
        std::vector<std::span<T>> s;
        for (std::size_t i = static_cast<std::size_t>(k); i < shards.size();
             ++i) {
            s.emplace_back(shards[i]);
        }
        return s;
    }
    [[nodiscard]] std::vector<std::span<T>> all_spans() {
        std::vector<std::span<T>> s;
        for (auto& sh : shards) {
            s.emplace_back(sh);
        }
        return s;
    }
};

/// Brute-force reference decoder: rebuilds the k data shards from any k
/// survivors by Gaussian elimination with back-substitution on the
/// augmented system M * D = S (M the survivor rows of [I ; P], S the
/// survivor symbols).  Shares nothing with rs::invert — forward
/// elimination plus back-substitution on an augmented tableau, not
/// Gauss-Jordan on an identity block.
template <typename T>
std::vector<std::vector<T>> reference_decode(const field::FieldOps& ops,
                                             const Matrix& parity, int n, int k,
                                             const std::vector<std::vector<T>>& shards,
                                             const std::vector<bool>& present) {
    std::vector<int> survivors;
    for (int i = 0; i < n && static_cast<int>(survivors.size()) < k; ++i) {
        if (present[static_cast<std::size_t>(i)]) {
            survivors.push_back(i);
        }
    }
    EXPECT_EQ(static_cast<int>(survivors.size()), k) << "not enough survivors";
    const std::size_t len = shards[0].size();
    // Augmented tableau: k rows of [ M | S ], one symbol column per
    // position in the stripe.
    std::vector<std::vector<std::uint64_t>> aug(
        static_cast<std::size_t>(k),
        std::vector<std::uint64_t>(static_cast<std::size_t>(k) + len, 0));
    for (int t = 0; t < k; ++t) {
        auto& row = aug[static_cast<std::size_t>(t)];
        const int s = survivors[static_cast<std::size_t>(t)];
        if (s < k) {
            row[static_cast<std::size_t>(s)] = 1;
        } else {
            for (int c = 0; c < k; ++c) {
                row[static_cast<std::size_t>(c)] = parity.at(s - k, c);
            }
        }
        const auto& sh = shards[static_cast<std::size_t>(s)];
        for (std::size_t j = 0; j < len; ++j) {
            row[static_cast<std::size_t>(k) + j] = sh[j];
        }
    }
    // Forward elimination to row echelon form.
    for (int col = 0; col < k; ++col) {
        int pivot = -1;
        for (int r = col; r < k; ++r) {
            if (aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] != 0) {
                pivot = r;
                break;
            }
        }
        EXPECT_GE(pivot, 0) << "survivor matrix singular — not MDS";
        std::swap(aug[static_cast<std::size_t>(col)],
                  aug[static_cast<std::size_t>(pivot)]);
        const std::uint64_t inv_p = ops.inv(
            aug[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)]);
        for (auto& v : aug[static_cast<std::size_t>(col)]) {
            v = ops.mul(inv_p, v);
        }
        for (int r = col + 1; r < k; ++r) {
            const std::uint64_t f =
                aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)];
            if (f == 0) {
                continue;
            }
            for (std::size_t c = 0; c < aug[0].size(); ++c) {
                aug[static_cast<std::size_t>(r)][c] ^=
                    ops.mul(f, aug[static_cast<std::size_t>(col)][c]);
            }
        }
    }
    // Back-substitution.
    for (int col = k - 1; col > 0; --col) {
        for (int r = 0; r < col; ++r) {
            const std::uint64_t f =
                aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)];
            if (f == 0) {
                continue;
            }
            for (std::size_t c = 0; c < aug[0].size(); ++c) {
                aug[static_cast<std::size_t>(r)][c] ^=
                    ops.mul(f, aug[static_cast<std::size_t>(col)][c]);
            }
        }
    }
    std::vector<std::vector<T>> out(static_cast<std::size_t>(k),
                                    std::vector<T>(len));
    for (int i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < len; ++j) {
            out[static_cast<std::size_t>(i)][j] = static_cast<T>(
                aug[static_cast<std::size_t>(i)][static_cast<std::size_t>(k) + j]);
        }
    }
    return out;
}

/// Encode a stripe, erase per-mask, decode, and demand bit-identity.
template <typename T>
void exhaustive_erasure_sweep(const Field& f, GeneratorKind kind) {
    constexpr int kN = 12;
    constexpr int kK = 8;
    constexpr std::size_t kLen = 48;
    Xorshift64Star rng{0xE4A5E5EEDULL ^ static_cast<std::uint64_t>(kind)};
    const Codec codec{f.ops(), kN, kK, kind};

    Stripe<T> stripe{f, kN, kK, kLen, rng};
    codec.encode(stripe.data_spans(kK), stripe.parity_spans(kK));
    const std::vector<std::vector<T>> golden = stripe.shards;

    int patterns = 0;
    for (std::uint32_t mask = 0; mask < (1U << kN); ++mask) {
        if (std::popcount(mask) > kN - kK) {
            continue;
        }
        ++patterns;
        Stripe<T> work = stripe;
        std::vector<bool> present(kN, true);
        for (int i = 0; i < kN; ++i) {
            if ((mask >> i) & 1U) {
                present[static_cast<std::size_t>(i)] = false;
                // Poison the erased shard so a decoder that "recovers" by
                // reading stale bytes fails loudly.
                std::fill(work.shards[static_cast<std::size_t>(i)].begin(),
                          work.shards[static_cast<std::size_t>(i)].end(),
                          static_cast<T>(0x55));
            }
        }
        codec.decode(work.all_spans(), present);
        for (int i = 0; i < kN; ++i) {
            ASSERT_EQ(work.shards[static_cast<std::size_t>(i)],
                      golden[static_cast<std::size_t>(i)])
                << "mask=" << mask << " shard=" << i;
        }
    }
    // 1 + 12 + 66 + 220 + 495 subsets of size <= 4.
    EXPECT_EQ(patterns, 794);
}

TEST(RsCodec, ExhaustiveErasuresGf256Cauchy) {
    exhaustive_erasure_sweep<std::uint8_t>(field::gf256_paper_field(),
                                           GeneratorKind::Cauchy);
}

TEST(RsCodec, ExhaustiveErasuresGf256Vandermonde) {
    exhaustive_erasure_sweep<std::uint8_t>(field::gf256_paper_field(),
                                           GeneratorKind::Vandermonde);
}

TEST(RsCodec, ExhaustiveErasuresGf65536Cauchy) {
    exhaustive_erasure_sweep<std::uint16_t>(gf2_16_field(),
                                            GeneratorKind::Cauchy);
}

TEST(RsCodec, ExhaustiveErasuresGf65536Vandermonde) {
    exhaustive_erasure_sweep<std::uint16_t>(gf2_16_field(),
                                            GeneratorKind::Vandermonde);
}

/// Randomized large stripes vs the independent Gaussian reference.
template <typename T>
void random_large_stripes(const Field& f, GeneratorKind kind,
                          std::uint64_t seed) {
    constexpr int kN = 14;
    constexpr int kK = 10;
    constexpr std::size_t kLen = 1 << 12;
    Xorshift64Star rng{seed};
    const Codec codec{f.ops(), kN, kK, kind};

    for (int round = 0; round < 6; ++round) {
        Stripe<T> stripe{f, kN, kK, kLen, rng};
        codec.encode(stripe.data_spans(kK), stripe.parity_spans(kK));
        const std::vector<std::vector<T>> golden = stripe.shards;

        // Random erasure pattern: 1..n-k losses.
        std::vector<int> idx(kN);
        std::iota(idx.begin(), idx.end(), 0);
        for (int i = kN - 1; i > 0; --i) {
            std::swap(idx[static_cast<std::size_t>(i)],
                      idx[static_cast<std::size_t>(rng.next() %
                                                   static_cast<std::uint64_t>(i + 1))]);
        }
        const int losses = 1 + static_cast<int>(rng.next() % (kN - kK));
        std::vector<bool> present(kN, true);
        for (int i = 0; i < losses; ++i) {
            present[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])] =
                false;
        }

        // Independent reference rebuilds the data block from survivors.
        const auto ref_data = reference_decode<T>(f.ops(), codec.parity_matrix(),
                                                  kN, kK, stripe.shards, present);
        for (int i = 0; i < kK; ++i) {
            ASSERT_EQ(ref_data[static_cast<std::size_t>(i)],
                      golden[static_cast<std::size_t>(i)])
                << "reference decoder disagrees with the original data";
        }

        Stripe<T> work = stripe;
        for (int i = 0; i < kN; ++i) {
            if (!present[static_cast<std::size_t>(i)]) {
                std::fill(work.shards[static_cast<std::size_t>(i)].begin(),
                          work.shards[static_cast<std::size_t>(i)].end(),
                          static_cast<T>(1));
            }
        }
        codec.decode(work.all_spans(), present);
        for (int i = 0; i < kN; ++i) {
            ASSERT_EQ(work.shards[static_cast<std::size_t>(i)],
                      golden[static_cast<std::size_t>(i)])
                << "round=" << round << " shard=" << i;
        }
    }
}

TEST(RsCodec, RandomLargeStripesGf256VsGaussianReference) {
    random_large_stripes<std::uint8_t>(field::gf256_paper_field(),
                                       GeneratorKind::Cauchy, 0xBADC0DE1);
    random_large_stripes<std::uint8_t>(field::gf256_paper_field(),
                                       GeneratorKind::Vandermonde, 0xBADC0DE2);
}

TEST(RsCodec, RandomLargeStripesGf65536VsGaussianReference) {
    random_large_stripes<std::uint16_t>(gf2_16_field(), GeneratorKind::Cauchy,
                                        0xBADC0DE3);
    random_large_stripes<std::uint16_t>(gf2_16_field(),
                                        GeneratorKind::Vandermonde, 0xBADC0DE4);
}

TEST(RsCodec, U64LayoutRoundTripsAnySingleWordField) {
    // One canonical element per u64 word: the layout every m <= 64 field
    // supports, including GF(2^16) next to its dense u16 layout.
    Xorshift64Star rng{0x60D15EEDULL};
    for (const Field& f : {gf2_16_field(), Field::type2(64, 23)}) {
        const Codec codec{f.ops(), 9, 6};
        Stripe<std::uint64_t> stripe{f, 9, 6, 257, rng};
        codec.encode(stripe.data_spans(6), stripe.parity_spans(6));
        const auto golden = stripe.shards;
        std::vector<bool> present{true, false, true, true, false, true,
                                  true, false, true};
        for (int i = 0; i < 9; ++i) {
            if (!present[static_cast<std::size_t>(i)]) {
                std::fill(stripe.shards[static_cast<std::size_t>(i)].begin(),
                          stripe.shards[static_cast<std::size_t>(i)].end(), 0);
            }
        }
        codec.decode(stripe.all_spans(), present);
        EXPECT_EQ(stripe.shards, golden) << f.to_string();
    }
}

TEST(RsCodec, ForcedScalarMatchesAutoKernels) {
    // The SIMD encode/decode paths must be bit-identical to forced scalar
    // — the same gate BENCH_8 applies before reporting any number.
    Xorshift64Star rng{0x5CA1A45EEDULL};
    const Field f8 = field::gf256_paper_field();
    const Codec fast{f8.ops(), 12, 8};
    const Codec slow{f8.ops(), 12, 8, GeneratorKind::Cauchy,
                     bulk::KernelKind::Scalar};

    Stripe<std::uint8_t> a{f8, 12, 8, 4097, rng};
    Stripe<std::uint8_t> b = a;
    fast.encode(a.data_spans(8), a.parity_spans(8));
    slow.encode(b.data_spans(8), b.parity_spans(8));
    EXPECT_EQ(a.shards, b.shards);

    std::vector<bool> present(12, true);
    present[0] = present[5] = present[9] = present[11] = false;
    for (auto* s : {&a, &b}) {
        for (int i : {0, 5, 9, 11}) {
            std::fill(s->shards[static_cast<std::size_t>(i)].begin(),
                      s->shards[static_cast<std::size_t>(i)].end(), 0xFF);
        }
    }
    fast.decode(a.all_spans(), present);
    slow.decode(b.all_spans(), present);
    EXPECT_EQ(a.shards, b.shards);
}

// --- Matrix tier -------------------------------------------------------------

TEST(RsMatrix, EverySurvivorSubmatrixInvertible) {
    // MDS means ANY k rows of [I ; P] are invertible: all C(12,8) = 495
    // survivor subsets, both families, both fields.
    for (const Field& f : {field::gf256_paper_field(), gf2_16_field()}) {
        for (const GeneratorKind kind :
             {GeneratorKind::Cauchy, GeneratorKind::Vandermonde}) {
            constexpr int kN = 12;
            constexpr int kK = 8;
            const Matrix p = kind == GeneratorKind::Cauchy
                                 ? rs::cauchy_parity_matrix(f.ops(), kN, kK)
                                 : rs::vandermonde_parity_matrix(f.ops(), kN, kK);
            int subsets = 0;
            for (std::uint32_t mask = 0; mask < (1U << kN); ++mask) {
                if (std::popcount(mask) != kK) {
                    continue;
                }
                ++subsets;
                Matrix m(kK, kK);
                int row = 0;
                for (int i = 0; i < kN; ++i) {
                    if (!((mask >> i) & 1U)) {
                        continue;
                    }
                    if (i < kK) {
                        m.at(row, i) = 1;
                    } else {
                        for (int c = 0; c < kK; ++c) {
                            m.at(row, c) = p.at(i - kK, c);
                        }
                    }
                    ++row;
                }
                const Matrix inv = rs::invert(f.ops(), m);
                // Spot-check M * inv(M) = I on the diagonal corners.
                const Matrix prod = rs::mat_mul(f.ops(), m, inv);
                ASSERT_EQ(prod.at(0, 0), 1U);
                ASSERT_EQ(prod.at(kK - 1, kK - 1), 1U);
                ASSERT_EQ(prod.at(0, kK - 1), 0U);
            }
            EXPECT_EQ(subsets, 495);
        }
    }
}

TEST(RsMatrix, InverseRoundTripsRandomMatrices) {
    const Field f = gf2_16_field();
    Xorshift64Star rng{0x1237EA5EEDULL};
    for (int round = 0; round < 8; ++round) {
        Matrix m(5, 5);
        for (auto& v : m.a) {
            v = testutil::random_word_element(f, rng);
        }
        Matrix inv;
        try {
            inv = rs::invert(f.ops(), m);
        } catch (const std::invalid_argument&) {
            continue;  // genuinely singular random draw
        }
        const Matrix prod = rs::mat_mul(f.ops(), m, inv);
        for (int i = 0; i < 5; ++i) {
            for (int j = 0; j < 5; ++j) {
                ASSERT_EQ(prod.at(i, j), i == j ? 1U : 0U);
            }
        }
    }
}

TEST(RsMatrix, ErrorPaths) {
    const Field f = field::gf256_paper_field();
    expect_invalid([&] { (void)rs::cauchy_parity_matrix(f.ops(), 4, 4); },
                   "rs: requires 1 <= k < n");
    expect_invalid([&] { (void)rs::cauchy_parity_matrix(f.ops(), 4, 0); },
                   "rs: requires 1 <= k < n");
    expect_invalid([&] { (void)rs::vandermonde_parity_matrix(f.ops(), 3, 5); },
                   "rs: requires 1 <= k < n");
    // n must fit in the field: GF(2^4) has only 16 elements.
    const Field f4{gf2::preferred_low_weight_modulus(4).value()};
    expect_invalid(
        [&] { (void)rs::cauchy_parity_matrix(f4.ops(), 17, 12); },
        "rs: n exceeds the field size (need n <= 2^m distinct elements)");
    // Multi-word fields have no single-word canonical elements.
    const Field f163 = Field::type2(163, 66);
    expect_invalid([&] { (void)rs::cauchy_parity_matrix(f163.ops(), 12, 8); },
                   "rs: field degree must be <= 64");
    Matrix rect(2, 3);
    expect_invalid([&] { (void)rs::invert(f.ops(), rect); },
                   "rs::invert: matrix must be square");
    Matrix zero(3, 3);
    expect_invalid([&] { (void)rs::invert(f.ops(), zero); },
                   "rs::invert: matrix is singular");
    Matrix a(2, 3);
    Matrix b(2, 3);
    expect_invalid([&] { (void)rs::mat_mul(f.ops(), a, b); },
                   "rs::mat_mul: shape mismatch");
}

// --- Codec error paths -------------------------------------------------------

TEST(RsCodec, ErrorPaths) {
    const Field f = field::gf256_paper_field();
    const Codec codec{f.ops(), 6, 4};
    std::vector<std::vector<std::uint8_t>> bufs(
        6, std::vector<std::uint8_t>(8, 0));
    auto data = [&](int count) {
        std::vector<std::span<const std::uint8_t>> s;
        for (int i = 0; i < count; ++i) {
            s.emplace_back(bufs[static_cast<std::size_t>(i)]);
        }
        return s;
    };
    auto spans = [&](int count) {
        std::vector<std::span<std::uint8_t>> s;
        for (int i = 0; i < count; ++i) {
            s.emplace_back(bufs[static_cast<std::size_t>(i)]);
        }
        return s;
    };
    expect_invalid([&] { codec.encode(data(3), spans(2)); },
                   "rs::Codec::encode: expected k data shards");
    expect_invalid([&] { codec.encode(data(4), spans(3)); },
                   "rs::Codec::encode: expected n-k parity shards");
    std::vector<std::uint8_t> short_buf(4);
    {
        auto d = data(4);
        d[2] = std::span<const std::uint8_t>{short_buf};
        auto p = spans(2);
        expect_invalid([&] { codec.encode(d, p); },
                       "rs::Codec: shard lengths differ");
    }
    expect_invalid([&] { codec.decode(spans(5), std::vector<bool>(5, true)); },
                   "rs::Codec::decode: expected n shards");
    expect_invalid([&] { codec.decode(spans(6), std::vector<bool>(5, true)); },
                   "rs::Codec::decode: present flags must have n entries");
    {
        std::vector<bool> few(6, false);
        few[0] = few[1] = few[2] = true;
        expect_invalid([&] { codec.decode(spans(6), few); },
                       "rs::Codec::decode: fewer than k shards present");
    }
    // Wrong layout for the field degree trips the RegionEngine gate.
    const Field f16 = gf2_16_field();
    const Codec c16{f16.ops(), 6, 4};
    EXPECT_THROW(c16.encode(data(4), spans(2)), std::invalid_argument);
}

}  // namespace
}  // namespace gfr
