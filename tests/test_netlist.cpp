// Netlist IR: construction, simplification rules, structural hashing, stats,
// and the O(1) input-name index — property cases run on the shared harness
// (tests/testutil.h).

#include "netlist/netlist.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gfr::netlist {
namespace {

using testutil::Xorshift64Star;

TEST(Netlist, InputsAndOutputs) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("y", nl.make_and(a, b));
    EXPECT_EQ(nl.inputs().size(), 2U);
    EXPECT_EQ(nl.outputs().size(), 1U);
    EXPECT_EQ(nl.input_index("a"), 0);
    EXPECT_EQ(nl.input_index("b"), 1);
    EXPECT_EQ(nl.input_index("zzz"), -1);
}

TEST(Netlist, DuplicateInputNameThrows) {
    Netlist nl;
    nl.add_input("a");
    EXPECT_THROW(nl.add_input("a"), std::invalid_argument);
}

TEST(Netlist, InputIndexMapMatchesPortOrderAtMultiplierScale) {
    // input_index is served by a hash map since PR 4 (the linear scan made
    // add_input's uniqueness check quadratic on m=571 builds).  Build an
    // m=571-sized interface in a PRNG-shuffled insertion order and check
    // the map agrees with the ports vector for every name, plus misses and
    // late duplicates.
    Xorshift64Star rng{0x1DBDULL};
    std::vector<std::string> names;
    for (int i = 0; i < 571; ++i) {
        names.push_back("a" + std::to_string(i));
        names.push_back("b" + std::to_string(i));
    }
    for (std::size_t i = names.size(); i > 1; --i) {
        std::swap(names[i - 1], names[rng.next() % i]);
    }
    Netlist nl;
    for (const auto& name : names) {
        nl.add_input(name);
    }
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        ASSERT_EQ(nl.input_index(nl.inputs()[i].name), static_cast<int>(i));
    }
    EXPECT_EQ(nl.input_index("c0"), -1);
    EXPECT_THROW(nl.add_input(names.back()), std::invalid_argument);
}

TEST(Netlist, StructuralHashingDeduplicates) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    EXPECT_EQ(nl.make_and(a, b), nl.make_and(a, b));
    EXPECT_EQ(nl.make_and(a, b), nl.make_and(b, a));  // commutative canonicalisation
    EXPECT_EQ(nl.make_xor(a, b), nl.make_xor(b, a));
    EXPECT_NE(nl.make_and(a, b), nl.make_xor(a, b));
}

TEST(Netlist, SimplificationRules) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto zero = nl.const0();
    EXPECT_EQ(nl.make_xor(a, a), zero);   // x ^ x = 0
    EXPECT_EQ(nl.make_xor(a, zero), a);   // x ^ 0 = x
    EXPECT_EQ(nl.make_and(a, a), a);      // x & x = x
    EXPECT_EQ(nl.make_and(a, zero), zero);// x & 0 = 0
    EXPECT_EQ(nl.make_and(b, zero), zero);
}

TEST(Netlist, Const0IsSingleton) {
    Netlist nl;
    EXPECT_EQ(nl.const0(), nl.const0());
}

TEST(Netlist, XorTreeShapes) {
    Netlist nl;
    std::vector<NodeId> leaves;
    for (int i = 0; i < 8; ++i) {
        leaves.push_back(nl.add_input("i" + std::to_string(i)));
    }
    nl.add_output("bal", nl.make_xor_tree(leaves, TreeShape::Balanced));
    const auto stats_bal = nl.stats();
    EXPECT_EQ(stats_bal.xor_depth, 3);  // complete tree over 8 leaves
    EXPECT_EQ(stats_bal.n_xor, 7);

    Netlist nl2;
    std::vector<NodeId> leaves2;
    for (int i = 0; i < 8; ++i) {
        leaves2.push_back(nl2.add_input("i" + std::to_string(i)));
    }
    nl2.add_output("chain", nl2.make_xor_tree(leaves2, TreeShape::Chain));
    const auto stats_chain = nl2.stats();
    EXPECT_EQ(stats_chain.xor_depth, 7);  // left-leaning chain
    EXPECT_EQ(stats_chain.n_xor, 7);
}

TEST(Netlist, XorTreeDepthIsCeilLog2) {
    for (int n = 1; n <= 33; ++n) {
        Netlist nl;
        std::vector<NodeId> leaves;
        for (int i = 0; i < n; ++i) {
            leaves.push_back(nl.add_input("i" + std::to_string(i)));
        }
        nl.add_output("o", nl.make_xor_tree(leaves, TreeShape::Balanced));
        int expected = 0;
        while ((1 << expected) < n) {
            ++expected;
        }
        EXPECT_EQ(nl.stats().xor_depth, expected) << "n=" << n;
    }
}

TEST(Netlist, EmptyXorTreeIsConst0) {
    Netlist nl;
    nl.add_input("a");
    const auto node = nl.make_xor_tree({}, TreeShape::Balanced);
    EXPECT_EQ(nl.node(node).kind, GateKind::Const0);
}

TEST(Netlist, StatsCountReachableOnly) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto used = nl.make_and(a, b);
    nl.make_xor(a, b);  // dead gate
    nl.add_output("y", used);
    const auto stats = nl.stats();
    EXPECT_EQ(stats.n_and, 1);
    EXPECT_EQ(stats.n_xor, 0);  // the dead XOR is not counted
}

TEST(Netlist, DepthProfileSeparatesAndXor) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    const auto d = nl.add_input("d");
    // (a&b) ^ (c&d): one AND level below one XOR level.
    nl.add_output("y", nl.make_xor(nl.make_and(a, b), nl.make_and(c, d)));
    const auto stats = nl.stats();
    EXPECT_EQ(stats.and_depth, 1);
    EXPECT_EQ(stats.xor_depth, 1);
    EXPECT_EQ(stats.delay_string(), "T_A + T_X");
}

TEST(Netlist, DelayStringRendering) {
    NetlistStats s;
    s.and_depth = 1;
    s.xor_depth = 5;
    EXPECT_EQ(s.delay_string(), "T_A + 5T_X");
    s.and_depth = 0;
    EXPECT_EQ(s.delay_string(), "5T_X");
    s.xor_depth = 0;
    EXPECT_EQ(s.delay_string(), "0");
    s.and_depth = 2;
    s.xor_depth = 1;
    EXPECT_EQ(s.delay_string(), "2T_A + T_X");
}

TEST(Netlist, FanoutCounts) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto p = nl.make_and(a, b);
    const auto q = nl.make_xor(p, a);
    nl.add_output("y1", q);
    nl.add_output("y2", p);  // p drives the XOR and an output
    const auto fanout = nl.fanout_counts();
    EXPECT_EQ(fanout[p], 2);
    EXPECT_EQ(fanout[q], 1);
    EXPECT_EQ(fanout[a], 2);  // AND + XOR
    EXPECT_EQ(fanout[b], 1);
}

TEST(Netlist, OutputMayAliasInput) {
    Netlist nl;
    const auto a = nl.add_input("a");
    nl.add_output("y", a);
    EXPECT_EQ(nl.stats().n_and + nl.stats().n_xor, 0);
    EXPECT_EQ(nl.stats().xor_depth, 0);
}

TEST(Netlist, InvalidFaninThrows) {
    Netlist nl;
    const auto a = nl.add_input("a");
    EXPECT_THROW(nl.make_and(a, 999), std::out_of_range);
    EXPECT_THROW(nl.make_xor(999, a), std::out_of_range);
    EXPECT_THROW(nl.add_output("y", 999), std::out_of_range);
}

TEST(Netlist, TopologicalInvariant) {
    // Every gate's fanins have smaller ids — passes and simulation rely on it.
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    auto t = nl.make_xor(nl.make_and(a, b), c);
    t = nl.make_xor(t, nl.make_and(b, c));
    nl.add_output("y", t);
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        const auto& n = nl.node(id);
        if (n.kind == GateKind::And2 || n.kind == GateKind::Xor2) {
            EXPECT_LT(n.a, id);
            EXPECT_LT(n.b, id);
        }
    }
}

}  // namespace
}  // namespace gfr::netlist
