// Differential property tests for the large-field inversion tier.
//
// Field::inv now runs the engine's Itoh-Tsujii addition chain; this file
// pins it, on every Table V catalog field and on the large differential
// degrees {127, 192, 256, 409, 571, 1024}, against the two structurally
// independent inverses the repo keeps for exactly this purpose:
//
//   - inv_euclid: extended Euclid over generic divmod (the seed's path);
//   - inv_fermat: the plain square-and-multiply ladder.
//
// Cross-checking three algorithms that share no code is the differential
// anchor recommended by the formal GF(2^m) verification literature (Yu &
// Ciesielski, arXiv:1802.06870): a bug in the chain, the Karatsuba product
// underneath it, or the fold-based reduction cannot agree with Euclid over
// bit-serial divmod by accident.

#include "field/field_ops.h"
#include "field/gf2m.h"
#include "testutil.h"

#include <gtest/gtest.h>

namespace gfr::field {
namespace {

using gf2::Poly;
using testutil::Xorshift64Star;

void check_inverse_properties(const Field& f, std::uint64_t seed, int trials) {
    Xorshift64Star rng{seed};
    for (int trial = 0; trial < trials; ++trial) {
        const Poly a = testutil::random_nonzero_element(f, rng);
        const Poly ia = f.inv(a);
        // Defining property first: a * a^-1 == 1 under the *reference* mul.
        EXPECT_EQ(f.mul_reference(a, ia), f.one()) << f.to_string();
        // Then agreement with both independent algorithms.
        EXPECT_EQ(ia, f.inv_euclid(a)) << f.to_string();
        EXPECT_EQ(ia, f.inv_fermat(a)) << f.to_string();
        // Inverse is an involution.
        EXPECT_EQ(f.inv(ia), a) << f.to_string();
    }
    // 1^-1 == 1, and (y)^-1 * y == 1.
    EXPECT_EQ(f.inv(f.one()), f.one());
    const Poly y = f.from_bits(2);
    EXPECT_EQ(f.mul(y, f.inv(y)), f.one());
}

void check_zero_throws_on_every_path(const Field& f) {
    const Poly zero = f.zero();
    EXPECT_THROW(static_cast<void>(f.inv(zero)), std::invalid_argument);
    EXPECT_THROW(static_cast<void>(f.inv_euclid(zero)), std::invalid_argument);
    EXPECT_THROW(static_cast<void>(f.inv_fermat(zero)), std::invalid_argument);
    Poly out;
    EXPECT_THROW(f.ops().inv(zero, out), std::invalid_argument);
    if (f.ops().single_word()) {
        EXPECT_THROW(static_cast<void>(f.ops().inv(0)), std::invalid_argument);
        EXPECT_THROW(static_cast<void>(f.ops().inv_fermat(0)), std::invalid_argument);
    } else {
        // A nonzero representative that reduces to zero mod f must throw too.
        EXPECT_THROW(f.ops().inv(f.modulus(), out), std::invalid_argument);
    }
}

TEST(InverseTier, AllTable5Fields) {
    testutil::for_each_table5_field([](const FieldSpec& spec, const Field& f) {
        check_inverse_properties(f, static_cast<std::uint64_t>(spec.m) * 7919 + 1,
                                 20);
        check_zero_throws_on_every_path(f);
    });
}

class InverseTierLargeFields : public ::testing::TestWithParam<int> {};

TEST_P(InverseTierLargeFields, EngineAgreesWithEuclidAndFermat) {
    const int m = GetParam();
    const Field f{testutil::large_modulus(m)};
    // inv_euclid at m = 1024 runs ~m bit-serial divmod steps per call, so
    // keep the trial count modest; the Table V sweep supplies volume.
    const int trials = (m >= 512) ? 6 : 12;
    check_inverse_properties(f, static_cast<std::uint64_t>(m) * 0x1517, trials);
    check_zero_throws_on_every_path(f);
}

INSTANTIATE_TEST_SUITE_P(LargeDegrees, InverseTierLargeFields,
                         ::testing::ValuesIn(testutil::large_differential_degrees()),
                         [](const auto& info) {
                             return "m" + std::to_string(info.param);
                         });

// The engine's u64 chain and the multi-word chain are distinct code paths;
// on a single-word field the Poly overload routes to the u64 one, so pin the
// u64 chain against Fermat-on-engine separately (same mul/sqr kernels, but
// a different exponentiation schedule).
TEST(InverseTier, SingleWordChainMatchesFermatLadder) {
    for (const int m : {8, 23, 47, 64}) {
        const Field f{(m == 64) ? gf2::TypeIIPentanomial{64, 23}.poly()
                                : testutil::large_modulus(m)};
        const auto& ops = f.ops();
        Xorshift64Star rng{static_cast<std::uint64_t>(m) * 0xABCD};
        for (int trial = 0; trial < 200; ++trial) {
            std::uint64_t a = testutil::random_word_element(f, rng);
            if (a == 0) {
                a = 1;
            }
            ASSERT_EQ(ops.inv(a), ops.inv_fermat(a)) << "m=" << m << " a=" << a;
        }
    }
}

// Steady-state multi-word inversion with a caller-owned scratch reuses every
// buffer: after warmup the chain performs no heap allocation.
TEST(InverseTier, MultiWordInversionIsAllocationFreeInSteadyState) {
    const Field f{testutil::large_modulus(409)};
    const auto& ops = f.ops();
    FieldOps::Scratch scratch;
    Xorshift64Star rng{409};
    const Poly a = testutil::random_nonzero_element(f, rng);
    Poly out;
    ops.inv(a, out, scratch);  // warm scratch, arena, and out
    const testutil::AllocationGuard guard;
    for (int i = 0; i < 50; ++i) {
        ops.inv(a, out, scratch);
    }
    EXPECT_EQ(guard.delta(), 0) << "Itoh-Tsujii steady state touched the heap";
    EXPECT_EQ(f.mul_reference(a, out), f.one());
}

}  // namespace
}  // namespace gfr::field
