// Theory-vs-implementation: the symbolic complexity of the split method
// must match the generated netlists gate for gate on every Table V field.

#include "field/field_catalog.h"
#include "gf2/pentanomial.h"
#include "multipliers/generator.h"
#include "st/complexity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gfr::st {
namespace {

TEST(ComplexityTheory, Gf28MatchesPaperSection2) {
    // (m,n) = (8,2): 64 AND; parenthesised depth T_A + 5T_X (paper text).
    const auto c = split_method_complexity(gf2::Poly::from_exponents({8, 4, 3, 2, 0}));
    EXPECT_EQ(c.and_gates, 64);
    EXPECT_EQ(c.depth_paren, 5);
    // Table IV has 8+5+10+9+10+7+8+5 = 62 split-term references.
    int total_terms = 0;
    for (const int t : c.terms_per_coefficient) {
        total_terms += t;
    }
    EXPECT_EQ(total_terms, 62);
    EXPECT_EQ(c.combine_xor_flat, 62 - 8);
}

class TheoryVsGenerated : public ::testing::TestWithParam<field::FieldSpec> {};

TEST_P(TheoryVsGenerated, ParenDepthMatchesHuffmanBound) {
    const auto spec = GetParam();
    const field::Field fld = spec.make();
    const auto theory = split_method_complexity(fld.modulus());
    const auto stats =
        mult::build_multiplier(mult::Method::Imana2016Paren, fld).stats();
    EXPECT_EQ(stats.xor_depth, theory.depth_paren) << spec.label();
    EXPECT_EQ(stats.n_and, theory.and_gates) << spec.label();
}

TEST_P(TheoryVsGenerated, FlatXorCountIsUpperBound) {
    // The generated flat netlist shares z pairs across groups through
    // structural hashing, so its XOR count is bounded above by the symbolic
    // count (which treats groups as disjoint trees) and below by half of it.
    const auto spec = GetParam();
    const field::Field fld = spec.make();
    const auto theory = split_method_complexity(fld.modulus());
    const auto stats =
        mult::build_multiplier(mult::Method::Date2018Flat, fld).stats();
    EXPECT_LE(stats.n_xor, theory.total_xor_flat) << spec.label();
    EXPECT_GE(stats.n_xor, theory.total_xor_flat / 2) << spec.label();
}

INSTANTIATE_TEST_SUITE_P(Table5Fields, TheoryVsGenerated,
                         ::testing::ValuesIn(field::table5_fields()),
                         [](const auto& info) {
                             return "m" + std::to_string(info.param.m) + "n" +
                                    std::to_string(info.param.n);
                         });

TEST(ComplexityTheory, DepthGrowsLogarithmically) {
    // depth_paren ~ log2(m): sanity across a sweep of degrees.
    int prev = 0;
    for (const int m : {8, 16, 32, 64, 128}) {
        const auto penta = gf2::first_type2_irreducible(m);
        if (!penta) {
            continue;
        }
        const auto c = split_method_complexity(penta->poly());
        EXPECT_GE(c.depth_paren, prev);
        EXPECT_LE(c.depth_paren, 3 + static_cast<int>(std::log2(m)));
        prev = c.depth_paren;
    }
}

TEST(ComplexityTheory, AndCountIsAlwaysMSquared) {
    for (const auto& spec : field::table5_fields()) {
        const auto c = split_method_complexity(
            gf2::TypeIIPentanomial{spec.m, spec.n}.poly());
        EXPECT_EQ(c.and_gates, spec.m * spec.m);
        EXPECT_EQ(static_cast<int>(c.terms_per_coefficient.size()), spec.m);
    }
}

}  // namespace
}  // namespace gfr::st
