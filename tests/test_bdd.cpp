// ROBDD engine: canonicity, operations, SAT queries, and formal equivalence
// of the paper's multipliers at GF(2^8) (complete proof, not sampling).

#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "netlist/bdd.h"
#include "netlist/passes.h"

#include <gtest/gtest.h>

namespace gfr::netlist {
namespace {

TEST(Bdd, TerminalsAndVariables) {
    BddManager mgr{4};
    EXPECT_NE(BddManager::kFalse, BddManager::kTrue);
    const auto x0 = mgr.var(0);
    const auto x1 = mgr.var(1);
    EXPECT_NE(x0, x1);
    EXPECT_EQ(mgr.var(0), x0);  // hash-consed: same node
    EXPECT_THROW(static_cast<void>(mgr.var(4)), std::out_of_range);
    EXPECT_THROW(BddManager{-1}, std::invalid_argument);
}

TEST(Bdd, BooleanIdentities) {
    BddManager mgr{3};
    const auto a = mgr.var(0);
    const auto b = mgr.var(1);
    EXPECT_EQ(mgr.bdd_and(a, BddManager::kTrue), a);
    EXPECT_EQ(mgr.bdd_and(a, BddManager::kFalse), BddManager::kFalse);
    EXPECT_EQ(mgr.bdd_and(a, a), a);
    EXPECT_EQ(mgr.bdd_xor(a, a), BddManager::kFalse);
    EXPECT_EQ(mgr.bdd_xor(a, BddManager::kFalse), a);
    EXPECT_EQ(mgr.bdd_not(mgr.bdd_not(a)), a);
    // Canonicity: same function, same reference.
    EXPECT_EQ(mgr.bdd_xor(a, b), mgr.bdd_xor(b, a));
    EXPECT_EQ(mgr.bdd_and(a, b), mgr.bdd_and(b, a));
}

TEST(Bdd, EvaluateMatchesSemantics) {
    BddManager mgr{3};
    const auto f = mgr.bdd_xor(mgr.bdd_and(mgr.var(0), mgr.var(1)), mgr.var(2));
    for (std::uint64_t assignment = 0; assignment < 8; ++assignment) {
        const bool a = assignment & 1;
        const bool b = (assignment >> 1) & 1;
        const bool c = (assignment >> 2) & 1;
        EXPECT_EQ(mgr.evaluate(f, assignment), (a && b) != c) << assignment;
    }
}

TEST(Bdd, SatQueries) {
    BddManager mgr{4};
    const auto f = mgr.bdd_and(mgr.var(0), mgr.bdd_not(mgr.var(2)));
    const auto sat = mgr.any_sat(f);
    ASSERT_TRUE(sat.has_value());
    EXPECT_TRUE(mgr.evaluate(f, *sat));
    // x0=1, x2=0, x1/x3 free: 4 of 16 assignments satisfy.
    EXPECT_DOUBLE_EQ(mgr.sat_count(f), 4.0);
    EXPECT_FALSE(mgr.any_sat(BddManager::kFalse).has_value());
    EXPECT_DOUBLE_EQ(mgr.sat_count(BddManager::kTrue), 16.0);
}

TEST(Bdd, XorChainStaysLinear) {
    // XOR of n variables has a BDD with O(n) nodes — sanity for our domain.
    BddManager mgr{32};
    auto f = mgr.var(0);
    for (int i = 1; i < 32; ++i) {
        f = mgr.bdd_xor(f, mgr.var(i));
    }
    // The final parity BDD is linear in n (2 internal nodes per level); the
    // manager also retains intermediate garbage from the chain of applies.
    EXPECT_LT(mgr.size(f), 70U);
    EXPECT_DOUBLE_EQ(mgr.sat_count(f), std::pow(2.0, 31));  // odd-parity half
}

TEST(Bdd, BuildOutputBddsMatchesSimulation) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    nl.add_output("maj", nl.make_xor(nl.make_xor(nl.make_and(a, b), nl.make_and(a, c)),
                                     nl.make_and(b, c)));
    BddManager mgr{3};
    const auto bdds = build_output_bdds(mgr, nl);
    ASSERT_EQ(bdds.size(), 1U);
    for (std::uint64_t v = 0; v < 8; ++v) {
        const int ones = static_cast<int>((v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1));
        EXPECT_EQ(mgr.evaluate(bdds[0], v), ones >= 2) << v;
    }
}

TEST(BddEquivalence, ProvesPassCorrectness) {
    Netlist nl;
    std::vector<NodeId> leaves;
    for (int i = 0; i < 12; ++i) {
        leaves.push_back(nl.add_input("i" + std::to_string(i)));
    }
    nl.add_output("y", nl.make_xor_tree(leaves, TreeShape::Chain));
    EXPECT_FALSE(check_equivalence_bdd(nl, balance_xor_trees(nl)).has_value());
    EXPECT_FALSE(check_equivalence_bdd(nl, flatten_to_anf(nl)).has_value());
}

TEST(BddEquivalence, FindsCounterexample) {
    Netlist lhs;
    Netlist rhs;
    const auto la = lhs.add_input("a");
    const auto lb = lhs.add_input("b");
    lhs.add_output("y", lhs.make_xor(la, lb));
    const auto ra = rhs.add_input("a");
    const auto rb = rhs.add_input("b");
    rhs.add_output("y", rhs.make_and(ra, rb));
    const auto mm = check_equivalence_bdd(lhs, rhs);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->output_name, "y");
    EXPECT_NE(mm->lhs_value, mm->rhs_value);
}

TEST(BddEquivalence, FormallyProvesAllGf28Multipliers) {
    // Complete formal proof (not sampling): every architecture computes the
    // same 16-input Boolean functions as the naive baseline.
    const field::Field fld = field::gf256_paper_field();
    const auto reference = mult::build_multiplier(mult::Method::SchoolReduce, fld);
    for (const auto& info : mult::all_methods()) {
        const auto nl = mult::build_multiplier(info.method, fld);
        const auto mm = check_equivalence_bdd(reference, nl);
        EXPECT_FALSE(mm.has_value())
            << std::string{info.key} << ": " << mm->to_string();
    }
}

TEST(BddEquivalence, SatCountOfMultiplierOutput) {
    // c0 of the GF(2^8) multiplier is an XOR of ~17 biased product terms:
    // near-balanced but not exactly half (measured 32640 of 65536).  The
    // count must be reproducible and within 1% of half.
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Imana2012, fld);
    BddManager mgr{16};
    const auto bdds = build_output_bdds(mgr, nl);
    EXPECT_DOUBLE_EQ(mgr.sat_count(bdds[0]), 32640.0);
    EXPECT_NEAR(mgr.sat_count(bdds[0]), 32768.0, 400.0);
}

TEST(BddEquivalence, InterfaceMismatchThrows) {
    Netlist lhs;
    lhs.add_output("y", lhs.add_input("a"));
    Netlist rhs;
    rhs.add_output("z", rhs.add_input("a"));
    EXPECT_THROW(static_cast<void>(check_equivalence_bdd(lhs, rhs)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace gfr::netlist
