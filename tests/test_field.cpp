// GF(2^m) field axioms and reference arithmetic, across paper fields.

#include "field/gf2m.h"

#include <gtest/gtest.h>

#include <random>

namespace gfr::field {
namespace {

using gf2::Poly;

TEST(Field, ConstructionValidatesModulus) {
    EXPECT_NO_THROW(Field{Poly::from_exponents({8, 4, 3, 2, 0})});
    EXPECT_THROW(Field{Poly::from_exponents({8, 4})}, std::invalid_argument);
    EXPECT_THROW(Field{Poly::one()}, std::invalid_argument);
    EXPECT_THROW(Field{Poly{}}, std::invalid_argument);
}

TEST(Field, Type2Factory) {
    const Field f = Field::type2(8, 2);
    EXPECT_EQ(f.degree(), 8);
    EXPECT_EQ(f.modulus(), Poly::from_exponents({8, 4, 3, 2, 0}));
    EXPECT_EQ(f.to_string(), "GF(2^8) mod y^8 + y^4 + y^3 + y^2 + 1");
}

TEST(Field, Gf256KnownProducts) {
    const Field f = Field::type2(8, 2);
    // x * x^7 = x^8 = x^4+x^3+x^2+1 (Q row 0).
    EXPECT_EQ(f.mul(f.from_bits(0x02), f.from_bits(0x80)), f.from_bits(0x1D));
    // 1 is the multiplicative identity.
    EXPECT_EQ(f.mul(f.one(), f.from_bits(0xAB)), f.from_bits(0xAB));
    // 0 annihilates.
    EXPECT_TRUE(f.mul(f.zero(), f.from_bits(0xFF)).is_zero());
}

TEST(Field, BitsRoundTrip) {
    const Field f = Field::type2(8, 2);
    for (std::uint64_t v : {0ULL, 1ULL, 0x1DULL, 0xFFULL}) {
        EXPECT_EQ(f.to_bits(f.from_bits(v)), v);
    }
    // from_bits masks to m bits.
    EXPECT_EQ(f.to_bits(f.from_bits(0x1FF)), 0xFFULL);
}

class FieldAxioms : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FieldAxioms, RingAndFieldLaws) {
    const auto [m, n] = GetParam();
    const Field f = Field::type2(m, n);
    std::mt19937_64 rng{static_cast<std::uint64_t>(m * 1000 + n)};
    for (int trial = 0; trial < 20; ++trial) {
        const auto a = f.random_element(rng);
        const auto b = f.random_element(rng);
        const auto c = f.random_element(rng);
        EXPECT_TRUE(f.is_element(a));
        // Commutativity / associativity / distributivity.
        EXPECT_EQ(f.mul(a, b), f.mul(b, a));
        EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        // Identity.
        EXPECT_EQ(f.mul(a, f.one()), a);
        // Squaring is the Frobenius endomorphism.
        EXPECT_EQ(f.sqr(f.add(a, b)), f.add(f.sqr(a), f.sqr(b)));
        EXPECT_EQ(f.sqr(a), f.mul(a, a));
    }
}

TEST_P(FieldAxioms, InversesAgreeAndWork) {
    const auto [m, n] = GetParam();
    const Field f = Field::type2(m, n);
    std::mt19937_64 rng{static_cast<std::uint64_t>(m * 7919 + n)};
    for (int trial = 0; trial < 10; ++trial) {
        auto a = f.random_element(rng);
        if (a.is_zero()) {
            a = f.one();
        }
        const auto inv_chain = f.inv(a);         // engine Itoh-Tsujii
        const auto inv_eea = f.inv_euclid(a);    // extended Euclid
        const auto inv_fer = f.inv_fermat(a);    // Fermat ladder
        EXPECT_EQ(inv_chain, inv_eea);
        EXPECT_EQ(inv_eea, inv_fer);
        EXPECT_EQ(f.mul(a, inv_chain), f.one());
    }
    EXPECT_THROW(f.inv(f.zero()), std::invalid_argument);
    EXPECT_THROW(f.inv_euclid(f.zero()), std::invalid_argument);
    EXPECT_THROW(f.inv_fermat(f.zero()), std::invalid_argument);
}

TEST_P(FieldAxioms, FermatLittleTheorem) {
    const auto [m, n] = GetParam();
    const Field f = Field::type2(m, n);
    std::mt19937_64 rng{static_cast<std::uint64_t>(m * 31 + n)};
    for (int trial = 0; trial < 5; ++trial) {
        const auto a = f.random_element(rng);
        // a^(2^m) = a: m successive squarings return the element.
        auto acc = a;
        for (int i = 0; i < m; ++i) {
            acc = f.sqr(acc);
        }
        EXPECT_EQ(acc, a);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperFields, FieldAxioms,
                         ::testing::Values(std::pair{8, 2}, std::pair{64, 23},
                                           std::pair{113, 4}, std::pair{113, 34},
                                           std::pair{122, 49}, std::pair{139, 59},
                                           std::pair{148, 72}, std::pair{163, 66},
                                           std::pair{163, 68}),
                         [](const auto& info) {
                             return "m" + std::to_string(info.param.first) + "n" +
                                    std::to_string(info.param.second);
                         });

TEST(Field, PowBasics) {
    const Field f = Field::type2(8, 2);
    const auto x = f.from_bits(0x02);
    EXPECT_EQ(f.pow(x, 0), f.one());
    EXPECT_EQ(f.pow(x, 1), x);
    EXPECT_EQ(f.pow(x, 8), f.from_bits(0x1D));
    // Multiplicative order of the group divides 255.
    EXPECT_EQ(f.pow(x, 255), f.one());
}

TEST(Field, ExhaustiveInverseGf256) {
    const Field f = Field::type2(8, 2);
    for (std::uint64_t v = 1; v < 256; ++v) {
        const auto a = f.from_bits(v);
        EXPECT_EQ(f.mul(a, f.inv(a)), f.one()) << "v=" << v;
    }
}

TEST(Field, RandomElementInRange) {
    const Field f = Field::type2(163, 66);
    std::mt19937_64 rng{99};
    for (int trial = 0; trial < 20; ++trial) {
        const auto a = f.random_element(rng);
        EXPECT_TRUE(f.is_element(a));
        EXPECT_LT(a.degree(), 163);
    }
}

TEST(Field, ToBitsRejectsWideFields) {
    const Field f = Field::type2(113, 4);
    EXPECT_THROW(static_cast<void>(f.to_bits(f.one())), std::invalid_argument);
}

}  // namespace
}  // namespace gfr::field
