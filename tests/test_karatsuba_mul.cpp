// Boundary tests for the Karatsuba layer above the word-level schoolbook
// product in Poly::mul_into.
//
// Three kernels are compared pairwise: mul_into (schoolbook + Karatsuba
// above the crossover), mul_schoolbook_into (word-level schoolbook only, the
// PR-1 engine product), and mul_comb_into (bit-serial comb — the independent
// reference sharing no code with either).  The threshold is forced low so
// the recursion is exercised at, just below, and just above the crossover
// without needing megabit operands, then restored.

#include "gf2/gf2_poly.h"

#include "testutil.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace gfr::gf2 {
namespace {

using testutil::Xorshift64Star;

/// Force a process-wide threshold for one scope, restoring the tuned value.
class ThresholdGuard {
public:
    explicit ThresholdGuard(int words) : saved_{karatsuba_threshold_words()} {
        set_karatsuba_threshold_words(words);
    }
    ~ThresholdGuard() { set_karatsuba_threshold_words(saved_); }
    ThresholdGuard(const ThresholdGuard&) = delete;
    ThresholdGuard& operator=(const ThresholdGuard&) = delete;

private:
    int saved_;
};

/// All three kernels must agree bit-exactly on (a, b).
void expect_all_kernels_agree(const Poly& a, const Poly& b, const char* what) {
    Poly fast;
    Poly school;
    Poly comb;
    MulArena arena;
    Poly::mul_into(a, b, fast, arena);
    Poly::mul_schoolbook_into(a, b, school);
    Poly::mul_comb_into(a, b, comb);
    EXPECT_EQ(fast, school) << what;
    EXPECT_EQ(school, comb) << what;
    EXPECT_EQ(fast, a * b) << what;  // operator* rides the fast kernel
}

TEST(KaratsubaMul, AgreesWithSchoolbookAroundTheCrossover) {
    const ThresholdGuard guard{2};
    Xorshift64Star rng{0x5EED};
    // Word counts straddling the forced crossover: the smaller operand at
    // threshold (schoolbook base case), threshold + 1 (first split), and a
    // few sizes above (multi-level recursion).
    for (const int an : {1, 2, 3, 4, 5, 7, 8, 16}) {
        for (const int bn : {1, 2, 3, 4, 5, 7, 8, 16}) {
            for (int trial = 0; trial < 8; ++trial) {
                const Poly a = testutil::random_poly(rng, an * 64);
                const Poly b = testutil::random_poly(rng, bn * 64);
                expect_all_kernels_agree(
                    a, b,
                    ("an=" + std::to_string(an) + " bn=" + std::to_string(bn)).c_str());
            }
        }
    }
}

TEST(KaratsubaMul, DegenerateOperands) {
    const ThresholdGuard guard{2};
    Xorshift64Star rng{0xDE6E};
    const Poly zero;
    const Poly one = Poly::one();
    const Poly wide = testutil::random_poly(rng, 40 * 64);
    // Zero and identity.
    expect_all_kernels_agree(zero, wide, "0 * wide");
    expect_all_kernels_agree(wide, zero, "wide * 0");
    expect_all_kernels_agree(one, wide, "1 * wide");
    // Single word x many words (the unbalanced split path, recursively).
    expect_all_kernels_agree(testutil::random_poly(rng, 64), wide, "1w * 40w");
    // Highly unbalanced degrees (3 words vs 40 words).
    expect_all_kernels_agree(testutil::random_poly(rng, 3 * 64), wide, "3w * 40w");
    // Sparse operands (top bit only) across a split boundary.
    expect_all_kernels_agree(Poly::monomial(64 * 7), Poly::monomial(64 * 9 + 63),
                             "monomials");
    // Squaring shape: a * a through the multiply kernels.
    const Poly a = testutil::random_poly(rng, 20 * 64);
    expect_all_kernels_agree(a, a, "a * a");
}

TEST(KaratsubaMul, EveryThresholdProducesTheSameProduct) {
    // The crossover is a performance knob, never a correctness one: sweep it
    // across the operand size and demand identical products each time.
    Xorshift64Star rng{0x7157};
    const Poly a = testutil::random_poly(rng, 24 * 64);
    const Poly b = testutil::random_poly(rng, 17 * 64);
    Poly want;
    Poly::mul_comb_into(a, b, want);
    for (int threshold = 1; threshold <= 32; ++threshold) {
        const ThresholdGuard guard{threshold};
        Poly got;
        Poly::mul_into(a, b, got);
        ASSERT_EQ(got, want) << "threshold=" << threshold;
    }
}

TEST(KaratsubaMul, ThresholdSetterClampsToOne) {
    const int saved = karatsuba_threshold_words();
    set_karatsuba_threshold_words(0);
    EXPECT_EQ(karatsuba_threshold_words(), 1);
    set_karatsuba_threshold_words(-5);
    EXPECT_EQ(karatsuba_threshold_words(), 1);
    set_karatsuba_threshold_words(saved);
}

TEST(KaratsubaMul, SteadyStateWithWarmArenaIsAllocationFree) {
    const ThresholdGuard guard{2};
    Xorshift64Star rng{0xA11C};
    const Poly a = testutil::random_poly(rng, 16 * 64);
    const Poly b = testutil::random_poly(rng, 16 * 64);
    MulArena arena;
    Poly out;
    Poly::mul_into(a, b, out, arena);  // warm arena and output capacity
    const testutil::AllocationGuard alloc;
    for (int i = 0; i < 200; ++i) {
        Poly::mul_into(a, b, out, arena);
    }
    EXPECT_EQ(alloc.delta(), 0) << "Karatsuba steady state touched the heap";
}

TEST(KaratsubaMul, AliasedOutputFallsBackCorrectly) {
    const ThresholdGuard guard{2};
    Xorshift64Star rng{0xA11A};
    Poly a = testutil::random_poly(rng, 12 * 64);
    const Poly b = testutil::random_poly(rng, 12 * 64);
    Poly want;
    Poly::mul_comb_into(a, b, want);
    MulArena arena;
    Poly::mul_into(a, b, a, arena);  // out aliases a
    EXPECT_EQ(a, want);
}

}  // namespace
}  // namespace gfr::gf2
