// LutNetwork container: levels, fanout, simulation semantics, Verilog.
// simulate() runs through the compiled execution layer since PR 4, so the
// old per-lane truth-table walk is kept here as the independent reference
// for randomized differentials (shared harness: tests/testutil.h).

#include "fpga/lut_network.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gfr::fpga {
namespace {

using testutil::Xorshift64Star;

/// The pre-PR-4 interpretation semantics, verbatim: per LUT, per lane,
/// assemble the minterm index and read the truth bit.  Structurally
/// independent of exec::Program's Shannon folds and fused-XOR lowering.
std::vector<std::uint64_t> simulate_per_lane(const LutNetwork& net,
                                             std::span<const std::uint64_t> in) {
    std::vector<std::uint64_t> value(net.input_names.size() + net.luts.size(), 0);
    std::copy(in.begin(), in.end(), value.begin());
    for (std::size_t i = 0; i < net.luts.size(); ++i) {
        const auto& lut = net.luts[i];
        std::uint64_t out = 0;
        for (int lane = 0; lane < 64; ++lane) {
            unsigned idx = 0;
            for (std::size_t j = 0; j < lut.fanins.size(); ++j) {
                const auto ref = lut.fanins[j];
                const std::uint64_t bit =
                    (ref < 0) ? 0 : (value[static_cast<std::size_t>(ref)] >> lane) & 1U;
                idx |= static_cast<unsigned>(bit) << j;
            }
            out |= ((lut.truth >> idx) & 1U) << lane;
        }
        value[net.input_names.size() + i] = out;
    }
    std::vector<std::uint64_t> out;
    out.reserve(net.outputs.size());
    for (const auto& [name, ref] : net.outputs) {
        out.push_back(ref < 0 ? 0 : value[static_cast<std::size_t>(ref)]);
    }
    return out;
}

/// Random topologically-ordered LUT network with arbitrary truth tables
/// (parity, AND and fully general cones all occur).
LutNetwork random_lut_network(Xorshift64Star& rng, int n_inputs, int n_luts,
                              int n_outputs) {
    LutNetwork net;
    for (int i = 0; i < n_inputs; ++i) {
        net.input_names.push_back("i" + std::to_string(i));
    }
    for (int l = 0; l < n_luts; ++l) {
        LutNetwork::Lut lut;
        const int k = 1 + static_cast<int>(rng.next() % 6);
        const std::int32_t max_ref = n_inputs + l;
        for (int j = 0; j < k; ++j) {
            // Occasionally wire a const-0 fanin.
            lut.fanins.push_back((rng.next() % 16 == 0)
                                     ? LutNetwork::kConst0Ref
                                     : static_cast<std::int32_t>(rng.next() % max_ref));
        }
        lut.truth = rng.next() & ((k == 6) ? ~std::uint64_t{0}
                                           : ((std::uint64_t{1} << (1U << k)) - 1));
        net.luts.push_back(lut);
    }
    for (int o = 0; o < n_outputs; ++o) {
        net.outputs.emplace_back(
            "o" + std::to_string(o),
            static_cast<std::int32_t>(rng.next() % (n_inputs + n_luts)));
    }
    return net;
}

/// y = (a ^ b), z = (a ^ b) & c as a hand-built two-LUT network.
LutNetwork two_lut_network() {
    LutNetwork net;
    net.input_names = {"a", "b", "c"};
    LutNetwork::Lut l0;
    l0.fanins = {0, 1};          // a, b
    l0.truth = 0x6;              // XOR2: minterms 01 and 10
    net.luts.push_back(l0);
    LutNetwork::Lut l1;
    l1.fanins = {3, 2};          // lut0, c
    l1.truth = 0x8;              // AND2: minterm 11
    net.luts.push_back(l1);
    net.outputs = {{"y", 3}, {"z", 4}};
    return net;
}

TEST(LutNetwork, LevelsAndDepth) {
    const auto net = two_lut_network();
    EXPECT_EQ(net.levels(), (std::vector<int>{1, 2}));
    EXPECT_EQ(net.depth(), 2);
    EXPECT_EQ(net.lut_count(), 2);
    EXPECT_EQ(net.input_count(), 3);
}

TEST(LutNetwork, FanoutCounts) {
    const auto net = two_lut_network();
    const auto fo = net.fanout_counts();
    // a,b feed lut0; c feeds lut1; lut0 feeds lut1 + output y; lut1 feeds z.
    EXPECT_EQ(fo, (std::vector<int>{1, 1, 1, 2, 1}));
}

TEST(LutNetwork, SimulateTruthTables) {
    const auto net = two_lut_network();
    // Lanes: a=0101, b=0011, c=1111.
    const auto out = net.simulate(std::vector<std::uint64_t>{0b0101, 0b0011, 0b1111});
    ASSERT_EQ(out.size(), 2U);
    EXPECT_EQ(out[0] & 0xF, 0b0110ULL);  // a^b
    EXPECT_EQ(out[1] & 0xF, 0b0110ULL);  // (a^b)&1
}

TEST(LutNetwork, SimulateConstRef) {
    LutNetwork net;
    net.input_names = {"a"};
    net.outputs = {{"z", LutNetwork::kConst0Ref}};
    const auto out = net.simulate(std::vector<std::uint64_t>{~0ULL});
    EXPECT_EQ(out[0], 0ULL);
}

TEST(LutNetwork, SimulateWrongInputCountThrows) {
    const auto net = two_lut_network();
    EXPECT_THROW(static_cast<void>(net.simulate(std::vector<std::uint64_t>{1})),
                 std::invalid_argument);
}

TEST(LutNetwork, EmitVerilogLuts) {
    const auto net = two_lut_network();
    const auto text = emit_verilog_luts(net, "mapped");
    EXPECT_NE(text.find("module mapped ("), std::string::npos);
    EXPECT_NE(text.find("localparam [63:0] INIT0"), std::string::npos);
    EXPECT_NE(text.find("localparam [63:0] INIT1"), std::string::npos);
    EXPECT_NE(text.find("assign y = lut0;"), std::string::npos);
    EXPECT_NE(text.find("assign z = lut1;"), std::string::npos);
    // Truth table 0x6 rendered as 64-bit hex.
    EXPECT_NE(text.find("64'h0000000000000006"), std::string::npos);
}

TEST(LutNetwork, CompiledSimulateMatchesPerLaneReferenceOnRandomNetworks) {
    Xorshift64Star rng{0x1C7BEEFULL};
    for (int round = 0; round < 12; ++round) {
        const int n_inputs = 1 + static_cast<int>(rng.next() % 10);
        const int n_luts = 1 + static_cast<int>(rng.next() % 60);
        const int n_outputs = 1 + static_cast<int>(rng.next() % 6);
        const auto net = random_lut_network(rng, n_inputs, n_luts, n_outputs);
        std::vector<std::uint64_t> in(static_cast<std::size_t>(n_inputs));
        for (int sweep = 0; sweep < 3; ++sweep) {
            for (auto& w : in) {
                w = rng.next();
            }
            ASSERT_EQ(net.simulate(in), simulate_per_lane(net, in))
                << "round " << round << " sweep " << sweep;
        }
    }
}

TEST(LutNetwork, EmptyNetworkDepthZero) {
    LutNetwork net;
    net.input_names = {"a"};
    net.outputs = {{"y", 0}};
    EXPECT_EQ(net.depth(), 0);
    EXPECT_EQ(net.lut_count(), 0);
}

}  // namespace
}  // namespace gfr::fpga
