// LutNetwork container: levels, fanout, simulation semantics, Verilog.

#include "fpga/lut_network.h"

#include <gtest/gtest.h>

namespace gfr::fpga {
namespace {

/// y = (a ^ b), z = (a ^ b) & c as a hand-built two-LUT network.
LutNetwork two_lut_network() {
    LutNetwork net;
    net.input_names = {"a", "b", "c"};
    LutNetwork::Lut l0;
    l0.fanins = {0, 1};          // a, b
    l0.truth = 0x6;              // XOR2: minterms 01 and 10
    net.luts.push_back(l0);
    LutNetwork::Lut l1;
    l1.fanins = {3, 2};          // lut0, c
    l1.truth = 0x8;              // AND2: minterm 11
    net.luts.push_back(l1);
    net.outputs = {{"y", 3}, {"z", 4}};
    return net;
}

TEST(LutNetwork, LevelsAndDepth) {
    const auto net = two_lut_network();
    EXPECT_EQ(net.levels(), (std::vector<int>{1, 2}));
    EXPECT_EQ(net.depth(), 2);
    EXPECT_EQ(net.lut_count(), 2);
    EXPECT_EQ(net.input_count(), 3);
}

TEST(LutNetwork, FanoutCounts) {
    const auto net = two_lut_network();
    const auto fo = net.fanout_counts();
    // a,b feed lut0; c feeds lut1; lut0 feeds lut1 + output y; lut1 feeds z.
    EXPECT_EQ(fo, (std::vector<int>{1, 1, 1, 2, 1}));
}

TEST(LutNetwork, SimulateTruthTables) {
    const auto net = two_lut_network();
    // Lanes: a=0101, b=0011, c=1111.
    const auto out = net.simulate(std::vector<std::uint64_t>{0b0101, 0b0011, 0b1111});
    ASSERT_EQ(out.size(), 2U);
    EXPECT_EQ(out[0] & 0xF, 0b0110ULL);  // a^b
    EXPECT_EQ(out[1] & 0xF, 0b0110ULL);  // (a^b)&1
}

TEST(LutNetwork, SimulateConstRef) {
    LutNetwork net;
    net.input_names = {"a"};
    net.outputs = {{"z", LutNetwork::kConst0Ref}};
    const auto out = net.simulate(std::vector<std::uint64_t>{~0ULL});
    EXPECT_EQ(out[0], 0ULL);
}

TEST(LutNetwork, SimulateWrongInputCountThrows) {
    const auto net = two_lut_network();
    EXPECT_THROW(static_cast<void>(net.simulate(std::vector<std::uint64_t>{1})),
                 std::invalid_argument);
}

TEST(LutNetwork, EmitVerilogLuts) {
    const auto net = two_lut_network();
    const auto text = emit_verilog_luts(net, "mapped");
    EXPECT_NE(text.find("module mapped ("), std::string::npos);
    EXPECT_NE(text.find("localparam [63:0] INIT0"), std::string::npos);
    EXPECT_NE(text.find("localparam [63:0] INIT1"), std::string::npos);
    EXPECT_NE(text.find("assign y = lut0;"), std::string::npos);
    EXPECT_NE(text.find("assign z = lut1;"), std::string::npos);
    // Truth table 0x6 rendered as 64-bit hex.
    EXPECT_NE(text.find("64'h0000000000000006"), std::string::npos);
}

TEST(LutNetwork, EmptyNetworkDepthZero) {
    LutNetwork net;
    net.input_names = {"a"};
    net.outputs = {{"y", 0}};
    EXPECT_EQ(net.depth(), 0);
    EXPECT_EQ(net.lut_count(), 0);
}

}  // namespace
}  // namespace gfr::fpga
