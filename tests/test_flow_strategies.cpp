// Flow policy: strategy search must never lose to any fixed pipeline, and
// boundary-respecting mapping must implement every shared gate exactly once.

#include "field/field_catalog.h"
#include "fpga/flow.h"
#include "multipliers/generator.h"
#include "netlist/passes.h"
#include "netlist/simulate.h"

#include <gtest/gtest.h>

namespace gfr::fpga {
namespace {

TEST(FlowStrategies, SearchNeverLosesToFixedPipelines) {
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);

    FlowOptions searched;
    searched.synthesis_freedom = true;
    const double best = run_flow(nl, searched).area_time;

    const netlist::SynthOptions fixed[] = {
        {.flatten_anf = false, .group_cones = false, .extract_pairs = false,
         .balance = true},
        {.flatten_anf = false, .group_cones = false, .extract_pairs = true,
         .balance = true},
        {.flatten_anf = false, .group_cones = true, .extract_pairs = false,
         .balance = true},
        {.flatten_anf = true, .group_cones = false, .extract_pairs = false,
         .balance = true},
    };
    for (const auto& synth : fixed) {
        FlowOptions opts;
        opts.synthesis_freedom = true;
        opts.strategy_search = false;
        opts.synth = synth;
        EXPECT_LE(best, run_flow(nl, opts).area_time + 1e-9);
    }
}

TEST(FlowStrategies, BoundaryMappingInstantiatesSharedGatesOnce) {
    // A shared XOR feeding two outputs: with boundaries the mapper must NOT
    // duplicate its cone into both consumers.
    netlist::Netlist nl;
    std::vector<netlist::NodeId> leaves;
    for (int i = 0; i < 8; ++i) {
        leaves.push_back(nl.add_input("i" + std::to_string(i)));
    }
    const auto shared = nl.make_xor_tree(leaves, netlist::TreeShape::Balanced);
    const auto x = nl.add_input("x");
    const auto y = nl.add_input("y");
    nl.add_output("o1", nl.make_xor(shared, x));
    nl.add_output("o2", nl.make_xor(shared, y));

    MapperOptions bounded;
    bounded.respect_fanout_boundaries = true;
    const auto net_b = map_to_luts(nl, bounded);
    MapperOptions free;
    free.respect_fanout_boundaries = false;
    const auto net_f = map_to_luts(nl, free);
    // Bounded: shared 8-XOR as 2+1 LUTs + 2 consumers = 5; duplicating may
    // rebuild the cone once per output.
    EXPECT_LE(net_b.lut_count(), net_f.lut_count() + 1);
    // Both preserve the function.
    std::vector<std::uint64_t> in(10);
    for (std::size_t i = 0; i < in.size(); ++i) {
        in[i] = 0x123456789ABCDEFULL * (i + 3);
    }
    const auto ref = netlist::simulate(nl, in);
    EXPECT_EQ(net_b.simulate(in), ref);
    EXPECT_EQ(net_f.simulate(in), ref);
}

TEST(FlowStrategies, AsGivenTakesBetterOfBoundaryModes) {
    // run_flow for as-given methods returns min(A x T) over the two covering
    // modes; check it is never worse than either explicit mapping.
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Imana2012, fld);
    const auto flow = run_flow(nl, FlowOptions{});

    const auto cleaned = netlist::dce(nl);
    for (const bool boundaries : {false, true}) {
        MapperOptions mopts;
        mopts.respect_fanout_boundaries = boundaries;
        const auto net = map_to_luts(cleaned, mopts);
        const double axt = net.lut_count() * critical_path_ns(net);
        EXPECT_LE(flow.area_time, axt + 1e-9) << "boundaries=" << boundaries;
    }
}

TEST(FlowStrategies, StrategySearchPreservesPorts) {
    const field::Field fld = field::Field::type2(7, 2);
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    FlowOptions opts;
    opts.synthesis_freedom = true;
    const auto r = run_flow(nl, opts);
    ASSERT_EQ(r.network.input_names.size(), 14U);
    EXPECT_EQ(r.network.input_names[0], "a0");
    EXPECT_EQ(r.network.outputs[6].first, "c6");
}

}  // namespace
}  // namespace gfr::fpga
