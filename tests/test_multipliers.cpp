// The correctness matrix: every architecture x every Table V field must
// compute C = A*B in GF(2^m) bit-exactly, and the GF(2^8) complexity
// signatures the paper cites ([3] 77 XOR / T_A+7T_X, [6] T_A+6T_X,
// [7] T_A+5T_X) must emerge from our reconstructions.

#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "netlist/equivalence.h"

#include <gtest/gtest.h>

namespace gfr::mult {
namespace {

using field::FieldSpec;

std::vector<Method> table5_methods() {
    std::vector<Method> out;
    for (const auto& info : all_methods()) {
        if (info.in_table5) {
            out.push_back(info.method);
        }
    }
    return out;
}

TEST(MethodRegistry, EightMethodsSixInTable5) {
    EXPECT_EQ(all_methods().size(), 8U);
    EXPECT_EQ(table5_methods().size(), 6U);
    EXPECT_EQ(method_info(Method::Date2018Flat).display, "This work");
    EXPECT_TRUE(method_info(Method::Date2018Flat).synthesis_freedom);
    EXPECT_FALSE(method_info(Method::Imana2016Paren).synthesis_freedom);
}

// ---------------------------------------------------------------------------
// Functional equivalence sweep.

struct Case {
    std::string method_key;
    Method method = Method::SchoolReduce;
    int m = 0;
    int n = 0;
};

class MultiplierCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(MultiplierCorrectness, MatchesReferenceFieldArithmetic) {
    const auto& param = GetParam();
    const field::Field fld = field::Field::type2(param.m, param.n);
    const auto nl = build_multiplier(param.method, fld);
    const auto failure = verify_multiplier(nl, fld);
    EXPECT_FALSE(failure.has_value()) << failure->to_string();
}

std::vector<Case> correctness_cases() {
    std::vector<Case> cases;
    for (const auto& info : all_methods()) {
        for (const auto& spec : field::table5_fields()) {
            cases.push_back(Case{std::string{info.key}, info.method, spec.m, spec.n});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllMethodsAllFields, MultiplierCorrectness,
                         ::testing::ValuesIn(correctness_cases()),
                         [](const auto& info) {
                             return info.param.method_key + "_m" +
                                    std::to_string(info.param.m) + "n" +
                                    std::to_string(info.param.n);
                         });

// ---------------------------------------------------------------------------
// Cross-method equivalence at GF(2^8): all architectures are literally the
// same Boolean function (exhaustive over all 65536 operand pairs).

TEST(CrossMethod, AllGf28MultipliersEquivalent) {
    const field::Field fld = field::gf256_paper_field();
    const auto reference = build_multiplier(Method::SchoolReduce, fld);
    for (const auto& info : all_methods()) {
        const auto nl = build_multiplier(info.method, fld);
        const auto mm = netlist::check_equivalence(reference, nl);
        EXPECT_FALSE(mm.has_value())
            << std::string{info.key} << ": " << mm->to_string();
    }
}

// ---------------------------------------------------------------------------
// Structural signatures at (m,n) = (8,2).

TEST(Signatures, EveryMethodUses64AndGatesAtGf28) {
    // All schoolbook-based bit-parallel PB multipliers need all m^2 partial
    // products; Karatsuba is the one subquadratic exception.
    const field::Field fld = field::gf256_paper_field();
    for (const auto& info : all_methods()) {
        const auto stats = build_multiplier(info.method, fld).stats();
        if (info.method == Method::Karatsuba) {
            EXPECT_LE(stats.n_and, 64) << std::string{info.key};
        } else {
            EXPECT_EQ(stats.n_and, 64) << std::string{info.key};
        }
        EXPECT_EQ(stats.and_depth, 1) << std::string{info.key};
    }
}

TEST(Signatures, Imana2016ParenIsTa5Tx) {
    // Paper Section II: "the delay complexity is T_A + 5T_X" for Table III.
    const auto stats =
        build_multiplier(Method::Imana2016Paren, field::gf256_paper_field()).stats();
    EXPECT_EQ(stats.xor_depth, 5);
    EXPECT_EQ(stats.delay_string(), "T_A + 5T_X");
}

TEST(Signatures, Imana2012IsTa6Tx) {
    // Paper Section II: [6] has delay T_A + 6T_X at GF(2^8).
    const auto stats =
        build_multiplier(Method::Imana2012, field::gf256_paper_field()).stats();
    EXPECT_EQ(stats.xor_depth, 6);
}

TEST(Signatures, ReyhaniHasanIsTa7TxWith77Xor) {
    // Paper Section II: [3] has delay T_A + 7T_X and 77 XOR gates at GF(2^8).
    const auto stats =
        build_multiplier(Method::ReyhaniHasan, field::gf256_paper_field()).stats();
    EXPECT_EQ(stats.xor_depth, 7);
    EXPECT_EQ(stats.n_xor, 77);
}

TEST(Signatures, RashidiDirectHasLowestDepth) {
    // Our [8] reconstruction targets minimum depth: T_A + 5T_X at (8,2)
    // (the largest coefficient sums 20 products; ceil(log2 20) = 5).
    const auto stats =
        build_multiplier(Method::RashidiDirect, field::gf256_paper_field()).stats();
    EXPECT_EQ(stats.xor_depth, 5);
}

TEST(Signatures, DepthOrderingAcrossMethods) {
    // [7] (and the flat form it feeds) never loses to [6] or [3] on depth.
    const field::Field fld = field::gf256_paper_field();
    const int d7 = build_multiplier(Method::Imana2016Paren, fld).stats().xor_depth;
    const int d6 = build_multiplier(Method::Imana2012, fld).stats().xor_depth;
    const int d3 = build_multiplier(Method::ReyhaniHasan, fld).stats().xor_depth;
    EXPECT_LE(d7, d6);
    EXPECT_LE(d6, d3);
}

class ParenDepthSweep : public ::testing::TestWithParam<FieldSpec> {};

TEST_P(ParenDepthSweep, SplitPairingNeverWorseThanMonolithic) {
    // The whole point of [7]: level-aware pairing of split terms reduces (or
    // at least never increases) XOR depth versus monolithic S/T trees.
    const auto spec = GetParam();
    const field::Field fld = spec.make();
    const int paren = build_multiplier(Method::Imana2016Paren, fld).stats().xor_depth;
    const int mono = build_multiplier(Method::Imana2012, fld).stats().xor_depth;
    EXPECT_LE(paren, mono) << spec.label();
}

INSTANTIATE_TEST_SUITE_P(Table5Fields, ParenDepthSweep,
                         ::testing::ValuesIn(field::table5_fields()),
                         [](const auto& info) {
                             return "m" + std::to_string(info.param.m) + "n" +
                                    std::to_string(info.param.n);
                         });

TEST(Signatures, SchoolReduceIsDeepest) {
    // The naive baseline's chained reduction exceeds every Table V method.
    const field::Field fld = field::gf256_paper_field();
    const int school = build_multiplier(Method::SchoolReduce, fld).stats().xor_depth;
    for (const auto m : table5_methods()) {
        EXPECT_GE(school, build_multiplier(m, fld).stats().xor_depth);
    }
}

TEST(Signatures, GenericPolynomialSupport) {
    // Generators accept any irreducible modulus, not just type II: the AES
    // polynomial works too (the field GF(2^8) "used in ... AES", Section I).
    const field::Field aes{gf2::Poly::from_exponents({8, 4, 3, 1, 0})};
    for (const auto& info : all_methods()) {
        const auto nl = build_multiplier(info.method, aes);
        const auto failure = verify_multiplier(nl, aes);
        EXPECT_FALSE(failure.has_value())
            << std::string{info.key} << ": " << failure->to_string();
    }
}

TEST(Signatures, TrinomialFieldSupport) {
    // GF(2^233) with the NIST trinomial y^233 + y^74 + 1.
    const field::Field f233{gf2::Poly::from_exponents({233, 74, 0})};
    const auto nl = build_multiplier(Method::Date2018Flat, f233);
    VerifyOptions opts;
    opts.random_sweeps = 8;  // keep the big-field check quick
    const auto failure = verify_multiplier(nl, f233, opts);
    EXPECT_FALSE(failure.has_value()) << failure->to_string();
}

TEST(Ports, CanonicalNaming) {
    const auto nl =
        build_multiplier(Method::Date2018Flat, field::gf256_paper_field());
    ASSERT_EQ(nl.inputs().size(), 16U);
    ASSERT_EQ(nl.outputs().size(), 8U);
    EXPECT_EQ(nl.inputs()[0].name, "a0");
    EXPECT_EQ(nl.inputs()[8].name, "b0");
    EXPECT_EQ(nl.outputs()[7].name, "c7");
}

}  // namespace
}  // namespace gfr::mult
