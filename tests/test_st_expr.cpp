// Expression parser/printer for the paper's coefficient-equation notation.

#include "st/st_expr.h"

#include <gtest/gtest.h>

namespace gfr::st {
namespace {

TEST(AtomParse, WholeFunctions) {
    const auto eq = parse_coefficient_line("c0 = S1 +T0 +T4 +T5 +T6;",
                                           ParseMode::WholeFunctions);
    EXPECT_EQ(eq.k, 0);
    const auto atoms = eq.expr.atoms();
    ASSERT_EQ(atoms.size(), 5U);
    EXPECT_EQ(atoms[0].kind, Atom::Kind::WholeS);
    EXPECT_EQ(atoms[0].i, 1);
    EXPECT_EQ(atoms[4].kind, Atom::Kind::WholeT);
    EXPECT_EQ(atoms[4].i, 6);
    EXPECT_EQ(eq.to_string(), "c0 = S1 + T0 + T4 + T5 + T6");
}

TEST(AtomParse, SplitTerms) {
    const auto eq = parse_coefficient_line("c7 = S38 +T23 +T14 +T04 +T15;",
                                           ParseMode::SplitTerms);
    const auto atoms = eq.expr.atoms();
    ASSERT_EQ(atoms.size(), 5U);
    EXPECT_EQ(atoms[0].kind, Atom::Kind::SplitS);
    EXPECT_EQ(atoms[0].level, 3);
    EXPECT_EQ(atoms[0].i, 8);
    EXPECT_EQ(atoms[1].kind, Atom::Kind::SplitT);
    EXPECT_EQ(atoms[1].level, 2);
    EXPECT_EQ(atoms[1].i, 3);
}

TEST(AtomParse, PairNotation) {
    const auto eq = parse_coefficient_line("c0 = (T20,4 +T25,6) + ST22,1;",
                                           ParseMode::SplitTerms);
    const auto atoms = eq.expr.atoms();
    ASSERT_EQ(atoms.size(), 3U);
    EXPECT_EQ(atoms[0].kind, Atom::Kind::PairTT);
    EXPECT_EQ(atoms[0].level, 2);
    EXPECT_EQ(atoms[0].i, 0);
    EXPECT_EQ(atoms[0].j, 4);
    EXPECT_EQ(atoms[2].kind, Atom::Kind::PairST);
    EXPECT_EQ(atoms[2].i, 2);
    EXPECT_EQ(atoms[2].j, 1);
    EXPECT_EQ(atoms[0].to_string(), "T^2_{0,4}");
    EXPECT_EQ(atoms[2].to_string(), "ST^2_{2,1}");
}

TEST(AtomParse, NestedParenthesesPreserved) {
    const auto eq = parse_coefficient_line(
        "c0 = ((S01 +T10,4) +T20) + (T20,4 +T25,6);", ParseMode::SplitTerms);
    // Top level: two operands, both parenthesised sums.
    ASSERT_FALSE(eq.expr.is_leaf());
    ASSERT_EQ(eq.expr.children.size(), 2U);
    const auto& left = eq.expr.children[0];
    ASSERT_EQ(left.children.size(), 2U);          // (S01+T10,4) and T20
    EXPECT_FALSE(left.children[0].is_leaf());     // inner parenthesised pair
    EXPECT_TRUE(left.children[1].is_leaf());
    EXPECT_EQ(eq.to_string(),
              "c0 = ((S^0_1 + T^1_{0,4}) + T^2_0) + (T^2_{0,4} + T^2_{5,6})");
}

TEST(AtomParse, TableTextRoundTrip) {
    const std::string text = "c0 = S1 +T0;\nc1 = S2 +T1;\n\n";
    const auto eqs = parse_coefficient_table(text, ParseMode::WholeFunctions);
    ASSERT_EQ(eqs.size(), 2U);
    EXPECT_EQ(eqs[0].k, 0);
    EXPECT_EQ(eqs[1].k, 1);
}

TEST(AtomParse, Errors) {
    EXPECT_THROW(parse_coefficient_line("x0 = S1;", ParseMode::WholeFunctions),
                 std::invalid_argument);
    EXPECT_THROW(parse_coefficient_line("c0 = ;", ParseMode::WholeFunctions),
                 std::invalid_argument);
    EXPECT_THROW(parse_coefficient_line("c0 = S1 + (T0;", ParseMode::WholeFunctions),
                 std::invalid_argument);
    EXPECT_THROW(parse_coefficient_line("c0 = Q1;", ParseMode::WholeFunctions),
                 std::invalid_argument);
    EXPECT_THROW(parse_coefficient_line("c0 = ST22,1;", ParseMode::WholeFunctions),
                 std::invalid_argument);  // pair atom in whole mode
    EXPECT_THROW(parse_coefficient_line("c0 = ST22;", ParseMode::SplitTerms),
                 std::invalid_argument);  // ST requires a pair
    EXPECT_THROW(parse_coefficient_line("c0 = S1 T0;", ParseMode::WholeFunctions),
                 std::invalid_argument);  // missing '+'
}

TEST(Expr, SumFlattensSingleOperand) {
    Atom a;
    a.kind = Atom::Kind::WholeS;
    a.i = 1;
    auto e = Expr::sum([&] {
        std::vector<Expr> v;
        v.push_back(Expr::leaf(a));
        return v;
    }());
    EXPECT_TRUE(e.is_leaf());
    EXPECT_THROW(Expr::sum({}), std::invalid_argument);
}

TEST(Expr, MultiDigitIndices) {
    // Split mode: first digit is the level, the rest the index — "S312"
    // means S^3_12 (needed beyond GF(2^9)).
    const auto eq = parse_coefficient_line("c12 = S312;", ParseMode::SplitTerms);
    const auto atoms = eq.expr.atoms();
    ASSERT_EQ(atoms.size(), 1U);
    EXPECT_EQ(atoms[0].level, 3);
    EXPECT_EQ(atoms[0].i, 12);
    EXPECT_EQ(eq.k, 12);
}

}  // namespace
}  // namespace gfr::st
