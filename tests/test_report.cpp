// ASCII table renderer.

#include "report/table.h"

#include <gtest/gtest.h>

namespace gfr::report {
namespace {

TEST(TextTable, RendersAlignedColumns) {
    TextTable t{{"Method", "LUTs", "Time"}};
    t.add_row({"[2]", "34", "9.86"});
    t.add_row({"This work", "33", "9.77"});
    const auto text = t.render();
    EXPECT_NE(text.find("| Method    |"), std::string::npos);
    EXPECT_NE(text.find("| This work |"), std::string::npos);
    EXPECT_NE(text.find("+-"), std::string::npos);
    // Every line has the same width.
    std::size_t width = 0;
    std::size_t start = 0;
    while (start < text.size()) {
        const auto end = text.find('\n', start);
        const auto len = end - start;
        if (width == 0) {
            width = len;
        }
        EXPECT_EQ(len, width);
        start = end + 1;
    }
}

TEST(TextTable, RuleInsertsSeparator) {
    TextTable t{{"A"}};
    t.add_row({"1"});
    t.add_rule();
    t.add_row({"2"});
    const auto text = t.render();
    // Header rule + top + inserted + bottom = 4 rules.
    std::size_t rules = 0;
    for (std::size_t pos = text.find("+-"); pos != std::string::npos;
         pos = text.find("+-", pos + 1)) {
        ++rules;
    }
    EXPECT_GE(rules, 4U);
}

TEST(TextTable, WrongCellCountThrows) {
    TextTable t{{"A", "B"}};
    EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
    EXPECT_THROW(TextTable{{}}, std::invalid_argument);
}

TEST(Fmt, FixedPoint) {
    EXPECT_EQ(fmt(9.77, 2), "9.77");
    EXPECT_EQ(fmt(322.406, 2), "322.41");  // rounds up
    EXPECT_EQ(fmt(9.774, 2), "9.77");      // rounds down
    EXPECT_EQ(fmt(20.0, 2), "20.00");
    EXPECT_EQ(fmt(3.14159, 0), "3");
}

}  // namespace
}  // namespace gfr::report
