// Concurrency test for the thread-safe arithmetic tier.
//
// One shared Field is hammered from N threads running mixed
// mul / sqr / inv / region traffic.  Correctness is judged by determinism:
// every thread records a checksum trace from a seeded PRNG, and the same
// seeds replayed serially must produce bit-identical traces.  Under the old
// engine (per-instance mutable scratch) the multi-word paths raced and this
// comparison fails; with the explicit / thread-local Scratch it must hold on
// every run.  Run under TSan in CI for the data-race half of the claim; the
// replay check here catches corrupted results on any build.

#include "field/field_ops.h"
#include "field/gf2m.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace gfr::field {
namespace {

using gf2::Poly;
using testutil::Xorshift64Star;

std::uint64_t checksum(const Poly& p) {
    std::uint64_t acc = static_cast<std::uint64_t>(p.degree()) * 0x9E3779B97F4A7C15ULL;
    for (const auto w : p.words()) {
        acc = (acc ^ w) * 0x2545F4914F6CDD1DULL;
    }
    return acc;
}

constexpr int kThreads = 4;
constexpr int kIters = 400;
constexpr std::uint64_t kSeedBase = 0xC0CC0C0ULL;

/// The workload one thread runs against the shared field: mixed operations
/// driven by its own PRNG, checksums appended to `trace`.  Deliberately
/// value-identical whether run concurrently or serially.
void hammer(const Field& f, std::uint64_t seed, std::vector<std::uint64_t>& trace) {
    Xorshift64Star rng{seed};
    std::vector<Poly> region(8);
    trace.reserve(kIters);
    for (int i = 0; i < kIters; ++i) {
        const Poly a = testutil::random_element(f, rng);
        const Poly b = testutil::random_nonzero_element(f, rng);
        switch (rng() % 4) {
            case 0:
                trace.push_back(checksum(f.mul(a, b)));
                break;
            case 1:
                trace.push_back(checksum(f.sqr(a)));
                break;
            case 2:
                trace.push_back(checksum(f.inv(b)));
                break;
            default: {
                for (auto& e : region) {
                    e = testutil::random_element(f, rng);
                }
                f.mul_region_const(b, region);
                std::uint64_t acc = 0;
                for (const auto& e : region) {
                    acc ^= checksum(e);
                }
                trace.push_back(acc);
                break;
            }
        }
    }
}

void run_shared_field_hammer(const Field& f) {
    // Threaded run against ONE shared Field instance.
    std::vector<std::vector<std::uint64_t>> threaded(kThreads);
    {
        std::vector<std::thread> workers;
        workers.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            workers.emplace_back(
                [&f, t, &threaded] { hammer(f, kSeedBase + t, threaded[t]); });
        }
        for (auto& w : workers) {
            w.join();
        }
    }
    // Serial replay with the same seeds on the same field.
    for (int t = 0; t < kThreads; ++t) {
        std::vector<std::uint64_t> serial;
        hammer(f, kSeedBase + t, serial);
        ASSERT_EQ(threaded[static_cast<std::size_t>(t)], serial)
            << "thread " << t << " diverged from serial replay on " << f.to_string();
    }
}

TEST(FieldConcurrency, SharedMultiWordFieldMatchesSerialReplay) {
    const Field f{gf2::Poly::from_exponents({233, 74, 0})};  // NIST B-233
    run_shared_field_hammer(f);
}

TEST(FieldConcurrency, SharedPentanomialFieldMatchesSerialReplay) {
    const Field f = Field::type2(163, 66);  // NIST B-163, pentanomial fold
    run_shared_field_hammer(f);
}

TEST(FieldConcurrency, SharedSingleWordFieldMatchesSerialReplay) {
    const Field f = Field::type2(64, 23);  // u64 fast path + window tables
    run_shared_field_hammer(f);
}

// The explicit-scratch API: each thread owns a FieldOps::Scratch and drives
// the raw engine directly (the pattern verify_multiplier uses), again judged
// against a serial replay with per-run scratch.
TEST(FieldConcurrency, ExplicitScratchEngineMatchesSerialReplay) {
    const Field f{testutil::large_modulus(409)};
    const auto& ops = f.ops();

    const auto engine_trace = [&](std::uint64_t seed, std::vector<std::uint64_t>& out) {
        FieldOps::Scratch scratch;  // owned by this run, never shared
        Xorshift64Star rng{seed};
        Poly result;
        out.reserve(kIters);
        for (int i = 0; i < kIters; ++i) {
            const Poly a = testutil::random_element(f, rng);
            const Poly b = testutil::random_nonzero_element(f, rng);
            switch (rng() % 3) {
                case 0:
                    ops.mul(a, b, result, scratch);
                    break;
                case 1:
                    ops.sqr(a, result, scratch);
                    break;
                default:
                    ops.inv(b, result, scratch);
                    break;
            }
            out.push_back(checksum(result));
        }
    };

    std::vector<std::vector<std::uint64_t>> threaded(kThreads);
    {
        std::vector<std::thread> workers;
        workers.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            workers.emplace_back(
                [&engine_trace, t, &threaded] { engine_trace(kSeedBase ^ t, threaded[t]); });
        }
        for (auto& w : workers) {
            w.join();
        }
    }
    for (int t = 0; t < kThreads; ++t) {
        std::vector<std::uint64_t> serial;
        engine_trace(kSeedBase ^ t, serial);
        ASSERT_EQ(threaded[static_cast<std::size_t>(t)], serial) << "thread " << t;
    }
}

}  // namespace
}  // namespace gfr::field
