// Fault-injection (mutation) tier: the verifier's verifier.
//
// verify_multiplier and check_equivalence claim to catch any wrong
// multiplier.  Here that claim is itself tested: for every generator family
// we inject single faults into the netlist — flip one gate kind, rewire one
// fanin, swap two output drivers — and require BOTH verifiers to catch 100%
// of the mutants that are functionally different from the original.
//
// "Functionally different" is decided by ground truth that shares nothing
// with either verifier's decision logic: raw word-parallel simulation of
// the two netlists side by side (exhaustive on the small field, dense
// random on the medium one).  Since PR 4 that simulation runs through the
// compiled execution layer with a fresh compile per mutant (each Simulator
// compiles its own netlist instance, so a mutant never inherits the
// original's tape and the compiler itself is exercised on every mutated
// structure); the tape-vs-interpreter differential lives in
// tests/test_exec_program.cpp.  A mutation can land on logic that the
// netlist's structural hashing or downstream XOR parity re-absorbs into the
// original function (e.g. rewiring a fanin onto an equal subexpression);
// such mutants are no fault at all and are skipped — but the test also
// asserts they are rare, so the suite keeps its teeth.

#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "netlist/equivalence.h"
#include "netlist/simulate.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace gfr::mult {
namespace {

using netlist::GateKind;
using netlist::Netlist;
using netlist::NodeId;
using testutil::Xorshift64Star;

/// Ground truth, independent of both verifiers: simulate src and mut on the
/// same input words and compare raw output words.  Exhaustive when the
/// input space allows it, dense random otherwise (single-gate faults in
/// AND/XOR logic flip large assignment fractions, so 256 * 64 random lanes
/// leave no realistic escape).
bool functionally_differs(const Netlist& a, const Netlist& b) {
    const int n = static_cast<int>(a.inputs().size());
    netlist::Simulator sim_a{a};
    netlist::Simulator sim_b{b};
    std::vector<std::uint64_t> in(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> out_a;
    std::vector<std::uint64_t> out_b;

    const auto differs_now = [&]() {
        sim_a.run_into(in, out_a);
        sim_b.run_into(in, out_b);
        return out_a != out_b;
    };

    if (n <= 16) {
        const std::uint64_t blocks = (n <= 6) ? 1 : (std::uint64_t{1} << (n - 6));
        for (std::uint64_t block = 0; block < blocks; ++block) {
            for (int i = 0; i < n; ++i) {
                in[static_cast<std::size_t>(i)] = netlist::exhaustive_pattern(i, block);
            }
            if (differs_now()) {
                return true;
            }
        }
        return false;
    }
    Xorshift64Star rng{0x6E747275ULL};  // fixed: ground truth must be stable
    for (int sweep = 0; sweep < 256; ++sweep) {
        for (auto& w : in) {
            w = rng();
        }
        if (differs_now()) {
            return true;
        }
    }
    return false;
}

/// Reachable And2/Xor2 gate ids, ascending.
std::vector<NodeId> reachable_gates(const Netlist& nl) {
    const auto reachable = nl.reachable_from_outputs();
    std::vector<NodeId> gates;
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        const auto kind = nl.node(id).kind;
        if (reachable[id] && (kind == GateKind::And2 || kind == GateKind::Xor2)) {
            gates.push_back(id);
        }
    }
    return gates;
}

/// Evenly-spaced sample of up to `count` entries.
std::vector<NodeId> sample(const std::vector<NodeId>& pool, std::size_t count) {
    std::vector<NodeId> out;
    if (pool.empty()) {
        return out;
    }
    const std::size_t stride = std::max<std::size_t>(1, pool.size() / count);
    for (std::size_t i = 0; i < pool.size() && out.size() < count; i += stride) {
        out.push_back(pool[i]);
    }
    return out;
}

struct MutationStats {
    int generated = 0;
    int faults = 0;              // mutants the ground truth distinguishes
    int equivalent_skipped = 0;  // mutations absorbed back into the function
    int missed_by_verify = 0;
    int missed_by_equivalence = 0;
    std::vector<std::string> misses;
};

/// Runs one mutant through ground truth and both verifiers.
void exercise_mutant(const Netlist& original, const Netlist& mutant,
                     const field::Field& field, const std::string& label,
                     MutationStats& stats) {
    ++stats.generated;
    if (!functionally_differs(original, mutant)) {
        ++stats.equivalent_skipped;
        return;
    }
    ++stats.faults;
    VerifyOptions vopts;
    vopts.random_sweeps = 256;  // match ground-truth density on big fields
    if (!verify_multiplier(mutant, field, vopts).has_value()) {
        ++stats.missed_by_verify;
        stats.misses.push_back("verify_multiplier missed " + label);
    }
    netlist::EquivalenceOptions eopts;
    eopts.random_sweeps = 256;
    if (!netlist::check_equivalence(original, mutant, eopts).has_value()) {
        ++stats.missed_by_equivalence;
        stats.misses.push_back("check_equivalence missed " + label);
    }
}

void run_mutation_campaign(const field::Field& field, Method method,
                           MutationStats& stats) {
    const auto original = build_multiplier(method, field);
    const auto gates = sample(reachable_gates(original), 8);
    const std::string key{method_info(method).key};
    const int m = field.degree();

    // 1. Gate-kind flips: And2 <-> Xor2 on sampled reachable gates.
    for (const NodeId target : gates) {
        const auto mutant = testutil::clone_netlist(
            original, [target](NodeId id, GateKind& kind, NodeId&, NodeId&) {
                if (id == target) {
                    kind = (kind == GateKind::And2) ? GateKind::Xor2 : GateKind::And2;
                }
            });
        exercise_mutant(original, mutant, field,
                        key + ": flip gate " + std::to_string(target), stats);
    }

    // 2. Fanin rewires: first fanin of a sampled gate redirected to a
    //    different primary input (input ids precede all gates, so the clone
    //    stays topologically valid).
    int salt = 0;
    for (const NodeId target : gates) {
        const NodeId old_a = original.node(target).a;
        const NodeId old_b = original.node(target).b;
        NodeId replacement = netlist::kInvalidNode;
        for (int i = 0; i < 2 * m; ++i) {
            const NodeId candidate =
                original.inputs()[static_cast<std::size_t>((i + salt) % (2 * m))].node;
            if (candidate != old_a && candidate != old_b) {
                replacement = candidate;
                break;
            }
        }
        ++salt;
        ASSERT_NE(replacement, netlist::kInvalidNode);
        const auto mutant = testutil::clone_netlist(
            original, [target, replacement](NodeId id, GateKind&, NodeId& a, NodeId&) {
                if (id == target) {
                    a = replacement;
                }
            });
        exercise_mutant(original, mutant, field,
                        key + ": rewire fanin of " + std::to_string(target), stats);
    }

    // 3. Output swaps: exchanging the drivers of c_i and c_j is exactly a
    //    transcription error in the output map.
    const std::size_t n_out = original.outputs().size();
    const std::pair<std::size_t, std::size_t> swaps[] = {{0, n_out / 2},
                                                         {1, n_out - 1}};
    for (const auto& [i, j] : swaps) {
        if (i == j || j >= n_out) {
            continue;
        }
        const auto mutant = testutil::clone_netlist(
            original, nullptr,
            [i = i, j = j](std::size_t index, std::span<const NodeId> mapped,
                           Netlist&) -> NodeId {
                if (index == i) {
                    return mapped[j];
                }
                if (index == j) {
                    return mapped[i];
                }
                return mapped[index];
            });
        exercise_mutant(original, mutant, field,
                        key + ": swap outputs " + std::to_string(i) + "," +
                            std::to_string(j),
                        stats);
    }
}

void expect_full_kill(const field::Field& field, MutationStats& stats) {
    for (const auto& info : all_methods()) {
        run_mutation_campaign(field, info.method, stats);
    }
    EXPECT_EQ(stats.missed_by_verify, 0);
    EXPECT_EQ(stats.missed_by_equivalence, 0);
    for (const auto& miss : stats.misses) {
        ADD_FAILURE() << miss;
    }
    // The suite must keep its teeth: nearly every injected mutation has to
    // be a real fault (absorbed mutations are the rare exception).
    EXPECT_GT(stats.faults, 0);
    EXPECT_GE(stats.faults * 10, stats.generated * 9)
        << stats.equivalent_skipped << " of " << stats.generated
        << " mutants were absorbed — mutation operators lost their teeth";
}

TEST(VerifyMutation, SmallFieldKillsAllSingleFaultMutants) {
    // GF(2^8), the paper's worked field: exhaustive ground truth, every
    // generator family, all three mutation operators.
    MutationStats stats;
    expect_full_kill(field::gf256_paper_field(), stats);
    // Every family contributes 8 flips + 8 rewires + 2 swaps.
    EXPECT_EQ(stats.generated,
              static_cast<int>(all_methods().size()) * (8 + 8 + 2));
}

TEST(VerifyMutation, MediumFieldKillsAllSingleFaultMutants) {
    // GF(2^64): the random-regime verifiers must catch the same fault
    // classes the exhaustive regime does.
    MutationStats stats;
    expect_full_kill(field::Field::type2(64, 23), stats);
}

TEST(VerifyMutation, MultiWordLaneOracleKillsAllSingleFaultMutants) {
    // GF(2^113): the multi-word regime, where the compiled tape feeds the
    // lane-major LaneReference oracle (the PR-4 extension past m = 64).
    // One family keeps the runtime bounded; the operators are the same.
    MutationStats stats;
    run_mutation_campaign(field::Field::type2(113, 4), Method::Date2018Flat, stats);
    EXPECT_EQ(stats.missed_by_verify, 0);
    EXPECT_EQ(stats.missed_by_equivalence, 0);
    for (const auto& miss : stats.misses) {
        ADD_FAILURE() << miss;
    }
    EXPECT_GT(stats.faults, 0);
}

}  // namespace
}  // namespace gfr::mult
