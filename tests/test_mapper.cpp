// Priority-cuts LUT mapper: function preservation (the make-or-break
// property), depth optimality on known structures, K handling.

#include "fpga/priority_cuts.h"
#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "netlist/simulate.h"
#include "testutil.h"

#include <gtest/gtest.h>


namespace gfr::fpga {
namespace {

/// Compare gate netlist and LUT network on random word-parallel vectors.
void expect_same_function(const netlist::Netlist& nl, const LutNetwork& net,
                          int sweeps = 32) {
    ASSERT_EQ(net.input_names.size(), nl.inputs().size());
    ASSERT_EQ(net.outputs.size(), nl.outputs().size());
    testutil::Xorshift64Star rng{4242};
    std::vector<std::uint64_t> in(nl.inputs().size(), 0);
    for (int s = 0; s < sweeps; ++s) {
        for (auto& w : in) {
            w = rng();
        }
        const auto ref = netlist::simulate(nl, in);
        const auto got = net.simulate(in);
        for (std::size_t o = 0; o < ref.size(); ++o) {
            ASSERT_EQ(ref[o], got[o]) << "output " << nl.outputs()[o].name
                                      << " sweep " << s;
        }
    }
}

TEST(Mapper, SingleGateFitsOneLut) {
    netlist::Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("y", nl.make_and(a, b));
    const auto net = map_to_luts(nl);
    EXPECT_EQ(net.lut_count(), 1);
    EXPECT_EQ(net.depth(), 1);
    expect_same_function(nl, net);
}

TEST(Mapper, XorTreeOf6FitsOneLut6) {
    netlist::Netlist nl;
    std::vector<netlist::NodeId> leaves;
    for (int i = 0; i < 6; ++i) {
        leaves.push_back(nl.add_input("i" + std::to_string(i)));
    }
    nl.add_output("y", nl.make_xor_tree(leaves, netlist::TreeShape::Balanced));
    const auto net = map_to_luts(nl);
    EXPECT_EQ(net.lut_count(), 1);
    EXPECT_EQ(net.depth(), 1);
    expect_same_function(nl, net);
}

TEST(Mapper, XorTreeOf24MapsInTwoLevels) {
    // Structural bound: over a *binary* XOR tree, a depth-2 6-LUT cover uses
    // at most 6 first-level cones of at most 4 leaves each (subtree sizes are
    // powers of two <= 6), i.e. 24 inputs.  24 leaves must map in 2 levels.
    netlist::Netlist nl;
    std::vector<netlist::NodeId> leaves;
    for (int i = 0; i < 24; ++i) {
        leaves.push_back(nl.add_input("i" + std::to_string(i)));
    }
    nl.add_output("y", nl.make_xor_tree(leaves, netlist::TreeShape::Balanced));
    const auto net = map_to_luts(nl);
    EXPECT_EQ(net.depth(), 2);
    EXPECT_LE(net.lut_count(), 7);
    expect_same_function(nl, net);
}

TEST(Mapper, XorTreeOf36NeedsThreeLevelsOverBinaryTree) {
    // ... and 36 > 24 leaves therefore require 3 levels without algebraic
    // restructuring (which a structural cut mapper does not perform).
    netlist::Netlist nl;
    std::vector<netlist::NodeId> leaves;
    for (int i = 0; i < 36; ++i) {
        leaves.push_back(nl.add_input("i" + std::to_string(i)));
    }
    nl.add_output("y", nl.make_xor_tree(leaves, netlist::TreeShape::Balanced));
    const auto net = map_to_luts(nl);
    EXPECT_EQ(net.depth(), 3);
    expect_same_function(nl, net);
}

TEST(Mapper, ChainGetsReDepthReducedByCuts) {
    // Even a 12-long XOR chain maps within ceil(11/5)+... <= 3 LUT levels,
    // because cuts look through the chain structure.
    netlist::Netlist nl;
    std::vector<netlist::NodeId> leaves;
    for (int i = 0; i < 12; ++i) {
        leaves.push_back(nl.add_input("i" + std::to_string(i)));
    }
    nl.add_output("y", nl.make_xor_tree(leaves, netlist::TreeShape::Chain));
    const auto net = map_to_luts(nl);
    EXPECT_LE(net.depth(), 3);
    expect_same_function(nl, net);
}

TEST(Mapper, RespectsSmallerK) {
    netlist::Netlist nl;
    std::vector<netlist::NodeId> leaves;
    for (int i = 0; i < 16; ++i) {
        leaves.push_back(nl.add_input("i" + std::to_string(i)));
    }
    nl.add_output("y", nl.make_xor_tree(leaves, netlist::TreeShape::Balanced));
    MapperOptions opts;
    opts.lut_inputs = 4;
    const auto net = map_to_luts(nl, opts);
    for (const auto& lut : net.luts) {
        EXPECT_LE(lut.fanins.size(), 4U);
    }
    EXPECT_EQ(net.depth(), 2);  // 16 leaves at K=4
    expect_same_function(nl, net);
}

TEST(Mapper, InvalidKThrows) {
    netlist::Netlist nl;
    nl.add_output("y", nl.add_input("a"));
    MapperOptions opts;
    opts.lut_inputs = 1;
    EXPECT_THROW(static_cast<void>(map_to_luts(nl, opts)), std::invalid_argument);
    opts.lut_inputs = 7;
    EXPECT_THROW(static_cast<void>(map_to_luts(nl, opts)), std::invalid_argument);
}

TEST(Mapper, OutputAliasingInput) {
    netlist::Netlist nl;
    const auto a = nl.add_input("a");
    nl.add_input("b");
    nl.add_output("y", a);
    const auto net = map_to_luts(nl);
    EXPECT_EQ(net.lut_count(), 0);
    ASSERT_EQ(net.outputs.size(), 1U);
    EXPECT_EQ(net.outputs[0].second, 0);  // ref to input 0
}

TEST(Mapper, SharedLogicMappedOnce) {
    // Two outputs sharing a subtree: covering must not duplicate LUTs.
    netlist::Netlist nl;
    std::vector<netlist::NodeId> leaves;
    for (int i = 0; i < 6; ++i) {
        leaves.push_back(nl.add_input("i" + std::to_string(i)));
    }
    const auto shared = nl.make_xor_tree(leaves, netlist::TreeShape::Balanced);
    const auto extra = nl.add_input("x");
    nl.add_output("y1", nl.make_xor(shared, extra));
    nl.add_output("y2", nl.make_and(shared, extra));
    const auto net = map_to_luts(nl);
    // Optimal: shared 6-input XOR as one LUT + one LUT per output = 3.
    EXPECT_LE(net.lut_count(), 3);
    expect_same_function(nl, net);
}

class MapperOnMultipliers
    : public ::testing::TestWithParam<std::pair<mult::Method, std::pair<int, int>>> {};

TEST_P(MapperOnMultipliers, MappingPreservesFunction) {
    const auto [method, mn] = GetParam();
    const field::Field fld = field::Field::type2(mn.first, mn.second);
    const auto nl = mult::build_multiplier(method, fld);
    const auto net = map_to_luts(nl);
    expect_same_function(nl, net, 16);
    EXPECT_GT(net.lut_count(), 0);
    EXPECT_GT(net.depth(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndFields, MapperOnMultipliers,
    ::testing::Values(std::pair{mult::Method::Date2018Flat, std::pair{8, 2}},
                      std::pair{mult::Method::Imana2016Paren, std::pair{8, 2}},
                      std::pair{mult::Method::PaarMastrovito, std::pair{8, 2}},
                      std::pair{mult::Method::ReyhaniHasan, std::pair{8, 2}},
                      std::pair{mult::Method::RashidiDirect, std::pair{8, 2}},
                      std::pair{mult::Method::Imana2012, std::pair{8, 2}},
                      std::pair{mult::Method::Date2018Flat, std::pair{64, 23}},
                      std::pair{mult::Method::Imana2016Paren, std::pair{64, 23}}),
    [](const auto& info) {
        return std::string{mult::method_info(info.param.first).key} + "_m" +
               std::to_string(info.param.second.first);
    });

TEST(Mapper, AreaRecoveryNeverIncreasesDepth) {
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    MapperOptions with;
    with.area_recovery = true;
    MapperOptions without;
    without.area_recovery = false;
    const auto net_with = map_to_luts(nl, with);
    const auto net_without = map_to_luts(nl, without);
    EXPECT_EQ(net_with.depth(), net_without.depth());
    EXPECT_LE(net_with.lut_count(), net_without.lut_count());
}

}  // namespace
}  // namespace gfr::fpga
