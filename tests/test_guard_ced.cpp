// Parity-predicted CED netlists (guard/add_parity_ced): clean circuits
// never alarm, and the fault-injection campaign (verify/fault_campaign)
// detects 100% of single gate faults at every covered site.

#include "exec/program.h"
#include "field/field_catalog.h"
#include "guard/parity_ced.h"
#include "multipliers/generator.h"
#include "netlist/clone.h"
#include "netlist/equivalence.h"
#include "verify/campaign.h"
#include "verify/fault_campaign.h"

#include <gtest/gtest.h>

#include <vector>

namespace gfr {
namespace {

using netlist::Netlist;

/// Simulate `guarded` over exhaustive (2m <= 16) or seeded random vectors
/// and require every CED output (index >= n_function) to be zero on all of
/// them — the zero-false-alarm property.
void expect_no_false_alarms(const Netlist& guarded, int n_function,
                            std::uint64_t random_blocks = 32) {
    const int n_in = static_cast<int>(guarded.inputs().size());
    const int n_out = static_cast<int>(guarded.outputs().size());
    const exec::Program prog = exec::Program::compile(guarded);
    exec::Program::Scratch scratch;
    std::vector<std::uint64_t> in(static_cast<std::size_t>(n_in));
    std::vector<std::uint64_t> out(static_cast<std::size_t>(n_out));
    const bool exhaustive = n_in <= 16;
    const std::uint64_t blocks =
        exhaustive ? ((std::uint64_t{1} << n_in) + 63) / 64 : random_blocks;
    for (std::uint64_t b = 0; b < blocks; ++b) {
        if (exhaustive) {
            for (int i = 0; i < n_in; ++i) {
                std::uint64_t w = 0;
                for (int l = 0; l < 64; ++l) {
                    if (((b * 64 + static_cast<std::uint64_t>(l)) >> i) & 1U) {
                        w |= std::uint64_t{1} << l;
                    }
                }
                in[static_cast<std::size_t>(i)] = w;
            }
        } else {
            verify::SweepRng rng{
                verify::Campaign::derive_sweep_seed(0xC1EA4ULL, b)};
            for (int i = 0; i < n_in; ++i) {
                in[static_cast<std::size_t>(i)] = rng();
            }
        }
        prog.run(in, out, scratch);
        for (int o = n_function; o < n_out; ++o) {
            ASSERT_EQ(out[static_cast<std::size_t>(o)], 0U)
                << "CED output " << guarded.outputs()[static_cast<std::size_t>(o)].name
                << " raised on a clean circuit (block " << b << ")";
        }
    }
}

TEST(GuardCed, InfoAndOutputLayout) {
    const field::Field f = field::table5_fields()[0].make();  // (8,2)
    Netlist nl = mult::build_date2018_flat(f);
    const std::size_t before = nl.outputs().size();
    const auto info = guard::add_parity_ced(nl, f);
    ASSERT_GE(info.groups, 1);
    // Group 0 is the classic all-ones parity.
    ASSERT_EQ(info.masks.size(), static_cast<std::size_t>(info.groups));
    for (const auto bit : info.masks[0]) {
        EXPECT_EQ(bit, 1);
    }
    EXPECT_FALSE(info.covered_sites.empty());
    EXPECT_EQ(info.original_nodes + info.added_gates, nl.node_count());
    EXPECT_FALSE(info.to_string().empty());
    // Function outputs keep their slots; ced_err0.. and ced_alarm follow.
    ASSERT_EQ(nl.outputs().size(),
              before + static_cast<std::size_t>(info.groups) + 1);
    for (int t = 0; t < info.groups; ++t) {
        EXPECT_EQ(nl.output_index(guard::ced_error_output(t)),
                  static_cast<int>(before) + t);
    }
    EXPECT_EQ(nl.output_index(guard::kCedAlarmOutput),
              static_cast<int>(nl.outputs().size()) - 1);
    // Covered sites are original multiplier gates, never checker gates.
    for (const auto site : info.covered_sites) {
        EXPECT_LT(site, info.original_nodes);
    }
}

TEST(GuardCed, RejectsForeignInterface) {
    const field::Field f8 = field::table5_fields()[0].make();
    const field::Field f64 = field::table5_fields()[1].make();
    Netlist nl = mult::build_date2018_flat(f8);
    EXPECT_THROW(static_cast<void>(guard::add_parity_ced(nl, f64)),
                 std::invalid_argument);
}

TEST(GuardCed, AugmentationPreservesFunction) {
    // The CED pass appends outputs; the function outputs must stay
    // bit-identical to the unguarded multiplier over the whole input space.
    // (No output-removal API exists — netlists are write-once — so compare
    // by simulation rather than check_equivalence, whose output name sets
    // would differ.)
    const field::Field f = field::table5_fields()[0].make();
    const Netlist plain = mult::build_date2018_flat(f);
    Netlist guarded = mult::build_date2018_flat(f);
    static_cast<void>(guard::add_parity_ced(guarded, f));
    const exec::Program pg = exec::Program::compile(guarded);
    const exec::Program pp = exec::Program::compile(plain);
    exec::Program::Scratch sg, sp;
    const int n_in = static_cast<int>(plain.inputs().size());
    const int m = static_cast<int>(plain.outputs().size());
    std::vector<std::uint64_t> in(static_cast<std::size_t>(n_in));
    std::vector<std::uint64_t> og(guarded.outputs().size());
    std::vector<std::uint64_t> op(static_cast<std::size_t>(m));
    const std::uint64_t blocks = (std::uint64_t{1} << n_in) / 64;
    for (std::uint64_t b = 0; b < blocks; ++b) {
        for (int i = 0; i < n_in; ++i) {
            std::uint64_t w = 0;
            for (int l = 0; l < 64; ++l) {
                if (((b * 64 + static_cast<std::uint64_t>(l)) >> i) & 1U) {
                    w |= std::uint64_t{1} << l;
                }
            }
            in[static_cast<std::size_t>(i)] = w;
        }
        pg.run(in, og, sg);
        pp.run(in, op, sp);
        for (int o = 0; o < m; ++o) {
            ASSERT_EQ(og[static_cast<std::size_t>(o)],
                      op[static_cast<std::size_t>(o)])
                << "function output c" << o << " changed, block " << b;
        }
    }
}

TEST(GuardCed, CleanNeverAlarmsAllFamiliesGf256) {
    const field::Field f = field::table5_fields()[0].make();
    for (const auto& mi : mult::all_methods()) {
        Netlist nl = mult::build_multiplier(mi.method, f);
        const auto info = guard::add_parity_ced(nl, f);
        ASSERT_GE(info.groups, 1) << mi.key;
        expect_no_false_alarms(nl, f.degree());
    }
}

TEST(GuardCed, CleanNeverAlarmsTable5Sweep) {
    // The full Table V sweep on the paper's own generator: exhaustive at
    // (8,2), seeded random vectors beyond.
    for (const auto& spec : field::table5_fields()) {
        const field::Field f = spec.make();
        Netlist nl = mult::build_date2018_flat(f);
        const auto info = guard::add_parity_ced(nl, f);
        ASSERT_GE(info.groups, 1) << spec.label();
        // Every gate of a product-layer family has a constant error
        // pattern: ANDs are fed by primary inputs only.
        EXPECT_EQ(info.conditional_gates, 0U) << spec.label();
        expect_no_false_alarms(nl, f.degree(), /*random_blocks=*/16);
    }
}

TEST(GuardCed, FaultCampaignDetectsEveryCoveredSiteGf256) {
    const field::Field f = field::table5_fields()[0].make();
    Netlist nl = mult::build_date2018_flat(f);
    const auto info = guard::add_parity_ced(nl, f);
    const auto report = verify::run_fault_campaign(
        nl, info.covered_sites, static_cast<std::size_t>(f.degree()),
        static_cast<std::size_t>(nl.output_index(guard::kCedAlarmOutput)));
    EXPECT_EQ(report.injected, info.covered_sites.size() * 2);
    EXPECT_TRUE(report.all_detected()) << report.to_string();
    EXPECT_EQ(report.escaped, 0U);
    for (const auto& e : report.escapes) {
        ADD_FAILURE() << "escaped: " << e.to_string();
    }
    // The campaign must have exercised real corruptions, not just benign
    // injections — flipping an AND to XOR is excited by (1,1) somewhere in
    // the exhaustive sweep for virtually every gate.
    EXPECT_GT(report.detected, report.injected / 2) << report.to_string();
}

TEST(GuardCed, FaultCampaignHandlesConditionalFamilies) {
    // ReyhaniHasan routes b through an iterated w-network feeding AND
    // inputs: those gates are conditional (excluded from covered_sites),
    // but every *covered* site must still hold the 100% guarantee.
    const field::Field f = field::table5_fields()[0].make();
    Netlist nl = mult::build_reyhani_hasan(f);
    const auto info = guard::add_parity_ced(nl, f);
    EXPECT_GT(info.conditional_gates, 0U);
    const auto report = verify::run_fault_campaign(
        nl, info.covered_sites, static_cast<std::size_t>(f.degree()),
        static_cast<std::size_t>(nl.output_index(guard::kCedAlarmOutput)));
    EXPECT_TRUE(report.all_detected()) << report.to_string();
}

TEST(GuardCed, FaultCampaignRandomRegimeGf64) {
    // (64,23): 128 input bits force the random-vector regime.  A slice of
    // sites keeps the per-test compile load bounded; determinism of the
    // campaign makes the slice reproducible.
    const field::Field f = field::table5_fields()[1].make();
    Netlist nl = mult::build_date2018_flat(f);
    const auto info = guard::add_parity_ced(nl, f);
    ASSERT_GT(info.covered_sites.size(), 24U);
    std::vector<netlist::NodeId> sites;
    const std::size_t stride = info.covered_sites.size() / 12;
    for (std::size_t i = 0; i < info.covered_sites.size(); i += stride) {
        sites.push_back(info.covered_sites[i]);
    }
    verify::FaultCampaignOptions opt;
    opt.random_blocks = 8;
    const auto report = verify::run_fault_campaign(
        nl, sites, static_cast<std::size_t>(f.degree()),
        static_cast<std::size_t>(nl.output_index(guard::kCedAlarmOutput)), opt);
    EXPECT_TRUE(report.all_detected()) << report.to_string();
    EXPECT_GT(report.detected, 0U);
}

TEST(GuardCed, CampaignRejectsBadSites) {
    const field::Field f = field::table5_fields()[0].make();
    Netlist nl = mult::build_date2018_flat(f);
    static_cast<void>(guard::add_parity_ced(nl, f));
    const std::size_t alarm =
        static_cast<std::size_t>(nl.output_index(guard::kCedAlarmOutput));
    // An input node is not an injectable gate.
    const netlist::NodeId input_node = nl.inputs()[0].node;
    const std::vector<netlist::NodeId> bad{input_node};
    EXPECT_THROW(static_cast<void>(verify::run_fault_campaign(
                     nl, bad, static_cast<std::size_t>(f.degree()), alarm)),
                 std::invalid_argument);
    const std::vector<netlist::NodeId> oob{
        static_cast<netlist::NodeId>(nl.node_count())};
    EXPECT_THROW(static_cast<void>(verify::run_fault_campaign(
                     nl, oob, static_cast<std::size_t>(f.degree()), alarm)),
                 std::invalid_argument);
}

TEST(GuardCed, VerbatimCloneIsNodeForNode) {
    const field::Field f = field::table5_fields()[0].make();
    const Netlist src = mult::build_paar_mastrovito(f);
    const Netlist copy = netlist::clone_netlist(src, {.intern = false});
    ASSERT_EQ(copy.node_count(), src.node_count());
    for (netlist::NodeId id = 0; id < src.node_count(); ++id) {
        EXPECT_EQ(static_cast<int>(copy.node(id).kind),
                  static_cast<int>(src.node(id).kind));
        EXPECT_EQ(copy.node(id).a, src.node(id).a);
        EXPECT_EQ(copy.node(id).b, src.node(id).b);
    }
    EXPECT_FALSE(netlist::check_equivalence(src, copy).has_value());
}

TEST(GuardCed, FreshGatesAreNotInterned) {
    Netlist nl;
    const auto a = nl.add_input("a0");
    const auto b = nl.add_input("b0");
    const auto x1 = nl.make_xor(a, b);
    // Fresh gates never join the structural-hash table: an identical fresh
    // gate gets a new id, and XOR(a,a)/AND(a,a) stay live.
    const auto x2 = nl.make_xor_fresh(a, b);
    EXPECT_NE(x1, x2);
    const auto x3 = nl.make_xor(a, b);  // interned: finds the original
    EXPECT_EQ(x1, x3);
    const auto z = nl.make_xor_fresh(a, a);
    const auto w = nl.make_and_fresh(a, a);
    EXPECT_NE(z, w);
    EXPECT_THROW(static_cast<void>(
                     nl.make_xor_fresh(static_cast<netlist::NodeId>(999), a)),
                 std::out_of_range);
    nl.add_output("c0", x1);
    EXPECT_EQ(nl.output_index("c0"), 0);
    EXPECT_EQ(nl.output_index("missing"), -1);
}

}  // namespace
}  // namespace gfr
