// Broad type II sweep: for EVERY irreducible type II pentanomial with
// m <= 20, every architecture must verify (exhaustively for m <= 8) and the
// structural invariants of the split method must hold.  This covers the
// whole small end of the family the paper is about, not just its nine
// evaluation points.

#include "gf2/pentanomial.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "st/complexity.h"

#include <gtest/gtest.h>

namespace gfr::mult {
namespace {

std::vector<gf2::TypeIIPentanomial> all_type2_upto(int max_m) {
    std::vector<gf2::TypeIIPentanomial> out;
    for (int m = 6; m <= max_m; ++m) {
        for (const int n : gf2::type2_irreducible_ns(m)) {
            out.push_back(gf2::TypeIIPentanomial{m, n});
        }
    }
    return out;
}

class Type2Sweep : public ::testing::TestWithParam<gf2::TypeIIPentanomial> {};

TEST_P(Type2Sweep, AllMethodsVerify) {
    const auto penta = GetParam();
    const field::Field fld{penta.poly()};
    VerifyOptions opts;
    opts.random_sweeps = 16;  // m <= 16 exhaustive anyway via the threshold
    for (const auto& info : all_methods()) {
        const auto nl = build_multiplier(info.method, fld);
        const auto failure = verify_multiplier(nl, fld, opts);
        EXPECT_FALSE(failure.has_value())
            << std::string{info.key} << " over (m,n)=(" << penta.m << "," << penta.n
            << "): " << failure->to_string();
    }
}

TEST_P(Type2Sweep, SplitTheoryHolds) {
    const auto penta = GetParam();
    const auto theory = st::split_method_complexity(penta.poly());
    const field::Field fld{penta.poly()};
    const auto paren = build_multiplier(Method::Imana2016Paren, fld).stats();
    EXPECT_EQ(paren.xor_depth, theory.depth_paren);
    EXPECT_EQ(paren.n_and, penta.m * penta.m);
}

INSTANTIATE_TEST_SUITE_P(UpTo20, Type2Sweep, ::testing::ValuesIn(all_type2_upto(20)),
                         [](const auto& info) {
                             return "m" + std::to_string(info.param.m) + "n" +
                                    std::to_string(info.param.n);
                         });

TEST(Type2Family, DensityIsSubstantial) {
    // The paper calls type II pentanomials "abundant": count the degrees up
    // to 64 admitting at least one.
    int degrees_with = 0;
    for (int m = 6; m <= 64; ++m) {
        if (!gf2::type2_irreducible_ns(m).empty()) {
            ++degrees_with;
        }
    }
    EXPECT_GE(degrees_with, 30);  // more than half of all degrees
}

}  // namespace
}  // namespace gfr::mult
