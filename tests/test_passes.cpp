// Synthesis passes: every pass must preserve function; balancing must reach
// optimal depth; pair extraction must find cross-output sharing.

#include "netlist/equivalence.h"
#include "netlist/passes.h"

#include <gtest/gtest.h>

namespace gfr::netlist {
namespace {

Netlist chain_xor_circuit(int n_inputs) {
    Netlist nl;
    std::vector<NodeId> leaves;
    for (int i = 0; i < n_inputs; ++i) {
        leaves.push_back(nl.add_input("i" + std::to_string(i)));
    }
    nl.add_output("y", nl.make_xor_tree(leaves, TreeShape::Chain));
    return nl;
}

TEST(Dce, DropsUnreachableGates) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto keep = nl.make_and(a, b);
    nl.make_xor(a, b);  // dead
    nl.add_output("y", keep);

    const Netlist cleaned = dce(nl);
    EXPECT_EQ(cleaned.stats().n_and, 1);
    EXPECT_EQ(cleaned.stats().n_xor, 0);
    EXPECT_EQ(cleaned.node_count(), 3U);  // a, b, AND
    EXPECT_FALSE(check_equivalence(nl, cleaned).has_value());
}

TEST(Dce, PreservesUnusedInputsInOrder) {
    Netlist nl;
    nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_input("c");
    nl.add_output("y", b);
    const Netlist cleaned = dce(nl);
    ASSERT_EQ(cleaned.inputs().size(), 3U);
    EXPECT_EQ(cleaned.inputs()[0].name, "a");
    EXPECT_EQ(cleaned.inputs()[2].name, "c");
}

TEST(Balance, ChainBecomesLogDepth) {
    const Netlist chain = chain_xor_circuit(16);
    EXPECT_EQ(chain.stats().xor_depth, 15);
    const Netlist balanced = balance_xor_trees(chain);
    EXPECT_EQ(balanced.stats().xor_depth, 4);
    EXPECT_EQ(balanced.stats().n_xor, 15);
    EXPECT_FALSE(check_equivalence(chain, balanced).has_value());
}

TEST(Balance, RespectsSharedSubtrees) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    const auto d = nl.add_input("d");
    const auto shared = nl.make_xor(a, b);  // multi-fanout: must stay a unit
    nl.add_output("y1", nl.make_xor(nl.make_xor(shared, c), d));
    nl.add_output("y2", nl.make_xor(shared, d));
    const Netlist balanced = balance_xor_trees(nl);
    EXPECT_FALSE(check_equivalence(nl, balanced).has_value());
    // Sharing not destroyed: still at most 4 XOR gates.
    EXPECT_LE(balanced.stats().n_xor, 4);
}

TEST(Balance, DuplicateLeavesCancel) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    // (a^b) ^ (b^c) == a^c; flattening must cancel the duplicated b.
    const auto left = nl.make_xor(a, b);
    const auto right = nl.make_xor(b, c);
    nl.add_output("y", nl.make_xor(left, right));
    const Netlist balanced = balance_xor_trees(nl);
    EXPECT_FALSE(check_equivalence(nl, balanced).has_value());
    EXPECT_EQ(balanced.stats().n_xor, 1);  // just a ^ c
}

TEST(Balance, AndGatesUntouched) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("y", nl.make_and(a, b));
    const Netlist balanced = balance_xor_trees(nl);
    EXPECT_EQ(balanced.stats().n_and, 1);
    EXPECT_FALSE(check_equivalence(nl, balanced).has_value());
}

TEST(ExtractPairs, SharesCommonPairAcrossOutputs) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    const auto d = nl.add_input("d");
    // y1 = a^b^c, y2 = a^b^d: the pair (a,b) occurs in both outputs.
    nl.add_output("y1", nl.make_xor(nl.make_xor(a, b), c));
    nl.add_output("y2", nl.make_xor(nl.make_xor(a, b), d));
    const Netlist shared = extract_common_xor_pairs(nl);
    EXPECT_FALSE(check_equivalence(nl, shared).has_value());
    // a^b built once, plus one XOR per output = 3 total.
    EXPECT_EQ(shared.stats().n_xor, 3);
}

TEST(ExtractPairs, NoFalseSharing) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    const auto d = nl.add_input("d");
    nl.add_output("y1", nl.make_xor(a, b));
    nl.add_output("y2", nl.make_xor(c, d));
    const Netlist shared = extract_common_xor_pairs(nl);
    EXPECT_FALSE(check_equivalence(nl, shared).has_value());
    EXPECT_EQ(shared.stats().n_xor, 2);
}

TEST(ExtractPairs, CascadedSharing) {
    // Three outputs all containing {a,b,c}: after extracting (a,b), the pair
    // ((a^b), c) appears 3 times and is extracted next.
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    const auto d = nl.add_input("d");
    const auto e = nl.add_input("e");
    const auto f = nl.add_input("f");
    auto mk = [&](NodeId extra) {
        return nl.make_xor(nl.make_xor(nl.make_xor(a, b), c), extra);
    };
    nl.add_output("y1", mk(d));
    nl.add_output("y2", mk(e));
    nl.add_output("y3", mk(f));
    const Netlist shared = extract_common_xor_pairs(nl);
    EXPECT_FALSE(check_equivalence(nl, shared).has_value());
    // a^b (1), (a^b)^c (1), plus one XOR per output: 5 total, versus 9 naive.
    EXPECT_EQ(shared.stats().n_xor, 5);
}

TEST(Synthesize, PipelinePreservesFunction) {
    const Netlist chain = chain_xor_circuit(24);
    for (const bool flatten : {false, true}) {
        for (const bool group : {false, true}) {
            for (const bool extract : {false, true}) {
                for (const bool balance : {false, true}) {
                    const Netlist out = synthesize(
                        chain, SynthOptions{.flatten_anf = flatten,
                                            .group_cones = group,
                                            .extract_pairs = extract,
                                            .balance = balance});
                    EXPECT_FALSE(check_equivalence(chain, out).has_value())
                        << "flatten=" << flatten << " group=" << group
                        << " extract=" << extract << " balance=" << balance;
                    if (balance || flatten || group) {
                        EXPECT_LE(out.stats().xor_depth, 5);
                    }
                }
            }
        }
    }
}

TEST(FlattenAnf, CollapsesSharedStructure) {
    // y1 = (a^b)^c and y2 = (a^b)^d via a shared node: flattening removes the
    // shared unit and rebuilds each output as a flat XOR over {a,b,c/d}.
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    const auto d = nl.add_input("d");
    const auto shared = nl.make_xor(a, b);
    nl.add_output("y1", nl.make_xor(shared, c));
    nl.add_output("y2", nl.make_xor(shared, d));
    const Netlist flat = flatten_to_anf(nl);
    EXPECT_FALSE(check_equivalence(nl, flat).has_value());
    EXPECT_EQ(flat.stats().xor_depth, 2);
}

TEST(FlattenAnf, CancelsDuplicateProducts) {
    // (a^b) ^ (b^c) flattens to a^c.
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    nl.add_output("y", nl.make_xor(nl.make_xor(a, b), nl.make_xor(b, c)));
    const Netlist flat = flatten_to_anf(nl);
    EXPECT_FALSE(check_equivalence(nl, flat).has_value());
    EXPECT_EQ(flat.stats().n_xor, 1);
}

TEST(FlattenAnf, NonXorOutputsSurvive) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("y", nl.make_and(a, b));
    const Netlist flat = flatten_to_anf(nl);
    EXPECT_FALSE(check_equivalence(nl, flat).has_value());
    EXPECT_EQ(flat.stats().n_and, 1);
}

TEST(Balance, HeightAwareOverDeepSharedUnit) {
    // A deep shared unit (multi-fanout chain) plus shallow leaves: the
    // height-aware rebuild must put the deep unit near the root, achieving
    // depth(unit) + 1 rather than depth(unit) + log2(n).
    Netlist nl;
    std::vector<NodeId> chain_leaves;
    for (int i = 0; i < 9; ++i) {
        chain_leaves.push_back(nl.add_input("u" + std::to_string(i)));
    }
    const auto deep = nl.make_xor_tree(chain_leaves, TreeShape::Chain);  // depth 8
    nl.add_output("keep_shared", deep);  // gives the unit fanout > 1
    std::vector<NodeId> leaves{deep};
    for (int i = 0; i < 7; ++i) {
        leaves.push_back(nl.add_input("v" + std::to_string(i)));
    }
    nl.add_output("y", nl.make_xor_tree(leaves, TreeShape::Chain));
    const Netlist balanced = balance_xor_trees(nl);
    EXPECT_FALSE(check_equivalence(nl, balanced).has_value());
    // Unit depth 8 (its own tree is balanced to 4 actually: the unit itself
    // gets rebuilt depth-optimally too: ceil(log2 9) = 4), plus the 7 extra
    // leaves combine beside it: total depth 5, not 4 + 3.
    EXPECT_LE(balanced.stats().xor_depth, 5);
}

TEST(Synthesize, OutputsDrivenByInputsSurvive) {
    Netlist nl;
    const auto a = nl.add_input("a");
    nl.add_input("b");
    nl.add_output("y", a);
    for (const bool extract : {false, true}) {
        const Netlist out = synthesize(nl, SynthOptions{extract, true});
        ASSERT_EQ(out.outputs().size(), 1U);
        EXPECT_FALSE(check_equivalence(nl, out).has_value());
    }
}

}  // namespace
}  // namespace gfr::netlist
