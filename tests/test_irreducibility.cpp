// Rabin irreducibility test: known irreducible / reducible polynomials,
// including all standards-track moduli the paper leans on.

#include "gf2/gf2_poly.h"
#include "gf2/irreducibility.h"

#include <gtest/gtest.h>

namespace gfr::gf2 {
namespace {

TEST(PrimeFactors, SmallValues) {
    EXPECT_EQ(distinct_prime_factors(1), (std::vector<int>{}));
    EXPECT_EQ(distinct_prime_factors(2), (std::vector<int>{2}));
    EXPECT_EQ(distinct_prime_factors(8), (std::vector<int>{2}));
    EXPECT_EQ(distinct_prime_factors(12), (std::vector<int>{2, 3}));
    EXPECT_EQ(distinct_prime_factors(163), (std::vector<int>{163}));
    EXPECT_EQ(distinct_prime_factors(113), (std::vector<int>{113}));
    EXPECT_EQ(distinct_prime_factors(148), (std::vector<int>{2, 37}));
    EXPECT_THROW(distinct_prime_factors(0), std::invalid_argument);
}

TEST(Irreducibility, DegreeZeroAndOne) {
    EXPECT_FALSE(is_irreducible(Poly{}));
    EXPECT_FALSE(is_irreducible(Poly::one()));
    EXPECT_TRUE(is_irreducible(Poly::monomial(1)));                  // y
    EXPECT_TRUE(is_irreducible(Poly::from_exponents({1, 0})));       // y + 1
}

TEST(Irreducibility, DegreeTwo) {
    EXPECT_TRUE(is_irreducible(Poly::from_exponents({2, 1, 0})));    // y^2+y+1
    EXPECT_FALSE(is_irreducible(Poly::from_exponents({2, 0})));      // (y+1)^2
    EXPECT_FALSE(is_irreducible(Poly::from_exponents({2, 1})));      // y(y+1)
    EXPECT_FALSE(is_irreducible(Poly::from_exponents({2})));         // y^2
}

TEST(Irreducibility, AllDegreeThree) {
    // The two irreducible cubics over GF(2) are y^3+y+1 and y^3+y^2+1.
    int count = 0;
    for (int bits = 0; bits < 8; ++bits) {
        Poly p = Poly::monomial(3);
        for (int k = 0; k < 3; ++k) {
            if ((bits >> k) & 1) {
                p.set_coeff(k, true);
            }
        }
        if (is_irreducible(p)) {
            ++count;
            EXPECT_TRUE(p == Poly::from_exponents({3, 1, 0}) ||
                        p == Poly::from_exponents({3, 2, 0}));
        }
    }
    EXPECT_EQ(count, 2);
}

TEST(Irreducibility, CountDegree8) {
    // Number of monic irreducible octics over GF(2) is
    // (1/8) * sum_{d|8} mu(8/d) 2^d = (2^8 - 2^4)/8 = 30.
    int count = 0;
    for (int bits = 0; bits < 256; ++bits) {
        Poly p = Poly::monomial(8);
        for (int k = 0; k < 8; ++k) {
            if ((bits >> k) & 1) {
                p.set_coeff(k, true);
            }
        }
        if (is_irreducible(p)) {
            ++count;
        }
    }
    EXPECT_EQ(count, 30);
}

TEST(Irreducibility, PaperGf256Modulus) {
    EXPECT_TRUE(is_irreducible(Poly::from_exponents({8, 4, 3, 2, 0})));
}

TEST(Irreducibility, AesModulus) {
    // The AES polynomial y^8+y^4+y^3+y+1 is irreducible (but NOT type II).
    EXPECT_TRUE(is_irreducible(Poly::from_exponents({8, 4, 3, 1, 0})));
}

TEST(Irreducibility, NistEcdsaStandardModuli) {
    // The actual NIST ECDSA moduli (trinomials/pentanomials from FIPS 186-4).
    EXPECT_TRUE(is_irreducible(Poly::from_exponents({163, 7, 6, 3, 0})));
    EXPECT_TRUE(is_irreducible(Poly::from_exponents({233, 74, 0})));
    EXPECT_TRUE(is_irreducible(Poly::from_exponents({283, 12, 7, 5, 0})));
    EXPECT_TRUE(is_irreducible(Poly::from_exponents({409, 87, 0})));
    EXPECT_TRUE(is_irreducible(Poly::from_exponents({571, 10, 5, 2, 0})));
}

TEST(Irreducibility, ProductsAreRejected) {
    const Poly f1 = Poly::from_exponents({8, 4, 3, 2, 0});
    const Poly f2 = Poly::from_exponents({3, 1, 0});
    EXPECT_FALSE(is_irreducible(f1 * f2));
    EXPECT_FALSE(is_irreducible(f1 * f1));
    EXPECT_FALSE(is_irreducible(f2 * f2));
}

TEST(Irreducibility, EvenWeightAlwaysReducible) {
    // Even number of terms => divisible by (y+1).
    EXPECT_FALSE(is_irreducible(Poly::from_exponents({9, 4, 3, 0})));
    EXPECT_FALSE(is_irreducible(Poly::from_exponents({16, 5})));
}

}  // namespace
}  // namespace gfr::gf2
