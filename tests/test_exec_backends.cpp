// Backend tier for the SIMD tape executors (exec/run_kernels.h).
//
// The scalar executor's semantics are pinned against independent references
// in test_exec_program.cpp; here every OTHER compiled backend is pinned
// against the scalar executor:
//
//   - bit-exact differential sweeps over every generator family x every
//     Table V field at every block width 1..kMaxBlocks, explicit backends
//     and the auto-dispatched default side by side;
//   - the fused sweep-oracle rungs pinned against the scalar oracle's diff
//     words (clean outputs, a single tampered lane bit, fully random
//     outputs) at every block count;
//   - the pure dispatch policy (make_exec_dispatch) over all 64 CpuFeatures
//     combinations — a vector backend is never selected without ISA support
//     and forcing scalar always pins scalar;
//   - the guard quarantine ladder (guard/exec_check.h): golden-tape
//     self-tests, GFR_GUARD_FAULT spec parsing, forced-fault ladder walks
//     (avx512 -> avx2 -> scalar), and the process-wide quarantine report;
//   - campaign invariance: verify_multiplier's verdict and counterexample
//     string are identical across batching widths and backends, both
//     regimes.

#include "bulk/cpu.h"
#include "bulk/kernels.h"
#include "exec/program.h"
#include "exec/run_kernels.h"
#include "field/field_catalog.h"
#include "guard/exec_check.h"
#include "guard/kernel_check.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "testutil.h"
#include "verify/lane_reference.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace gfr::exec {
namespace {

using netlist::Netlist;
using testutil::Xorshift64Star;

/// Non-scalar compiled backends the running CPU can execute — the set the
/// differential and ladder tests sweep.  May legitimately be empty
/// (portable build, pre-AVX2 hardware); each test then degenerates to its
/// scalar-only assertions and still passes.
std::vector<Backend> runnable_vector_backends() {
    std::vector<Backend> out;
    const bulk::CpuFeatures cpu = bulk::detect_cpu();
    for (const Backend b : compiled_tape_backends()) {
        if (b != Backend::Scalar && backend_supported(b, cpu)) {
            out.push_back(b);
        }
    }
    return out;
}

// --- Dispatch tables and policy ----------------------------------------------

TEST(ExecBackends, BackendTablesAreConsistent) {
    const auto compiled = compiled_tape_backends();
    ASSERT_FALSE(compiled.empty());
    EXPECT_EQ(compiled.front(), Backend::Scalar);

    EXPECT_EQ(tape_kernel(Backend::Scalar), &kTapeScalar);
    EXPECT_EQ(kTapeScalar.backend, Backend::Scalar);
    EXPECT_EQ(kTapeScalar.word_lanes, 1);
    ASSERT_NE(kTapeScalar.run, nullptr);
    ASSERT_NE(kTapeScalar.oracle, nullptr);

    EXPECT_EQ(std::string{backend_name(Backend::Scalar)}, "scalar");
    EXPECT_EQ(std::string{backend_name(Backend::Avx2)}, "avx2");
    EXPECT_EQ(std::string{backend_name(Backend::Avx512)}, "avx512");

    if (const TapeKernel* k = avx2_tape_kernel()) {
        EXPECT_EQ(k, tape_kernel(Backend::Avx2));
        EXPECT_EQ(k->backend, Backend::Avx2);
        EXPECT_EQ(k->word_lanes, 4);
        EXPECT_NE(k->run, nullptr);
        EXPECT_NE(k->oracle, nullptr);
    } else {
        EXPECT_EQ(tape_kernel(Backend::Avx2), nullptr);
    }
    if (const TapeKernel* k = avx512_tape_kernel()) {
        EXPECT_EQ(k, tape_kernel(Backend::Avx512));
        EXPECT_EQ(k->backend, Backend::Avx512);
        EXPECT_EQ(k->word_lanes, 8);
        EXPECT_NE(k->run, nullptr);
        EXPECT_NE(k->oracle, nullptr);
    } else {
        EXPECT_EQ(tape_kernel(Backend::Avx512), nullptr);
    }

    // Every compiled backend is listed exactly once, resolvable, and ships
    // both halves of the kernel pair (tape executor + fused sweep oracle).
    for (const Backend b : compiled) {
        const TapeKernel* k = tape_kernel(b);
        ASSERT_NE(k, nullptr) << backend_name(b);
        EXPECT_EQ(k->backend, b);
        EXPECT_NE(k->oracle, nullptr) << backend_name(b);
    }
}

TEST(ExecBackends, MakeExecDispatchNeverSelectsUnsupportedIsa) {
    // All 64 feature combinations (every CpuFeatures field), forced and
    // unforced: the selected executor's ISA must be within the features,
    // forcing scalar must pin scalar, and among the allowed compiled
    // backends the widest one wins (avx512 > avx2 > scalar).
    for (int bits = 0; bits < 64; ++bits) {
        bulk::CpuFeatures f;
        f.ssse3 = (bits & 1) != 0;
        f.avx2 = (bits & 2) != 0;
        f.pclmul = (bits & 4) != 0;
        f.vpclmulqdq = (bits & 8) != 0;
        f.gfni = (bits & 16) != 0;
        f.avx512f = (bits & 32) != 0;
        for (const bool forced : {false, true}) {
            const ExecDispatch d = make_exec_dispatch(f, forced);
            ASSERT_NE(d.kernel, nullptr);
            ASSERT_NE(d.kernel->run, nullptr);
            EXPECT_EQ(d.forced_scalar, forced);
            EXPECT_TRUE(backend_supported(d.kernel->backend, f))
                << backend_name(d.kernel->backend)
                << " selected without support (bits=" << bits << ")";
            Backend want = Backend::Scalar;
            if (!forced) {
                if (f.avx512f && tape_kernel(Backend::Avx512) != nullptr) {
                    want = Backend::Avx512;
                } else if (f.avx2 && tape_kernel(Backend::Avx2) != nullptr) {
                    want = Backend::Avx2;
                }
            }
            EXPECT_EQ(d.kernel->backend, want) << "bits=" << bits;
        }
    }
}

TEST(ExecBackends, ProcessDispatchMatchesEnvironmentPolicy) {
    // The process-wide selection obeys GFR_EXEC_FORCE_SCALAR (the CI
    // forced-scalar smoke sets it; the regular run does not) and is always
    // a backend this CPU supports.
    const ExecDispatch& d = dispatch();
    ASSERT_NE(d.kernel, nullptr);
    EXPECT_TRUE(backend_supported(d.kernel->backend, bulk::detect_cpu()));
    const char* env = std::getenv(kExecForceScalarEnv);
    if (bulk::env_flag_enabled(env)) {
        EXPECT_TRUE(d.forced_scalar);
        EXPECT_EQ(d.kernel->backend, Backend::Scalar);
    } else {
        EXPECT_FALSE(d.forced_scalar);
    }
}

// --- BlockGrouping contract --------------------------------------------------

TEST(ExecBackends, BlockGroupingEmptySpaceContract) {
    // total_blocks == 0: group stays a valid pass width (1) and the sweep
    // loop runs zero times — pinned so campaign drivers may feed empty
    // spaces without special-casing.
    for (const bool batched : {false, true}) {
        const BlockGrouping g = BlockGrouping::over(0, batched);
        EXPECT_EQ(g.total_blocks, 0U);
        EXPECT_EQ(g.group, 1);
        EXPECT_EQ(g.total_sweeps, 0U);
    }
}

TEST(ExecBackends, BlockGroupingBatchesAndClamps) {
    // Unbatched: 1:1 sweeps to blocks.
    const BlockGrouping flat = BlockGrouping::over(100, false);
    EXPECT_EQ(flat.group, 1);
    EXPECT_EQ(flat.total_sweeps, 100U);

    // Batched: full width, last sweep partial.
    const BlockGrouping wide = BlockGrouping::over(33, true);
    EXPECT_EQ(wide.group, Program::kMaxBlocks);
    EXPECT_EQ(wide.total_sweeps, 3U);
    EXPECT_EQ(wide.first_block(2), 32U);
    EXPECT_EQ(wide.blocks_in_sweep(0), Program::kMaxBlocks);
    EXPECT_EQ(wide.blocks_in_sweep(2), 1);

    // Small spaces never over-batch.
    EXPECT_EQ(BlockGrouping::over(5, true).group, 5);
    EXPECT_EQ(BlockGrouping::over(5, true).total_sweeps, 1U);

    // max_group clamps into [1, kMaxBlocks].
    EXPECT_EQ(BlockGrouping::over(100, true, 0).group, 1);
    EXPECT_EQ(BlockGrouping::over(100, true, -3).group, 1);
    EXPECT_EQ(BlockGrouping::over(100, true, 4).group, 4);
    EXPECT_EQ(BlockGrouping::over(100, true, 64).group, Program::kMaxBlocks);
}

// --- Differential: every backend vs the scalar reference ---------------------

TEST(ExecBackends, AllBackendsMatchScalarEveryFamilyEveryWidth) {
    // Every generator family x every Table V field x every block width
    // 1..kMaxBlocks: the explicit scalar run is the reference; every
    // runnable vector backend AND the auto-dispatched default must agree
    // word-for-word on identical random inputs.
    const auto vector_backends = runnable_vector_backends();
    Xorshift64Star rng{0xBAC0FFEEULL};
    testutil::for_each_table5_field([&](const auto& spec, const field::Field& f) {
        const std::size_t n_in = 2 * static_cast<std::size_t>(f.degree());
        const std::size_t n_out = static_cast<std::size_t>(f.degree());
        for (const auto& info : mult::all_methods()) {
            const auto nl = mult::build_multiplier(info.method, f);
            const Program prog = Program::compile(nl);
            Program::Scratch ref_scratch;
            Program::Scratch scratch;
            std::vector<std::uint64_t> in(n_in * Program::kMaxBlocks);
            std::vector<std::uint64_t> want(n_out * Program::kMaxBlocks);
            std::vector<std::uint64_t> got(n_out * Program::kMaxBlocks);
            for (auto& w : in) {
                w = rng.next();
            }
            const std::string what =
                std::string{info.key} + " / " + spec.label();
            for (int blocks = 1; blocks <= Program::kMaxBlocks; ++blocks) {
                const auto in_view = std::span{in}.first(n_in * blocks);
                const auto want_view = std::span{want}.first(n_out * blocks);
                const auto got_view = std::span{got}.first(n_out * blocks);
                prog.run(in_view, want_view, ref_scratch, blocks,
                         Backend::Scalar);
                for (const Backend b : vector_backends) {
                    std::fill(got.begin(), got.end(), ~std::uint64_t{0});
                    prog.run(in_view, got_view, scratch, blocks, b);
                    for (std::size_t i = 0; i < want_view.size(); ++i) {
                        ASSERT_EQ(got_view[i], want_view[i])
                            << what << ": backend " << backend_name(b)
                            << " blocks=" << blocks << " word " << i;
                    }
                }
                // The default overload (whatever dispatch() selected,
                // forced-scalar or not) is bit-identical too.
                std::fill(got.begin(), got.end(), ~std::uint64_t{0});
                prog.run(in_view, got_view, scratch, blocks);
                for (std::size_t i = 0; i < want_view.size(); ++i) {
                    ASSERT_EQ(got_view[i], want_view[i])
                        << what << ": auto dispatch, blocks=" << blocks
                        << " word " << i;
                }
            }
        }
    });
}

TEST(ExecBackends, FusedSweepOraclesMatchScalarEveryWidth) {
    // The scalar oracle rung is the reference word-op sequence
    // (LaneReference::products + compare); every runnable vector oracle
    // must reproduce its diff words bit-exactly at every block count.
    // Three regimes per count: clean tape outputs diff to zero everywhere,
    // one flipped lane bit flags exactly its own block with exactly that
    // lane's bit, and fully random outputs (dense diffs) stay
    // word-identical.  Fields cover the AVX-512 register-resident m <= 8
    // fast path (with its odd-block tail), the two-word and the three-word
    // general pipeline.
    const auto vector_backends = runnable_vector_backends();
    Xorshift64Star rng{0x0B5E55EDULL};
    const field::Field fields[] = {field::gf256_paper_field(),
                                   field::Field::type2(113, 4),
                                   field::Field::type2(163, 68)};
    for (const field::Field& f : fields) {
        const int m = f.degree();
        const std::size_t n_in = 2 * static_cast<std::size_t>(m);
        const verify::LaneReference laneref{f};
        SweepOracleView ov;
        ov.red_indices = laneref.reduction_indices().data();
        ov.red_offsets = laneref.reduction_offsets().data();
        ov.m = m;

        std::vector<std::uint64_t> in(n_in * Program::kMaxBlocks);
        for (auto& w : in) {
            w = rng.next();
        }
        // Clean `got`: the reference products of every block.
        std::vector<std::uint64_t> clean(static_cast<std::size_t>(m) *
                                         Program::kMaxBlocks);
        verify::LaneReference::Scratch ls;
        std::vector<std::uint64_t> block_out;
        for (int b = 0; b < Program::kMaxBlocks; ++b) {
            laneref.products(std::span{in}.subspan(b * n_in, n_in), block_out,
                             ls);
            std::copy(block_out.begin(), block_out.end(),
                      clean.begin() + static_cast<std::size_t>(b) * m);
        }

        std::vector<std::uint64_t> got(clean.size());
        std::vector<std::uint64_t> want_diff(Program::kMaxBlocks);
        std::vector<std::uint64_t> diff(Program::kMaxBlocks);
        std::vector<std::uint64_t> dwork(8 * static_cast<std::size_t>(m) + 64);
        const auto check_backends = [&](const char* regime, int blocks) {
            kTapeScalar.oracle(ov, in.data(), got.data(), want_diff.data(),
                               dwork.data(), blocks);
            for (const Backend b : vector_backends) {
                std::fill(diff.begin(), diff.end(), ~std::uint64_t{0});
                tape_kernel(b)->oracle(ov, in.data(), got.data(), diff.data(),
                                       dwork.data(), blocks);
                for (int i = 0; i < blocks; ++i) {
                    ASSERT_EQ(diff[i], want_diff[i])
                        << "m=" << m << " " << regime << ": backend "
                        << backend_name(b) << " blocks=" << blocks
                        << " diff word " << i;
                }
            }
        };

        for (int blocks = 1; blocks <= Program::kMaxBlocks; ++blocks) {
            // Clean: every block verifies, on the scalar reference itself
            // and on every vector rung.
            got.assign(clean.begin(), clean.end());
            check_backends("clean", blocks);
            for (int i = 0; i < blocks; ++i) {
                ASSERT_EQ(want_diff[i], 0U)
                    << "m=" << m << " scalar clean, blocks=" << blocks
                    << " block " << i;
            }

            // One flipped lane bit: exactly that block, exactly that lane.
            const int t = blocks / 2;
            const int lane = static_cast<int>(rng.next() & 63U);
            const std::size_t coeff = rng.next() % static_cast<std::size_t>(m);
            got[static_cast<std::size_t>(t) * m + coeff] ^= std::uint64_t{1}
                                                            << lane;
            check_backends("tampered", blocks);
            for (int i = 0; i < blocks; ++i) {
                ASSERT_EQ(want_diff[i],
                          i == t ? std::uint64_t{1} << lane : std::uint64_t{0})
                    << "m=" << m << " scalar tampered, blocks=" << blocks
                    << " block " << i;
            }

            // Fully random outputs: dense diff words, still identical.
            for (auto& w : got) {
                w = rng.next();
            }
            check_backends("random", blocks);
        }
    }
}

TEST(ExecBackends, UnavailableBackendThrowsPinnedMessage) {
    // The explicit-backend overload refuses backends this build or CPU
    // cannot run, before any shape checks.  (On hosts where every compiled
    // backend is supported this loop has nothing to refuse — the positive
    // paths are covered above.)
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("y", nl.make_xor(a, b));
    const Program prog = Program::compile(nl);
    Program::Scratch scratch;
    std::vector<std::uint64_t> in(2);
    std::vector<std::uint64_t> out(1);
    const bulk::CpuFeatures cpu = bulk::detect_cpu();
    for (const Backend backend : {Backend::Avx2, Backend::Avx512}) {
        if (tape_kernel(backend) != nullptr && backend_supported(backend, cpu)) {
            continue;
        }
        try {
            prog.run(in, out, scratch, 1, backend);
            ADD_FAILURE() << backend_name(backend) << " ran while unavailable";
        } catch (const std::invalid_argument& e) {
            EXPECT_EQ(std::string{e.what()},
                      "exec::Program::run: backend not available on this host");
        }
    }
}

// --- Guard: fault specs, self-tests, quarantine ladder -----------------------

TEST(ExecBackends, FaultSpecParsing) {
    // exec rungs answer to "exec-<name>" and the umbrella tokens, never to
    // the bulk kernel names, and scalar is never forced.
    EXPECT_TRUE(guard::exec_fault_forced("exec-avx2", Backend::Avx2));
    EXPECT_TRUE(guard::exec_fault_forced("exec-avx512", Backend::Avx512));
    EXPECT_TRUE(guard::exec_fault_forced("EXEC-AVX512", Backend::Avx512));
    EXPECT_FALSE(guard::exec_fault_forced("exec-avx512", Backend::Avx2));
    EXPECT_FALSE(guard::exec_fault_forced("exec-avx2", Backend::Avx512));
    EXPECT_FALSE(guard::exec_fault_forced("avx2", Backend::Avx2));
    EXPECT_FALSE(guard::exec_fault_forced("gfni", Backend::Avx2));
    for (const char* umbrella : {"all", "1", "simd", "on", "true", "yes"}) {
        EXPECT_TRUE(guard::exec_fault_forced(umbrella, Backend::Avx2)) << umbrella;
        EXPECT_TRUE(guard::exec_fault_forced(umbrella, Backend::Avx512)) << umbrella;
        EXPECT_FALSE(guard::exec_fault_forced(umbrella, Backend::Scalar)) << umbrella;
    }
    EXPECT_FALSE(guard::exec_fault_forced(nullptr, Backend::Avx2));
    for (const char* off : {"", "0", "off", "false", "no"}) {
        EXPECT_FALSE(guard::exec_fault_forced(off, Backend::Avx2)) << off;
    }
    // Comma lists: any matching token forces.
    EXPECT_TRUE(guard::exec_fault_forced("gfni,exec-avx2", Backend::Avx2));
    EXPECT_FALSE(guard::exec_fault_forced("gfni,vpclmul", Backend::Avx2));
    // The shared parser behind both tiers agrees on the bulk names too.
    EXPECT_TRUE(guard::fault_spec_hits("exec-avx2,gfni", "gfni"));
    EXPECT_FALSE(guard::fault_spec_hits("exec-avx2", "avx2"));
}

TEST(ExecBackends, SelfTestPassesAndDetectsForcedFault) {
    // Every runnable backend (scalar included) passes the golden-tape
    // screening; a forced fault is always caught and names coordinates.
    EXPECT_TRUE(guard::selftest_tape_kernel(kTapeScalar).ok());
    for (const Backend b : runnable_vector_backends()) {
        const TapeKernel* k = tape_kernel(b);
        ASSERT_NE(k, nullptr);
        EXPECT_TRUE(guard::selftest_tape_kernel(*k).ok()) << backend_name(b);
        const guard::Status faulted =
            guard::selftest_tape_kernel(*k, /*force_fault=*/true);
        EXPECT_FALSE(faulted.ok()) << backend_name(b);
        EXPECT_EQ(faulted.fault, guard::Fault::KernelSelfTest);
        EXPECT_FALSE(faulted.detail.empty());
    }
}

TEST(ExecBackends, ScreenLadderWalksDownPastForcedFaults) {
    // Drive the pure screening policy with synthetic fault specs against
    // the real selection for this CPU: forcing the top rung lands on the
    // next runnable one, forcing everything lands on scalar, and a null
    // spec quarantines nothing.
    const bulk::CpuFeatures cpu = bulk::detect_cpu();
    const ExecDispatch base = make_exec_dispatch(cpu, false);

    const auto clean = guard::screen_exec_dispatch(base, nullptr);
    EXPECT_TRUE(clean.quarantined.empty());
    EXPECT_EQ(clean.dispatch.kernel, base.kernel);

    const auto all = guard::screen_exec_dispatch(base, "all");
    EXPECT_EQ(all.dispatch.kernel->backend, Backend::Scalar);
    // One quarantine entry per non-scalar rung the ladder had to walk.
    const auto runnable = runnable_vector_backends();
    std::size_t walked = 0;
    for (const Backend b : runnable) {
        walked += (static_cast<int>(b) <= static_cast<int>(base.kernel->backend))
                      ? 1U
                      : 0U;
    }
    EXPECT_EQ(all.quarantined.size(), walked);
    for (const auto& q : all.quarantined) {
        EXPECT_TRUE(q.forced);
        EXPECT_NE(q.backend, Backend::Scalar);
        EXPECT_NE(q.to_string().find("forced by"), std::string::npos);
    }

    if (base.kernel->backend == Backend::Scalar) {
        return;  // nothing above scalar on this host; ladder fully covered
    }
    // Force only the top rung: the selection degrades exactly one step (to
    // the next runnable backend, scalar at worst) and quarantines one rung.
    char top_token[32];
    std::snprintf(top_token, sizeof top_token, "exec-%s",
                  backend_name(base.kernel->backend));
    const auto one = guard::screen_exec_dispatch(base, top_token);
    ASSERT_EQ(one.quarantined.size(), 1U);
    EXPECT_EQ(one.quarantined[0].backend, base.kernel->backend);
    Backend next = Backend::Scalar;
    for (const Backend b : runnable) {
        if (static_cast<int>(b) < static_cast<int>(base.kernel->backend) &&
            static_cast<int>(b) > static_cast<int>(next)) {
            next = b;
        }
    }
    EXPECT_EQ(one.dispatch.kernel->backend, next);
}

TEST(ExecBackends, QuarantineReportMatchesEnvironment) {
    // The process-wide exec dispatch was screened on first use with
    // whatever GFR_GUARD_FAULT the environment carries (the CI drill sets
    // it; the regular run does not).
    const char* spec = std::getenv(guard::kGuardFaultEnv);
    const auto& report = guard::exec_quarantine_report();
    if (spec == nullptr || *spec == '\0') {
        EXPECT_TRUE(report.empty());
        return;
    }
    // Under a forced-fault spec every quarantined rung was forced, none is
    // scalar, and the surviving dispatch still answers (scalar at worst)
    // with bit-identical results — the differential tests above already ran
    // against it in this same process.
    ASSERT_NE(dispatch().kernel, nullptr);
    for (const auto& q : report) {
        EXPECT_TRUE(q.forced);
        EXPECT_NE(q.backend, Backend::Scalar);
        EXPECT_TRUE(guard::exec_fault_forced(spec, q.backend))
            << backend_name(q.backend);
    }
}

// --- Campaign invariance across widths and backends --------------------------

/// Sweeps verify_multiplier over batching widths x backends x both sweep
/// oracles and demands one verdict string.  `reference_opts` must already
/// pin threads = 1.  The reference is the pre-PR-9 shape: width 1, forced
/// scalar, per-block LaneReference check instead of the fused oracle.
void expect_invariant_campaign(const Netlist& bad, const field::Field& f,
                               mult::VerifyOptions opts,
                               const std::string& regime) {
    opts.max_batch_blocks = 1;
    opts.exec_backend = Backend::Scalar;
    opts.fused_sweep_oracle = false;
    const auto reference = mult::verify_multiplier(bad, f, opts);
    ASSERT_TRUE(reference.has_value()) << regime;
    const std::string want = reference->to_string();

    std::vector<std::optional<Backend>> backends{std::nullopt, Backend::Scalar};
    for (const Backend b : runnable_vector_backends()) {
        backends.emplace_back(b);
    }
    for (const int width : {1, 4, 8, 16}) {
        for (const bool fused : {false, true}) {
            for (const auto& backend : backends) {
                opts.max_batch_blocks = width;
                opts.exec_backend = backend;
                opts.fused_sweep_oracle = fused;
                const auto failure = mult::verify_multiplier(bad, f, opts);
                const std::string label =
                    regime + ", width=" + std::to_string(width) +
                    ", backend=" +
                    (backend ? backend_name(*backend) : "auto") +
                    (fused ? ", fused" : ", per-block");
                ASSERT_TRUE(failure.has_value()) << label;
                EXPECT_EQ(failure->to_string(), want) << label;
            }
        }
    }
}

TEST(ExecBackends, RandomRegimeVerdictInvariantAcrossWidthsAndBackends) {
    // A faulted GF(2^113) multiplier (random regime): the failure's repro
    // string — width-1 sweep coordinates included — must be identical at
    // every batching width, on every backend, and under auto dispatch.
    const field::Field f = field::Field::type2(113, 4);
    const auto good = mult::build_multiplier(mult::Method::Date2018Flat, f);
    const auto bad = testutil::clone_netlist(
        good, nullptr,
        [&](std::size_t index, std::span<const netlist::NodeId> mapped,
            Netlist& dst) {
            return index == 56 ? dst.make_xor(mapped[index], dst.inputs()[3].node)
                               : mapped[index];
        });
    mult::VerifyOptions opts;
    opts.threads = 1;
    opts.random_sweeps = 48;
    expect_invariant_campaign(bad, f, opts, "random");
}

TEST(ExecBackends, ExhaustiveRegimeVerdictInvariantAcrossWidthsAndBackends) {
    // Same invariance over the exhaustive GF(2^8) space: the first failing
    // product of the full enumeration is a fixed point of the sweep order,
    // so every width/backend must report exactly it.
    const field::Field f = field::gf256_paper_field();
    const auto good = mult::build_multiplier(mult::Method::Date2018Flat, f);
    const auto bad = testutil::clone_netlist(
        good, nullptr,
        [&](std::size_t index, std::span<const netlist::NodeId> mapped,
            Netlist& dst) {
            return index == 5 ? dst.make_xor(mapped[index], dst.inputs()[2].node)
                              : mapped[index];
        });
    mult::VerifyOptions opts;
    opts.threads = 1;
    expect_invariant_campaign(bad, f, opts, "exhaustive");
}

TEST(ExecBackends, MultiplierVerifierIsReusableAndMatchesOneShot) {
    // MultiplierVerifier splits preparation (compile, anchors, plan) from
    // campaign execution; repeated runs over one prepared verifier must
    // report exactly what one-shot verify_multiplier calls would — nullopt
    // every time for a correct design, and the identical repro string
    // every time for a faulted one.
    const field::Field f = field::gf256_paper_field();
    const auto good = mult::build_multiplier(mult::Method::Date2018Flat, f);
    mult::VerifyOptions opts;
    opts.threads = 1;

    const mult::MultiplierVerifier ok{good, f, opts};
    EXPECT_FALSE(ok.run().has_value());
    EXPECT_FALSE(ok.run().has_value());

    const auto bad = testutil::clone_netlist(
        good, nullptr,
        [&](std::size_t index, std::span<const netlist::NodeId> mapped,
            Netlist& dst) {
            return index == 5 ? dst.make_xor(mapped[index], dst.inputs()[2].node)
                              : mapped[index];
        });
    const auto one_shot = mult::verify_multiplier(bad, f, opts);
    ASSERT_TRUE(one_shot.has_value());

    const mult::MultiplierVerifier verifier{bad, f, opts};
    const auto first = verifier.run();
    const auto second = verifier.run();
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(first->to_string(), one_shot->to_string());
    EXPECT_EQ(second->to_string(), one_shot->to_string());
}

}  // namespace
}  // namespace gfr::exec
