// Squarer, constant-multiplier and reducer netlists: XOR-only structure and
// bit-exact agreement with reference field arithmetic.

#include "field/field_catalog.h"
#include "multipliers/special.h"
#include "netlist/simulate.h"
#include "testutil.h"

#include <gtest/gtest.h>


namespace gfr::mult {
namespace {

using field::Field;
using gf2::Poly;

/// Evaluate a single-operand netlist on one element (lane 0).
Poly eval_unary(const netlist::Netlist& nl, const Poly& a, int n_inputs) {
    std::vector<std::uint64_t> in(static_cast<std::size_t>(n_inputs), 0);
    for (int i = 0; i < n_inputs; ++i) {
        in[static_cast<std::size_t>(i)] = a.coeff(i) ? 1 : 0;
    }
    const auto out = netlist::simulate(nl, in);
    Poly c;
    for (std::size_t k = 0; k < out.size(); ++k) {
        if (out[k] & 1U) {
            c.set_coeff(static_cast<int>(k), true);
        }
    }
    return c;
}

TEST(Squarer, XorOnly) {
    const Field fld = field::gf256_paper_field();
    const auto nl = build_squarer(fld);
    const auto stats = nl.stats();
    EXPECT_EQ(stats.n_and, 0);
    EXPECT_GT(stats.n_xor, 0);
    EXPECT_EQ(stats.and_depth, 0);
}

TEST(Squarer, ExhaustiveGf256) {
    const Field fld = field::gf256_paper_field();
    const auto nl = build_squarer(fld);
    for (std::uint64_t v = 0; v < 256; ++v) {
        const Poly a = fld.from_bits(v);
        EXPECT_EQ(eval_unary(nl, a, 8), fld.sqr(a)) << "v=" << v;
    }
}

class SquarerSweep : public ::testing::TestWithParam<field::FieldSpec> {};

TEST_P(SquarerSweep, RandomAgreement) {
    const Field fld = GetParam().make();
    const auto nl = build_squarer(fld);
    testutil::Xorshift64Star rng{99};
    for (int trial = 0; trial < 20; ++trial) {
        const auto a = testutil::random_element(fld, rng);
        EXPECT_EQ(eval_unary(nl, a, fld.degree()), fld.sqr(a));
    }
}

INSTANTIATE_TEST_SUITE_P(Table5Fields, SquarerSweep,
                         ::testing::ValuesIn(field::table5_fields()),
                         [](const auto& info) {
                             return "m" + std::to_string(info.param.m) + "n" +
                                    std::to_string(info.param.n);
                         });

TEST(Squarer, PentanomialSquaringIsCheap) {
    // For low-weight moduli, squaring costs O(m) XORs, far below the m^2-ish
    // multiplier; this is why square-and-multiply ladders love pentanomials.
    const Field fld = field::Field::type2(163, 66);
    const auto stats = build_squarer(fld).stats();
    EXPECT_LT(stats.n_xor, 4 * 163);
    EXPECT_LE(stats.xor_depth, 4);
}

TEST(ConstantMultiplier, ExhaustiveGf256) {
    const Field fld = field::gf256_paper_field();
    testutil::Xorshift64Star rng{7};
    for (int trial = 0; trial < 4; ++trial) {
        const auto b = testutil::random_element(fld, rng);
        const auto nl = build_constant_multiplier(fld, b);
        EXPECT_EQ(nl.stats().n_and, 0);
        for (std::uint64_t v = 0; v < 256; v += 5) {
            const Poly a = fld.from_bits(v);
            EXPECT_EQ(eval_unary(nl, a, 8), fld.mul(a, b));
        }
    }
}

TEST(ConstantMultiplier, IdentityIsWires) {
    const Field fld = field::gf256_paper_field();
    const auto nl = build_constant_multiplier(fld, fld.one());
    EXPECT_EQ(nl.stats().n_xor, 0);  // multiplying by 1 needs no logic
}

TEST(ConstantMultiplier, ZeroConstant) {
    const Field fld = field::gf256_paper_field();
    const auto nl = build_constant_multiplier(fld, fld.zero());
    for (std::uint64_t v = 0; v < 256; v += 17) {
        EXPECT_TRUE(eval_unary(nl, fld.from_bits(v), 8).is_zero());
    }
}

TEST(ConstantMultiplier, RejectsNonElement) {
    const Field fld = field::gf256_paper_field();
    EXPECT_THROW(
        static_cast<void>(build_constant_multiplier(fld, Poly::monomial(8))),
        std::invalid_argument);
}

TEST(ConstantMultiplier, LargeFieldRandom) {
    const Field fld = field::Field::type2(113, 4);
    testutil::Xorshift64Star rng{13};
    const auto b = testutil::random_element(fld, rng);
    const auto nl = build_constant_multiplier(fld, b);
    for (int trial = 0; trial < 10; ++trial) {
        const auto a = testutil::random_element(fld, rng);
        EXPECT_EQ(eval_unary(nl, a, 113), fld.mul(a, b));
    }
}

TEST(Reducer, MatchesPolynomialMod) {
    const Field fld = field::gf256_paper_field();
    const auto nl = build_reducer(fld);
    ASSERT_EQ(nl.inputs().size(), 15U);  // d0..d14
    testutil::Xorshift64Star rng{31};
    for (int trial = 0; trial < 50; ++trial) {
        Poly d;
        for (int i = 0; i <= 14; ++i) {
            if (rng() & 1U) {
                d.set_coeff(i, true);
            }
        }
        EXPECT_EQ(eval_unary(nl, d, 15), d % fld.modulus());
    }
}

TEST(Reducer, LowHalfIsIdentity) {
    // Degrees < m pass through unreduced: c_k depends on d_k plus the high
    // half only.
    const Field fld = field::gf256_paper_field();
    const auto nl = build_reducer(fld);
    for (int k = 0; k < 8; ++k) {
        const Poly d = Poly::monomial(k);
        EXPECT_EQ(eval_unary(nl, d, 15), d);
    }
}

TEST(Reducer, ComposesWithSchoolbookProduct) {
    // reduce(schoolbook(a, b)) == field.mul(a, b) — the classic two-step.
    const Field fld = field::Field::type2(64, 23);
    const auto nl = build_reducer(fld);
    testutil::Xorshift64Star rng{41};
    for (int trial = 0; trial < 10; ++trial) {
        const auto a = testutil::random_element(fld, rng);
        const auto b = testutil::random_element(fld, rng);
        const Poly d = a * b;  // unreduced, degree <= 126
        EXPECT_EQ(eval_unary(nl, d, 127), fld.mul(a, b));
    }
}

}  // namespace
}  // namespace gfr::mult
