// Equivalence checker: positive and negative cases, interface mismatches.

#include "netlist/equivalence.h"

#include <gtest/gtest.h>

namespace gfr::netlist {
namespace {

Netlist xor3(const std::string& shape) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    if (shape == "left") {
        nl.add_output("y", nl.make_xor(nl.make_xor(a, b), c));
    } else {
        nl.add_output("y", nl.make_xor(a, nl.make_xor(b, c)));
    }
    return nl;
}

TEST(Equivalence, DifferentShapesSameFunction) {
    const auto lhs = xor3("left");
    const auto rhs = xor3("right");
    EXPECT_FALSE(check_equivalence(lhs, rhs).has_value());
}

TEST(Equivalence, DetectsFunctionalDifference) {
    Netlist lhs;
    {
        const auto a = lhs.add_input("a");
        const auto b = lhs.add_input("b");
        lhs.add_output("y", lhs.make_xor(a, b));
    }
    Netlist rhs;
    {
        const auto a = rhs.add_input("a");
        const auto b = rhs.add_input("b");
        rhs.add_output("y", rhs.make_and(a, b));
    }
    const auto mm = check_equivalence(lhs, rhs);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->output_name, "y");
    EXPECT_NE(mm->lhs_value, mm->rhs_value);
    EXPECT_FALSE(mm->to_string().empty());
}

TEST(Equivalence, PermutedPortOrderIsMatchedByName) {
    Netlist lhs;
    {
        const auto a = lhs.add_input("a");
        const auto b = lhs.add_input("b");
        lhs.add_output("y", lhs.make_and(a, b));
    }
    Netlist rhs;
    {
        const auto b = rhs.add_input("b");  // reversed declaration order
        const auto a = rhs.add_input("a");
        rhs.add_output("y", rhs.make_and(a, b));
    }
    EXPECT_FALSE(check_equivalence(lhs, rhs).has_value());
}

TEST(Equivalence, MismatchedInterfaceThrows) {
    Netlist lhs;
    lhs.add_input("a");
    lhs.add_output("y", lhs.add_input("b"));
    Netlist rhs;
    rhs.add_input("a");
    rhs.add_output("y", rhs.add_input("c"));  // 'b' missing
    EXPECT_THROW(static_cast<void>(check_equivalence(lhs, rhs)), std::invalid_argument);
}

TEST(Equivalence, RandomRegimeFindsSingleMintermBug) {
    // 30 inputs forces the random regime.  rhs differs from lhs in a way
    // that flips ~half the assignments (an omitted XOR leaf) — random
    // vectors must catch it immediately.
    Netlist lhs;
    Netlist rhs;
    std::vector<NodeId> li;
    std::vector<NodeId> ri;
    for (int i = 0; i < 30; ++i) {
        li.push_back(lhs.add_input("i" + std::to_string(i)));
        ri.push_back(rhs.add_input("i" + std::to_string(i)));
    }
    lhs.add_output("y", lhs.make_xor_tree(li, TreeShape::Balanced));
    rhs.add_output("y", rhs.make_xor_tree(std::span{ri.data(), 29}, TreeShape::Balanced));
    const auto mm = check_equivalence(lhs, rhs);
    ASSERT_TRUE(mm.has_value());
}

TEST(Equivalence, RandomRegimePassesOnEqual) {
    Netlist lhs;
    Netlist rhs;
    std::vector<NodeId> li;
    std::vector<NodeId> ri;
    for (int i = 0; i < 30; ++i) {
        li.push_back(lhs.add_input("i" + std::to_string(i)));
        ri.push_back(rhs.add_input("i" + std::to_string(i)));
    }
    lhs.add_output("y", lhs.make_xor_tree(li, TreeShape::Balanced));
    rhs.add_output("y", rhs.make_xor_tree(ri, TreeShape::Chain));
    EXPECT_FALSE(check_equivalence(lhs, rhs).has_value());
}

TEST(Equivalence, MultiOutputMismatchNamesRightOutput) {
    Netlist lhs;
    Netlist rhs;
    const auto la = lhs.add_input("a");
    const auto lb = lhs.add_input("b");
    lhs.add_output("ok", lhs.make_xor(la, lb));
    lhs.add_output("bad", lhs.make_and(la, lb));
    const auto ra = rhs.add_input("a");
    const auto rb = rhs.add_input("b");
    rhs.add_output("ok", rhs.make_xor(ra, rb));
    rhs.add_output("bad", rhs.make_xor(ra, rb));
    const auto mm = check_equivalence(lhs, rhs);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->output_name, "bad");
}

}  // namespace
}  // namespace gfr::netlist
