// Equivalence checker: positive and negative cases, interface mismatches,
// counterexample fidelity under permuted port orders.

#include "netlist/equivalence.h"
#include "netlist/simulate.h"

#include <gtest/gtest.h>

namespace gfr::netlist {
namespace {

Netlist xor3(const std::string& shape) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    if (shape == "left") {
        nl.add_output("y", nl.make_xor(nl.make_xor(a, b), c));
    } else {
        nl.add_output("y", nl.make_xor(a, nl.make_xor(b, c)));
    }
    return nl;
}

TEST(Equivalence, DifferentShapesSameFunction) {
    const auto lhs = xor3("left");
    const auto rhs = xor3("right");
    EXPECT_FALSE(check_equivalence(lhs, rhs).has_value());
}

TEST(Equivalence, DetectsFunctionalDifference) {
    Netlist lhs;
    {
        const auto a = lhs.add_input("a");
        const auto b = lhs.add_input("b");
        lhs.add_output("y", lhs.make_xor(a, b));
    }
    Netlist rhs;
    {
        const auto a = rhs.add_input("a");
        const auto b = rhs.add_input("b");
        rhs.add_output("y", rhs.make_and(a, b));
    }
    const auto mm = check_equivalence(lhs, rhs);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->output_name, "y");
    EXPECT_NE(mm->lhs_value, mm->rhs_value);
    EXPECT_FALSE(mm->to_string().empty());
}

TEST(Equivalence, PermutedPortOrderIsMatchedByName) {
    Netlist lhs;
    {
        const auto a = lhs.add_input("a");
        const auto b = lhs.add_input("b");
        lhs.add_output("y", lhs.make_and(a, b));
    }
    Netlist rhs;
    {
        const auto b = rhs.add_input("b");  // reversed declaration order
        const auto a = rhs.add_input("a");
        rhs.add_output("y", rhs.make_and(a, b));
    }
    EXPECT_FALSE(check_equivalence(lhs, rhs).has_value());
}

TEST(Equivalence, MismatchedInterfaceThrows) {
    Netlist lhs;
    lhs.add_input("a");
    lhs.add_output("y", lhs.add_input("b"));
    Netlist rhs;
    rhs.add_input("a");
    rhs.add_output("y", rhs.add_input("c"));  // 'b' missing
    EXPECT_THROW(static_cast<void>(check_equivalence(lhs, rhs)), std::invalid_argument);
}

TEST(Equivalence, RandomRegimeFindsSingleMintermBug) {
    // 30 inputs forces the random regime.  rhs differs from lhs in a way
    // that flips ~half the assignments (an omitted XOR leaf) — random
    // vectors must catch it immediately.
    Netlist lhs;
    Netlist rhs;
    std::vector<NodeId> li;
    std::vector<NodeId> ri;
    for (int i = 0; i < 30; ++i) {
        li.push_back(lhs.add_input("i" + std::to_string(i)));
        ri.push_back(rhs.add_input("i" + std::to_string(i)));
    }
    lhs.add_output("y", lhs.make_xor_tree(li, TreeShape::Balanced));
    rhs.add_output("y", rhs.make_xor_tree(std::span{ri.data(), 29}, TreeShape::Balanced));
    const auto mm = check_equivalence(lhs, rhs);
    ASSERT_TRUE(mm.has_value());
}

TEST(Equivalence, RandomRegimePassesOnEqual) {
    Netlist lhs;
    Netlist rhs;
    std::vector<NodeId> li;
    std::vector<NodeId> ri;
    for (int i = 0; i < 30; ++i) {
        li.push_back(lhs.add_input("i" + std::to_string(i)));
        ri.push_back(rhs.add_input("i" + std::to_string(i)));
    }
    lhs.add_output("y", lhs.make_xor_tree(li, TreeShape::Balanced));
    rhs.add_output("y", rhs.make_xor_tree(ri, TreeShape::Chain));
    EXPECT_FALSE(check_equivalence(lhs, rhs).has_value());
}

TEST(Equivalence, PermutedInputOrderCounterexampleIsUnambiguous) {
    // lhs declares (p, q, r); rhs declares (r, q, p).  The two differ on
    // output y.  Mismatch::input_bits is indexed like lhs.inputs() — the
    // named pairs must replay to exactly the reported lhs/rhs values when
    // each netlist is driven through its OWN input order, which is the
    // property that makes the counterexample unambiguous.
    Netlist lhs;
    {
        const auto p = lhs.add_input("p");
        const auto q = lhs.add_input("q");
        const auto r = lhs.add_input("r");
        lhs.add_output("y", lhs.make_xor(lhs.make_and(p, q), r));
    }
    Netlist rhs;
    {
        const auto r = rhs.add_input("r");  // reversed declaration order
        const auto q = rhs.add_input("q");
        const auto p = rhs.add_input("p");
        rhs.add_output("y", rhs.make_xor(rhs.make_and(p, r), q));  // different fn
    }
    const auto mm = check_equivalence(lhs, rhs);
    ASSERT_TRUE(mm.has_value());
    ASSERT_EQ(mm->input_bits.size(), 3U);
    ASSERT_EQ(mm->input_names.size(), 3U);
    EXPECT_EQ(mm->input_names, (std::vector<std::string>{"p", "q", "r"}));

    // Replay the named assignment through each netlist's own port order.
    const auto replay = [&](const Netlist& nl) {
        std::vector<std::uint64_t> in(nl.inputs().size(), 0);
        for (std::size_t i = 0; i < mm->input_names.size(); ++i) {
            const int idx = nl.input_index(mm->input_names[i]);
            EXPECT_GE(idx, 0);
            in[static_cast<std::size_t>(idx)] =
                mm->input_bits[i] ? ~std::uint64_t{0} : 0;
        }
        return (simulate(nl, in)[0] & 1U) != 0;
    };
    EXPECT_EQ(replay(lhs), mm->lhs_value);
    EXPECT_EQ(replay(rhs), mm->rhs_value);
    EXPECT_NE(mm->lhs_value, mm->rhs_value);

    // And the rendering names every input, so a human cannot misread the
    // assignment against either port order.
    const auto text = mm->to_string();
    EXPECT_NE(text.find("p="), std::string::npos);
    EXPECT_NE(text.find("q="), std::string::npos);
    EXPECT_NE(text.find("r="), std::string::npos);
}

TEST(Equivalence, MultiOutputMismatchNamesRightOutput) {
    Netlist lhs;
    Netlist rhs;
    const auto la = lhs.add_input("a");
    const auto lb = lhs.add_input("b");
    lhs.add_output("ok", lhs.make_xor(la, lb));
    lhs.add_output("bad", lhs.make_and(la, lb));
    const auto ra = rhs.add_input("a");
    const auto rb = rhs.add_input("b");
    rhs.add_output("ok", rhs.make_xor(ra, rb));
    rhs.add_output("bad", rhs.make_xor(ra, rb));
    const auto mm = check_equivalence(lhs, rhs);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->output_name, "bad");
}

}  // namespace
}  // namespace gfr::netlist
