// Slice packer and timing model.

#include "fpga/priority_cuts.h"
#include "fpga/slice_pack.h"
#include "fpga/timing_model.h"
#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "netlist/passes.h"

#include <gtest/gtest.h>

namespace gfr::fpga {
namespace {

LutNetwork mapped_gf28() {
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    return map_to_luts(nl);
}

TEST(SlicePack, EveryLutAssignedExactlyOnce) {
    const auto net = mapped_gf28();
    const auto result = pack_slices(net);
    ASSERT_EQ(result.slice_of.size(), net.luts.size());
    std::vector<int> occupancy(static_cast<std::size_t>(result.n_slices), 0);
    for (const int s : result.slice_of) {
        ASSERT_GE(s, 0);
        ASSERT_LT(s, result.n_slices);
        ++occupancy[static_cast<std::size_t>(s)];
    }
    for (const int occ : occupancy) {
        EXPECT_GE(occ, 1);
        EXPECT_LE(occ, 4);
    }
}

TEST(SlicePack, RatioInPlausibleArtix7Range) {
    // Table V shows ~2.3-3.2 LUTs per slice across designs; our packer
    // should land in a similar partially-filled regime, never at the
    // theoretical 4.0 and never fully scattered at 1.0 for real designs.
    const auto net = mapped_gf28();
    const auto result = pack_slices(net);
    EXPECT_GT(result.avg_fill, 1.2);
    EXPECT_LE(result.avg_fill, 4.0);
}

TEST(SlicePack, CapacityRespected) {
    const auto net = mapped_gf28();
    SliceOptions opts;
    opts.luts_per_slice = 1;
    const auto result = pack_slices(net, opts);
    EXPECT_EQ(result.n_slices, net.lut_count());
    EXPECT_THROW(static_cast<void>(pack_slices(net, SliceOptions{0})),
                 std::invalid_argument);
}

TEST(SlicePack, MoreCapacityNeverMoreSlices) {
    const auto net = mapped_gf28();
    int prev = std::numeric_limits<int>::max();
    for (const int cap : {1, 2, 4, 8}) {
        SliceOptions opts;
        opts.luts_per_slice = cap;
        const int slices = pack_slices(net, opts).n_slices;
        EXPECT_LE(slices, prev) << "cap=" << cap;
        prev = slices;
    }
}

TEST(Timing, CongestionGrowsWithSize) {
    const TimingModel model;
    EXPECT_DOUBLE_EQ(model.congestion(1), 1.0);
    EXPECT_DOUBLE_EQ(model.congestion(33), 1.0);
    EXPECT_GT(model.congestion(330), model.congestion(33));
    EXPECT_GT(model.congestion(11000), model.congestion(330));
}

TEST(Timing, NetDelayGrowsWithFanout) {
    const TimingModel model;
    EXPECT_GT(model.net_delay(16, 1.0), model.net_delay(2, 1.0));
    EXPECT_GT(model.net_delay(2, 2.0), model.net_delay(2, 1.0));
}

TEST(Timing, CriticalPathDominatedByIoForTinyDesigns) {
    // A single LUT: path = t_io_in + net + t_lut + net + t_io_out ~ 7-8 ns.
    LutNetwork net;
    net.input_names = {"a", "b"};
    LutNetwork::Lut l;
    l.fanins = {0, 1};
    l.truth = 0x8;
    net.luts.push_back(l);
    net.outputs = {{"y", 2}};
    const double ns = critical_path_ns(net);
    EXPECT_GT(ns, 6.0);
    EXPECT_LT(ns, 9.0);
}

TEST(Timing, DeeperNetworksAreSlower) {
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::SchoolReduce, fld);
    const auto nl_fast = mult::build_multiplier(mult::Method::Imana2016Paren, fld);
    const auto slow = map_to_luts(netlist::dce(nl));
    const auto fast = map_to_luts(netlist::dce(nl_fast));
    if (slow.depth() > fast.depth()) {
        EXPECT_GT(critical_path_ns(slow), critical_path_ns(fast));
    }
}

TEST(Timing, Gf28LandsNearPaperWindow) {
    // Calibration sanity: all paper (8,2) rows sit in 9.6-10.1 ns; our model
    // must land in a comparable window for the mapped proposed multiplier.
    const auto net = mapped_gf28();
    const double ns = critical_path_ns(net);
    EXPECT_GT(ns, 8.0);
    EXPECT_LT(ns, 12.0);
}

TEST(Timing, ConstOutputsCostOnlyIo) {
    LutNetwork net;
    net.input_names = {"a"};
    net.outputs = {{"y", LutNetwork::kConst0Ref}};
    const double ns = critical_path_ns(net);
    EXPECT_LT(ns, 5.0);
}

}  // namespace
}  // namespace gfr::fpga
