// Type I pentanomials, trinomials and the preferred-modulus selector.

#include "gf2/irreducibility.h"
#include "gf2/pentanomial.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"

#include <gtest/gtest.h>

namespace gfr::gf2 {
namespace {

TEST(TypeIPentanomial, ParameterValidity) {
    EXPECT_TRUE(TypeIPentanomial::valid_parameters(8, 2));
    EXPECT_TRUE(TypeIPentanomial::valid_parameters(8, 5));
    EXPECT_FALSE(TypeIPentanomial::valid_parameters(8, 6));  // y^7 collides... n+1 = 7 < 8 but n <= m-3
    EXPECT_FALSE(TypeIPentanomial::valid_parameters(8, 1));  // y^n = y collides
    EXPECT_THROW((TypeIPentanomial{8, 6}.poly()), std::invalid_argument);
}

TEST(TypeIPentanomial, PolyShape) {
    const Poly f = TypeIPentanomial{8, 3}.poly();
    EXPECT_EQ(f, Poly::from_exponents({8, 4, 3, 1, 0}));  // the AES polynomial!
    EXPECT_EQ(f.weight(), 5);
}

TEST(TypeIPentanomial, AesModulusIsTypeI) {
    // The AES field modulus y^8+y^4+y^3+y+1 is the type I pentanomial (8,3).
    EXPECT_TRUE(is_type1_irreducible(8, 3));
}

TEST(TypeIPentanomial, SearchFindsKnownFamilies) {
    const auto ns = type1_irreducible_ns(8);
    EXPECT_NE(std::find(ns.begin(), ns.end(), 3), ns.end());
    for (const int n : ns) {
        EXPECT_TRUE(is_irreducible(TypeIPentanomial{8, n}.poly()));
    }
}

TEST(Trinomial, KnownIrreducibleTrinomials) {
    // Classic table entries.
    const auto k7 = irreducible_trinomial_ks(7);
    EXPECT_NE(std::find(k7.begin(), k7.end(), 1), k7.end());  // y^7+y+1
    const auto k233 = irreducible_trinomial_ks(233);
    EXPECT_NE(std::find(k233.begin(), k233.end(), 74), k233.end());  // NIST K/B-233
}

TEST(Trinomial, MultiplesOfEightHaveNone) {
    // Swan's theorem: no irreducible trinomial exists for degree = 0 mod 8.
    for (const int m : {8, 16, 24, 32, 64}) {
        EXPECT_TRUE(irreducible_trinomial_ks(m).empty()) << "m=" << m;
    }
}

TEST(Trinomial, SymmetryOfReciprocals) {
    // y^m + y^k + 1 irreducible iff y^m + y^(m-k) + 1 irreducible.
    for (const int m : {7, 9, 15, 23}) {
        const auto ks = irreducible_trinomial_ks(m);
        for (const int k : ks) {
            EXPECT_NE(std::find(ks.begin(), ks.end(), m - k), ks.end())
                << "m=" << m << " k=" << k;
        }
    }
}

TEST(PreferredModulus, FollowsSelectionOrder) {
    // m = 233: trinomial exists -> picks weight 3.
    const auto f233 = preferred_low_weight_modulus(233);
    ASSERT_TRUE(f233.has_value());
    EXPECT_EQ(f233->weight(), 3);
    // m = 8: no trinomial -> type II pentanomial (8,2).
    const auto f8 = preferred_low_weight_modulus(8);
    ASSERT_TRUE(f8.has_value());
    EXPECT_EQ(*f8, Poly::from_exponents({8, 4, 3, 2, 0}));
    // Degenerate degrees.
    EXPECT_FALSE(preferred_low_weight_modulus(1).has_value());
}

TEST(PreferredModulus, AlwaysIrreducibleUpTo64) {
    for (int m = 2; m <= 64; ++m) {
        const auto f = preferred_low_weight_modulus(m);
        ASSERT_TRUE(f.has_value()) << "m=" << m;
        EXPECT_TRUE(is_irreducible(*f)) << "m=" << m;
        EXPECT_EQ(f->degree(), m);
        EXPECT_LE(f->weight(), 5);
    }
}

TEST(PreferredModulus, MultipliersWorkOnPreferredModuli) {
    // The generators are polynomial-agnostic: exhaustively verify the
    // proposed method over the preferred modulus for several degrees.
    for (const int m : {4, 6, 8}) {
        const auto f = preferred_low_weight_modulus(m);
        ASSERT_TRUE(f.has_value());
        const field::Field fld{*f};
        const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
        const auto failure = mult::verify_multiplier(nl, fld);
        EXPECT_FALSE(failure.has_value()) << "m=" << m << ": " << failure->to_string();
    }
}

}  // namespace
}  // namespace gfr::gf2
