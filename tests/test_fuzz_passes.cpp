// Fuzz-style property tests: every synthesis pass must preserve the function
// of randomly generated AND/XOR DAGs, across many seeds and all option
// combinations.  This is the guard rail that lets the FPGA flow restructure
// aggressively.

#include "netlist/equivalence.h"
#include "netlist/passes.h"
#include "netlist/simulate.h"
#include "opt/opt.h"
#include "testutil.h"

#include <gtest/gtest.h>


namespace gfr::netlist {
namespace {

/// Random multi-output AND/XOR DAG: XOR-heavy (matching the domain), with
/// shared fanout and occasional constants.
Netlist random_netlist(std::uint64_t seed) {
    testutil::Xorshift64Star rng{seed};
    Netlist nl;
    const int n_inputs = 4 + static_cast<int>(rng() % 10);
    std::vector<NodeId> pool;
    for (int i = 0; i < n_inputs; ++i) {
        pool.push_back(nl.add_input("i" + std::to_string(i)));
    }
    const int n_gates = 10 + static_cast<int>(rng() % 60);
    for (int g = 0; g < n_gates; ++g) {
        const NodeId a = pool[rng() % pool.size()];
        const NodeId b = pool[rng() % pool.size()];
        // 3:1 XOR-to-AND mix.
        const NodeId node = (rng() % 4 == 0) ? nl.make_and(a, b) : nl.make_xor(a, b);
        pool.push_back(node);
    }
    const int n_outputs = 1 + static_cast<int>(rng() % 5);
    for (int o = 0; o < n_outputs; ++o) {
        nl.add_output("o" + std::to_string(o), pool[pool.size() - 1 - rng() % 8]);
    }
    return nl;
}

class PassFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PassFuzz, DcePreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    EXPECT_FALSE(check_equivalence(nl, dce(nl)).has_value());
}

TEST_P(PassFuzz, BalancePreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    const Netlist out = balance_xor_trees(nl);
    EXPECT_FALSE(check_equivalence(nl, out).has_value());
    // Balancing never increases the XOR depth.
    EXPECT_LE(out.stats().xor_depth, nl.stats().xor_depth);
}

TEST_P(PassFuzz, FlattenPreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    EXPECT_FALSE(check_equivalence(nl, flatten_to_anf(nl)).has_value());
}

TEST_P(PassFuzz, GroupConesPreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    EXPECT_FALSE(check_equivalence(nl, group_common_cones(nl)).has_value());
}

TEST_P(PassFuzz, ExtractPairsPreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    EXPECT_FALSE(check_equivalence(nl, extract_common_xor_pairs(nl)).has_value());
}

TEST_P(PassFuzz, FullPipelinesPreserveFunction) {
    const Netlist nl = random_netlist(GetParam());
    for (const bool flatten : {false, true}) {
        for (const bool group : {false, true}) {
            for (const bool extract : {false, true}) {
                const SynthOptions opts{.flatten_anf = flatten,
                                        .group_cones = group,
                                        .extract_pairs = extract,
                                        .balance = true};
                EXPECT_FALSE(check_equivalence(nl, synthesize(nl, opts)).has_value())
                    << "flatten=" << flatten << " group=" << group
                    << " extract=" << extract;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233,
                                           377, 610, 987, 1597),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param);
                         });

// --- Optimization passes (src/opt) ------------------------------------------
//
// Each opt pass is fuzzed the same way as the synthesis passes, but checked
// against the FROZEN gate-by-gate interpreter (simulate_interpreted) rather
// than check_equivalence alone: the interpreter shares no code with the
// compiled tapes the equivalence campaign executes, so a pass bug and a
// compiler bug cannot mask each other.

/// Interpreted differential: both netlists, 8 random 64-lane sweeps.
void expect_same_interpreted(const Netlist& a, const Netlist& b,
                             std::uint64_t seed) {
    ASSERT_EQ(a.inputs().size(), b.inputs().size());
    ASSERT_EQ(a.outputs().size(), b.outputs().size());
    testutil::Xorshift64Star rng{seed ^ 0xF00DULL};
    std::vector<std::uint64_t> in(a.inputs().size());
    for (int sweep = 0; sweep < 8; ++sweep) {
        for (auto& w : in) {
            w = rng.next();
        }
        const auto lhs = simulate_interpreted(a, in);
        const auto rhs = simulate_interpreted(b, in);
        ASSERT_EQ(lhs, rhs) << "sweep " << sweep;
    }
}

/// Random netlist with a few protected ("checker") gates: marks must
/// survive every opt pass and the marked logic must never be re-interned.
Netlist random_protected_netlist(std::uint64_t seed) {
    Netlist nl = random_netlist(seed);
    testutil::Xorshift64Star rng{seed ^ 0xCEDULL};
    std::vector<NodeId> gates;
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        const auto kind = nl.node(id).kind;
        if (kind == GateKind::And2 || kind == GateKind::Xor2) {
            gates.push_back(id);
        }
    }
    if (!gates.empty()) {
        for (int k = 0; k < 3; ++k) {
            nl.set_protected(gates[rng() % gates.size()]);
        }
    }
    return nl;
}

TEST_P(PassFuzz, OptStrashPreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    const opt::PassResult r = opt::strash(nl);
    EXPECT_FALSE(check_equivalence(nl, r.netlist).has_value());
    expect_same_interpreted(nl, r.netlist, GetParam());
    EXPECT_LE(r.netlist.stats().gates(), nl.stats().gates());
}

TEST_P(PassFuzz, OptRewriteCutsPreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    const opt::PassResult r = opt::rewrite_cuts(nl);
    EXPECT_FALSE(check_equivalence(nl, r.netlist).has_value());
    expect_same_interpreted(nl, r.netlist, GetParam());
    EXPECT_LE(r.netlist.stats().gates(), nl.stats().gates());
}

TEST_P(PassFuzz, OptReduceFunctionalPreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    const opt::PassResult r = opt::reduce_functional(nl);
    EXPECT_FALSE(check_equivalence(nl, r.netlist).has_value());
    expect_same_interpreted(nl, r.netlist, GetParam());
    EXPECT_LE(r.netlist.stats().gates(), nl.stats().gates());
}

TEST_P(PassFuzz, OptPipelinePreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    const opt::OptResult r = opt::optimize(nl);
    EXPECT_FALSE(check_equivalence(nl, r.netlist).has_value());
    expect_same_interpreted(nl, r.netlist, GetParam());
    for (const auto& pass : r.passes) {
        EXPECT_TRUE(pass.verified) << pass.pass;
    }
}

TEST_P(PassFuzz, OptPassesPreserveProtectedMarks) {
    const Netlist nl = random_protected_netlist(GetParam());
    const std::size_t marks = nl.protected_count();
    for (int which = 0; which < 3; ++which) {
        const opt::PassResult r = which == 0   ? opt::strash(nl)
                                  : which == 1 ? opt::rewrite_cuts(nl)
                                               : opt::reduce_functional(nl);
        EXPECT_FALSE(check_equivalence(nl, r.netlist).has_value()) << which;
        EXPECT_EQ(r.netlist.protected_count(), marks) << which;
        for (NodeId id = 0; id < nl.node_count(); ++id) {
            if (!nl.is_protected(id)) {
                continue;
            }
            ASSERT_NE(r.node_map[id], kInvalidNode) << which;
            EXPECT_TRUE(r.netlist.is_protected(r.node_map[id])) << which;
        }
    }
}

}  // namespace
}  // namespace gfr::netlist
