// Fuzz-style property tests: every synthesis pass must preserve the function
// of randomly generated AND/XOR DAGs, across many seeds and all option
// combinations.  This is the guard rail that lets the FPGA flow restructure
// aggressively.

#include "netlist/equivalence.h"
#include "netlist/passes.h"
#include "testutil.h"

#include <gtest/gtest.h>


namespace gfr::netlist {
namespace {

/// Random multi-output AND/XOR DAG: XOR-heavy (matching the domain), with
/// shared fanout and occasional constants.
Netlist random_netlist(std::uint64_t seed) {
    testutil::Xorshift64Star rng{seed};
    Netlist nl;
    const int n_inputs = 4 + static_cast<int>(rng() % 10);
    std::vector<NodeId> pool;
    for (int i = 0; i < n_inputs; ++i) {
        pool.push_back(nl.add_input("i" + std::to_string(i)));
    }
    const int n_gates = 10 + static_cast<int>(rng() % 60);
    for (int g = 0; g < n_gates; ++g) {
        const NodeId a = pool[rng() % pool.size()];
        const NodeId b = pool[rng() % pool.size()];
        // 3:1 XOR-to-AND mix.
        const NodeId node = (rng() % 4 == 0) ? nl.make_and(a, b) : nl.make_xor(a, b);
        pool.push_back(node);
    }
    const int n_outputs = 1 + static_cast<int>(rng() % 5);
    for (int o = 0; o < n_outputs; ++o) {
        nl.add_output("o" + std::to_string(o), pool[pool.size() - 1 - rng() % 8]);
    }
    return nl;
}

class PassFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PassFuzz, DcePreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    EXPECT_FALSE(check_equivalence(nl, dce(nl)).has_value());
}

TEST_P(PassFuzz, BalancePreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    const Netlist out = balance_xor_trees(nl);
    EXPECT_FALSE(check_equivalence(nl, out).has_value());
    // Balancing never increases the XOR depth.
    EXPECT_LE(out.stats().xor_depth, nl.stats().xor_depth);
}

TEST_P(PassFuzz, FlattenPreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    EXPECT_FALSE(check_equivalence(nl, flatten_to_anf(nl)).has_value());
}

TEST_P(PassFuzz, GroupConesPreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    EXPECT_FALSE(check_equivalence(nl, group_common_cones(nl)).has_value());
}

TEST_P(PassFuzz, ExtractPairsPreservesFunction) {
    const Netlist nl = random_netlist(GetParam());
    EXPECT_FALSE(check_equivalence(nl, extract_common_xor_pairs(nl)).has_value());
}

TEST_P(PassFuzz, FullPipelinesPreserveFunction) {
    const Netlist nl = random_netlist(GetParam());
    for (const bool flatten : {false, true}) {
        for (const bool group : {false, true}) {
            for (const bool extract : {false, true}) {
                const SynthOptions opts{.flatten_anf = flatten,
                                        .group_cones = group,
                                        .extract_pairs = extract,
                                        .balance = true};
                EXPECT_FALSE(check_equivalence(nl, synthesize(nl, opts)).has_value())
                    << "flatten=" << flatten << " group=" << group
                    << " extract=" << extract;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233,
                                           377, 610, 987, 1597),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gfr::netlist
