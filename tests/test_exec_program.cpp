// Differential tier for the compiled execution layer (exec::Program).
//
// The compiled tape replaced the node-by-node interpreter under every
// evaluation path in the repo, so its correctness claim is load-bearing:
// here it is checked against two structurally independent references —
//
//   - simulate_interpreted(): the original gate-by-gate interpreter, which
//     shares no code with the compiler (no DCE, no fusion, no slots);
//   - verify::LaneReference: the bitsliced lane-major reference multiplier,
//     derived only from the reduction matrix;
//
// across every generator family x every Table V field (random sweeps), the
// exhaustive GF(2^8) space, all block widths 1..kMaxBlocks, LUT-network
// compilation, and the compiler's structural guarantees (DCE, fusion,
// liveness width, allocation-free steady state).  Backend-vs-backend
// differentials (scalar vs AVX2/AVX-512) live in test_exec_backends.cpp.

#include "exec/program.h"
#include "field/field_catalog.h"
#include "fpga/flow.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "netlist/simulate.h"
#include "verify/lane_reference.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gfr::exec {
namespace {

using netlist::Netlist;
using testutil::Xorshift64Star;

/// Fills `in` (block-major, `blocks` x n words) from the shared PRNG.
void fill_random(std::vector<std::uint64_t>& in, Xorshift64Star& rng) {
    for (auto& w : in) {
        w = rng.next();
    }
}

/// Runs `prog` over `blocks` and checks each block against the interpreter.
void expect_matches_interpreter(const Program& prog, const Netlist& nl,
                                std::span<const std::uint64_t> in, int blocks,
                                Program::Scratch& scratch, const std::string& what) {
    const std::size_t n_in = nl.inputs().size();
    const std::size_t n_out = nl.outputs().size();
    std::vector<std::uint64_t> out(n_out * static_cast<std::size_t>(blocks), 0);
    prog.run(in, out, scratch, blocks);
    for (int b = 0; b < blocks; ++b) {
        const auto ref = netlist::simulate_interpreted(
            nl, in.subspan(static_cast<std::size_t>(b) * n_in, n_in));
        for (std::size_t o = 0; o < n_out; ++o) {
            ASSERT_EQ(out[static_cast<std::size_t>(b) * n_out + o], ref[o])
                << what << ": block " << b << " output " << o;
        }
    }
}

TEST(ExecProgram, AllFamiliesAllTable5FieldsMatchInterpreterAndLaneReference) {
    // Every generator family x every Table V field: compiled tape vs the
    // gate-by-gate interpreter (word-exact over 64 lanes) and, for the
    // multiplier interface, vs the lane-major reference oracle.
    Xorshift64Star rng{0xE8EC5EEDULL};
    testutil::for_each_table5_field([&](const auto& spec, const field::Field& f) {
        const int m = f.degree();
        const verify::LaneReference laneref{f};
        verify::LaneReference::Scratch lane_scratch;
        std::vector<std::uint64_t> want;
        for (const auto& info : mult::all_methods()) {
            const auto nl = mult::build_multiplier(info.method, f);
            const Program prog = Program::compile(nl);
            Program::Scratch scratch;
            std::vector<std::uint64_t> in(2 * static_cast<std::size_t>(m), 0);
            std::vector<std::uint64_t> out(static_cast<std::size_t>(m), 0);
            const std::string what =
                std::string{info.key} + " / " + spec.label();
            for (int sweep = 0; sweep < 3; ++sweep) {
                fill_random(in, rng);
                expect_matches_interpreter(prog, nl, in, 1, scratch, what);
                // Lane-major oracle agrees with the netlist on every word.
                prog.run(in, out, scratch, 1);
                laneref.products(in, want, lane_scratch);
                for (int k = 0; k < m; ++k) {
                    ASSERT_EQ(out[static_cast<std::size_t>(k)],
                              want[static_cast<std::size_t>(k)])
                        << what << ": coefficient " << k;
                }
            }
        }
    });
}

TEST(ExecProgram, ExhaustiveGf256EveryFamilyEveryBlockWidth) {
    // The full 2^16 operand space of the paper's worked field, swept with
    // full-width passes (1024 lanes each): compiled tape vs interpreter vs
    // lane reference on all 65536 products, for every generator family.
    const field::Field f = field::gf256_paper_field();
    const verify::LaneReference laneref{f};
    verify::LaneReference::Scratch lane_scratch;
    std::vector<std::uint64_t> want;
    for (const auto& info : mult::all_methods()) {
        const auto nl = mult::build_multiplier(info.method, f);
        const Program prog = Program::compile(nl);
        Program::Scratch scratch;
        constexpr int kBlocks = Program::kMaxBlocks;
        static_assert(1024 % kBlocks == 0);
        const std::size_t n_in = 16;
        const std::size_t n_out = 8;
        std::vector<std::uint64_t> in(n_in * kBlocks, 0);
        std::vector<std::uint64_t> out(n_out * kBlocks, 0);
        for (std::uint64_t base = 0; base < 1024; base += kBlocks) {
            for (int b = 0; b < kBlocks; ++b) {
                for (std::size_t i = 0; i < n_in; ++i) {
                    in[static_cast<std::size_t>(b) * n_in + i] =
                        netlist::exhaustive_pattern(static_cast<int>(i),
                                                    base + static_cast<std::uint64_t>(b));
                }
            }
            prog.run(in, out, scratch, kBlocks);
            for (int b = 0; b < kBlocks; ++b) {
                const auto in_b =
                    std::span{in}.subspan(static_cast<std::size_t>(b) * n_in, n_in);
                const auto ref = netlist::simulate_interpreted(nl, in_b);
                laneref.products(in_b, want, lane_scratch);
                for (std::size_t o = 0; o < n_out; ++o) {
                    const std::uint64_t got =
                        out[static_cast<std::size_t>(b) * n_out + o];
                    ASSERT_EQ(got, ref[o]) << info.key << " block " << base + b;
                    ASSERT_EQ(got, want[o]) << info.key << " block " << base + b;
                }
            }
        }
    }
}

TEST(ExecProgram, BlockWidthsAgreeWithSingleBlockRuns) {
    // One 4-block pass must equal four 1-block runs on the same vectors —
    // the property the exhaustive campaign regimes lean on.
    Xorshift64Star rng{0xB10C5ULL};
    const field::Field f = field::Field::type2(64, 23);
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, f);
    const Program prog = Program::compile(nl);
    Program::Scratch scratch;
    const std::size_t n_in = nl.inputs().size();
    const std::size_t n_out = nl.outputs().size();
    for (int blocks = 2; blocks <= Program::kMaxBlocks; ++blocks) {
        std::vector<std::uint64_t> in(n_in * static_cast<std::size_t>(blocks));
        fill_random(in, rng);
        std::vector<std::uint64_t> grouped(n_out * static_cast<std::size_t>(blocks));
        prog.run(in, grouped, scratch, blocks);
        for (int b = 0; b < blocks; ++b) {
            std::vector<std::uint64_t> single(n_out);
            prog.run(std::span{in}.subspan(static_cast<std::size_t>(b) * n_in, n_in),
                     single, scratch, 1);
            for (std::size_t o = 0; o < n_out; ++o) {
                EXPECT_EQ(grouped[static_cast<std::size_t>(b) * n_out + o], single[o])
                    << "blocks=" << blocks << " b=" << b << " o=" << o;
            }
        }
    }
}

TEST(ExecProgram, LutNetworkTapeMatchesNetlistFunction) {
    // Compile the mapped LUT network of a full flow and check the LUT tape
    // against the gate-level interpreter of the source netlist.
    Xorshift64Star rng{0x1A7E57ULL};
    for (const auto spec : {field::FieldSpec{8, 2, ""}, field::FieldSpec{64, 23, ""}}) {
        const field::Field f = spec.make();
        const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, f);
        fpga::FlowOptions opts;
        opts.synthesis_freedom = true;
        const auto flow = fpga::run_flow(nl, opts);
        const Program prog = Program::compile(flow.network);
        EXPECT_EQ(prog.input_count(), flow.network.input_count());
        EXPECT_EQ(prog.output_count(), static_cast<int>(flow.network.outputs.size()));
        // Parity cones lower to fused XORs, not per-minterm LUT folds.
        const auto stats = prog.stats();
        EXPECT_GT(stats.n_xor2 + stats.n_xorn + stats.n_andxor, 0U);
        Program::Scratch scratch;
        const std::size_t n_in = nl.inputs().size();
        const std::size_t n_out = nl.outputs().size();
        // Every block width: LUT opcodes (Shannon folds included) must hold
        // their block-indexed buffer arithmetic at B > 1 too.
        for (int blocks = 1; blocks <= Program::kMaxBlocks; ++blocks) {
            std::vector<std::uint64_t> in(n_in * static_cast<std::size_t>(blocks));
            std::vector<std::uint64_t> out(n_out * static_cast<std::size_t>(blocks));
            fill_random(in, rng);
            prog.run(in, out, scratch, blocks);
            for (int b = 0; b < blocks; ++b) {
                const auto ref = netlist::simulate_interpreted(
                    nl, std::span{in}.subspan(static_cast<std::size_t>(b) * n_in, n_in));
                for (std::size_t o = 0; o < n_out; ++o) {
                    ASSERT_EQ(out[static_cast<std::size_t>(b) * n_out + o], ref[o])
                        << spec.label() << " blocks=" << blocks << " output " << o;
                }
            }
        }
    }
}

TEST(ExecProgram, GeneralLutConesEvaluateBitsliced) {
    // A hand-built network whose truth tables are neither parity nor AND
    // (majority, an inverted cone, a constant-1 LUT, a const-0 fanin)
    // exercises the Shannon mux fold paths.
    fpga::LutNetwork net;
    net.input_names = {"a", "b", "c"};
    fpga::LutNetwork::Lut maj;
    maj.fanins = {0, 1, 2};
    maj.truth = 0xE8;  // majority(a, b, c)
    net.luts.push_back(maj);
    fpga::LutNetwork::Lut inv;
    inv.fanins = {3};
    inv.truth = 0x1;  // NOT lut0
    net.luts.push_back(inv);
    fpga::LutNetwork::Lut one;
    one.truth = 0x1;  // constant 1, no fanins
    net.luts.push_back(one);
    fpga::LutNetwork::Lut zero_mix;
    zero_mix.fanins = {fpga::LutNetwork::kConst0Ref, 0};
    zero_mix.truth = 0x6;  // XOR(const0, a) == a
    net.luts.push_back(zero_mix);
    net.outputs = {{"m", 3}, {"nm", 4}, {"one", 5}, {"za", 6}};

    const Program prog = Program::compile(net);
    Program::Scratch scratch;
    std::vector<std::uint64_t> in = {0xF0F0F0F0F0F0F0F0ULL, 0xCCCCCCCCCCCCCCCCULL,
                                     0xAAAAAAAAAAAAAAAAULL};
    std::vector<std::uint64_t> out(4, 0);
    prog.run(in, out, scratch, 1);
    // The same general cones at every block width: block b of a grouped
    // pass must equal a fresh single-block run on block b's inputs.
    for (int blocks = 2; blocks <= Program::kMaxBlocks; ++blocks) {
        std::vector<std::uint64_t> in_blocks;
        for (int b = 0; b < blocks; ++b) {
            for (const std::uint64_t w : in) {
                in_blocks.push_back(w + 0x9E3779B97F4A7C15ULL * static_cast<unsigned>(b));
            }
        }
        std::vector<std::uint64_t> out_blocks(4U * static_cast<std::size_t>(blocks));
        prog.run(in_blocks, out_blocks, scratch, blocks);
        for (int b = 0; b < blocks; ++b) {
            std::vector<std::uint64_t> single(4, 0);
            prog.run(std::span{in_blocks}.subspan(static_cast<std::size_t>(b) * 3, 3),
                     single, scratch, 1);
            for (std::size_t o = 0; o < 4; ++o) {
                ASSERT_EQ(out_blocks[static_cast<std::size_t>(b) * 4 + o], single[o])
                    << "blocks=" << blocks << " b=" << b << " o=" << o;
            }
        }
    }

    const auto ref = net.simulate(in);  // itself compiled, but independently
    for (int lane = 0; lane < 64; ++lane) {
        const int a = (in[0] >> lane) & 1;
        const int b = (in[1] >> lane) & 1;
        const int c = (in[2] >> lane) & 1;
        const int m = (a + b + c >= 2) ? 1 : 0;
        ASSERT_EQ(static_cast<int>((out[0] >> lane) & 1), m) << "lane " << lane;
        ASSERT_EQ(static_cast<int>((out[1] >> lane) & 1), 1 - m) << "lane " << lane;
        ASSERT_EQ(static_cast<int>((out[2] >> lane) & 1), 1) << "lane " << lane;
        ASSERT_EQ(static_cast<int>((out[3] >> lane) & 1), a) << "lane " << lane;
    }
    EXPECT_EQ(out, ref);
}

TEST(ExecProgram, DeadLogicNeverReachesTheTape) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");  // dead input
    const auto live = nl.make_and(a, b);
    nl.make_xor(nl.make_and(a, c), b);  // dead cone
    nl.add_output("y", live);
    const Program prog = Program::compile(nl);
    const auto stats = prog.stats();
    EXPECT_EQ(stats.instructions, 1U);
    EXPECT_EQ(stats.n_and2, 1U);
    // The dead input is never even loaded; dead cone gates are absent.
    Program::Scratch scratch;
    std::vector<std::uint64_t> out(1);
    prog.run(std::vector<std::uint64_t>{0xFF, 0x0F, 0x123}, out, scratch, 1);
    EXPECT_EQ(out[0], 0x0FULL);
}

TEST(ExecProgram, XorChainFusesToOneInstruction) {
    // A 32-leaf XOR chain (every interior node fanout 1) must compile to a
    // single fused accumulate, not 31 dispatches; with AND leaves of fanout
    // 1 it becomes one AndXorN covering the whole product column.
    Netlist nl;
    std::vector<netlist::NodeId> leaves;
    for (int i = 0; i < 32; ++i) {
        leaves.push_back(nl.add_input("i" + std::to_string(i)));
    }
    nl.add_output("chain", nl.make_xor_tree(leaves, netlist::TreeShape::Chain));
    const Program prog = Program::compile(nl);
    const auto stats = prog.stats();
    EXPECT_EQ(stats.instructions, 1U);
    EXPECT_EQ(stats.n_xorn, 1U);
    EXPECT_EQ(stats.total_args, 32U);

    Netlist nl2;
    std::vector<netlist::NodeId> products;
    for (int i = 0; i < 8; ++i) {
        const auto x = nl2.add_input("x" + std::to_string(i));
        const auto y = nl2.add_input("y" + std::to_string(i));
        products.push_back(nl2.make_and(x, y));
    }
    nl2.add_output("acc", nl2.make_xor_tree(products, netlist::TreeShape::Balanced));
    const Program prog2 = Program::compile(nl2);
    const auto stats2 = prog2.stats();
    EXPECT_EQ(stats2.instructions, 1U);
    EXPECT_EQ(stats2.n_andxor, 1U);
    EXPECT_EQ(stats2.fused_ands, 8U);
}

TEST(ExecProgram, OperandListsSortedBySlotIndex) {
    // Compile-time operand scheduling: commutative instructions list their
    // operand slots in ascending order (AndXorN: each pair low-high, pairs
    // ordered by key, singles sorted after the pairs), so tape execution
    // scans the slot file mostly forward.  Checked on a real Mastrovito
    // tape, whose fused columns carry the long operand lists.
    const field::Field f = field::Field::type2(64, 23);
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, f);
    const Program prog = Program::compile(nl);
    const auto args = prog.args();
    std::size_t checked_xorn = 0;
    std::size_t checked_pairs = 0;
    for (const auto& insn : prog.instructions()) {
        const auto* a = args.data() + insn.arg_begin;
        switch (insn.op) {
            case Op::And2:
            case Op::Xor2:
                ASSERT_LE(a[0], a[1]);
                break;
            case Op::XorN:
                for (std::uint32_t i = 1; i < insn.arg_count; ++i) {
                    ASSERT_LE(a[i - 1], a[i]) << "XorN operand order";
                }
                ++checked_xorn;
                break;
            case Op::AndXorN: {
                const std::uint32_t np = insn.aux;
                for (std::uint32_t q = 0; q < np; ++q) {
                    ASSERT_LE(a[2 * q], a[2 * q + 1]) << "pair internal order";
                    if (q > 0) {
                        const auto prev = std::make_pair(a[2 * q - 2], a[2 * q - 1]);
                        const auto cur = std::make_pair(a[2 * q], a[2 * q + 1]);
                        ASSERT_LE(prev, cur) << "pair key order";
                    }
                    ++checked_pairs;
                }
                for (std::uint32_t i = 2 * np + 1; i < insn.arg_count; ++i) {
                    ASSERT_LE(a[i - 1], a[i]) << "single operand order";
                }
                break;
            }
            case Op::Lut:
                break;  // operand order indexes the truth table — never sorted
        }
    }
    // The m=64 flat multiplier must actually exercise the sorted shapes.
    EXPECT_GT(checked_xorn, 0U);
    EXPECT_GT(checked_pairs, 1000U);
}

TEST(ExecProgram, CompileIsDeterministic) {
    // Two compiles of the same netlist produce bit-identical tapes (insn
    // stream and operand pool) — the determinism the verification campaign
    // relies on when workers share one Program, pinned here so operand
    // sorting (or any future scheduling change) can never introduce
    // run-to-run variation.
    const field::Field f = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, f);
    const Program p1 = Program::compile(nl);
    const Program p2 = Program::compile(nl);
    ASSERT_EQ(p1.instruction_count(), p2.instruction_count());
    const auto i1 = p1.instructions();
    const auto i2 = p2.instructions();
    for (std::size_t k = 0; k < i1.size(); ++k) {
        ASSERT_EQ(i1[k].op, i2[k].op);
        ASSERT_EQ(i1[k].dst, i2[k].dst);
        ASSERT_EQ(i1[k].arg_begin, i2[k].arg_begin);
        ASSERT_EQ(i1[k].arg_count, i2[k].arg_count);
        ASSERT_EQ(i1[k].aux, i2[k].aux);
    }
    const auto a1 = p1.args();
    const auto a2 = p2.args();
    ASSERT_EQ(a1.size(), a2.size());
    for (std::size_t k = 0; k < a1.size(); ++k) {
        ASSERT_EQ(a1[k], a2[k]);
    }
}

TEST(ExecProgram, LivenessKeepsWorkingSetFarBelowNodeCount) {
    // The whole point of slot allocation: the m=64 flat multiplier has
    // thousands of nodes but executes in a working set orders of magnitude
    // smaller.
    const field::Field f = field::Field::type2(64, 23);
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, f);
    const Program prog = Program::compile(nl);
    const auto stats = prog.stats();
    EXPECT_GT(stats.source_nodes, 8000U);
    EXPECT_LT(stats.slots, stats.source_nodes / 10);
    EXPECT_LT(stats.instructions, stats.source_nodes / 4);  // fusion collapsed it
}

TEST(ExecProgram, SteadyStateRunsAreAllocationFree) {
    const field::Field f = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Imana2016Paren, f);
    const Program prog = Program::compile(nl);
    Program::Scratch scratch;
    std::vector<std::uint64_t> in(16, 0x5A5A5A5A5A5A5A5AULL);
    std::vector<std::uint64_t> out(8, 0);
    prog.run(in, out, scratch, 1);  // warm: scratch sized, buffers sized
    testutil::AllocationGuard guard;
    for (int sweep = 0; sweep < 64; ++sweep) {
        in[0] ^= static_cast<std::uint64_t>(sweep);
        prog.run(in, out, scratch, 1);
    }
    EXPECT_EQ(guard.delta(), 0);
}

TEST(ExecProgram, OutputAliasesAndConstants) {
    // Outputs may alias inputs or the constant; an input may drive several
    // outputs; all without emitting instructions.
    Netlist nl;
    const auto a = nl.add_input("a");
    nl.add_output("same", a);
    nl.add_output("again", a);
    nl.add_output("zero", nl.const0());
    const Program prog = Program::compile(nl);
    EXPECT_EQ(prog.instruction_count(), 0U);
    Program::Scratch scratch;
    std::vector<std::uint64_t> out(3, ~0ULL);
    prog.run(std::vector<std::uint64_t>{0xABCDULL}, out, scratch, 1);
    EXPECT_EQ(out[0], 0xABCDULL);
    EXPECT_EQ(out[1], 0xABCDULL);
    EXPECT_EQ(out[2], 0ULL);
}

/// EXPECT_THROW with the exact what() string (test_region_errors.cpp style).
template <typename Fn>
void expect_invalid(Fn&& fn, const std::string& message) {
    try {
        fn();
        ADD_FAILURE() << "expected std::invalid_argument: " << message;
    } catch (const std::invalid_argument& e) {
        EXPECT_EQ(std::string{e.what()}, message);
    }
}

TEST(ExecProgram, RunValidatesShapes) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("y", nl.make_xor(a, b));
    const Program prog = Program::compile(nl);
    Program::Scratch scratch;
    std::vector<std::uint64_t> out(1);
    EXPECT_THROW(prog.run(std::vector<std::uint64_t>{1}, out, scratch, 1),
                 std::invalid_argument);
    EXPECT_THROW(prog.run(std::vector<std::uint64_t>{1, 2}, out, scratch, 0),
                 std::invalid_argument);
    EXPECT_THROW(
        prog.run(std::vector<std::uint64_t>{1, 2}, out, scratch,
                 Program::kMaxBlocks + 1),
        std::invalid_argument);
    std::vector<std::uint64_t> out_bad(3);
    EXPECT_THROW(prog.run(std::vector<std::uint64_t>{1, 2}, out_bad, scratch, 1),
                 std::invalid_argument);
}

TEST(ExecProgram, RunPreconditionMessagesArePinned) {
    // The exact what() strings of every run() precondition: the blocks
    // range must state the widened maximum, and the shape messages must not
    // drift — campaign drivers log them verbatim.
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("y", nl.make_xor(a, b));
    const Program prog = Program::compile(nl);
    Program::Scratch scratch;
    std::vector<std::uint64_t> in(2);
    std::vector<std::uint64_t> out(1);
    expect_invalid([&] { prog.run(in, out, scratch, 0); },
                   "exec::Program::run: blocks must be in [1, 16]");
    expect_invalid([&] { prog.run(in, out, scratch, Program::kMaxBlocks + 1); },
                   "exec::Program::run: blocks must be in [1, 16]");
    std::vector<std::uint64_t> in_bad(3);
    expect_invalid([&] { prog.run(in_bad, out, scratch, 1); },
                   "exec::Program::run: wrong number of input words");
    std::vector<std::uint64_t> out_bad(3);
    expect_invalid([&] { prog.run(in, out_bad, scratch, 1); },
                   "exec::Program::run: wrong number of output words");
    // The explicit-backend overload validates availability first; blocks
    // beyond kMaxBlocks were valid on no backend, so the widened range is
    // accepted by every compiled one (run shapes checked in
    // test_exec_backends.cpp).
}

TEST(ExecProgram, CompiledCampaignMatchesAcrossThreadCountsAndOracles) {
    // The compiled verify path must report the same verdict and
    // counterexample at any thread count AND under either sweep oracle
    // (lane-major reference vs per-lane engine fallback) — the acceptance
    // guarantee of the PR-4 refactor, exercised here so the TSan job chews
    // on the threaded tape execution too.
    const field::Field f = field::Field::type2(113, 4);
    const auto good = mult::build_multiplier(mult::Method::Date2018Flat, f);
    const auto bad = testutil::clone_netlist(
        good, nullptr,
        [&](std::size_t index, std::span<const netlist::NodeId> mapped,
            Netlist& dst) {
            return index == 56 ? dst.make_xor(mapped[index], dst.inputs()[3].node)
                               : mapped[index];
        });

    mult::VerifyOptions lane_opts;
    lane_opts.threads = 1;
    lane_opts.random_sweeps = 8;
    const auto reference = mult::verify_multiplier(bad, f, lane_opts);
    ASSERT_TRUE(reference.has_value());
    EXPECT_FALSE(mult::verify_multiplier(good, f, lane_opts).has_value());

    for (int threads : {2, 4}) {
        for (int oracle_degree : {0, 1024}) {
            mult::VerifyOptions opts = lane_opts;
            opts.threads = threads;
            opts.lane_oracle_max_degree = oracle_degree;
            const auto failure = mult::verify_multiplier(bad, f, opts);
            ASSERT_TRUE(failure.has_value())
                << threads << " threads, oracle<=" << oracle_degree;
            EXPECT_EQ(failure->to_string(), reference->to_string())
                << threads << " threads, oracle<=" << oracle_degree;
        }
    }
}

}  // namespace
}  // namespace gfr::exec
