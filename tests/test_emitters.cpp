// HDL emitters: structural checks on the generated VHDL/Verilog text.

#include "netlist/emit_verilog.h"
#include "netlist/emit_vhdl.h"

#include <gtest/gtest.h>

namespace gfr::netlist {
namespace {

Netlist small_circuit() {
    Netlist nl;
    const auto a = nl.add_input("a0");
    const auto b = nl.add_input("b0");
    const auto c = nl.add_input("c_in");
    nl.add_output("sum", nl.make_xor(nl.make_xor(a, b), c));
    nl.add_output("carry", nl.make_and(a, b));
    return nl;
}

TEST(EmitVhdl, ContainsEntityPortsAndGates) {
    const auto text = emit_vhdl(small_circuit(), "half_adder");
    EXPECT_NE(text.find("entity half_adder is"), std::string::npos);
    EXPECT_NE(text.find("a0 : in  std_logic;"), std::string::npos);
    EXPECT_NE(text.find("sum : out std_logic;"), std::string::npos);
    EXPECT_NE(text.find("carry : out std_logic"), std::string::npos);
    EXPECT_NE(text.find(" and "), std::string::npos);
    EXPECT_NE(text.find(" xor "), std::string::npos);
    EXPECT_NE(text.find("end architecture rtl;"), std::string::npos);
}

TEST(EmitVhdl, SanitisesBadIdentifiers) {
    Netlist nl;
    const auto a = nl.add_input("a-1");
    nl.add_output("2out", a);
    const auto text = emit_vhdl(nl, "x y");
    EXPECT_EQ(text.find("a-1"), std::string::npos);
    EXPECT_NE(text.find("a_1"), std::string::npos);
    EXPECT_NE(text.find("p2out"), std::string::npos);
    EXPECT_NE(text.find("entity x_y"), std::string::npos);
}

TEST(EmitVhdl, NoOutputsThrows) {
    Netlist nl;
    nl.add_input("a");
    EXPECT_THROW(static_cast<void>(emit_vhdl(nl, "empty")), std::invalid_argument);
}

TEST(EmitVhdl, DeadLogicNotEmitted) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.make_xor(a, b);  // dead
    nl.add_output("y", nl.make_and(a, b));
    const auto text = emit_vhdl(nl, "m");
    EXPECT_EQ(text.find("xor"), std::string::npos);
}

TEST(EmitVerilog, ContainsModulePortsAndAssigns) {
    const auto text = emit_verilog(small_circuit(), "half_adder");
    EXPECT_NE(text.find("module half_adder ("), std::string::npos);
    EXPECT_NE(text.find("input  wire a0,"), std::string::npos);
    EXPECT_NE(text.find("output wire carry"), std::string::npos);
    EXPECT_NE(text.find(" & "), std::string::npos);
    EXPECT_NE(text.find(" ^ "), std::string::npos);
    EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(EmitVerilog, ConstZeroRendered) {
    Netlist nl;
    const auto a = nl.add_input("a");
    nl.add_output("z", nl.make_xor(a, a));  // folds to const0
    const auto text = emit_verilog(nl, "m");
    EXPECT_NE(text.find("1'b0"), std::string::npos);
}

TEST(EmitVerilog, OneAssignPerReachableGate) {
    const auto nl = small_circuit();
    const auto text = emit_verilog(nl, "m");
    std::size_t count = 0;
    for (std::size_t pos = text.find("assign"); pos != std::string::npos;
         pos = text.find("assign", pos + 1)) {
        ++count;
    }
    // 3 gates + 2 output aliases = 5 assigns.
    EXPECT_EQ(count, 5U);
}

}  // namespace
}  // namespace gfr::netlist
