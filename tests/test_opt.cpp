// Optimization-pipeline tier: the four passes of src/opt (strash, cut
// rewriting, functional reduction, the campaign-gated optimize() chain),
// the structural-hash key regression, CED-preservation through the
// pipeline, and the widened netlist statistics.

#include "field/field_catalog.h"
#include "guard/parity_ced.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "netlist/clone.h"
#include "netlist/equivalence.h"
#include "netlist/simulate.h"
#include "opt/opt.h"
#include "verify/fault_campaign.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>
#include <vector>

namespace gfr::opt {
namespace {

using netlist::GateKind;
using netlist::kInvalidNode;
using netlist::Netlist;
using netlist::NodeId;

// --- Structural-hash key regression -----------------------------------------

TEST(StructuralKey, ExactKeyDoesNotAliasLargeIds) {
    // The former intern key packed (kind, a, b) as (kind<<60)|(a<<30)|b:
    // any fanin id >= 2^30 overflowed its 30-bit field, so e.g.
    // (And2, a=1, b=2^30) and (And2, a=2, b=0) collapsed onto the same
    // 64-bit key and unrelated gates merged.  The exact-field key must keep
    // every such historical alias pair distinct.
    using netlist::detail::StructuralKey;
    using netlist::detail::StructuralKeyHash;
    const auto and_kind = static_cast<std::uint8_t>(GateKind::And2);
    const StructuralKey k1{and_kind, 1, NodeId{1} << 30U};
    const StructuralKey k2{and_kind, 2, 0};
    EXPECT_FALSE(k1 == k2);
    EXPECT_NE(StructuralKeyHash{}(k1), StructuralKeyHash{}(k2));
    // (a<<30)|b also aliased high-id XOR pairs against shifted ones.
    const auto xor_kind = static_cast<std::uint8_t>(GateKind::Xor2);
    const StructuralKey k3{xor_kind, 7, (NodeId{5} << 30U) | 3U};
    const StructuralKey k4{xor_kind, 12, 3};
    EXPECT_FALSE(k3 == k4);
    // Same triple still compares (and hashes) equal.
    const StructuralKey k5{and_kind, 1, NodeId{1} << 30U};
    EXPECT_TRUE(k1 == k5);
    EXPECT_EQ(StructuralKeyHash{}(k1), StructuralKeyHash{}(k5));
}

TEST(StructuralKey, FindGateProbesWithoutCreating) {
    Netlist nl;
    const NodeId a = nl.add_input("a");
    const NodeId b = nl.add_input("b");
    const NodeId g = nl.make_and(a, b);
    const std::size_t before = nl.node_count();
    // Canonicalized both ways; absent gates miss; nothing is created.
    EXPECT_EQ(nl.find_gate(GateKind::And2, a, b), g);
    EXPECT_EQ(nl.find_gate(GateKind::And2, b, a), g);
    EXPECT_EQ(nl.find_gate(GateKind::Xor2, a, b), kInvalidNode);
    EXPECT_EQ(nl.node_count(), before);
    // Fresh (non-interned) gates stay invisible to the probe.
    const NodeId fresh = nl.make_xor_fresh(a, b);
    EXPECT_NE(fresh, kInvalidNode);
    EXPECT_EQ(nl.find_gate(GateKind::Xor2, a, b), kInvalidNode);
}

// --- Widened statistics ------------------------------------------------------

TEST(NetlistStats, CountersAreInt64) {
    static_assert(std::is_same_v<decltype(netlist::NetlistStats::n_and),
                                 std::int64_t>);
    static_assert(std::is_same_v<decltype(netlist::NetlistStats::n_xor),
                                 std::int64_t>);
    static_assert(std::is_same_v<decltype(netlist::NetlistStats::xor_depth),
                                 std::int64_t>);
    static_assert(std::is_same_v<decltype(netlist::NetlistStats::and_depth),
                                 std::int64_t>);
}

TEST(NetlistStats, LargeGeneratedNetlistCountsStayConsistent) {
    // The flat product family is quadratic in m; at m=571 the counts and
    // especially gate x depth products need 64-bit room.
    const field::Field f{testutil::large_modulus(571)};
    const Netlist nl = mult::build_date2018_flat(f);
    const auto s = nl.stats();
    EXPECT_GT(s.gates(), std::int64_t{300000});
    EXPECT_EQ(s.gates(), s.n_and + s.n_xor);
    EXPECT_GT(s.n_and, 0);
    EXPECT_GT(s.n_xor, 0);
    // A derived quantity the old int fields could overflow for larger m.
    const std::int64_t area_depth = s.gates() * s.xor_depth;
    EXPECT_GT(area_depth, 0);
}

// --- Protected marks ---------------------------------------------------------

TEST(ProtectedMarks, SetQueryCountAndCloneSurvival) {
    Netlist nl;
    const NodeId a = nl.add_input("a");
    const NodeId b = nl.add_input("b");
    const NodeId g = nl.make_xor(a, b);
    nl.add_output("y", g);
    EXPECT_EQ(nl.protected_count(), 0U);
    EXPECT_FALSE(nl.is_protected(g));
    nl.set_protected(g);
    nl.set_protected(g);  // idempotent
    EXPECT_TRUE(nl.is_protected(g));
    EXPECT_EQ(nl.protected_count(), 1U);
    EXPECT_THROW(nl.set_protected(static_cast<NodeId>(nl.node_count())),
                 std::out_of_range);
    // Clones preserve marks in both modes.
    const Netlist verbatim = netlist::clone_netlist(nl, {.intern = false});
    EXPECT_EQ(verbatim.protected_count(), 1U);
    EXPECT_TRUE(verbatim.is_protected(g));
    const Netlist interned = netlist::clone_netlist(nl);
    EXPECT_EQ(interned.protected_count(), 1U);
}

TEST(ProtectedMarks, CedCheckerGatesAreMarked) {
    const field::Field f = field::table5_fields()[0].make();  // (8,2)
    Netlist nl = mult::build_date2018_flat(f);
    EXPECT_EQ(nl.protected_count(), 0U);
    const auto info = guard::add_parity_ced(nl, f);
    EXPECT_GT(nl.protected_count(), 0U);
    // Every protected node is a checker gate (appended after the original
    // multiplier), never original multiplier logic.
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        if (nl.is_protected(id)) {
            EXPECT_GE(static_cast<std::size_t>(id), info.original_nodes);
        }
    }
}

// --- strash ------------------------------------------------------------------

TEST(Strash, MergesFreshDuplicatesAndSweepsDeadLogic) {
    Netlist nl;
    const NodeId a = nl.add_input("a");
    const NodeId b = nl.add_input("b");
    const NodeId c = nl.add_input("c");  // dead input, must survive
    const NodeId g1 = nl.make_xor_fresh(a, b);
    const NodeId g2 = nl.make_xor_fresh(a, b);  // structural duplicate
    static_cast<void>(nl.make_and(b, c));       // dead gate
    nl.add_output("y0", g1);
    nl.add_output("y1", g2);
    const PassResult r = strash(nl);
    EXPECT_FALSE(netlist::check_equivalence(nl, r.netlist).has_value());
    EXPECT_EQ(r.netlist.inputs().size(), 3U);  // interface preserved
    EXPECT_EQ(r.netlist.stats().gates(), 1);   // merged + swept
    EXPECT_EQ(r.node_map[g1], r.node_map[g2]);
}

TEST(Strash, FrozenGatesAreRebuiltVerbatim) {
    Netlist nl;
    const NodeId a = nl.add_input("a");
    const NodeId b = nl.add_input("b");
    const NodeId g1 = nl.make_xor(a, b);
    const NodeId g2 = nl.make_xor_fresh(a, b);  // a "checker" duplicate
    nl.set_protected(g2);
    nl.add_output("y", g1);
    nl.add_output("chk", g2);
    const PassResult r = strash(nl);
    EXPECT_FALSE(netlist::check_equivalence(nl, r.netlist).has_value());
    // The protected duplicate must NOT merge into the interned gate.
    EXPECT_NE(r.node_map[g1], r.node_map[g2]);
    EXPECT_TRUE(r.netlist.is_protected(r.node_map[g2]));
    EXPECT_EQ(r.netlist.protected_count(), 1U);
    EXPECT_EQ(r.netlist.stats().gates(), 2);
}

// --- rewrite_cuts ------------------------------------------------------------

TEST(RewriteCuts, PreservesFunctionAndNeverGrows) {
    const field::Field f = field::table5_fields()[0].make();
    const Netlist nl = mult::build_date2018_flat(f);
    const PassResult r = rewrite_cuts(nl);
    EXPECT_FALSE(netlist::check_equivalence(nl, r.netlist).has_value());
    EXPECT_LE(r.netlist.stats().gates(), nl.stats().gates());
}

TEST(RewriteCuts, CancelsSharedSubtermsAndSharesAcrossCones) {
    // y0 = (a^b) ^ (a^c) is b^c with the `a` terms cancelling — invisible
    // to structural hashing (all three gates are distinct), but the cut
    // truth table over {a,b,c} is the 2-input XOR, so the database candidate
    // replaces the 3-gate cone with one gate and the MFFC (both inner XORs)
    // is freed.  y1 then rediscovers that gate through the destination's
    // structural hash: both outputs collapse onto the same node.
    Netlist nl;
    const NodeId a = nl.add_input("a");
    const NodeId b = nl.add_input("b");
    const NodeId c = nl.add_input("c");
    const NodeId y0 =
        nl.make_xor_fresh(nl.make_xor_fresh(a, b), nl.make_xor_fresh(a, c));
    const NodeId y1 = nl.make_xor_fresh(b, c);
    nl.add_output("y0", y0);
    nl.add_output("y1", y1);
    ASSERT_EQ(nl.stats().gates(), 4);
    const PassResult r = rewrite_cuts(nl);
    EXPECT_FALSE(netlist::check_equivalence(nl, r.netlist).has_value());
    EXPECT_EQ(r.netlist.stats().gates(), 1);
    EXPECT_EQ(r.node_map[y0], r.node_map[y1]);
}

TEST(RewriteCuts, UnsoundHookProducesNonEquivalentNetlist) {
    const field::Field f = field::table5_fields()[0].make();
    const Netlist nl = mult::build_date2018_flat(f);
    RewriteOptions options;
    options.unsound_for_test = true;
    const PassResult r = rewrite_cuts(nl, options);
    EXPECT_TRUE(netlist::check_equivalence(nl, r.netlist).has_value());
}

// --- reduce_functional -------------------------------------------------------

TEST(ReduceFunctional, MergesEquivalentButStructurallyDifferentCones) {
    // y1 = (a^b)&(a^b) rebuilt as AND of two fresh copies of a^b — no
    // structural duplicate of y0 = a^b anywhere, but functionally equal.
    Netlist nl;
    const NodeId a = nl.add_input("a");
    const NodeId b = nl.add_input("b");
    const NodeId y0 = nl.make_xor(a, b);
    const NodeId x1 = nl.make_xor_fresh(a, b);
    const NodeId x2 = nl.make_xor_fresh(a, b);
    const NodeId y1 = nl.make_and_fresh(x1, x2);
    nl.add_output("y0", y0);
    nl.add_output("y1", y1);
    ASSERT_EQ(nl.stats().gates(), 4);
    const PassResult r = reduce_functional(nl);
    EXPECT_FALSE(netlist::check_equivalence(nl, r.netlist).has_value());
    EXPECT_EQ(r.netlist.stats().gates(), 1);
    EXPECT_EQ(r.node_map[y0], r.node_map[y1]);
}

TEST(ReduceFunctional, PreservesMultiplierFunction) {
    const field::Field f = field::table5_fields()[0].make();
    const Netlist nl = mult::build_rashidi_direct(f);
    const PassResult r = reduce_functional(nl);
    EXPECT_FALSE(netlist::check_equivalence(nl, r.netlist).has_value());
    EXPECT_LE(r.netlist.stats().gates(), nl.stats().gates());
}

// --- optimize() pipeline -----------------------------------------------------

TEST(Optimize, ShrinksTableVMultiplierWithEveryPassVerified) {
    const field::Field f = field::table5_fields()[0].make();  // (8,2)
    // The flat family as handed to synthesis: the literal Table IV sums
    // (one gate per operator above the product plane).  The pipeline must
    // recover the sharing the flat form leaves on the table.
    const Netlist nl =
        mult::build_date2018_flat(f, mult::Elaboration::Literal);
    const Netlist shared = mult::build_date2018_flat(f);
    EXPECT_GT(nl.stats().gates(), shared.stats().gates());
    EXPECT_FALSE(netlist::check_equivalence(nl, shared).has_value());
    const OptResult r = optimize(nl);
    EXPECT_FALSE(netlist::check_equivalence(nl, r.netlist).has_value());
    ASSERT_FALSE(r.passes.empty());
    for (const auto& pass : r.passes) {
        EXPECT_TRUE(pass.verified) << pass.pass;
        EXPECT_LE(pass.gates_after, pass.gates_before) << pass.pass;
    }
    // The acceptance bar: >= 15% gate reduction on the flat product family.
    const double reduction =
        1.0 - static_cast<double>(r.gates_after()) /
                  static_cast<double>(r.gates_before());
    EXPECT_GE(reduction, 0.15) << "gates " << r.gates_before() << " -> "
                               << r.gates_after();
    // The optimized flat form must also beat the hash-consed elaboration —
    // the pipeline earns more than construction-time interning provides.
    EXPECT_LT(r.gates_after(), shared.stats().gates());
}

TEST(Optimize, UnsoundRewriteIsCaughtByTheCampaignGate) {
    const field::Field f = field::table5_fields()[0].make();
    const Netlist nl = mult::build_date2018_flat(f);
    OptOptions options;
    options.rewrite.unsound_for_test = true;
    try {
        static_cast<void>(optimize(nl, options));
        FAIL() << "unsound rewrite passed the verification gate";
    } catch (const VerificationError& e) {
        EXPECT_EQ(e.pass(), "rewrite");
        // The message carries the counterexample repro string.
        EXPECT_NE(std::string{e.what()}.find("rewrite"), std::string::npos);
    }
}

TEST(Optimize, VerificationOffStillRunsPasses) {
    const field::Field f = field::table5_fields()[0].make();
    const Netlist nl = mult::build_rashidi_direct(f);
    OptOptions options;
    options.verify_each_pass = false;
    const OptResult r = optimize(nl, options);
    for (const auto& pass : r.passes) {
        EXPECT_FALSE(pass.verified);
    }
    EXPECT_FALSE(netlist::check_equivalence(nl, r.netlist).has_value());
}

TEST(OptimizeAndVerify, ReverifiesAgainstTheFieldReference) {
    const field::Field f = field::table5_fields()[0].make();
    const Netlist nl = mult::build_rashidi_direct(f);
    const OptResult r = mult::optimize_and_verify(nl, f);
    EXPECT_LE(r.gates_after(), r.gates_before());
    EXPECT_FALSE(mult::verify_multiplier(r.netlist, f).has_value());
}

// --- CED preservation through the pipeline -----------------------------------

TEST(Optimize, GuardedNetlistKeepsCheckerSemantics) {
    const field::Field f = field::table5_fields()[0].make();  // (8,2)
    Netlist guarded = mult::build_date2018_flat(f);
    const auto info = guard::add_parity_ced(guarded, f);
    const std::size_t marks = guarded.protected_count();
    ASSERT_GT(marks, 0U);

    const OptResult r = optimize(guarded);
    // Restructure is skipped on protected netlists, so the composed node
    // map stays valid and CED bookkeeping can be remapped through it.
    ASSERT_TRUE(r.node_map_valid);
    EXPECT_FALSE(netlist::check_equivalence(guarded, r.netlist).has_value());
    EXPECT_EQ(r.netlist.protected_count(), marks);

    // Remap the covered sites and rerun the fault campaign on the OPTIMIZED
    // guarded netlist: the 100%-detection guarantee must survive verbatim.
    std::vector<NodeId> sites;
    sites.reserve(info.covered_sites.size());
    for (const NodeId site : info.covered_sites) {
        const NodeId mapped = r.node_map[site];
        ASSERT_NE(mapped, kInvalidNode) << "covered site swept by a pass";
        sites.push_back(mapped);
    }
    const auto report = verify::run_fault_campaign(
        r.netlist, sites, static_cast<std::size_t>(f.degree()),
        static_cast<std::size_t>(
            r.netlist.output_index(guard::kCedAlarmOutput)));
    EXPECT_EQ(report.escaped, 0U) << report.to_string();
    EXPECT_TRUE(report.all_detected());
    EXPECT_GT(report.detected, 0U);

    // Zero false alarms: on the clean optimized circuit every CED output
    // stays low across random input blocks.
    netlist::Simulator sim(r.netlist);
    testutil::Xorshift64Star rng{0x0dd5eedULL};
    const std::size_t n_in = r.netlist.inputs().size();
    const auto n_function = static_cast<std::size_t>(f.degree());
    std::vector<std::uint64_t> in(n_in);
    for (int block = 0; block < 16; ++block) {
        for (auto& w : in) {
            w = rng.next();
        }
        const auto out = sim.run(in);
        for (std::size_t o = n_function; o < out.size(); ++o) {
            ASSERT_EQ(out[o], 0U)
                << "CED output " << r.netlist.outputs()[o].name
                << " raised on the clean optimized circuit";
        }
    }
}

}  // namespace
}  // namespace gfr::opt
