// The paper's own Tables I/III/IV, transcribed verbatim, compiled to
// netlists and validated: all three must be functionally correct GF(2^8)
// multipliers, and Table III must exhibit the complexity the paper claims
// for it (T_A + 5T_X; 64 AND).  This is as close as a reproduction can get
// to "checking the paper's math".

#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "multipliers/golden_tables.h"
#include "multipliers/verify.h"
#include "netlist/equivalence.h"

#include <gtest/gtest.h>

namespace gfr::mult {
namespace {

TEST(GoldenTable1, IsACorrectMultiplier) {
    const auto nl = golden_table1_netlist();
    const auto failure = verify_multiplier(nl, field::gf256_paper_field());
    EXPECT_FALSE(failure.has_value()) << failure->to_string();
}

TEST(GoldenTable1, MatchesImana2012Generator) {
    // Table I *is* the [6] formulation; both netlists must be equivalent.
    const auto golden = golden_table1_netlist();
    const auto generated =
        build_multiplier(Method::Imana2012, field::gf256_paper_field());
    EXPECT_FALSE(netlist::check_equivalence(golden, generated).has_value());
}

TEST(GoldenTable1, TermCountsMatchPaper) {
    // Table I: c0 has 4 T-terms, c1 has 3, ... — encoded as atom counts.
    const auto eqs =
        st::parse_coefficient_table(table1_text(), st::ParseMode::WholeFunctions);
    ASSERT_EQ(eqs.size(), 8U);
    const std::vector<std::size_t> expected_atoms = {5, 4, 5, 5, 5, 4, 4, 4};
    for (std::size_t k = 0; k < 8; ++k) {
        EXPECT_EQ(eqs[k].expr.atoms().size(), expected_atoms[k]) << "c" << k;
    }
}

TEST(GoldenTable3, IsACorrectMultiplier) {
    const auto nl = golden_table3_netlist();
    const auto failure = verify_multiplier(nl, field::gf256_paper_field());
    EXPECT_FALSE(failure.has_value()) << failure->to_string();
}

TEST(GoldenTable3, HasPaperComplexity) {
    // "the delay complexity is T_A + 5T_X ... 64 AND and 87 XOR gates".
    const auto stats = golden_table3_netlist().stats();
    EXPECT_EQ(stats.and_depth, 1);
    EXPECT_EQ(stats.xor_depth, 5);
    EXPECT_EQ(stats.n_and, 64);
    // XOR count with cross-coefficient sharing (see EXPERIMENTS.md): the
    // paper reports 87 for its hand-derived netlist; our compilation of the
    // very same Table III equations, with structural hashing re-using
    // repeated terms (the sharing the paper itself points out, e.g.
    // T^1_{0,4} in c0 and c2), lands within a couple of gates.
    EXPECT_NEAR(static_cast<double>(stats.n_xor), 87.0, 3.0);
}

TEST(GoldenTable3, EquivalentToImana2016Generator) {
    const auto golden = golden_table3_netlist();
    const auto generated =
        build_multiplier(Method::Imana2016Paren, field::gf256_paper_field());
    EXPECT_FALSE(netlist::check_equivalence(golden, generated).has_value());
    // Both realise T_A + 5T_X even though the hand pairing differs.
    EXPECT_EQ(golden.stats().xor_depth, generated.stats().xor_depth);
}

TEST(GoldenTable4, IsACorrectMultiplier) {
    const auto nl = golden_table4_netlist();
    const auto failure = verify_multiplier(nl, field::gf256_paper_field());
    EXPECT_FALSE(failure.has_value()) << failure->to_string();
}

TEST(GoldenTable4, MatchesDate2018Generator) {
    const auto golden = golden_table4_netlist();
    const auto generated =
        build_multiplier(Method::Date2018Flat, field::gf256_paper_field());
    EXPECT_FALSE(netlist::check_equivalence(golden, generated).has_value());
}

TEST(GoldenTable4, FlatAtomsMatchGeneratorOrder) {
    // The generator's split-term listing (S splits desc level, then T_i asc
    // index desc level) must reproduce Table IV's printed order exactly.
    const auto eqs =
        st::parse_coefficient_table(table4_text(), st::ParseMode::SplitTerms);
    const std::vector<std::vector<std::string>> expected = {
        {"S^0_1", "T^2_0", "T^1_0", "T^0_0", "T^1_4", "T^0_4", "T^1_5", "T^0_6"},
        {"S^1_2", "T^2_1", "T^1_1", "T^1_5", "T^0_6"},
        {"S^1_3", "S^0_3", "T^2_0", "T^1_0", "T^0_0", "T^2_2", "T^0_2", "T^1_4",
         "T^0_4", "T^1_5"},
        {"S^2_4", "T^2_0", "T^1_0", "T^0_0", "T^2_1", "T^1_1", "T^2_3", "T^1_4",
         "T^0_4"},
        {"S^2_5", "S^0_5", "T^2_0", "T^1_0", "T^0_0", "T^2_1", "T^1_1", "T^2_2",
         "T^0_2", "T^0_6"},
        {"S^2_6", "S^1_6", "T^2_1", "T^1_1", "T^2_2", "T^0_2", "T^2_3"},
        {"S^2_7", "S^1_7", "S^0_7", "T^2_2", "T^0_2", "T^2_3", "T^1_4", "T^0_4"},
        {"S^3_8", "T^2_3", "T^1_4", "T^0_4", "T^1_5"},
    };
    ASSERT_EQ(eqs.size(), 8U);
    for (std::size_t k = 0; k < 8; ++k) {
        const auto atoms = eqs[k].expr.atoms();
        ASSERT_EQ(atoms.size(), expected[k].size()) << "c" << k;
        for (std::size_t i = 0; i < atoms.size(); ++i) {
            EXPECT_EQ(atoms[i].to_string(), expected[k][i]) << "c" << k << " pos " << i;
        }
    }
}

TEST(GoldenTables, AllThreePairwiseEquivalent) {
    const auto t1 = golden_table1_netlist();
    const auto t3 = golden_table3_netlist();
    const auto t4 = golden_table4_netlist();
    EXPECT_FALSE(netlist::check_equivalence(t1, t3).has_value());
    EXPECT_FALSE(netlist::check_equivalence(t1, t4).has_value());
    EXPECT_FALSE(netlist::check_equivalence(t3, t4).has_value());
}

TEST(GoldenTables, Table4FlatHasNoNestedStructure) {
    const auto eqs =
        st::parse_coefficient_table(table4_text(), st::ParseMode::SplitTerms);
    for (const auto& eq : eqs) {
        for (const auto& child : eq.expr.children) {
            EXPECT_TRUE(child.is_leaf()) << "c" << eq.k << " should be flat";
        }
    }
}

TEST(GoldenTables, Table3UsesLevelFallbackPair) {
    // T^2_{5,6} exercises the fallback rule (T6 has no level-1 split term).
    const auto eqs =
        st::parse_coefficient_table(table3_text(), st::ParseMode::SplitTerms);
    bool found = false;
    for (const auto& eq : eqs) {
        for (const auto& atom : eq.expr.atoms()) {
            if (atom.kind == st::Atom::Kind::PairTT && atom.i == 5 && atom.j == 6) {
                found = true;
            }
        }
    }
    EXPECT_TRUE(found);
}

}  // namespace
}  // namespace gfr::mult
