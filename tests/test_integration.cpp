// Full-pipeline integration: generator -> (synthesis) -> mapper -> LUT
// network, verified against field arithmetic end to end, plus the Table V
// shape claims the whole reproduction exists to demonstrate.

#include "fpga/flow.h"
#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "netlist/emit_vhdl.h"
#include "netlist/simulate.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

namespace gfr {
namespace {

using field::Field;
using gf2::Poly;

/// Extract element from lane bits across input words.
Poly lane_element(const std::vector<std::uint64_t>& words, int offset, int m, int lane) {
    Poly p;
    for (int i = 0; i < m; ++i) {
        if ((words[static_cast<std::size_t>(offset + i)] >> lane) & 1U) {
            p.set_coeff(i, true);
        }
    }
    return p;
}

TEST(Integration, LutNetworkMultipliesGf64Correctly) {
    const Field fld = Field::type2(64, 23);
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    fpga::FlowOptions opts;
    opts.synthesis_freedom = true;
    const auto flow = fpga::run_flow(nl, opts);

    std::mt19937_64 rng{2718};
    std::vector<std::uint64_t> in(128);
    for (int sweep = 0; sweep < 4; ++sweep) {
        for (auto& w : in) {
            w = rng();
        }
        const auto out = flow.network.simulate(in);
        for (int lane = 0; lane < 64; lane += 7) {
            const Poly a = lane_element(in, 0, 64, lane);
            const Poly b = lane_element(in, 64, 64, lane);
            const Poly expected = fld.mul(a, b);
            for (int kk = 0; kk < 64; ++kk) {
                ASSERT_EQ(((out[static_cast<std::size_t>(kk)] >> lane) & 1U) == 1U,
                          expected.coeff(kk))
                    << "lane " << lane << " c" << kk;
            }
        }
    }
}

TEST(Integration, Table5ShapeAtGf28) {
    // Run all six Table V methods through the full flow at (8,2).  The paper
    // has "This work" winning A x T here (322.41, 4% ahead of [6]); in our
    // model flow [6] and the proposed method land within a few percent of
    // each other at this tiny size (see EXPERIMENTS.md), so the shape claim
    // we pin down is: the proposed method is within 5% of the best A x T and
    // strictly beats [7], [2], [8] and [3].
    const Field fld = field::gf256_paper_field();
    double best_axt = 1e100;
    std::map<std::string, double> axt;
    for (const auto& info : mult::all_methods()) {
        if (!info.in_table5) {
            continue;
        }
        const auto nl = mult::build_multiplier(info.method, fld);
        fpga::FlowOptions opts;
        opts.synthesis_freedom = info.synthesis_freedom;
        const auto r = fpga::run_flow(nl, opts);
        axt[std::string{info.key}] = r.area_time;
        best_axt = std::min(best_axt, r.area_time);
    }
    const double this_work = axt.at("date2018");
    EXPECT_LE(this_work, best_axt * 1.05);
    EXPECT_LT(this_work, axt.at("imana2016"));
    EXPECT_LT(this_work, axt.at("paar"));
    EXPECT_LT(this_work, axt.at("rashidi"));
    EXPECT_LT(this_work, axt.at("reyhani"));
}

TEST(Integration, Table5ShapeAtGf64) {
    // At (64,23) — and every larger Table V field — the paper's headline
    // reproduces strictly: "This work" has the lowest A x T outright.
    const Field fld = Field::type2(64, 23);
    double best_axt = 1e100;
    std::string best_method;
    double this_work_axt = 0;
    for (const auto& info : mult::all_methods()) {
        if (!info.in_table5) {
            continue;
        }
        const auto nl = mult::build_multiplier(info.method, fld);
        fpga::FlowOptions opts;
        opts.synthesis_freedom = info.synthesis_freedom;
        const auto r = fpga::run_flow(nl, opts);
        if (r.area_time < best_axt) {
            best_axt = r.area_time;
            best_method = std::string{info.key};
        }
        if (info.method == mult::Method::Date2018Flat) {
            this_work_axt = r.area_time;
        }
    }
    EXPECT_EQ(best_method, "date2018");
    EXPECT_DOUBLE_EQ(best_axt, this_work_axt);
}

TEST(Integration, FlatBeatsParenthesisedUnderTheSameFlow) {
    // The head-to-head the paper emphasises: Table IV (flat, synthesis
    // freedom) vs Table III ([7], hard restrictions) — flat must win A x T
    // at (8,2) and stay no worse in delay.
    const Field fld = field::gf256_paper_field();
    const auto flat = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    const auto paren = mult::build_multiplier(mult::Method::Imana2016Paren, fld);
    fpga::FlowOptions free_opts;
    free_opts.synthesis_freedom = true;
    const auto r_flat = fpga::run_flow(flat, free_opts);
    const auto r_paren = fpga::run_flow(paren, fpga::FlowOptions{});
    EXPECT_LT(r_flat.area_time, r_paren.area_time);
    EXPECT_LE(r_flat.luts, r_paren.luts);
}

TEST(Integration, VhdlOfEveryMethodIsEmittable) {
    const Field fld = field::gf256_paper_field();
    for (const auto& info : mult::all_methods()) {
        const auto nl = mult::build_multiplier(info.method, fld);
        const auto text = netlist::emit_vhdl(nl, std::string{info.key});
        EXPECT_NE(text.find("entity"), std::string::npos) << std::string{info.key};
        EXPECT_GT(text.size(), 500U) << std::string{info.key};
    }
}

TEST(Integration, WholePipelineOnSecgField) {
    // (113,4): build -> synthesise -> map -> pack -> time; sanity on every
    // metric plus function preservation on random vectors.
    const Field fld = Field::type2(113, 4);
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    fpga::FlowOptions opts;
    opts.synthesis_freedom = true;
    const auto r = fpga::run_flow(nl, opts);
    EXPECT_GT(r.luts, 1000);
    EXPECT_GT(r.slices, r.luts / 4 - 1);
    EXPECT_GT(r.delay_ns, 10.0);
    EXPECT_LT(r.delay_ns, 40.0);

    std::mt19937_64 rng{31415};
    std::vector<std::uint64_t> in(226);
    for (auto& w : in) {
        w = rng();
    }
    const auto ref = netlist::simulate(nl, in);
    const auto got = r.network.simulate(in);
    for (std::size_t o = 0; o < ref.size(); ++o) {
        ASSERT_EQ(ref[o], got[o]);
    }
}

}  // namespace
}  // namespace gfr
