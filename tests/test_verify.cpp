// verify_multiplier: catches injected bugs, rejects malformed interfaces.

#include "field/field_catalog.h"
#include "mastrovito/reduction_matrix.h"
#include "multipliers/generator.h"
#include "multipliers/product_layer.h"
#include "multipliers/verify.h"

#include <gtest/gtest.h>

namespace gfr::mult {
namespace {

TEST(Verify, AcceptsCorrectMultiplier) {
    const field::Field fld = field::gf256_paper_field();
    const auto nl = build_multiplier(Method::Imana2012, fld);
    EXPECT_FALSE(verify_multiplier(nl, fld).has_value());
}

TEST(Verify, CatchesSwappedOutputs) {
    const field::Field fld = field::gf256_paper_field();
    netlist::Netlist nl;
    ProductLayer pl{nl, 8};
    const auto correct = build_multiplier(Method::Imana2012, fld);
    // Rebuild with c0/c1 swapped by re-wiring names onto the wrong nodes.
    netlist::Netlist bad;
    ProductLayer plb{bad, 8};
    // Simplest injected fault: c0 = a0*b0 only (drops all reduction terms).
    for (int k = 0; k < 8; ++k) {
        bad.add_output(coeff_name(k), plb.product(k, k));
    }
    const auto failure = verify_multiplier(bad, fld);
    ASSERT_TRUE(failure.has_value());
    EXPECT_FALSE(failure->to_string().empty());
    static_cast<void>(correct);
}

TEST(Verify, CatchesSingleMissingProductTerm) {
    // A multiplier missing exactly one partial product in c7 — the smallest
    // realistic transcription bug; exhaustive checking must find it.
    const field::Field fld = field::gf256_paper_field();
    netlist::Netlist nl;
    ProductLayer pl{nl, 8};
    const mastrovito::ReductionMatrix q{fld.modulus()};
    for (int k = 0; k < 8; ++k) {
        std::vector<netlist::NodeId> leaves;
        const auto add_d = [&](int deg) {
            const int lo_min = std::max(0, deg - 7);
            const int lo_max = std::min(deg, 7);
            for (int i = lo_min; i <= lo_max; ++i) {
                leaves.push_back(pl.product(i, deg - i));
            }
        };
        add_d(k);
        for (const int i : q.t_indices_for_coefficient(k)) {
            add_d(8 + i);
        }
        if (k == 7) {
            leaves.pop_back();  // inject: drop one product
        }
        nl.add_output(coeff_name(k),
                      nl.make_xor_tree(leaves, netlist::TreeShape::Balanced));
    }
    const auto failure = verify_multiplier(nl, fld);
    ASSERT_TRUE(failure.has_value());
    EXPECT_EQ(failure->coefficient, 7);
}

TEST(Verify, RandomRegimeCatchesBugInWideField) {
    const field::Field fld = field::Field::type2(64, 23);
    auto nl = build_multiplier(Method::RashidiDirect, fld);
    // Corrupt: add an extra XOR with input a0 onto c0 by rebuilding outputs.
    netlist::Netlist bad;
    ProductLayer pl{bad, 64};
    const auto good = build_multiplier(Method::RashidiDirect, fld);
    // Rebuild netlist from scratch with the same generator, then flip c0.
    // (Outputs are append-only, so we build a fresh corrupted netlist.)
    const mastrovito::ReductionMatrix q{fld.modulus()};
    for (int k = 0; k < 64; ++k) {
        std::vector<netlist::NodeId> leaves;
        const auto add_d = [&](int deg) {
            const int lo_min = std::max(0, deg - 63);
            const int lo_max = std::min(deg, 63);
            for (int i = lo_min; i <= lo_max; ++i) {
                leaves.push_back(pl.product(i, deg - i));
            }
        };
        add_d(k);
        for (const int i : q.t_indices_for_coefficient(k)) {
            add_d(64 + i);
        }
        auto node = bad.make_xor_tree(leaves, netlist::TreeShape::Balanced);
        if (k == 0) {
            node = bad.make_xor(node, pl.a(0));  // injected fault
        }
        bad.add_output(coeff_name(k), node);
    }
    const auto failure = verify_multiplier(bad, fld);
    ASSERT_TRUE(failure.has_value());
    EXPECT_EQ(failure->coefficient, 0);
    static_cast<void>(nl);
    static_cast<void>(good);
}

TEST(Verify, RejectsWrongPortCount) {
    const field::Field fld = field::gf256_paper_field();
    netlist::Netlist nl;
    nl.add_input("a0");
    nl.add_output("c0", nl.add_input("b0"));
    EXPECT_THROW(static_cast<void>(verify_multiplier(nl, fld)), std::invalid_argument);
}

TEST(Verify, RejectsWrongPortNames) {
    const field::Field fld = field::Field::type2(8, 2);
    netlist::Netlist nl;
    for (int i = 0; i < 8; ++i) {
        nl.add_input("x" + std::to_string(i));  // wrong prefix
    }
    for (int i = 0; i < 8; ++i) {
        nl.add_input("b" + std::to_string(i));
    }
    for (int i = 0; i < 8; ++i) {
        nl.add_output("c" + std::to_string(i), nl.const0());
    }
    EXPECT_THROW(static_cast<void>(verify_multiplier(nl, fld)), std::invalid_argument);
}

TEST(Verify, FailureReportContainsOperands) {
    const field::Field fld = field::gf256_paper_field();
    netlist::Netlist nl;
    ProductLayer pl{nl, 8};
    for (int k = 0; k < 8; ++k) {
        nl.add_output(coeff_name(k), nl.const0());  // constant-zero "multiplier"
    }
    const auto failure = verify_multiplier(nl, fld);
    ASSERT_TRUE(failure.has_value());
    const auto text = failure->to_string();
    EXPECT_NE(text.find("A="), std::string::npos);
    EXPECT_NE(text.find("B="), std::string::npos);
    EXPECT_NE(text.find("mismatch"), std::string::npos);
}

}  // namespace
}  // namespace gfr::mult
