// S_i/T_i functions: eq. (1) versus first-principles convolution, and the
// paper's complete GF(2^8) listing from Section II.

#include "multipliers/golden_tables.h"
#include "st/st_terms.h"

#include <gtest/gtest.h>

namespace gfr::st {
namespace {

TEST(Term, Basics) {
    const Term sq{3, 3};
    EXPECT_TRUE(sq.is_square());
    EXPECT_EQ(sq.product_count(), 1);
    EXPECT_EQ(term_to_paper_string(sq), "x3");

    const Term cross{0, 7};
    EXPECT_FALSE(cross.is_square());
    EXPECT_EQ(cross.product_count(), 2);
    EXPECT_EQ(term_to_paper_string(cross), "z^7_0");
}

TEST(StFunction, PaperSection2ListingGf28) {
    // Every S_i and T_i for GF(2^8) exactly as printed in the paper.
    const auto& expected = mult::section2_expected_st_lines();
    std::vector<std::string> got;
    for (int i = 1; i <= 8; ++i) {
        got.push_back(to_paper_string(make_s(8, i)));
    }
    for (int i = 0; i <= 6; ++i) {
        got.push_back(to_paper_string(make_t(8, i)));
    }
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i], expected[i]);
    }
}

class Formula1VsConvolution : public ::testing::TestWithParam<int> {};

TEST_P(Formula1VsConvolution, SFunctionsAgree) {
    const int m = GetParam();
    for (int i = 1; i <= m; ++i) {
        const auto formula = make_s(m, i);
        const auto conv = make_s_convolution(m, i);
        EXPECT_TRUE(same_terms(formula, conv))
            << "m=" << m << " S" << i << ": " << to_paper_string(formula) << " vs "
            << to_paper_string(conv);
    }
}

TEST_P(Formula1VsConvolution, TFunctionsAgree) {
    const int m = GetParam();
    for (int i = 0; i <= m - 2; ++i) {
        const auto formula = make_t(m, i);
        const auto conv = make_t_convolution(m, i);
        EXPECT_TRUE(same_terms(formula, conv))
            << "m=" << m << " T" << i << ": " << to_paper_string(formula) << " vs "
            << to_paper_string(conv);
    }
}

TEST_P(Formula1VsConvolution, ProductsPartitionAllPairs) {
    // Union of all S_i and T_i covers every product a_lo*b_hi exactly once:
    // total product count must be m^2.
    const int m = GetParam();
    int total = 0;
    for (int i = 1; i <= m; ++i) {
        total += make_s(m, i).product_count();
    }
    for (int i = 0; i <= m - 2; ++i) {
        total += make_t(m, i).product_count();
    }
    EXPECT_EQ(total, m * m);
}

// Both parities of m, small to large, including every Table V degree.
INSTANTIATE_TEST_SUITE_P(ManyDegrees, Formula1VsConvolution,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 16, 17, 64, 113,
                                           122, 139, 148, 163),
                         [](const auto& info) { return "m" + std::to_string(info.param); });

TEST(StFunction, TermOrderingMatchesListing) {
    // x term first (odd i), then z terms with ascending low index.
    const auto s7 = make_s(8, 7);
    ASSERT_EQ(s7.terms.size(), 4U);
    EXPECT_TRUE(s7.terms[0].is_square());
    EXPECT_EQ(s7.terms[1], (Term{0, 6}));
    EXPECT_EQ(s7.terms[2], (Term{1, 5}));
    EXPECT_EQ(s7.terms[3], (Term{2, 4}));
}

TEST(StFunction, XTermParityRules) {
    // S_i has an x term iff i odd; T_i has one iff m,i share parity.
    for (const int m : {8, 9}) {
        for (int i = 1; i <= m; ++i) {
            const bool has_x = !make_s(m, i).terms.empty() &&
                               make_s(m, i).terms.front().is_square();
            EXPECT_EQ(has_x, i % 2 == 1) << "m=" << m << " S" << i;
        }
        for (int i = 0; i <= m - 2; ++i) {
            const auto t = make_t(m, i);
            const bool has_x = !t.terms.empty() && t.terms.front().is_square();
            EXPECT_EQ(has_x, (m % 2) == (i % 2)) << "m=" << m << " T" << i;
        }
    }
}

TEST(StFunction, Names) {
    EXPECT_EQ(make_s(8, 3).name(), "S3");
    EXPECT_EQ(make_t(8, 0).name(), "T0");
}

TEST(StFunction, InvalidIndicesThrow) {
    EXPECT_THROW(make_s(8, 0), std::invalid_argument);
    EXPECT_THROW(make_s(8, 9), std::invalid_argument);
    EXPECT_THROW(make_t(8, -1), std::invalid_argument);
    EXPECT_THROW(make_t(8, 7), std::invalid_argument);
    EXPECT_THROW(make_s_convolution(8, 0), std::invalid_argument);
    EXPECT_THROW(make_t_convolution(8, 7), std::invalid_argument);
}

TEST(StFunction, BoundaryFunctions) {
    // S_1 = x0 (sole product of degree 0); T_(m-2) = x_(m-1) for even m.
    const auto s1 = make_s(8, 1);
    ASSERT_EQ(s1.terms.size(), 1U);
    EXPECT_EQ(s1.terms[0], (Term{0, 0}));
    const auto t6 = make_t(8, 6);
    ASSERT_EQ(t6.terms.size(), 1U);
    EXPECT_EQ(t6.terms[0], (Term{7, 7}));
    // Odd m: T_(m-2) = z^(m-1)_(m-2) (no square term).
    const auto t7 = make_t(9, 7);
    ASSERT_EQ(t7.terms.size(), 1U);
    EXPECT_EQ(t7.terms[0], (Term{8, 8}));
}

}  // namespace
}  // namespace gfr::st
