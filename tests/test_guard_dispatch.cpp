// Kernel self-tests, the quarantine ladder, and the environment-knob
// parsing behind GFR_BULK_FORCE_SCALAR / GFR_GUARD_FAULT.

#include "bulk/kernels.h"
#include "guard/kernel_check.h"
#include "guard/status.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace gfr {
namespace {

TEST(GuardStatus, Basics) {
    const guard::Status ok = guard::Status::good();
    EXPECT_TRUE(ok.ok());
    EXPECT_TRUE(static_cast<bool>(ok));
    const guard::Status bad =
        guard::Status::fail(guard::Fault::RegionChecksum, "boom");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.fault, guard::Fault::RegionChecksum);
    EXPECT_NE(bad.to_string().find("region-checksum"), std::string::npos);
    EXPECT_NE(bad.to_string().find("boom"), std::string::npos);
    EXPECT_STREQ(guard::fault_name(guard::Fault::None), "none");
    EXPECT_STREQ(guard::fault_name(guard::Fault::KernelSelfTest),
                 "kernel-self-test");
    EXPECT_STREQ(guard::fault_name(guard::Fault::ParityAlarm), "parity-alarm");
}

TEST(GuardDispatch, EnvFlagParsing) {
    // S1: empty / "0" / "off" / "false" / "no" (any case) mean UNSET, so
    // scripts can pass GFR_BULK_FORCE_SCALAR=0 through unconditionally.
    EXPECT_FALSE(bulk::env_flag_enabled(nullptr));
    EXPECT_FALSE(bulk::env_flag_enabled(""));
    EXPECT_FALSE(bulk::env_flag_enabled("0"));
    EXPECT_FALSE(bulk::env_flag_enabled("off"));
    EXPECT_FALSE(bulk::env_flag_enabled("OFF"));
    EXPECT_FALSE(bulk::env_flag_enabled("Off"));
    EXPECT_FALSE(bulk::env_flag_enabled("false"));
    EXPECT_FALSE(bulk::env_flag_enabled("FALSE"));
    EXPECT_FALSE(bulk::env_flag_enabled("no"));
    EXPECT_FALSE(bulk::env_flag_enabled("No"));
    EXPECT_TRUE(bulk::env_flag_enabled("1"));
    EXPECT_TRUE(bulk::env_flag_enabled("on"));
    EXPECT_TRUE(bulk::env_flag_enabled("yes"));
    EXPECT_TRUE(bulk::env_flag_enabled("true"));
    EXPECT_TRUE(bulk::env_flag_enabled("2"));
    EXPECT_TRUE(bulk::env_flag_enabled("scalar"));
    // Whole-token comparison, not prefix: "0x" and "offline" enable.
    EXPECT_TRUE(bulk::env_flag_enabled("0x"));
    EXPECT_TRUE(bulk::env_flag_enabled("offline"));
}

TEST(GuardDispatch, FaultSpecParsing) {
    using bulk::KernelKind;
    EXPECT_FALSE(guard::fault_forced(nullptr, KernelKind::Avx2));
    EXPECT_FALSE(guard::fault_forced("", KernelKind::Avx2));
    EXPECT_FALSE(guard::fault_forced("0", KernelKind::Avx2));
    EXPECT_FALSE(guard::fault_forced("off", KernelKind::Avx2));
    for (const char* all : {"all", "1", "simd", "ALL", "Simd", "on", "yes"}) {
        EXPECT_TRUE(guard::fault_forced(all, KernelKind::Ssse3)) << all;
        EXPECT_TRUE(guard::fault_forced(all, KernelKind::Avx2)) << all;
        EXPECT_TRUE(guard::fault_forced(all, KernelKind::Vpclmul)) << all;
        // Scalar is the reference, never screened, never forced.
        EXPECT_FALSE(guard::fault_forced(all, KernelKind::Scalar)) << all;
    }
    EXPECT_TRUE(guard::fault_forced("ssse3", KernelKind::Ssse3));
    EXPECT_FALSE(guard::fault_forced("ssse3", KernelKind::Avx2));
    EXPECT_TRUE(guard::fault_forced("AVX2", KernelKind::Avx2));
    EXPECT_TRUE(guard::fault_forced("avx2,vpclmul", KernelKind::Vpclmul));
    EXPECT_TRUE(guard::fault_forced("avx2,vpclmul", KernelKind::Avx2));
    EXPECT_FALSE(guard::fault_forced("avx2,vpclmul", KernelKind::Ssse3));
    EXPECT_TRUE(guard::fault_forced("gfni", KernelKind::Gfni));
    EXPECT_TRUE(guard::fault_forced("GFNI", KernelKind::Gfni));
    EXPECT_FALSE(guard::fault_forced("gfni", KernelKind::Avx2));
    EXPECT_TRUE(guard::fault_forced("all", KernelKind::Gfni));
    EXPECT_FALSE(guard::fault_forced("scalar", KernelKind::Scalar));
    EXPECT_FALSE(guard::fault_forced("bogus", KernelKind::Avx2));
}

TEST(GuardDispatch, ScalarByteKernelPassesSelfTest) {
    // The scalar kernel is never screened in production, but it must agree
    // with the self-test's independent reference — otherwise the reference
    // itself is wrong.
    const guard::Status s = guard::selftest_byte_kernel(bulk::kByteScalar);
    EXPECT_TRUE(s.ok()) << s.to_string();
}

TEST(GuardDispatch, CompiledKernelsPassSelfTests) {
    const auto& d = bulk::dispatch();
    for (const auto kind : bulk::compiled_byte_kernels()) {
        if (kind == bulk::KernelKind::Scalar ||
            !bulk::kernel_supported(kind, d.cpu)) {
            continue;
        }
        const guard::Status s =
            guard::selftest_byte_kernel(*bulk::byte_kernel(kind));
        EXPECT_TRUE(s.ok()) << s.to_string();
    }
    if (const auto* wk = bulk::vpclmul_word_kernel();
        wk != nullptr && bulk::kernel_supported(bulk::KernelKind::Vpclmul, d.cpu)) {
        const guard::Status s = guard::selftest_word_kernel(*wk);
        EXPECT_TRUE(s.ok()) << s.to_string();
    }
}

TEST(GuardDispatch, ForcedFaultFailsSelfTest) {
    const guard::Status s =
        guard::selftest_byte_kernel(bulk::kByteScalar, /*force_fault=*/true);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.fault, guard::Fault::KernelSelfTest);
    EXPECT_NE(s.detail.find("mismatch"), std::string::npos) << s.detail;
}

TEST(GuardDispatch, ScreenCleanDispatchQuarantinesNothing) {
    const auto r = guard::screen_dispatch(bulk::dispatch(), nullptr);
    EXPECT_TRUE(r.quarantined.empty());
    EXPECT_EQ(r.dispatch.byte, bulk::dispatch().byte);
    EXPECT_EQ(r.dispatch.word, bulk::dispatch().word);
}

TEST(GuardDispatch, ForcedScalarDispatchNeedsNoScreening) {
    const bulk::Dispatch base = bulk::make_dispatch(bulk::detect_cpu(),
                                                    /*force_scalar=*/true);
    const auto r = guard::screen_dispatch(base, "all");
    EXPECT_TRUE(r.quarantined.empty());
    ASSERT_NE(r.dispatch.byte, nullptr);
    EXPECT_EQ(r.dispatch.byte->kind, bulk::KernelKind::Scalar);
    EXPECT_EQ(r.dispatch.word, nullptr);
}

TEST(GuardDispatch, ForcedFaultWalksTheQuarantineLadder) {
    const bulk::Dispatch base = bulk::make_dispatch(bulk::detect_cpu(),
                                                    /*force_scalar=*/false);
    // Quarantine everything: the byte ladder must land on scalar and the
    // word kernel must drop to the window walk, whatever this CPU offers.
    const auto all = guard::screen_dispatch(base, "all");
    ASSERT_NE(all.dispatch.byte, nullptr);
    EXPECT_EQ(all.dispatch.byte->kind, bulk::KernelKind::Scalar);
    EXPECT_EQ(all.dispatch.word, nullptr);
    // Under "all" every rung fails, so the quarantine count is the number
    // of compiled+supported byte rungs from the base selection down
    // (gfni > avx2 > ssse3), plus the word kernel if one was selected.
    std::size_t expected = 0;
    bool reached = false;
    for (const auto kind : {bulk::KernelKind::Gfni, bulk::KernelKind::Avx2,
                            bulk::KernelKind::Ssse3}) {
        reached = reached || kind == base.byte->kind;
        if (reached && bulk::byte_kernel(kind) != nullptr &&
            bulk::kernel_supported(kind, base.cpu)) {
            expected += 1;
        }
    }
    if (base.word != nullptr) {
        expected += 1;
    }
    EXPECT_EQ(all.quarantined.size(), expected);
    for (const auto& q : all.quarantined) {
        EXPECT_TRUE(q.forced);
        EXPECT_FALSE(q.detail.empty());
        EXPECT_FALSE(q.to_string().empty());
        EXPECT_NE(q.kind, bulk::KernelKind::Scalar);
    }

    // Quarantine only the top byte rung: the ladder stops at the next
    // healthy compiled+supported kernel instead of falling to scalar.
    if (base.byte->kind != bulk::KernelKind::Scalar) {
        bulk::KernelKind next_healthy = bulk::KernelKind::Scalar;
        bool past_top = false;
        for (const auto kind : {bulk::KernelKind::Gfni, bulk::KernelKind::Avx2,
                                bulk::KernelKind::Ssse3}) {
            if (kind == base.byte->kind) {
                past_top = true;
                continue;
            }
            if (past_top && bulk::byte_kernel(kind) != nullptr &&
                bulk::kernel_supported(kind, base.cpu)) {
                next_healthy = kind;
                break;
            }
        }
        const auto one =
            guard::screen_dispatch(base, bulk::kernel_name(base.byte->kind));
        // Only the top rung is forced; the next healthy rung and the
        // (unforced) word kernel survive.
        ASSERT_EQ(one.quarantined.size(), 1U);
        EXPECT_EQ(one.quarantined[0].kind, base.byte->kind);
        EXPECT_EQ(one.dispatch.byte->kind, next_healthy);
        EXPECT_EQ(one.dispatch.word, base.word);
    }
}

TEST(GuardDispatch, QuarantineReportMatchesEnvironment) {
    // The process-wide dispatch was screened on first use with whatever
    // GFR_GUARD_FAULT the environment carries (the CI smoke job sets it;
    // the regular test run does not).
    const char* spec = std::getenv(guard::kGuardFaultEnv);
    const auto& report = guard::quarantine_report();
    if (spec == nullptr || *spec == '\0') {
        EXPECT_TRUE(report.empty());
        return;
    }
    // Under a forced-fault spec the report must name every forced kernel
    // the base selection would otherwise have used, and the surviving
    // dispatch must still serve every layout (scalar at worst).
    const auto& d = bulk::dispatch();
    ASSERT_NE(d.byte, nullptr);
    for (const auto& q : report) {
        EXPECT_TRUE(q.forced);
        EXPECT_NE(q.kind, bulk::KernelKind::Scalar);
    }
}

}  // namespace
}  // namespace gfr
