// RegionEngine contract violations: every exception path, with its exact
// message pinned (callers and CI logs grep these), plus the ABFT checksum
// lanes (region_checksum / *_region_checked / verify_region).

#include "bulk/region_engine.h"
#include "field/field_catalog.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gfr {
namespace {

using bulk::KernelKind;
using bulk::RegionEngine;

/// EXPECT_THROW with the exact what() string.
template <typename Fn>
void expect_invalid(Fn&& fn, const std::string& message) {
    try {
        fn();
        ADD_FAILURE() << "expected std::invalid_argument: " << message;
    } catch (const std::invalid_argument& e) {
        EXPECT_EQ(std::string{e.what()}, message);
    }
}

TEST(RegionErrors, LengthMismatches) {
    const field::Field f = field::gf256_paper_field();
    const RegionEngine eng{f.ops()};
    const auto p = eng.prepare(0x53);
    std::vector<std::uint8_t> b3(3), b4(4);
    expect_invalid([&] { eng.mul_region(p, b3, b4); },
                   "RegionEngine::mul_region: length mismatch");
    expect_invalid([&] { eng.addmul_region(p, b3, b4); },
                   "RegionEngine::addmul_region: length mismatch");
    std::vector<std::uint64_t> w3(3), w4(4);
    expect_invalid([&] { eng.mul_region(p, w3, w4); },
                   "RegionEngine::mul_region: length mismatch");
    expect_invalid([&] { eng.addmul_region(p, w3, w4); },
                   "RegionEngine::addmul_region: length mismatch");
    expect_invalid([&] { eng.mul_region_elementwise(w3, w3, w4); },
                   "RegionEngine::mul_region_elementwise: length mismatch");
    // Checked variants route through the same validation.
    std::uint64_t sum = 0;
    expect_invalid([&] { eng.mul_region_checked(p, b3, 0, b4, sum); },
                   "RegionEngine::mul_region: length mismatch");
    expect_invalid([&] { eng.addmul_region_checked(p, w3, 0, w4, sum); },
                   "RegionEngine::addmul_region: length mismatch");
}

TEST(RegionErrors, LayoutDegreeGates) {
    const auto& specs = field::table5_fields();
    const field::Field f64 = specs[1].make();   // (64,23)
    const field::Field f163 = specs[7].make();  // (163,66)
    const RegionEngine eng64{f64.ops()};
    const RegionEngine eng163{f163.ops()};
    const auto p64 = eng64.prepare(7);
    std::vector<std::uint8_t> bytes(8);
    expect_invalid([&] { eng64.mul_region(p64, bytes, bytes); },
                   "RegionEngine: byte layout requires m <= 8");
    const auto p163 = eng163.prepare(gf2::Poly::from_exponents({5, 0}));
    std::vector<std::uint64_t> words(6);
    expect_invalid([&] { eng163.mul_region(p163, words, words); },
                   "RegionEngine: u64 layout requires m <= 64; use the _mw calls");
    expect_invalid(
        [&] { eng163.mul_region_elementwise(words, words, words); },
        "RegionEngine::mul_region_elementwise: requires m <= 64");
    expect_invalid(
        [&] { static_cast<void>(eng163.prepare(std::uint64_t{3})); },
        "RegionEngine::prepare(uint64): field needs m <= 64; pass a Poly");
}

TEST(RegionErrors, MultiWordSpanShape) {
    const field::Field f = field::table5_fields()[7].make();  // m = 163
    const RegionEngine eng{f.ops()};
    const auto p = eng.prepare(gf2::Poly::from_exponents({1, 0}));
    const std::size_t mw = f.ops().elem_words();
    std::vector<std::uint64_t> a(3 * mw), b(2 * mw), ragged(3 * mw - 1);
    expect_invalid(
        [&] { eng.mul_region_mw(p, a, b); },
        "RegionEngine: multi-word spans must be equal multiples of "
        "elem_words()");
    expect_invalid(
        [&] { eng.addmul_region_mw(p, ragged, ragged); },
        "RegionEngine: multi-word spans must be equal multiples of "
        "elem_words()");
}

TEST(RegionErrors, PreparedProvenance) {
    const field::Field f8 = field::gf256_paper_field();
    const field::Field other8 = field::table5_fields()[0].make();
    const RegionEngine eng{f8.ops()};
    const RegionEngine other{other8.ops()};
    const auto foreign = other.prepare(0x21);
    std::vector<std::uint8_t> bytes(4);
    // Same degree, different FieldOps: caught by pointer identity.
    expect_invalid([&] { eng.mul_region(foreign, bytes, bytes); },
                   "RegionEngine: Prepared was built for a different field");
    // A single-word Prepared carries no multi-word constant: the _mw call
    // on the same engine rejects it.
    const field::Field f64 = field::table5_fields()[1].make();
    const RegionEngine eng64{f64.ops()};
    const auto p64 = eng64.prepare(9);
    std::vector<std::uint64_t> w(2);
    expect_invalid([&] { eng64.mul_region_mw(p64, w, w); },
                   "RegionEngine: Prepared constant does not match this field");
}

TEST(RegionErrors, PreparedKernelSelectionMismatch) {
    // A Prepared built by a SIMD-byte engine carries nibble tables but no
    // window tables; handing it to a scalar engine's u64 path must throw.
    // Both directions need a real SIMD kernel, so gate on this build+CPU.
    const field::Field f8 = field::gf256_paper_field();
    const auto& d = bulk::dispatch();
    const bool have_simd_byte =
        d.byte != nullptr && d.byte->kind != KernelKind::Scalar;
    if (have_simd_byte) {
        const RegionEngine simd{f8.ops(), d.byte->kind};
        const RegionEngine scalar{f8.ops(), KernelKind::Scalar};
        const auto p = simd.prepare(0x35);
        std::vector<std::uint64_t> w(4);
        expect_invalid(
            [&] { scalar.mul_region(p, w, w); },
            "RegionEngine: Prepared lacks window tables for the scalar path "
            "(built by an engine with a different kernel selection)");
    }
    const field::Field f64 = field::table5_fields()[1].make();
    if (d.word != nullptr && f64.ops().fold_bound() <= bulk::kMaxWideFolds) {
        const RegionEngine wide{f64.ops(), KernelKind::Vpclmul};
        const RegionEngine scalar{f64.ops(), KernelKind::Scalar};
        const auto p = scalar.prepare(11);
        std::vector<std::uint64_t> w(4);
        expect_invalid(
            [&] { wide.mul_region(p, w, w); },
            "RegionEngine: Prepared lacks wide-kernel parameters (built by "
            "an engine with a different kernel selection)");
    }
}

TEST(RegionErrors, ForcedKernelConstruction) {
    const field::Field f64 = field::table5_fields()[1].make();
    const field::Field f163 = field::table5_fields()[7].make();
    const field::Field f8 = field::gf256_paper_field();
    // Degree gates fire before compiled/supported checks, so these two are
    // platform-independent.
    expect_invalid(
        [&] { RegionEngine eng{f64.ops(), KernelKind::Ssse3}; },
        "RegionEngine: byte kernels require m <= 8");
    expect_invalid(
        [&] { RegionEngine eng{f163.ops(), KernelKind::Vpclmul}; },
        "RegionEngine: word kernels require m <= 64");
    expect_invalid(
        [&] { RegionEngine eng{f8.ops(), static_cast<KernelKind>(99)}; },
        "RegionEngine: unknown kernel kind");
    // Compiled/supported outcomes depend on the build and CPU; assert the
    // exact message for whichever branch applies here.
    const auto& d = bulk::dispatch();
    if (bulk::ssse3_byte_kernel() == nullptr) {
        expect_invalid(
            [&] { RegionEngine eng{f8.ops(), KernelKind::Ssse3}; },
            "RegionEngine: kernel not compiled into this binary");
    } else if (!bulk::kernel_supported(KernelKind::Ssse3, d.cpu)) {
        expect_invalid(
            [&] { RegionEngine eng{f8.ops(), KernelKind::Ssse3}; },
            "RegionEngine: kernel not supported by this CPU");
    } else {
        EXPECT_NO_THROW(RegionEngine eng(f8.ops(), KernelKind::Ssse3));
    }
}

TEST(RegionErrors, PartialOverlapRejectedOnEveryLayout) {
    // The kernels stream vector-width blocks, so partially-overlapping
    // src/dst would read a mix of stale and fresh symbols; exact aliasing
    // (in place) is the one overlap every kernel guarantees.
    const std::string mul_msg =
        "RegionEngine::mul_region: src and dst overlap partially (dst must "
        "alias src exactly or not at all)";
    const std::string addmul_msg =
        "RegionEngine::addmul_region: src and dst overlap partially (dst "
        "must alias src exactly or not at all)";

    // Byte layout.
    {
        const field::Field f = field::gf256_paper_field();
        const RegionEngine eng{f.ops()};
        const auto p = eng.prepare(0x37);
        std::vector<std::uint8_t> buf(64, 1);
        const std::span<std::uint8_t> whole{buf};
        // In place: allowed, and equal to the out-of-place result.
        std::vector<std::uint8_t> ref(64, 0);
        eng.mul_region(p, whole, ref);
        eng.mul_region(p, whole, whole);
        EXPECT_EQ(buf, ref);
        // Overlapping forward (dst ahead of src) and backward both throw.
        expect_invalid(
            [&] { eng.mul_region(p, whole.subspan(0, 32), whole.subspan(1, 32)); },
            mul_msg);
        expect_invalid(
            [&] { eng.mul_region(p, whole.subspan(1, 32), whole.subspan(0, 32)); },
            mul_msg);
        expect_invalid(
            [&] {
                eng.addmul_region(p, whole.subspan(0, 32), whole.subspan(31, 32));
            },
            addmul_msg);
        expect_invalid(
            [&] {
                eng.addmul_region(p, whole.subspan(31, 32), whole.subspan(0, 32));
            },
            addmul_msg);
        // Checked variants route through the same gate.
        std::uint64_t sum = 0;
        expect_invalid(
            [&] {
                eng.mul_region_checked(p, whole.subspan(0, 32), 0,
                                       whole.subspan(1, 32), sum);
            },
            mul_msg);
    }

    // u16 layout.
    {
        const field::Field f16{gf2::Poly::from_exponents({16, 12, 3, 1, 0})};
        const RegionEngine eng{f16.ops()};
        const auto p = eng.prepare(0x1234);
        std::vector<std::uint16_t> buf(32, 7);
        const std::span<std::uint16_t> whole{buf};
        std::vector<std::uint16_t> ref(32, 0);
        eng.mul_region(p, whole, ref);
        eng.mul_region(p, whole, whole);
        EXPECT_EQ(buf, ref);
        expect_invalid(
            [&] { eng.mul_region(p, whole.subspan(0, 16), whole.subspan(1, 16)); },
            mul_msg);
        expect_invalid(
            [&] {
                eng.addmul_region(p, whole.subspan(15, 16), whole.subspan(0, 16));
            },
            addmul_msg);
    }

    // u64 layout.
    {
        const field::Field f64 = field::table5_fields()[1].make();  // (64,23)
        const RegionEngine eng{f64.ops()};
        const auto p = eng.prepare(0xBEEF);
        std::vector<std::uint64_t> buf(32, 3);
        const std::span<std::uint64_t> whole{buf};
        std::vector<std::uint64_t> ref(32, 0);
        eng.mul_region(p, whole, ref);
        eng.mul_region(p, whole, whole);
        EXPECT_EQ(buf, ref);
        expect_invalid(
            [&] { eng.mul_region(p, whole.subspan(0, 16), whole.subspan(1, 16)); },
            mul_msg);
        expect_invalid(
            [&] { eng.mul_region(p, whole.subspan(1, 16), whole.subspan(0, 16)); },
            mul_msg);
        expect_invalid(
            [&] {
                eng.addmul_region(p, whole.subspan(0, 16), whole.subspan(15, 16));
            },
            addmul_msg);
        // Element-wise: out may alias neither input partially.
        expect_invalid(
            [&] {
                eng.mul_region_elementwise(whole.subspan(0, 16),
                                           whole.subspan(16, 16),
                                           whole.subspan(1, 16));
            },
            "RegionEngine::mul_region_elementwise: src and dst overlap "
            "partially (dst must alias src exactly or not at all)");
    }

    // Multi-word layout.
    {
        const field::Field f163 = field::table5_fields()[7].make();
        const RegionEngine eng{f163.ops()};
        const auto p = eng.prepare(gf2::Poly::from_exponents({2, 0}));
        const std::size_t mw = f163.ops().elem_words();
        std::vector<std::uint64_t> buf(4 * mw, 1);
        const std::span<std::uint64_t> whole{buf};
        expect_invalid(
            [&] {
                eng.mul_region_mw(p, whole.subspan(0, 2 * mw),
                                  whole.subspan(mw, 2 * mw));
            },
            "RegionEngine::mul_region_mw: src and dst overlap partially (dst "
            "must alias src exactly or not at all)");
        expect_invalid(
            [&] {
                eng.addmul_region_mw(p, whole.subspan(mw, 2 * mw),
                                     whole.subspan(0, 2 * mw));
            },
            "RegionEngine::addmul_region_mw: src and dst overlap partially "
            "(dst must alias src exactly or not at all)");
    }
}

TEST(RegionErrors, U16LayoutGateAndProvenance) {
    // The dense u16 layout exists only for 8 < m <= 16; byte-capable
    // fields must keep using the byte layout (their prepare never builds
    // split16 tables), and larger fields overflow a u16 symbol.
    const std::string gate_msg =
        "RegionEngine: u16 layout requires 8 < m <= 16 (byte-capable fields "
        "use the byte layout)";
    std::vector<std::uint16_t> buf(8, 1);
    {
        const field::Field f8 = field::gf256_paper_field();
        const RegionEngine eng{f8.ops()};
        const auto p = eng.prepare(0x2A);
        expect_invalid([&] { eng.mul_region(p, buf, buf); }, gate_msg);
        expect_invalid([&] { eng.addmul_region(p, buf, buf); }, gate_msg);
        expect_invalid([&] { eng.scale_region(p, buf); }, gate_msg);
    }
    {
        const field::Field f64 = field::table5_fields()[1].make();  // (64,23)
        const RegionEngine eng{f64.ops()};
        const auto p = eng.prepare(5);
        expect_invalid([&] { eng.mul_region(p, buf, buf); }, gate_msg);
    }
    // Prepared provenance across u16-capable fields: same layout, different
    // modulus — the split tables would silently produce the wrong field's
    // products, so pointer identity must throw first.
    const field::Field f16{gf2::Poly::from_exponents({16, 12, 3, 1, 0})};
    const field::Field f13{gf2::Poly::from_exponents({13, 4, 3, 1, 0})};
    const RegionEngine eng16{f16.ops()};
    const RegionEngine eng13{f13.ops()};
    const auto p13 = eng13.prepare(0x7FF);
    expect_invalid([&] { eng16.mul_region(p13, buf, buf); },
                   "RegionEngine: Prepared was built for a different field");
}

// --- ABFT checksum lanes -----------------------------------------------------

TEST(RegionChecked, ChecksumTracksStreamU16Layout) {
    const field::Field f{gf2::Poly::from_exponents({16, 12, 3, 1, 0})};
    const RegionEngine eng{f.ops()};
    const auto p = eng.prepare(0x1D4B);
    std::vector<std::uint16_t> src(321), dst(321, 0);
    for (std::size_t i = 0; i < src.size(); ++i) {
        src[i] = static_cast<std::uint16_t>(0x9E37 * (i + 1));
    }
    const std::uint64_t src_sum =
        eng.region_checksum(std::span<const std::uint16_t>{src});
    std::uint64_t dst_sum = 0;
    eng.mul_region_checked(p, src, src_sum, dst, dst_sum);
    EXPECT_TRUE(
        eng.verify_region(std::span<const std::uint16_t>{dst}, dst_sum).ok());
    eng.addmul_region_checked(p, src, src_sum, dst, dst_sum);
    // dst = c*src ^ c*src = 0 region-wise; the checksum lane agrees.
    const auto ok = eng.verify_region(std::span<const std::uint16_t>{dst}, dst_sum);
    EXPECT_TRUE(ok.ok()) << ok.to_string();
    EXPECT_EQ(dst_sum, 0U);
    dst[100] ^= 0x800;
    const auto bad =
        eng.verify_region(std::span<const std::uint16_t>{dst}, dst_sum);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.fault, guard::Fault::RegionChecksum);
    EXPECT_NE(bad.detail.find("321 u16 symbols"), std::string::npos)
        << bad.detail;
}

TEST(RegionChecked, ChecksumTracksStreamByteLayout) {
    const field::Field f = field::gf256_paper_field();
    const RegionEngine eng{f.ops()};
    const auto p = eng.prepare(0x1D);
    std::vector<std::uint8_t> src(513), dst(513, 0);
    for (std::size_t i = 0; i < src.size(); ++i) {
        src[i] = static_cast<std::uint8_t>(37 * i + 11);
    }
    const std::uint64_t src_sum = eng.region_checksum(std::span<const std::uint8_t>{src});
    std::uint64_t dst_sum = 0;
    eng.mul_region_checked(p, src, src_sum, dst, dst_sum);
    EXPECT_TRUE(eng.verify_region(std::span<const std::uint8_t>{dst}, dst_sum).ok());
    // Accumulate twice more; the lane follows.
    eng.addmul_region_checked(p, src, src_sum, dst, dst_sum);
    eng.addmul_region_checked(p, src, src_sum, dst, dst_sum);
    const auto ok = eng.verify_region(std::span<const std::uint8_t>{dst}, dst_sum);
    EXPECT_TRUE(ok.ok()) << ok.to_string();
    // A single flipped bit anywhere in the region is detected.
    dst[271] ^= 0x40;
    const auto bad = eng.verify_region(std::span<const std::uint8_t>{dst}, dst_sum);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.fault, guard::Fault::RegionChecksum);
    EXPECT_NE(bad.detail.find("513 byte symbols"), std::string::npos)
        << bad.detail;
}

TEST(RegionChecked, ChecksumTracksStreamWordLayout) {
    const field::Field f = field::table5_fields()[1].make();  // (64,23)
    const RegionEngine eng{f.ops()};
    const auto p = eng.prepare(0x123456789ULL);
    std::vector<std::uint64_t> src(97), dst(97, 0);
    for (std::size_t i = 0; i < src.size(); ++i) {
        src[i] = 0x9E3779B97F4A7C15ULL * (i + 1);
    }
    const std::uint64_t src_sum =
        eng.region_checksum(std::span<const std::uint64_t>{src});
    std::uint64_t dst_sum = 0;
    eng.mul_region_checked(p, src, src_sum, dst, dst_sum);
    eng.addmul_region_checked(p, src, src_sum, dst, dst_sum);
    // dst = c*src ^ c*src = 0 region-wise; the checksum lane agrees.
    const auto ok = eng.verify_region(std::span<const std::uint64_t>{dst}, dst_sum);
    EXPECT_TRUE(ok.ok()) << ok.to_string();
    EXPECT_EQ(dst_sum, 0U);
    dst[42] ^= 1;
    const auto bad =
        eng.verify_region(std::span<const std::uint64_t>{dst}, dst_sum);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.fault, guard::Fault::RegionChecksum);
    EXPECT_NE(bad.detail.find("97 u64 symbols"), std::string::npos) << bad.detail;
}

TEST(RegionChecked, ChecksumIndependentOfKernelSelection) {
    // The checksum lane uses the scalar FieldOps::mul path regardless of
    // which kernel moves the data: forced-scalar and dispatched engines
    // must agree on data AND checksum.
    const field::Field f = field::gf256_paper_field();
    const RegionEngine fast{f.ops()};
    const RegionEngine slow{f.ops(), KernelKind::Scalar};
    const auto pf = fast.prepare(0xA7);
    const auto ps = slow.prepare(0xA7);
    std::vector<std::uint8_t> src(256), d1(256, 0), d2(256, 0);
    for (std::size_t i = 0; i < src.size(); ++i) {
        src[i] = static_cast<std::uint8_t>(i);
    }
    const std::uint64_t src_sum =
        fast.region_checksum(std::span<const std::uint8_t>{src});
    std::uint64_t s1 = 0, s2 = 0;
    fast.mul_region_checked(pf, src, src_sum, d1, s1);
    slow.mul_region_checked(ps, src, src_sum, d2, s2);
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(s1, s2);
    EXPECT_TRUE(fast.verify_region(std::span<const std::uint8_t>{d1}, s1).ok());
}

}  // namespace
}  // namespace gfr
