// The fixed-modulus fast engine (FieldOps) cross-checked bit-exactly against
// the reference arithmetic: exhaustively on every small field, randomised on
// the NIST-size fields, region paths against scalar loops, plus allocation
// accounting for the zero-heap-traffic guarantees.

#include "field/field_ops.h"

#include "field/field_catalog.h"
#include "field/gf2m.h"
#include "gf2/pentanomial.h"
#include "testutil.h"  // PRNG, generators, Table V iteration, counting allocator

#include <gtest/gtest.h>

namespace gfr::field {
namespace {

using gf2::Poly;
using testutil::allocation_count;
using testutil::Xorshift64Star;

// --- Exhaustive cross-checks on every field with m <= 10 --------------------

class FieldOpsExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(FieldOpsExhaustive, MulMatchesReferenceForAllPairs) {
    const int m = GetParam();
    const auto modulus = gf2::preferred_low_weight_modulus(m);
    ASSERT_TRUE(modulus.has_value()) << "no low-weight modulus for m=" << m;
    const Field f{*modulus};
    const auto& ops = f.ops();
    const std::uint64_t order = std::uint64_t{1} << m;
    for (std::uint64_t a = 0; a < order; ++a) {
        const Poly pa = f.from_bits(a);
        for (std::uint64_t b = a; b < order; ++b) {
            const Poly pb = f.from_bits(b);
            const std::uint64_t want = f.to_bits(f.mul_reference(pa, pb));
            ASSERT_EQ(ops.mul(a, b), want) << "a=" << a << " b=" << b << " m=" << m;
            ASSERT_EQ(f.to_bits(f.mul(pa, pb)), want) << "a=" << a << " b=" << b;
        }
    }
}

TEST_P(FieldOpsExhaustive, SqrAndInvMatchReference) {
    const int m = GetParam();
    const Field f{*gf2::preferred_low_weight_modulus(m)};
    const auto& ops = f.ops();
    const std::uint64_t order = std::uint64_t{1} << m;
    for (std::uint64_t a = 0; a < order; ++a) {
        const Poly pa = f.from_bits(a);
        EXPECT_EQ(ops.sqr(a), f.to_bits(f.sqr_reference(pa)));
        if (a != 0) {
            const std::uint64_t ia = ops.inv(a);
            EXPECT_EQ(ops.mul(a, ia), 1U) << "a=" << a;
            EXPECT_EQ(ia, f.to_bits(f.inv_euclid(pa))) << "a=" << a;  // independent path
        }
    }
    EXPECT_THROW(static_cast<void>(ops.inv(0)), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(SmallFields, FieldOpsExhaustive,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10),
                         [](const auto& info) {
                             return "m" + std::to_string(info.param);
                         });

// --- Randomised cross-checks on wide single-word fields ----------------------
// 10 < m <= 64 is too big to enumerate but exercises distinct reduction code:
// the generic masked fold for 11..63 and the dedicated m == 64 branch.

class FieldOpsSingleWordRandomized : public ::testing::TestWithParam<int> {};

TEST_P(FieldOpsSingleWordRandomized, EngineMatchesReference) {
    const int m = GetParam();
    const auto modulus = (m == 64) ? gf2::TypeIIPentanomial{64, 23}.poly()
                                   : *gf2::preferred_low_weight_modulus(m);
    const Field f{modulus};
    const auto& ops = f.ops();
    ASSERT_TRUE(ops.single_word());
    testutil::Xorshift64Star rng{static_cast<std::uint64_t>(m) * 0xBEEF};
    for (int trial = 0; trial < 200; ++trial) {
        const Poly pa = testutil::random_element(f, rng);
        const Poly pb = testutil::random_element(f, rng);
        const std::uint64_t a = f.to_bits(pa);
        const std::uint64_t b = f.to_bits(pb);
        ASSERT_EQ(ops.mul(a, b), f.to_bits(f.mul_reference(pa, pb)))
            << "a=" << a << " b=" << b << " m=" << m;
        ASSERT_EQ(ops.sqr(a), f.to_bits(f.sqr_reference(pa)));
        if (a != 0) {
            ASSERT_EQ(ops.inv(a), f.to_bits(f.inv_euclid(pa))) << "a=" << a;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(WideSingleWordFields, FieldOpsSingleWordRandomized,
                         ::testing::Values(11, 32, 63, 64),
                         [](const auto& info) {
                             return "m" + std::to_string(info.param);
                         });

// --- Randomised cross-checks on NIST-size fields ----------------------------

class FieldOpsRandomized : public ::testing::TestWithParam<Poly> {};

TEST_P(FieldOpsRandomized, EngineMatchesReference) {
    const Field f{GetParam()};
    testutil::Xorshift64Star rng{static_cast<std::uint64_t>(f.degree()) * 0xC0FFEE};
    for (int trial = 0; trial < 100; ++trial) {
        const Poly a = testutil::random_element(f, rng);
        const Poly b = testutil::random_element(f, rng);
        EXPECT_EQ(f.mul(a, b), f.mul_reference(a, b));
        EXPECT_EQ(f.sqr(a), f.sqr_reference(a));
        EXPECT_EQ(f.reduce(a * b), f.mul(a, b));
    }
    for (int trial = 0; trial < 5; ++trial) {
        Poly a = testutil::random_element(f, rng);
        if (a.is_zero()) {
            a = f.one();
        }
        EXPECT_EQ(f.mul(a, f.inv_fermat(a)), f.one());
        EXPECT_EQ(f.inv_fermat(a), f.inv(a));
    }
}

INSTANTIATE_TEST_SUITE_P(
    NistFields, FieldOpsRandomized,
    ::testing::Values(gf2::TypeIIPentanomial{163, 66}.poly(),   // NIST B-163
                      Poly::from_exponents({233, 74, 0}),       // NIST B-233
                      Poly::from_exponents({571, 10, 5, 2, 0})  // NIST B-571
                      ),
    [](const auto& info) { return "m" + std::to_string(info.param.degree()); });

// --- Every Table V catalog field: engine vs reference ------------------------
// verify_multiplier's oracle is the engine, so every modulus shape it can see
// must be pinned to the reference arithmetic here.

TEST(FieldOpsCatalog, EngineMatchesReferenceOnAllTable5Fields) {
    for (const auto& spec : table5_fields()) {
        const Field f = spec.make();
        testutil::Xorshift64Star rng{static_cast<std::uint64_t>(spec.m * 131 + spec.n)};
        for (int trial = 0; trial < 50; ++trial) {
            const Poly a = testutil::random_element(f, rng);
            const Poly b = testutil::random_element(f, rng);
            ASSERT_EQ(f.mul(a, b), f.mul_reference(a, b)) << spec.label();
            ASSERT_EQ(f.sqr(a), f.sqr_reference(a)) << spec.label();
        }
    }
}

// --- Non-canonical inputs take the reducing path, as the seed did ------------

TEST(FieldOpsNonCanonical, UnreducedInputsAreReducedNotTruncated) {
    const Field f = Field::type2(8, 2);
    // One-word but above degree m: the seed's (a*b) % modulus reduced these.
    const Poly high = Poly::from_exponents({8});  // y^8 = y^4+y^3+y^2+1 mod f
    const Poly c = f.from_bits(0x53);
    EXPECT_EQ(f.mul(c, high), f.mul_reference(c, high));
    EXPECT_EQ(f.sqr(high), f.sqr_reference(high));
    // Two words: exceeds the single-word fast path entirely.
    const Poly wide = Poly::from_exponents({70, 8, 1});
    EXPECT_EQ(f.mul(c, wide), f.mul_reference(c, wide));
    // Region scale with non-canonical entries and aliased constant.
    std::vector<Poly> data{high, wide, c, f.from_bits(0xAB)};
    auto expected = data;
    for (auto& e : expected) {
        e = f.mul_reference(data[2], e);  // data[2] == c
    }
    f.mul_region_const(data[2], data);  // constant aliases an element
    EXPECT_EQ(data, expected);
}

// --- Region paths vs scalar loops -------------------------------------------

TEST(FieldOpsRegion, ConstMultiplierMatchesScalarLoop) {
    const Field f = Field::type2(8, 2);
    const auto& ops = f.ops();
    testutil::Xorshift64Star rng{808};
    for (int trial = 0; trial < 8; ++trial) {
        const std::uint64_t c = rng() & 0xFF;
        const ConstMultiplier cm{ops, c};
        for (std::uint64_t a = 0; a < 256; ++a) {
            EXPECT_EQ(cm.mul(a), ops.mul(c, a)) << "c=" << c << " a=" << a;
        }
    }
}

TEST(FieldOpsRegion, RegionOpsMatchScalarOnWideSingleWordField) {
    const Field f = Field::type2(64, 23);
    const auto& ops = f.ops();
    testutil::Xorshift64Star rng{6423};
    std::vector<std::uint64_t> a(257);
    std::vector<std::uint64_t> b(257);
    std::vector<std::uint64_t> out(257);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = rng();
        b[i] = rng();
    }
    ops.mul_region(a, b, out);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(out[i], ops.mul(a[i], b[i])) << "i=" << i;
    }

    const std::uint64_t c = rng();
    auto scaled = a;
    ops.mul_region_const(c, scaled);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(scaled[i], ops.mul(c, a[i])) << "i=" << i;
    }
}

TEST(FieldOpsRegion, ElementRegionMatchesScalarOnMultiWordField) {
    const Field f = Field::type2(163, 66);
    testutil::Xorshift64Star rng{163 * 7};
    const Poly c = testutil::random_element(f, rng);
    std::vector<Poly> data(33);
    for (auto& e : data) {
        e = testutil::random_element(f, rng);
    }
    auto scaled = data;
    f.mul_region_const(c, scaled);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(scaled[i], f.mul(c, data[i])) << "i=" << i;
    }
}

TEST(FieldOpsRegion, MulRegionRejectsLengthMismatch) {
    const Field f = Field::type2(8, 2);
    std::vector<std::uint64_t> a(4);
    std::vector<std::uint64_t> b(3);
    std::vector<std::uint64_t> out(4);
    EXPECT_THROW(f.ops().mul_region(a, b, out), std::invalid_argument);
    const ConstMultiplier cm{f.ops(), 3};
    EXPECT_THROW(cm.mul_region(a, std::span<std::uint64_t>{out.data(), 3}),
                 std::invalid_argument);
}

TEST(FieldOpsRegion, ConstMultiplierRequiresSingleWordField) {
    const Field f = Field::type2(163, 66);
    EXPECT_THROW((ConstMultiplier{f.ops(), 5}), std::invalid_argument);
}

// --- Allocation accounting ---------------------------------------------------

TEST(FieldOpsAllocations, SingleWordPathIsAllocationFree) {
    const Field f = Field::type2(8, 2);
    const auto& ops = f.ops();
    std::uint64_t acc = 1;
    acc = ops.mul(acc, 7);  // warm nothing — the path owns no buffers at all
    const long before = allocation_count();
    for (int i = 0; i < 10000; ++i) {
        acc = ops.mul(acc, 7);
        acc = ops.sqr(acc ^ 1);
        acc = ops.inv(acc | 1);
    }
    EXPECT_EQ(allocation_count(), before) << "u64 path touched the heap";
    EXPECT_NE(acc, 0U);  // keep the loop observable
}

TEST(FieldOpsAllocations, ConstMultiplierRegionIsAllocationFree) {
    const Field f = Field::type2(64, 23);
    const ConstMultiplier cm{f.ops(), 0xDEADBEEF};
    std::vector<std::uint64_t> data(1024, 0x123456789ABCDEFULL);
    const long before = allocation_count();
    for (int pass = 0; pass < 16; ++pass) {
        cm.mul_region(data);
    }
    EXPECT_EQ(allocation_count(), before) << "region scaling touched the heap";
}

TEST(FieldOpsAllocations, MultiWordSteadyStateIsAllocationFree) {
    const Field f = Field::type2(163, 66);
    auto& ops = f.ops();
    testutil::Xorshift64Star rng{163};
    const Poly a = testutil::random_element(f, rng);
    const Poly b = testutil::random_element(f, rng);
    Poly prod;
    Poly square;
    ops.mul(a, b, prod);  // warm the product/excess scratch and output storage
    ops.sqr(prod, square);
    const long before = allocation_count();
    for (int i = 0; i < 1000; ++i) {
        ops.mul(a, b, prod);
        ops.sqr(prod, square);
    }
    EXPECT_EQ(allocation_count(), before) << "multi-word steady state allocated";
}

// --- Allocation-free Poly kernels -------------------------------------------

TEST(PolyKernels, AddShiftedMatchesShiftPlusAdd) {
    testutil::Xorshift64Star rng{11};
    for (int trial = 0; trial < 50; ++trial) {
        Poly a;
        Poly b;
        for (int i = 0; i < 200; ++i) {
            a.set_coeff(i, (rng() & 1U) != 0);
            b.set_coeff(i, (rng() & 1U) != 0);
        }
        const int shift = static_cast<int>(rng() % 130);
        Poly in_place = a;
        in_place.add_shifted(b, shift);
        EXPECT_EQ(in_place, a + (b << shift)) << "shift=" << shift;
    }
}

TEST(PolyKernels, MulIntoAndSquareIntoMatchOperators) {
    testutil::Xorshift64Star rng{22};
    Poly out;
    for (int trial = 0; trial < 50; ++trial) {
        Poly a;
        Poly b;
        for (int i = 0; i < 150; ++i) {
            a.set_coeff(i, (rng() & 1U) != 0);
            b.set_coeff(i, (rng() & 1U) != 0);
        }
        Poly::mul_into(a, b, out);
        EXPECT_EQ(out, a * b);
        Poly::square_into(a, out);
        EXPECT_EQ(out, a.square());
    }
}

TEST(PolyKernels, ShrIntoTruncateAssignWord) {
    const Poly p = Poly::from_exponents({130, 70, 64, 3, 0});
    Poly out;
    Poly::shr_into(p, 64, out);
    EXPECT_EQ(out, p >> 64);
    Poly q = p;
    q.truncate(70);
    EXPECT_EQ(q, Poly::from_exponents({64, 3, 0}));
    q.truncate(0);
    EXPECT_TRUE(q.is_zero());
    q.assign_word(0x1D);
    EXPECT_EQ(q, Poly::from_exponents({4, 3, 2, 0}));
    q.assign_word(0);
    EXPECT_TRUE(q.is_zero());
    q.assign_words(p.words());
    EXPECT_EQ(q, p);
}

TEST(PolyKernels, DivmodInplaceMatchesDivmod) {
    testutil::Xorshift64Star rng{33};
    for (int trial = 0; trial < 50; ++trial) {
        Poly num;
        Poly den;
        for (int i = 0; i < 300; ++i) {
            num.set_coeff(i, (rng() & 1U) != 0);
        }
        for (int i = 0; i < 90; ++i) {
            den.set_coeff(i, (rng() & 1U) != 0);
        }
        if (den.is_zero()) {
            den = Poly::one();
        }
        const auto [q, r] = Poly::divmod(num, den);
        Poly rem = num;
        Poly quot;
        Poly::divmod_inplace(rem, den, &quot);
        EXPECT_EQ(rem, r);
        EXPECT_EQ(quot, q);
        Poly rem_only = num;
        Poly::divmod_inplace(rem_only, den);
        EXPECT_EQ(rem_only, r);
        EXPECT_EQ(den * q + r, num);  // division identity
    }
}

}  // namespace
}  // namespace gfr::field
