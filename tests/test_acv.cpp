// Algebraic verification tier: backward rewriting proves every multiplier
// family for every Table V field with zero simulation, synthesizes real
// counterexamples for faulty netlists, keeps its verdict bit-identical at
// any thread count, and plugs into the verifier and optimizer seams.

#include "acv/acv.h"

#include "field/field_catalog.h"
#include "guard/parity_ced.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "netlist/simulate.h"
#include "opt/opt.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

namespace gfr::acv {
namespace {

netlist::Netlist faulty_gf256_netlist(const field::Field& fld) {
    const auto good = mult::build_multiplier(mult::Method::Imana2012, fld);
    // Flip one reachable XOR to AND: a classic single-gate transcription
    // fault (also the mutation tier's bread and butter).
    bool flipped = false;
    return testutil::clone_netlist(
        good, [&](netlist::NodeId, netlist::GateKind& kind, netlist::NodeId&,
                  netlist::NodeId&) {
            if (!flipped && kind == netlist::GateKind::Xor2) {
                kind = netlist::GateKind::And2;
                flipped = true;
            }
        });
}

TEST(AcvProve, ProvesEveryFamilyOnPaperField) {
    const field::Field fld = field::gf256_paper_field();
    for (const auto& info : mult::all_methods()) {
        const auto nl = mult::build_multiplier(info.method, fld);
        ProofStats stats;
        const auto failure = prove_multiplier(nl, fld, {}, &stats);
        EXPECT_FALSE(failure.has_value())
            << info.display << ": " << failure->to_string();
        EXPECT_EQ(stats.columns, 8);
        // On success the extracted ANF IS the spec signature.
        EXPECT_EQ(stats.netlist_monomials, stats.spec_monomials);
        EXPECT_GT(stats.expansion_events, 0U);
    }
}

TEST(AcvProve, ProvesAllTableVFlatCells) {
    testutil::for_each_table5_field([&](const field::FieldSpec& spec,
                                        const field::Field& fld) {
        for (const auto& info : mult::all_methods()) {
            if (!info.in_table5) {
                continue;
            }
            const auto nl = mult::build_multiplier(info.method, fld);
            const auto failure = prove_multiplier(nl, fld);
            EXPECT_FALSE(failure.has_value())
                << spec.label() << " " << info.display << ": "
                << failure->to_string();
        }
        const auto literal = mult::build_multiplier(
            mult::Method::Date2018Flat, fld, mult::Elaboration::Literal);
        EXPECT_FALSE(prove_multiplier(literal, fld).has_value())
            << spec.label() << " date2018-raw";
    });
}

TEST(AcvProve, ProvesOptimizedNetlists) {
    const field::Field gf256 = field::gf256_paper_field();
    for (const auto& info : mult::all_methods()) {
        const auto nl = mult::build_multiplier(info.method, gf256);
        const auto optimized = opt::optimize(nl);
        EXPECT_FALSE(prove_multiplier(optimized.netlist, gf256).has_value())
            << info.display << " (optimized)";
    }
    const field::Field gf64 = field::Field::type2(64, 23);
    const auto literal = mult::build_multiplier(
        mult::Method::Date2018Flat, gf64, mult::Elaboration::Literal);
    const auto optimized = opt::optimize(literal);
    EXPECT_FALSE(prove_multiplier(optimized.netlist, gf64).has_value());
}

TEST(AcvProve, ProvesGuardedNetlistWithCheckerExcluded) {
    // CED-guarded netlists carry extra ced_err*/ced_alarm outputs, which the
    // simulation verifier rejects outright; the algebraic prover resolves
    // ports by name and simply never expands the checker lanes.
    for (const int m : {8, 64}) {
        const field::Field fld = m == 8 ? field::gf256_paper_field()
                                        : field::Field::type2(64, 23);
        auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
        guard::add_parity_ced(nl, fld);
        ASSERT_GT(nl.outputs().size(), static_cast<std::size_t>(m));
        EXPECT_THROW(static_cast<void>(mult::verify_multiplier(nl, fld)),
                     std::invalid_argument);
        EXPECT_FALSE(prove_multiplier(nl, fld).has_value());
        mult::VerifyOptions algebraic;
        algebraic.mode = mult::VerifyMode::Algebraic;
        EXPECT_FALSE(mult::verify_multiplier(nl, fld, algebraic).has_value());
    }
}

TEST(AcvProve, CatchesInjectedFaultWithValidWitness) {
    const field::Field fld = field::gf256_paper_field();
    const auto bad = faulty_gf256_netlist(fld);
    const auto failure = prove_multiplier(bad, fld);
    ASSERT_TRUE(failure.has_value());
    EXPECT_FALSE(failure->blowup);
    EXPECT_GT(failure->residual_monomials, 0U);

    // The witness was SYNTHESIZED from a residual monomial, never simulated.
    // Check it against both ground truths: the netlist disagrees with the
    // field engine on exactly the reported coefficient.
    std::vector<std::uint64_t> in(bad.inputs().size(), 0);
    for (int i = 0; i < 8; ++i) {
        if (failure->witness_a.coeff(i)) {
            in[static_cast<std::size_t>(bad.input_index("a" + std::to_string(i)))] = 1;
        }
        if (failure->witness_b.coeff(i)) {
            in[static_cast<std::size_t>(bad.input_index("b" + std::to_string(i)))] = 1;
        }
    }
    const auto out = netlist::simulate(bad, in);
    const bool simulated_bit =
        (out[static_cast<std::size_t>(failure->column)] & 1U) != 0;
    EXPECT_EQ(simulated_bit, failure->netlist_bit);
    EXPECT_EQ(fld.mul(failure->witness_a, failure->witness_b)
                  .coeff(failure->column),
              failure->reference_bit);
    EXPECT_NE(failure->netlist_bit, failure->reference_bit);
}

TEST(AcvProve, VerdictBitIdenticalAtAnyThreadCount) {
    const field::Field fld = field::Field::type2(64, 23);
    const auto good = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    bool flipped = false;
    const auto bad = testutil::clone_netlist(
        good, [&](netlist::NodeId, netlist::GateKind& kind, netlist::NodeId&,
                  netlist::NodeId&) {
            if (!flipped && kind == netlist::GateKind::Xor2) {
                kind = netlist::GateKind::And2;
                flipped = true;
            }
        });
    std::optional<std::string> baseline;
    for (const int threads : {1, 2, 4}) {
        ProveOptions options;
        options.threads = threads;
        const auto failure = prove_multiplier(bad, fld, options);
        ASSERT_TRUE(failure.has_value()) << "threads=" << threads;
        if (!baseline.has_value()) {
            baseline = failure->to_string();
        } else {
            EXPECT_EQ(*baseline, failure->to_string()) << "threads=" << threads;
        }
        EXPECT_FALSE(prove_multiplier(good, fld, options).has_value());
    }
}

TEST(AcvProve, PinnedFailureFormat) {
    ProofFailure mismatch;
    mismatch.column = 3;
    mismatch.residual_monomials = 2;
    mismatch.witness_a.set_coeff(2, true);
    mismatch.witness_b.set_coeff(1, true);
    mismatch.netlist_bit = false;
    mismatch.reference_bit = true;
    EXPECT_EQ(mismatch.to_string(),
              "c3 algebraic mismatch: residual=2 monomials, netlist=0 "
              "reference=1 for A=y^2, B=y [repro: algebraic column=3]");

    ProofFailure blowup;
    blowup.column = 0;
    blowup.blowup = true;
    blowup.residual_monomials = 4194305;
    blowup.monomial_cap = 4194304;
    EXPECT_EQ(blowup.to_string(),
              "c0 algebraic blowup: 4194305 monomials in flight "
              "[repro: algebraic column=0 cap=4194304]");
}

TEST(AcvProve, BlowupCapIsARejectionNeverAnAcceptance) {
    const field::Field fld = field::Field::type2(64, 23);
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    ProveOptions tiny;
    tiny.max_monomials = 64;  // far below what any m=64 column needs
    const auto failure = prove_multiplier(nl, fld, tiny);
    ASSERT_TRUE(failure.has_value());
    EXPECT_TRUE(failure->blowup);
    EXPECT_EQ(failure->monomial_cap, 64U);
    EXPECT_EQ(failure->column, 0);  // lowest column reported, like mismatches
}

TEST(AcvProve, WrongModulusIsAMismatchNotAThrow) {
    // A correct multiplier for the paper field, proved against the AES
    // modulus: same m, different f — the proof must reject it with a
    // counterexample, not error out.
    const field::Field paper = field::gf256_paper_field();
    const field::Field aes{gf2::Poly::from_exponents({8, 4, 3, 1, 0})};
    const auto nl = mult::build_multiplier(mult::Method::Imana2012, paper);
    const auto failure = prove_multiplier(nl, aes);
    ASSERT_TRUE(failure.has_value());
    EXPECT_FALSE(failure->blowup);
    EXPECT_EQ(aes.mul(failure->witness_a, failure->witness_b)
                  .coeff(failure->column),
              failure->reference_bit);
}

TEST(AcvProve, RejectsWrongInterface) {
    const field::Field gf256 = field::gf256_paper_field();
    const field::Field gf64 = field::Field::type2(64, 23);
    const auto nl = mult::build_multiplier(mult::Method::Imana2012, gf256);
    EXPECT_THROW(static_cast<void>(prove_multiplier(nl, gf64)),
                 std::invalid_argument);
}

TEST(AcvVerifierModes, AlgebraicAndBothModes) {
    const field::Field fld = field::gf256_paper_field();
    const auto good = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    const auto bad = faulty_gf256_netlist(fld);

    for (const auto mode :
         {mult::VerifyMode::Algebraic, mult::VerifyMode::Both}) {
        mult::VerifyOptions options;
        options.mode = mode;
        EXPECT_FALSE(mult::verify_multiplier(good, fld, options).has_value());
        const auto failure = mult::verify_multiplier(bad, fld, options);
        ASSERT_TRUE(failure.has_value());
        // Algebraic counterexamples carry no sweep to replay: the pinned
        // simulation repro suffix must be absent.
        EXPECT_EQ(failure->to_string().find("[repro:"), std::string::npos);
        EXPECT_EQ(fld.mul(failure->a, failure->b).coeff(failure->coefficient),
                  failure->reference_bit);
        EXPECT_NE(failure->netlist_bit, failure->reference_bit);
    }
}

TEST(AcvOptGate, AlgebraicPostGateReportsAndThrows) {
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);

    opt::OptOptions with_gate;
    with_gate.algebraic_spec = &fld;
    const auto result = opt::optimize(nl, with_gate);
    ASSERT_FALSE(result.passes.empty());
    EXPECT_EQ(result.passes.back().pass, "algebraic");
    EXPECT_TRUE(result.passes.back().verified);
    EXPECT_EQ(result.passes.back().gates_before,
              result.passes.back().gates_after);

    // The unsound rewrite with the per-pass equivalence campaign disabled:
    // only the algebraic post-gate stands between it and the caller.
    opt::OptOptions unsound;
    unsound.verify_each_pass = false;
    unsound.restructure = false;
    unsound.reduce = false;
    unsound.rewrite_rounds = 1;
    unsound.rewrite.unsound_for_test = true;
    unsound.algebraic_spec = &fld;
    try {
        static_cast<void>(opt::optimize(nl, unsound));
        FAIL() << "unsound rewrite escaped the algebraic gate";
    } catch (const opt::VerificationError& e) {
        EXPECT_EQ(e.pass(), "algebraic");
    }
}

}  // namespace
}  // namespace gfr::acv
