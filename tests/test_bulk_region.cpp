// Bulk region-kernel tier: every SIMD kernel compiled into this binary is
// held bit-identical to the portable scalar kernel (and to the engine's
// element arithmetic, which is itself anchored to Field::mul_reference)
// across all Table V fields, with the edge cases vector code gets wrong
// first — lengths 0/1/odd/just-below-vector-width, unaligned offsets,
// in-place and aliased spans.  The dispatch policy is pinned pure: for any
// feature set, make_dispatch may never select a kernel the features don't
// support, and forcing an unsupported or inapplicable kernel throws.

#include "bulk/cpu.h"
#include "bulk/kernels.h"
#include "bulk/region_engine.h"
#include "field/field_catalog.h"
#include "gf2/pentanomial.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace gfr::bulk {
namespace {

using field::Field;
using testutil::Xorshift64Star;

/// Region lengths around every vector width in play (4 u64 lanes, 16- and
/// 32-byte chunks), plus empty/one/odd and a long tail-heavy case.
const std::vector<std::size_t>& edge_lengths() {
    static const std::vector<std::size_t> lens = {0,  1,  2,  3,  4,  5,  7,
                                                  15, 16, 17, 31, 32, 33, 63,
                                                  64, 65, 255, 1001};
    return lens;
}

/// Kernel kinds this binary compiled AND this CPU can run, byte family.
std::vector<KernelKind> runnable_byte_kernels() {
    std::vector<KernelKind> out;
    const CpuFeatures cpu = detect_cpu();
    for (const KernelKind k : compiled_byte_kernels()) {
        if (kernel_supported(k, cpu)) {
            out.push_back(k);
        }
    }
    return out;
}

std::vector<KernelKind> runnable_word_kernels() {
    std::vector<KernelKind> out;
    const CpuFeatures cpu = detect_cpu();
    for (const KernelKind k : compiled_word_kernels()) {
        if (kernel_supported(k, cpu)) {
            out.push_back(k);
        }
    }
    return out;
}

/// Small fields below GF(2^8) exercise the byte kernels' partial-nibble
/// handling; Table V contributes (8,2) and the paper's worked field.
std::vector<Field> byte_fields() {
    std::vector<Field> fields;
    fields.push_back(field::gf256_paper_field());
    fields.push_back(Field::type2(8, 2));
    for (const int m : {4, 5, 7}) {
        const auto mod = gf2::preferred_low_weight_modulus(m);
        if (!mod.has_value()) {
            throw std::runtime_error{"no low-weight modulus for m=" +
                                     std::to_string(m)};
        }
        fields.push_back(Field{*mod});
    }
    return fields;
}

// --- Dispatch policy ---------------------------------------------------------

TEST(BulkDispatch, NeverSelectsUnsupportedIsa) {
    // All 64 feature combinations (every CpuFeatures field, GFNI and
    // AVX-512F included), forced and unforced: the selected kernels' ISAs
    // must be within the features, and forcing scalar must pin scalar
    // regardless of features.
    for (int bits = 0; bits < 64; ++bits) {
        CpuFeatures f;
        f.ssse3 = (bits & 1) != 0;
        f.avx2 = (bits & 2) != 0;
        f.pclmul = (bits & 4) != 0;
        f.vpclmulqdq = (bits & 8) != 0;
        f.gfni = (bits & 16) != 0;
        f.avx512f = (bits & 32) != 0;
        for (const bool forced : {false, true}) {
            const Dispatch d = make_dispatch(f, forced);
            ASSERT_NE(d.byte, nullptr);
            EXPECT_TRUE(kernel_supported(d.byte->kind, f))
                << "byte kernel " << kernel_name(d.byte->kind)
                << " selected without support (bits=" << bits << ")";
            if (d.word != nullptr) {
                EXPECT_TRUE(kernel_supported(d.word->kind, f))
                    << "word kernel " << kernel_name(d.word->kind)
                    << " selected without support (bits=" << bits << ")";
            }
            if (forced) {
                EXPECT_EQ(d.byte->kind, KernelKind::Scalar);
                EXPECT_EQ(d.word, nullptr);
            }
        }
    }
}

TEST(BulkDispatch, ProcessDispatchObeysRunningCpu) {
    const Dispatch& d = dispatch();
    const CpuFeatures cpu = detect_cpu();
    ASSERT_NE(d.byte, nullptr);
    EXPECT_TRUE(kernel_supported(d.byte->kind, cpu));
    if (d.word != nullptr) {
        EXPECT_TRUE(kernel_supported(d.word->kind, cpu));
    }
    // Scalar kernels are always compiled and always runnable.
    EXPECT_EQ(byte_kernel(KernelKind::Scalar), &kByteScalar);
    EXPECT_TRUE(kernel_supported(KernelKind::Scalar, CpuFeatures{}));
}

TEST(BulkDispatch, ForcingInapplicableOrUnsupportedKernelThrows) {
    const Field f8 = field::gf256_paper_field();
    const Field f64 = Field::type2(64, 23);
    const Field f163 = Field::type2(163, 66);
    const CpuFeatures cpu = detect_cpu();

    // Byte kernels never apply past m = 8; word kernels never past m = 64.
    for (const KernelKind k :
         {KernelKind::Ssse3, KernelKind::Avx2, KernelKind::Gfni}) {
        EXPECT_THROW(RegionEngine(f64.ops(), k), std::invalid_argument);
    }
    EXPECT_THROW(RegionEngine(f163.ops(), KernelKind::Vpclmul),
                 std::invalid_argument);

    // Not compiled or not supported by this CPU → throw instead of SIGILL.
    for (const KernelKind k :
         {KernelKind::Ssse3, KernelKind::Avx2, KernelKind::Gfni}) {
        if (byte_kernel(k) == nullptr || !kernel_supported(k, cpu)) {
            EXPECT_THROW(RegionEngine(f8.ops(), k), std::invalid_argument);
        } else {
            EXPECT_EQ(RegionEngine(f8.ops(), k).byte_kernel_kind(), k);
        }
    }
    if (word_kernel(KernelKind::Vpclmul) == nullptr ||
        !kernel_supported(KernelKind::Vpclmul, cpu)) {
        EXPECT_THROW(RegionEngine(f64.ops(), KernelKind::Vpclmul),
                     std::invalid_argument);
    } else {
        EXPECT_EQ(RegionEngine(f64.ops(), KernelKind::Vpclmul).word_kernel_kind(),
                  KernelKind::Vpclmul);
    }

    // Scalar always constructs, on every field.
    EXPECT_EQ(RegionEngine(f8.ops(), KernelKind::Scalar).byte_kernel_kind(),
              KernelKind::Scalar);
    EXPECT_EQ(RegionEngine(f64.ops(), KernelKind::Scalar).word_kernel_kind(),
              KernelKind::Scalar);
}

// --- Byte-layout differential sweep ------------------------------------------

TEST(BulkRegion, ByteKernelsBitIdenticalToScalarAllEdgeCases) {
    Xorshift64Star rng{0xB17E5EED5EEDULL};
    for (const Field& f : byte_fields()) {
        const RegionEngine scalar{f.ops(), KernelKind::Scalar};
        for (const KernelKind kind : runnable_byte_kernels()) {
            const RegionEngine eng{f.ops(), kind};
            for (const std::size_t n : edge_lengths()) {
                // Unaligned offsets: src at +1, dst at +3 of their buffers.
                std::vector<std::uint8_t> src_buf(n + 4);
                std::vector<std::uint8_t> dst_buf(n + 4, 0xAA);
                std::vector<std::uint8_t> ref(n, 0);
                std::uint8_t* src = src_buf.data() + 1;
                std::uint8_t* dst = dst_buf.data() + 3;
                for (std::size_t i = 0; i < n; ++i) {
                    src[i] = static_cast<std::uint8_t>(
                        testutil::random_word_element(f, rng));
                }
                const std::uint64_t c = testutil::random_word_element(f, rng);
                const auto prep = eng.prepare(c);
                const auto prep_s = scalar.prepare(c);

                // mul: kernel vs scalar kernel vs engine element arithmetic.
                eng.mul_region(prep, {src, n}, {dst, n});
                scalar.mul_region(prep_s, {src, n}, {ref.data(), n});
                for (std::size_t i = 0; i < n; ++i) {
                    ASSERT_EQ(dst[i], ref[i])
                        << f.to_string() << " " << kernel_name(kind)
                        << " mul n=" << n << " i=" << i;
                    ASSERT_EQ(dst[i], f.ops().mul(c, src[i]));
                }

                // addmul into a random destination.
                std::vector<std::uint8_t> acc(n);
                for (auto& v : acc) {
                    v = static_cast<std::uint8_t>(
                        testutil::random_word_element(f, rng));
                }
                std::vector<std::uint8_t> acc_ref = acc;
                eng.addmul_region(prep, {src, n}, acc);
                scalar.addmul_region(prep_s, {src, n}, acc_ref);
                for (std::size_t i = 0; i < n; ++i) {
                    ASSERT_EQ(acc[i], acc_ref[i])
                        << f.to_string() << " " << kernel_name(kind)
                        << " addmul n=" << n << " i=" << i;
                }

                // In-place scale == out-of-place mul; aliased src/dst too.
                std::vector<std::uint8_t> inplace(src, src + n);
                eng.scale_region(prep, inplace);
                std::vector<std::uint8_t> aliased(src, src + n);
                eng.mul_region(prep, aliased, aliased);
                for (std::size_t i = 0; i < n; ++i) {
                    ASSERT_EQ(inplace[i], ref[i]) << "scale n=" << n;
                    ASSERT_EQ(aliased[i], ref[i]) << "aliased n=" << n;
                }
            }
        }
    }
}

// --- u16-layout differential sweep -------------------------------------------

TEST(BulkRegion, U16LayoutMatchesElementArithmetic) {
    // The dense GF(2^16)-tier layout (8 < m <= 16, one symbol per u16):
    // split-byte tables vs FieldOps::mul, plus in-place and scale forms.
    Xorshift64Star rng{0x16B17EED16ULL};
    std::vector<Field> fields;
    fields.emplace_back(gf2::Poly::from_exponents({16, 12, 3, 1, 0}));
    fields.emplace_back(gf2::Poly::from_exponents({13, 4, 3, 1, 0}));
    for (const int m : {9, 11}) {
        const auto mod = gf2::preferred_low_weight_modulus(m);
        if (mod.has_value()) {
            fields.emplace_back(*mod);
        }
    }
    for (const Field& f : fields) {
        const RegionEngine eng{f.ops()};
        ASSERT_TRUE(eng.u16_capable()) << f.to_string();
        for (const std::size_t n : edge_lengths()) {
            std::vector<std::uint16_t> src(n);
            for (auto& v : src) {
                v = static_cast<std::uint16_t>(
                    testutil::random_word_element(f, rng));
            }
            const std::uint64_t c = testutil::random_word_element(f, rng);
            const auto prep = eng.prepare(c);

            std::vector<std::uint16_t> dst(n, 0xAAAA);
            eng.mul_region(prep, src, dst);
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(dst[i], f.ops().mul(c, src[i]))
                    << f.to_string() << " u16 mul n=" << n << " i=" << i;
            }

            std::vector<std::uint16_t> acc(n);
            for (auto& v : acc) {
                v = static_cast<std::uint16_t>(
                    testutil::random_word_element(f, rng));
            }
            const std::vector<std::uint16_t> acc0 = acc;
            eng.addmul_region(prep, src, acc);
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(acc[i], acc0[i] ^ f.ops().mul(c, src[i]))
                    << "u16 addmul n=" << n;
            }

            std::vector<std::uint16_t> inplace = src;
            eng.scale_region(prep, inplace);
            std::vector<std::uint16_t> aliased = src;
            eng.mul_region(prep, aliased, aliased);
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(inplace[i], dst[i]) << "u16 scale n=" << n;
                ASSERT_EQ(aliased[i], dst[i]) << "u16 aliased n=" << n;
            }
        }
    }
}

// --- u64-layout differential sweep -------------------------------------------

/// Single-word catalog fields plus odd degrees that stress the shift
/// arithmetic of the wide kernel (m = 64 boundary included via Table V).
std::vector<Field> word_fields() {
    std::vector<Field> fields;
    for (const auto& spec : field::table5_fields()) {
        if (spec.m <= 64) {
            fields.push_back(spec.make());
        }
    }
    for (const int m : {13, 33, 63}) {
        const auto mod = gf2::preferred_low_weight_modulus(m);
        if (!mod.has_value()) {
            throw std::runtime_error{"no low-weight modulus for m=" +
                                     std::to_string(m)};
        }
        fields.push_back(Field{*mod});
    }
    return fields;
}

TEST(BulkRegion, WordKernelsBitIdenticalToScalarAllEdgeCases) {
    Xorshift64Star rng{0xC0FFEE0DDBA11ULL};
    for (const Field& f : word_fields()) {
        const RegionEngine scalar{f.ops(), KernelKind::Scalar};
        std::vector<KernelKind> kinds = runnable_word_kernels();
        for (const KernelKind kind : kinds) {
            if (kind == KernelKind::Scalar) {
                continue;  // the reference itself
            }
            const RegionEngine eng{f.ops(), kind};
            for (const std::size_t n : edge_lengths()) {
                // +1 element offset: 8-byte aligned, 32-byte unaligned.
                std::vector<std::uint64_t> src_buf(n + 1);
                std::vector<std::uint64_t> dst(n, 0);
                std::vector<std::uint64_t> ref(n, 0);
                std::uint64_t* src = src_buf.data() + 1;
                for (std::size_t i = 0; i < n; ++i) {
                    src[i] = testutil::random_word_element(f, rng);
                }
                const std::uint64_t c = testutil::random_word_element(f, rng);
                const auto prep = eng.prepare(c);
                const auto prep_s = scalar.prepare(c);

                eng.mul_region(prep, {src, n}, dst);
                scalar.mul_region(prep_s, {src, n}, ref);
                for (std::size_t i = 0; i < n; ++i) {
                    ASSERT_EQ(dst[i], ref[i])
                        << f.to_string() << " " << kernel_name(kind)
                        << " mul n=" << n << " i=" << i;
                    ASSERT_EQ(dst[i], f.ops().mul(c, src[i]));
                }

                std::vector<std::uint64_t> acc(n);
                for (auto& v : acc) {
                    v = testutil::random_word_element(f, rng);
                }
                std::vector<std::uint64_t> acc_ref = acc;
                eng.addmul_region(prep, {src, n}, acc);
                scalar.addmul_region(prep_s, {src, n}, acc_ref);
                for (std::size_t i = 0; i < n; ++i) {
                    ASSERT_EQ(acc[i], acc_ref[i]) << "addmul n=" << n;
                }

                std::vector<std::uint64_t> aliased(src, src + n);
                eng.mul_region(prep, aliased, aliased);
                std::vector<std::uint64_t> inplace(src, src + n);
                eng.scale_region(prep, inplace);
                for (std::size_t i = 0; i < n; ++i) {
                    ASSERT_EQ(aliased[i], ref[i]) << "aliased n=" << n;
                    ASSERT_EQ(inplace[i], ref[i]) << "scale n=" << n;
                }

                // Element-wise: canonical AND arbitrary u64 operands — the
                // wide kernel must fall back per group exactly like
                // FieldOps::mul reduces them.
                std::vector<std::uint64_t> b(n);
                for (std::size_t i = 0; i < n; ++i) {
                    b[i] = (i % 3 == 0) ? rng.next()
                                        : testutil::random_word_element(f, rng);
                }
                std::vector<std::uint64_t> ew(n, 0);
                eng.mul_region_elementwise({src, n}, b, ew);
                for (std::size_t i = 0; i < n; ++i) {
                    ASSERT_EQ(ew[i], f.ops().mul(src[i], b[i]))
                        << "elementwise n=" << n << " i=" << i;
                }
            }
        }
    }
}

// --- Multi-word differential sweep -------------------------------------------

TEST(BulkRegion, MultiWordRegionOpsMatchElementArithmetic) {
    Xorshift64Star rng{0x517EAD00F117ULL};
    std::vector<Field> fields;
    for (const auto& spec : field::table5_fields()) {
        if (spec.m > 64) {
            fields.push_back(spec.make());
        }
    }
    fields.push_back(Field{testutil::large_modulus(571)});
    for (const Field& f : fields) {
        const RegionEngine eng{f.ops()};
        const std::size_t mw = f.ops().elem_words();
        field::FieldOps::Scratch scratch;
        const auto cpoly = testutil::random_element(f, rng);
        const auto prep = eng.prepare(cpoly);
        for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                    std::size_t{2}, std::size_t{7}}) {
            std::vector<gf2::Poly> elems;
            std::vector<std::uint64_t> src(n * mw, 0);
            for (std::size_t i = 0; i < n; ++i) {
                elems.push_back(testutil::random_element(f, rng));
                const auto w = elems.back().words();
                std::copy(w.begin(), w.end(), src.begin() + static_cast<long>(i * mw));
            }
            std::vector<std::uint64_t> dst(n * mw, 0);
            eng.mul_region_mw(prep, src, dst, scratch);
            std::vector<std::uint64_t> acc(n * mw);
            for (auto& v : acc) {
                v = 0;
            }
            eng.addmul_region_mw(prep, src, acc, scratch);
            for (std::size_t i = 0; i < n; ++i) {
                const gf2::Poly want = f.mul(cpoly, elems[i]);
                std::vector<std::uint64_t> ww(mw, 0);
                const auto w = want.words();
                std::copy(w.begin(), w.end(), ww.begin());
                for (std::size_t k = 0; k < mw; ++k) {
                    ASSERT_EQ(dst[i * mw + k], ww[k])
                        << f.to_string() << " mw mul elem " << i << " word " << k;
                    ASSERT_EQ(acc[i * mw + k], ww[k]) << "mw addmul from zero";
                }
            }
            // addmul self-inverse: adding the same product twice restores.
            eng.addmul_region_mw(prep, src, acc, scratch);
            for (const std::uint64_t v : acc) {
                ASSERT_EQ(v, 0U);
            }
        }
        // Span validation: length not a multiple of elem_words throws.
        if (mw > 1) {
            std::vector<std::uint64_t> bad(mw + 1, 0);
            std::vector<std::uint64_t> out(mw + 1, 0);
            EXPECT_THROW(eng.mul_region_mw(prep, bad, out, scratch),
                         std::invalid_argument);
        }
    }
}

// --- Routed public APIs ------------------------------------------------------

TEST(BulkRegion, RoutedFieldOpsAndConstMultiplierMatchElementLoop) {
    // The PR-1/PR-2 region APIs kept their signatures but now run through
    // the dispatch; their results must stay exactly what an element loop
    // produces, including at odd lengths and in place.
    Xorshift64Star rng{0xFEEDFACE0101ULL};
    testutil::for_each_table5_field([&](const field::FieldSpec& spec,
                                        const Field& f) {
        if (spec.m > 64) {
            return;
        }
        for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                    std::size_t{3}, std::size_t{31},
                                    std::size_t{130}}) {
            std::vector<std::uint64_t> a(n);
            std::vector<std::uint64_t> b(n);
            for (std::size_t i = 0; i < n; ++i) {
                a[i] = testutil::random_word_element(f, rng);
                b[i] = (i % 5 == 0) ? rng.next()
                                    : testutil::random_word_element(f, rng);
            }
            const std::uint64_t c = testutil::random_word_element(f, rng);

            std::vector<std::uint64_t> out(n, 0);
            f.ops().mul_region(a, b, out);
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(out[i], f.ops().mul(a[i], b[i]))
                    << spec.label() << " mul_region n=" << n;
            }

            const field::ConstMultiplier cm{f.ops(), c};
            std::vector<std::uint64_t> r1(a);
            cm.mul_region(r1);  // in place
            std::vector<std::uint64_t> r2(n, 0);
            cm.mul_region(a, r2);
            std::vector<std::uint64_t> r3(a);
            f.ops().mul_region_const(c, r3);
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint64_t want = cm.mul(a[i]);
                ASSERT_EQ(want, f.ops().mul(c, a[i]));
                ASSERT_EQ(r1[i], want) << spec.label() << " in-place";
                ASSERT_EQ(r2[i], want) << spec.label() << " out-of-place";
                ASSERT_EQ(r3[i], want) << spec.label() << " mul_region_const";
            }
        }
    });
}

TEST(BulkRegion, PreparedConstantEdgeCases) {
    const Field f = field::gf256_paper_field();
    const RegionEngine eng{f.ops()};
    Xorshift64Star rng{42};

    std::vector<std::uint8_t> data(37);
    for (auto& v : data) {
        v = static_cast<std::uint8_t>(testutil::random_word_element(f, rng));
    }
    const std::vector<std::uint8_t> orig = data;

    // c = 1 is the identity; addmul by 1 is a region XOR.
    const auto one = eng.prepare(std::uint64_t{1});
    eng.scale_region(one, data);
    EXPECT_EQ(data, orig);
    std::vector<std::uint8_t> acc(data.size(), 0);
    eng.addmul_region(one, data, acc);
    EXPECT_EQ(acc, orig);

    // c = 0 zeroes on mul and is a no-op on addmul.
    const auto zero = eng.prepare(std::uint64_t{0});
    eng.addmul_region(zero, orig, data);
    EXPECT_EQ(data, orig);
    eng.scale_region(zero, data);
    for (const auto v : data) {
        EXPECT_EQ(v, 0);
    }

    // Non-canonical constants are reduced at prepare time; a Poly constant
    // prepares identically to its bit pattern.
    const auto big = eng.prepare(std::uint64_t{0x1234567890ABCDEFULL});
    EXPECT_EQ(big.constant(), f.ops().reduce(0, 0x1234567890ABCDEFULL));
    const auto from_poly = eng.prepare(gf2::Poly::from_exponents({9, 1}));
    EXPECT_EQ(from_poly.constant(),
              f.ops().reduce(0, (std::uint64_t{1} << 9) | 2));

    // Length mismatches throw.
    std::vector<std::uint8_t> short_dst(3);
    EXPECT_THROW(eng.mul_region(one, orig, short_dst), std::invalid_argument);
}

TEST(BulkRegion, PreparedMismatchedEngineThrowsInsteadOfWrongSymbols) {
    // A Prepared carries only the state its preparing engine's kernels
    // need; feeding it to another field, or to an engine with a different
    // kernel selection, must fail loudly.
    const Field f8 = field::gf256_paper_field();
    const Field f64 = Field::type2(64, 23);
    const RegionEngine eng8{f8.ops()};
    const RegionEngine eng64_scalar{f64.ops(), KernelKind::Scalar};

    std::vector<std::uint64_t> buf(8, 1);
    const auto prep8 = eng8.prepare(std::uint64_t{3});
    // Wrong field entirely.
    EXPECT_THROW(eng64_scalar.scale_region(prep8, buf), std::invalid_argument);
    // Same degree, different modulus: the paper field and type2(8,2) are
    // both m=8 but reduce with different tails — tables from one would
    // silently corrupt symbols of the other, so this must throw too.
    const Field f8b = Field::type2(8, 2);
    const RegionEngine eng8b{f8b.ops()};
    std::vector<std::uint8_t> bbuf(8, 1);
    EXPECT_THROW(eng8b.scale_region(prep8, bbuf), std::invalid_argument);
    // Same field, different kernel selection (scalar m>8 needs window
    // tables a wide-kernel engine never builds, and vice versa).
    if (word_kernel(KernelKind::Vpclmul) != nullptr &&
        kernel_supported(KernelKind::Vpclmul, detect_cpu())) {
        const RegionEngine eng64_wide{f64.ops(), KernelKind::Vpclmul};
        const auto prep_wide = eng64_wide.prepare(std::uint64_t{5});
        const auto prep_scalar = eng64_scalar.prepare(std::uint64_t{5});
        EXPECT_THROW(eng64_scalar.scale_region(prep_wide, buf),
                     std::invalid_argument);
        EXPECT_THROW(eng64_wide.scale_region(prep_scalar, buf),
                     std::invalid_argument);
    }
    // Multi-word engines reject single-word Prepareds too.
    const Field f163 = Field::type2(163, 66);
    const RegionEngine eng163{f163.ops()};
    std::vector<std::uint64_t> mwbuf(3 * f163.ops().elem_words(), 0);
    EXPECT_THROW(eng163.mul_region_mw(prep8, mwbuf, mwbuf),
                 std::invalid_argument);
}

TEST(BulkRegion, AutoEngineReportsSupportedKernels) {
    // Whatever the auto constructor picked must be runnable here — the
    // user-facing face of the never-unsupported-ISA guarantee.
    const CpuFeatures cpu = detect_cpu();
    testutil::for_each_table5_field([&](const field::FieldSpec&, const Field& f) {
        const RegionEngine eng{f.ops()};
        if (eng.byte_capable()) {
            EXPECT_TRUE(kernel_supported(eng.byte_kernel_kind(), cpu));
        }
        if (eng.single_word()) {
            EXPECT_TRUE(kernel_supported(eng.word_kernel_kind(), cpu));
        }
    });
}

}  // namespace
}  // namespace gfr::bulk
