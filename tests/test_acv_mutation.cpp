// Mutation cross-check of the algebraic prover: the same single-fault
// operators the simulation verifiers face (tests/test_verify_mutation.cpp —
// gate-kind flips, fanin rewires, output-driver swaps), adjudicated the
// same way by simulation ground truth, but judged through
// acv::prove_multiplier alone.  Every functionally-different mutant must
// draw a proof failure (a mismatch with a synthesized witness, or a
// blowup — both are rejections), and every absorbed mutant must still
// PROVE: equivalent functions have identical canonical ANFs, so the prover
// may not raise false alarms either.  100% kill, 0% false alarm.

#include "acv/acv.h"

#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "netlist/simulate.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace gfr::acv {
namespace {

using netlist::GateKind;
using netlist::Netlist;
using netlist::NodeId;
using testutil::Xorshift64Star;

/// Ground truth shared with the simulation mutation tier: raw side-by-side
/// simulation, exhaustive on small inputs, dense random above (same fixed
/// seed, so the two tiers adjudicate mutants identically).
bool functionally_differs(const Netlist& a, const Netlist& b) {
    const int n = static_cast<int>(a.inputs().size());
    netlist::Simulator sim_a{a};
    netlist::Simulator sim_b{b};
    std::vector<std::uint64_t> in(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> out_a;
    std::vector<std::uint64_t> out_b;

    const auto differs_now = [&]() {
        sim_a.run_into(in, out_a);
        sim_b.run_into(in, out_b);
        return out_a != out_b;
    };

    if (n <= 16) {
        const std::uint64_t blocks = (n <= 6) ? 1 : (std::uint64_t{1} << (n - 6));
        for (std::uint64_t block = 0; block < blocks; ++block) {
            for (int i = 0; i < n; ++i) {
                in[static_cast<std::size_t>(i)] = netlist::exhaustive_pattern(i, block);
            }
            if (differs_now()) {
                return true;
            }
        }
        return false;
    }
    Xorshift64Star rng{0x6E747275ULL};
    for (int sweep = 0; sweep < 256; ++sweep) {
        for (auto& w : in) {
            w = rng();
        }
        if (differs_now()) {
            return true;
        }
    }
    return false;
}

std::vector<NodeId> reachable_gates(const Netlist& nl) {
    const auto reachable = nl.reachable_from_outputs();
    std::vector<NodeId> gates;
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        const auto kind = nl.node(id).kind;
        if (reachable[id] && (kind == GateKind::And2 || kind == GateKind::Xor2)) {
            gates.push_back(id);
        }
    }
    return gates;
}

std::vector<NodeId> sample(const std::vector<NodeId>& pool, std::size_t count) {
    std::vector<NodeId> out;
    if (pool.empty()) {
        return out;
    }
    const std::size_t stride = std::max<std::size_t>(1, pool.size() / count);
    for (std::size_t i = 0; i < pool.size() && out.size() < count; i += stride) {
        out.push_back(pool[i]);
    }
    return out;
}

struct MutationStats {
    int generated = 0;
    int faults = 0;
    int equivalent_skipped = 0;
    int missed_by_proof = 0;   ///< real fault, prover said "proved" — fatal
    int false_alarms = 0;      ///< absorbed mutant, prover rejected — fatal
    int blowup_kills = 0;      ///< kills via cap instead of mismatch (legal)
    std::vector<std::string> misses;
};

void exercise_mutant(const Netlist& original, const Netlist& mutant,
                     const field::Field& field, const std::string& label,
                     MutationStats& stats) {
    ++stats.generated;
    const bool is_fault = functionally_differs(original, mutant);
    const auto proof = prove_multiplier(mutant, field);
    if (is_fault) {
        ++stats.faults;
        if (!proof.has_value()) {
            ++stats.missed_by_proof;
            stats.misses.push_back("prove_multiplier missed " + label);
        } else if (proof->blowup) {
            ++stats.blowup_kills;
        }
    } else {
        ++stats.equivalent_skipped;
        if (proof.has_value()) {
            ++stats.false_alarms;
            stats.misses.push_back("prove_multiplier false alarm on " + label +
                                   ": " + proof->to_string());
        }
    }
}

void run_mutation_campaign(const field::Field& field, mult::Method method,
                           MutationStats& stats) {
    const auto original = build_multiplier(method, field);
    const auto gates = sample(reachable_gates(original), 8);
    const std::string key{mult::method_info(method).key};
    const int m = field.degree();

    for (const NodeId target : gates) {
        const auto mutant = testutil::clone_netlist(
            original, [target](NodeId id, GateKind& kind, NodeId&, NodeId&) {
                if (id == target) {
                    kind = (kind == GateKind::And2) ? GateKind::Xor2 : GateKind::And2;
                }
            });
        exercise_mutant(original, mutant, field,
                        key + ": flip gate " + std::to_string(target), stats);
    }

    int salt = 0;
    for (const NodeId target : gates) {
        const NodeId old_a = original.node(target).a;
        const NodeId old_b = original.node(target).b;
        NodeId replacement = netlist::kInvalidNode;
        for (int i = 0; i < 2 * m; ++i) {
            const NodeId candidate =
                original.inputs()[static_cast<std::size_t>((i + salt) % (2 * m))].node;
            if (candidate != old_a && candidate != old_b) {
                replacement = candidate;
                break;
            }
        }
        ++salt;
        ASSERT_NE(replacement, netlist::kInvalidNode);
        const auto mutant = testutil::clone_netlist(
            original, [target, replacement](NodeId id, GateKind&, NodeId& a, NodeId&) {
                if (id == target) {
                    a = replacement;
                }
            });
        exercise_mutant(original, mutant, field,
                        key + ": rewire fanin of " + std::to_string(target), stats);
    }

    const std::size_t n_out = original.outputs().size();
    const std::pair<std::size_t, std::size_t> swaps[] = {{0, n_out / 2},
                                                         {1, n_out - 1}};
    for (const auto& [i, j] : swaps) {
        if (i == j || j >= n_out) {
            continue;
        }
        const auto mutant = testutil::clone_netlist(
            original, nullptr,
            [i = i, j = j](std::size_t index, std::span<const NodeId> mapped,
                           Netlist&) -> NodeId {
                if (index == i) {
                    return mapped[j];
                }
                if (index == j) {
                    return mapped[i];
                }
                return mapped[index];
            });
        exercise_mutant(original, mutant, field,
                        key + ": swap outputs " + std::to_string(i) + "," +
                            std::to_string(j),
                        stats);
    }
}

void expect_full_kill(const field::Field& field, MutationStats& stats) {
    for (const auto& info : mult::all_methods()) {
        run_mutation_campaign(field, info.method, stats);
    }
    EXPECT_EQ(stats.missed_by_proof, 0);
    EXPECT_EQ(stats.false_alarms, 0);
    for (const auto& miss : stats.misses) {
        ADD_FAILURE() << miss;
    }
    EXPECT_GT(stats.faults, 0);
    EXPECT_GE(stats.faults * 10, stats.generated * 9)
        << stats.equivalent_skipped << " of " << stats.generated
        << " mutants were absorbed — mutation operators lost their teeth";
}

TEST(AcvMutation, SmallFieldKillsAllSingleFaultMutants) {
    MutationStats stats;
    expect_full_kill(field::gf256_paper_field(), stats);
    EXPECT_EQ(stats.generated,
              static_cast<int>(mult::all_methods().size()) * (8 + 8 + 2));
}

TEST(AcvMutation, MediumFieldKillsAllSingleFaultMutants) {
    // GF(2^64): where the simulation tier goes statistical, the proof stays
    // a proof — the kill rate must not move.  XOR->AND flips deep in a
    // reduction tree can push the expansion over the degree/monomial caps;
    // that is a legal kill (a rejection), counted but not required.
    MutationStats stats;
    expect_full_kill(field::Field::type2(64, 23), stats);
}

TEST(AcvMutation, MultiWordFieldKillsAllSingleFaultMutants) {
    // GF(2^113): multi-word operands, one family to bound the runtime.
    MutationStats stats;
    run_mutation_campaign(field::Field::type2(113, 4),
                          mult::Method::Date2018Flat, stats);
    EXPECT_EQ(stats.missed_by_proof, 0);
    EXPECT_EQ(stats.false_alarms, 0);
    for (const auto& miss : stats.misses) {
        ADD_FAILURE() << miss;
    }
    EXPECT_GT(stats.faults, 0);
}

}  // namespace
}  // namespace gfr::acv
