// Reduction matrix Q and Mastrovito matrix M(A): checked against direct
// polynomial arithmetic and against the paper's Table I structure.

#include "field/field_catalog.h"
#include "gf2/pentanomial.h"
#include "mastrovito/mastrovito_matrix.h"
#include "mastrovito/reduction_matrix.h"
#include "testutil.h"

#include <gtest/gtest.h>


namespace gfr::mastrovito {
namespace {

using gf2::Poly;

TEST(ReductionMatrix, RowsMatchPolynomialArithmetic) {
    for (const auto& spec : field::table5_fields()) {
        const Poly f = gf2::TypeIIPentanomial{spec.m, spec.n}.poly();
        const ReductionMatrix q{f};
        ASSERT_EQ(q.m(), spec.m);
        for (int i = 0; i <= spec.m - 2; i += std::max(1, spec.m / 7)) {
            EXPECT_EQ(q.row(i), Poly::monomial(spec.m + i) % f)
                << spec.label() << " row " << i;
        }
        // Last row, always.
        EXPECT_EQ(q.row(spec.m - 2), Poly::monomial(2 * spec.m - 2) % f);
    }
}

TEST(ReductionMatrix, Gf28FirstRow) {
    const ReductionMatrix q{Poly::from_exponents({8, 4, 3, 2, 0})};
    // x^8 = x^4 + x^3 + x^2 + 1.
    EXPECT_EQ(q.row_support(0), (std::vector<int>{0, 2, 3, 4}));
    EXPECT_TRUE(q.at(0, 0));
    EXPECT_FALSE(q.at(0, 1));
    EXPECT_TRUE(q.at(0, 4));
}

TEST(ReductionMatrix, Gf28ColumnSupportsMatchTable1) {
    // Table I: the T_i appearing in each coefficient c_k.
    const ReductionMatrix q{Poly::from_exponents({8, 4, 3, 2, 0})};
    const std::vector<std::vector<int>> expected = {
        {0, 4, 5, 6}, {1, 5, 6},    {0, 2, 4, 5}, {0, 1, 3, 4},
        {0, 1, 2, 6}, {1, 2, 3},    {2, 3, 4},    {3, 4, 5},
    };
    for (int k = 0; k < 8; ++k) {
        EXPECT_EQ(q.t_indices_for_coefficient(k), expected[static_cast<std::size_t>(k)])
            << "c" << k;
    }
}

TEST(ReductionMatrix, BoundsChecking) {
    const ReductionMatrix q{Poly::from_exponents({8, 4, 3, 2, 0})};
    EXPECT_THROW(static_cast<void>(q.at(-1, 0)), std::out_of_range);
    EXPECT_THROW(static_cast<void>(q.at(7, 0)), std::out_of_range);  // rows are 0..m-2
    EXPECT_THROW(static_cast<void>(q.at(0, 8)), std::out_of_range);
    EXPECT_THROW(static_cast<void>(q.row(7)), std::out_of_range);
    EXPECT_THROW(ReductionMatrix{Poly::one()}, std::invalid_argument);
}

TEST(ReductionMatrix, OnesCountGf28) {
    // Sum of column supports of Table I: 4+3+4+4+4+3+3+3 = 28.
    const ReductionMatrix q{Poly::from_exponents({8, 4, 3, 2, 0})};
    EXPECT_EQ(q.ones_count(), 28);
}

TEST(MastrovitoMatrix, ProductMatchesFieldMul) {
    testutil::Xorshift64Star rng{321};
    for (const auto& spec : {field::FieldSpec{8, 2, ""}, field::FieldSpec{64, 23, ""},
                             field::FieldSpec{113, 34, ""}}) {
        const field::Field fld = spec.make();
        const ReductionMatrix q{fld.modulus()};
        const MastrovitoMatrix mat{q};
        for (int trial = 0; trial < 5; ++trial) {
            const auto a = testutil::random_element(fld, rng);
            const auto b = testutil::random_element(fld, rng);
            const auto expected = fld.mul(a, b);
            // c_k = XOR_j b_j * ( XOR of a-indices in entry(k, j) ).
            for (int k = 0; k < fld.degree(); ++k) {
                bool bit = false;
                for (int j = 0; j < fld.degree(); ++j) {
                    if (!b.coeff(j)) {
                        continue;
                    }
                    for (const int idx : mat.entry(k, j)) {
                        bit ^= a.coeff(idx);
                    }
                }
                ASSERT_EQ(bit, expected.coeff(k))
                    << spec.label() << " trial " << trial << " c" << k;
            }
        }
    }
}

TEST(MastrovitoMatrix, EntriesSortedAndUnique) {
    const ReductionMatrix q{Poly::from_exponents({8, 4, 3, 2, 0})};
    const MastrovitoMatrix mat{q};
    for (int k = 0; k < 8; ++k) {
        for (int j = 0; j < 8; ++j) {
            const auto& e = mat.entry(k, j);
            for (std::size_t i = 1; i < e.size(); ++i) {
                EXPECT_LT(e[i - 1], e[i]);
            }
            for (const int idx : e) {
                EXPECT_GE(idx, 0);
                EXPECT_LT(idx, 8);
            }
        }
    }
    EXPECT_THROW(static_cast<void>(mat.entry(8, 0)), std::out_of_range);
    EXPECT_THROW(static_cast<void>(mat.entry(0, -1)), std::out_of_range);
}

TEST(MastrovitoMatrix, ColumnZeroIsPlainConvolution) {
    // j = 0 receives no reduction contributions: entry(k,0) = {k}.
    const ReductionMatrix q{Poly::from_exponents({8, 4, 3, 2, 0})};
    const MastrovitoMatrix mat{q};
    for (int k = 0; k < 8; ++k) {
        EXPECT_EQ(mat.entry(k, 0), (std::vector<int>{k}));
    }
}

}  // namespace
}  // namespace gfr::mastrovito
