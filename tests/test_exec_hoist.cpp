// Tape-level CSE (Program::CompileOptions::hoist_common_pairs): the hoisted
// tape must compute bit-identical outputs to the default tape and to the
// frozen interpreter, must never carry more operand slots than the default
// tape, and the default path must stay byte-for-byte the historical shape
// (hoisting is opt-in; replay coordinates of logged campaign failures pin
// the default tape).

#include "exec/program.h"
#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "netlist/simulate.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace gfr::exec {
namespace {

using netlist::Netlist;
using netlist::NodeId;

/// A netlist with heavy cross-output pair sharing left on the table: every
/// output is a flat XOR chain over overlapping input windows, so the pairs
/// (i_k ^ i_{k+1}) recur across many outputs.
Netlist overlapping_windows(int n_inputs, int window, int n_outputs) {
    Netlist nl;
    std::vector<NodeId> in;
    for (int i = 0; i < n_inputs; ++i) {
        in.push_back(nl.add_input("i" + std::to_string(i)));
    }
    for (int o = 0; o < n_outputs; ++o) {
        NodeId acc = in[static_cast<std::size_t>(o % n_inputs)];
        for (int k = 1; k < window; ++k) {
            acc = nl.make_xor_fresh(
                acc, in[static_cast<std::size_t>((o + k) % n_inputs)]);
        }
        nl.add_output("o" + std::to_string(o), acc);
    }
    return nl;
}

void expect_same_tape_results(const Netlist& nl, const Program& a,
                              const Program& b, std::uint64_t seed) {
    ASSERT_EQ(a.input_count(), b.input_count());
    ASSERT_EQ(a.output_count(), b.output_count());
    testutil::Xorshift64Star rng{seed};
    const auto n_in = static_cast<std::size_t>(a.input_count());
    const auto n_out = static_cast<std::size_t>(a.output_count());
    Program::Scratch sa;
    Program::Scratch sb;
    for (int blocks = 1; blocks <= Program::kMaxBlocks; ++blocks) {
        std::vector<std::uint64_t> in(n_in * static_cast<std::size_t>(blocks));
        for (auto& w : in) {
            w = rng.next();
        }
        std::vector<std::uint64_t> out_a(n_out * static_cast<std::size_t>(blocks));
        std::vector<std::uint64_t> out_b(out_a.size());
        a.run(in, out_a, sa, blocks);
        b.run(in, out_b, sb, blocks);
        ASSERT_EQ(out_a, out_b) << "blocks=" << blocks;
        // Differential anchor: the frozen interpreter on block 0.
        const auto ref = netlist::simulate_interpreted(
            nl, std::span{in}.subspan(0, n_in));
        for (std::size_t o = 0; o < n_out; ++o) {
            ASSERT_EQ(out_a[o], ref[o]) << "output " << o;
        }
    }
}

TEST(ExecHoist, HoistedTapeMatchesDefaultAndInterpreter) {
    const Netlist nl = overlapping_windows(12, 7, 16);
    const Program plain = Program::compile(nl);
    Program::CompileOptions options;
    options.hoist_common_pairs = true;
    const Program hoisted = Program::compile(nl, options);
    expect_same_tape_results(nl, plain, hoisted, 0x4015ULL);
    // The windows overlap heavily, so hoisting must actually shrink the
    // operand stream.
    EXPECT_LT(hoisted.stats().total_args, plain.stats().total_args);
}

TEST(ExecHoist, MultiplierTapesShrinkAndStayExact) {
    for (const auto& spec : field::table5_fields()) {
        if (spec.m > 16) {
            break;  // one small field keeps the differential sweep cheap
        }
        const field::Field f = spec.make();
        const Netlist nl = mult::build_date2018_flat(f);
        const Program plain = Program::compile(nl);
        Program::CompileOptions options;
        options.hoist_common_pairs = true;
        options.min_pair_occurrences = 2;
        const Program hoisted = Program::compile(nl, options);
        expect_same_tape_results(nl, plain, hoisted, 0xD1CE0ULL + spec.m);
        EXPECT_LE(hoisted.stats().total_args, plain.stats().total_args);
    }
}

TEST(ExecHoist, DefaultCompileIsUnchanged) {
    // compile(nl) must stay the exact historical tape: same instruction
    // stream as compile(nl, {}) with hoisting off, byte for byte.
    const Netlist nl = overlapping_windows(10, 5, 8);
    const Program a = Program::compile(nl);
    const Program b = Program::compile(nl, Program::CompileOptions{});
    ASSERT_EQ(a.instruction_count(), b.instruction_count());
    const auto ia = a.instructions();
    const auto ib = b.instructions();
    for (std::size_t k = 0; k < ia.size(); ++k) {
        EXPECT_EQ(ia[k].op, ib[k].op) << k;
        EXPECT_EQ(ia[k].dst, ib[k].dst) << k;
        EXPECT_EQ(ia[k].arg_count, ib[k].arg_count) << k;
    }
    ASSERT_EQ(a.args().size(), b.args().size());
}

TEST(ExecHoist, ThresholdGatesHoisting) {
    // With a threshold above every pair's occurrence count, the hoisted
    // tape degenerates to the plain one.
    const Netlist nl = overlapping_windows(12, 7, 16);
    const Program plain = Program::compile(nl);
    Program::CompileOptions options;
    options.hoist_common_pairs = true;
    options.min_pair_occurrences = 1000;
    const Program gated = Program::compile(nl, options);
    EXPECT_EQ(gated.instruction_count(), plain.instruction_count());
    EXPECT_EQ(gated.stats().total_args, plain.stats().total_args);
}

}  // namespace
}  // namespace gfr::exec
