// Splitting S_i/T_i into S^j_i/T^j_i: Table II golden reproduction plus
// structural invariants for arbitrary degrees.

#include "multipliers/golden_tables.h"
#include "st/st_split.h"

#include <gtest/gtest.h>

namespace gfr::st {
namespace {

TEST(Split, Table2GoldenGf28) {
    // Every split-term definition exactly as the paper's Table II prints it.
    std::vector<std::string> got;
    for (int i = 1; i <= 8; ++i) {
        for (const auto& sp : split_function(make_s(8, i))) {
            got.push_back(split_term_definition_string(sp));
        }
    }
    for (int i = 0; i <= 6; ++i) {
        for (const auto& sp : split_function(make_t(8, i))) {
            got.push_back(split_term_definition_string(sp));
        }
    }
    const auto& expected = mult::table2_expected_lines();
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i], expected[i]) << "line " << i;
    }
}

TEST(Split, Section2DecompositionStringsGf28) {
    // "S6 = S^2_6 + S^1_6" etc., descending level as the paper writes them.
    const auto& expected = mult::section2_expected_split_lines();
    std::vector<std::string> got;
    for (int i = 1; i <= 8; ++i) {
        got.push_back(split_decomposition_string(make_s(8, i)));
    }
    for (int i = 0; i <= 6; ++i) {
        got.push_back(split_decomposition_string(make_t(8, i)));
    }
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i], expected[i]) << "line " << i;
    }
}

class SplitInvariants : public ::testing::TestWithParam<int> {};

TEST_P(SplitInvariants, EveryGroupHasPowerOfTwoProducts) {
    const int m = GetParam();
    auto check = [&](const StFunction& f) {
        const auto groups = split_function(f);
        int total = 0;
        std::vector<bool> seen_level(16, false);
        for (const auto& g : groups) {
            EXPECT_EQ(g.product_count(), 1 << g.level) << f.name() << " " << g.label();
            EXPECT_FALSE(seen_level[static_cast<std::size_t>(g.level)])
                << f.name() << ": duplicate level " << g.level;
            seen_level[static_cast<std::size_t>(g.level)] = true;
            total += g.product_count();
        }
        EXPECT_EQ(total, f.product_count()) << f.name();
    };
    for (int i = 1; i <= m; ++i) {
        check(make_s(m, i));
    }
    for (int i = 0; i <= m - 2; ++i) {
        check(make_t(m, i));
    }
}

TEST_P(SplitInvariants, GroupsPartitionTermList) {
    const int m = GetParam();
    auto check = [&](const StFunction& f) {
        std::vector<Term> reunion;
        for (const auto& g : split_function(f)) {
            reunion.insert(reunion.end(), g.terms.begin(), g.terms.end());
        }
        auto original = f.terms;
        std::sort(reunion.begin(), reunion.end());
        std::sort(original.begin(), original.end());
        EXPECT_EQ(reunion, original) << f.name();
    };
    for (int i = 1; i <= m; ++i) {
        check(make_s(m, i));
    }
    for (int i = 0; i <= m - 2; ++i) {
        check(make_t(m, i));
    }
}

TEST_P(SplitInvariants, LevelsAscendInOutput) {
    const int m = GetParam();
    for (int i = 1; i <= m; ++i) {
        const auto groups = split_function(make_s(m, i));
        for (std::size_t g = 1; g < groups.size(); ++g) {
            EXPECT_LT(groups[g - 1].level, groups[g].level);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, SplitInvariants,
                         ::testing::Values(2, 5, 8, 9, 16, 33, 64, 113, 163),
                         [](const auto& info) { return "m" + std::to_string(info.param); });

TEST(Split, Labels) {
    const auto groups = split_function(make_s(8, 4));
    ASSERT_EQ(groups.size(), 1U);
    EXPECT_EQ(groups[0].label(), "S^2_4");
    EXPECT_EQ(groups[0].level, 2);
}

TEST(SplitTables, ShapeAndLookup) {
    const auto tables = make_split_tables(8);
    EXPECT_EQ(tables.m, 8);
    EXPECT_EQ(tables.s.size(), 8U);
    EXPECT_EQ(tables.t.size(), 7U);
    // Exact-level lookup.
    EXPECT_EQ(find_split_term(tables, StKind::S, 4, 2).label(), "S^2_4");
    // Fallback: T6 has only level 0; requesting level 1 falls back to it —
    // the rule behind the paper's T^2_{5,6} = T^1_5 + T^0_6.
    EXPECT_EQ(find_split_term(tables, StKind::T, 6, 1).label(), "T^0_6");
    // No term at or below the requested level -> throws.
    EXPECT_THROW(find_split_term(tables, StKind::T, 3, 1), std::out_of_range);
}

TEST(SplitTables, Gf28SplitCountIs25) {
    // Table II lists 13 S-terms and 12 T-terms.
    const auto tables = make_split_tables(8);
    std::size_t s_count = 0;
    for (const auto& g : tables.s) {
        s_count += g.size();
    }
    std::size_t t_count = 0;
    for (const auto& g : tables.t) {
        t_count += g.size();
    }
    EXPECT_EQ(s_count, 13U);
    EXPECT_EQ(t_count, 12U);
}

}  // namespace
}  // namespace gfr::st
