// Field catalog: the paper's nine Table V fields and standards provenance.

#include "field/field_catalog.h"
#include "gf2/irreducibility.h"

#include <gtest/gtest.h>

namespace gfr::field {
namespace {

TEST(FieldCatalog, NineTable5FieldsInPaperOrder) {
    const auto& fields = table5_fields();
    ASSERT_EQ(fields.size(), 9U);
    EXPECT_EQ(fields[0].m, 8);
    EXPECT_EQ(fields[0].n, 2);
    EXPECT_EQ(fields[8].m, 163);
    EXPECT_EQ(fields[8].n, 68);
}

TEST(FieldCatalog, AllFieldsConstruct) {
    for (const auto& spec : table5_fields()) {
        const Field f = spec.make();
        EXPECT_EQ(f.degree(), spec.m);
        EXPECT_TRUE(gf2::is_irreducible(f.modulus()));
    }
}

TEST(FieldCatalog, Labels) {
    const auto& fields = table5_fields();
    EXPECT_EQ(fields[0].label(), "(8,2)");
    EXPECT_EQ(fields[2].label(), "(113,4) SECG");
    EXPECT_EQ(fields[7].label(), "(163,66) NIST");
}

TEST(FieldCatalog, SecgAndNistTagging) {
    int secg = 0;
    int nist = 0;
    for (const auto& spec : table5_fields()) {
        if (spec.origin == "SECG") {
            ++secg;
            EXPECT_EQ(spec.m, 113);
        }
        if (spec.origin == "NIST") {
            ++nist;
            EXPECT_EQ(spec.m, 163);
        }
    }
    EXPECT_EQ(secg, 2);
    EXPECT_EQ(nist, 2);
}

TEST(FieldCatalog, NistDegrees) {
    EXPECT_EQ(nist_ecdsa_degrees(), (std::vector<int>{163, 233, 283, 409, 571}));
}

TEST(FieldCatalog, PaperGf256Field) {
    const Field f = gf256_paper_field();
    EXPECT_EQ(f.degree(), 8);
    EXPECT_EQ(f.modulus().support(), (std::vector<int>{0, 2, 3, 4, 8}));
}

}  // namespace
}  // namespace gfr::field
