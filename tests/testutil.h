#ifndef GFR_TESTS_TESTUTIL_H
#define GFR_TESTS_TESTUTIL_H

// Shared property-test harness for the arithmetic tier.
//
// Every test binary that cross-checks the fast paths against the reference
// arithmetic needs the same four ingredients, previously copy-pasted per
// file:
//
//   - a seeded, platform-stable PRNG (Xorshift64Star) whose replay semantics
//     are trivially copyable — essential for the concurrency tests, which
//     compare threaded runs against a serial replay with the same seeds;
//   - random Poly / field-element generators built on it;
//   - iteration over the paper's Table V fields (and the large differential
//     degrees beyond them);
//   - a counting allocator guard so "allocation-free" claims are asserted,
//     not promised.
//
// The allocator hooks replace global operator new for the including binary.
// Each test executable is a single translation unit, so including this
// header once per binary keeps the one-definition rule intact.

#include "field/field_catalog.h"
#include "field/gf2m.h"
#include "gf2/gf2_poly.h"
#include "gf2/pentanomial.h"
#include "netlist/clone.h"
#include "netlist/netlist.h"
#include "verify/campaign.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

// --- Counting allocator ------------------------------------------------------

namespace gfr::testutil::detail {
inline std::atomic<long> g_allocations{0};
}  // namespace gfr::testutil::detail

void* operator new(std::size_t size) {
    gfr::testutil::detail::g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gfr::testutil {

/// Heap allocations seen by this binary so far.  Tests measure deltas around
/// loops that must stay at zero.
inline long allocation_count() {
    return detail::g_allocations.load(std::memory_order_relaxed);
}

/// RAII window over the allocation counter: `AllocationGuard g; ...;
/// EXPECT_EQ(g.delta(), 0);`
class AllocationGuard {
public:
    AllocationGuard() : before_{allocation_count()} {}
    [[nodiscard]] long delta() const { return allocation_count() - before_; }

private:
    long before_;
};

// --- Seeded PRNG -------------------------------------------------------------

/// xorshift64* — tiny, fast, trivially copyable, identical on every platform
/// and standard library.  Good enough statistics for property tests, and its
/// value-semantics replay is what the concurrency tests lean on.
///
/// Deliberately THE SAME generator the verification campaign uses for its
/// sweep bodies (verify::SweepRng) — a thin wrapper, not a copy, so a
/// counterexample seed logged by either replays in both by construction.
class Xorshift64Star : public verify::SweepRng {
public:
    using verify::SweepRng::SweepRng;

    std::uint64_t next() noexcept { return (*this)(); }
};

// --- Random generators -------------------------------------------------------

/// Uniformly random polynomial of degree < max_bits (may be zero).
inline gf2::Poly random_poly(Xorshift64Star& rng, int max_bits) {
    if (max_bits <= 0) {
        return {};
    }
    std::vector<std::uint64_t> words(static_cast<std::size_t>((max_bits + 63) / 64));
    for (auto& w : words) {
        w = rng.next();
    }
    const int top = max_bits % 64;
    if (top != 0) {
        words.back() &= (std::uint64_t{1} << top) - 1;
    }
    return gf2::Poly::from_words(words);
}

/// Uniformly random canonical element of f (may be zero).
inline field::Field::Element random_element(const field::Field& f,
                                            Xorshift64Star& rng) {
    return random_poly(rng, f.degree());
}

/// Uniformly random nonzero canonical element of f.
inline field::Field::Element random_nonzero_element(const field::Field& f,
                                                    Xorshift64Star& rng) {
    for (;;) {
        auto e = random_element(f, rng);
        if (!e.is_zero()) {
            return e;
        }
    }
}

/// Random canonical element of a single-word field as its bit pattern.
inline std::uint64_t random_word_element(const field::Field& f,
                                         Xorshift64Star& rng) {
    const int m = f.degree();
    const std::uint64_t mask =
        (m >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << m) - 1);
    return rng.next() & mask;
}

// --- Field iteration ---------------------------------------------------------

/// Run fn(spec, field) over every Table V catalog field.
template <typename Fn>
void for_each_table5_field(Fn&& fn) {
    for (const auto& spec : field::table5_fields()) {
        const field::Field f = spec.make();
        fn(spec, f);
    }
}

/// The large-field differential degrees the arithmetic tier is exercised at
/// beyond Table V: wide trinomial/pentanomial moduli up to 16 words.
inline const std::vector<int>& large_differential_degrees() {
    static const std::vector<int> degrees = {127, 192, 256, 409, 571, 1024};
    return degrees;
}

/// A known low-weight irreducible modulus for each large differential
/// degree (trinomials where they exist, else the lexicographically-first
/// pentanomial from the standard low-weight tables).  Hardcoded rather than
/// searched: the runtime search is fine for catalog degrees but a unit test
/// should not pay a pentanomial sweep at m = 1024.  Field's constructor
/// re-proves irreducibility, so a typo here fails loudly.
inline gf2::Poly large_modulus(int m) {
    switch (m) {
        case 127:  return gf2::Poly::from_exponents({127, 1, 0});
        case 192:  return gf2::Poly::from_exponents({192, 7, 2, 1, 0});
        case 256:  return gf2::Poly::from_exponents({256, 10, 5, 2, 0});
        case 409:  return gf2::Poly::from_exponents({409, 87, 0});   // NIST B-409
        case 571:  return gf2::Poly::from_exponents({571, 10, 5, 2, 0});  // NIST B-571
        case 1024: return gf2::Poly::from_exponents({1024, 19, 6, 1, 0});
        default:   break;
    }
    const auto mod = gf2::preferred_low_weight_modulus(m);
    if (!mod.has_value()) {
        throw std::runtime_error{"no low-weight modulus for m=" + std::to_string(m)};
    }
    return *mod;
}

// --- Netlist cloning (verification-tier tests) -------------------------------
// The mutation substrate now lives in the library (netlist/clone.h) so the
// fault-injection campaign can build on it; these aliases keep the
// historical test-harness spelling.  The default here remains the interning
// clone — structural hashing in the destination may merge or simplify
// rewritten gates, which the mutation tests rely on.

using GateHook = netlist::GateHook;
using OutputHook = netlist::OutputHook;

inline netlist::Netlist clone_netlist(const netlist::Netlist& src,
                                      const GateHook& gate_hook = nullptr,
                                      const OutputHook& output_hook = nullptr) {
    return netlist::clone_netlist(src, {.intern = true}, gate_hook, output_hook);
}

}  // namespace gfr::testutil

#endif  // GFR_TESTS_TESTUTIL_H
