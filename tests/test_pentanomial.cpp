// Type II pentanomials: parameter validity, irreducibility of every field
// used in the paper's Table V, and the paper's NIST ECDSA claim.

#include "gf2/irreducibility.h"
#include "gf2/pentanomial.h"

#include <gtest/gtest.h>

namespace gfr::gf2 {
namespace {

TEST(TypeIIPentanomial, ParameterValidity) {
    EXPECT_TRUE(TypeIIPentanomial::valid_parameters(8, 2));
    EXPECT_TRUE(TypeIIPentanomial::valid_parameters(8, 3));
    EXPECT_FALSE(TypeIIPentanomial::valid_parameters(8, 4));   // n > m/2 - 1
    EXPECT_FALSE(TypeIIPentanomial::valid_parameters(8, 1));   // n < 2
    EXPECT_FALSE(TypeIIPentanomial::valid_parameters(5, 2));   // m too small: n > 5/2-1
    EXPECT_TRUE(TypeIIPentanomial::valid_parameters(163, 66));
    EXPECT_TRUE(TypeIIPentanomial::valid_parameters(163, 68));
    EXPECT_FALSE(TypeIIPentanomial::valid_parameters(163, 81));
    EXPECT_TRUE(TypeIIPentanomial::valid_parameters(163, 80));
}

TEST(TypeIIPentanomial, PolyShape) {
    const Poly f = TypeIIPentanomial{8, 2}.poly();
    EXPECT_EQ(f, Poly::from_exponents({8, 4, 3, 2, 0}));
    EXPECT_EQ(f.weight(), 5);
    EXPECT_THROW((TypeIIPentanomial{8, 7}.poly()), std::invalid_argument);
}

struct PaperField {
    int m;
    int n;
};

class PaperFieldIrreducibility : public ::testing::TestWithParam<PaperField> {};

TEST_P(PaperFieldIrreducibility, IsIrreducible) {
    const auto [m, n] = GetParam();
    EXPECT_TRUE(is_type2_irreducible(m, n)) << "(m,n)=(" << m << "," << n << ")";
}

INSTANTIATE_TEST_SUITE_P(AllTable5Fields, PaperFieldIrreducibility,
                         ::testing::Values(PaperField{8, 2}, PaperField{64, 23},
                                           PaperField{113, 4}, PaperField{113, 34},
                                           PaperField{122, 49}, PaperField{139, 59},
                                           PaperField{148, 72}, PaperField{163, 66},
                                           PaperField{163, 68}),
                         [](const auto& info) {
                             return "m" + std::to_string(info.param.m) + "n" +
                                    std::to_string(info.param.n);
                         });

TEST(TypeIIPentanomial, Gf28HasExactlyTwo) {
    // For m = 8 the valid range is n in {2, 3}; both yield irreducible
    // pentanomials (y^8+y^4+y^3+y^2+1 and y^8+y^5+y^4+y^3+1).
    EXPECT_EQ(type2_irreducible_ns(8), (std::vector<int>{2, 3}));
}

TEST(TypeIIPentanomial, Gf163IncludesPaperChoices) {
    const auto ns = type2_irreducible_ns(163);
    EXPECT_FALSE(ns.empty());
    EXPECT_NE(std::find(ns.begin(), ns.end(), 66), ns.end());
    EXPECT_NE(std::find(ns.begin(), ns.end(), 68), ns.end());
}

TEST(TypeIIPentanomial, NistEcdsaDegreesAllAdmitTypeII) {
    // The paper's motivating claim: "all five binary fields recommended by
    // NIST for ECDSA can be constructed using such polynomials".
    for (const int m : {163, 233, 283, 409, 571}) {
        const auto penta = first_type2_irreducible(m);
        ASSERT_TRUE(penta.has_value()) << "m=" << m;
        EXPECT_TRUE(is_irreducible(penta->poly()));
    }
}

TEST(TypeIIPentanomial, FirstReturnsSmallestN) {
    const auto penta = first_type2_irreducible(8);
    ASSERT_TRUE(penta.has_value());
    EXPECT_EQ(penta->n, 2);
}

TEST(TypeIIPentanomial, SomeDegreesHaveNone) {
    // Degree 6: candidates n=2 only: y^6+y^4+y^3+y^2+1 = (y^2+y+1)^3 reducible.
    EXPECT_TRUE(type2_irreducible_ns(6).empty());
    EXPECT_FALSE(first_type2_irreducible(6).has_value());
}

TEST(TypeIIPentanomial, InvalidParametersNeverIrreducible) {
    EXPECT_FALSE(is_type2_irreducible(8, 1));
    EXPECT_FALSE(is_type2_irreducible(8, 4));
    EXPECT_FALSE(is_type2_irreducible(4, 2));
}

}  // namespace
}  // namespace gfr::gf2
