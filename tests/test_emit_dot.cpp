// Graphviz export: structure of the emitted digraph.

#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "netlist/emit_dot.h"

#include <gtest/gtest.h>

namespace gfr::netlist {
namespace {

TEST(EmitDot, SmallCircuit) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("y", nl.make_xor(nl.make_and(a, b), a));
    const auto text = emit_dot(nl, "tiny");
    EXPECT_NE(text.find("digraph \"tiny\""), std::string::npos);
    EXPECT_NE(text.find("shape=box,label=\"a\""), std::string::npos);
    EXPECT_NE(text.find("shape=triangle"), std::string::npos);
    EXPECT_NE(text.find("shape=circle"), std::string::npos);
    EXPECT_NE(text.find("shape=doublecircle,label=\"y\""), std::string::npos);
    EXPECT_NE(text.find("}"), std::string::npos);
}

TEST(EmitDot, EdgeCountMatchesGateFanins) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    nl.add_output("y", nl.make_xor(nl.make_and(a, b), c));
    const auto text = emit_dot(nl, "g");
    std::size_t edges = 0;
    for (std::size_t pos = text.find(" -> "); pos != std::string::npos;
         pos = text.find(" -> ", pos + 1)) {
        ++edges;
    }
    // 2 AND fanins + 2 XOR fanins + 1 output edge.
    EXPECT_EQ(edges, 5U);
}

TEST(EmitDot, NoOutputsThrows) {
    Netlist nl;
    nl.add_input("a");
    EXPECT_THROW(static_cast<void>(emit_dot(nl, "x")), std::invalid_argument);
}

TEST(EmitDot, MultiplierExports) {
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat,
                                           field::gf256_paper_field());
    const auto text = emit_dot(nl, "gf256_mult");
    EXPECT_GT(text.size(), 3000U);
    // All eight outputs present.
    for (int k = 0; k < 8; ++k) {
        EXPECT_NE(text.find("label=\"c" + std::to_string(k) + "\""),
                  std::string::npos);
    }
}

TEST(EmitDot, DeadLogicOmitted) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.make_xor(a, b);  // dead
    nl.add_output("y", nl.make_and(a, b));
    const auto text = emit_dot(nl, "g");
    EXPECT_EQ(text.find("circle,label=\"^\""), std::string::npos);
}

}  // namespace
}  // namespace gfr::netlist
