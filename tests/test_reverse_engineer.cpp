// Anonymous-circuit spec recovery: reverse_engineer must reconstruct the
// modulus, the operand port order and the output order of every Table V
// multiplier after its names are stripped and its ports shuffled — and must
// return a clean "not a GF(2^m) multiplier" verdict (never a crash, never a
// bogus recovery) on circuits that are anything else.  The VHDL parser that
// feeds it third-party exports is round-tripped here too.

#include "acv/acv.h"

#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "netlist/emit_vhdl.h"
#include "netlist/equivalence.h"
#include "netlist/parse_vhdl.h"
#include "opt/opt.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace gfr::acv {
namespace {

using netlist::Netlist;

/// The recovered port maps, validated against the known shuffle.  The spec
/// names ANON port indices; anon.input_map sends them back to SOURCE ports
/// (a_i at source port i, b_i at source port m+i).  A*B is commutative, so
/// the recovery may land on either labelling — detect the swap from a_0 and
/// require the rest to be consistent with it.
void expect_maps_match(const AnonymizedNetlist& anon, const RecoveredSpec& spec) {
    const int m = spec.m;
    ASSERT_EQ(static_cast<int>(spec.a_inputs.size()), m);
    ASSERT_EQ(static_cast<int>(spec.b_inputs.size()), m);
    ASSERT_EQ(static_cast<int>(spec.c_outputs.size()), m);
    const bool swapped =
        anon.input_map[static_cast<std::size_t>(spec.a_inputs[0])] >= m;
    for (int i = 0; i < m; ++i) {
        const int a_src =
            anon.input_map[static_cast<std::size_t>(spec.a_inputs[static_cast<std::size_t>(i)])];
        const int b_src =
            anon.input_map[static_cast<std::size_t>(spec.b_inputs[static_cast<std::size_t>(i)])];
        EXPECT_EQ(a_src, swapped ? m + i : i) << "a" << i;
        EXPECT_EQ(b_src, swapped ? i : m + i) << "b" << i;
    }
    for (int k = 0; k < m; ++k) {
        EXPECT_EQ(anon.output_map[static_cast<std::size_t>(
                      spec.c_outputs[static_cast<std::size_t>(k)])],
                  k)
            << "c" << k;
    }
}

void expect_rejected(const Netlist& nl, const std::string& label) {
    const auto result = reverse_engineer(nl);
    EXPECT_FALSE(result.recovered) << label;
    EXPECT_EQ(result.reason.rfind("not a GF(2^m) multiplier: ", 0), 0U)
        << label << ": '" << result.reason << "'";
}

TEST(ParseVhdl, RoundTripsEmittedMultiplier) {
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Imana2016Paren, fld);
    const auto parsed = netlist::parse_vhdl(netlist::emit_vhdl(nl, "gf2m_mult"));
    ASSERT_EQ(parsed.inputs().size(), nl.inputs().size());
    ASSERT_EQ(parsed.outputs().size(), nl.outputs().size());
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        EXPECT_EQ(parsed.inputs()[i].name, nl.inputs()[i].name);
    }
    EXPECT_FALSE(netlist::check_equivalence(nl, parsed).has_value());
}

TEST(ParseVhdl, RejectsMalformedTextWithLineNumbers) {
    const auto line_error = [](const std::string& text) -> std::string {
        try {
            static_cast<void>(netlist::parse_vhdl(text));
        } catch (const std::invalid_argument& e) {
            return e.what();
        }
        return "";
    };
    // Undefined operand.
    EXPECT_NE(line_error("a : in std_logic;\nc : out std_logic;\n"
                         "c <= a and ghost;\n")
                  .find("line 3"),
              std::string::npos);
    // Unsupported expression shape.
    EXPECT_NE(line_error("a : in std_logic;\nc : out std_logic;\n"
                         "c <= a or a;\n")
                  .find("line 3"),
              std::string::npos);
    // Double drive.
    EXPECT_NE(line_error("a : in std_logic;\nc : out std_logic;\n"
                         "c <= a;\nc <= a;\n")
                  .find("driven twice"),
              std::string::npos);
    // Missing semicolon.
    EXPECT_NE(line_error("a : in std_logic;\nc : out std_logic;\nc <= a\n")
                  .find("';'"),
              std::string::npos);
    // Undriven output.
    EXPECT_NE(line_error("a : in std_logic;\nc : out std_logic;\n")
                  .find("no driver"),
              std::string::npos);
}

TEST(ReverseEngineer, RecoversEveryTableVField) {
    std::uint64_t seed = 0xB11DULL;
    testutil::for_each_table5_field([&](const field::FieldSpec& fspec,
                                        const field::Field& fld) {
        auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
        // Optimize first so the recovery faces restructured logic, not the
        // generator's layout.  Full pipeline where it is cheap; strash-only
        // on the big fields to bound the suite (the bench proves the full
        // pipeline's output on every cell).
        opt::OptOptions opt_options;
        if (fld.degree() > 64) {
            opt_options.restructure = false;
            opt_options.rewrite_rounds = 0;
            opt_options.reduce = false;
        }
        const auto optimized = opt::optimize(nl, opt_options);
        const auto anon = anonymize_ports(optimized.netlist, ++seed);

        const auto result = reverse_engineer(anon.netlist);
        ASSERT_TRUE(result.recovered)
            << fspec.label() << ": " << result.reason;
        EXPECT_EQ(result.spec.modulus, fld.modulus()) << fspec.label();
        EXPECT_EQ(result.spec.m, fld.degree());
        EXPECT_EQ(result.spec.modulus_family,
                  "type II pentanomial (" + std::to_string(fspec.m) + ", " +
                      std::to_string(fspec.n) + ")");
        expect_maps_match(anon, result.spec);

        // The recovered spec must re-expose a provable canonical interface.
        const auto relabeled = relabel_ports(anon.netlist, result.spec);
        const auto proof = prove_multiplier(relabeled, fld);
        EXPECT_FALSE(proof.has_value())
            << fspec.label() << ": " << proof->to_string();
    });
}

TEST(ReverseEngineer, RecoversBlindFromVhdlText) {
    // The full blind loop: optimize, anonymize, print to VHDL, read the text
    // back with no metadata, recover, relabel, prove.
    const field::Field fld = field::gf256_paper_field();
    const auto optimized =
        opt::optimize(mult::build_multiplier(mult::Method::Date2018Flat, fld));
    const auto anon = anonymize_ports(optimized.netlist, 0x5EC0DEULL);
    const auto blind =
        netlist::parse_vhdl(netlist::emit_vhdl(anon.netlist, "mystery"));
    const auto result = reverse_engineer(blind);
    ASSERT_TRUE(result.recovered) << result.reason;
    EXPECT_EQ(result.spec.modulus, fld.modulus());
    EXPECT_FALSE(
        prove_multiplier(relabel_ports(blind, result.spec), fld).has_value());
}

TEST(ReverseEngineer, RecoversTrinomialFieldFromSchoolbook) {
    // Off the pentanomial catalog: a trinomial field through the generic
    // schoolbook family, to pin the trinomial branch of the family label.
    const field::Field fld{gf2::Poly::from_exponents({9, 1, 0})};
    const auto nl = mult::build_multiplier(mult::Method::SchoolReduce, fld);
    const auto anon = anonymize_ports(nl, 0x7213ULL);
    const auto result = reverse_engineer(anon.netlist);
    ASSERT_TRUE(result.recovered) << result.reason;
    EXPECT_EQ(result.spec.modulus, fld.modulus());
    EXPECT_EQ(result.spec.modulus_family, "trinomial k=1");
    expect_maps_match(anon, result.spec);
}

TEST(ReverseEngineer, PinnedSpecFormat) {
    const field::Field fld = field::gf256_paper_field();
    const auto anon = anonymize_ports(
        mult::build_multiplier(mult::Method::Date2018Flat, fld), 1);
    const auto result = reverse_engineer(anon.netlist);
    ASSERT_TRUE(result.recovered) << result.reason;
    EXPECT_EQ(result.spec.to_string(),
              "GF(2^8) multiplier: f = y^8 + y^4 + y^3 + y^2 + 1 "
              "(type II pentanomial (8, 2))");
}

TEST(ReverseEngineer, AnonymizationIsDeterministicPerSeed) {
    const field::Field fld = field::gf256_paper_field();
    const auto nl = mult::build_multiplier(mult::Method::Imana2012, fld);
    const auto a = anonymize_ports(nl, 42);
    const auto b = anonymize_ports(nl, 42);
    const auto c = anonymize_ports(nl, 43);
    EXPECT_EQ(a.input_map, b.input_map);
    EXPECT_EQ(a.output_map, b.output_map);
    EXPECT_NE(a.input_map, c.input_map);  // 16! permutations; 42 vs 43 differ
}

TEST(ReverseEngineer, RejectsNonMultipliersCleanly) {
    // Element-wise AND: bilinear, bipartite, balanced — but every output
    // owns exactly one singleton pair, which is not a multiplier's column
    // signature.
    {
        Netlist nl;
        std::vector<netlist::NodeId> xs;
        std::vector<netlist::NodeId> ys;
        for (int i = 0; i < 4; ++i) {
            xs.push_back(nl.add_input("x" + std::to_string(i)));
        }
        for (int i = 0; i < 4; ++i) {
            ys.push_back(nl.add_input("y" + std::to_string(i)));
        }
        for (int i = 0; i < 4; ++i) {
            nl.add_output("z" + std::to_string(i),
                          nl.make_and(xs[static_cast<std::size_t>(i)],
                                      ys[static_cast<std::size_t>(i)]));
        }
        expect_rejected(nl, "element-wise AND");
    }
    // A triangle of products: x0x1 ^ x1x2 ^ x0x2 cannot split into two
    // operand sides.
    {
        Netlist nl;
        const auto x0 = nl.add_input("x0");
        const auto x1 = nl.add_input("x1");
        const auto x2 = nl.add_input("x2");
        const auto x3 = nl.add_input("x3");
        const auto t = nl.make_xor(nl.make_and(x0, x1), nl.make_and(x1, x2));
        nl.add_output("z0", nl.make_xor(t, nl.make_and(x0, x2)));
        nl.add_output("z1", nl.make_and(x0, x3));
        expect_rejected(nl, "product triangle");
    }
    // Linear and cubic terms break bilinearity.
    {
        Netlist nl;
        const auto x0 = nl.add_input("x0");
        const auto x1 = nl.add_input("x1");
        const auto y0 = nl.add_input("y0");
        const auto y1 = nl.add_input("y1");
        nl.add_output("z0", nl.make_xor(x0, x1));
        nl.add_output("z1", nl.make_and(y0, y1));
        expect_rejected(nl, "linear output");
    }
    {
        Netlist nl;
        const auto x0 = nl.add_input("x0");
        const auto x1 = nl.add_input("x1");
        const auto y0 = nl.add_input("y0");
        const auto y1 = nl.add_input("y1");
        nl.add_output("z0", nl.make_and(nl.make_and(x0, x1), y0));
        nl.add_output("z1", nl.make_and(y1, x0));
        expect_rejected(nl, "cubic output");
    }
    // Port shape and constant outputs.
    {
        Netlist nl;
        const auto x0 = nl.add_input("x0");
        const auto x1 = nl.add_input("x1");
        const auto x2 = nl.add_input("x2");
        nl.add_output("z0", nl.make_and(x0, x1));
        nl.add_output("z1", nl.make_and(x1, x2));
        expect_rejected(nl, "wrong port shape");
    }
    {
        Netlist nl;
        const auto x0 = nl.add_input("x0");
        const auto x1 = nl.add_input("x1");
        const auto y0 = nl.add_input("y0");
        const auto y1 = nl.add_input("y1");
        nl.add_output("z0", nl.make_and(x0, y0));
        nl.add_output("z1", nl.const0());
        static_cast<void>(x1);
        static_cast<void>(y1);
        expect_rejected(nl, "constant-zero output");
    }
    // A genuine multiplier is NOT rejected by the same entry point.
    {
        const field::Field fld = field::gf256_paper_field();
        const auto anon = anonymize_ports(
            mult::build_multiplier(mult::Method::ReyhaniHasan, fld), 7);
        const auto result = reverse_engineer(anon.netlist);
        EXPECT_TRUE(result.recovered) << result.reason;
    }
}

}  // namespace
}  // namespace gfr::acv
