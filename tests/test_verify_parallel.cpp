// Concurrency tests for the verification campaign engine.
//
// Two layers of claims:
//
//   1. The Campaign driver itself: its result is the *global minimum*
//      failing sweep index no matter the thread count or schedule, every
//      sweep below that minimum is actually executed (nothing is skipped
//      that could have failed earlier), trivial spaces run inline, and
//      worker exceptions propagate.
//
//   2. The verifiers built on it: many concurrent verify_multiplier /
//      check_equivalence runs over ONE shared immutable Field and netlist
//      must produce bit-identical results to a serial replay — the
//      shared-Field hammer of test_field_concurrency.cpp, moved up one
//      layer to the verification tier.
//
// Run under TSan in CI (threaded-binaries job) for the data-race half of
// the claim; the replay checks here catch corrupted results on any build.

#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "netlist/equivalence.h"
#include "verify/campaign.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gfr::verify {
namespace {

TEST(Campaign, EmptySpaceHasNoFailure) {
    Campaign c;
    EXPECT_EQ(c.run(0, [](int) { return [](std::uint64_t) { return false; }; }),
              kNoFailure);
}

TEST(Campaign, CleanSpacePassesAtEveryThreadCount) {
    for (const int threads : {1, 2, 4, 8}) {
        Campaign c{{.threads = threads, .min_sweeps_per_worker = 1, .chunk = 3}};
        std::atomic<std::uint64_t> executed{0};
        const auto result = c.run(777, [&](int) {
            return [&](std::uint64_t) {
                executed.fetch_add(1, std::memory_order_relaxed);
                return false;
            };
        });
        EXPECT_EQ(result, kNoFailure) << threads << " threads";
        EXPECT_EQ(executed.load(), 777U) << threads << " threads";
    }
}

TEST(Campaign, ReturnsGlobalMinimumFailureAtEveryThreadCount) {
    const std::set<std::uint64_t> failing = {911, 37, 500, 38};
    for (const int threads : {1, 2, 4, 8}) {
        Campaign c{{.threads = threads, .min_sweeps_per_worker = 1, .chunk = 5}};
        // Track execution so we can assert the determinism invariant: every
        // sweep below the returned minimum ran (and so provably passed).
        std::vector<std::atomic<int>> ran(1000);
        const auto result = c.run(1000, [&](int) {
            return [&](std::uint64_t s) {
                ran[s].fetch_add(1, std::memory_order_relaxed);
                return failing.count(s) != 0;
            };
        });
        ASSERT_EQ(result, 37U) << threads << " threads";
        for (std::uint64_t s = 0; s < 37; ++s) {
            EXPECT_GE(ran[s].load(), 1) << "sweep " << s << " skipped at " << threads
                                        << " threads";
        }
    }
}

TEST(Campaign, EarlyFailureCancelsMostOfTheSpace) {
    // A failure at sweep 3 of 100000 must not force the whole space: with
    // the chunked cursor, the executed count stays far below the total.
    Campaign c{{.threads = 4, .min_sweeps_per_worker = 1, .chunk = 8}};
    std::atomic<std::uint64_t> executed{0};
    const auto result = c.run(100000, [&](int) {
        return [&](std::uint64_t s) {
            executed.fetch_add(1, std::memory_order_relaxed);
            return s == 3;
        };
    });
    EXPECT_EQ(result, 3U);
    EXPECT_LT(executed.load(), 10000U);
}

TEST(Campaign, WorkerExceptionPropagates) {
    for (const int threads : {1, 4}) {
        Campaign c{{.threads = threads, .min_sweeps_per_worker = 1}};
        EXPECT_THROW(
            static_cast<void>(c.run(100,
                                    [&](int) {
                                        return [](std::uint64_t s) -> bool {
                                            if (s == 5) {
                                                throw std::runtime_error{"boom"};
                                            }
                                            return false;
                                        };
                                    })),
            std::runtime_error)
            << threads << " threads";
    }
}

TEST(Campaign, WorkerCountRespectsSpaceAndRequest) {
    Campaign c{{.threads = 8, .min_sweeps_per_worker = 64}};
    EXPECT_EQ(c.worker_count(0), 1);
    EXPECT_EQ(c.worker_count(63), 1);
    EXPECT_EQ(c.worker_count(128), 2);
    EXPECT_EQ(c.worker_count(1 << 20), 8);
    // The random-regime floor the verifiers use: a default 64-sweep
    // campaign shards instead of silently serializing the threads knob.
    Campaign random_regime{{.threads = 4, .min_sweeps_per_worker = 4}};
    EXPECT_EQ(random_regime.worker_count(64), 4);
    EXPECT_EQ(random_regime.worker_count(8), 2);
}

TEST(Campaign, FactoryRunsOncePerWorker) {
    Campaign c{{.threads = 4, .min_sweeps_per_worker = 1}};
    std::atomic<int> factories{0};
    const int expected = c.worker_count(4096);
    static_cast<void>(c.run(4096, [&](int) {
        factories.fetch_add(1, std::memory_order_relaxed);
        return [](std::uint64_t) { return false; };
    }));
    EXPECT_EQ(factories.load(), expected);
}

// --- Shared-Field verification hammer ---------------------------------------
//
// One immutable Field + one netlist, verified from several threads at once
// (each campaign itself multi-threaded on top), judged against a serial
// replay: identical verdicts, identical counterexamples.

mult::VerifyOptions hammer_options(std::uint64_t seed, int threads) {
    mult::VerifyOptions opts;
    opts.seed = seed;
    opts.threads = threads;
    opts.random_sweeps = 16;
    return opts;
}

/// A Date2018 multiplier for f with output c0 corrupted by XOR-ing in a0 —
/// a single injected fault, guaranteed functionally wrong.
netlist::Netlist corrupted_multiplier(const field::Field& f) {
    const auto good = mult::build_multiplier(mult::Method::Date2018Flat, f);
    return testutil::clone_netlist(
        good, nullptr,
        [](std::size_t index, std::span<const netlist::NodeId> mapped,
           netlist::Netlist& dst) {
            return index == 0 ? dst.make_xor(mapped[0], dst.inputs()[0].node)
                              : mapped[index];
        });
}

TEST(VerifyParallel, SharedFieldHammerMatchesSerialReplay) {
    const field::Field f = field::Field::type2(163, 66);
    const auto good = mult::build_multiplier(mult::Method::Date2018Flat, f);
    const auto bad = corrupted_multiplier(f);

    constexpr int kThreads = 4;
    struct Outcome {
        bool good_ok = false;
        std::string bad_failure;
    };

    const auto run_one = [&](std::uint64_t seed) {
        Outcome o;
        o.good_ok = !mult::verify_multiplier(good, f, hammer_options(seed, 2)).has_value();
        const auto failure = mult::verify_multiplier(bad, f, hammer_options(seed, 2));
        o.bad_failure = failure.has_value() ? failure->to_string() : "";
        return o;
    };

    std::vector<Outcome> threaded(kThreads);
    {
        std::vector<std::thread> workers;
        workers.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            workers.emplace_back(
                [&, t] { threaded[static_cast<std::size_t>(t)] = run_one(0xFEED + t); });
        }
        for (auto& w : workers) {
            w.join();
        }
    }
    for (int t = 0; t < kThreads; ++t) {
        const Outcome serial = run_one(0xFEED + t);
        EXPECT_TRUE(threaded[static_cast<std::size_t>(t)].good_ok);
        EXPECT_EQ(threaded[static_cast<std::size_t>(t)].good_ok, serial.good_ok);
        EXPECT_FALSE(serial.bad_failure.empty());
        EXPECT_EQ(threaded[static_cast<std::size_t>(t)].bad_failure, serial.bad_failure)
            << "thread " << t << " diverged from serial replay";
    }
}

TEST(VerifyParallel, ConcurrentEquivalenceChecksAgree) {
    // Several concurrent equivalence campaigns over the same pair of
    // netlists (30 inputs -> random regime), against a serial replay.
    netlist::Netlist lhs;
    netlist::Netlist rhs;
    std::vector<netlist::NodeId> li;
    std::vector<netlist::NodeId> ri;
    for (int i = 0; i < 30; ++i) {
        li.push_back(lhs.add_input("i" + std::to_string(i)));
        ri.push_back(rhs.add_input("i" + std::to_string(i)));
    }
    lhs.add_output("y", lhs.make_xor_tree(li, netlist::TreeShape::Balanced));
    rhs.add_output("y",
                   rhs.make_xor_tree(std::span{ri.data(), 29}, netlist::TreeShape::Chain));

    const auto run_one = [&](std::uint64_t seed) {
        netlist::EquivalenceOptions opts;
        opts.seed = seed;
        opts.threads = 2;
        const auto mm = netlist::check_equivalence(lhs, rhs, opts);
        return mm.has_value() ? mm->to_string() : std::string{};
    };

    constexpr int kThreads = 4;
    std::vector<std::string> threaded(kThreads);
    {
        std::vector<std::thread> workers;
        for (int t = 0; t < kThreads; ++t) {
            workers.emplace_back(
                [&, t] { threaded[static_cast<std::size_t>(t)] = run_one(0xABC + t); });
        }
        for (auto& w : workers) {
            w.join();
        }
    }
    for (int t = 0; t < kThreads; ++t) {
        const auto serial = run_one(0xABC + t);
        EXPECT_FALSE(serial.empty());
        EXPECT_EQ(threaded[static_cast<std::size_t>(t)], serial) << "thread " << t;
    }
}

}  // namespace
}  // namespace gfr::verify
