// Karatsuba multiplier: correctness, subquadratic AND counts, threshold
// behaviour.

#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "multipliers/karatsuba.h"
#include "multipliers/verify.h"
#include "netlist/equivalence.h"

#include <gtest/gtest.h>

namespace gfr::mult {
namespace {

TEST(Karatsuba, ExhaustiveGf256) {
    const field::Field fld = field::gf256_paper_field();
    for (const int threshold : {1, 2, 4, 8}) {
        const auto nl = build_karatsuba(fld, KaratsubaOptions{threshold});
        const auto failure = verify_multiplier(nl, fld);
        EXPECT_FALSE(failure.has_value())
            << "threshold " << threshold << ": " << failure->to_string();
    }
}

class KaratsubaFields : public ::testing::TestWithParam<field::FieldSpec> {};

TEST_P(KaratsubaFields, MatchesReference) {
    const field::Field fld = GetParam().make();
    const auto nl = build_karatsuba(fld);
    const auto failure = verify_multiplier(nl, fld);
    EXPECT_FALSE(failure.has_value()) << failure->to_string();
}

INSTANTIATE_TEST_SUITE_P(Table5Fields, KaratsubaFields,
                         ::testing::ValuesIn(field::table5_fields()),
                         [](const auto& info) {
                             return "m" + std::to_string(info.param.m) + "n" +
                                    std::to_string(info.param.n);
                         });

TEST(Karatsuba, AndCountMatchesClosedFormPowerOfTwo) {
    // For power-of-two widths every split is even and the closed form is
    // exact.
    for (const auto& spec : {field::FieldSpec{8, 2, ""}, field::FieldSpec{64, 23, ""}}) {
        const field::Field fld = spec.make();
        for (const int threshold : {4, 8}) {
            const auto stats = build_karatsuba(fld, KaratsubaOptions{threshold}).stats();
            EXPECT_EQ(stats.n_and, karatsuba_and_count(spec.m, threshold))
                << spec.label() << " t=" << threshold;
        }
    }
}

TEST(Karatsuba, AndCountBoundedByClosedFormOddWidths) {
    // Odd splits fold the zero-padded middle-operand top bit to a plain
    // wire, so structural hashing merges the boundary products of the middle
    // and high subproducts: the closed form is an upper bound.
    for (const auto& spec :
         {field::FieldSpec{113, 4, ""}, field::FieldSpec{163, 66, ""}}) {
        const field::Field fld = spec.make();
        for (const int threshold : {4, 8}) {
            const auto stats = build_karatsuba(fld, KaratsubaOptions{threshold}).stats();
            const long bound = karatsuba_and_count(spec.m, threshold);
            EXPECT_LE(stats.n_and, bound) << spec.label() << " t=" << threshold;
            EXPECT_GE(stats.n_and, bound * 9 / 10) << spec.label() << " t=" << threshold;
        }
    }
}

TEST(Karatsuba, SubquadraticAtScale) {
    // At m = 163, full recursion needs far fewer than m^2 = 26569 ANDs.
    const long full = karatsuba_and_count(163, 1);
    EXPECT_LT(full, 7000);
    const field::Field fld = field::Field::type2(163, 66);
    const auto stats = build_karatsuba(fld, KaratsubaOptions{8}).stats();
    EXPECT_LT(stats.n_and, 163 * 163 / 2);
}

TEST(Karatsuba, ThresholdTradesAndForXor) {
    // Smaller thresholds: fewer ANDs, more XORs (the classic KOA trade).
    const field::Field fld = field::Field::type2(64, 23);
    const auto deep = build_karatsuba(fld, KaratsubaOptions{2}).stats();
    const auto shallow = build_karatsuba(fld, KaratsubaOptions{16}).stats();
    EXPECT_LT(deep.n_and, shallow.n_and);
    EXPECT_GT(deep.n_xor, shallow.n_xor);
}

TEST(Karatsuba, ClosedFormBasics) {
    EXPECT_EQ(karatsuba_and_count(0, 4), 0);
    EXPECT_EQ(karatsuba_and_count(1, 4), 1);
    EXPECT_EQ(karatsuba_and_count(4, 4), 16);   // schoolbook at threshold
    EXPECT_EQ(karatsuba_and_count(2, 1), 3);    // classic 2-bit KOA
    EXPECT_EQ(karatsuba_and_count(4, 1), 9);    // 3^2
    EXPECT_EQ(karatsuba_and_count(8, 1), 27);   // 3^3
}

TEST(Karatsuba, EquivalentToSchoolbookNetlist) {
    const field::Field fld = field::gf256_paper_field();
    const auto koa = build_karatsuba(fld, KaratsubaOptions{2});
    const auto school = build_multiplier(Method::SchoolReduce, fld);
    EXPECT_FALSE(netlist::check_equivalence(koa, school).has_value());
}

TEST(Karatsuba, InvalidThresholdThrows) {
    const field::Field fld = field::gf256_paper_field();
    EXPECT_THROW(static_cast<void>(build_karatsuba(fld, KaratsubaOptions{0})),
                 std::invalid_argument);
}

TEST(Karatsuba, OddWidthSplitsAreCorrect) {
    // m = 113 forces odd splits at several recursion levels; also check an
    // odd threshold.
    const field::Field fld = field::Field::type2(113, 34);
    const auto nl = build_karatsuba(fld, KaratsubaOptions{3});
    VerifyOptions opts;
    opts.random_sweeps = 16;
    const auto failure = verify_multiplier(nl, fld, opts);
    EXPECT_FALSE(failure.has_value()) << failure->to_string();
}

}  // namespace
}  // namespace gfr::mult
