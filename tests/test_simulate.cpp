// Word-parallel simulation against hand-computed truth tables, plus
// randomized compiled-vs-interpreted differentials on the shared harness
// (tests/testutil.h: seeded PRNG, allocation guard).

#include "netlist/simulate.h"
#include "testutil.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gfr::netlist {
namespace {

using testutil::Xorshift64Star;

/// Random DAG of AND/XOR gates over `n_inputs` inputs, built bottom-up so
/// structural hashing and simplification rules fire on real shapes.
Netlist random_netlist(Xorshift64Star& rng, int n_inputs, int n_gates,
                       int n_outputs) {
    Netlist nl;
    std::vector<NodeId> pool;
    for (int i = 0; i < n_inputs; ++i) {
        pool.push_back(nl.add_input("i" + std::to_string(i)));
    }
    for (int g = 0; g < n_gates; ++g) {
        const NodeId a = pool[rng.next() % pool.size()];
        const NodeId b = pool[rng.next() % pool.size()];
        pool.push_back((rng.next() & 1U) ? nl.make_and(a, b) : nl.make_xor(a, b));
    }
    for (int o = 0; o < n_outputs; ++o) {
        nl.add_output("o" + std::to_string(o), pool[rng.next() % pool.size()]);
    }
    return nl;
}

TEST(Simulate, AndXorLanes) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("and", nl.make_and(a, b));
    nl.add_output("xor", nl.make_xor(a, b));

    const std::vector<std::uint64_t> in = {0b0101, 0b0011};
    const auto out = simulate(nl, in);
    ASSERT_EQ(out.size(), 2U);
    EXPECT_EQ(out[0], 0b0001ULL);
    EXPECT_EQ(out[1], 0b0110ULL);
}

TEST(Simulate, ConstantZero) {
    Netlist nl;
    const auto a = nl.add_input("a");
    nl.add_output("z", nl.make_xor(a, a));
    const auto out = simulate(nl, std::vector<std::uint64_t>{~0ULL});
    EXPECT_EQ(out[0], 0ULL);
}

TEST(Simulate, WrongInputCountThrows) {
    Netlist nl;
    nl.add_input("a");
    nl.add_input("b");
    Simulator sim{nl};
    EXPECT_THROW(sim.run(std::vector<std::uint64_t>{1}), std::invalid_argument);
}

TEST(Simulate, SimulatorReuse) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("y", nl.make_xor(a, b));
    Simulator sim{nl};
    EXPECT_EQ(sim.run(std::vector<std::uint64_t>{0xF0, 0x0F})[0], 0xFFULL);
    EXPECT_EQ(sim.run(std::vector<std::uint64_t>{0xFF, 0x0F})[0], 0xF0ULL);
}

TEST(Simulate, ExhaustivePatternInWordVariables) {
    // Input i < 6: the canonical truth-table masks; independent of block.
    EXPECT_EQ(exhaustive_pattern(0, 0), 0xAAAAAAAAAAAAAAAAULL);
    EXPECT_EQ(exhaustive_pattern(5, 7), 0xFFFFFFFF00000000ULL);
}

TEST(Simulate, ExhaustivePatternBlockVariables) {
    EXPECT_EQ(exhaustive_pattern(6, 0), 0ULL);
    EXPECT_EQ(exhaustive_pattern(6, 1), ~0ULL);
    EXPECT_EQ(exhaustive_pattern(7, 1), 0ULL);
    EXPECT_EQ(exhaustive_pattern(7, 2), ~0ULL);
    EXPECT_THROW(exhaustive_pattern(-1, 0), std::invalid_argument);
}

TEST(Simulate, ExhaustiveEnumerationCoversAllAssignments) {
    // 8 inputs -> 4 blocks x 64 lanes = 256 distinct assignments.
    const int n = 8;
    std::vector<bool> seen(1U << n, false);
    for (std::uint64_t block = 0; block < 4; ++block) {
        for (int lane = 0; lane < 64; ++lane) {
            unsigned idx = 0;
            for (int i = 0; i < n; ++i) {
                idx |= static_cast<unsigned>((exhaustive_pattern(i, block) >> lane) & 1U)
                       << i;
            }
            seen[idx] = true;
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_TRUE(seen[i]) << "assignment " << i << " never generated";
    }
}

TEST(Simulate, MajorityCircuit) {
    // maj(a,b,c) = ab ^ ac ^ bc — verify against all 8 assignments.
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    const auto t = nl.make_xor(nl.make_and(a, b), nl.make_and(a, c));
    nl.add_output("maj", nl.make_xor(t, nl.make_and(b, c)));

    std::vector<std::uint64_t> in = {exhaustive_pattern(0, 0), exhaustive_pattern(1, 0),
                                     exhaustive_pattern(2, 0)};
    const auto out = simulate(nl, in);
    for (int lane = 0; lane < 8; ++lane) {
        const int av = (lane >> 0) & 1;
        const int bv = (lane >> 1) & 1;
        const int cv = (lane >> 2) & 1;
        const int expected = (av + bv + cv >= 2) ? 1 : 0;
        EXPECT_EQ(static_cast<int>((out[0] >> lane) & 1), expected) << "lane " << lane;
    }
}

TEST(Simulate, CompiledSimulatorMatchesInterpreterOnRandomNetlists) {
    // The Simulator executes the compiled tape; the interpreter is the
    // structurally independent reference.  Random DAGs (including dead
    // cones, aliased outputs and rehashed duplicate gates) must agree
    // word-exactly on every lane.
    Xorshift64Star rng{0x51D57E57ULL};
    for (int round = 0; round < 20; ++round) {
        const int n_inputs = 2 + static_cast<int>(rng.next() % 12);
        const int n_gates = 1 + static_cast<int>(rng.next() % 200);
        const int n_outputs = 1 + static_cast<int>(rng.next() % 8);
        const auto nl = random_netlist(rng, n_inputs, n_gates, n_outputs);
        Simulator sim{nl};
        std::vector<std::uint64_t> in(static_cast<std::size_t>(n_inputs));
        std::vector<std::uint64_t> out;
        for (int sweep = 0; sweep < 4; ++sweep) {
            for (auto& w : in) {
                w = rng.next();
            }
            sim.run_into(in, out);
            const auto ref = simulate_interpreted(nl, in);
            ASSERT_EQ(out, ref) << "round " << round << " sweep " << sweep;
        }
    }
}

TEST(Simulate, SteadyStateSweepsAreAllocationFree) {
    // A sweep loop holding one Simulator and one output buffer must not
    // touch the heap after the first call (tape and scratch are cached).
    Xorshift64Star rng{0xA110CULL};
    const auto nl = random_netlist(rng, 8, 300, 6);
    Simulator sim{nl};
    std::vector<std::uint64_t> in(8, 0x0123456789ABCDEFULL);
    std::vector<std::uint64_t> out;
    sim.run_into(in, out);  // warm: compile + size buffers
    testutil::AllocationGuard guard;
    for (int sweep = 0; sweep < 128; ++sweep) {
        in[0] ^= static_cast<std::uint64_t>(sweep);
        sim.run_into(in, out);
    }
    EXPECT_EQ(guard.delta(), 0);
}

}  // namespace
}  // namespace gfr::netlist
