// Word-parallel simulation against hand-computed truth tables.

#include "netlist/simulate.h"

#include <gtest/gtest.h>

namespace gfr::netlist {
namespace {

TEST(Simulate, AndXorLanes) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("and", nl.make_and(a, b));
    nl.add_output("xor", nl.make_xor(a, b));

    const std::vector<std::uint64_t> in = {0b0101, 0b0011};
    const auto out = simulate(nl, in);
    ASSERT_EQ(out.size(), 2U);
    EXPECT_EQ(out[0], 0b0001ULL);
    EXPECT_EQ(out[1], 0b0110ULL);
}

TEST(Simulate, ConstantZero) {
    Netlist nl;
    const auto a = nl.add_input("a");
    nl.add_output("z", nl.make_xor(a, a));
    const auto out = simulate(nl, std::vector<std::uint64_t>{~0ULL});
    EXPECT_EQ(out[0], 0ULL);
}

TEST(Simulate, WrongInputCountThrows) {
    Netlist nl;
    nl.add_input("a");
    nl.add_input("b");
    Simulator sim{nl};
    EXPECT_THROW(sim.run(std::vector<std::uint64_t>{1}), std::invalid_argument);
}

TEST(Simulate, SimulatorReuse) {
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("y", nl.make_xor(a, b));
    Simulator sim{nl};
    EXPECT_EQ(sim.run(std::vector<std::uint64_t>{0xF0, 0x0F})[0], 0xFFULL);
    EXPECT_EQ(sim.run(std::vector<std::uint64_t>{0xFF, 0x0F})[0], 0xF0ULL);
}

TEST(Simulate, ExhaustivePatternInWordVariables) {
    // Input i < 6: the canonical truth-table masks; independent of block.
    EXPECT_EQ(exhaustive_pattern(0, 0), 0xAAAAAAAAAAAAAAAAULL);
    EXPECT_EQ(exhaustive_pattern(5, 7), 0xFFFFFFFF00000000ULL);
}

TEST(Simulate, ExhaustivePatternBlockVariables) {
    EXPECT_EQ(exhaustive_pattern(6, 0), 0ULL);
    EXPECT_EQ(exhaustive_pattern(6, 1), ~0ULL);
    EXPECT_EQ(exhaustive_pattern(7, 1), 0ULL);
    EXPECT_EQ(exhaustive_pattern(7, 2), ~0ULL);
    EXPECT_THROW(exhaustive_pattern(-1, 0), std::invalid_argument);
}

TEST(Simulate, ExhaustiveEnumerationCoversAllAssignments) {
    // 8 inputs -> 4 blocks x 64 lanes = 256 distinct assignments.
    const int n = 8;
    std::vector<bool> seen(1U << n, false);
    for (std::uint64_t block = 0; block < 4; ++block) {
        for (int lane = 0; lane < 64; ++lane) {
            unsigned idx = 0;
            for (int i = 0; i < n; ++i) {
                idx |= static_cast<unsigned>((exhaustive_pattern(i, block) >> lane) & 1U)
                       << i;
            }
            seen[idx] = true;
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_TRUE(seen[i]) << "assignment " << i << " never generated";
    }
}

TEST(Simulate, MajorityCircuit) {
    // maj(a,b,c) = ab ^ ac ^ bc — verify against all 8 assignments.
    Netlist nl;
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto c = nl.add_input("c");
    const auto t = nl.make_xor(nl.make_and(a, b), nl.make_and(a, c));
    nl.add_output("maj", nl.make_xor(t, nl.make_and(b, c)));

    std::vector<std::uint64_t> in = {exhaustive_pattern(0, 0), exhaustive_pattern(1, 0),
                                     exhaustive_pattern(2, 0)};
    const auto out = simulate(nl, in);
    for (int lane = 0; lane < 8; ++lane) {
        const int av = (lane >> 0) & 1;
        const int bv = (lane >> 1) & 1;
        const int cv = (lane >> 2) & 1;
        const int expected = (av + bv + cv >= 2) ? 1 : 0;
        EXPECT_EQ(static_cast<int>((out[0] >> lane) & 1), expected) << "lane " << lane;
    }
}

}  // namespace
}  // namespace gfr::netlist
