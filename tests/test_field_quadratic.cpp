// Trace, half-trace and quadratic solving — the field utilities behind
// binary-curve point decompression (examples/ecc_b163.cpp).

#include "field/field_catalog.h"
#include "testutil.h"

#include <gtest/gtest.h>


namespace gfr::field {
namespace {

TEST(Trace, IsGf2Valued) {
    const Field f = Field::type2(8, 2);
    testutil::Xorshift64Star rng{5};
    for (int trial = 0; trial < 50; ++trial) {
        const auto a = testutil::random_element(f, rng);
        // trace() itself throws if the value is not in {0,1}; just call it.
        static_cast<void>(f.trace(a));
    }
}

TEST(Trace, IsLinear) {
    const Field f = Field::type2(113, 4);
    testutil::Xorshift64Star rng{6};
    for (int trial = 0; trial < 30; ++trial) {
        const auto a = testutil::random_element(f, rng);
        const auto b = testutil::random_element(f, rng);
        EXPECT_EQ(f.trace(f.add(a, b)), f.trace(a) != f.trace(b));
    }
}

TEST(Trace, InvariantUnderFrobenius) {
    const Field f = Field::type2(64, 23);
    testutil::Xorshift64Star rng{7};
    for (int trial = 0; trial < 30; ++trial) {
        const auto a = testutil::random_element(f, rng);
        EXPECT_EQ(f.trace(a), f.trace(f.sqr(a)));
    }
}

TEST(Trace, BalancedOverGf256) {
    // Exactly half of all field elements have trace 1.
    const Field f = Field::type2(8, 2);
    int ones = 0;
    for (std::uint64_t v = 0; v < 256; ++v) {
        if (f.trace(f.from_bits(v))) {
            ++ones;
        }
    }
    EXPECT_EQ(ones, 128);
}

TEST(Trace, ZeroHasTraceZero) {
    const Field f = Field::type2(163, 66);
    EXPECT_FALSE(f.trace(f.zero()));
}

TEST(HalfTrace, RequiresOddDegree) {
    const Field even = Field::type2(8, 2);
    EXPECT_THROW(static_cast<void>(even.half_trace(even.one())),
                 std::invalid_argument);
}

TEST(HalfTrace, SolvesArtinSchreier) {
    // For odd m and Tr(c) = 0, z = H(c) satisfies z^2 + z = c.
    const Field f = Field::type2(113, 34);
    testutil::Xorshift64Star rng{8};
    int solved = 0;
    for (int trial = 0; trial < 40; ++trial) {
        const auto c = testutil::random_element(f, rng);
        if (f.trace(c)) {
            continue;
        }
        const auto z = f.half_trace(c);
        EXPECT_EQ(f.add(f.sqr(z), z), c);
        ++solved;
    }
    EXPECT_GT(solved, 5);  // about half of random elements qualify
}

class QuadraticSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QuadraticSweep, SolveQuadraticRoundTrip) {
    const auto [m, n] = GetParam();
    const Field f = Field::type2(m, n);
    testutil::Xorshift64Star rng{static_cast<std::uint64_t>(m)};
    for (int trial = 0; trial < 25; ++trial) {
        const auto c = testutil::random_element(f, rng);
        const auto z = f.solve_quadratic(c);
        if (f.trace(c)) {
            EXPECT_FALSE(z.has_value());  // Tr(c)=1: no solution exists
        } else {
            ASSERT_TRUE(z.has_value());
            EXPECT_EQ(f.add(f.sqr(*z), *z), c);
            // The second solution is z + 1.
            const auto z2 = f.add(*z, f.one());
            EXPECT_EQ(f.add(f.sqr(z2), z2), c);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(OddDegreeFields, QuadraticSweep,
                         ::testing::Values(std::pair{113, 4}, std::pair{113, 34},
                                           std::pair{139, 59}, std::pair{163, 66},
                                           std::pair{163, 68}),
                         [](const auto& info) {
                             return "m" + std::to_string(info.param.first) + "n" +
                                    std::to_string(info.param.second);
                         });

TEST(Quadratic, SolutionCountIsHalfTheField) {
    // z -> z^2 + z is 2-to-1 onto the trace-0 subspace; every solvable c has
    // exactly two roots.  Check exhaustively on a small odd field: m = 7
    // admits the type II pentanomial (7,2).
    const Field f = Field::type2(7, 2);
    int solvable = 0;
    for (std::uint64_t v = 0; v < 128; ++v) {
        const auto c = f.from_bits(v);
        if (f.solve_quadratic(c).has_value()) {
            ++solvable;
        }
    }
    EXPECT_EQ(solvable, 64);
}

}  // namespace
}  // namespace gfr::field
