// Unit and property tests for the GF(2)[y] polynomial substrate.

#include "gf2/gf2_poly.h"

#include "testutil.h"  // shared PRNG + random polynomial generator

#include <gtest/gtest.h>

namespace gfr::gf2 {
namespace {

/// Random polynomial of varying length, degree < max_degree + 1 (the shared
/// generator, with the bound jittered so short and empty operands appear).
Poly varied_poly(testutil::Xorshift64Star& rng, int max_degree) {
    const int bits = static_cast<int>(rng() % static_cast<std::uint64_t>(max_degree + 2));
    return testutil::random_poly(rng, bits);
}

TEST(Gf2Poly, ZeroProperties) {
    const Poly z;
    EXPECT_TRUE(z.is_zero());
    EXPECT_EQ(z.degree(), -1);
    EXPECT_EQ(z.weight(), 0);
    EXPECT_TRUE(z.support().empty());
    EXPECT_EQ(z.to_string(), "0");
}

TEST(Gf2Poly, MonomialBasics) {
    const Poly m0 = Poly::monomial(0);
    EXPECT_TRUE(m0.is_one());
    EXPECT_EQ(m0.degree(), 0);
    const Poly m100 = Poly::monomial(100);
    EXPECT_EQ(m100.degree(), 100);
    EXPECT_EQ(m100.weight(), 1);
    EXPECT_TRUE(m100.coeff(100));
    EXPECT_FALSE(m100.coeff(99));
    EXPECT_FALSE(m100.coeff(101));
}

TEST(Gf2Poly, MonomialNegativeThrows) {
    EXPECT_THROW(Poly::monomial(-1), std::invalid_argument);
}

TEST(Gf2Poly, FromExponentsDuplicatesCancel) {
    const Poly p = Poly::from_exponents({3, 1, 3});
    EXPECT_EQ(p, Poly::monomial(1));
}

TEST(Gf2Poly, FromWordsNormalises) {
    const Poly p = Poly::from_words({0x5, 0x0, 0x0});
    EXPECT_EQ(p.degree(), 2);
    EXPECT_EQ(p.words().size(), 1U);
}

TEST(Gf2Poly, PaperModulusToString) {
    const Poly f = Poly::from_exponents({8, 4, 3, 2, 0});
    EXPECT_EQ(f.to_string(), "y^8 + y^4 + y^3 + y^2 + 1");
    EXPECT_EQ(f.degree(), 8);
    EXPECT_EQ(f.weight(), 5);
    EXPECT_EQ(f.support(), (std::vector<int>{0, 2, 3, 4, 8}));
}

TEST(Gf2Poly, AdditionIsXor) {
    const Poly a = Poly::from_exponents({5, 3, 0});
    const Poly b = Poly::from_exponents({5, 2, 0});
    EXPECT_EQ(a + b, Poly::from_exponents({3, 2}));
}

TEST(Gf2Poly, AdditionSelfInverse) {
    testutil::Xorshift64Star rng{7};
    for (int trial = 0; trial < 50; ++trial) {
        const Poly a = varied_poly(rng, 200);
        EXPECT_TRUE((a + a).is_zero());
        EXPECT_EQ(a + Poly{}, a);
    }
}

TEST(Gf2Poly, ShiftLeftRightRoundTrip) {
    testutil::Xorshift64Star rng{11};
    for (int trial = 0; trial < 50; ++trial) {
        const Poly a = varied_poly(rng, 150);
        const int s = static_cast<int>(rng() % 130);
        EXPECT_EQ((a << s) >> s, a) << "shift " << s;
        if (!a.is_zero()) {
            EXPECT_EQ((a << s).degree(), a.degree() + s);
        }
    }
}

TEST(Gf2Poly, MultiplicationSmallKnown) {
    // (y + 1)^2 = y^2 + 1 over GF(2)
    const Poly y1 = Poly::from_exponents({1, 0});
    EXPECT_EQ(y1 * y1, Poly::from_exponents({2, 0}));
    // (y^2 + y + 1)(y + 1) = y^3 + 1
    const Poly a = Poly::from_exponents({2, 1, 0});
    EXPECT_EQ(a * y1, Poly::from_exponents({3, 0}));
}

TEST(Gf2Poly, MultiplicationDegreeAndCommutativity) {
    testutil::Xorshift64Star rng{13};
    for (int trial = 0; trial < 50; ++trial) {
        const Poly a = varied_poly(rng, 120);
        const Poly b = varied_poly(rng, 120);
        EXPECT_EQ(a * b, b * a);
        if (!a.is_zero() && !b.is_zero()) {
            EXPECT_EQ((a * b).degree(), a.degree() + b.degree());
        }
    }
}

TEST(Gf2Poly, MultiplicationDistributesOverAddition) {
    testutil::Xorshift64Star rng{17};
    for (int trial = 0; trial < 50; ++trial) {
        const Poly a = varied_poly(rng, 100);
        const Poly b = varied_poly(rng, 100);
        const Poly c = varied_poly(rng, 100);
        EXPECT_EQ(a * (b + c), a * b + a * c);
    }
}

TEST(Gf2Poly, MultiplicationAssociativity) {
    testutil::Xorshift64Star rng{19};
    for (int trial = 0; trial < 20; ++trial) {
        const Poly a = varied_poly(rng, 70);
        const Poly b = varied_poly(rng, 70);
        const Poly c = varied_poly(rng, 70);
        EXPECT_EQ((a * b) * c, a * (b * c));
    }
}

TEST(Gf2Poly, SquareMatchesSelfProduct) {
    testutil::Xorshift64Star rng{23};
    for (int trial = 0; trial < 50; ++trial) {
        const Poly a = varied_poly(rng, 150);
        EXPECT_EQ(a.square(), a * a);
    }
}

TEST(Gf2Poly, SquareIsFrobenius) {
    // (a + b)^2 = a^2 + b^2 in characteristic 2.
    testutil::Xorshift64Star rng{29};
    for (int trial = 0; trial < 30; ++trial) {
        const Poly a = varied_poly(rng, 100);
        const Poly b = varied_poly(rng, 100);
        EXPECT_EQ((a + b).square(), a.square() + b.square());
    }
}

TEST(Gf2Poly, DivmodIdentity) {
    testutil::Xorshift64Star rng{31};
    for (int trial = 0; trial < 100; ++trial) {
        const Poly num = varied_poly(rng, 180);
        Poly den = varied_poly(rng, 60);
        if (den.is_zero()) {
            den = Poly::one();
        }
        const auto [q, r] = Poly::divmod(num, den);
        EXPECT_EQ(q * den + r, num);
        if (!r.is_zero()) {
            EXPECT_LT(r.degree(), den.degree());
        }
    }
}

TEST(Gf2Poly, DivisionByZeroThrows) {
    EXPECT_THROW(Poly::divmod(Poly::one(), Poly{}), std::invalid_argument);
}

TEST(Gf2Poly, ModKnownValue) {
    // x^8 mod (x^8+x^4+x^3+x^2+1) = x^4+x^3+x^2+1 — the paper's first Q row.
    const Poly f = Poly::from_exponents({8, 4, 3, 2, 0});
    EXPECT_EQ(Poly::monomial(8) % f, Poly::from_exponents({4, 3, 2, 0}));
}

TEST(Gf2Poly, GcdBasics) {
    const Poly a = Poly::from_exponents({3, 0});        // y^3+1 = (y+1)(y^2+y+1)
    const Poly b = Poly::from_exponents({2, 0});        // y^2+1 = (y+1)^2
    EXPECT_EQ(Poly::gcd(a, b), Poly::from_exponents({1, 0}));
    EXPECT_EQ(Poly::gcd(a, Poly{}), a);
    EXPECT_EQ(Poly::gcd(Poly{}, b), b);
}

TEST(Gf2Poly, GcdDividesBoth) {
    testutil::Xorshift64Star rng{37};
    for (int trial = 0; trial < 40; ++trial) {
        const Poly a = varied_poly(rng, 80);
        const Poly b = varied_poly(rng, 80);
        const Poly g = Poly::gcd(a, b);
        if (g.is_zero()) {
            EXPECT_TRUE(a.is_zero());
            EXPECT_TRUE(b.is_zero());
            continue;
        }
        EXPECT_TRUE((a % g).is_zero());
        EXPECT_TRUE((b % g).is_zero());
    }
}

TEST(Gf2Poly, MulmodMatchesTwoStep) {
    testutil::Xorshift64Star rng{41};
    const Poly f = Poly::from_exponents({64, 25, 24, 23, 0});
    for (int trial = 0; trial < 40; ++trial) {
        const Poly a = varied_poly(rng, 63);
        const Poly b = varied_poly(rng, 63);
        EXPECT_EQ(Poly::mulmod(a, b, f), (a * b) % f);
    }
}

TEST(Gf2Poly, Pow2kModMatchesRepeatedSquaring) {
    const Poly f = Poly::from_exponents({8, 4, 3, 2, 0});
    const Poly y = Poly::monomial(1);
    Poly acc = y;
    for (int k = 0; k <= 10; ++k) {
        EXPECT_EQ(Poly::pow2k_mod(y, k, f), acc) << "k=" << k;
        acc = Poly::sqrmod(acc, f);
    }
}

TEST(Gf2Poly, FermatOnFieldPolynomial) {
    // y^(2^8) = y mod f for irreducible f of degree 8.
    const Poly f = Poly::from_exponents({8, 4, 3, 2, 0});
    const Poly y = Poly::monomial(1);
    EXPECT_EQ(Poly::pow2k_mod(y, 8, f), y);
}

TEST(Gf2Poly, SetClearCoeff) {
    Poly p;
    p.set_coeff(70, true);
    EXPECT_EQ(p.degree(), 70);
    p.set_coeff(70, false);
    EXPECT_TRUE(p.is_zero());
    EXPECT_THROW(p.set_coeff(-1, true), std::invalid_argument);
}

TEST(Gf2Poly, WordBoundaryShifts) {
    // Exercise shifts landing exactly on 64-bit word boundaries.
    const Poly p = Poly::from_exponents({63, 1, 0});
    EXPECT_EQ((p << 64).degree(), 127);
    EXPECT_EQ((p << 64) >> 64, p);
    EXPECT_EQ((p << 1).degree(), 64);
    EXPECT_TRUE((p << 1).coeff(64));
}

}  // namespace
}  // namespace gfr::gf2
