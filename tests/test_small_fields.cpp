// Exhaustive small-field sweeps: every generator must be bit-exact over
// EVERY operand pair for every irreducible polynomial of small degree —
// trinomials, pentanomials and denser moduli alike.  This catches corner
// cases the big type II fields never exercise (tiny reduction matrices,
// single-term S/T functions, degenerate splits).

#include "gf2/irreducibility.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"

#include <gtest/gtest.h>

namespace gfr::mult {
namespace {

using gf2::Poly;

std::vector<Poly> irreducibles_of_degree(int m) {
    std::vector<Poly> out;
    for (int bits = 1; bits < (1 << m); bits += 2) {  // constant term required
        Poly p = Poly::monomial(m);
        for (int k = 0; k < m; ++k) {
            if ((bits >> k) & 1) {
                p.set_coeff(k, true);
            }
        }
        if (gf2::is_irreducible(p)) {
            out.push_back(p);
        }
    }
    return out;
}

class SmallFieldExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(SmallFieldExhaustive, EveryMethodEveryModulus) {
    const int m = GetParam();
    const auto moduli = irreducibles_of_degree(m);
    ASSERT_FALSE(moduli.empty());
    for (const auto& f : moduli) {
        const field::Field fld{f};
        for (const auto& info : all_methods()) {
            const auto nl = build_multiplier(info.method, fld);
            const auto failure = verify_multiplier(nl, fld);
            EXPECT_FALSE(failure.has_value())
                << std::string{info.key} << " over " << f.to_string() << ": "
                << failure->to_string();
        }
    }
}

// Degrees 2..6 are fully exhaustive over operands AND moduli (2^(2m) products
// per multiplier, every irreducible polynomial of the degree).
INSTANTIATE_TEST_SUITE_P(Degrees, SmallFieldExhaustive, ::testing::Values(2, 3, 4, 5, 6),
                         [](const auto& info) {
                             return "m" + std::to_string(info.param);
                         });

TEST(SmallFields, IrreducibleCountsAreClassical) {
    // Necklace-counting formula: (1/m) sum_{d|m} mu(m/d) 2^d.
    EXPECT_EQ(irreducibles_of_degree(2).size(), 1U);
    EXPECT_EQ(irreducibles_of_degree(3).size(), 2U);
    EXPECT_EQ(irreducibles_of_degree(4).size(), 3U);
    EXPECT_EQ(irreducibles_of_degree(5).size(), 6U);
    EXPECT_EQ(irreducibles_of_degree(6).size(), 9U);
}

TEST(SmallFields, DegreeSevenTypeII) {
    // m = 7 admits the type II pentanomial (7, 2) iff it is irreducible;
    // whatever the answer, the generators must agree with the reference on
    // an m = 7 field (trinomial y^7 + y + 1, known irreducible).
    const field::Field fld{Poly::from_exponents({7, 1, 0})};
    for (const auto& info : all_methods()) {
        const auto nl = build_multiplier(info.method, fld);
        const auto failure = verify_multiplier(nl, fld);
        EXPECT_FALSE(failure.has_value()) << std::string{info.key};
    }
}

}  // namespace
}  // namespace gfr::mult
