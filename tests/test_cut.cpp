// Cut algebra for the LUT mapper.

#include "fpga/cut.h"

#include <gtest/gtest.h>

namespace gfr::fpga {
namespace {

Cut make_cut(std::initializer_list<netlist::NodeId> leaves) {
    Cut c;
    for (const auto l : leaves) {
        c.leaves[c.size++] = l;
        c.signature |= std::uint64_t{1} << (l % 64);
    }
    return c;
}

TEST(Cut, Trivial) {
    const Cut c = Cut::trivial(42);
    EXPECT_EQ(c.size, 1);
    EXPECT_EQ(c.leaves[0], 42U);
    EXPECT_NE(c.signature, 0U);
}

TEST(Cut, MergeDisjoint) {
    const auto a = make_cut({1, 5});
    const auto b = make_cut({2, 9});
    const auto m = Cut::merge(a, b, 6);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->size, 4);
    EXPECT_EQ(m->leaves[0], 1U);
    EXPECT_EQ(m->leaves[1], 2U);
    EXPECT_EQ(m->leaves[2], 5U);
    EXPECT_EQ(m->leaves[3], 9U);
}

TEST(Cut, MergeOverlapping) {
    const auto a = make_cut({1, 5, 7});
    const auto b = make_cut({5, 7, 9});
    const auto m = Cut::merge(a, b, 6);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->size, 4);  // {1,5,7,9}
}

TEST(Cut, MergeRespectsK) {
    const auto a = make_cut({1, 2, 3, 4});
    const auto b = make_cut({5, 6, 7});
    EXPECT_FALSE(Cut::merge(a, b, 6).has_value());
    EXPECT_TRUE(Cut::merge(a, b, 6).has_value() ||
                Cut::merge(a, make_cut({2, 3}), 6).has_value());
    const auto m4 = Cut::merge(make_cut({1, 2}), make_cut({3, 4}), 4);
    ASSERT_TRUE(m4.has_value());
    EXPECT_FALSE(Cut::merge(make_cut({1, 2, 3}), make_cut({4, 5}), 4).has_value());
}

TEST(Cut, MergeIdentical) {
    const auto a = make_cut({3, 4, 5});
    const auto m = Cut::merge(a, a, 6);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(m->same_leaves(a));
}

TEST(Cut, SameLeaves) {
    EXPECT_TRUE(make_cut({1, 2}).same_leaves(make_cut({1, 2})));
    EXPECT_FALSE(make_cut({1, 2}).same_leaves(make_cut({1, 3})));
    EXPECT_FALSE(make_cut({1}).same_leaves(make_cut({1, 2})));
}

TEST(Cut, SubsetOf) {
    EXPECT_TRUE(make_cut({2, 5}).subset_of(make_cut({1, 2, 5, 9})));
    EXPECT_TRUE(make_cut({2, 5}).subset_of(make_cut({2, 5})));
    EXPECT_FALSE(make_cut({2, 6}).subset_of(make_cut({1, 2, 5, 9})));
    EXPECT_FALSE(make_cut({1, 2, 3}).subset_of(make_cut({1, 2})));
}

TEST(Cut, SignatureRejectsWideMergesEarly) {
    // 7 distinct residues mod 64 -> popcount 7 > 6 -> reject without merging.
    const auto a = make_cut({1, 2, 3, 4});
    const auto b = make_cut({5, 6, 7});
    EXPECT_FALSE(Cut::merge(a, b, 6).has_value());
}

}  // namespace
}  // namespace gfr::fpga
