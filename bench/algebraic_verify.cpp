// Algebraic-verification bench behind BENCH_10.json: every Table V cell
// (family x field, flat and optimized) is PROVED by acv::prove_multiplier —
// backward rewriting to canonical ANF, zero simulation — and timed against
// the simulation campaign (verify_multiplier) on the same netlist.  The
// point of the comparison: beyond 2m = 22 inputs the campaign samples
// (64 sweeps x 64 lanes) while the proof is exhaustive-for-all-inputs at
// any m, so the proof column is the cost of FULL confidence where the
// campaign's equal-cost answer is statistical.  Both run single-threaded so
// the ratio is a per-core fact, not a scheduling artefact.
//
// The process exits nonzero if any cell fails its proof or its pipeline
// gate — this binary is the algebraic Table V proof gate in CI.
//
// GFR_ACV_FAST=1 (or the existing GFR_TABLE5_FAST=1) restricts the sweep to
// the two smallest fields; the full run covers all nine.

#include "acv/acv.h"
#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "opt/opt.h"
#include "report/table.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace gfr {
namespace {

struct Cell {
    std::string family;
    std::string field;
    int m = 0;
    bool sampled = false;  ///< campaign regime: random sweeps (vs exhaustive)
    std::int64_t gates_flat = 0;
    std::int64_t gates_opt = 0;
    double prove_flat_ms = 0.0;
    double campaign_flat_ms = 0.0;
    double prove_opt_ms = 0.0;
    double campaign_opt_ms = 0.0;
    std::size_t spec_monomials = 0;
    std::size_t peak_monomials = 0;  ///< worst in-flight count, flat netlist
    bool proved = false;
    std::string error;
};

double ms_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace
}  // namespace gfr

int main(int argc, char** argv) {
    using namespace gfr;
    const std::string json_path = (argc > 1) ? argv[1] : "BENCH_10.json";
    const bool fast = (std::getenv("GFR_ACV_FAST") != nullptr) ||
                      (std::getenv("GFR_TABLE5_FAST") != nullptr);

    std::vector<field::FieldSpec> fields = field::table5_fields();
    if (fast && fields.size() > 2) {
        fields.resize(2);  // (8,2) and (64,23)
    }

    acv::ProveOptions prove_options;
    prove_options.threads = 1;
    mult::VerifyOptions campaign_options;
    campaign_options.threads = 1;

    std::vector<Cell> cells;
    bool failed = false;
    for (const auto& spec : fields) {
        const field::Field f = spec.make();
        const auto run_cell = [&](const std::string& family,
                                  const netlist::Netlist& flat) {
            Cell cell;
            cell.family = family;
            cell.field = spec.label();
            cell.m = f.degree();
            cell.sampled = 2 * f.degree() > campaign_options.max_exhaustive_inputs;
            cell.gates_flat = flat.stats().gates();
            try {
                acv::ProofStats stats;
                auto t0 = std::chrono::steady_clock::now();
                const auto flat_proof =
                    acv::prove_multiplier(flat, f, prove_options, &stats);
                cell.prove_flat_ms = ms_since(t0);
                if (flat_proof.has_value()) {
                    throw std::runtime_error{"flat proof failed: " +
                                             flat_proof->to_string()};
                }
                cell.spec_monomials = stats.spec_monomials;
                cell.peak_monomials = stats.peak_column_monomials;

                t0 = std::chrono::steady_clock::now();
                const auto flat_campaign =
                    mult::verify_multiplier(flat, f, campaign_options);
                cell.campaign_flat_ms = ms_since(t0);
                if (flat_campaign.has_value()) {
                    throw std::runtime_error{"flat campaign failed: " +
                                             flat_campaign->to_string()};
                }

                const opt::OptResult optimized = opt::optimize(flat);
                cell.gates_opt = optimized.netlist.stats().gates();

                t0 = std::chrono::steady_clock::now();
                const auto opt_proof = acv::prove_multiplier(
                    optimized.netlist, f, prove_options);
                cell.prove_opt_ms = ms_since(t0);
                if (opt_proof.has_value()) {
                    throw std::runtime_error{"optimized proof failed: " +
                                             opt_proof->to_string()};
                }

                t0 = std::chrono::steady_clock::now();
                const auto opt_campaign = mult::verify_multiplier(
                    optimized.netlist, f, campaign_options);
                cell.campaign_opt_ms = ms_since(t0);
                if (opt_campaign.has_value()) {
                    throw std::runtime_error{"optimized campaign failed: " +
                                             opt_campaign->to_string()};
                }
                cell.proved = true;
            } catch (const std::exception& e) {
                cell.error = e.what();
                failed = true;
            }
            cells.push_back(std::move(cell));
            const Cell& c = cells.back();
            std::fprintf(stderr,
                         "%-14s %-10s flat %7.2fms proof / %7.2fms campaign  "
                         "opt %7.2fms proof / %7.2fms campaign (%s)%s\n",
                         c.family.c_str(), c.field.c_str(), c.prove_flat_ms,
                         c.campaign_flat_ms, c.prove_opt_ms, c.campaign_opt_ms,
                         c.proved ? "proved" : "FAILED",
                         c.error.empty() ? "" : " !");
        };
        for (const auto& info : mult::all_methods()) {
            if (!info.in_table5) {
                continue;
            }
            run_cell(std::string{info.key},
                     mult::build_multiplier(info.method, f));
        }
        run_cell("date2018-raw",
                 mult::build_multiplier(mult::Method::Date2018Flat, f,
                                        mult::Elaboration::Literal));
    }

    report::TextTable table({"Family", "Field", "Regime", "Gates", "Proof",
                             "Campaign", "OptGates", "OptProof", "OptCampaign",
                             "SpecMono", "Peak"});
    std::string prev_field;
    for (const auto& c : cells) {
        if (!prev_field.empty() && c.field != prev_field) {
            table.add_rule();
        }
        prev_field = c.field;
        char buf[4][32];
        std::snprintf(buf[0], sizeof buf[0], "%.2fms", c.prove_flat_ms);
        std::snprintf(buf[1], sizeof buf[1], "%.2fms", c.campaign_flat_ms);
        std::snprintf(buf[2], sizeof buf[2], "%.2fms", c.prove_opt_ms);
        std::snprintf(buf[3], sizeof buf[3], "%.2fms", c.campaign_opt_ms);
        table.add_row({c.family, c.field,
                       c.sampled ? "sampled" : "exhaustive",
                       std::to_string(c.gates_flat), buf[0], buf[1],
                       std::to_string(c.gates_opt), buf[2], buf[3],
                       std::to_string(c.spec_monomials),
                       std::to_string(c.peak_monomials)});
    }
    std::printf("%s", table.render().c_str());

    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(json,
                 "{\n  \"bench\": \"algebraic_verify\",\n  \"fast\": %s,\n",
                 fast ? "true" : "false");
    std::fprintf(json, "  \"rows\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell& c = cells[i];
        std::fprintf(
            json,
            "    {\"family\": \"%s\", \"field\": \"%s\", \"m\": %d, "
            "\"campaign_regime\": \"%s\", "
            "\"gates_flat\": %lld, \"gates_opt\": %lld, "
            "\"prove_flat_ms\": %.3f, \"campaign_flat_ms\": %.3f, "
            "\"prove_opt_ms\": %.3f, \"campaign_opt_ms\": %.3f, "
            "\"spec_monomials\": %zu, \"peak_monomials\": %zu, "
            "\"proved\": %s}%s\n",
            c.family.c_str(), c.field.c_str(), c.m,
            c.sampled ? "sampled" : "exhaustive",
            static_cast<long long>(c.gates_flat),
            static_cast<long long>(c.gates_opt), c.prove_flat_ms,
            c.campaign_flat_ms, c.prove_opt_ms, c.campaign_opt_ms,
            c.spec_monomials, c.peak_monomials, c.proved ? "true" : "false",
            (i + 1 < cells.size()) ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);

    if (failed) {
        std::fprintf(stderr, "algebraic_verify: PROOF GATE FAILED\n");
        for (const auto& c : cells) {
            if (!c.error.empty()) {
                std::fprintf(stderr, "  %s %s: %s\n", c.family.c_str(),
                             c.field.c_str(), c.error.c_str());
            }
        }
        return 1;
    }
    return 0;
}
