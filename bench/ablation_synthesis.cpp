// Ablation bench for the design choices called out in DESIGN.md section 6:
//   1. flat vs. parenthesised netlist under ONE mapper (the paper's claim),
//   2. XOR-pair extraction (sharing) on/off,
//   3. XOR-tree balancing on/off,
//   4. mapper area recovery on/off.
// Run on (8,2) and (64,23) so effects are visible at both scales.

#include "field/field_catalog.h"
#include "fpga/flow.h"
#include "multipliers/generator.h"
#include "report/table.h"

#include <cstdio>

namespace {

void run_field(int m, int n) {
    using namespace gfr;
    const field::Field fld = field::Field::type2(m, n);
    std::printf("--- ablation at (m,n) = (%d,%d) ---\n", m, n);

    report::TextTable t{{"config", "gate XORs", "gate depth", "LUTs", "LUT depth",
                         "ns", "AxT"}};

    struct Config {
        const char* name;
        mult::Method method;
        bool freedom;
        bool flatten;
        bool extract;
        bool balance;
        bool area_recovery;
    };
    const Config configs[] = {
        {"[7] paren, as-given", mult::Method::Imana2016Paren, false, false, false, false,
         true},
        {"flat, as-given (no synth)", mult::Method::Date2018Flat, false, false, false,
         false, true},
        {"flat + balance only", mult::Method::Date2018Flat, true, false, false, true,
         true},
        {"flat + CSE + balance", mult::Method::Date2018Flat, true, false, true, true,
         true},
        {"flat + ANF flatten (default)", mult::Method::Date2018Flat, true, true, false,
         true, true},
        {"flat + flatten, no area rec", mult::Method::Date2018Flat, true, true, false,
         true, false},
    };

    for (const auto& cfg : configs) {
        const auto nl = mult::build_multiplier(cfg.method, fld);
        fpga::FlowOptions opts;
        opts.synthesis_freedom = cfg.freedom;
        opts.strategy_search = false;  // ablate one fixed pipeline at a time
        opts.synth.flatten_anf = cfg.flatten;
        opts.synth.extract_pairs = cfg.extract;
        opts.synth.balance = cfg.balance;
        opts.mapper.area_recovery = cfg.area_recovery;
        const auto r = fpga::run_flow(nl, opts);
        t.add_row({cfg.name, std::to_string(r.gate_stats.n_xor),
                   std::to_string(r.gate_stats.xor_depth), std::to_string(r.luts),
                   std::to_string(r.lut_depth), report::fmt(r.delay_ns, 2),
                   report::fmt(r.area_time, 2)});
    }
    std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main() {
    std::puts("=== Ablation: what 'synthesis freedom' buys (DESIGN.md section 6) ===\n");
    run_field(8, 2);
    run_field(64, 23);
    std::puts("Reading: the paper's claim is the gap between '[7] paren, as-given'");
    std::puts("and 'flat + ANF flatten (default)' — same algebra, different freedom.");
    return 0;
}
