// Reproduces TABLE III of the paper: coefficients with the splitting method
// and hard parenthesised restrictions ([7]), and verifies the complexity the
// paper derives from it: delay T_A + 5T_X, 64 AND gates, 87 XOR gates — the
// lowest theoretical delay among GF(2^8) multipliers ([6]: T_A+6T_X, [3]:
// T_A+7T_X), at the cost of extra XORs ([6]: 80, [3]: 77).

#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "multipliers/golden_tables.h"
#include "report/table.h"
#include "st/st_expr.h"

#include <cstdio>

int main() {
    using namespace gfr;

    std::puts(
        "=== TABLE III: coefficients for GF(2^8) with splitting and\n"
        "    hard parenthesised restrictions (transcribed from the paper) ===\n");
    const auto eqs =
        st::parse_coefficient_table(mult::table3_text(), st::ParseMode::SplitTerms);
    for (const auto& eq : eqs) {
        std::printf("  %s\n", eq.to_string().c_str());
    }

    const auto fld = field::gf256_paper_field();
    const auto golden = mult::golden_table3_netlist();
    const auto golden_stats = golden.stats();
    const auto generated = mult::build_multiplier(mult::Method::Imana2016Paren, fld);
    const auto gen_stats = generated.stats();

    std::puts("\n=== Complexity of the Table III multiplier ===\n");
    report::TextTable t{{"netlist", "AND", "XOR", "delay", "paper says"}};
    t.add_row({"paper Table III (compiled)", std::to_string(golden_stats.n_and),
               std::to_string(golden_stats.n_xor), golden_stats.delay_string(),
               "64 AND, 87 XOR, T_A + 5T_X"});
    t.add_row({"our [7] generator", std::to_string(gen_stats.n_and),
               std::to_string(gen_stats.n_xor), gen_stats.delay_string(),
               "(same method, algorithmic pairing)"});
    std::printf("%s\n", t.render().c_str());

    std::puts("Context (paper Section II): [6] needs T_A + 6T_X with 80 XOR;");
    std::puts("[3] needs T_A + 7T_X with 77 XOR.  Our reconstructions:");
    const auto s6 = mult::build_multiplier(mult::Method::Imana2012, fld).stats();
    const auto s3 = mult::build_multiplier(mult::Method::ReyhaniHasan, fld).stats();
    std::printf("  [6] imana2012    : %lld XOR, %s\n",
                static_cast<long long>(s6.n_xor), s6.delay_string().c_str());
    std::printf("  [3] reyhani-hasan: %lld XOR, %s\n",
                static_cast<long long>(s3.n_xor), s3.delay_string().c_str());

    const bool ok = golden_stats.xor_depth == 5 && golden_stats.n_and == 64 &&
                    gen_stats.xor_depth == 5;
    std::printf("\nTable III reproduction: %s\n",
                ok ? "delay/AND complexity CONFIRMED (T_A + 5T_X, 64 AND)"
                   : "MISMATCH with the paper's stated complexity");
    return ok ? 0 : 1;
}
