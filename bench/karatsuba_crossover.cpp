// Extension bench (not a paper table): where does Karatsuba overtake the
// schoolbook-based methods on the model flow?  Prints gate counts and mapped
// A x T for the proposed method vs Karatsuba across the Table V fields —
// the natural "future work" comparison for the paper's architectures.

#include "field/field_catalog.h"
#include "fpga/flow.h"
#include "multipliers/generator.h"
#include "multipliers/karatsuba.h"
#include "report/table.h"

#include <cstdio>
#include <cstdlib>

int main() {
    using namespace gfr;

    const bool fast = std::getenv("GFR_TABLE5_FAST") != nullptr;
    std::puts("=== Karatsuba vs proposed flat method (library extension) ===\n");

    report::TextTable t{{"field", "KOA ANDs", "flat ANDs", "KOA XORs", "flat XORs",
                         "KOA LUTs", "flat LUTs", "KOA AxT", "flat AxT"}};
    int done = 0;
    for (const auto& spec : field::table5_fields()) {
        if (fast && done >= 2) {
            break;
        }
        ++done;
        const field::Field fld = spec.make();
        const auto koa_nl = mult::build_karatsuba(fld);
        const auto flat_nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
        const auto koa_stats = koa_nl.stats();
        const auto flat_stats = flat_nl.stats();

        fpga::FlowOptions opts;
        opts.synthesis_freedom = true;  // both get full freedom here
        const auto koa = fpga::run_flow(koa_nl, opts);
        const auto flat = fpga::run_flow(flat_nl, opts);

        t.add_row({spec.label(), std::to_string(koa_stats.n_and),
                   std::to_string(flat_stats.n_and), std::to_string(koa_stats.n_xor),
                   std::to_string(flat_stats.n_xor), std::to_string(koa.luts),
                   std::to_string(flat.luts), report::fmt(koa.area_time, 2),
                   report::fmt(flat.area_time, 2)});
    }
    std::printf("%s\n", t.render().c_str());
    std::puts("Reading: KOA saves AND gates (sub-quadratic) but its XOR overhead");
    std::puts("and irregular structure cost LUTs after mapping — consistent with");
    std::puts("the literature preferring schoolbook-based bit-parallel forms at");
    std::puts("these field sizes on LUT fabrics.");
    std::printf(
        "\nSoftware engine counterpart: gf2::Poly::mul_into switches from the\n"
        "word-level schoolbook to Karatsuba above %d words per operand\n"
        "(threshold tuned by microbench_field; measured crossover and the\n"
        "m=1024 modular-multiply win are recorded in BENCH_2.json).\n",
        gf2::karatsuba_threshold_words());
    return 0;
}
