// Verification campaign driver: the paper-style sweep plus the throughput
// numbers behind BENCH_4.json.
//
// Part 1 — Table V campaign: every generator family x every Table V field,
// each verified through the parallel campaign engine over the compiled
// execution layer (exhaustive where the operand space allows, random sweeps
// beyond), printed as a pass/fail + throughput table in the spirit of the
// paper's Table V.  argv[2] overrides the worker-thread count (the CI gate
// runs this with 2); any FAIL exits nonzero.
//
// Part 2 — exhaustive GF(2^8) ladder: all 2^16 products of the paper's
// worked field verified with
//   (a) the PR-2 path: single-threaded sweep loop, per-lane transpose,
//       engine mul_region, per-bit compare — frozen verbatim, and
//   (b) the campaign engine (compiled tape + bitsliced lane reference) at
//       1, 4 and hardware_concurrency threads.
//
// Part 3 — random-regime GF(2^163) ladder, the PR-4 acceptance metric: the
// PR-3 path (interpretive Simulator + 64 per-lane engine products per
// sweep, frozen verbatim below) against the compiled tape + multi-word
// lane-major oracle, both at 1 thread.  The bar is >= 2x products/s
// single-thread with bit-identical verdicts.

#include "exec/program.h"
#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "netlist/simulate.h"
#include "verify/campaign.h"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace gfr {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The pre-PR-4 Simulator::run_into, verbatim with its reused value buffer:
/// the node-by-node interpretation both frozen baselines below are anchored
/// to (using today's compiled Simulator would silently speed them up).
void interpret_netlist(const netlist::Netlist& nl,
                       std::span<const std::uint64_t> in_words,
                       std::vector<std::uint64_t>& values,
                       std::vector<std::uint64_t>& out_words) {
    values.assign(nl.node_count(), 0);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        values[nl.inputs()[i].node] = in_words[i];
    }
    for (netlist::NodeId id = 0; id < nl.node_count(); ++id) {
        const netlist::Node& n = nl.node(id);
        switch (n.kind) {
            case netlist::GateKind::Input:
            case netlist::GateKind::Const0:
                break;
            case netlist::GateKind::And2:
                values[id] = values[n.a] & values[n.b];
                break;
            case netlist::GateKind::Xor2:
                values[id] = values[n.a] ^ values[n.b];
                break;
        }
    }
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
        out_words[o] = values[nl.outputs()[o].node];
    }
}

/// The PR-2 exhaustive verification path, frozen: one thread, interpretive
/// simulation, transposing every sweep's 64 lanes into u64 operands,
/// batching the reference products through FieldOps::mul_region, then
/// comparing bit by bit.  Kept byte-for-byte equivalent to the pre-campaign
/// implementation so BENCH_N speedups stay anchored to the same baseline
/// over time.
bool pr2_exhaustive_verify(const netlist::Netlist& nl, const field::Field& field) {
    const int m = field.degree();
    std::vector<std::uint64_t> values;  // interpreter state, reused per sweep
    std::vector<std::uint64_t> in_words(static_cast<std::size_t>(2 * m), 0);
    std::vector<std::uint64_t> out_words(static_cast<std::size_t>(m), 0);
    std::array<std::uint64_t, 64> a_lanes{};
    std::array<std::uint64_t, 64> b_lanes{};
    std::array<std::uint64_t, 64> expected{};

    const std::uint64_t blocks = (2 * m <= 6) ? 1 : (std::uint64_t{1} << (2 * m - 6));
    for (std::uint64_t block = 0; block < blocks; ++block) {
        for (int i = 0; i < 2 * m; ++i) {
            in_words[static_cast<std::size_t>(i)] = netlist::exhaustive_pattern(i, block);
        }
        interpret_netlist(nl, in_words, values, out_words);
        for (int lane = 0; lane < 64; ++lane) {
            std::uint64_t a = 0;
            std::uint64_t b = 0;
            for (int i = 0; i < m; ++i) {
                a |= ((in_words[static_cast<std::size_t>(i)] >> lane) & std::uint64_t{1})
                     << i;
                b |= ((in_words[static_cast<std::size_t>(m + i)] >> lane) &
                      std::uint64_t{1})
                     << i;
            }
            a_lanes[static_cast<std::size_t>(lane)] = a;
            b_lanes[static_cast<std::size_t>(lane)] = b;
        }
        field.ops().mul_region(a_lanes, b_lanes, expected);
        for (int lane = 0; lane < 64; ++lane) {
            const std::uint64_t want = expected[static_cast<std::size_t>(lane)];
            for (int k = 0; k < m; ++k) {
                const bool got_bit =
                    (out_words[static_cast<std::size_t>(k)] >> lane) & 1U;
                const bool want_bit = (want >> k) & 1U;
                if (got_bit != want_bit) {
                    return false;
                }
            }
        }
    }
    return true;
}

/// The PR-3 random-regime multi-word verification path, frozen: one thread;
/// per sweep, a node-by-node interpretive simulation (the pre-PR-4
/// Simulator semantics, inlined verbatim with its reused value buffer) and
/// then, per lane, two bit-transposed operand extractions, one engine
/// product and a bit-gathered compare.  This is the baseline the PR-4
/// compiled tape + multi-word lane oracle is measured against.
bool pr3_random_verify(const netlist::Netlist& nl, const field::Field& field,
                       std::uint64_t seed, int sweeps) {
    const int m = field.degree();
    const std::size_t wn = static_cast<std::size_t>((m + 63) / 64);
    std::vector<std::uint64_t> values;  // interpreter state, reused per sweep
    std::vector<std::uint64_t> in_words(static_cast<std::size_t>(2 * m), 0);
    std::vector<std::uint64_t> out_words(static_cast<std::size_t>(m), 0);
    std::vector<std::uint64_t> bits;
    std::vector<std::uint64_t> got_bits;
    gf2::Poly a_elem;
    gf2::Poly b_elem;
    gf2::Poly product;
    field::FieldOps::Scratch scratch;

    const auto element_from_lane = [&](int offset, int lane, gf2::Poly& out) {
        bits.assign(wn, 0);
        for (int i = 0; i < m; ++i) {
            if ((in_words[static_cast<std::size_t>(offset + i)] >> lane) & 1U) {
                bits[static_cast<std::size_t>(i / 64)] |= std::uint64_t{1} << (i % 64);
            }
        }
        out.assign_words(bits);
    };

    for (int sweep = 0; sweep < sweeps; ++sweep) {
        verify::SweepRng rng{verify::Campaign::derive_sweep_seed(
            seed, static_cast<std::uint64_t>(sweep))};
        for (auto& word : in_words) {
            word = rng();
        }
        interpret_netlist(nl, in_words, values, out_words);
        // Per-lane engine compare, PR-3 check_sweep multi-word verbatim.
        for (int lane = 0; lane < 64; ++lane) {
            element_from_lane(0, lane, a_elem);
            element_from_lane(m, lane, b_elem);
            field.ops().mul(a_elem, b_elem, product, scratch);
            got_bits.assign(wn, 0);
            for (int k = 0; k < m; ++k) {
                if ((out_words[static_cast<std::size_t>(k)] >> lane) & 1U) {
                    got_bits[static_cast<std::size_t>(k / 64)] |= std::uint64_t{1}
                                                                  << (k % 64);
                }
            }
            const auto pw = product.words();
            for (std::size_t word = 0; word < wn; ++word) {
                const std::uint64_t want_w = word < pw.size() ? pw[word] : 0;
                if ((got_bits[word] ^ want_w) != 0) {
                    return false;
                }
            }
        }
    }
    return true;
}

struct ThroughputPoint {
    std::string label;
    int threads = 0;
    double seconds = 0;
    double products_per_sec = 0;
    bool ok = false;
};

template <typename Fn>
ThroughputPoint measure(const std::string& label, int threads, double products,
                        const Fn& run, int repeats) {
    ThroughputPoint p;
    p.label = label;
    p.threads = threads;
    p.ok = true;
    double best = 1e100;
    for (int r = 0; r < repeats; ++r) {
        const auto t0 = Clock::now();
        p.ok = run() && p.ok;
        best = std::min(best, seconds_since(t0));
    }
    p.seconds = best;
    p.products_per_sec = products / best;
    return p;
}

struct SweepRow {
    std::string method;
    std::string field;
    std::string regime;
    double products = 0;
    double seconds = 0;
    double products_per_sec = 0;
    bool pass = false;
};

void print_ladder(const char* title, const std::vector<ThroughputPoint>& ladder,
                  int repeats) {
    const double base = ladder.front().seconds;
    std::printf("\n%s (best of %d runs)\n", title, repeats);
    std::printf("%-22s %8s %12s %16s %9s\n", "path", "threads", "seconds",
                "products/s", "speedup");
    for (const auto& p : ladder) {
        std::printf("%-22s %8d %12.6f %16.0f %8.2fx  %s\n", p.label.c_str(), p.threads,
                    p.seconds, p.products_per_sec, base / p.seconds,
                    p.ok ? "" : "(VERIFY FAILED)");
    }
}

void json_ladder(std::FILE* json, const char* key, double products,
                 const std::vector<ThroughputPoint>& ladder, bool last) {
    const double base = ladder.front().seconds;
    std::fprintf(json, "  \"%s\": {\n", key);
    std::fprintf(json, "    \"products\": %.0f,\n    \"paths\": [\n", products);
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        const auto& p = ladder[i];
        std::fprintf(json,
                     "      {\"path\": \"%s\", \"threads\": %d, \"seconds\": %.6f, "
                     "\"products_per_sec\": %.0f, \"speedup_vs_baseline\": %.3f, "
                     "\"verdict_ok\": %s}%s\n",
                     p.label.c_str(), p.threads, p.seconds, p.products_per_sec,
                     base / p.seconds, p.ok ? "true" : "false",
                     i + 1 < ladder.size() ? "," : "");
    }
    std::fprintf(json, "    ]\n  }%s\n", last ? "" : ",");
}

}  // namespace
}  // namespace gfr

int main(int argc, char** argv) {
    using namespace gfr;
    const std::string json_path = (argc > 1) ? argv[1] : "BENCH_4.json";
    const int thread_override = (argc > 2) ? std::atoi(argv[2]) : 0;
    const int hw = static_cast<int>(std::max(1U, std::thread::hardware_concurrency()));

    // --- Part 1: generator family x Table V field campaign ------------------
    std::vector<SweepRow> rows;
    std::printf("Table V verification campaign (compiled tapes, %s threads)\n",
                thread_override > 0 ? std::to_string(thread_override).c_str()
                                    : "auto");
    std::printf("%-14s %-12s %-11s %12s %10s %14s  %s\n", "method", "field", "regime",
                "products", "seconds", "products/s", "verdict");
    for (const auto& info : mult::all_methods()) {
        for (const auto& spec : field::table5_fields()) {
            const field::Field fld = spec.make();
            const auto nl = mult::build_multiplier(info.method, fld);
            mult::VerifyOptions opts;
            opts.threads = thread_override;
            const bool exhaustive = 2 * fld.degree() <= opts.max_exhaustive_inputs;
            const double products =
                exhaustive ? static_cast<double>(std::uint64_t{1} << (2 * fld.degree()))
                           : 64.0 * opts.random_sweeps;
            const auto t0 = Clock::now();
            const auto failure = mult::verify_multiplier(nl, fld, opts);
            const double secs = seconds_since(t0);
            SweepRow row;
            row.method = std::string{info.key};
            row.field = spec.label();
            row.regime = exhaustive ? "exhaustive" : "random";
            row.products = products;
            row.seconds = secs;
            row.products_per_sec = products / secs;
            row.pass = !failure.has_value();
            rows.push_back(row);
            std::printf("%-14s %-12s %-11s %12.0f %10.4f %14.0f  %s\n",
                        row.method.c_str(), row.field.c_str(), row.regime.c_str(),
                        row.products, row.seconds, row.products_per_sec,
                        row.pass ? "PASS" : "FAIL");
        }
    }

    // --- Part 2: exhaustive GF(2^8) throughput ladder -----------------------
    const field::Field gf256 = field::gf256_paper_field();
    const auto nl8 = mult::build_multiplier(mult::Method::Date2018Flat, gf256);
    const double products8 = 65536.0;
    constexpr int kRepeats = 9;

    std::vector<ThroughputPoint> ladder8;
    ladder8.push_back(measure("pr2_single_thread", 1, products8,
                              [&] { return pr2_exhaustive_verify(nl8, gf256); },
                              kRepeats));
    std::vector<int> thread_points = {1, 4};
    if (hw != 1 && hw != 4) {
        thread_points.push_back(hw);
    }
    for (const int threads : thread_points) {
        mult::VerifyOptions opts;
        opts.threads = threads;
        ladder8.push_back(measure(
            "campaign_t" + std::to_string(threads), threads, products8,
            [&] { return !mult::verify_multiplier(nl8, gf256, opts).has_value(); },
            kRepeats));
    }
    print_ladder("Exhaustive GF(2^8) space: 65536 products", ladder8, kRepeats);

    // --- Part 3: random-regime GF(2^163), the PR-4 acceptance ladder --------
    const field::Field gf163 = field::Field::type2(163, 68);
    const auto nl163 = mult::build_multiplier(mult::Method::Date2018Flat, gf163);
    const exec::Program prog163 = exec::Program::compile(nl163);
    const auto stats163 = prog163.stats();
    constexpr int kSweeps163 = 256;
    const double products163 = 64.0 * kSweeps163;
    constexpr std::uint64_t kSeed163 = 0xD1CEULL;
    constexpr int kRepeats163 = 5;

    std::vector<ThroughputPoint> ladder163;
    ladder163.push_back(measure(
        "pr3_interpreter_t1", 1, products163,
        [&] { return pr3_random_verify(nl163, gf163, kSeed163, kSweeps163); },
        kRepeats163));
    {
        mult::VerifyOptions opts;
        opts.threads = 1;
        opts.random_sweeps = kSweeps163;
        opts.seed = kSeed163;
        ladder163.push_back(measure(
            "compiled_tape_t1", 1, products163,
            [&] { return !mult::verify_multiplier(nl163, gf163, opts).has_value(); },
            kRepeats163));
    }
    print_ladder("Random-regime GF(2^163): 16384 products", ladder163, kRepeats163);
    std::printf(
        "m=163 tape: %zu source nodes -> %zu instructions "
        "(%zu fused ANDs), working set %u slots\n",
        stats163.source_nodes, stats163.instructions, stats163.fused_ands,
        stats163.slots);
    const double speedup163 = ladder163[0].seconds / ladder163[1].seconds;

    // --- JSON ----------------------------------------------------------------
    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"schema\": \"gfr-bench-v4\",\n");
    std::fprintf(json, "  \"hardware_concurrency\": %d,\n", hw);
    json_ladder(json, "verify_exhaustive_m8", products8, ladder8, false);
    json_ladder(json, "verify_random_m163", products163, ladder163, false);
    std::fprintf(json,
                 "  \"exec_tape_m163\": {\"source_nodes\": %zu, \"instructions\": "
                 "%zu, \"fused_ands\": %zu, \"slots\": %u, "
                 "\"compiled_speedup_vs_pr3_t1\": %.3f},\n",
                 stats163.source_nodes, stats163.instructions, stats163.fused_ands,
                 stats163.slots, speedup163);
    std::fprintf(json, "  \"table5_campaign\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        std::fprintf(json,
                     "    {\"method\": \"%s\", \"field\": \"%s\", \"regime\": \"%s\", "
                     "\"products\": %.0f, \"seconds\": %.6f, \"products_per_sec\": "
                     "%.0f, \"pass\": %s}%s\n",
                     r.method.c_str(), r.field.c_str(), r.regime.c_str(), r.products,
                     r.seconds, r.products_per_sec, r.pass ? "true" : "false",
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote %s\n", json_path.c_str());

    for (const auto& r : rows) {
        if (!r.pass) {
            return 1;
        }
    }
    for (const auto* ladder : {&ladder8, &ladder163}) {
        for (const auto& p : *ladder) {
            if (!p.ok) {
                return 1;
            }
        }
    }
    return 0;
}
