// Verification campaign driver: the paper-style sweep plus the throughput
// numbers behind BENCH_9.json.
//
// Part 1 — Table V campaign: every generator family x every Table V field,
// each verified through the parallel campaign engine over the compiled
// execution layer (exhaustive where the operand space allows, random sweeps
// beyond), printed as a pass/fail + throughput table in the spirit of the
// paper's Table V.  argv[2] overrides the worker-thread count (the CI gate
// runs this with 2); any FAIL exits nonzero.
//
// Part 2 — exhaustive GF(2^8) ladder: all 2^16 products of the paper's
// worked field, swept per tape backend (scalar / AVX2 / AVX-512, whichever
// this build+CPU can run) x batching width {1, 4, 8, 16}, all at 1 thread.
// The frozen baseline is the PR-5 loop replicated verbatim below (same
// doctrine as the interpreter anchors): scalar tape at the PR-5 batching
// width of 4, per-block LaneReference check (the fused sweep oracle is a
// PR-9 construct), and the exhaustive fill paying the out-of-line
// pattern-generator call the pre-PR-9 build paid — PR-9 both restructured
// the check and inlined the fill, and letting the baseline inherit either
// would deflate every speedup.  The PR-2 path (single-threaded interpretive
// sweep loop, per-lane transpose, engine mul_region, per-bit compare) rides
// along verbatim as the deep-history anchor.
//
// Part 3 — random-regime GF(2^163) ladder, same grid: frozen baseline is
// the same PR-5 loop at width 1 (random sweeps were unbatched before PR-9;
// the random fill was header-inline then as now, so only the check
// structure differs from today's scalar point), with the PR-3 interpretive
// path (node-by-node Simulator + 64 per-lane engine products per sweep,
// frozen verbatim below) as anchor.
//
// Every ladder point measures CAMPAIGN EXECUTION on a prepared verifier:
// tape compilation and oracle anchoring are one-time setup, hoisted out of
// the timed region for the measured points and the frozen PR-5 baseline
// alike (the fixed ~13us m=8 compile would otherwise cap every per-op
// ratio regardless of how fast the sweeps get).  And every point is GATED
// on verdict correctness: the clean netlist must verify, and a
// fault-injected sibling must report a counterexample string byte-identical
// to the scalar width-1 reference — the measured configuration provably
// preserves both the verdict and the repro coordinates.  The PR-9
// acceptance bar is >= 2x products/s over the PR-5 baseline at the best
// single-thread point of each ladder.

#include "exec/program.h"
#include "exec/run_kernels.h"
#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "netlist/clone.h"
#include "netlist/simulate.h"
#include "verify/campaign.h"
#include "verify/lane_reference.h"

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace gfr {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The pre-PR-4 Simulator::run_into, verbatim with its reused value buffer:
/// the node-by-node interpretation both frozen interpreter anchors below
/// are pinned to (using today's compiled Simulator would silently speed
/// them up).
void interpret_netlist(const netlist::Netlist& nl,
                       std::span<const std::uint64_t> in_words,
                       std::vector<std::uint64_t>& values,
                       std::vector<std::uint64_t>& out_words) {
    values.assign(nl.node_count(), 0);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        values[nl.inputs()[i].node] = in_words[i];
    }
    for (netlist::NodeId id = 0; id < nl.node_count(); ++id) {
        const netlist::Node& n = nl.node(id);
        switch (n.kind) {
            case netlist::GateKind::Input:
            case netlist::GateKind::Const0:
                break;
            case netlist::GateKind::And2:
                values[id] = values[n.a] & values[n.b];
                break;
            case netlist::GateKind::Xor2:
                values[id] = values[n.a] ^ values[n.b];
                break;
        }
    }
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
        out_words[o] = values[nl.outputs()[o].node];
    }
}

/// The PR-2 exhaustive verification path, frozen: one thread, interpretive
/// simulation, transposing every sweep's 64 lanes into u64 operands,
/// batching the reference products through FieldOps::mul_region, then
/// comparing bit by bit.  Kept byte-for-byte equivalent to the pre-campaign
/// implementation so BENCH_N speedups stay anchored to the same baseline
/// over time.
bool pr2_exhaustive_verify(const netlist::Netlist& nl, const field::Field& field) {
    const int m = field.degree();
    std::vector<std::uint64_t> values;  // interpreter state, reused per sweep
    std::vector<std::uint64_t> in_words(static_cast<std::size_t>(2 * m), 0);
    std::vector<std::uint64_t> out_words(static_cast<std::size_t>(m), 0);
    std::array<std::uint64_t, 64> a_lanes{};
    std::array<std::uint64_t, 64> b_lanes{};
    std::array<std::uint64_t, 64> expected{};

    const std::uint64_t blocks = (2 * m <= 6) ? 1 : (std::uint64_t{1} << (2 * m - 6));
    for (std::uint64_t block = 0; block < blocks; ++block) {
        for (int i = 0; i < 2 * m; ++i) {
            in_words[static_cast<std::size_t>(i)] = netlist::exhaustive_pattern(i, block);
        }
        interpret_netlist(nl, in_words, values, out_words);
        for (int lane = 0; lane < 64; ++lane) {
            std::uint64_t a = 0;
            std::uint64_t b = 0;
            for (int i = 0; i < m; ++i) {
                a |= ((in_words[static_cast<std::size_t>(i)] >> lane) & std::uint64_t{1})
                     << i;
                b |= ((in_words[static_cast<std::size_t>(m + i)] >> lane) &
                      std::uint64_t{1})
                     << i;
            }
            a_lanes[static_cast<std::size_t>(lane)] = a;
            b_lanes[static_cast<std::size_t>(lane)] = b;
        }
        field.ops().mul_region(a_lanes, b_lanes, expected);
        for (int lane = 0; lane < 64; ++lane) {
            const std::uint64_t want = expected[static_cast<std::size_t>(lane)];
            for (int k = 0; k < m; ++k) {
                const bool got_bit =
                    (out_words[static_cast<std::size_t>(k)] >> lane) & 1U;
                const bool want_bit = (want >> k) & 1U;
                if (got_bit != want_bit) {
                    return false;
                }
            }
        }
    }
    return true;
}

/// The PR-3 random-regime multi-word verification path, frozen: one thread;
/// per sweep, a node-by-node interpretive simulation (the pre-PR-4
/// Simulator semantics, inlined verbatim with its reused value buffer) and
/// then, per lane, two bit-transposed operand extractions, one engine
/// product and a bit-gathered compare.
bool pr3_random_verify(const netlist::Netlist& nl, const field::Field& field,
                       std::uint64_t seed, int sweeps) {
    const int m = field.degree();
    const std::size_t wn = static_cast<std::size_t>((m + 63) / 64);
    std::vector<std::uint64_t> values;  // interpreter state, reused per sweep
    std::vector<std::uint64_t> in_words(static_cast<std::size_t>(2 * m), 0);
    std::vector<std::uint64_t> out_words(static_cast<std::size_t>(m), 0);
    std::vector<std::uint64_t> bits;
    std::vector<std::uint64_t> got_bits;
    gf2::Poly a_elem;
    gf2::Poly b_elem;
    gf2::Poly product;
    field::FieldOps::Scratch scratch;

    const auto element_from_lane = [&](int offset, int lane, gf2::Poly& out) {
        bits.assign(wn, 0);
        for (int i = 0; i < m; ++i) {
            if ((in_words[static_cast<std::size_t>(offset + i)] >> lane) & 1U) {
                bits[static_cast<std::size_t>(i / 64)] |= std::uint64_t{1} << (i % 64);
            }
        }
        out.assign_words(bits);
    };

    for (int sweep = 0; sweep < sweeps; ++sweep) {
        verify::SweepRng rng{verify::Campaign::derive_sweep_seed(
            seed, static_cast<std::uint64_t>(sweep))};
        for (auto& word : in_words) {
            word = rng();
        }
        interpret_netlist(nl, in_words, values, out_words);
        // Per-lane engine compare, PR-3 check_sweep multi-word verbatim.
        for (int lane = 0; lane < 64; ++lane) {
            element_from_lane(0, lane, a_elem);
            element_from_lane(m, lane, b_elem);
            field.ops().mul(a_elem, b_elem, product, scratch);
            got_bits.assign(wn, 0);
            for (int k = 0; k < m; ++k) {
                if ((out_words[static_cast<std::size_t>(k)] >> lane) & 1U) {
                    got_bits[static_cast<std::size_t>(k / 64)] |= std::uint64_t{1}
                                                                  << (k % 64);
                }
            }
            const auto pw = product.words();
            for (std::size_t word = 0; word < wn; ++word) {
                const std::uint64_t want_w = word < pw.size() ? pw[word] : 0;
                if ((got_bits[word] ^ want_w) != 0) {
                    return false;
                }
            }
        }
    }
    return true;
}

struct ThroughputPoint {
    std::string label;
    std::string backend;  ///< "interpreter" for the frozen anchors
    int width = 0;        ///< batching width (0 for the interpreter anchors)
    int threads = 1;
    double seconds = 0;
    double products_per_sec = 0;
    bool ok = false;               ///< clean netlist verified
    bool repro_invariant = false;  ///< faulted repro string == scalar w1
};

template <typename Fn>
ThroughputPoint measure(const std::string& label, double products, const Fn& run,
                        int repeats) {
    ThroughputPoint p;
    p.label = label;
    p.ok = true;
    double best = 1e100;
    for (int r = 0; r < repeats; ++r) {
        const auto t0 = Clock::now();
        p.ok = run() && p.ok;
        best = std::min(best, seconds_since(t0));
    }
    p.seconds = best;
    p.products_per_sec = products / best;
    return p;
}

/// A fault-injected sibling of `good` whose output `index` picks up an
/// extra XOR of input `input` — the fixture each measured configuration
/// must report with the same counterexample string as the scalar width-1
/// reference.
netlist::Netlist faulted_clone(const netlist::Netlist& good, std::size_t index,
                               std::size_t input) {
    return netlist::clone_netlist(
        good, {.intern = true}, nullptr,
        [&](std::size_t i, std::span<const netlist::NodeId> mapped,
            netlist::Netlist& dst) {
            return i == index ? dst.make_xor(mapped[i], dst.inputs()[input].node)
                              : mapped[i];
        });
}

/// Tape backends this build + CPU can execute, scalar first.
std::vector<exec::Backend> runnable_backends() {
    std::vector<exec::Backend> out;
    const auto cpu = bulk::detect_cpu();
    for (const exec::Backend b : exec::compiled_tape_backends()) {
        if (exec::backend_supported(b, cpu)) {
            out.push_back(b);
        }
    }
    return out;
}

struct LadderSpec {
    const netlist::Netlist* good = nullptr;
    const netlist::Netlist* bad = nullptr;
    const field::Field* field = nullptr;
    double products = 0;
    int repeats = 0;
    mult::VerifyOptions base_opts;  ///< threads/seed/sweeps pinned; width and
                                    ///< backend filled per point
};

/// One backend x width grid over `spec`, each point measured and then
/// gated: the clean verify must pass and the faulted sibling must reproduce
/// `want_repro` byte-for-byte.
std::vector<ThroughputPoint> run_ladder(const LadderSpec& spec,
                                        const std::string& want_repro) {
    std::vector<ThroughputPoint> points;
    for (const exec::Backend backend : runnable_backends()) {
        for (const int width : {1, 4, 8, 16}) {
            mult::VerifyOptions opts = spec.base_opts;
            opts.threads = 1;
            opts.max_batch_blocks = width;
            opts.exec_backend = backend;
            const std::string label =
                std::string{exec::backend_name(backend)} + "_w" +
                std::to_string(width);
            const mult::MultiplierVerifier good{*spec.good, *spec.field, opts};
            ThroughputPoint p = measure(
                label, spec.products, [&] { return !good.run().has_value(); },
                spec.repeats);
            p.backend = exec::backend_name(backend);
            p.width = width;
            const auto failure =
                mult::MultiplierVerifier{*spec.bad, *spec.field, opts}.run();
            p.repro_invariant =
                failure.has_value() && failure->to_string() == want_repro;
            points.push_back(std::move(p));
        }
    }
    return points;
}

/// The pre-PR-9 exhaustive pattern generator at PR-5's compilation
/// boundary: it lived out of line in netlist/simulate.cpp then, so every
/// fill store paid a call.  PR-9 moved it into the header as inline; the
/// frozen baseline must not inherit that, hence this noinline replica.
__attribute__((noinline)) std::uint64_t pr5_exhaustive_pattern(
    int input_index, std::uint64_t block) {
    constexpr std::uint64_t kMasks[6] = {
        0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
        0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};
    if (input_index < 6) {
        return kMasks[input_index];
    }
    return ((block >> (input_index - 6)) & 1U) ? ~std::uint64_t{0} : 0;
}

/// Off-hot-path element extraction for the frozen path's failure report,
/// mirroring verify.cpp's element_from_lane.
gf2::Poly pr5_element_from_lane(std::span<const std::uint64_t> words, int offset,
                                int m, int lane) {
    std::vector<std::uint64_t> bits(static_cast<std::size_t>((m + 63) / 64), 0);
    for (int i = 0; i < m; ++i) {
        if ((words[static_cast<std::size_t>(offset + i)] >> lane) & 1U) {
            bits[static_cast<std::size_t>(i / 64)] |= std::uint64_t{1} << (i % 64);
        }
    }
    gf2::Poly out;
    out.assign_words(bits);
    return out;
}

/// The PR-5 verification loop, frozen verbatim: one thread, scalar tape at
/// PR-5's batching width, and per batched block the LaneReference::products
/// + bit-compare check — the pre-fused-oracle check_block semantics, with
/// the exhaustive fill behind its PR-5 call boundary.  Compilation and
/// oracle construction happen once at construction (the same preparation
/// hoist every measured point gets); run() returns the first failure's
/// repro string (width-1 coordinates, same construction as
/// verify_multiplier) so the baseline gates exactly like every ladder
/// point.
struct Pr5Verifier {
    const field::Field* field;
    exec::Program prog;
    verify::LaneReference laneref;

    Pr5Verifier(const netlist::Netlist& nl, const field::Field& f)
        : field{&f}, prog{exec::Program::compile(nl)}, laneref{f} {}

    std::optional<std::string> run(bool exhaustive, int width,
                                   std::uint64_t seed, int sweeps) const;
};

std::optional<std::string> Pr5Verifier::run(bool exhaustive, int width,
                                            std::uint64_t seed,
                                            int sweeps) const {
    const int m = field->degree();
    const std::size_t n_in = static_cast<std::size_t>(2 * m);
    const std::size_t n_out = static_cast<std::size_t>(m);
    const std::uint64_t total_blocks =
        exhaustive ? ((2 * m <= 6) ? 1 : (std::uint64_t{1} << (2 * m - 6)))
                   : static_cast<std::uint64_t>(sweeps);
    const exec::BlockGrouping grouping =
        exec::BlockGrouping::over(total_blocks, true, width);
    exec::Program::Scratch scratch;
    std::vector<std::uint64_t> in(n_in * static_cast<std::size_t>(grouping.group), 0);
    std::vector<std::uint64_t> out(n_out * static_cast<std::size_t>(grouping.group), 0);
    std::vector<std::uint64_t> want;
    verify::LaneReference::Scratch lscratch;

    for (std::uint64_t sweep = 0; sweep < grouping.total_sweeps; ++sweep) {
        const std::uint64_t first_block = grouping.first_block(sweep);
        const int blocks = grouping.blocks_in_sweep(sweep);
        for (int b = 0; b < blocks; ++b) {
            const std::uint64_t blk = first_block + static_cast<std::uint64_t>(b);
            if (exhaustive) {
                for (int i = 0; i < 2 * m; ++i) {
                    in[n_in * static_cast<std::size_t>(b) +
                       static_cast<std::size_t>(i)] = pr5_exhaustive_pattern(i, blk);
                }
            } else {
                verify::SweepRng rng{verify::Campaign::derive_sweep_seed(seed, blk)};
                for (int i = 0; i < 2 * m; ++i) {
                    in[n_in * static_cast<std::size_t>(b) +
                       static_cast<std::size_t>(i)] = rng();
                }
            }
        }
        prog.run(std::span{in}.first(n_in * static_cast<std::size_t>(blocks)),
                 std::span{out}.first(n_out * static_cast<std::size_t>(blocks)),
                 scratch, blocks, exec::Backend::Scalar);
        for (int b = 0; b < blocks; ++b) {
            const auto bin = std::span{in}.subspan(n_in * static_cast<std::size_t>(b), n_in);
            const auto bout =
                std::span{out}.subspan(n_out * static_cast<std::size_t>(b), n_out);
            laneref.products(bin, want, lscratch);
            std::uint64_t diff_any = 0;
            for (int k = 0; k < m; ++k) {
                diff_any |= bout[static_cast<std::size_t>(k)] ^
                            want[static_cast<std::size_t>(k)];
            }
            if (diff_any == 0) {
                continue;
            }
            const int lane = std::countr_zero(diff_any);
            for (int k = 0; k < m; ++k) {
                const bool got_bit = (bout[static_cast<std::size_t>(k)] >> lane) & 1U;
                const bool want_bit = (want[static_cast<std::size_t>(k)] >> lane) & 1U;
                if (got_bit == want_bit) {
                    continue;
                }
                mult::VerifyFailure failure{pr5_element_from_lane(bin, 0, m, lane),
                                            pr5_element_from_lane(bin, m, m, lane),
                                            k, got_bit, want_bit};
                failure.campaign_seed = seed;
                failure.sweep_index = first_block + static_cast<std::uint64_t>(b);
                failure.random_regime = !exhaustive;
                return failure.to_string();
            }
        }
    }
    return std::nullopt;
}

/// Measure + gate the frozen PR-5 loop above against the scalar width-1
/// reference repro, exactly like every ladder point.
ThroughputPoint measure_pr5(const LadderSpec& spec, bool exhaustive, int width,
                            const std::string& want_repro) {
    const std::uint64_t seed = spec.base_opts.seed;
    const int sweeps = spec.base_opts.random_sweeps;
    const Pr5Verifier good{*spec.good, *spec.field};
    ThroughputPoint p = measure(
        "pr5_scalar_w" + std::to_string(width), spec.products,
        [&] { return !good.run(exhaustive, width, seed, sweeps).has_value(); },
        spec.repeats);
    p.backend = "scalar-pr5";
    p.width = width;
    const auto repro =
        Pr5Verifier{*spec.bad, *spec.field}.run(exhaustive, width, seed, sweeps);
    p.repro_invariant = repro.has_value() && *repro == want_repro;
    return p;
}

/// The scalar width-1 counterexample string every measured point must
/// reproduce.
std::string reference_repro(const LadderSpec& spec) {
    mult::VerifyOptions opts = spec.base_opts;
    opts.threads = 1;
    opts.max_batch_blocks = 1;
    opts.exec_backend = exec::Backend::Scalar;
    const auto failure = mult::verify_multiplier(*spec.bad, *spec.field, opts);
    if (!failure.has_value()) {
        std::fprintf(stderr, "faulted fixture verified clean — bench is broken\n");
        std::exit(1);
    }
    return failure->to_string();
}

struct SweepRow {
    std::string method;
    std::string field;
    std::string regime;
    double products = 0;
    double seconds = 0;
    double products_per_sec = 0;
    bool pass = false;
};

void print_ladder(const char* title, const std::vector<ThroughputPoint>& ladder,
                  double baseline_seconds, int repeats) {
    std::printf("\n%s (best of %d runs; speedup vs frozen PR-5 scalar point)\n",
                title, repeats);
    std::printf("%-22s %6s %12s %16s %9s\n", "path", "width", "seconds",
                "products/s", "speedup");
    for (const auto& p : ladder) {
        std::printf("%-22s %6d %12.6f %16.0f %8.2fx  %s%s\n", p.label.c_str(),
                    p.width, p.seconds, p.products_per_sec,
                    baseline_seconds / p.seconds, p.ok ? "" : "(VERIFY FAILED) ",
                    p.width == 0 ? "(anchor, ungated)"
                                 : (p.repro_invariant ? "" : "(REPRO DRIFTED)"));
    }
}

void json_ladder(std::FILE* json, const char* key, double products,
                 const std::vector<ThroughputPoint>& ladder,
                 double baseline_seconds, const char* baseline_label) {
    std::fprintf(json, "  \"%s\": {\n", key);
    std::fprintf(json, "    \"products\": %.0f,\n    \"baseline\": \"%s\",\n",
                 products, baseline_label);
    std::fprintf(json, "    \"paths\": [\n");
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        const auto& p = ladder[i];
        std::fprintf(json,
                     "      {\"path\": \"%s\", \"backend\": \"%s\", \"width\": %d, "
                     "\"threads\": %d, \"seconds\": %.6f, "
                     "\"products_per_sec\": %.0f, \"speedup_vs_pr5\": %.3f, "
                     "\"verdict_ok\": %s, \"repro_invariant\": %s}%s\n",
                     p.label.c_str(), p.backend.c_str(), p.width, p.threads,
                     p.seconds, p.products_per_sec, baseline_seconds / p.seconds,
                     p.ok ? "true" : "false",
                     p.repro_invariant ? "true" : "false",
                     i + 1 < ladder.size() ? "," : "");
    }
    std::fprintf(json, "    ]\n  },\n");
}

/// The best gated point of a ladder (verdict ok + repro invariant).
const ThroughputPoint* best_gated(const std::vector<ThroughputPoint>& ladder) {
    const ThroughputPoint* best = nullptr;
    for (const auto& p : ladder) {
        if (p.width == 0 || !p.ok || !p.repro_invariant) {
            continue;
        }
        if (best == nullptr || p.products_per_sec > best->products_per_sec) {
            best = &p;
        }
    }
    return best;
}

}  // namespace
}  // namespace gfr

int main(int argc, char** argv) {
    using namespace gfr;
    const std::string json_path = (argc > 1) ? argv[1] : "BENCH_9.json";
    const int thread_override = (argc > 2) ? std::atoi(argv[2]) : 0;
    const int hw = static_cast<int>(std::max(1U, std::thread::hardware_concurrency()));

    // --- Part 1: generator family x Table V field campaign ------------------
    std::vector<SweepRow> rows;
    std::printf("Table V verification campaign (compiled tapes, %s threads)\n",
                thread_override > 0 ? std::to_string(thread_override).c_str()
                                    : "auto");
    std::printf("%-14s %-12s %-11s %12s %10s %14s  %s\n", "method", "field", "regime",
                "products", "seconds", "products/s", "verdict");
    for (const auto& info : mult::all_methods()) {
        for (const auto& spec : field::table5_fields()) {
            const field::Field fld = spec.make();
            const auto nl = mult::build_multiplier(info.method, fld);
            mult::VerifyOptions opts;
            opts.threads = thread_override;
            const bool exhaustive = 2 * fld.degree() <= opts.max_exhaustive_inputs;
            const double products =
                exhaustive ? static_cast<double>(std::uint64_t{1} << (2 * fld.degree()))
                           : 64.0 * opts.random_sweeps;
            const auto t0 = Clock::now();
            const auto failure = mult::verify_multiplier(nl, fld, opts);
            const double secs = seconds_since(t0);
            SweepRow row;
            row.method = std::string{info.key};
            row.field = spec.label();
            row.regime = exhaustive ? "exhaustive" : "random";
            row.products = products;
            row.seconds = secs;
            row.products_per_sec = products / secs;
            row.pass = !failure.has_value();
            rows.push_back(row);
            std::printf("%-14s %-12s %-11s %12.0f %10.4f %14.0f  %s\n",
                        row.method.c_str(), row.field.c_str(), row.regime.c_str(),
                        row.products, row.seconds, row.products_per_sec,
                        row.pass ? "PASS" : "FAIL");
        }
    }

    // --- Part 2: exhaustive GF(2^8) backend x width ladder ------------------
    const field::Field gf256 = field::gf256_paper_field();
    const auto nl8 = mult::build_multiplier(mult::Method::Date2018Flat, gf256);
    const auto bad8 = faulted_clone(nl8, 5, 2);
    constexpr int kRepeats8 = 21;

    LadderSpec spec8;
    spec8.good = &nl8;
    spec8.bad = &bad8;
    spec8.field = &gf256;
    spec8.products = 65536.0;
    spec8.repeats = kRepeats8;
    const std::string repro8 = reference_repro(spec8);

    std::vector<ThroughputPoint> ladder8 = run_ladder(spec8, repro8);
    {
        // Deep-history anchor: the PR-2 interpretive path, unchanged.
        ThroughputPoint pr2 = measure(
            "pr2_interpreter", spec8.products,
            [&] { return pr2_exhaustive_verify(nl8, gf256); }, kRepeats8);
        pr2.backend = "interpreter";
        ladder8.insert(ladder8.begin(), std::move(pr2));
    }
    // The frozen PR-5 loop: scalar tape, batching width 4, per-block check,
    // out-of-line exhaustive fill.
    ThroughputPoint pr5_8 = measure_pr5(spec8, true, 4, repro8);
    const double base8 = pr5_8.seconds;
    ladder8.insert(ladder8.begin() + 1, std::move(pr5_8));
    print_ladder("Exhaustive GF(2^8) space: 65536 products", ladder8, base8,
                 kRepeats8);

    // --- Part 3: random-regime GF(2^163) backend x width ladder -------------
    const field::Field gf163 = field::Field::type2(163, 68);
    const auto nl163 = mult::build_multiplier(mult::Method::Date2018Flat, gf163);
    const auto bad163 = faulted_clone(nl163, 56, 3);
    const exec::Program prog163 = exec::Program::compile(nl163);
    const auto stats163 = prog163.stats();
    constexpr int kSweeps163 = 256;
    constexpr int kRepeats163 = 5;

    LadderSpec spec163;
    spec163.good = &nl163;
    spec163.bad = &bad163;
    spec163.field = &gf163;
    spec163.products = 64.0 * kSweeps163;
    spec163.repeats = kRepeats163;
    spec163.base_opts.random_sweeps = kSweeps163;
    spec163.base_opts.seed = 0xD1CEULL;
    const std::string repro163 = reference_repro(spec163);

    std::vector<ThroughputPoint> ladder163 = run_ladder(spec163, repro163);
    {
        // Deep-history anchor: the PR-3 interpretive path, unchanged.
        ThroughputPoint pr3 = measure(
            "pr3_interpreter", spec163.products,
            [&] {
                return pr3_random_verify(nl163, gf163, spec163.base_opts.seed,
                                         kSweeps163);
            },
            kRepeats163);
        pr3.backend = "interpreter";
        ladder163.insert(ladder163.begin(), std::move(pr3));
    }
    // The frozen PR-5 loop: scalar tape, unbatched random sweeps, per-block
    // check.
    ThroughputPoint pr5_163 = measure_pr5(spec163, false, 1, repro163);
    const double base163 = pr5_163.seconds;
    ladder163.insert(ladder163.begin() + 1, std::move(pr5_163));
    print_ladder("Random-regime GF(2^163): 16384 products", ladder163, base163,
                 kRepeats163);
    std::printf(
        "m=163 tape: %zu source nodes -> %zu instructions "
        "(%zu fused ANDs), working set %u slots\n",
        stats163.source_nodes, stats163.instructions, stats163.fused_ands,
        stats163.slots);

    const ThroughputPoint* best8 = best_gated(ladder8);
    const ThroughputPoint* best163 = best_gated(ladder163);
    if (best8 == nullptr || best163 == nullptr) {
        std::fprintf(stderr, "no gated ladder point survived\n");
        return 1;
    }
    const double speedup8 = base8 / best8->seconds;
    const double speedup163 = base163 / best163->seconds;
    std::printf(
        "\nPR-9 acceptance: exhaustive best %s = %.2fx PR-5 scalar_w4, "
        "random best %s = %.2fx PR-5 scalar_w1 (bar: >= 2x, gated points only)\n",
        best8->label.c_str(), speedup8, best163->label.c_str(), speedup163);

    // --- JSON ----------------------------------------------------------------
    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"schema\": \"gfr-bench-v9\",\n");
    std::fprintf(json, "  \"hardware_concurrency\": %d,\n", hw);
    json_ladder(json, "verify_exhaustive_m8", spec8.products, ladder8, base8,
                "pr5_scalar_w4");
    json_ladder(json, "verify_random_m163", spec163.products, ladder163, base163,
                "pr5_scalar_w1");
    std::fprintf(json,
                 "  \"acceptance\": {\"exhaustive_best\": \"%s\", "
                 "\"exhaustive_speedup_vs_pr5\": %.3f, \"random_best\": \"%s\", "
                 "\"random_speedup_vs_pr5\": %.3f, \"bar\": 2.0},\n",
                 best8->label.c_str(), speedup8, best163->label.c_str(),
                 speedup163);
    std::fprintf(json,
                 "  \"exec_tape_m163\": {\"source_nodes\": %zu, \"instructions\": "
                 "%zu, \"fused_ands\": %zu, \"slots\": %u},\n",
                 stats163.source_nodes, stats163.instructions, stats163.fused_ands,
                 stats163.slots);
    std::fprintf(json, "  \"table5_campaign\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        std::fprintf(json,
                     "    {\"method\": \"%s\", \"field\": \"%s\", \"regime\": \"%s\", "
                     "\"products\": %.0f, \"seconds\": %.6f, \"products_per_sec\": "
                     "%.0f, \"pass\": %s}%s\n",
                     r.method.c_str(), r.field.c_str(), r.regime.c_str(), r.products,
                     r.seconds, r.products_per_sec, r.pass ? "true" : "false",
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote %s\n", json_path.c_str());

    for (const auto& r : rows) {
        if (!r.pass) {
            return 1;
        }
    }
    for (const auto* ladder : {&ladder8, &ladder163}) {
        for (const auto& p : *ladder) {
            if (!p.ok || (p.width != 0 && !p.repro_invariant)) {
                return 1;
            }
        }
    }
    return 0;
}
