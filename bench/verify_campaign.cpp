// Verification campaign driver: the paper-style sweep plus the throughput
// numbers behind BENCH_3.json.
//
// Part 1 — Table V campaign: every generator family x every Table V field,
// each verified through the parallel campaign engine (exhaustive where the
// operand space allows, random sweeps beyond), printed as a pass/fail +
// throughput table in the spirit of the paper's Table V.
//
// Part 2 — throughput ladder: the exhaustive GF(2^8) space (all 2^16
// products of the paper's worked field) verified with
//   (a) the PR-2 path: single-threaded sweep loop, per-lane transpose,
//       engine mul_region, per-bit compare — reimplemented here verbatim as
//       the frozen baseline, and
//   (b) the campaign engine at 1, 4 and hardware_concurrency threads
//       (bitsliced lane reference + sharded sweeps).
// The acceptance bar for PR 3 is campaign@4 >= 3x the PR-2 baseline with
// bit-identical verdicts; the measured numbers land in BENCH_3.json
// (path overridable as argv[1]).

#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "netlist/simulate.h"

#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace gfr {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The PR-2 exhaustive verification path, frozen: one thread, transposing
/// every sweep's 64 lanes into u64 operands, batching the reference
/// products through FieldOps::mul_region, then comparing bit by bit.  Kept
/// byte-for-byte equivalent to the pre-campaign implementation so BENCH_N
/// speedups stay anchored to the same baseline over time.
bool pr2_exhaustive_verify(const netlist::Netlist& nl, const field::Field& field) {
    const int m = field.degree();
    netlist::Simulator sim{nl};
    std::vector<std::uint64_t> in_words(static_cast<std::size_t>(2 * m), 0);
    std::vector<std::uint64_t> out_words;
    std::array<std::uint64_t, 64> a_lanes{};
    std::array<std::uint64_t, 64> b_lanes{};
    std::array<std::uint64_t, 64> expected{};

    const std::uint64_t blocks = (2 * m <= 6) ? 1 : (std::uint64_t{1} << (2 * m - 6));
    for (std::uint64_t block = 0; block < blocks; ++block) {
        for (int i = 0; i < 2 * m; ++i) {
            in_words[static_cast<std::size_t>(i)] = netlist::exhaustive_pattern(i, block);
        }
        sim.run_into(in_words, out_words);
        for (int lane = 0; lane < 64; ++lane) {
            std::uint64_t a = 0;
            std::uint64_t b = 0;
            for (int i = 0; i < m; ++i) {
                a |= ((in_words[static_cast<std::size_t>(i)] >> lane) & std::uint64_t{1})
                     << i;
                b |= ((in_words[static_cast<std::size_t>(m + i)] >> lane) &
                      std::uint64_t{1})
                     << i;
            }
            a_lanes[static_cast<std::size_t>(lane)] = a;
            b_lanes[static_cast<std::size_t>(lane)] = b;
        }
        field.ops().mul_region(a_lanes, b_lanes, expected);
        for (int lane = 0; lane < 64; ++lane) {
            const std::uint64_t want = expected[static_cast<std::size_t>(lane)];
            for (int k = 0; k < m; ++k) {
                const bool got_bit =
                    (out_words[static_cast<std::size_t>(k)] >> lane) & 1U;
                const bool want_bit = (want >> k) & 1U;
                if (got_bit != want_bit) {
                    return false;
                }
            }
        }
    }
    return true;
}

struct ThroughputPoint {
    std::string label;
    int threads = 0;
    double seconds = 0;
    double products_per_sec = 0;
    bool ok = false;
};

template <typename Fn>
ThroughputPoint measure(const std::string& label, int threads, double products,
                        const Fn& run, int repeats) {
    ThroughputPoint p;
    p.label = label;
    p.threads = threads;
    p.ok = true;
    double best = 1e100;
    for (int r = 0; r < repeats; ++r) {
        const auto t0 = Clock::now();
        p.ok = run() && p.ok;
        best = std::min(best, seconds_since(t0));
    }
    p.seconds = best;
    p.products_per_sec = products / best;
    return p;
}

struct SweepRow {
    std::string method;
    std::string field;
    std::string regime;
    double products = 0;
    double seconds = 0;
    double products_per_sec = 0;
    bool pass = false;
};

}  // namespace
}  // namespace gfr

int main(int argc, char** argv) {
    using namespace gfr;
    const std::string json_path = (argc > 1) ? argv[1] : "BENCH_3.json";
    const int hw = static_cast<int>(std::max(1U, std::thread::hardware_concurrency()));

    // --- Part 1: generator family x Table V field campaign ------------------
    std::vector<SweepRow> rows;
    std::printf("Table V verification campaign (campaign engine, auto threads)\n");
    std::printf("%-14s %-12s %-11s %12s %10s %14s  %s\n", "method", "field", "regime",
                "products", "seconds", "products/s", "verdict");
    for (const auto& info : mult::all_methods()) {
        for (const auto& spec : field::table5_fields()) {
            const field::Field fld = spec.make();
            const auto nl = mult::build_multiplier(info.method, fld);
            mult::VerifyOptions opts;  // auto threads, default regime thresholds
            const bool exhaustive = 2 * fld.degree() <= opts.max_exhaustive_inputs;
            const double products =
                exhaustive ? static_cast<double>(std::uint64_t{1} << (2 * fld.degree()))
                           : 64.0 * opts.random_sweeps;
            const auto t0 = Clock::now();
            const auto failure = mult::verify_multiplier(nl, fld, opts);
            const double secs = seconds_since(t0);
            SweepRow row;
            row.method = std::string{info.key};
            row.field = spec.label();
            row.regime = exhaustive ? "exhaustive" : "random";
            row.products = products;
            row.seconds = secs;
            row.products_per_sec = products / secs;
            row.pass = !failure.has_value();
            rows.push_back(row);
            std::printf("%-14s %-12s %-11s %12.0f %10.4f %14.0f  %s\n",
                        row.method.c_str(), row.field.c_str(), row.regime.c_str(),
                        row.products, row.seconds, row.products_per_sec,
                        row.pass ? "PASS" : "FAIL");
        }
    }

    // --- Part 2: exhaustive GF(2^8) throughput ladder -----------------------
    const field::Field gf256 = field::gf256_paper_field();
    const auto nl8 = mult::build_multiplier(mult::Method::Date2018Flat, gf256);
    const double products8 = 65536.0;
    constexpr int kRepeats = 9;

    std::vector<ThroughputPoint> ladder;
    ladder.push_back(measure("pr2_single_thread", 1, products8,
                             [&] { return pr2_exhaustive_verify(nl8, gf256); },
                             kRepeats));
    std::vector<int> thread_points = {1, 4};
    if (hw != 1 && hw != 4) {
        thread_points.push_back(hw);
    }
    for (const int threads : thread_points) {
        mult::VerifyOptions opts;
        opts.threads = threads;
        ladder.push_back(measure(
            "campaign_t" + std::to_string(threads), threads, products8,
            [&] { return !mult::verify_multiplier(nl8, gf256, opts).has_value(); },
            kRepeats));
    }

    const double base = ladder.front().seconds;
    std::printf("\nExhaustive GF(2^8) space: 65536 products, best of %d runs\n",
                kRepeats);
    std::printf("%-22s %8s %12s %16s %9s\n", "path", "threads", "seconds",
                "products/s", "speedup");
    for (const auto& p : ladder) {
        std::printf("%-22s %8d %12.6f %16.0f %8.2fx  %s\n", p.label.c_str(), p.threads,
                    p.seconds, p.products_per_sec, base / p.seconds,
                    p.ok ? "" : "(VERIFY FAILED)");
    }

    // --- JSON ----------------------------------------------------------------
    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"schema\": \"gfr-bench-v3\",\n");
    std::fprintf(json, "  \"hardware_concurrency\": %d,\n", hw);
    std::fprintf(json, "  \"verify_exhaustive_m8\": {\n");
    std::fprintf(json, "    \"products\": 65536,\n    \"paths\": [\n");
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        const auto& p = ladder[i];
        std::fprintf(json,
                     "      {\"path\": \"%s\", \"threads\": %d, \"seconds\": %.6f, "
                     "\"products_per_sec\": %.0f, \"speedup_vs_pr2\": %.3f, "
                     "\"verdict_ok\": %s}%s\n",
                     p.label.c_str(), p.threads, p.seconds, p.products_per_sec,
                     base / p.seconds, p.ok ? "true" : "false",
                     i + 1 < ladder.size() ? "," : "");
    }
    std::fprintf(json, "    ]\n  },\n");
    std::fprintf(json, "  \"table5_campaign\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        std::fprintf(json,
                     "    {\"method\": \"%s\", \"field\": \"%s\", \"regime\": \"%s\", "
                     "\"products\": %.0f, \"seconds\": %.6f, \"products_per_sec\": "
                     "%.0f, \"pass\": %s}%s\n",
                     r.method.c_str(), r.field.c_str(), r.regime.c_str(), r.products,
                     r.seconds, r.products_per_sec, r.pass ? "true" : "false",
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote %s\n", json_path.c_str());

    for (const auto& r : rows) {
        if (!r.pass) {
            return 1;
        }
    }
    for (const auto& p : ladder) {
        if (!p.ok) {
            return 1;
        }
    }
    return 0;
}
