// Reproduces TABLE V of the paper: "Comparison of GF(2^m) multipliers" —
// post-place-and-route LUTs / Slices / Time (ns) / Area x Time on Artix-7
// for six architectures across nine type II fields.
//
// Our numbers come from the full model flow (DESIGN.md): generator ->
// (synthesis freedom for "This work" only, exactly like the paper gives XST
// freedom only over the flat Table IV equations) -> priority-cuts 6-LUT
// mapping -> slice packing -> calibrated timing.  The paper's measured
// values are printed alongside.  The reproduction target is the SHAPE:
// which method wins A x T per field, and how area/delay scale with m.
//
// Set GFR_TABLE5_FAST=1 to run only the two smallest fields (CI-speed).

#include "field/field_catalog.h"
#include "fpga/flow.h"
#include "multipliers/generator.h"
#include "report/table.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace {

struct PaperRow {
    int luts;
    int slices;
    double ns;
    double axt;
};

// Verbatim Table V from the paper, keyed by (field label, method display).
const std::map<std::string, std::map<std::string, PaperRow>>& paper_table5() {
    static const std::map<std::string, std::map<std::string, PaperRow>> data = {
        {"(8,2)",
         {{"[2]", {34, 11, 9.86, 335.24}},
          {"[8]", {35, 14, 9.62, 336.70}},
          {"[3]", {35, 13, 10.10, 353.50}},
          {"[6]", {37, 14, 9.68, 358.16}},
          {"[7]", {40, 13, 9.90, 396.00}},
          {"This work", {33, 12, 9.77, 322.41}}}},
        {"(64,23)",
         {{"[2]", {1836, 586, 22.63, 41548.68}},
          {"[8]", {1794, 585, 20.37, 36543.78}},
          {"[3]", {1749, 566, 20.91, 36571.59}},
          {"[6]", {1825, 580, 20.21, 36883.25}},
          {"[7]", {1854, 642, 21.28, 39453.12}},
          {"This work", {1769, 541, 20.18, 35698.42}}}},
        {"(113,4) SECG",
         {{"[2]", {5747, 2672, 21.39, 122928.33}},
          {"[8]", {5501, 2864, 23.29, 128118.29}},
          {"[3]", {5424, 2637, 21.77, 118080.48}},
          {"[6]", {5778, 2469, 21.28, 122955.84}},
          {"[7]", {5944, 2115, 21.30, 126607.20}},
          {"This work", {5420, 2571, 20.94, 113494.80}}}},
        {"(113,34) SECG",
         {{"[2]", {5560, 2849, 23.58, 131104.80}},
          {"[8]", {5505, 2682, 23.38, 128706.90}},
          {"[3]", {5445, 2563, 20.84, 113473.80}},
          {"[6]", {5813, 2361, 20.36, 118352.68}},
          {"[7]", {5909, 2073, 21.73, 128402.57}},
          {"This work", {5474, 2507, 21.59, 118183.66}}}},
        {"(122,49)",
         {{"[2]", {6487, 3122, 23.47, 152249.89}},
          {"[8]", {6420, 3045, 23.75, 152475.00}},
          {"[3]", {6305, 2024, 21.15, 133350.75}},
          {"[6]", {6834, 2287, 21.83, 149186.22}},
          {"[7]", {6858, 1992, 21.86, 149915.88}},
          {"This work", {6361, 1951, 20.95, 133262.95}}}},
        {"(139,59)",
         {{"[2]", {8370, 3511, 23.54, 197029.80}},
          {"[8]", {8301, 3915, 23.77, 197314.77}},
          {"[3]", {8139, 2657, 21.63, 176046.57}},
          {"[6]", {8900, 2960, 22.29, 198381.00}},
          {"[7]", {8998, 3031, 21.55, 193906.90}},
          {"This work", {8222, 2543, 21.35, 175539.70}}}},
        {"(148,72)",
         {{"[2]", {9466, 3888, 25.27, 239205.82}},
          {"[8]", {9406, 3804, 23.91, 224897.46}},
          {"[3]", {9252, 3156, 21.98, 203358.96}},
          {"[6]", {9996, 3329, 22.40, 223910.40}},
          {"[7]", {9943, 3112, 22.31, 221828.33}},
          {"This work", {9314, 3104, 21.76, 202672.64}}}},
        {"(163,66) NIST",
         {{"[2]", {11425, 4053, 25.20, 287910.00}},
          {"[8]", {11379, 4433, 23.52, 267634.08}},
          {"[3]", {11179, 3361, 23.66, 264495.14}},
          {"[6]", {12155, 4056, 22.48, 273244.40}},
          {"[7]", {12293, 4015, 22.95, 282124.35}},
          {"This work", {11295, 3621, 22.77, 257187.15}}}},
        {"(163,68) NIST",
         {{"[2]", {11422, 4205, 24.20, 276412.40}},
          {"[8]", {11379, 4349, 24.01, 273209.79}},
          {"[3]", {11172, 3105, 22.40, 250252.80}},
          {"[6]", {12187, 3876, 22.83, 278229.91}},
          {"[7]", {12334, 4430, 23.82, 293795.88}},
          {"This work", {11330, 3697, 22.39, 253678.70}}}},
    };
    return data;
}

}  // namespace

int main() {
    using namespace gfr;

    const bool fast = std::getenv("GFR_TABLE5_FAST") != nullptr;
    std::puts("=== TABLE V: comparison of GF(2^m) multipliers ===");
    std::puts("measured = this library's model flow; paper = Imana DATE 2018, Artix-7\n");

    int fields_done = 0;
    int measured_wins_for_this_work = 0;
    int paper_wins_for_this_work = 0;

    for (const auto& spec : field::table5_fields()) {
        if (fast && fields_done >= 2) {
            break;
        }
        ++fields_done;
        const field::Field fld = spec.make();
        const auto& paper_rows = paper_table5().at(spec.label());

        report::TextTable t{{"method", "LUTs", "Slices", "ns", "AxT", "paper LUTs",
                             "paper Slices", "paper ns", "paper AxT"}};
        std::string best_method;
        double best_axt = 1e100;
        std::string paper_best_method;
        double paper_best_axt = 1e100;

        for (const auto& info : mult::all_methods()) {
            if (!info.in_table5) {
                continue;
            }
            const auto nl = mult::build_multiplier(info.method, fld);
            fpga::FlowOptions opts;
            opts.synthesis_freedom = info.synthesis_freedom;
            const auto r = fpga::run_flow(nl, opts);
            const auto& p = paper_rows.at(std::string{info.display});
            t.add_row({std::string{info.display}, std::to_string(r.luts),
                       std::to_string(r.slices), report::fmt(r.delay_ns, 2),
                       report::fmt(r.area_time, 2), std::to_string(p.luts),
                       std::to_string(p.slices), report::fmt(p.ns, 2),
                       report::fmt(p.axt, 2)});
            if (r.area_time < best_axt) {
                best_axt = r.area_time;
                best_method = std::string{info.display};
            }
            if (p.axt < paper_best_axt) {
                paper_best_axt = p.axt;
                paper_best_method = std::string{info.display};
            }
        }
        std::printf("--- field %s ---\n%s", spec.label().c_str(), t.render().c_str());
        std::printf("best AxT: measured -> %s ; paper -> %s\n\n", best_method.c_str(),
                    paper_best_method.c_str());
        if (best_method == "This work") {
            ++measured_wins_for_this_work;
        }
        if (paper_best_method == "This work") {
            ++paper_wins_for_this_work;
        }
    }

    std::printf(
        "SUMMARY: 'This work' wins AxT in %d/%d measured fields "
        "(paper: %d/%d — all but (113,34) and (163,68), where [3] wins).\n",
        measured_wins_for_this_work, fields_done, paper_wins_for_this_work, fields_done);
    return 0;
}
