// Reed-Solomon codec throughput behind BENCH_8.json — single core, the
// storage-workload face of the bulk region tier.
//
// Two codes, one per dense layout:
//   - RS(14,10) over GF(2^8)  (byte layout, 1 MiB shards): the byte-kernel
//     ladder's headline, dispatched kernel vs forced scalar;
//   - RS(14,10) over GF(2^16) (u16 layout, 1 MiB shards): the GF(2^16)
//     tier added with the codec.
//
// Two numbers per code: full-stripe ENCODE GB/s (data bytes through the
// parity generator per second) and REPAIR GB/s (bytes reconstructed per
// second with the full n-k = 4 shards lost — 2 data + 2 parity, so the
// decode pays both the survivor-matrix inversion and the parity
// regeneration).  Every number is gated on bit-identity against the
// forced-scalar codec over the same stripe; any mismatch makes the whole
// bench exit nonzero, so a recorded BENCH_8.json implies the SIMD paths
// were re-proven against scalar on the recording machine.

#include "bulk/kernels.h"
#include "bulk/region_engine.h"
#include "field/field_catalog.h"
#include "field/gf2m.h"
#include "gf2/gf2_poly.h"
#include "rs/codec.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace gfr {
namespace {

using Clock = std::chrono::steady_clock;

/// Seconds per iteration of fn, repeated until >= 0.15 s total.
double time_it(const std::function<void()>& fn) {
    fn();  // warmup
    int iters = 1;
    for (;;) {
        const auto t0 = Clock::now();
        for (int i = 0; i < iters; ++i) {
            fn();
        }
        const double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (secs >= 0.15) {
            return secs / iters;
        }
        iters = (secs <= 0.0) ? iters * 8
                              : static_cast<int>(static_cast<double>(iters) *
                                                 (0.2 / secs)) +
                                    1;
    }
}

std::uint64_t g_sink = 0;  // defeats dead-code elimination

constexpr int kN = 14;
constexpr int kK = 10;

/// One timed configuration: encode + repair over a striped buffer set.
struct CodeResult {
    std::string field;
    std::string layout;
    std::string kernel;            // what the auto codec dispatched
    double encode_gb_per_sec = 0;  // data bytes through the generator
    double repair_gb_per_sec = 0;  // bytes reconstructed (4 lost shards)
    double encode_secs = 0;
    double repair_secs = 0;
    bool bit_identical = true;  // vs the forced-scalar codec
};

template <typename T>
CodeResult run_code(const field::Field& f, const char* field_label,
                    const char* layout, std::size_t shard_symbols) {
    CodeResult res;
    res.field = field_label;
    res.layout = layout;

    const rs::Codec fast{f.ops(), kN, kK};
    const rs::Codec slow{f.ops(), kN, kK, rs::GeneratorKind::Cauchy,
                         bulk::KernelKind::Scalar};
    res.kernel = sizeof(T) == 8
                     ? bulk::kernel_name(fast.engine().word_kernel_kind())
                     : bulk::kernel_name(fast.engine().byte_kernel_kind());

    // Stripe: n shards of shard_symbols, data filled deterministically.
    std::vector<std::vector<T>> shards(kN, std::vector<T>(shard_symbols, 0));
    {
        std::uint64_t x = 0x9E3779B97F4A7C15ULL;
        const std::uint64_t mask =
            (f.ops().degree() == 64)
                ? ~std::uint64_t{0}
                : (std::uint64_t{1} << f.ops().degree()) - 1;
        for (int i = 0; i < kK; ++i) {
            for (auto& v : shards[static_cast<std::size_t>(i)]) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                v = static_cast<T>(x & mask);
            }
        }
    }
    auto data_spans = [&] {
        std::vector<std::span<const T>> s;
        for (int i = 0; i < kK; ++i) {
            s.emplace_back(shards[static_cast<std::size_t>(i)]);
        }
        return s;
    };
    auto parity_spans = [&] {
        std::vector<std::span<T>> s;
        for (int i = kK; i < kN; ++i) {
            s.emplace_back(shards[static_cast<std::size_t>(i)]);
        }
        return s;
    };
    auto all_spans = [&] {
        std::vector<std::span<T>> s;
        for (auto& sh : shards) {
            s.emplace_back(sh);
        }
        return s;
    };

    const double data_bytes = static_cast<double>(kK) *
                              static_cast<double>(shard_symbols) * sizeof(T);

    // --- Bit-identity gate: scalar and dispatched codecs on one stripe ---
    fast.encode(data_spans(), parity_spans());
    const std::vector<std::vector<T>> golden = shards;
    {
        std::vector<std::vector<T>> scalar_shards = golden;
        for (int i = kK; i < kN; ++i) {
            std::fill(scalar_shards[static_cast<std::size_t>(i)].begin(),
                      scalar_shards[static_cast<std::size_t>(i)].end(), T{0});
        }
        std::vector<std::span<const T>> d;
        std::vector<std::span<T>> p;
        for (int i = 0; i < kK; ++i) {
            d.emplace_back(scalar_shards[static_cast<std::size_t>(i)]);
        }
        for (int i = kK; i < kN; ++i) {
            p.emplace_back(scalar_shards[static_cast<std::size_t>(i)]);
        }
        slow.encode(d, p);
        res.bit_identical = scalar_shards == golden;
    }

    // Worst-case repair: all n-k = 4 shards lost, split across data and
    // parity so the decode both inverts and re-encodes.
    std::vector<bool> present(kN, true);
    present[1] = present[7] = present[kK + 1] = present[kK + 3] = false;
    {
        std::vector<std::vector<T>> fast_shards = golden;
        std::vector<std::vector<T>> slow_shards = golden;
        for (auto* set : {&fast_shards, &slow_shards}) {
            for (int i = 0; i < kN; ++i) {
                if (!present[static_cast<std::size_t>(i)]) {
                    std::fill((*set)[static_cast<std::size_t>(i)].begin(),
                              (*set)[static_cast<std::size_t>(i)].end(),
                              static_cast<T>(0x5));
                }
            }
        }
        auto spans_of = [](std::vector<std::vector<T>>& set) {
            std::vector<std::span<T>> s;
            for (auto& sh : set) {
                s.emplace_back(sh);
            }
            return s;
        };
        fast.decode(spans_of(fast_shards), present);
        slow.decode(spans_of(slow_shards), present);
        res.bit_identical = res.bit_identical && fast_shards == golden &&
                            slow_shards == golden;
    }

    // --- Timed passes (dispatched codec only) ----------------------------
    res.encode_secs = time_it([&] {
        fast.encode(data_spans(), parity_spans());
        g_sink ^= shards[kN - 1][shard_symbols - 1];
    });
    res.encode_gb_per_sec = data_bytes / res.encode_secs / 1e9;

    const double repaired_bytes =
        4.0 * static_cast<double>(shard_symbols) * sizeof(T);
    res.repair_secs = time_it([&] {
        fast.decode(all_spans(), present);
        g_sink ^= shards[1][shard_symbols - 1];
    });
    res.repair_gb_per_sec = repaired_bytes / res.repair_secs / 1e9;

    // Timed decodes rewrote the erased shards; they must still equal the
    // golden stripe (a final correctness fence behind the numbers).
    res.bit_identical = res.bit_identical && shards == golden;

    std::printf(
        "RS(%d,%d) %-7s (%s, %s): encode %6.2f GB/s  repair(4 lost) %6.2f "
        "GB/s  %s\n",
        kN, kK, field_label, layout, res.kernel.c_str(), res.encode_gb_per_sec,
        res.repair_gb_per_sec,
        res.bit_identical ? "bit-identical" : "MISMATCH");
    return res;
}

}  // namespace
}  // namespace gfr

int main(int argc, char** argv) {
    using namespace gfr;
    const char* out_path = argc > 1 ? argv[1] : "BENCH_8.json";

    std::printf("== Reed-Solomon erasure codec throughput (1 thread) ==\n");

    const field::Field f8 = field::gf256_paper_field();
    const field::Field f16{gf2::Poly::from_exponents({16, 12, 3, 1, 0})};

    std::vector<CodeResult> results;
    // 1 MiB shards in both layouts: 2^20 byte symbols / 2^19 u16 symbols.
    results.push_back(
        run_code<std::uint8_t>(f8, "gf2_8", "byte", std::size_t{1} << 20));
    results.push_back(
        run_code<std::uint16_t>(f16, "gf2_16", "u16", std::size_t{1} << 19));

    std::FILE* out = std::fopen(out_path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"schema\": \"gfr-bench-v8\",\n");
    std::fprintf(out, "  \"threads\": 1,\n");
    std::fprintf(out,
                 "  \"code\": {\"n\": %d, \"k\": %d, \"generator\": "
                 "\"cauchy\"},\n",
                 kN, kK);
    std::fprintf(out, "  \"shard_bytes\": %llu,\n",
                 static_cast<unsigned long long>(std::size_t{1} << 20));
    std::fprintf(out, "  \"lost_shards\": 4,\n");
    std::fprintf(out, "  \"codes\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        std::fprintf(out,
                     "    {\"field\": \"%s\", \"layout\": \"%s\", \"kernel\": "
                     "\"%s\", \"encode_gb_per_sec\": %.3f, "
                     "\"repair_gb_per_sec\": %.3f, \"encode_secs\": %.6e, "
                     "\"repair_secs\": %.6e, \"bit_identical\": %s}%s\n",
                     r.field.c_str(), r.layout.c_str(), r.kernel.c_str(),
                     r.encode_gb_per_sec, r.repair_gb_per_sec, r.encode_secs,
                     r.repair_secs, r.bit_identical ? "true" : "false",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"sink\": %llu\n",
                 static_cast<unsigned long long>(g_sink & 1));
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);

    bool all_identical = true;
    for (const auto& r : results) {
        all_identical = all_identical && r.bit_identical;
    }
    return all_identical ? 0 : 1;
}
