// Region-kernel throughput ladder behind BENCH_6.json — single core, per-op
// wins only (the container the acceptance numbers are recorded on has one
// core; thread scaling is a non-goal here).
//
// The acceptance metric is GF(2^8) *region-encode* throughput: the
// multiply-accumulate dst[i] ^= c * src[i] that systematic Reed-Solomon
// encoding performs per generator coefficient per stripe.  The baseline is
// the frozen PR-4 path — per-constant 4-bit window tables walked one u64
// element at a time (ConstMultiplier as it stood before the bulk
// subsystem), composed into an encode exactly the way the PR-4 RS example
// composed it (dst[i] ^= cm.mul(src[i])).  Against it: every bulk kernel
// compiled into this binary that the running CPU supports, each
// differentially checked against the scalar kernel before its number is
// recorded.  The bar: dispatched kernel >= 3x baseline symbols/s at one
// thread.
//
// Also recorded: pure region scale (mul, no accumulate) for GF(2^8) and
// GF(2^64), the u64-layout ladder on GF(2^64) (VPCLMULQDQ wide kernel),
// the multi-word m=163 region path against the Poly-element loop that
// was the only option before PR 5, and the ABFT checked-encode overhead
// (checksum lanes through the checked region ops, bar <= 15% at GF(2^8)).

#include "bulk/kernels.h"
#include "bulk/region_engine.h"
#include "field/field_catalog.h"
#include "field/field_ops.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace gfr {
namespace {

using Clock = std::chrono::steady_clock;

/// Seconds per iteration of fn, repeated until >= 0.15 s total.
double time_it(const std::function<void()>& fn) {
    fn();  // warmup
    int iters = 1;
    for (;;) {
        const auto t0 = Clock::now();
        for (int i = 0; i < iters; ++i) {
            fn();
        }
        const double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (secs >= 0.15) {
            return secs / iters;
        }
        iters = (secs <= 0.0) ? iters * 8
                              : static_cast<int>(static_cast<double>(iters) *
                                                 (0.2 / secs)) +
                                    1;
    }
}

/// The PR-4 ConstMultiplier, frozen verbatim (window build and element
/// walk byte-for-byte as before the bulk dispatch), so BENCH_5 speedups
/// stay anchored to the same baseline over time.
class FrozenConstMultiplier {
public:
    FrozenConstMultiplier(const field::FieldOps& ops, std::uint64_t c) {
        c_ = ops.reduce(0, c);
        windows_ = (ops.degree() + 3) / 4;
        table_.assign(static_cast<std::size_t>(windows_) * 16, 0);
        for (int w = 0; w < windows_; ++w) {
            for (std::uint64_t v = 1; v < 16; ++v) {
                table_[static_cast<std::size_t>(w) * 16 + v] =
                    ops.mul(c_, ops.reduce(0, v << (4 * w)));
            }
        }
    }

    [[nodiscard]] std::uint64_t mul(std::uint64_t a) const noexcept {
        std::uint64_t acc = 0;
        const std::uint64_t* t = table_.data();
        for (int w = 0; w < windows_; ++w, t += 16) {
            acc ^= t[(a >> (4 * w)) & 0xF];
        }
        return acc;
    }

    void mul_region(std::span<const std::uint64_t> in,
                    std::span<std::uint64_t> out) const {
        for (std::size_t i = 0; i < in.size(); ++i) {
            out[i] = mul(in[i]);
        }
    }

private:
    std::uint64_t c_ = 0;
    int windows_ = 0;
    std::vector<std::uint64_t> table_;
};

constexpr std::size_t kSymbols = 1 << 16;  // 64 Ki symbols per region pass

struct PathResult {
    std::string kernel;
    std::string layout;
    double symbols_per_sec = 0;
    double gb_per_sec = 0;
    double speedup = 0;
    bool bit_identical = true;
};

std::uint64_t g_sink = 0;  // defeats dead-code elimination

void emit_paths(std::FILE* out, const std::vector<PathResult>& paths) {
    for (std::size_t i = 0; i < paths.size(); ++i) {
        std::fprintf(out,
                     "      {\"kernel\": \"%s\", \"layout\": \"%s\", "
                     "\"symbols_per_sec\": %.0f, \"gb_per_sec\": %.3f, "
                     "\"speedup_vs_baseline\": %.2f, \"bit_identical\": %s}%s\n",
                     paths[i].kernel.c_str(), paths[i].layout.c_str(),
                     paths[i].symbols_per_sec, paths[i].gb_per_sec,
                     paths[i].speedup, paths[i].bit_identical ? "true" : "false",
                     i + 1 < paths.size() ? "," : "");
    }
}

/// Kernel kinds compiled into this binary and runnable on this CPU.
std::vector<bulk::KernelKind> runnable(const std::vector<bulk::KernelKind>& ks) {
    std::vector<bulk::KernelKind> out;
    const bulk::CpuFeatures cpu = bulk::detect_cpu();
    for (const auto k : ks) {
        if (bulk::kernel_supported(k, cpu)) {
            out.push_back(k);
        }
    }
    return out;
}

}  // namespace
}  // namespace gfr

int main(int argc, char** argv) {
    using namespace gfr;
    const char* out_path = argc > 1 ? argv[1] : "BENCH_6.json";

    std::printf("== bulk region kernel throughput (1 thread) ==\n");

    // ---- GF(2^8): the acceptance field --------------------------------------
    const field::Field f8 = field::gf256_paper_field();
    const std::uint64_t c8 = 0xC3;

    std::vector<std::uint64_t> src64(kSymbols);
    std::vector<std::uint64_t> dst64(kSymbols, 0);
    for (std::size_t i = 0; i < kSymbols; ++i) {
        src64[i] = (i * 73 + 11) & 0xFF;
    }
    std::vector<std::uint8_t> src8(kSymbols);
    std::vector<std::uint8_t> dst8(kSymbols, 0);
    for (std::size_t i = 0; i < kSymbols; ++i) {
        src8[i] = static_cast<std::uint8_t>(src64[i]);
    }

    // Baseline: frozen PR-4 window walk composed as the PR-4 RS example
    // composed its encode inner loop (element-wise accumulate).
    const FrozenConstMultiplier frozen8{f8.ops(), c8};
    const double base8_secs = time_it([&] {
        for (std::size_t i = 0; i < kSymbols; ++i) {
            dst64[i] ^= frozen8.mul(src64[i]);
        }
        g_sink ^= dst64[kSymbols - 1];
    });
    const double base8_sps = static_cast<double>(kSymbols) / base8_secs;
    std::printf("GF(2^8) encode baseline (PR-4 window walk, u64): %.0fM sym/s\n",
                base8_sps / 1e6);

    // Scalar-kernel reference parity block for the bit-identity checks.
    const bulk::RegionEngine eng8_scalar{f8.ops(), bulk::KernelKind::Scalar};
    const auto prep8_scalar = eng8_scalar.prepare(c8);
    std::vector<std::uint8_t> ref8(kSymbols, 0);
    eng8_scalar.addmul_region(prep8_scalar, src8, ref8);

    std::vector<PathResult> enc8_paths;
    double dispatched8_speedup = 0;
    std::string dispatched8_kernel;
    for (const auto kind : runnable(bulk::compiled_byte_kernels())) {
        const bulk::RegionEngine eng{f8.ops(), kind};
        const auto prep = eng.prepare(c8);
        std::vector<std::uint8_t> acc(kSymbols, 0);
        eng.addmul_region(prep, src8, acc);
        const bool identical = acc == ref8;
        const double secs = time_it([&] {
            eng.addmul_region(prep, src8, acc);
            g_sink ^= acc[kSymbols - 1];
        });
        PathResult r;
        r.kernel = bulk::kernel_name(kind);
        r.layout = "byte";
        r.symbols_per_sec = static_cast<double>(kSymbols) / secs;
        r.gb_per_sec = r.symbols_per_sec / 1e9;  // 1 byte per symbol
        r.speedup = r.symbols_per_sec / base8_sps;
        r.bit_identical = identical;
        enc8_paths.push_back(r);
        std::printf("GF(2^8) encode %-7s (byte): %8.0fM sym/s  %6.2f GB/s  %5.1fx  %s\n",
                    r.kernel.c_str(), r.symbols_per_sec / 1e6, r.gb_per_sec,
                    r.speedup, identical ? "bit-identical" : "MISMATCH");
    }
    {
        // What the auto dispatch actually picks (the acceptance number).
        const bulk::RegionEngine eng{f8.ops()};
        dispatched8_kernel = bulk::kernel_name(eng.byte_kernel_kind());
        for (const auto& r : enc8_paths) {
            if (r.kernel == dispatched8_kernel) {
                dispatched8_speedup = r.speedup;
            }
        }
    }
    const bool acceptance_met = dispatched8_speedup >= 3.0;
    std::printf("dispatched GF(2^8) kernel: %s -> %.1fx vs PR-4 baseline (bar 3x): %s\n",
                dispatched8_kernel.c_str(), dispatched8_speedup,
                acceptance_met ? "MET" : "NOT MET");

    // Pure region scale (mul, no accumulate), frozen mul_region baseline.
    std::vector<PathResult> scale8_paths;
    const double base8_scale_secs = time_it([&] {
        frozen8.mul_region(src64, dst64);
        g_sink ^= dst64[0];
    });
    const double base8_scale_sps = static_cast<double>(kSymbols) / base8_scale_secs;
    eng8_scalar.mul_region(prep8_scalar, src8, ref8);
    for (const auto kind : runnable(bulk::compiled_byte_kernels())) {
        const bulk::RegionEngine eng{f8.ops(), kind};
        const auto prep = eng.prepare(c8);
        std::vector<std::uint8_t> out(kSymbols, 0);
        eng.mul_region(prep, src8, out);
        const bool identical = out == ref8;
        const double secs = time_it([&] {
            eng.mul_region(prep, src8, out);
            g_sink ^= out[kSymbols - 1];
        });
        PathResult r;
        r.kernel = bulk::kernel_name(kind);
        r.layout = "byte";
        r.symbols_per_sec = static_cast<double>(kSymbols) / secs;
        r.gb_per_sec = r.symbols_per_sec / 1e9;
        r.speedup = r.symbols_per_sec / base8_scale_sps;
        r.bit_identical = identical;
        scale8_paths.push_back(r);
    }

    // ---- GF(2^8) ABFT checked-encode overhead -------------------------------
    // One systematic-RS feed step over a kSymbols-wide stripe: feedback XOR
    // plus 32 constant multiply-accumulates, measured plain and through the
    // checked region ops that maintain one checksum symbol per stripe.  The
    // checked path adds the O(n) ingest fold plus one O(1) scalar multiply
    // per region op; the bar is <= 15% overhead on the dispatched kernel.
    const bulk::RegionEngine eng8_auto{f8.ops()};
    constexpr int kFeedTaps = 32;
    std::vector<bulk::RegionEngine::Prepared> feed_prep;
    feed_prep.reserve(kFeedTaps);
    for (int j = 0; j < kFeedTaps; ++j) {
        feed_prep.push_back(
            eng8_auto.prepare(static_cast<std::uint64_t>((j * 7 + 3) | 1) & 0xFF));
    }
    const auto one8 = eng8_auto.prepare(std::uint64_t{1});
    // Separate register banks per path: a plain pass over the checked bank
    // would silently stale its checksum lane.
    std::vector<std::vector<std::uint8_t>> plain_reg(
        kFeedTaps, std::vector<std::uint8_t>(kSymbols, 0));
    std::vector<std::vector<std::uint8_t>> checked_reg(
        kFeedTaps, std::vector<std::uint8_t>(kSymbols, 0));
    std::vector<std::uint64_t> feed_sum(kFeedTaps, 0);
    std::vector<std::uint8_t> feed_fb(kSymbols);
    const auto feed_plain = [&] {
        std::copy(src8.begin(), src8.end(), feed_fb.begin());
        eng8_auto.addmul_region(one8, plain_reg[kFeedTaps - 1], feed_fb);
        eng8_auto.mul_region(feed_prep[0], feed_fb, plain_reg[0]);
        for (int j = 1; j < kFeedTaps; ++j) {
            eng8_auto.addmul_region(feed_prep[static_cast<std::size_t>(j)],
                                    feed_fb,
                                    plain_reg[static_cast<std::size_t>(j)]);
        }
        g_sink ^= plain_reg[0][kSymbols - 1];
    };
    const auto feed_checked = [&] {
        std::copy(src8.begin(), src8.end(), feed_fb.begin());
        std::uint64_t fb_sum =
            eng8_auto.region_checksum(std::span<const std::uint8_t>{src8});
        eng8_auto.addmul_region_checked(one8, checked_reg[kFeedTaps - 1],
                                        feed_sum[kFeedTaps - 1], feed_fb,
                                        fb_sum);
        eng8_auto.mul_region_checked(feed_prep[0], feed_fb, fb_sum,
                                     checked_reg[0], feed_sum[0]);
        for (int j = 1; j < kFeedTaps; ++j) {
            eng8_auto.addmul_region_checked(
                feed_prep[static_cast<std::size_t>(j)], feed_fb, fb_sum,
                checked_reg[static_cast<std::size_t>(j)],
                feed_sum[static_cast<std::size_t>(j)]);
        }
        g_sink ^= checked_reg[0][kSymbols - 1];
    };
    // Best of three timing passes each way; a single pass on a shared box
    // swings more than the checksum lane costs.
    double plain_feed_secs = 1e30;
    double checked_feed_secs = 1e30;
    for (int r = 0; r < 3; ++r) {
        plain_feed_secs = std::min(plain_feed_secs, time_it(feed_plain));
        checked_feed_secs = std::min(checked_feed_secs, time_it(feed_checked));
    }
    // The checksum lane must still reconcile after every timed iteration;
    // then, from reset banks, one plain and one checked feed must agree
    // bit for bit.
    bool checked_verify_ok = true;
    for (int j = 0; j < kFeedTaps; ++j) {
        checked_verify_ok =
            checked_verify_ok &&
            eng8_auto
                .verify_region(std::span<const std::uint8_t>{
                                   checked_reg[static_cast<std::size_t>(j)]},
                               feed_sum[static_cast<std::size_t>(j)])
                .ok();
    }
    for (auto& reg : plain_reg) {
        std::fill(reg.begin(), reg.end(), 0);
    }
    for (auto& reg : checked_reg) {
        std::fill(reg.begin(), reg.end(), 0);
    }
    std::fill(feed_sum.begin(), feed_sum.end(), 0);
    feed_plain();
    feed_checked();
    const bool checked_identical = plain_reg == checked_reg;
    const double checked_overhead_pct =
        (checked_feed_secs / plain_feed_secs - 1.0) * 100.0;
    const bool checked_bar_met = checked_overhead_pct <= 15.0;
    std::printf(
        "GF(2^8) checked encode: plain feed %.0f us, checked feed %.0f us "
        "(%+.1f%% overhead, bar 15%%: %s, %s, verify %s)\n",
        plain_feed_secs * 1e6, checked_feed_secs * 1e6, checked_overhead_pct,
        checked_bar_met ? "MET" : "NOT MET",
        checked_identical ? "bit-identical" : "MISMATCH",
        checked_verify_ok ? "ok" : "FAILED");

    // ---- GF(2^64): the u64 carry-less ladder --------------------------------
    const field::Field f64 = field::Field::type2(64, 23);
    const std::uint64_t c64 = 0x0123456789ABCDEFULL;
    std::vector<std::uint64_t> src64w(kSymbols);
    {
        std::uint64_t x = 0x9E3779B97F4A7C15ULL;
        for (auto& w : src64w) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            w = x;
        }
    }
    const FrozenConstMultiplier frozen64{f64.ops(), c64};
    std::vector<std::uint64_t> acc64(kSymbols, 0);
    const double base64_secs = time_it([&] {
        for (std::size_t i = 0; i < kSymbols; ++i) {
            acc64[i] ^= frozen64.mul(src64w[i]);
        }
        g_sink ^= acc64[kSymbols - 1];
    });
    const double base64_sps = static_cast<double>(kSymbols) / base64_secs;
    std::printf("GF(2^64) encode baseline (PR-4 window walk): %.0fM sym/s\n",
                base64_sps / 1e6);

    const bulk::RegionEngine eng64_scalar{f64.ops(), bulk::KernelKind::Scalar};
    const auto prep64_scalar = eng64_scalar.prepare(c64);
    std::vector<std::uint64_t> ref64(kSymbols, 0);
    eng64_scalar.addmul_region(prep64_scalar, src64w, ref64);

    std::vector<PathResult> enc64_paths;
    for (const auto kind : runnable(bulk::compiled_word_kernels())) {
        const bulk::RegionEngine eng{f64.ops(), kind};
        const auto prep = eng.prepare(c64);
        std::vector<std::uint64_t> acc(kSymbols, 0);
        eng.addmul_region(prep, src64w, acc);
        const bool identical = acc == ref64;
        const double secs = time_it([&] {
            eng.addmul_region(prep, src64w, acc);
            g_sink ^= acc[kSymbols - 1];
        });
        PathResult r;
        r.kernel = bulk::kernel_name(kind);
        r.layout = "u64";
        r.symbols_per_sec = static_cast<double>(kSymbols) / secs;
        r.gb_per_sec = r.symbols_per_sec * 8 / 1e9;
        r.speedup = r.symbols_per_sec / base64_sps;
        r.bit_identical = identical;
        enc64_paths.push_back(r);
        std::printf("GF(2^64) encode %-7s (u64): %8.0fM sym/s  %6.2f GB/s  %5.1fx  %s\n",
                    r.kernel.c_str(), r.symbols_per_sec / 1e6, r.gb_per_sec,
                    r.speedup, identical ? "bit-identical" : "MISMATCH");
    }

    // ---- m=163 multi-word region scale --------------------------------------
    const field::Field f163 = field::Field::type2(163, 66);
    const std::size_t mw = f163.ops().elem_words();
    const std::size_t n163 = 8192;
    std::vector<std::uint64_t> src163(n163 * mw);
    {
        std::uint64_t x = 0xD1B54A32D192ED03ULL;
        for (std::size_t i = 0; i < n163; ++i) {
            for (std::size_t k = 0; k < mw; ++k) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                src163[i * mw + k] = x;
            }
            src163[i * mw + mw - 1] &= (std::uint64_t{1} << (163 % 64)) - 1;
        }
    }
    const gf2::Poly c163 = gf2::Poly::from_exponents({160, 97, 31, 2, 0});
    field::FieldOps::Scratch scratch;

    // Baseline: the pre-PR-5 option — one Poly-element engine multiply per
    // symbol (FieldOps::mul with explicit scratch, Poly bookkeeping per op).
    std::vector<gf2::Poly> elems163(n163);
    for (std::size_t i = 0; i < n163; ++i) {
        elems163[i] = gf2::Poly::from_words(
            {src163.data() + i * mw, mw});
    }
    gf2::Poly out_elem;
    const double base163_secs = time_it([&] {
        for (std::size_t i = 0; i < n163; ++i) {
            f163.ops().mul(elems163[i], c163, out_elem, scratch);
        }
        g_sink ^= out_elem.words().empty() ? 0 : out_elem.words()[0];
    });
    const double base163_sps = static_cast<double>(n163) / base163_secs;

    const bulk::RegionEngine eng163{f163.ops()};
    const auto prep163 = eng163.prepare(c163);
    std::vector<std::uint64_t> out163(n163 * mw, 0);
    const double mw163_secs = time_it([&] {
        eng163.mul_region_mw(prep163, src163, out163, scratch);
        g_sink ^= out163[0];
    });
    const double mw163_sps = static_cast<double>(n163) / mw163_secs;
    // Verify against the Poly loop.
    bool mw_identical = true;
    eng163.mul_region_mw(prep163, src163, out163, scratch);
    for (std::size_t i = 0; i < n163 && mw_identical; ++i) {
        f163.ops().mul(elems163[i], c163, out_elem, scratch);
        const auto w = out_elem.words();
        for (std::size_t k = 0; k < mw; ++k) {
            const std::uint64_t want = k < w.size() ? w[k] : 0;
            if (out163[i * mw + k] != want) {
                mw_identical = false;
            }
        }
    }
    const double mw163_speedup = mw163_sps / base163_sps;
    std::printf("GF(2^163) region scale: poly loop %.2fM sym/s -> region_mw %.2fM sym/s (%.2fx, %s)\n",
                base163_sps / 1e6, mw163_sps / 1e6, mw163_speedup,
                mw_identical ? "bit-identical" : "MISMATCH");

    // ---- JSON ---------------------------------------------------------------
    std::FILE* out = std::fopen(out_path, "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"schema\": \"gfr-bench-v6\",\n");
    std::fprintf(out, "  \"threads\": 1,\n");
    std::fprintf(out, "  \"region_symbols\": %zu,\n", kSymbols);
    std::fprintf(out, "  \"gf256_region_encode\": {\n");
    // gb_per_sec is symbol payload (1 byte/symbol) throughout this block,
    // so baseline and kernel rows are directly comparable.
    std::fprintf(out,
                 "    \"baseline\": {\"path\": \"pr4_constmul_window_walk_u64\", "
                 "\"symbols_per_sec\": %.0f, \"gb_per_sec\": %.3f},\n",
                 base8_sps, base8_sps / 1e9);
    std::fprintf(out, "    \"kernels\": [\n");
    emit_paths(out, enc8_paths);
    std::fprintf(out, "    ],\n");
    std::fprintf(out, "    \"dispatched_kernel\": \"%s\",\n",
                 dispatched8_kernel.c_str());
    std::fprintf(out, "    \"dispatched_speedup_vs_baseline\": %.2f,\n",
                 dispatched8_speedup);
    std::fprintf(out, "    \"acceptance_bar\": 3.0,\n");
    std::fprintf(out, "    \"acceptance_met\": %s\n",
                 acceptance_met ? "true" : "false");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"gf256_region_scale\": {\n");
    std::fprintf(out,
                 "    \"baseline\": {\"path\": \"pr4_constmul_mul_region_u64\", "
                 "\"symbols_per_sec\": %.0f},\n",
                 base8_scale_sps);
    std::fprintf(out, "    \"kernels\": [\n");
    emit_paths(out, scale8_paths);
    std::fprintf(out, "    ]\n");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"gf256_checked_encode\": {\n");
    std::fprintf(out, "    \"feed_taps\": %d,\n", kFeedTaps);
    std::fprintf(out, "    \"kernel\": \"%s\",\n",
                 bulk::kernel_name(eng8_auto.byte_kernel_kind()));
    std::fprintf(out, "    \"plain_feed_secs\": %.6e,\n", plain_feed_secs);
    std::fprintf(out, "    \"checked_feed_secs\": %.6e,\n", checked_feed_secs);
    std::fprintf(out, "    \"overhead_pct\": %.2f,\n", checked_overhead_pct);
    std::fprintf(out, "    \"overhead_bar_pct\": 15.0,\n");
    std::fprintf(out, "    \"overhead_bar_met\": %s,\n",
                 checked_bar_met ? "true" : "false");
    std::fprintf(out, "    \"bit_identical\": %s,\n",
                 checked_identical ? "true" : "false");
    std::fprintf(out, "    \"verify_ok\": %s\n",
                 checked_verify_ok ? "true" : "false");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"gf2_64_region_encode\": {\n");
    std::fprintf(out,
                 "    \"baseline\": {\"path\": \"pr4_constmul_window_walk_u64\", "
                 "\"symbols_per_sec\": %.0f, \"gb_per_sec\": %.3f},\n",
                 base64_sps, base64_sps * 8 / 1e9);
    std::fprintf(out, "    \"kernels\": [\n");
    emit_paths(out, enc64_paths);
    std::fprintf(out, "    ]\n");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"m163_region_scale\": {\n");
    std::fprintf(out, "    \"symbols\": %zu,\n", n163);
    std::fprintf(out,
                 "    \"baseline_poly_loop_symbols_per_sec\": %.0f,\n"
                 "    \"region_mw_symbols_per_sec\": %.0f,\n"
                 "    \"speedup\": %.2f,\n"
                 "    \"bit_identical\": %s\n",
                 base163_sps, mw163_sps, mw163_speedup,
                 mw_identical ? "true" : "false");
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"sink\": %llu\n",
                 static_cast<unsigned long long>(g_sink & 1));
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);

    bool all_identical = mw_identical && checked_identical && checked_verify_ok;
    for (const auto* paths : {&enc8_paths, &scale8_paths, &enc64_paths}) {
        for (const auto& r : *paths) {
            all_identical = all_identical && r.bit_identical;
        }
    }
    return all_identical ? 0 : 1;
}
