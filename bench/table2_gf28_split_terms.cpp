// Reproduces TABLE II of the paper: the split terms S^j_i and T^j_i for
// GF(2^8), each a complete binary tree of 2^j products, plus the Section II
// decompositions (S6 = S^2_6 + S^1_6, ...).  Diffed against the verbatim
// transcription.

#include "multipliers/golden_tables.h"
#include "st/st_split.h"

#include <cstdio>
#include <vector>

int main() {
    using namespace gfr;

    std::puts("=== TABLE II: terms S^j_i and T^j_i for GF(2^8) ===\n");

    std::vector<std::string> generated;
    for (int i = 1; i <= 8; ++i) {
        for (const auto& sp : st::split_function(st::make_s(8, i))) {
            generated.push_back(st::split_term_definition_string(sp));
        }
    }
    for (int i = 0; i <= 6; ++i) {
        for (const auto& sp : st::split_function(st::make_t(8, i))) {
            generated.push_back(st::split_term_definition_string(sp));
        }
    }

    const auto& expected = mult::table2_expected_lines();
    bool all_match = generated.size() == expected.size();
    for (std::size_t i = 0; i < generated.size(); ++i) {
        const bool match = i < expected.size() && generated[i] == expected[i];
        all_match = all_match && match;
        std::printf("  %-42s %s\n", generated[i].c_str(),
                    match ? "[matches paper]" : "[MISMATCH]");
    }

    std::puts("\n=== Section II: split decompositions ===\n");
    const auto& split_expected = mult::section2_expected_split_lines();
    std::vector<std::string> split_generated;
    for (int i = 1; i <= 8; ++i) {
        split_generated.push_back(st::split_decomposition_string(st::make_s(8, i)));
    }
    for (int i = 0; i <= 6; ++i) {
        split_generated.push_back(st::split_decomposition_string(st::make_t(8, i)));
    }
    for (std::size_t i = 0; i < split_generated.size(); ++i) {
        const bool match =
            i < split_expected.size() && split_generated[i] == split_expected[i];
        all_match = all_match && match;
        std::printf("  %-28s %s\n", split_generated[i].c_str(),
                    match ? "[matches paper]" : "[MISMATCH]");
    }

    std::printf("\nTable II reproduction: %s\n",
                all_match ? "EXACT MATCH with the paper" : "MISMATCH (see above)");
    return all_match ? 0 : 1;
}
