// Optimization-pipeline bench behind BENCH_7.json: every Table V family x
// field is pushed through the campaign-gated pipeline (opt::optimize) and
// the gate-count / depth / compiled-tape deltas are recorded.  The process
// exits nonzero if ANY pass of ANY run fails its post-pass equivalence
// campaign — this binary doubles as the flow-level verification gate in CI.
//
// The acceptance bar this records: >= 15% gate-count reduction on the flat
// product-family netlists (Date2018Flat) at the Table V fields, with every
// pass verified and the exec::Program instruction stream shrinking.
//
// GFR_OPT_FAST=1 (or the existing GFR_TABLE5_FAST=1) restricts the sweep
// to the two smallest fields so the CI matrix stays cheap; the full run
// covers all nine Table V fields.

#include "exec/program.h"
#include "field/field_catalog.h"
#include "multipliers/generator.h"
#include "multipliers/verify.h"
#include "opt/opt.h"
#include "report/table.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace gfr {
namespace {

struct Row {
    std::string family;
    std::string field;
    std::int64_t gates_before = 0;
    std::int64_t gates_after = 0;
    std::int64_t xor_depth_before = 0;
    std::int64_t xor_depth_after = 0;
    std::size_t tape_insns_before = 0;
    std::size_t tape_insns_after = 0;
    std::size_t tape_args_before = 0;
    std::size_t tape_args_after = 0;
    bool verified = false;
    std::string error;

    [[nodiscard]] double reduction_pct() const {
        if (gates_before == 0) {
            return 0.0;
        }
        return 100.0 *
               (1.0 - static_cast<double>(gates_after) /
                          static_cast<double>(gates_before));
    }
};

}  // namespace
}  // namespace gfr

int main(int argc, char** argv) {
    using namespace gfr;
    const std::string json_path = (argc > 1) ? argv[1] : "BENCH_7.json";
    const bool fast = (std::getenv("GFR_OPT_FAST") != nullptr) ||
                      (std::getenv("GFR_TABLE5_FAST") != nullptr);

    std::vector<field::FieldSpec> fields = field::table5_fields();
    if (fast && fields.size() > 2) {
        fields.resize(2);  // (8,2) and (64,23)
    }

    std::vector<Row> rows;
    bool failed = false;
    for (const auto& spec : fields) {
        const field::Field f = spec.make();
        const auto run_cell = [&](const std::string& family,
                                  const netlist::Netlist& nl) {
            Row row;
            row.family = family;
            row.field = spec.label();
            const auto before = nl.stats();
            row.gates_before = before.gates();
            row.xor_depth_before = before.xor_depth;
            const auto tape_before = exec::Program::compile(nl).stats();
            row.tape_insns_before = tape_before.instructions;
            row.tape_args_before = tape_before.total_args;
            try {
                const opt::OptResult r = opt::optimize(nl);
                const auto after = r.netlist.stats();
                row.gates_after = after.gates();
                row.xor_depth_after = after.xor_depth;
                exec::Program::CompileOptions hoist;
                hoist.hoist_common_pairs = true;
                const auto tape_after =
                    exec::Program::compile(r.netlist, hoist).stats();
                row.tape_insns_after = tape_after.instructions;
                row.tape_args_after = tape_after.total_args;
                row.verified = true;
                for (const auto& pass : r.passes) {
                    row.verified = row.verified && pass.verified;
                }
            } catch (const opt::VerificationError& e) {
                row.error = e.what();
                failed = true;
            }
            if (!row.verified && row.error.empty()) {
                row.error = "pass ran without verification";
                failed = true;
            }
            rows.push_back(std::move(row));
            std::fprintf(stderr, "%-14s %-10s %6lld -> %6lld gates (%s)%s\n",
                         rows.back().family.c_str(), rows.back().field.c_str(),
                         static_cast<long long>(rows.back().gates_before),
                         static_cast<long long>(rows.back().gates_after),
                         rows.back().verified ? "verified" : "FAILED",
                         rows.back().error.empty() ? "" : " !");
        };
        for (const auto& info : mult::all_methods()) {
            if (!info.in_table5) {
                continue;
            }
            run_cell(std::string{info.key},
                     mult::build_multiplier(info.method, f));
        }
        // The flat family as the paper actually hands it to synthesis: the
        // literal Table IV sums, one gate per operator, sharing recovery
        // left entirely to the pipeline.  This is the row the >=15%
        // acceptance bar reads.
        run_cell("date2018-raw",
                 mult::build_multiplier(mult::Method::Date2018Flat, f,
                                        mult::Elaboration::Literal));
    }

    report::TextTable table({"Family", "Field", "Gates", "Opt", "Delta",
                             "XorD", "OptD", "Insns", "OptI", "Args", "OptA"});
    std::string prev_field;
    for (const auto& row : rows) {
        if (!prev_field.empty() && row.field != prev_field) {
            table.add_rule();
        }
        prev_field = row.field;
        table.add_row({row.family, row.field, std::to_string(row.gates_before),
                       std::to_string(row.gates_after),
                       report::fmt_delta_pct(
                           static_cast<double>(row.gates_before),
                           static_cast<double>(row.gates_after)),
                       std::to_string(row.xor_depth_before),
                       std::to_string(row.xor_depth_after),
                       std::to_string(row.tape_insns_before),
                       std::to_string(row.tape_insns_after),
                       std::to_string(row.tape_args_before),
                       std::to_string(row.tape_args_after)});
    }
    std::printf("%s", table.render().c_str());

    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"bench\": \"netlist_opt\",\n  \"fast\": %s,\n",
                 fast ? "true" : "false");
    std::fprintf(json, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        std::fprintf(
            json,
            "    {\"family\": \"%s\", \"field\": \"%s\", "
            "\"gates_before\": %lld, \"gates_after\": %lld, "
            "\"reduction_pct\": %.2f, "
            "\"xor_depth_before\": %lld, \"xor_depth_after\": %lld, "
            "\"tape_insns_before\": %zu, \"tape_insns_after\": %zu, "
            "\"tape_args_before\": %zu, \"tape_args_after\": %zu, "
            "\"verified\": %s}%s\n",
            row.family.c_str(), row.field.c_str(),
            static_cast<long long>(row.gates_before),
            static_cast<long long>(row.gates_after), row.reduction_pct(),
            static_cast<long long>(row.xor_depth_before),
            static_cast<long long>(row.xor_depth_after), row.tape_insns_before,
            row.tape_insns_after, row.tape_args_before, row.tape_args_after,
            row.verified ? "true" : "false",
            (i + 1 < rows.size()) ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);

    if (failed) {
        std::fprintf(stderr, "netlist_opt: POST-PASS VERIFICATION FAILED\n");
        for (const auto& row : rows) {
            if (!row.error.empty()) {
                std::fprintf(stderr, "  %s %s: %s\n", row.family.c_str(),
                             row.field.c_str(), row.error.c_str());
            }
        }
        return 1;
    }
    return 0;
}
