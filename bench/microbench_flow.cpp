// google-benchmark microbenchmarks of the EDA pipeline itself: netlist
// generation, synthesis passes, LUT mapping and word-parallel simulation.

#include "field/field_catalog.h"
#include "fpga/flow.h"
#include "multipliers/generator.h"
#include "netlist/passes.h"
#include "netlist/simulate.h"

#include <benchmark/benchmark.h>

#include <random>

namespace {

using namespace gfr;

void BM_BuildMultiplier(benchmark::State& state) {
    const field::Field fld = field::Field::type2(64, 23);
    const auto method = static_cast<mult::Method>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(mult::build_multiplier(method, fld));
    }
    state.SetLabel(std::string{mult::method_info(method).key} + " m=64");
}
BENCHMARK(BM_BuildMultiplier)
    ->Arg(static_cast<int>(mult::Method::PaarMastrovito))
    ->Arg(static_cast<int>(mult::Method::ReyhaniHasan))
    ->Arg(static_cast<int>(mult::Method::Imana2016Paren))
    ->Arg(static_cast<int>(mult::Method::Date2018Flat));

void BM_SynthesizeFlat(benchmark::State& state) {
    const field::Field fld = field::Field::type2(static_cast<int>(state.range(0)),
                                                 static_cast<int>(state.range(1)));
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    for (auto _ : state) {
        benchmark::DoNotOptimize(netlist::synthesize(nl, netlist::SynthOptions{}));
    }
    state.SetLabel("m=" + std::to_string(fld.degree()));
}
BENCHMARK(BM_SynthesizeFlat)->Args({8, 2})->Args({64, 23});

void BM_MapToLuts(benchmark::State& state) {
    const field::Field fld = field::Field::type2(static_cast<int>(state.range(0)),
                                                 static_cast<int>(state.range(1)));
    const auto nl =
        netlist::dce(mult::build_multiplier(mult::Method::Date2018Flat, fld));
    for (auto _ : state) {
        benchmark::DoNotOptimize(fpga::map_to_luts(nl));
    }
    state.SetLabel("m=" + std::to_string(fld.degree()));
}
BENCHMARK(BM_MapToLuts)->Args({8, 2})->Args({64, 23});

void BM_SimulateNetlist64Lanes(benchmark::State& state) {
    const field::Field fld = field::Field::type2(static_cast<int>(state.range(0)),
                                                 static_cast<int>(state.range(1)));
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    netlist::Simulator sim{nl};
    std::mt19937_64 rng{7};
    std::vector<std::uint64_t> in(nl.inputs().size());
    for (auto& w : in) {
        w = rng();
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.run(in));
    }
    // 64 field multiplications per sweep.
    state.SetItemsProcessed(state.iterations() * 64);
    state.SetLabel("m=" + std::to_string(fld.degree()));
}
BENCHMARK(BM_SimulateNetlist64Lanes)->Args({8, 2})->Args({64, 23})->Args({163, 66});

void BM_FullFlow(benchmark::State& state) {
    const field::Field fld = field::Field::type2(static_cast<int>(state.range(0)),
                                                 static_cast<int>(state.range(1)));
    const auto nl = mult::build_multiplier(mult::Method::Date2018Flat, fld);
    fpga::FlowOptions opts;
    opts.synthesis_freedom = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fpga::run_flow(nl, opts));
    }
    state.SetLabel("m=" + std::to_string(fld.degree()));
}
BENCHMARK(BM_FullFlow)->Args({8, 2})->Args({64, 23});

}  // namespace

BENCHMARK_MAIN();
