// Reproduces TABLE I of the paper: "Coefficients of the product for GF(2^8)
// with (m,n) = (8,2)" — c_k = S_(k+1) + sum of T_i selected by the reduction
// matrix — plus the Section II listing of every S_i/T_i.  The generated
// equations are diffed against the verbatim transcription of the paper.

#include "field/field_catalog.h"
#include "mastrovito/reduction_matrix.h"
#include "multipliers/golden_tables.h"
#include "st/st_expr.h"
#include "st/st_terms.h"

#include <cstdio>
#include <string>

namespace {

std::string generated_table1_line(const gfr::mastrovito::ReductionMatrix& q, int k) {
    std::string line = "c" + std::to_string(k) + " = S" + std::to_string(k + 1);
    for (const int i : q.t_indices_for_coefficient(k)) {
        line += " + T" + std::to_string(i);
    }
    return line;
}

}  // namespace

int main() {
    using namespace gfr;

    std::puts("=== TABLE I: coefficients of the product for GF(2^8), (m,n)=(8,2) ===\n");
    const auto fld = field::gf256_paper_field();
    const mastrovito::ReductionMatrix q{fld.modulus()};

    const auto golden =
        st::parse_coefficient_table(mult::table1_text(), st::ParseMode::WholeFunctions);

    bool all_match = true;
    for (int k = 0; k < 8; ++k) {
        const std::string generated = generated_table1_line(q, k);
        const std::string paper = golden[static_cast<std::size_t>(k)].to_string();
        const bool match = generated == paper;
        all_match = all_match && match;
        std::printf("  %-44s %s\n", generated.c_str(),
                    match ? "[matches paper]" : ("[PAPER: " + paper + "]").c_str());
    }

    std::puts("\n=== Section II: S_i and T_i functions for GF(2^8) ===\n");
    for (int i = 1; i <= 8; ++i) {
        std::printf("  %s\n", st::to_paper_string(st::make_s(8, i)).c_str());
    }
    for (int i = 0; i <= 6; ++i) {
        std::printf("  %s\n", st::to_paper_string(st::make_t(8, i)).c_str());
    }

    std::printf("\nTable I reproduction: %s\n",
                all_match ? "EXACT MATCH with the paper" : "MISMATCH (see above)");
    return all_match ? 0 : 1;
}
