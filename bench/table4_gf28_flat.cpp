// Reproduces TABLE IV of the paper: the NEW coefficient expressions for type
// II GF(2^8) — the same split terms as Table III but summed flat, with no
// parenthesised restrictions, leaving the synthesis tool free to restructure.
// The bench regenerates the flat equations from the split tables and diffs
// them against the verbatim transcription.

#include "field/field_catalog.h"
#include "mastrovito/reduction_matrix.h"
#include "multipliers/generator.h"
#include "multipliers/golden_tables.h"
#include "st/st_expr.h"
#include "st/st_split.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace {

/// The generator's term order (S splits desc level, then T_i asc index,
/// desc level) rendered in the paper's notation.
std::string generated_table4_line(const gfr::mastrovito::ReductionMatrix& q,
                                  const gfr::st::SplitTables& tables, int k) {
    using gfr::st::SplitTerm;
    std::vector<const SplitTerm*> parts;
    auto append_desc = [&](const std::vector<SplitTerm>& splits) {
        std::vector<const SplitTerm*> sorted;
        for (const auto& sp : splits) {
            sorted.push_back(&sp);
        }
        std::sort(sorted.begin(), sorted.end(),
                  [](const SplitTerm* a, const SplitTerm* b) { return a->level > b->level; });
        parts.insert(parts.end(), sorted.begin(), sorted.end());
    };
    append_desc(tables.s[static_cast<std::size_t>(k)]);
    for (const int i : q.t_indices_for_coefficient(k)) {
        append_desc(tables.t[static_cast<std::size_t>(i)]);
    }
    std::string line = "c" + std::to_string(k) + " = ";
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) {
            line += " + ";
        }
        line += parts[i]->label();
    }
    return line;
}

}  // namespace

int main() {
    using namespace gfr;

    std::puts("=== TABLE IV: new coefficients of the product for type II GF(2^8) ===\n");
    const auto fld = field::gf256_paper_field();
    const mastrovito::ReductionMatrix q{fld.modulus()};
    const auto tables = st::make_split_tables(8);
    const auto golden =
        st::parse_coefficient_table(mult::table4_text(), st::ParseMode::SplitTerms);

    bool all_match = true;
    for (int k = 0; k < 8; ++k) {
        const std::string generated = generated_table4_line(q, tables, k);
        const std::string paper = golden[static_cast<std::size_t>(k)].to_string();
        const bool match = generated == paper;
        all_match = all_match && match;
        std::printf("  %-76s %s\n", generated.c_str(),
                    match ? "[matches paper]" : ("[PAPER: " + paper + "]").c_str());
    }

    const auto stats = mult::build_multiplier(mult::Method::Date2018Flat, fld).stats();
    std::printf("\nFlat netlist before synthesis: %lld AND, %lld XOR, %s\n",
                static_cast<long long>(stats.n_and),
                static_cast<long long>(stats.n_xor), stats.delay_string().c_str());
    std::puts("(The point of Table IV: these flat sums give the synthesiser freedom;");
    std::puts(" see table5_fpga_comparison for the post-flow effect.)");

    std::printf("\nTable IV reproduction: %s\n",
                all_match ? "EXACT MATCH with the paper" : "MISMATCH (see above)");
    return all_match ? 0 : 1;
}
