// google-benchmark microbenchmarks of the reference field arithmetic —
// the substrate every verification run leans on.

#include "field/field_catalog.h"

#include <benchmark/benchmark.h>

#include <random>

namespace {

using gfr::field::Field;

const Field& field_for(int index) {
    static const std::vector<Field> fields = [] {
        std::vector<Field> out;
        for (const auto& spec : gfr::field::table5_fields()) {
            out.push_back(spec.make());
        }
        return out;
    }();
    return fields.at(static_cast<std::size_t>(index));
}

void BM_FieldMul(benchmark::State& state) {
    const Field& f = field_for(static_cast<int>(state.range(0)));
    std::mt19937_64 rng{42};
    const auto a = f.random_element(rng);
    const auto b = f.random_element(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.mul(a, b));
    }
    state.SetLabel("m=" + std::to_string(f.degree()));
}
BENCHMARK(BM_FieldMul)->DenseRange(0, 8);

void BM_FieldSqr(benchmark::State& state) {
    const Field& f = field_for(static_cast<int>(state.range(0)));
    std::mt19937_64 rng{43};
    const auto a = f.random_element(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.sqr(a));
    }
    state.SetLabel("m=" + std::to_string(f.degree()));
}
BENCHMARK(BM_FieldSqr)->Arg(0)->Arg(1)->Arg(7);

void BM_FieldInv(benchmark::State& state) {
    const Field& f = field_for(static_cast<int>(state.range(0)));
    std::mt19937_64 rng{44};
    auto a = f.random_element(rng);
    if (a.is_zero()) {
        a = f.one();
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.inv(a));
    }
    state.SetLabel("m=" + std::to_string(f.degree()));
}
BENCHMARK(BM_FieldInv)->Arg(0)->Arg(1)->Arg(7);

void BM_PolyMul(benchmark::State& state) {
    std::mt19937_64 rng{45};
    const int deg = static_cast<int>(state.range(0));
    gfr::gf2::Poly a;
    gfr::gf2::Poly b;
    for (int i = 0; i <= deg; ++i) {
        if (rng() & 1U) {
            a.set_coeff(i, true);
        }
        if (rng() & 1U) {
            b.set_coeff(i, true);
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(a * b);
    }
}
BENCHMARK(BM_PolyMul)->Arg(63)->Arg(162)->Arg(570);

}  // namespace

BENCHMARK_MAIN();
