// Reference-vs-engine microbenchmarks of the field arithmetic — the substrate
// every verification run and example leans on.
//
// Three generations of each operation are timed side by side:
//
//   *_seed      the original seed path (comb product + bit-serial divmod that
//               materialised `den << shift` on every loop iteration),
//               re-created locally so the trajectory survives the divmod fix;
//   *_reference the current reference path (comb product + in-place divmod);
//   *_engine    the fixed-modulus fast engine (FieldOps: sparse shift-XOR
//               reduction, single-word u64 kernels, region tables).
//
// Results go to stdout as a table and to BENCH_1.json (path overridable as
// argv[1]) as machine-readable ns/op so future PRs have a perf trajectory.

#include "field/field_catalog.h"
#include "field/field_ops.h"
#include "gf2/pentanomial.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

namespace {

using namespace gfr;
using field::Field;
using gf2::Poly;

std::uint64_t g_sink = 0;  // defeats dead-code elimination

/// Raw ns per iteration of fn at a self-calibrated iteration count, taking
/// the minimum of three timed runs to shed scheduler noise.
template <typename Fn>
double measure_raw_ns(Fn&& fn, double min_time_ms) {
    using clock = std::chrono::steady_clock;
    long long iters = 1;
    double best_ms = 0.0;
    for (;;) {
        const auto t0 = clock::now();
        for (long long i = 0; i < iters; ++i) {
            g_sink ^= fn();
        }
        best_ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
        if (best_ms >= min_time_ms || iters >= (1LL << 32)) {
            break;
        }
        const double scale = (best_ms > 0.01) ? (min_time_ms * 1.5 / best_ms) : 1000.0;
        iters = static_cast<long long>(static_cast<double>(iters) * scale) + 1;
    }
    for (int rep = 0; rep < 2; ++rep) {
        const auto t0 = clock::now();
        for (long long i = 0; i < iters; ++i) {
            g_sink ^= fn();
        }
        const double ms =
            std::chrono::duration<double, std::milli>(clock::now() - t0).count();
        if (ms < best_ms) {
            best_ms = ms;
        }
    }
    return best_ms * 1e6 / static_cast<double>(iters);
}

/// The harness's own per-iteration cost (loop + indirect call + sink XOR),
/// subtracted from every measurement so ns/op reflects the operation itself.
double harness_overhead_ns() {
    static const double overhead = [] {
        std::uint64_t c = 0x1234;
        return measure_raw_ns([&] { return ++c; }, 20.0);
    }();
    return overhead;
}

/// ns/op of fn (fn performs one operation and returns a checksum word).
template <typename Fn>
double measure_ns(Fn&& fn, double min_time_ms = 20.0) {
    const double raw = measure_raw_ns(fn, min_time_ms);
    return std::max(raw - harness_overhead_ns(), 0.01);
}

std::uint64_t checksum(const Poly& p) {
    return p.words().empty() ? 0 : p.words()[0] ^ static_cast<std::uint64_t>(p.degree());
}

// --- The seed's Field::mul, reproduced faithfully over std::vector ---------
//
// The seed stored polynomials in heap vectors (no small-buffer optimisation)
// and its divmod materialised `den << shift` as a fresh vector every loop
// iteration.  Reproducing that here — rather than calling today's Poly —
// keeps the baseline stable as the substrate improves, so BENCH_N.json files
// stay comparable across PRs.

using Words = std::vector<std::uint64_t>;

int words_degree(const Words& w) {
    for (std::size_t i = w.size(); i-- > 0;) {
        if (w[i] != 0) {
            return static_cast<int>(i) * 64 + 63 - std::countl_zero(w[i]);
        }
    }
    return -1;
}

Words seed_shl(const Words& a, int shift) {
    const auto ws = static_cast<std::size_t>(shift / 64);
    const int bs = shift % 64;
    Words out(a.size() + ws + 1, 0);  // fresh allocation, like the seed
    for (std::size_t i = 0; i < a.size(); ++i) {
        out[i + ws] ^= a[i] << bs;
        if (bs != 0) {
            out[i + ws + 1] ^= a[i] >> (64 - bs);
        }
    }
    return out;
}

Words seed_add(const Words& a, const Words& b) {
    Words out = a;  // copy, like the seed's operator+
    if (b.size() > out.size()) {
        out.resize(b.size(), 0);
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
        out[i] ^= b[i];
    }
    return out;
}

Words seed_mul(const Words& a, const Words& b, const Words& modulus) {
    // Comb product into a fresh vector.
    Words rem(a.size() + b.size() + 1, 0);
    for (std::size_t wi = 0; wi < a.size(); ++wi) {
        std::uint64_t w = a[wi];
        while (w != 0) {
            const int bit = std::countr_zero(w);
            w &= w - 1;
            const int shift = static_cast<int>(wi) * 64 + bit;
            const auto ws = static_cast<std::size_t>(shift / 64);
            const int bs = shift % 64;
            for (std::size_t bj = 0; bj < b.size(); ++bj) {
                rem[bj + ws] ^= b[bj] << bs;
                if (bs != 0) {
                    rem[bj + ws + 1] ^= b[bj] >> (64 - bs);
                }
            }
        }
    }
    // Bit-serial divmod allocating den << shift per iteration.
    const int dd = words_degree(modulus);
    int rd = words_degree(rem);
    while (rd >= dd) {
        rem = seed_add(rem, seed_shl(modulus, rd - dd));
        rd = words_degree(rem);
    }
    return rem;
}

struct Result {
    std::string name;
    int m = 0;
    double ns = 0.0;
};

std::vector<Result> g_results;

void record(const std::string& name, int m, double ns) {
    std::printf("  %-28s %10.2f ns/op\n", name.c_str(), ns);
    g_results.push_back({name, m, ns});
}

double ns_of(const std::string& name, int m) {
    for (const auto& r : g_results) {
        if (r.name == name && r.m == m) {
            return r.ns;
        }
    }
    return 0.0;
}

void bench_field(const Field& f) {
    const int m = f.degree();
    std::printf("%s\n", f.to_string().c_str());
    std::mt19937_64 rng{static_cast<std::uint64_t>(m) * 0x9E3779B97F4A7C15ULL};
    Poly a = f.random_element(rng);
    Poly b = f.random_element(rng);
    if (a.is_zero()) a = f.one();
    if (b.is_zero()) b = f.one();

    const Words aw{a.words().begin(), a.words().end()};
    const Words bw{b.words().begin(), b.words().end()};
    const Words mw{f.modulus().words().begin(), f.modulus().words().end()};
    record("mul_seed", m, measure_ns([&] {
        const Words r = seed_mul(aw, bw, mw);
        return r.empty() ? 0 : r[0];
    }));
    record("mul_reference", m,
           measure_ns([&] { return checksum(f.mul_reference(a, b)); }));
    record("mul_engine", m, measure_ns([&] { return checksum(f.mul(a, b)); }));
    if (f.ops().single_word()) {
        const std::uint64_t a_bits = f.to_bits(a);
        const std::uint64_t b_bits = f.to_bits(b);
        const auto& ops = f.ops();
        record("mul_engine_raw", m,
               measure_ns([&] { return ops.mul(a_bits, b_bits); }));
    }

    record("sqr_reference", m, measure_ns([&] { return checksum(f.sqr_reference(a)); }));
    record("sqr_engine", m, measure_ns([&] { return checksum(f.sqr(a)); }));

    record("inv_euclid", m, measure_ns([&] { return checksum(f.inv(a)); }));
    record("inv_fermat_engine", m, measure_ns([&] { return checksum(f.inv_fermat(a)); }));

    // Region traffic: scale 4096 symbols by one constant.
    constexpr std::size_t kRegion = 4096;
    std::vector<Poly> elems(kRegion);
    for (auto& e : elems) {
        e = f.random_element(rng);
    }
    record("region_scalar_loop", m, measure_ns(
                                        [&] {
                                            std::uint64_t acc = 0;
                                            for (const auto& e : elems) {
                                                acc ^= checksum(f.mul_reference(b, e));
                                            }
                                            return acc;
                                        },
                                        40.0) /
                                        static_cast<double>(kRegion));
    if (f.ops().single_word()) {
        std::vector<std::uint64_t> words(kRegion);
        for (std::size_t i = 0; i < kRegion; ++i) {
            words[i] = f.to_bits(elems[i]);
        }
        const field::ConstMultiplier cm{f.ops(), f.to_bits(b)};
        record("region_const_tables", m, measure_ns(
                                             [&] {
                                                 cm.mul_region(words);
                                                 return words[0];
                                             },
                                             40.0) /
                                             static_cast<double>(kRegion));
    } else {
        record("region_const_engine", m, measure_ns(
                                             [&] {
                                                 f.mul_region_const(b, elems);
                                                 return checksum(elems[0]);
                                             },
                                             40.0) /
                                             static_cast<double>(kRegion));
    }
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
    const std::string json_path = (argc > 1) ? argv[1] : "BENCH_1.json";

    std::vector<Field> fields;
    fields.push_back(Field::type2(8, 2));     // the paper's worked example
    fields.push_back(Field::type2(64, 23));   // largest single-word Table V field
    fields.push_back(Field::type2(163, 66));  // NIST B-163
    if (const auto mod233 = gf2::preferred_low_weight_modulus(233)) {
        fields.push_back(Field{*mod233});     // NIST B-233 (trinomial reduction)
    }

    for (const auto& f : fields) {
        bench_field(f);
    }

    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"schema\": \"gfr-bench-v1\",\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < g_results.size(); ++i) {
        const auto& r = g_results[i];
        std::fprintf(json, "    {\"name\": \"%s\", \"m\": %d, \"ns_per_op\": %.3f}%s\n",
                     r.name.c_str(), r.m, r.ns, (i + 1 < g_results.size()) ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"speedups\": [\n");
    bool first = true;
    for (const auto& f : fields) {
        const int m = f.degree();
        const double seed = ns_of("mul_seed", m);
        const double engine = ns_of("mul_engine", m);
        if (seed <= 0.0 || engine <= 0.0) {
            continue;
        }
        std::fprintf(json,
                     "%s    {\"name\": \"mul_seed_vs_engine\", \"m\": %d, "
                     "\"seed_ns\": %.3f, \"engine_ns\": %.3f, \"speedup\": %.2f}",
                     first ? "" : ",\n", m, seed, engine, seed / engine);
        first = false;
        std::printf("m=%-3d mul speedup seed/engine: %.1fx\n", m, seed / engine);
    }
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("(sink %llu)\nwrote %s\n", static_cast<unsigned long long>(g_sink),
                json_path.c_str());
    return 0;
}
