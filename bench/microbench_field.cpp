// Reference-vs-engine microbenchmarks of the field arithmetic — the substrate
// every verification run and example leans on.
//
// Three generations of each operation are timed side by side:
//
//   *_seed      the original seed path (comb product + bit-serial divmod that
//               materialised `den << shift` on every loop iteration),
//               re-created locally so the trajectory survives the divmod fix;
//   *_reference the current reference path (comb product + in-place divmod);
//   *_engine    the fixed-modulus fast engine (FieldOps: sparse shift-XOR
//               reduction, single-word u64 kernels, region tables).
//
// PR 2 adds the large-field tier on top: an inversion sweep over every
// Table V field (extended Euclid vs the engine's Itoh-Tsujii chain) and the
// Karatsuba crossover measurement (word-level schoolbook vs the recursive
// split at growing word counts, plus the full modular multiply at m = 1024).
//
// Results go to stdout as a table and to BENCH_2.json (path overridable as
// argv[1]) as machine-readable ns/op so future PRs have a perf trajectory.

#include "field/field_catalog.h"
#include "field/field_ops.h"
#include "gf2/pentanomial.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

namespace {

using namespace gfr;
using field::Field;
using gf2::Poly;

std::uint64_t g_sink = 0;  // defeats dead-code elimination

/// Raw ns per iteration of fn at a self-calibrated iteration count, taking
/// the minimum of three timed runs to shed scheduler noise.
template <typename Fn>
double measure_raw_ns(Fn&& fn, double min_time_ms) {
    using clock = std::chrono::steady_clock;
    long long iters = 1;
    double best_ms = 0.0;
    for (;;) {
        const auto t0 = clock::now();
        for (long long i = 0; i < iters; ++i) {
            g_sink ^= fn();
        }
        best_ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
        if (best_ms >= min_time_ms || iters >= (1LL << 32)) {
            break;
        }
        const double scale = (best_ms > 0.01) ? (min_time_ms * 1.5 / best_ms) : 1000.0;
        iters = static_cast<long long>(static_cast<double>(iters) * scale) + 1;
    }
    for (int rep = 0; rep < 2; ++rep) {
        const auto t0 = clock::now();
        for (long long i = 0; i < iters; ++i) {
            g_sink ^= fn();
        }
        const double ms =
            std::chrono::duration<double, std::milli>(clock::now() - t0).count();
        if (ms < best_ms) {
            best_ms = ms;
        }
    }
    return best_ms * 1e6 / static_cast<double>(iters);
}

/// The harness's own per-iteration cost (loop + indirect call + sink XOR),
/// subtracted from every measurement so ns/op reflects the operation itself.
double harness_overhead_ns() {
    static const double overhead = [] {
        std::uint64_t c = 0x1234;
        return measure_raw_ns([&] { return ++c; }, 20.0);
    }();
    return overhead;
}

/// ns/op of fn (fn performs one operation and returns a checksum word).
template <typename Fn>
double measure_ns(Fn&& fn, double min_time_ms = 20.0) {
    const double raw = measure_raw_ns(fn, min_time_ms);
    return std::max(raw - harness_overhead_ns(), 0.01);
}

std::uint64_t checksum(const Poly& p) {
    return p.words().empty() ? 0 : p.words()[0] ^ static_cast<std::uint64_t>(p.degree());
}

// --- The seed's Field::mul, reproduced faithfully over std::vector ---------
//
// The seed stored polynomials in heap vectors (no small-buffer optimisation)
// and its divmod materialised `den << shift` as a fresh vector every loop
// iteration.  Reproducing that here — rather than calling today's Poly —
// keeps the baseline stable as the substrate improves, so BENCH_N.json files
// stay comparable across PRs.

using Words = std::vector<std::uint64_t>;

int words_degree(const Words& w) {
    for (std::size_t i = w.size(); i-- > 0;) {
        if (w[i] != 0) {
            return static_cast<int>(i) * 64 + 63 - std::countl_zero(w[i]);
        }
    }
    return -1;
}

Words seed_shl(const Words& a, int shift) {
    const auto ws = static_cast<std::size_t>(shift / 64);
    const int bs = shift % 64;
    Words out(a.size() + ws + 1, 0);  // fresh allocation, like the seed
    for (std::size_t i = 0; i < a.size(); ++i) {
        out[i + ws] ^= a[i] << bs;
        if (bs != 0) {
            out[i + ws + 1] ^= a[i] >> (64 - bs);
        }
    }
    return out;
}

Words seed_add(const Words& a, const Words& b) {
    Words out = a;  // copy, like the seed's operator+
    if (b.size() > out.size()) {
        out.resize(b.size(), 0);
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
        out[i] ^= b[i];
    }
    return out;
}

Words seed_mul(const Words& a, const Words& b, const Words& modulus) {
    // Comb product into a fresh vector.
    Words rem(a.size() + b.size() + 1, 0);
    for (std::size_t wi = 0; wi < a.size(); ++wi) {
        std::uint64_t w = a[wi];
        while (w != 0) {
            const int bit = std::countr_zero(w);
            w &= w - 1;
            const int shift = static_cast<int>(wi) * 64 + bit;
            const auto ws = static_cast<std::size_t>(shift / 64);
            const int bs = shift % 64;
            for (std::size_t bj = 0; bj < b.size(); ++bj) {
                rem[bj + ws] ^= b[bj] << bs;
                if (bs != 0) {
                    rem[bj + ws + 1] ^= b[bj] >> (64 - bs);
                }
            }
        }
    }
    // Bit-serial divmod allocating den << shift per iteration.
    const int dd = words_degree(modulus);
    int rd = words_degree(rem);
    while (rd >= dd) {
        rem = seed_add(rem, seed_shl(modulus, rd - dd));
        rd = words_degree(rem);
    }
    return rem;
}

struct Result {
    std::string name;
    int m = 0;
    double ns = 0.0;
};

std::vector<Result> g_results;

void record(const std::string& name, int m, double ns) {
    std::printf("  %-28s %10.2f ns/op\n", name.c_str(), ns);
    g_results.push_back({name, m, ns});
}

double ns_of(const std::string& name, int m) {
    for (const auto& r : g_results) {
        if (r.name == name && r.m == m) {
            return r.ns;
        }
    }
    return 0.0;
}

void bench_field(const Field& f) {
    const int m = f.degree();
    std::printf("%s\n", f.to_string().c_str());
    std::mt19937_64 rng{static_cast<std::uint64_t>(m) * 0x9E3779B97F4A7C15ULL};
    Poly a = f.random_element(rng);
    Poly b = f.random_element(rng);
    if (a.is_zero()) a = f.one();
    if (b.is_zero()) b = f.one();

    const Words aw{a.words().begin(), a.words().end()};
    const Words bw{b.words().begin(), b.words().end()};
    const Words mw{f.modulus().words().begin(), f.modulus().words().end()};
    record("mul_seed", m, measure_ns([&] {
        const Words r = seed_mul(aw, bw, mw);
        return r.empty() ? 0 : r[0];
    }));
    record("mul_reference", m,
           measure_ns([&] { return checksum(f.mul_reference(a, b)); }));
    record("mul_engine", m, measure_ns([&] { return checksum(f.mul(a, b)); }));
    if (f.ops().single_word()) {
        const std::uint64_t a_bits = f.to_bits(a);
        const std::uint64_t b_bits = f.to_bits(b);
        const auto& ops = f.ops();
        record("mul_engine_raw", m,
               measure_ns([&] { return ops.mul(a_bits, b_bits); }));
    }

    record("sqr_reference", m, measure_ns([&] { return checksum(f.sqr_reference(a)); }));
    record("sqr_engine", m, measure_ns([&] { return checksum(f.sqr(a)); }));

    record("inv_euclid", m, measure_ns([&] { return checksum(f.inv_euclid(a)); }));
    record("inv_engine", m, measure_ns([&] { return checksum(f.inv(a)); }));
    record("inv_fermat_engine", m, measure_ns([&] { return checksum(f.inv_fermat(a)); }));

    // Region traffic: scale 4096 symbols by one constant.
    constexpr std::size_t kRegion = 4096;
    std::vector<Poly> elems(kRegion);
    for (auto& e : elems) {
        e = f.random_element(rng);
    }
    record("region_scalar_loop", m, measure_ns(
                                        [&] {
                                            std::uint64_t acc = 0;
                                            for (const auto& e : elems) {
                                                acc ^= checksum(f.mul_reference(b, e));
                                            }
                                            return acc;
                                        },
                                        40.0) /
                                        static_cast<double>(kRegion));
    if (f.ops().single_word()) {
        std::vector<std::uint64_t> words(kRegion);
        for (std::size_t i = 0; i < kRegion; ++i) {
            words[i] = f.to_bits(elems[i]);
        }
        const field::ConstMultiplier cm{f.ops(), f.to_bits(b)};
        record("region_const_tables", m, measure_ns(
                                             [&] {
                                                 cm.mul_region(words);
                                                 return words[0];
                                             },
                                             40.0) /
                                             static_cast<double>(kRegion));
    } else {
        record("region_const_engine", m, measure_ns(
                                             [&] {
                                                 f.mul_region_const(b, elems);
                                                 return checksum(elems[0]);
                                             },
                                             40.0) /
                                             static_cast<double>(kRegion));
    }
    std::printf("\n");
}

// --- Inversion sweep: every Table V field ------------------------------------
// The acceptance bar for the tier: the engine's Itoh-Tsujii chain must beat
// the seed's extended Euclid on every catalog field.

struct InvRow {
    std::string label;
    int m = 0;
    double euclid_ns = 0.0;
    double engine_ns = 0.0;
};

std::vector<InvRow> bench_inv_table5() {
    std::printf("=== Inversion: Table V fields, extended Euclid vs Itoh-Tsujii ===\n");
    std::vector<InvRow> rows;
    for (const auto& spec : field::table5_fields()) {
        const Field f = spec.make();
        std::mt19937_64 rng{static_cast<std::uint64_t>(spec.m) * 0x51D + spec.n};
        Poly a = f.random_element(rng);
        if (a.is_zero()) {
            a = f.one();
        }
        InvRow row;
        row.label = spec.label();
        row.m = spec.m;
        row.euclid_ns = measure_ns([&] { return checksum(f.inv_euclid(a)); });
        row.engine_ns = measure_ns([&] { return checksum(f.inv(a)); });
        std::printf("  %-12s euclid %9.1f ns  itoh-tsujii %9.1f ns  speedup %5.1fx\n",
                    row.label.c_str(), row.euclid_ns, row.engine_ns,
                    row.euclid_ns / row.engine_ns);
        rows.push_back(row);
    }
    std::printf("\n");
    return rows;
}

// --- Karatsuba crossover -----------------------------------------------------
// Raw word-level products (no reduction): schoolbook vs the Karatsuba layer
// at growing operand sizes, locating the crossover; then the full modular
// multiply and inverse at m = 1024 with the layer on and off.

struct KaraRow {
    int words = 0;
    double school_ns = 0.0;
    double kara_ns = 0.0;
};

std::vector<KaraRow> bench_karatsuba_crossover(int& crossover_words) {
    std::printf("=== Karatsuba layer: word-level product crossover (threshold %d) ===\n",
                gf2::karatsuba_threshold_words());
    std::mt19937_64 rng{0xCA2A};
    std::vector<KaraRow> rows;
    crossover_words = 0;
    gf2::MulArena arena;
    Poly out;
    for (const int n : {4, 8, 12, 16, 24, 32, 64}) {
        std::vector<std::uint64_t> wa(static_cast<std::size_t>(n));
        std::vector<std::uint64_t> wb(static_cast<std::size_t>(n));
        for (auto& w : wa) {
            w = rng();
        }
        for (auto& w : wb) {
            w = rng();
        }
        const Poly a = Poly::from_words(wa);
        const Poly b = Poly::from_words(wb);
        KaraRow row;
        row.words = n;
        row.school_ns = measure_ns([&] {
            Poly::mul_schoolbook_into(a, b, out);
            return checksum(out);
        });
        row.kara_ns = measure_ns([&] {
            Poly::mul_into(a, b, out, arena);
            return checksum(out);
        });
        // Only sizes above the threshold actually diverge from schoolbook —
        // below it both lambdas run the identical kernel and any "win" is
        // timing noise, not a crossover.
        if (crossover_words == 0 && n > gf2::karatsuba_threshold_words() &&
            row.kara_ns < row.school_ns) {
            crossover_words = n;
        }
        std::printf("  n=%-3d words  schoolbook %9.1f ns  karatsuba %9.1f ns  ratio %.2f\n",
                    n, row.school_ns, row.kara_ns, row.school_ns / row.kara_ns);
        rows.push_back(row);
    }
    std::printf("  measured crossover: %d words (~m = %d)\n\n", crossover_words,
                crossover_words * 64);
    return rows;
}

void bench_large_field_tier(const Field& f) {
    const int m = f.degree();
    std::printf("GF(2^%d): modular multiply and inverse, Karatsuba layer on/off\n", m);
    std::mt19937_64 rng{static_cast<std::uint64_t>(m)};
    Poly a = f.random_element(rng);
    Poly b = f.random_element(rng);
    if (a.is_zero()) a = f.one();
    if (b.is_zero()) b = f.one();

    const int tuned = gf2::karatsuba_threshold_words();
    gf2::set_karatsuba_threshold_words(1 << 20);  // force pure schoolbook (PR-1 path)
    record("mul_engine_schoolbook", m, measure_ns([&] { return checksum(f.mul(a, b)); }));
    record("inv_engine_schoolbook", m, measure_ns([&] { return checksum(f.inv(a)); }));
    gf2::set_karatsuba_threshold_words(tuned);
    record("mul_engine_karatsuba", m, measure_ns([&] { return checksum(f.mul(a, b)); }));
    record("inv_engine_karatsuba", m, measure_ns([&] { return checksum(f.inv(a)); }));
    record("inv_euclid", m, measure_ns([&] { return checksum(f.inv_euclid(a)); }));
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
    const std::string json_path = (argc > 1) ? argv[1] : "BENCH_2.json";

    std::vector<Field> fields;
    fields.push_back(Field::type2(8, 2));     // the paper's worked example
    fields.push_back(Field::type2(64, 23));   // largest single-word Table V field
    fields.push_back(Field::type2(163, 66));  // NIST B-163
    if (const auto mod233 = gf2::preferred_low_weight_modulus(233)) {
        fields.push_back(Field{*mod233});     // NIST B-233 (trinomial reduction)
    }

    for (const auto& f : fields) {
        bench_field(f);
    }

    const auto inv_rows = bench_inv_table5();
    int crossover_words = 0;
    const auto kara_rows = bench_karatsuba_crossover(crossover_words);
    // The large-m showcase: 16-word operands, where the layer must beat the
    // PR-1 schoolbook outright.
    const Field f1024{Poly::from_exponents({1024, 19, 6, 1, 0})};
    bench_large_field_tier(f1024);

    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"schema\": \"gfr-bench-v2\",\n");
    std::fprintf(json, "  \"karatsuba_threshold_words\": %d,\n",
                 gf2::karatsuba_threshold_words());
    std::fprintf(json, "  \"karatsuba_crossover_words\": %d,\n", crossover_words);
    std::fprintf(json, "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < g_results.size(); ++i) {
        const auto& r = g_results[i];
        std::fprintf(json, "    {\"name\": \"%s\", \"m\": %d, \"ns_per_op\": %.3f}%s\n",
                     r.name.c_str(), r.m, r.ns, (i + 1 < g_results.size()) ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"inv_table5\": [\n");
    for (std::size_t i = 0; i < inv_rows.size(); ++i) {
        const auto& r = inv_rows[i];
        std::fprintf(json,
                     "    {\"field\": \"%s\", \"m\": %d, \"euclid_ns\": %.3f, "
                     "\"engine_ns\": %.3f, \"speedup\": %.2f}%s\n",
                     r.label.c_str(), r.m, r.euclid_ns, r.engine_ns,
                     r.euclid_ns / r.engine_ns, (i + 1 < inv_rows.size()) ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"karatsuba_crossover\": [\n");
    for (std::size_t i = 0; i < kara_rows.size(); ++i) {
        const auto& r = kara_rows[i];
        std::fprintf(json,
                     "    {\"words\": %d, \"schoolbook_ns\": %.3f, "
                     "\"karatsuba_ns\": %.3f, \"ratio\": %.2f}%s\n",
                     r.words, r.school_ns, r.kara_ns, r.school_ns / r.kara_ns,
                     (i + 1 < kara_rows.size()) ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"speedups\": [\n");
    bool first = true;
    for (const auto& f : fields) {
        const int m = f.degree();
        const double seed = ns_of("mul_seed", m);
        const double engine = ns_of("mul_engine", m);
        if (seed <= 0.0 || engine <= 0.0) {
            continue;
        }
        std::fprintf(json,
                     "%s    {\"name\": \"mul_seed_vs_engine\", \"m\": %d, "
                     "\"seed_ns\": %.3f, \"engine_ns\": %.3f, \"speedup\": %.2f}",
                     first ? "" : ",\n", m, seed, engine, seed / engine);
        first = false;
        std::printf("m=%-3d mul speedup seed/engine: %.1fx\n", m, seed / engine);
    }
    for (const auto& f : fields) {
        const int m = f.degree();
        const double euclid = ns_of("inv_euclid", m);
        const double engine = ns_of("inv_engine", m);
        if (euclid <= 0.0 || engine <= 0.0) {
            continue;
        }
        std::fprintf(json,
                     "%s    {\"name\": \"inv_euclid_vs_engine\", \"m\": %d, "
                     "\"seed_ns\": %.3f, \"engine_ns\": %.3f, \"speedup\": %.2f}",
                     first ? "" : ",\n", m, euclid, engine, euclid / engine);
        first = false;
        std::printf("m=%-3d inv speedup euclid/engine: %.1fx\n", m, euclid / engine);
    }
    {
        const double school = ns_of("mul_engine_schoolbook", 1024);
        const double kara = ns_of("mul_engine_karatsuba", 1024);
        if (school > 0.0 && kara > 0.0) {
            std::fprintf(json,
                         "%s    {\"name\": \"mul_schoolbook_vs_karatsuba\", \"m\": 1024, "
                         "\"seed_ns\": %.3f, \"engine_ns\": %.3f, \"speedup\": %.2f}",
                         first ? "" : ",\n", school, kara, school / kara);
            first = false;
            std::printf("m=1024 mul speedup schoolbook/karatsuba: %.2fx\n",
                        school / kara);
        }
    }
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("(sink %llu)\nwrote %s\n", static_cast<unsigned long long>(g_sink),
                json_path.c_str());
    return 0;
}
