#include "exec/program.h"

#include "bulk/cpu.h"
#include "exec/run_kernels.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace gfr::exec {

namespace {

constexpr std::uint32_t kNoValue = std::numeric_limits<std::uint32_t>::max();
constexpr std::int64_t kNeverUsed = -1;
constexpr std::int64_t kFreed = -2;

/// One scheduled definition, still in value-id space (slots come later).
struct ValueDef {
    Op op = Op::Xor2;
    std::uint32_t value = 0;  ///< value id this instruction defines
    std::uint32_t aux = 0;    ///< Op::AndXorN: pair count
    std::uint64_t truth = 0;  ///< Op::Lut only
    std::vector<std::uint32_t> args;
};

/// Compile-time intermediate shared by both front ends: a post-order
/// schedule over a dense value-id space, plus the interface bindings.
struct Builder {
    std::size_t n_values = 0;
    std::vector<ValueDef> sched;
    /// (input index, value id) for every primary input, in interface order.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> inputs;
    std::vector<std::uint32_t> outputs;  ///< value id per output port
    std::uint32_t zero_value = kNoValue;
    int n_inputs_total = 0;
    int n_outputs_total = 0;
};

/// Iterative depth-first post-order from the outputs: values are scheduled
/// immediately before their first consumer's subtree completes, which keeps
/// live ranges short.  `deps` maps a value id to its operand value ids
/// (empty for sources), `emit` is called once per value in schedule order.
template <typename DepsFn, typename EmitFn>
void schedule_post_order(std::size_t n_values, std::span<const std::uint32_t> roots,
                         const DepsFn& deps, const EmitFn& emit) {
    std::vector<std::uint8_t> state(n_values, 0);  // 0 new, 1 open, 2 done
    struct Frame {
        std::uint32_t value;
        std::size_t next_dep;
    };
    std::vector<Frame> stack;
    for (const std::uint32_t root : roots) {
        if (state[root] == 2) {
            continue;
        }
        stack.push_back({root, 0});
        state[root] = 1;
        while (!stack.empty()) {
            Frame& f = stack.back();
            const std::span<const std::uint32_t> d = deps(f.value);
            bool descended = false;
            while (f.next_dep < d.size()) {
                const std::uint32_t child = d[f.next_dep++];
                if (state[child] == 0) {
                    state[child] = 1;
                    stack.push_back({child, 0});
                    descended = true;
                    break;
                }
            }
            if (descended) {
                continue;
            }
            state[f.value] = 2;
            emit(f.value);
            stack.pop_back();
        }
    }
}

/// Tape-level CSE (Program::CompileOptions::hoist_common_pairs): hoist XOR
/// operand pairs recurring across the singles regions of fused accumulate
/// instructions into shared Xor2 definitions.  Runs in value-id space
/// between scheduling and linking; XOR reassociation keeps the tape
/// semantically identical, and liveness/slots are recomputed by the
/// unchanged Linker afterwards.  Rounds repeat so hoisted values can pair
/// up again (multi-level sharing) until no pair clears the threshold.
void hoist_common_pairs(Builder& b, int min_count) {
    constexpr int kMaxRounds = 10;
    constexpr std::size_t kMaxSinglesCounted = 128;
    if (min_count < 2) {
        min_count = 2;
    }
    const auto singles_begin = [](const ValueDef& def) -> std::size_t {
        return def.op == Op::AndXorN ? static_cast<std::size_t>(def.aux) * 2 : 0;
    };
    for (int round = 0; round < kMaxRounds; ++round) {
        // --- Count: each unordered singles pair at most once per def -----
        std::unordered_map<std::uint64_t, std::uint32_t> counts;
        std::vector<std::uint32_t> uniq;
        for (const ValueDef& def : b.sched) {
            if (def.op != Op::XorN && def.op != Op::AndXorN) {
                continue;
            }
            const std::size_t begin = singles_begin(def);
            if (def.args.size() < begin + 2) {
                continue;
            }
            const std::size_t end =
                std::min(def.args.size(), begin + kMaxSinglesCounted);
            uniq.assign(def.args.begin() + static_cast<std::ptrdiff_t>(begin),
                        def.args.begin() + static_cast<std::ptrdiff_t>(end));
            std::sort(uniq.begin(), uniq.end());
            uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
            for (std::size_t i = 0; i < uniq.size(); ++i) {
                for (std::size_t j = i + 1; j < uniq.size(); ++j) {
                    const std::uint64_t key =
                        (static_cast<std::uint64_t>(uniq[i]) << 32U) | uniq[j];
                    ++counts[key];
                }
            }
        }
        std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked;
        for (const auto& [key, count] : counts) {
            if (static_cast<int>(count) >= min_count) {
                ranked.emplace_back(count, key);
            }
        }
        if (ranked.empty()) {
            break;
        }
        std::sort(ranked.begin(), ranked.end(), [](const auto& p, const auto& q) {
            return p.first != q.first ? p.first > q.first : p.second < q.second;
        });

        // --- Apply greedily; overlapping pairs re-check live state -------
        struct NewDef {
            std::uint32_t value;
            std::uint32_t x;
            std::uint32_t y;
            std::size_t before;  ///< sched index of the first user
        };
        std::vector<NewDef> created;
        for (const auto& [count, key] : ranked) {
            const auto x = static_cast<std::uint32_t>(key >> 32U);
            const auto y = static_cast<std::uint32_t>(key & 0xFFFFFFFFULL);
            const auto find_pair = [&](const ValueDef& def, std::size_t& ix,
                                       std::size_t& iy) {
                if (def.op != Op::XorN && def.op != Op::AndXorN) {
                    return false;
                }
                const std::size_t begin = singles_begin(def);
                ix = iy = def.args.size();
                for (std::size_t k = begin; k < def.args.size(); ++k) {
                    if (def.args[k] == x && ix == def.args.size()) {
                        ix = k;
                    } else if (def.args[k] == y && iy == def.args.size()) {
                        iy = k;
                    }
                }
                return ix != def.args.size() && iy != def.args.size();
            };
            // Dry scan first: overlaps with already-applied pairs may have
            // consumed occurrences, and a pair no longer clearing the
            // threshold is not worth a definition.
            int live = 0;
            for (const ValueDef& def : b.sched) {
                std::size_t ix = 0;
                std::size_t iy = 0;
                if (find_pair(def, ix, iy)) {
                    ++live;
                }
            }
            if (live < min_count) {
                continue;
            }
            const auto v = static_cast<std::uint32_t>(b.n_values++);
            std::size_t first_user = b.sched.size();
            for (std::size_t t = 0; t < b.sched.size(); ++t) {
                ValueDef& def = b.sched[t];
                std::size_t ix = 0;
                std::size_t iy = 0;
                // Repeat within one def: duplicate leaves can carry the
                // same pair more than once.
                while (find_pair(def, ix, iy)) {
                    if (iy < ix) {
                        std::swap(ix, iy);
                    }
                    def.args.erase(def.args.begin() +
                                   static_cast<std::ptrdiff_t>(iy));
                    def.args.erase(def.args.begin() +
                                   static_cast<std::ptrdiff_t>(ix));
                    def.args.push_back(v);
                    first_user = std::min(first_user, t);
                    if (def.op == Op::XorN && def.args.size() == 2) {
                        def.op = Op::Xor2;
                    }
                }
            }
            created.push_back(NewDef{v, x, y, first_user});
        }
        if (created.empty()) {
            break;
        }

        // --- Insert the hoisted defs right before their first user -------
        std::vector<ValueDef> rebuilt;
        rebuilt.reserve(b.sched.size() + created.size());
        for (std::size_t t = 0; t < b.sched.size(); ++t) {
            for (const NewDef& nd : created) {
                if (nd.before == t) {
                    ValueDef def;
                    def.op = Op::Xor2;
                    def.value = nd.value;
                    def.args = {nd.x, nd.y};
                    rebuilt.push_back(std::move(def));
                }
            }
            rebuilt.push_back(std::move(b.sched[t]));
        }
        b.sched = std::move(rebuilt);
    }
}

/// Truth table of the k-input parity function (low 2^k bits).
std::uint64_t parity_truth(int k) {
    std::uint64_t t = 0;
    for (unsigned i = 0; i < (1U << k); ++i) {
        if (std::popcount(i) & 1U) {
            t |= std::uint64_t{1} << i;
        }
    }
    return t;
}

}  // namespace

namespace detail {

/// Liveness analysis + slot allocation + tape emission over a finished
/// Builder.  Factored out of the front ends so Netlist and LutNetwork
/// compilation share one register allocator.
struct Linker {
    static Program link(Builder&& b, std::size_t source_nodes) {
        Program p;
        p.n_inputs_ = b.n_inputs_total;
        p.n_outputs_ = b.n_outputs_total;
        p.source_nodes_ = source_nodes;

        const std::int64_t n_insns = static_cast<std::int64_t>(b.sched.size());

        // Liveness: last instruction index reading each value; values that
        // feed an output port stay live past the end of the tape.
        std::vector<std::int64_t> last_use(b.n_values, kNeverUsed);
        for (std::int64_t t = 0; t < n_insns; ++t) {
            for (const std::uint32_t a : b.sched[static_cast<std::size_t>(t)].args) {
                last_use[a] = t;
            }
        }
        for (const std::uint32_t v : b.outputs) {
            last_use[v] = n_insns;
        }
        if (b.zero_value != kNoValue && last_use[b.zero_value] != kNeverUsed) {
            p.uses_zero_slot_ = true;
            last_use[b.zero_value] = n_insns;  // the zero slot is never recycled
        }

        // Slot allocation: a stack of free slots; a value's slot returns to
        // the pool the moment its last consumer has executed, so the
        // high-water mark is exactly the schedule's maximum live width.
        std::vector<std::uint32_t> slot_of(b.n_values, kNoValue);
        std::vector<std::uint32_t> free_slots;
        std::uint32_t next_slot = p.uses_zero_slot_ ? 1 : 0;
        const auto alloc = [&]() -> std::uint32_t {
            if (!free_slots.empty()) {
                const std::uint32_t s = free_slots.back();
                free_slots.pop_back();
                return s;
            }
            return next_slot++;
        };
        if (p.uses_zero_slot_) {
            slot_of[b.zero_value] = 0;
        }
        for (const auto& [input_index, value] : b.inputs) {
            if (last_use[value] == kNeverUsed) {
                continue;  // dead input: never loaded
            }
            const std::uint32_t s = alloc();
            slot_of[value] = s;
            p.input_loads_.emplace_back(input_index, s);
        }

        p.insns_.reserve(b.sched.size());
        std::vector<std::uint32_t> slots;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
        for (std::int64_t t = 0; t < n_insns; ++t) {
            ValueDef& def = b.sched[static_cast<std::size_t>(t)];
            // Free the slots of args this instruction consumes for the last
            // time; the executor reads every operand before writing dst, so
            // dst may legally reuse one of them in the same step.
            for (const std::uint32_t a : def.args) {
                if (last_use[a] == t) {
                    free_slots.push_back(slot_of[a]);
                    last_use[a] = kFreed;  // duplicate operands free only once
                }
            }
            Program::Insn insn;
            insn.op = def.op;
            insn.dst = alloc();
            insn.arg_begin = static_cast<std::uint32_t>(p.args_.size());
            insn.arg_count = static_cast<std::uint32_t>(def.args.size());
            if (def.op == Op::Lut) {
                insn.aux = static_cast<std::uint32_t>(p.truths_.size());
                p.truths_.push_back(def.truth);
            } else {
                insn.aux = def.aux;
            }
            slots.clear();
            for (const std::uint32_t a : def.args) {
                slots.push_back(slot_of[a]);
            }
            // Operand lists execute in ascending slot order: AND/XOR
            // accumulates are commutative, so sorting costs nothing
            // semantically and turns the executor's operand walk into a
            // mostly-forward scan of the slot file instead of random hops.
            // AndXorN keeps its pair structure (pairs first, each sorted
            // internally, then ordered by key; singles sorted after); Lut
            // operands stay put — their order indexes the truth table.
            switch (def.op) {
                case Op::And2:
                case Op::Xor2:
                case Op::XorN:
                    std::sort(slots.begin(), slots.end());
                    break;
                case Op::AndXorN: {
                    const std::size_t np = def.aux;
                    pairs.clear();
                    for (std::size_t q = 0; q < np; ++q) {
                        const std::uint32_t x = slots[2 * q];
                        const std::uint32_t y = slots[2 * q + 1];
                        pairs.emplace_back(std::min(x, y), std::max(x, y));
                    }
                    std::sort(pairs.begin(), pairs.end());
                    for (std::size_t q = 0; q < np; ++q) {
                        slots[2 * q] = pairs[q].first;
                        slots[2 * q + 1] = pairs[q].second;
                    }
                    std::sort(slots.begin() + static_cast<std::ptrdiff_t>(2 * np),
                              slots.end());
                    break;
                }
                case Op::Lut:
                    break;
            }
            p.args_.insert(p.args_.end(), slots.begin(), slots.end());
            slot_of[def.value] = insn.dst;
            p.insns_.push_back(insn);
        }

        p.output_slots_.reserve(b.outputs.size());
        for (const std::uint32_t v : b.outputs) {
            p.output_slots_.push_back(slot_of[v]);
        }
        p.slot_count_ = std::max<std::uint32_t>(next_slot, 1);
        return p;
    }
};

}  // namespace detail

// --- Netlist front end -------------------------------------------------------

Program Program::compile(const netlist::Netlist& nl) {
    return compile(nl, CompileOptions{});
}

Program Program::compile(const netlist::Netlist& nl,
                         const CompileOptions& options) {
    using netlist::GateKind;
    using netlist::NodeId;
    const std::size_t n = nl.node_count();

    // Consumer census over the reachable subgraph, split by consumer kind:
    // an Xor2 with exactly one consumer, itself an Xor2 gate, is an interior
    // tree node and fuses into its root's accumulate instruction.
    const auto reachable = nl.reachable_from_outputs();
    std::vector<std::uint32_t> xor_uses(n, 0);
    std::vector<std::uint32_t> other_uses(n, 0);
    for (NodeId id = 0; id < n; ++id) {
        if (!reachable[id]) {
            continue;
        }
        const netlist::Node& node = nl.node(id);
        if (node.kind == GateKind::And2 || node.kind == GateKind::Xor2) {
            auto& uses = (node.kind == GateKind::Xor2) ? xor_uses : other_uses;
            ++uses[node.a];
            ++uses[node.b];
        }
    }
    for (const auto& port : nl.outputs()) {
        ++other_uses[port.node];
    }
    std::vector<bool> interior(n, false);
    for (NodeId id = 0; id < n; ++id) {
        interior[id] = reachable[id] && nl.node(id).kind == GateKind::Xor2 &&
                       xor_uses[id] == 1 && other_uses[id] == 0;
    }

    // Operand lists per schedulable gate.  XOR roots expand their fused leaf
    // set by walking interior nodes; ANDs keep their two fanins.  Interior
    // nodes have exactly one consumer, so each lands in exactly one root's
    // list and expansion is linear in the XOR count.  Duplicate leaves (one
    // value reached through two interior branches) are kept: XOR-ing a word
    // twice contributes zero, exactly as the gate tree computes.
    //
    // AND inlining: a leaf that is an And2 with exactly one consumer (this
    // tree) never materialises — the root instruction becomes AndXorN and
    // carries the AND's two fanins as an operand pair, turning a whole
    // partial-product column into one instruction.  pair_count[id] holds the
    // number of leading pairs in operands[id] (pairs first, singles after).
    std::vector<std::vector<std::uint32_t>> operands(n);
    std::vector<std::uint32_t> pair_count(n, 0);
    std::vector<std::uint32_t> walk;
    std::vector<std::uint32_t> singles;
    for (NodeId id = 0; id < n; ++id) {
        if (!reachable[id] || interior[id]) {
            continue;
        }
        const netlist::Node& node = nl.node(id);
        if (node.kind == GateKind::And2) {
            operands[id] = {node.a, node.b};
            continue;
        }
        if (node.kind != GateKind::Xor2) {
            continue;
        }
        walk.clear();
        singles.clear();
        walk.push_back(node.b);
        walk.push_back(node.a);
        auto& out = operands[id];
        while (!walk.empty()) {
            const NodeId v = walk.back();
            walk.pop_back();
            if (interior[v]) {
                const netlist::Node& nv = nl.node(v);
                walk.push_back(nv.b);
                walk.push_back(nv.a);
                continue;
            }
            const netlist::Node& leaf = nl.node(v);
            if (leaf.kind == GateKind::And2 && xor_uses[v] + other_uses[v] == 1) {
                out.push_back(leaf.a);  // inlined pair
                out.push_back(leaf.b);
                ++pair_count[id];
            } else {
                singles.push_back(v);
            }
        }
        out.insert(out.end(), singles.begin(), singles.end());
    }

    Builder b;
    b.n_values = n;
    b.n_inputs_total = static_cast<int>(nl.inputs().size());
    b.n_outputs_total = static_cast<int>(nl.outputs().size());
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        b.inputs.emplace_back(static_cast<std::uint32_t>(i), nl.inputs()[i].node);
    }
    std::vector<std::uint32_t> roots;
    roots.reserve(nl.outputs().size());
    for (const auto& port : nl.outputs()) {
        b.outputs.push_back(port.node);
        roots.push_back(port.node);
    }

    const auto deps = [&](std::uint32_t v) -> std::span<const std::uint32_t> {
        return operands[v];
    };
    const auto emit = [&](std::uint32_t v) {
        const netlist::Node& node = nl.node(v);
        switch (node.kind) {
            case GateKind::Input:
                return;
            case GateKind::Const0:
                b.zero_value = v;
                return;
            case GateKind::And2: {
                ValueDef def;
                def.op = Op::And2;
                def.value = v;
                def.args = std::move(operands[v]);
                b.sched.push_back(std::move(def));
                return;
            }
            case GateKind::Xor2: {
                ValueDef def;
                def.value = v;
                if (pair_count[v] > 0) {
                    def.op = Op::AndXorN;
                    def.aux = pair_count[v];
                } else {
                    def.op = operands[v].size() == 2 ? Op::Xor2 : Op::XorN;
                }
                def.args = std::move(operands[v]);
                b.sched.push_back(std::move(def));
                return;
            }
        }
    };
    schedule_post_order(n, roots, deps, emit);
    if (options.hoist_common_pairs) {
        hoist_common_pairs(b, options.min_pair_occurrences);
    }
    return detail::Linker::link(std::move(b), n);
}

// --- LutNetwork front end ----------------------------------------------------

Program Program::compile(const fpga::LutNetwork& net) {
    const std::size_t n_in = net.input_names.size();
    const std::size_t n_luts = net.luts.size();
    // Value ids: inputs, then LUTs, then one pseudo-value for const 0.
    const std::uint32_t zero_value = static_cast<std::uint32_t>(n_in + n_luts);
    const auto value_of_ref = [&](std::int32_t ref) -> std::uint32_t {
        return ref < 0 ? zero_value : static_cast<std::uint32_t>(ref);
    };

    // Per-LUT operand lists in value-id space, plus the lowered op: pure
    // parity cones become fused XOR instructions, 2-input AND stays binary,
    // everything else evaluates its truth table bitsliced.
    std::vector<ValueDef> defs(n_luts);
    for (std::size_t i = 0; i < n_luts; ++i) {
        const auto& lut = net.luts[i];
        const int k = static_cast<int>(lut.fanins.size());
        if (k > 6) {
            throw std::invalid_argument{"exec::Program: LUT with more than 6 fanins"};
        }
        ValueDef& def = defs[i];
        def.value = static_cast<std::uint32_t>(n_in + i);
        def.args.reserve(lut.fanins.size());
        for (const auto ref : lut.fanins) {
            def.args.push_back(value_of_ref(ref));
        }
        const std::uint64_t mask =
            (k == 6) ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << (std::uint64_t{1} << k)) - 1);
        const std::uint64_t truth = lut.truth & mask;
        if (k >= 2 && truth == parity_truth(k)) {
            def.op = (k == 2) ? Op::Xor2 : Op::XorN;
        } else if (k == 2 && truth == 0x8) {
            def.op = Op::And2;
        } else {
            def.op = Op::Lut;
            def.truth = truth;
        }
    }

    Builder b;
    b.n_values = n_in + n_luts + 1;
    b.n_inputs_total = static_cast<int>(n_in);
    b.n_outputs_total = static_cast<int>(net.outputs.size());
    b.zero_value = zero_value;
    for (std::size_t i = 0; i < n_in; ++i) {
        b.inputs.emplace_back(static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(i));
    }
    std::vector<std::uint32_t> roots;
    roots.reserve(net.outputs.size());
    for (const auto& [name, ref] : net.outputs) {
        b.outputs.push_back(value_of_ref(ref));
        roots.push_back(value_of_ref(ref));
    }
    const auto deps = [&](std::uint32_t v) -> std::span<const std::uint32_t> {
        if (v < n_in || v == zero_value) {
            return {};
        }
        return defs[v - n_in].args;
    };
    const auto emit = [&](std::uint32_t v) {
        if (v < n_in || v == zero_value) {
            return;
        }
        b.sched.push_back(std::move(defs[v - n_in]));
    };
    schedule_post_order(b.n_values, roots, deps, emit);
    return detail::Linker::link(std::move(b), n_in + n_luts);
}

// --- Execution ---------------------------------------------------------------
//
// The executors themselves live in run_kernels_{scalar,avx2,avx512}.cpp;
// run() validates the call shape, sizes the aligned slot arena to the
// backend's vector stride, and hands a TapeView to the kernel.

void Program::Scratch::ensure(std::size_t words) {
    // Over-allocate by 7 words so the base can be rounded up to a 64-byte
    // boundary.  Recompute the aligned pointer unconditionally (cheap, and
    // the vector moves on growth); steady state never touches the backing
    // vector, so sized scratches keep run() allocation-free.
    if (words > words_) {
        storage_.resize(words + 7);
        words_ = words;
    }
    const auto base = reinterpret_cast<std::uintptr_t>(storage_.data());
    aligned_ = reinterpret_cast<std::uint64_t*>((base + 63) & ~std::uintptr_t{63});
}

TapeView Program::tape_view() const noexcept {
    TapeView v;
    v.insns = insns_.data();
    v.n_insns = insns_.size();
    v.args = args_.data();
    v.truths = truths_.data();
    v.input_loads = input_loads_.data();
    v.n_input_loads = input_loads_.size();
    v.output_slots = output_slots_.data();
    v.n_inputs = n_inputs_;
    v.n_outputs = n_outputs_;
    v.slot_count = slot_count_;
    v.uses_zero_slot = uses_zero_slot_;
    return v;
}

namespace {

void run_on_kernel(const TapeKernel& kernel, const TapeView& tape,
                   std::span<const std::uint64_t> in,
                   std::span<std::uint64_t> out, Program::Scratch& scratch,
                   int blocks) {
    if (blocks < 1 || blocks > Program::kMaxBlocks) {
        throw std::invalid_argument{
            "exec::Program::run: blocks must be in [1, 16]"};
    }
    if (in.size() != static_cast<std::size_t>(tape.n_inputs) * blocks) {
        throw std::invalid_argument{
            "exec::Program::run: wrong number of input words"};
    }
    if (out.size() != static_cast<std::size_t>(tape.n_outputs) * blocks) {
        throw std::invalid_argument{
            "exec::Program::run: wrong number of output words"};
    }
    const auto lanes = static_cast<std::size_t>(kernel.word_lanes);
    const std::size_t stride =
        (static_cast<std::size_t>(blocks) + lanes - 1) / lanes * lanes;
    scratch.ensure(stride * tape.slot_count);
    kernel.run(tape, in.data(), out.data(), scratch.data(), blocks);
}

}  // namespace

void Program::run(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                  Scratch& scratch, int blocks) const {
    run_on_kernel(*dispatch().kernel, tape_view(), in, out, scratch, blocks);
}

void Program::run(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                  Scratch& scratch, int blocks, Backend backend) const {
    const TapeKernel* kernel = tape_kernel(backend);
    // Probe the CPU directly rather than via dispatch(): the guard screen
    // runs *inside* dispatch()'s first-use initialisation and exercises
    // candidate backends through this overload, so consulting the dispatch
    // singleton here would recurse into its own construction.  Cache the
    // probe — CPUID/XGETBV serialize (and VM-exit under hypervisors), and
    // this overload sits on the per-sweep path of backend-pinned campaigns.
    static const bulk::CpuFeatures cpu = bulk::detect_cpu();
    if (kernel == nullptr || !backend_supported(backend, cpu)) {
        throw std::invalid_argument{
            "exec::Program::run: backend not available on this host"};
    }
    run_on_kernel(*kernel, tape_view(), in, out, scratch, blocks);
}

ProgramStats Program::stats() const {
    ProgramStats s;
    s.instructions = insns_.size();
    s.total_args = args_.size();
    s.source_nodes = source_nodes_;
    s.slots = slot_count_;
    for (const Insn& insn : insns_) {
        switch (insn.op) {
            case Op::And2: ++s.n_and2; break;
            case Op::Xor2: ++s.n_xor2; break;
            case Op::XorN: ++s.n_xorn; break;
            case Op::AndXorN:
                ++s.n_andxor;
                s.fused_ands += insn.aux;
                break;
            case Op::Lut: ++s.n_lut; break;
        }
    }
    return s;
}

}  // namespace gfr::exec
