// Tape-backend selection: the pure policy (make_exec_dispatch) plus the
// process-wide singleton binding it to the detected CPU and the
// GFR_EXEC_FORCE_SCALAR environment knob, screened through the guard
// quarantine ladder before first use.

#include "exec/run_kernels.h"

#include "bulk/kernels.h"
#include "guard/exec_check.h"

#include <cstdlib>

namespace gfr::exec {

// Every switch over Backend in this file is exhaustive without a default
// (-Werror=switch on the library target): a new backend fails to compile
// until each table below names it — same discipline as bulk/dispatch.cpp.

const char* backend_name(Backend backend) noexcept {
    switch (backend) {
        case Backend::Scalar: return "scalar";
        case Backend::Avx2: return "avx2";
        case Backend::Avx512: return "avx512";
    }
    __builtin_unreachable();
}

bool backend_supported(Backend backend, const bulk::CpuFeatures& f) noexcept {
    switch (backend) {
        case Backend::Scalar: return true;
        case Backend::Avx2: return f.avx2;
        case Backend::Avx512:
            // avx512f already folds in the XCR0 opmask+ZMM OS check
            // (detect_cpu), and the kernel issues only Foundation ops —
            // no extra feature bits needed.
            return f.avx512f;
    }
    __builtin_unreachable();
}

std::vector<Backend> compiled_tape_backends() {
    std::vector<Backend> backends{Backend::Scalar};
    if (avx2_tape_kernel() != nullptr) {
        backends.push_back(Backend::Avx2);
    }
    if (avx512_tape_kernel() != nullptr) {
        backends.push_back(Backend::Avx512);
    }
    return backends;
}

const TapeKernel* tape_kernel(Backend backend) noexcept {
    switch (backend) {
        case Backend::Scalar: return &kTapeScalar;
        case Backend::Avx2: return avx2_tape_kernel();
        case Backend::Avx512: return avx512_tape_kernel();
    }
    __builtin_unreachable();
}

ExecDispatch make_exec_dispatch(const bulk::CpuFeatures& f,
                                bool force_scalar) noexcept {
    ExecDispatch d;
    d.cpu = f;
    d.forced_scalar = force_scalar;
    d.kernel = &kTapeScalar;
    if (force_scalar) {
        return d;
    }
    // Best compiled backend the running CPU supports, never beyond: each
    // candidate requires both its TU (non-null registry) and the feature
    // predicate in backend_supported — one source of truth.
    for (const Backend backend : {Backend::Avx512, Backend::Avx2}) {
        if (const TapeKernel* k = tape_kernel(backend);
            k != nullptr && backend_supported(backend, f)) {
            d.kernel = k;
            break;
        }
    }
    return d;
}

const ExecDispatch& dispatch() {
    static const ExecDispatch d = guard::screen_exec_and_record(
        make_exec_dispatch(bulk::detect_cpu(),
                           bulk::env_flag_enabled(
                               std::getenv(kExecForceScalarEnv))),
        std::getenv("GFR_GUARD_FAULT"));
    return d;
}

}  // namespace gfr::exec
