// Portable scalar tape executor — the reference rung of the exec backend
// ladder, and bit-for-bit the PR-4 `Program::run_impl` loop (templated over
// the block count so the compiler still unrolls the per-word loops).  Every
// vector backend is screened against this executor by the guard tier, and
// the frozen PR-5 bench baseline is this kernel at the PR-5 block widths.

#include "exec/run_kernels.h"

#include <cstddef>
#include <cstdint>

namespace gfr::exec {

namespace {

template <int B>
void run_tape(const TapeView& tape, const std::uint64_t* in, std::uint64_t* out,
              std::uint64_t* slots) {
    const int n_in = tape.n_inputs;
    const int n_out = tape.n_outputs;
    if (tape.uses_zero_slot) {
        for (int w = 0; w < B; ++w) {
            slots[w] = 0;
        }
    }
    for (std::size_t l = 0; l < tape.n_input_loads; ++l) {
        const auto [input_index, slot] = tape.input_loads[l];
        std::uint64_t* dst = slots + static_cast<std::size_t>(slot) * B;
        for (int w = 0; w < B; ++w) {
            dst[w] = in[static_cast<std::size_t>(w) * n_in + input_index];
        }
    }

    const std::uint32_t* args = tape.args;
    for (std::size_t idx = 0; idx < tape.n_insns; ++idx) {
        const Program::Insn& insn = tape.insns[idx];
        const std::uint32_t* a = args + insn.arg_begin;
        std::uint64_t* dst = slots + static_cast<std::size_t>(insn.dst) * B;
        switch (insn.op) {
            case Op::And2: {
                const std::uint64_t* x = slots + static_cast<std::size_t>(a[0]) * B;
                const std::uint64_t* y = slots + static_cast<std::size_t>(a[1]) * B;
                for (int w = 0; w < B; ++w) {
                    dst[w] = x[w] & y[w];
                }
                break;
            }
            case Op::Xor2: {
                const std::uint64_t* x = slots + static_cast<std::size_t>(a[0]) * B;
                const std::uint64_t* y = slots + static_cast<std::size_t>(a[1]) * B;
                for (int w = 0; w < B; ++w) {
                    dst[w] = x[w] ^ y[w];
                }
                break;
            }
            case Op::XorN: {
                std::uint64_t acc[B];
                const std::uint64_t* x = slots + static_cast<std::size_t>(a[0]) * B;
                for (int w = 0; w < B; ++w) {
                    acc[w] = x[w];
                }
                for (std::uint32_t i = 1; i < insn.arg_count; ++i) {
                    const std::uint64_t* y =
                        slots + static_cast<std::size_t>(a[i]) * B;
                    for (int w = 0; w < B; ++w) {
                        acc[w] ^= y[w];
                    }
                }
                for (int w = 0; w < B; ++w) {
                    dst[w] = acc[w];
                }
                break;
            }
            case Op::AndXorN: {
                std::uint64_t acc[B];
                for (int w = 0; w < B; ++w) {
                    acc[w] = 0;
                }
                const std::uint32_t pairs = insn.aux;
                for (std::uint32_t i = 0; i < pairs; ++i) {
                    const std::uint64_t* x =
                        slots + static_cast<std::size_t>(a[2 * i]) * B;
                    const std::uint64_t* y =
                        slots + static_cast<std::size_t>(a[2 * i + 1]) * B;
                    for (int w = 0; w < B; ++w) {
                        acc[w] ^= x[w] & y[w];
                    }
                }
                for (std::uint32_t i = 2 * pairs; i < insn.arg_count; ++i) {
                    const std::uint64_t* y =
                        slots + static_cast<std::size_t>(a[i]) * B;
                    for (int w = 0; w < B; ++w) {
                        acc[w] ^= y[w];
                    }
                }
                for (int w = 0; w < B; ++w) {
                    dst[w] = acc[w];
                }
                break;
            }
            case Op::Lut: {
                const std::uint64_t truth = tape.truths[insn.aux];
                const int k = static_cast<int>(insn.arg_count);
                if (k == 0) {
                    const std::uint64_t v = (truth & 1U) ? ~std::uint64_t{0} : 0;
                    for (int w = 0; w < B; ++w) {
                        dst[w] = v;
                    }
                    break;
                }
                // Shannon mux fold, bitsliced: fold fanin 0 straight out of
                // the truth-table constants, then mux one fanin per level.
                // No per-lane work anywhere.
                std::uint64_t buf[32 * B];
                {
                    const std::uint64_t* x =
                        slots + static_cast<std::size_t>(a[0]) * B;
                    const int half = 1 << (k - 1);
                    for (int t = 0; t < half; ++t) {
                        const bool b0 = (truth >> (2 * t)) & 1U;
                        const bool b1 = (truth >> (2 * t + 1)) & 1U;
                        std::uint64_t* e = buf + static_cast<std::size_t>(t) * B;
                        for (int w = 0; w < B; ++w) {
                            e[w] = b0 ? (b1 ? ~std::uint64_t{0} : ~x[w])
                                      : (b1 ? x[w] : 0);
                        }
                    }
                }
                int entries = 1 << (k - 1);
                for (int j = 1; j < k; ++j) {
                    const std::uint64_t* x =
                        slots + static_cast<std::size_t>(a[j]) * B;
                    entries >>= 1;
                    for (int t = 0; t < entries; ++t) {
                        const std::uint64_t* lo =
                            buf + static_cast<std::size_t>(2 * t) * B;
                        const std::uint64_t* hi =
                            buf + static_cast<std::size_t>(2 * t + 1) * B;
                        std::uint64_t* e = buf + static_cast<std::size_t>(t) * B;
                        for (int w = 0; w < B; ++w) {
                            e[w] = (lo[w] & ~x[w]) | (hi[w] & x[w]);
                        }
                    }
                }
                for (int w = 0; w < B; ++w) {
                    dst[w] = buf[w];
                }
                break;
            }
        }
    }

    for (int o = 0; o < n_out; ++o) {
        const std::uint64_t* src =
            slots + static_cast<std::size_t>(tape.output_slots[o]) * B;
        for (int w = 0; w < B; ++w) {
            out[static_cast<std::size_t>(w) * n_out + o] = src[w];
        }
    }
}

void run_scalar(const TapeView& tape, const std::uint64_t* in,
                std::uint64_t* out, std::uint64_t* slots, int blocks) {
    switch (blocks) {
        case 1: run_tape<1>(tape, in, out, slots); break;
        case 2: run_tape<2>(tape, in, out, slots); break;
        case 3: run_tape<3>(tape, in, out, slots); break;
        case 4: run_tape<4>(tape, in, out, slots); break;
        case 5: run_tape<5>(tape, in, out, slots); break;
        case 6: run_tape<6>(tape, in, out, slots); break;
        case 7: run_tape<7>(tape, in, out, slots); break;
        case 8: run_tape<8>(tape, in, out, slots); break;
        case 9: run_tape<9>(tape, in, out, slots); break;
        case 10: run_tape<10>(tape, in, out, slots); break;
        case 11: run_tape<11>(tape, in, out, slots); break;
        case 12: run_tape<12>(tape, in, out, slots); break;
        case 13: run_tape<13>(tape, in, out, slots); break;
        case 14: run_tape<14>(tape, in, out, slots); break;
        case 15: run_tape<15>(tape, in, out, slots); break;
        case 16: run_tape<16>(tape, in, out, slots); break;
        default: break;  // unreachable: Program::run validates blocks
    }
}

static_assert(Program::kMaxBlocks == 16,
              "widen the run_scalar block switch with kMaxBlocks");

/// Fused sweep oracle, scalar rung: bit-for-bit the word-op sequence of
/// verify::LaneReference::products followed by the m-word compare, per
/// block.  This is the reference the vector oracle rungs are screened
/// against (guard/exec_check.h) and the authority behind every verdict —
/// check_sweep re-extracts any flagged block through the scalar
/// LaneReference before reporting a failure.
void oracle_scalar(const SweepOracleView& ov, const std::uint64_t* in,
                   const std::uint64_t* got, std::uint64_t* diff,
                   std::uint64_t* dwork, int blocks) {
    const auto m = static_cast<std::size_t>(ov.m);
    for (int blk = 0; blk < blocks; ++blk) {
        const std::uint64_t* a = in + static_cast<std::size_t>(blk) * 2 * m;
        const std::uint64_t* b = a + m;
        const std::uint64_t* g = got + static_cast<std::size_t>(blk) * m;
        for (std::size_t t = 0; t < 2 * m - 1; ++t) {
            dwork[t] = 0;
        }
        for (std::size_t i = 0; i < m; ++i) {
            const std::uint64_t ai = a[i];
            if (ai == 0) {
                continue;
            }
            std::uint64_t* row = dwork + i;
            for (std::size_t j = 0; j < m; ++j) {
                row[j] ^= ai & b[j];
            }
        }
        std::uint64_t any = 0;
        for (std::size_t k = 0; k < m; ++k) {
            std::uint64_t c = dwork[k];
            const std::int32_t lo = ov.red_offsets[k];
            const std::int32_t hi = ov.red_offsets[k + 1];
            for (std::int32_t t = lo; t < hi; ++t) {
                c ^= dwork[m + static_cast<std::size_t>(ov.red_indices[t])];
            }
            any |= c ^ g[k];
        }
        diff[blk] = any;
    }
}

}  // namespace

const TapeKernel kTapeScalar{Backend::Scalar, /*word_lanes=*/1, &run_scalar,
                             &oracle_scalar};

}  // namespace gfr::exec
