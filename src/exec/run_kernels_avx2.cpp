// AVX2 tape executor: each tape instruction processes the sweep's blocks as
// 256-bit vectors — four 64-lane blocks per word-op, up to four YMM vectors
// (16 blocks) per slot.  The slot arena stride is rounded up to 4 words, so
// every slot starts 32-byte aligned (the arena base is 64-byte aligned);
// pad words beyond `blocks` are zeroed at input-load time, computed through
// like real blocks, and never stored to the output.
//
// This translation unit is the only one compiled with -mavx2
// (GFR_EXEC_HAVE_AVX2 from CMake); the dispatcher never selects the kernel
// unless CPUID+XGETBV report AVX2 with YMM state OS-enabled.

#include "exec/run_kernels.h"

#if defined(GFR_EXEC_HAVE_AVX2)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace gfr::exec {

namespace {

/// NV = YMM vectors per slot = stride / 4, for stride = round_up(blocks, 4).
template <int NV>
void run_tape(const TapeView& tape, const std::uint64_t* in, std::uint64_t* out,
              std::uint64_t* slots, int blocks) {
    constexpr int kStride = NV * 4;
    const int n_in = tape.n_inputs;
    const int n_out = tape.n_outputs;

    const auto slot_ptr = [&](std::uint32_t s) {
        return slots + static_cast<std::size_t>(s) * kStride;
    };
    const auto vec = [](const std::uint64_t* p, int v) {
        return _mm256_load_si256(reinterpret_cast<const __m256i*>(p) + v);
    };
    const auto store = [](std::uint64_t* p, int v, __m256i x) {
        _mm256_store_si256(reinterpret_cast<__m256i*>(p) + v, x);
    };

    if (tape.uses_zero_slot) {
        std::uint64_t* dst = slot_ptr(0);
        for (int v = 0; v < NV; ++v) {
            store(dst, v, _mm256_setzero_si256());
        }
    }
    for (std::size_t l = 0; l < tape.n_input_loads; ++l) {
        const auto [input_index, slot] = tape.input_loads[l];
        std::uint64_t* dst = slot_ptr(slot);
        int w = 0;
        for (; w < blocks; ++w) {
            dst[w] = in[static_cast<std::size_t>(w) * n_in + input_index];
        }
        for (; w < kStride; ++w) {
            dst[w] = 0;
        }
    }

    const std::uint32_t* args = tape.args;
    for (std::size_t idx = 0; idx < tape.n_insns; ++idx) {
        const Program::Insn& insn = tape.insns[idx];
        const std::uint32_t* a = args + insn.arg_begin;
        std::uint64_t* dst = slot_ptr(insn.dst);
        switch (insn.op) {
            case Op::And2: {
                const std::uint64_t* x = slot_ptr(a[0]);
                const std::uint64_t* y = slot_ptr(a[1]);
                for (int v = 0; v < NV; ++v) {
                    store(dst, v, _mm256_and_si256(vec(x, v), vec(y, v)));
                }
                break;
            }
            case Op::Xor2: {
                const std::uint64_t* x = slot_ptr(a[0]);
                const std::uint64_t* y = slot_ptr(a[1]);
                for (int v = 0; v < NV; ++v) {
                    store(dst, v, _mm256_xor_si256(vec(x, v), vec(y, v)));
                }
                break;
            }
            case Op::XorN: {
                __m256i acc[NV];
                const std::uint64_t* x = slot_ptr(a[0]);
                for (int v = 0; v < NV; ++v) {
                    acc[v] = vec(x, v);
                }
                for (std::uint32_t i = 1; i < insn.arg_count; ++i) {
                    const std::uint64_t* y = slot_ptr(a[i]);
                    for (int v = 0; v < NV; ++v) {
                        acc[v] = _mm256_xor_si256(acc[v], vec(y, v));
                    }
                }
                for (int v = 0; v < NV; ++v) {
                    store(dst, v, acc[v]);
                }
                break;
            }
            case Op::AndXorN: {
                __m256i acc[NV];
                for (int v = 0; v < NV; ++v) {
                    acc[v] = _mm256_setzero_si256();
                }
                const std::uint32_t pairs = insn.aux;
                for (std::uint32_t i = 0; i < pairs; ++i) {
                    const std::uint64_t* x = slot_ptr(a[2 * i]);
                    const std::uint64_t* y = slot_ptr(a[2 * i + 1]);
                    for (int v = 0; v < NV; ++v) {
                        acc[v] = _mm256_xor_si256(
                            acc[v], _mm256_and_si256(vec(x, v), vec(y, v)));
                    }
                }
                for (std::uint32_t i = 2 * pairs; i < insn.arg_count; ++i) {
                    const std::uint64_t* y = slot_ptr(a[i]);
                    for (int v = 0; v < NV; ++v) {
                        acc[v] = _mm256_xor_si256(acc[v], vec(y, v));
                    }
                }
                for (int v = 0; v < NV; ++v) {
                    store(dst, v, acc[v]);
                }
                break;
            }
            case Op::Lut: {
                const std::uint64_t truth = tape.truths[insn.aux];
                const int k = static_cast<int>(insn.arg_count);
                if (k == 0) {
                    const __m256i c = (truth & 1U)
                                          ? _mm256_set1_epi64x(-1)
                                          : _mm256_setzero_si256();
                    for (int v = 0; v < NV; ++v) {
                        store(dst, v, c);
                    }
                    break;
                }
                // Shannon mux fold on vector registers: fold fanin 0 straight
                // out of the truth-table constants, then mux one fanin per
                // level with lo ^ ((lo ^ hi) & x).
                __m256i buf[32 * NV];
                {
                    const std::uint64_t* xs = slot_ptr(a[0]);
                    const __m256i ones = _mm256_set1_epi64x(-1);
                    const int half = 1 << (k - 1);
                    for (int t = 0; t < half; ++t) {
                        const bool b0 = (truth >> (2 * t)) & 1U;
                        const bool b1 = (truth >> (2 * t + 1)) & 1U;
                        __m256i* e = buf + static_cast<std::size_t>(t) * NV;
                        for (int v = 0; v < NV; ++v) {
                            const __m256i x = vec(xs, v);
                            e[v] = b0 ? (b1 ? ones : _mm256_xor_si256(x, ones))
                                      : (b1 ? x : _mm256_setzero_si256());
                        }
                    }
                }
                int entries = 1 << (k - 1);
                for (int j = 1; j < k; ++j) {
                    const std::uint64_t* xs = slot_ptr(a[j]);
                    entries >>= 1;
                    for (int t = 0; t < entries; ++t) {
                        const __m256i* lo =
                            buf + static_cast<std::size_t>(2 * t) * NV;
                        const __m256i* hi =
                            buf + static_cast<std::size_t>(2 * t + 1) * NV;
                        __m256i* e = buf + static_cast<std::size_t>(t) * NV;
                        for (int v = 0; v < NV; ++v) {
                            const __m256i x = vec(xs, v);
                            e[v] = _mm256_xor_si256(
                                lo[v], _mm256_and_si256(
                                           _mm256_xor_si256(lo[v], hi[v]), x));
                        }
                    }
                }
                for (int v = 0; v < NV; ++v) {
                    store(dst, v, buf[v]);
                }
                break;
            }
        }
    }

    for (int o = 0; o < n_out; ++o) {
        const std::uint64_t* src = slot_ptr(tape.output_slots[o]);
        for (int w = 0; w < blocks; ++w) {
            out[static_cast<std::size_t>(w) * n_out + o] = src[w];
        }
    }
}

void run_avx2(const TapeView& tape, const std::uint64_t* in, std::uint64_t* out,
              std::uint64_t* slots, int blocks) {
    switch ((blocks + 3) / 4) {
        case 1: run_tape<1>(tape, in, out, slots, blocks); break;
        case 2: run_tape<2>(tape, in, out, slots, blocks); break;
        case 3: run_tape<3>(tape, in, out, slots, blocks); break;
        case 4: run_tape<4>(tape, in, out, slots, blocks); break;
        default: break;  // unreachable: Program::run validates blocks
    }
}

static_assert(Program::kMaxBlocks == 16,
              "widen the run_avx2 vector-count switch with kMaxBlocks");

/// Fused sweep oracle, AVX2 rung: the lane-reference schoolbook runs
/// column-strip-wise — four consecutive partial-product words live in one
/// YMM accumulator, d[t0+s] = XOR over i of a_i & b[t0+s-i], built from a
/// zero-padded read-only copy of the B words and stored exactly once per
/// strip.  Register accumulation avoids the partially-overlapping
/// store-to-load forwarding stalls of a row-major in-memory accumulate.
/// Reduction columns and the compare stay scalar; the word values are
/// identical to the scalar rung — XOR accumulation is order-free — which
/// is what the guard screen checks.
///
/// Both scratch regions are software-pipelined so no load ever lands on a
/// YMM store still sitting in the store buffer: the operand copy for
/// block b+1 is written after block b's strips have read the previous
/// copy, and the scalar column reads of block b-1 run only after block
/// b's strip stores are issued.
void oracle_avx2(const SweepOracleView& ov, const std::uint64_t* in,
                 const std::uint64_t* got, std::uint64_t* diff,
                 std::uint64_t* dwork, int blocks) {
    const int m = ov.m;
    const int dn = 2 * m - 1;
    if (blocks <= 0) {
        return;
    }
    // dwork layout (>= 8m + 64 words): two bp buffers of m + 8 words each
    // (4 zero words, the m B words, 4 zero words), then two d buffers of
    // 2m + 8 words each (dn plus 3 spill words — strip stores are full
    // YMM); both double-buffered for the one-block pipelines.
    std::uint64_t* const bpbuf[2] = {dwork, dwork + (m + 8)};
    std::uint64_t* const dbuf[2] = {dwork + 2 * (m + 8),
                                    dwork + 2 * (m + 8) + (2 * m + 8)};
    const __m256i z = _mm256_setzero_si256();
    const auto copy_bp = [&](const std::uint64_t* b, std::uint64_t* bp) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(bp), z);
        int j = 0;
        for (; j + 4 <= m; j += 4) {
            _mm256_storeu_si256(
                reinterpret_cast<__m256i*>(bp + 4 + j),
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j)));
        }
        for (; j < m; ++j) {  // scalar tail: never read past b
            bp[4 + j] = b[j];
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(bp + 4 + m), z);
    };
    const auto reduce = [&](const std::uint64_t* d,
                            const std::uint64_t* g) noexcept {
        std::uint64_t any = 0;
        for (int k = 0; k < m; ++k) {
            std::uint64_t c = d[k];
            const std::int32_t lo = ov.red_offsets[k];
            const std::int32_t hi = ov.red_offsets[k + 1];
            for (std::int32_t t = lo; t < hi; ++t) {
                c ^= d[m + static_cast<std::size_t>(ov.red_indices[t])];
            }
            any |= c ^ g[k];
        }
        return any;
    };
    copy_bp(in + m, bpbuf[0]);
    for (int blk = 0; blk < blocks; ++blk) {
        const std::uint64_t* a = in + static_cast<std::size_t>(blk) * 2 * m;
        const std::uint64_t* bp = bpbuf[blk & 1];
        std::uint64_t* d = dbuf[blk & 1];
        for (int t0 = 0; t0 < dn; t0 += 4) {
            __m256i acc = z;
            const int ilo = t0 - m + 1 > 0 ? t0 - m + 1 : 0;
            const int ihi = t0 + 3 < m - 1 ? t0 + 3 : m - 1;
            for (int i = ilo; i <= ihi; ++i) {
                const __m256i av =
                    _mm256_set1_epi64x(static_cast<long long>(a[i]));
                const __m256i bv = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(bp + 4 + t0 - i));
                acc = _mm256_xor_si256(acc, _mm256_and_si256(av, bv));
            }
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + t0), acc);
        }
        if (blk + 1 < blocks) {
            copy_bp(in + static_cast<std::size_t>(blk + 1) * 2 * m + m,
                    bpbuf[(blk + 1) & 1]);
        }
        if (blk > 0) {
            diff[blk - 1] = reduce(dbuf[(blk - 1) & 1],
                                   got + static_cast<std::size_t>(blk - 1) * m);
        }
    }
    diff[blocks - 1] = reduce(dbuf[(blocks - 1) & 1],
                              got + static_cast<std::size_t>(blocks - 1) * m);
}

const TapeKernel kTapeAvx2{Backend::Avx2, /*word_lanes=*/4, &run_avx2,
                           &oracle_avx2};

}  // namespace

const TapeKernel* avx2_tape_kernel() noexcept { return &kTapeAvx2; }

}  // namespace gfr::exec

#else  // !GFR_EXEC_HAVE_AVX2

namespace gfr::exec {

const TapeKernel* avx2_tape_kernel() noexcept { return nullptr; }

}  // namespace gfr::exec

#endif
