#ifndef GFR_EXEC_PROGRAM_H
#define GFR_EXEC_PROGRAM_H

// Compiled netlist execution: one liveness-scheduled instruction tape behind
// every evaluation path in the repo.
//
// The interpretive simulators (netlist::Simulator pre-PR-4, the per-lane
// LutNetwork walk) re-decode the graph node-by-node over the *entire* node
// vector on every sweep: a working set of node_count words, a dispatch per
// gate, and a full-buffer clear per call.  Program::compile lowers an
// AND/XOR Netlist (or a mapped LutNetwork) once into a flat tape:
//
//   - DCE by construction: compilation schedules only logic reachable from
//     the outputs (dead gates never reach the tape);
//   - topological scheduling by depth-first post-order from the outputs, so
//     values are defined close to their uses — the precondition for tight
//     liveness;
//   - fused multi-input XOR: an XOR tree whose interior nodes have fanout 1
//     collapses into a single XOR-accumulate instruction over its leaves
//     (one dispatch instead of leaves-1), the dominant op shape in
//     Mastrovito-style multipliers;
//   - liveness-based slot allocation: a value's storage slot is recycled the
//     moment its last consumer has executed, so the execution working set is
//     the *maximum live width* of the schedule, not node_count — sweeps over
//     an m=163 multiplier run in a few KB instead of ~0.5 MB;
//   - bitsliced execution over 1..kMaxBlocks blocks of 64 lanes per pass
//     (up to 1024 test vectors per sweep step): every instruction processes
//     `blocks` words per slot, amortising tape decode across lanes.  The
//     executor behind run() is runtime-dispatched (exec/run_kernels.h):
//     AVX-512 / AVX2 backends process a block group as 512- / 256-bit
//     vectors, and the scalar u64 loop remains the always-available
//     reference rung.
//
// A Program is immutable after compile and shares nothing mutable across
// calls: run() draws all storage from a caller-owned Scratch, following the
// FieldOps explicit-scratch discipline, so one Program may serve any number
// of campaign workers concurrently.
//
// The tape accepts any well-formed AND/XOR netlist, including the shapes the
// guard tier produces: CED-augmented circuits (fresh, non-interned checker
// gates alongside interned multiplier logic) and fault-injected clones whose
// gates may carry duplicate operands (a tied fanin b == a compiles and runs
// like any other gate: XOR(a, a) = 0, AND(a, a) = a).

#include "fpga/lut_network.h"
#include "netlist/netlist.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace gfr::exec {

namespace detail {
struct Linker;  // compile-time helper (program.cpp) that assembles a Program
}

struct TapeView;                         // run_kernels.h: executor-facing tape
enum class Backend : std::uint8_t;       // run_kernels.h: executor ISA ladder

/// Tape opcodes.  And2/Xor2 are the binary fast cases; XorN is the fused
/// XOR-accumulate over arg_count leaves; AndXorN additionally inlines
/// single-use AND leaves as operand pairs (aux = pair count), so a whole
/// partial-product column runs as one instruction; Lut evaluates a K<=6
/// truth table bitsliced (Shannon mux fold, no per-lane work).
enum class Op : std::uint8_t { And2, Xor2, XorN, AndXorN, Lut };

/// Aggregate shape of a compiled tape (for tests, benches and reports).
struct ProgramStats {
    std::size_t instructions = 0;
    std::size_t n_and2 = 0;
    std::size_t n_xor2 = 0;
    std::size_t n_xorn = 0;      ///< fused XOR-accumulate instructions
    std::size_t n_andxor = 0;    ///< fused AND-XOR-accumulate instructions
    std::size_t fused_ands = 0;  ///< AND gates inlined into AndXorN pairs
    std::size_t n_lut = 0;
    std::size_t total_args = 0;  ///< sum of arg_count over the tape
    std::size_t source_nodes = 0;  ///< nodes/luts in the source graph
    std::uint32_t slots = 0;     ///< max live width (execution working set)
};

class Program {
public:
    /// Blocks of 64 lanes a single pass may carry (1024 lanes per sweep):
    /// two full ZMM vectors per word-op for the AVX-512 backend, four YMM
    /// for AVX2, and 4x less tape-decode overhead per lane than the PR-4
    /// width of 4 even on the scalar rung.
    static constexpr int kMaxBlocks = 16;

    /// One tape instruction.  args_[arg_begin .. arg_begin+arg_count) are
    /// the operand slots; aux indexes truths_ for Op::Lut.
    struct Insn {
        Op op = Op::Xor2;
        std::uint32_t dst = 0;
        std::uint32_t arg_begin = 0;
        std::uint32_t arg_count = 0;
        std::uint32_t aux = 0;
    };

    /// Tape-level optimization knobs for the Netlist front end.
    struct CompileOptions {
        /// Hoist XOR operand pairs that recur across fused accumulate
        /// instructions (XorN / AndXorN singles) into shared Xor2
        /// definitions — a value-level CSE running between scheduling and
        /// linking.  The tape stays semantically identical (XOR
        /// reassociation); instruction operand totals shrink whenever the
        /// source netlist left sharing on the table.  Off by default: the
        /// exact tape shape of the default path is pinned by tests and
        /// shared by the verification campaign's replay coordinates.
        bool hoist_common_pairs = false;
        /// A pair is hoisted only when it occurs in at least this many
        /// distinct accumulate instructions.
        int min_pair_occurrences = 3;
    };

    /// Compile the logic reachable from nl's outputs.  The tape evaluates
    /// exactly nl's input/output interface (inputs() / outputs() order).
    static Program compile(const netlist::Netlist& nl);

    /// As above with explicit tape-optimization options.
    static Program compile(const netlist::Netlist& nl,
                           const CompileOptions& options);

    /// Compile a mapped LUT network.  LUTs whose truth table is a pure AND /
    /// XOR / parity of their fanins lower to And2/Xor2/XorN; the rest become
    /// bitsliced Op::Lut evaluations.
    static Program compile(const fpga::LutNetwork& net);

    /// Caller-owned working memory for run(): a 64-byte-aligned slot arena
    /// (vector backends load/store whole YMM/ZMM words per slot).  Reused
    /// allocation-free across calls once sized — ensure() only touches the
    /// backing vector when capacity grows.
    class Scratch {
    public:
        /// Grow the arena to hold at least `words` u64 words, 64-byte
        /// aligned.  No-op (and allocation-free) when capacity suffices.
        void ensure(std::size_t words);

        /// Arena base; valid until the next growing ensure().
        [[nodiscard]] std::uint64_t* data() noexcept { return aligned_; }
        [[nodiscard]] std::size_t size() const noexcept { return words_; }

    private:
        std::vector<std::uint64_t> storage_;  ///< over-allocated for alignment
        std::uint64_t* aligned_ = nullptr;
        std::size_t words_ = 0;
    };

    /// Execute the tape over `blocks` blocks of 64 lanes (block-major
    /// layout: input i of block b at in[b * input_count() + i], output o of
    /// block b at out[b * output_count() + o]).  Requires
    /// in.size() == input_count() * blocks and out.size() ==
    /// output_count() * blocks; throws std::invalid_argument otherwise.
    /// Runs on the process-wide dispatched backend (exec::dispatch());
    /// results are bit-identical across backends and block widths.
    void run(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
             Scratch& scratch, int blocks = 1) const;

    /// As above on an explicitly chosen backend, bypassing the process-wide
    /// dispatch (differential tests, guard self-tests, bench ladders).
    /// Throws std::invalid_argument when that backend is not compiled in or
    /// not supported by the running CPU.
    void run(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
             Scratch& scratch, int blocks, Backend backend) const;

    /// The executor-facing flattening of this tape (exec/run_kernels.h).
    [[nodiscard]] TapeView tape_view() const noexcept;

    [[nodiscard]] int input_count() const noexcept { return n_inputs_; }
    [[nodiscard]] int output_count() const noexcept { return n_outputs_; }

    /// Slots run() touches per block — the max live width of the schedule.
    [[nodiscard]] std::uint32_t slot_count() const noexcept { return slot_count_; }

    [[nodiscard]] std::size_t instruction_count() const noexcept {
        return insns_.size();
    }

    /// The compiled tape and its operand-slot pool, read-only (tests and
    /// tooling).  Operand lists of commutative instructions are sorted by
    /// slot index at compile time (AndXorN: pairs first, ordered by key;
    /// singles after, ascending); Lut operand order indexes the truth table.
    [[nodiscard]] std::span<const Insn> instructions() const noexcept {
        return insns_;
    }
    [[nodiscard]] std::span<const std::uint32_t> args() const noexcept {
        return args_;
    }

    [[nodiscard]] ProgramStats stats() const;

private:
    friend struct detail::Linker;

    int n_inputs_ = 0;
    int n_outputs_ = 0;
    std::uint32_t slot_count_ = 0;
    bool uses_zero_slot_ = false;  ///< slot 0 pinned to constant 0
    std::size_t source_nodes_ = 0;
    std::vector<Insn> insns_;
    std::vector<std::uint32_t> args_;
    std::vector<std::uint64_t> truths_;
    /// (input index, slot) for every input the tape actually reads.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> input_loads_;
    std::vector<std::uint32_t> output_slots_;
};

/// Batching of a linear space of 64-lane blocks into sweeps of up to
/// Program::kMaxBlocks blocks per tape pass.  Shared by the campaign
/// regimes in netlist::check_equivalence and mult::verify_multiplier so
/// their sweep indexing can never diverge.  Both regimes batch: blocks are
/// scanned in ascending order inside a sweep, preserving the globally-first
/// counterexample, and random-regime block contents are seeded from the
/// *block's own* width-1 index (first_block(sweep) + b), never from the
/// batched sweep number — so a logged counterexample coordinate replays
/// forever, at any block width and on any backend.
struct BlockGrouping {
    std::uint64_t total_blocks = 0;
    int group = 1;  ///< blocks per full sweep
    std::uint64_t total_sweeps = 0;

    /// batched=true groups up to min(kMaxBlocks, max_group) blocks per
    /// sweep; false keeps the 1:1 sweep-to-block layout.
    ///
    /// Empty-space contract (pinned by tests): total_blocks == 0 yields
    /// group == 1 and total_sweeps == 0 — a degenerate-but-valid grouping
    /// whose sweep loop runs zero times, so first_block/blocks_in_sweep are
    /// never consulted and the group value only has to satisfy the
    /// "positive blocks-per-pass" invariant run() requires.
    static BlockGrouping over(std::uint64_t total_blocks, bool batched,
                              int max_group = Program::kMaxBlocks) noexcept {
        BlockGrouping g;
        g.total_blocks = total_blocks;
        const auto cap = static_cast<std::uint64_t>(
            std::clamp(max_group, 1, Program::kMaxBlocks));
        g.group = batched ? static_cast<int>(std::min<std::uint64_t>(
                                cap, total_blocks > 0 ? total_blocks : 1))
                          : 1;
        g.total_sweeps = (total_blocks + static_cast<std::uint64_t>(g.group) - 1) /
                         static_cast<std::uint64_t>(g.group);
        return g;
    }

    [[nodiscard]] std::uint64_t first_block(std::uint64_t sweep) const noexcept {
        return sweep * static_cast<std::uint64_t>(group);
    }

    /// Blocks in this sweep (the last sweep may be partial).
    [[nodiscard]] int blocks_in_sweep(std::uint64_t sweep) const noexcept {
        return static_cast<int>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(group), total_blocks - first_block(sweep)));
    }
};

}  // namespace gfr::exec

#endif  // GFR_EXEC_PROGRAM_H
