// AVX-512 tape executor: blocks processed as 512-bit vectors — eight
// 64-lane blocks per word-op, at most two ZMM vectors (16 blocks) per slot.
// Same layout contract as the AVX2 backend with an 8-word stride (so slots
// start 64-byte aligned), plus VPTERNLOGQ fusion for the accumulate shapes
// that dominate Mastrovito tapes:
//
//   imm 0x78 : acc ^ (x & y)   — one op per AND-XOR partial-product pair
//   imm 0x96 : acc ^ x ^ y     — two XOR leaves per op in XorN folds
//   imm 0xCA : x ? hi : lo     — the Shannon mux level in one op
//
// Compiled with -mavx512f only when the toolchain supports it
// (GFR_EXEC_HAVE_AVX512); selected only when CPUID reports AVX512F and
// XCR0 shows opmask+ZMM state OS-enabled.

#include "exec/run_kernels.h"

#if defined(GFR_EXEC_HAVE_AVX512)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace gfr::exec {

namespace {

/// 8x8 uint64 transpose: c[j] = [r[0][j], r[1][j], ..., r[7][j]].  Three
/// shuffle stages (64-bit unpack, 128-bit two-source permute, 256-bit lane
/// shuffle), 24 ops total — the marshalling between the caller's
/// block-major words and the arena's slot-major vectors without any
/// strided scalar traffic.
inline void transpose8x8(const __m512i r[8], __m512i c[8]) {
    const __m512i iA = _mm512_setr_epi64(0, 1, 8, 9, 4, 5, 12, 13);
    const __m512i iB = _mm512_setr_epi64(2, 3, 10, 11, 6, 7, 14, 15);
    __m512i t[8];
    for (int i = 0; i < 8; i += 2) {
        t[i] = _mm512_unpacklo_epi64(r[i], r[i + 1]);
        t[i + 1] = _mm512_unpackhi_epi64(r[i], r[i + 1]);
    }
    __m512i u[8];
    u[0] = _mm512_permutex2var_epi64(t[0], iA, t[2]);
    u[1] = _mm512_permutex2var_epi64(t[1], iA, t[3]);
    u[2] = _mm512_permutex2var_epi64(t[0], iB, t[2]);
    u[3] = _mm512_permutex2var_epi64(t[1], iB, t[3]);
    u[4] = _mm512_permutex2var_epi64(t[4], iA, t[6]);
    u[5] = _mm512_permutex2var_epi64(t[5], iA, t[7]);
    u[6] = _mm512_permutex2var_epi64(t[4], iB, t[6]);
    u[7] = _mm512_permutex2var_epi64(t[5], iB, t[7]);
    c[0] = _mm512_shuffle_i64x2(u[0], u[4], 0x44);
    c[1] = _mm512_shuffle_i64x2(u[1], u[5], 0x44);
    c[2] = _mm512_shuffle_i64x2(u[2], u[6], 0x44);
    c[3] = _mm512_shuffle_i64x2(u[3], u[7], 0x44);
    c[4] = _mm512_shuffle_i64x2(u[0], u[4], 0xEE);
    c[5] = _mm512_shuffle_i64x2(u[1], u[5], 0xEE);
    c[6] = _mm512_shuffle_i64x2(u[2], u[6], 0xEE);
    c[7] = _mm512_shuffle_i64x2(u[3], u[7], 0xEE);
}

/// NV = ZMM vectors per slot = stride / 8, for stride = round_up(blocks, 8).
template <int NV>
void run_tape(const TapeView& tape, const std::uint64_t* in, std::uint64_t* out,
              std::uint64_t* slots, int blocks) {
    constexpr int kStride = NV * 8;
    const int n_in = tape.n_inputs;
    const int n_out = tape.n_outputs;

    const auto slot_ptr = [&](std::uint32_t s) {
        return slots + static_cast<std::size_t>(s) * kStride;
    };
    const auto vec = [](const std::uint64_t* p, int v) {
        return _mm512_load_si512(reinterpret_cast<const __m512i*>(p) + v);
    };
    const auto store = [](std::uint64_t* p, int v, __m512i x) {
        _mm512_store_si512(reinterpret_cast<__m512i*>(p) + v, x);
    };

    if (tape.uses_zero_slot) {
        std::uint64_t* dst = slot_ptr(0);
        for (int v = 0; v < NV; ++v) {
            store(dst, v, _mm512_setzero_si512());
        }
    }
    std::size_t l = 0;
    if (blocks == kStride) {
        // Full-width sweeps: runs of eight consecutive input indices (the
        // whole list, for a multiplier tape) go through the 8x8 transpose —
        // eight row loads per vector instead of 64 strided scalar
        // load/store pairs, and the arena is written with full vector
        // stores, so the first tape ops never wide-load over narrow stores
        // still in the store buffer.
        while (l + 8 <= tape.n_input_loads) {
            const std::uint32_t i0 = tape.input_loads[l].first;
            bool run = true;
            for (std::size_t j = 1; j < 8; ++j) {
                run = run && tape.input_loads[l + j].first == i0 + j;
            }
            if (!run) {
                const auto [input_index, slot] = tape.input_loads[l];
                std::uint64_t* dst = slot_ptr(slot);
                for (int w = 0; w < kStride; ++w) {
                    dst[w] = in[static_cast<std::size_t>(w) * n_in + input_index];
                }
                ++l;
                continue;
            }
            for (int v = 0; v < NV; ++v) {
                __m512i r[8];
                for (int b = 0; b < 8; ++b) {
                    r[b] = _mm512_loadu_si512(
                        in + static_cast<std::size_t>(v * 8 + b) * n_in + i0);
                }
                __m512i c[8];
                transpose8x8(r, c);
                for (std::size_t j = 0; j < 8; ++j) {
                    store(slot_ptr(tape.input_loads[l + j].second), v, c[j]);
                }
            }
            l += 8;
        }
    }
    for (; l < tape.n_input_loads; ++l) {
        const auto [input_index, slot] = tape.input_loads[l];
        std::uint64_t* dst = slot_ptr(slot);
        int w = 0;
        for (; w < blocks; ++w) {
            dst[w] = in[static_cast<std::size_t>(w) * n_in + input_index];
        }
        for (; w < kStride; ++w) {
            dst[w] = 0;
        }
    }

    const std::uint32_t* args = tape.args;
    for (std::size_t idx = 0; idx < tape.n_insns; ++idx) {
        const Program::Insn& insn = tape.insns[idx];
        const std::uint32_t* a = args + insn.arg_begin;
        std::uint64_t* dst = slot_ptr(insn.dst);
        switch (insn.op) {
            case Op::And2: {
                const std::uint64_t* x = slot_ptr(a[0]);
                const std::uint64_t* y = slot_ptr(a[1]);
                for (int v = 0; v < NV; ++v) {
                    store(dst, v, _mm512_and_si512(vec(x, v), vec(y, v)));
                }
                break;
            }
            case Op::Xor2: {
                const std::uint64_t* x = slot_ptr(a[0]);
                const std::uint64_t* y = slot_ptr(a[1]);
                for (int v = 0; v < NV; ++v) {
                    store(dst, v, _mm512_xor_si512(vec(x, v), vec(y, v)));
                }
                break;
            }
            case Op::XorN: {
                __m512i acc[NV];
                const std::uint64_t* x = slot_ptr(a[0]);
                for (int v = 0; v < NV; ++v) {
                    acc[v] = vec(x, v);
                }
                std::uint32_t i = 1;
                for (; i + 1 < insn.arg_count; i += 2) {
                    const std::uint64_t* y = slot_ptr(a[i]);
                    const std::uint64_t* z = slot_ptr(a[i + 1]);
                    for (int v = 0; v < NV; ++v) {
                        acc[v] = _mm512_ternarylogic_epi64(acc[v], vec(y, v),
                                                           vec(z, v), 0x96);
                    }
                }
                if (i < insn.arg_count) {
                    const std::uint64_t* y = slot_ptr(a[i]);
                    for (int v = 0; v < NV; ++v) {
                        acc[v] = _mm512_xor_si512(acc[v], vec(y, v));
                    }
                }
                for (int v = 0; v < NV; ++v) {
                    store(dst, v, acc[v]);
                }
                break;
            }
            case Op::AndXorN: {
                __m512i acc[NV];
                for (int v = 0; v < NV; ++v) {
                    acc[v] = _mm512_setzero_si512();
                }
                const std::uint32_t pairs = insn.aux;
                for (std::uint32_t i = 0; i < pairs; ++i) {
                    const std::uint64_t* x = slot_ptr(a[2 * i]);
                    const std::uint64_t* y = slot_ptr(a[2 * i + 1]);
                    for (int v = 0; v < NV; ++v) {
                        acc[v] = _mm512_ternarylogic_epi64(acc[v], vec(x, v),
                                                           vec(y, v), 0x78);
                    }
                }
                std::uint32_t i = 2 * pairs;
                for (; i + 1 < insn.arg_count; i += 2) {
                    const std::uint64_t* y = slot_ptr(a[i]);
                    const std::uint64_t* z = slot_ptr(a[i + 1]);
                    for (int v = 0; v < NV; ++v) {
                        acc[v] = _mm512_ternarylogic_epi64(acc[v], vec(y, v),
                                                           vec(z, v), 0x96);
                    }
                }
                if (i < insn.arg_count) {
                    const std::uint64_t* y = slot_ptr(a[i]);
                    for (int v = 0; v < NV; ++v) {
                        acc[v] = _mm512_xor_si512(acc[v], vec(y, v));
                    }
                }
                for (int v = 0; v < NV; ++v) {
                    store(dst, v, acc[v]);
                }
                break;
            }
            case Op::Lut: {
                const std::uint64_t truth = tape.truths[insn.aux];
                const int k = static_cast<int>(insn.arg_count);
                if (k == 0) {
                    const __m512i c = (truth & 1U)
                                          ? _mm512_set1_epi64(-1)
                                          : _mm512_setzero_si512();
                    for (int v = 0; v < NV; ++v) {
                        store(dst, v, c);
                    }
                    break;
                }
                // Shannon mux fold on ZMM registers; each mux level is a
                // single VPTERNLOGQ (imm 0xCA: x ? hi : lo).
                __m512i buf[32 * NV];
                {
                    const std::uint64_t* xs = slot_ptr(a[0]);
                    const __m512i ones = _mm512_set1_epi64(-1);
                    const int half = 1 << (k - 1);
                    for (int t = 0; t < half; ++t) {
                        const bool b0 = (truth >> (2 * t)) & 1U;
                        const bool b1 = (truth >> (2 * t + 1)) & 1U;
                        __m512i* e = buf + static_cast<std::size_t>(t) * NV;
                        for (int v = 0; v < NV; ++v) {
                            const __m512i x = vec(xs, v);
                            e[v] = b0 ? (b1 ? ones : _mm512_xor_si512(x, ones))
                                      : (b1 ? x : _mm512_setzero_si512());
                        }
                    }
                }
                int entries = 1 << (k - 1);
                for (int j = 1; j < k; ++j) {
                    const std::uint64_t* xs = slot_ptr(a[j]);
                    entries >>= 1;
                    for (int t = 0; t < entries; ++t) {
                        const __m512i* lo =
                            buf + static_cast<std::size_t>(2 * t) * NV;
                        const __m512i* hi =
                            buf + static_cast<std::size_t>(2 * t + 1) * NV;
                        __m512i* e = buf + static_cast<std::size_t>(t) * NV;
                        for (int v = 0; v < NV; ++v) {
                            const __m512i x = vec(xs, v);
                            e[v] = _mm512_ternarylogic_epi64(x, hi[v], lo[v],
                                                             0xCA);
                        }
                    }
                }
                for (int v = 0; v < NV; ++v) {
                    store(dst, v, buf[v]);
                }
                break;
            }
        }
    }

    int o = 0;
    if (blocks == kStride) {
        // The inverse marshalling: eight output slots transpose back to one
        // 8-word row store per block (the tail beyond the last full eight
        // outputs stays scalar so the row store never crosses into the
        // next block's words).
        for (; o + 8 <= n_out; o += 8) {
            for (int v = 0; v < NV; ++v) {
                __m512i r[8];
                for (int j = 0; j < 8; ++j) {
                    r[j] = vec(slot_ptr(tape.output_slots[o + j]), v);
                }
                __m512i c[8];
                transpose8x8(r, c);
                for (int b = 0; b < 8; ++b) {
                    _mm512_storeu_si512(
                        out + static_cast<std::size_t>(v * 8 + b) * n_out + o,
                        c[b]);
                }
            }
        }
    }
    for (; o < n_out; ++o) {
        const std::uint64_t* src = slot_ptr(tape.output_slots[o]);
        for (int w = 0; w < blocks; ++w) {
            out[static_cast<std::size_t>(w) * n_out + o] = src[w];
        }
    }
}

void run_avx512(const TapeView& tape, const std::uint64_t* in,
                std::uint64_t* out, std::uint64_t* slots, int blocks) {
    switch ((blocks + 7) / 8) {
        case 1: run_tape<1>(tape, in, out, slots, blocks); break;
        case 2: run_tape<2>(tape, in, out, slots, blocks); break;
        default: break;  // unreachable: Program::run validates blocks
    }
}

static_assert(Program::kMaxBlocks == 16,
              "widen the run_avx512 vector-count switch with kMaxBlocks");

/// Fused sweep oracle, AVX-512 rung: the lane-reference schoolbook runs
/// column-strip-wise — eight consecutive partial-product words live in one
/// ZMM accumulator, d[t0+s] = XOR over i of a_i & b[t0+s-i], built as one
/// VPTERNLOGQ (imm 0x78) per contributing i from a zero-padded read-only
/// copy of the B words and stored exactly once per strip.  Keeping the
/// accumulator in a register and loading only from the padded copy avoids
/// the partially-overlapping store-to-load forwarding stalls a row-major
/// in-memory accumulate would pay on every iteration.  The reduction
/// columns and the compare stay scalar (their supports are short and
/// ragged); the word *values* are identical to the scalar rung — XOR
/// accumulation is order-free — which is what the guard screen checks.
///
/// Both scratch regions are software-pipelined so no load ever lands on a
/// ZMM store still sitting in the store buffer (wide-store -> narrow-load
/// and straddling-load forwarding stalls cost more than the strips
/// themselves at small m): the operand copy for block b+1 is written
/// after block b's strips have read the previous copy, and the scalar
/// column reads of block b-1 run only after block b's strip stores are
/// issued.
void oracle_avx512(const SweepOracleView& ov, const std::uint64_t* in,
                   const std::uint64_t* got, std::uint64_t* diff,
                   std::uint64_t* dwork, int blocks) {
    const int m = ov.m;
    const int dn = 2 * m - 1;
    if (blocks <= 0) {
        return;
    }
    // dwork layout (>= 8m + 64 words): bp buffers of m + 16 words each
    // (8 zero words, the m B words, 8 zero words) — two for the general
    // path below, four when the small-m path re-slices the same region for
    // its pair pipeline — then two d buffers of 2m + 8 words each (dn plus
    // 7 spill words — strip stores are full ZMM), double-buffered for the
    // one-block pipelines.
    std::uint64_t* const bpbuf[2] = {dwork, dwork + (m + 16)};
    std::uint64_t* const dbuf[2] = {dwork + 2 * (m + 16),
                                    dwork + 2 * (m + 16) + (2 * m + 8)};
    const __m512i z = _mm512_setzero_si512();
    const auto copy_bp = [&](const std::uint64_t* b, std::uint64_t* bp) {
        _mm512_storeu_si512(bp, z);
        int j = 0;
        for (; j + 8 <= m; j += 8) {
            _mm512_storeu_si512(bp + 8 + j, _mm512_loadu_si512(b + j));
        }
        for (; j < m; ++j) {  // scalar tail: never read past b
            bp[8 + j] = b[j];
        }
        _mm512_storeu_si512(bp + 8 + m, z);
    };
    const auto reduce = [&](const std::uint64_t* d,
                            const std::uint64_t* g) noexcept {
        std::uint64_t any = 0;
        for (int k = 0; k < m; ++k) {
            std::uint64_t c = d[k];
            const std::int32_t lo = ov.red_offsets[k];
            const std::int32_t hi = ov.red_offsets[k + 1];
            for (std::int32_t t = lo; t < hi; ++t) {
                c ^= d[m + static_cast<std::size_t>(ov.red_indices[t])];
            }
            any |= c ^ g[k];
        }
        return any;
    };
    copy_bp(in + m, bpbuf[0]);
    // Small-m fast path — the exhaustive regime (every field with at most
    // 2^8 elements): dn <= 15, so the whole partial-product vector lives in
    // two strip accumulators and never touches memory.  The reduction
    // becomes one masked lane-broadcast XOR per contributing hi word
    // (kbits[p] = the k-columns position p feeds, inverted once from the
    // offsets/indices view), and the compare is a masked reduce-OR — the
    // same OR-of-differences word the scalar rung computes, with no
    // wide-store/narrow-load traffic at all.
    if (m <= 8) {
        const __mmask8 kmask = static_cast<__mmask8>((1U << m) - 1U);
        // XOR, not OR: a position listed twice in one column cancels in the
        // scalar rung's XOR chain, so the broadcast mask keeps the parity.
        __mmask8 kbits[16] = {};
        for (int k = 0; k < m; ++k) {
            for (std::int32_t t = ov.red_offsets[k]; t < ov.red_offsets[k + 1];
                 ++t) {
                kbits[m + ov.red_indices[t]] ^=
                    static_cast<__mmask8>(1U << k);
            }
        }
        // Four bp slots (4(m+16) <= the 8m+64 contract at m <= 8): blocks
        // run in interleaved pairs — each block's strip and reduction
        // chains are serial (the whole point of this path is staying in
        // registers), so pairing doubles the exploitable ILP — and the
        // pair's two operand copies are pipelined one pair ahead.
        std::uint64_t* const bp4[4] = {dwork, dwork + (m + 16),
                                       dwork + 2 * (m + 16),
                                       dwork + 3 * (m + 16)};
        const auto load_av = [&](const std::uint64_t* a, __m512i av[8]) {
            for (int i = 0; i < m; ++i) {  // each a_i feeds both strips
                av[i] = _mm512_set1_epi64(static_cast<long long>(a[i]));
            }
        };
        // Compare via one masked lane-broadcast XOR per contributing hi
        // word; two alternating accumulators halve the serial chain (XOR
        // merging them at the end is order-free).
        const auto reduce_acc = [&](const __m512i acc[2],
                                    const std::uint64_t* g) noexcept {
            __m512i cmp = _mm512_xor_si512(
                acc[0], _mm512_maskz_loadu_epi64(kmask, g));
            __m512i cmp2 = z;
            for (int p = m; p < dn; ++p) {
                if (kbits[p] == 0) {
                    continue;
                }
                const __m512i bc = _mm512_permutexvar_epi64(
                    _mm512_set1_epi64(p & 7), acc[p >> 3]);
                if ((p ^ m) & 1) {
                    cmp2 = _mm512_mask_xor_epi64(cmp2, kbits[p], cmp2, bc);
                } else {
                    cmp = _mm512_mask_xor_epi64(cmp, kbits[p], cmp, bc);
                }
            }
            return _mm512_mask_reduce_or_epi64(kmask,
                                               _mm512_xor_si512(cmp, cmp2));
        };
        if (blocks > 1) {
            copy_bp(in + 2 * m + m, bp4[1]);
        }
        int blk = 0;
        for (; blk + 1 < blocks; blk += 2) {
            const std::uint64_t* a0 =
                in + static_cast<std::size_t>(blk) * 2 * m;
            const std::uint64_t* a1 = a0 + 2 * m;
            const std::uint64_t* bp0 = bp4[blk & 3];
            const std::uint64_t* bp1 = bp4[(blk + 1) & 3];
            __m512i av0[8];
            __m512i av1[8];
            load_av(a0, av0);
            load_av(a1, av1);
            __m512i acc0[2] = {z, z};
            __m512i acc1[2] = {z, z};
            for (int t0 = 0; t0 < dn; t0 += 8) {
                __m512i s0 = z;
                __m512i s1 = z;
                const int ilo = t0 - m + 1 > 0 ? t0 - m + 1 : 0;
                const int ihi = t0 + 7 < m - 1 ? t0 + 7 : m - 1;
                for (int i = ilo; i <= ihi; ++i) {
                    s0 = _mm512_ternarylogic_epi64(
                        s0, av0[i], _mm512_loadu_si512(bp0 + 8 + t0 - i), 0x78);
                    s1 = _mm512_ternarylogic_epi64(
                        s1, av1[i], _mm512_loadu_si512(bp1 + 8 + t0 - i), 0x78);
                }
                acc0[t0 >> 3] = s0;
                acc1[t0 >> 3] = s1;
            }
            if (blk + 2 < blocks) {
                copy_bp(in + static_cast<std::size_t>(blk + 2) * 2 * m + m,
                        bp4[(blk + 2) & 3]);
            }
            if (blk + 3 < blocks) {
                copy_bp(in + static_cast<std::size_t>(blk + 3) * 2 * m + m,
                        bp4[(blk + 3) & 3]);
            }
            diff[blk] = reduce_acc(acc0, got + static_cast<std::size_t>(blk) * m);
            diff[blk + 1] =
                reduce_acc(acc1, got + static_cast<std::size_t>(blk + 1) * m);
        }
        if (blk < blocks) {  // odd tail
            const std::uint64_t* a = in + static_cast<std::size_t>(blk) * 2 * m;
            const std::uint64_t* bp = bp4[blk & 3];
            __m512i av[8];
            load_av(a, av);
            __m512i acc[2] = {z, z};
            for (int t0 = 0; t0 < dn; t0 += 8) {
                __m512i s = z;
                const int ilo = t0 - m + 1 > 0 ? t0 - m + 1 : 0;
                const int ihi = t0 + 7 < m - 1 ? t0 + 7 : m - 1;
                for (int i = ilo; i <= ihi; ++i) {
                    s = _mm512_ternarylogic_epi64(
                        s, av[i], _mm512_loadu_si512(bp + 8 + t0 - i), 0x78);
                }
                acc[t0 >> 3] = s;
            }
            diff[blk] = reduce_acc(acc, got + static_cast<std::size_t>(blk) * m);
        }
        return;
    }
    for (int blk = 0; blk < blocks; ++blk) {
        const std::uint64_t* a = in + static_cast<std::size_t>(blk) * 2 * m;
        const std::uint64_t* bp = bpbuf[blk & 1];
        std::uint64_t* d = dbuf[blk & 1];
        for (int t0 = 0; t0 < dn; t0 += 8) {
            __m512i acc = z;
            const int ilo = t0 - m + 1 > 0 ? t0 - m + 1 : 0;
            const int ihi = t0 + 7 < m - 1 ? t0 + 7 : m - 1;
            for (int i = ilo; i <= ihi; ++i) {
                const __m512i av = _mm512_set1_epi64(static_cast<long long>(a[i]));
                const __m512i bv = _mm512_loadu_si512(bp + 8 + t0 - i);
                acc = _mm512_ternarylogic_epi64(acc, av, bv, 0x78);
            }
            _mm512_storeu_si512(d + t0, acc);
        }
        if (blk + 1 < blocks) {
            copy_bp(in + static_cast<std::size_t>(blk + 1) * 2 * m + m,
                    bpbuf[(blk + 1) & 1]);
        }
        if (blk > 0) {
            diff[blk - 1] = reduce(dbuf[(blk - 1) & 1],
                                   got + static_cast<std::size_t>(blk - 1) * m);
        }
    }
    diff[blocks - 1] = reduce(dbuf[(blocks - 1) & 1],
                              got + static_cast<std::size_t>(blocks - 1) * m);
}

const TapeKernel kTapeAvx512{Backend::Avx512, /*word_lanes=*/8, &run_avx512,
                             &oracle_avx512};

}  // namespace

const TapeKernel* avx512_tape_kernel() noexcept { return &kTapeAvx512; }

}  // namespace gfr::exec

#else  // !GFR_EXEC_HAVE_AVX512

namespace gfr::exec {

const TapeKernel* avx512_tape_kernel() noexcept { return nullptr; }

}  // namespace gfr::exec

#endif
