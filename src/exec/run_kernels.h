#ifndef GFR_EXEC_RUN_KERNELS_H
#define GFR_EXEC_RUN_KERNELS_H

// SIMD tape execution backends: the ISA-specific executors behind
// exec::Program::run, plus the process-wide runtime dispatch selecting them.
//
// The tape semantics are fixed by the scalar executor (the PR-4 u64 loop,
// now living in run_kernels_scalar.cpp); the AVX2 / AVX-512 backends run the
// *same* instruction stream but process a sweep's blocks as 256- / 512-bit
// vectors — four or eight 64-lane blocks per word-op — so one pass over a
// 16-block sweep touches each instruction once for up to 1024 test vectors.
//
// Layout contract shared by every backend: the slot arena is an array of
// `slot_count` slots of `stride` words each, where
//
//     stride = round_up(blocks, word_lanes)          (word_lanes: 1 / 4 / 8)
//
// and the arena base is 64-byte aligned (Program::Scratch guarantees both).
// Pad words (blocks < stride) compute garbage that is never stored: input
// loads zero them once, every instruction processes whole vectors, and the
// output store copies exactly `blocks` words per port.  Because outputs are
// copied per-block, all backends are bit-identical by construction wherever
// they are correct — which is exactly what the guard self-test screens.
//
// Dispatch discipline (same as src/bulk): each SIMD backend lives in its own
// translation unit compiled with its own -m flags (GFR_EXEC_HAVE_*, skipped
// under GFR_BULK_PORTABLE_ONLY or non-x86 toolchains); the pure policy
// make_exec_dispatch can never select a backend the running CPU+OS do not
// support; GFR_EXEC_FORCE_SCALAR pins the scalar executor at first use; and
// exec::dispatch() screens its selection through the guard quarantine ladder
// (guard/exec_check.h) before any caller can observe it, so a faulty vector
// backend degrades to scalar, never to wrong answers.

#include "bulk/cpu.h"
#include "exec/program.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gfr::exec {

/// Which ISA a tape executor is built on.  Scalar is always available.
/// Adding an enumerator is a compile error (-Werror=switch, no defaults)
/// until every dispatch table in exec/dispatch.cpp handles it.
enum class Backend : std::uint8_t { Scalar, Avx2, Avx512 };

[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// True when the running CPU (per `f`) can execute this backend.
[[nodiscard]] bool backend_supported(Backend backend,
                                     const bulk::CpuFeatures& f) noexcept;

/// Read-only view of a compiled tape, the executor-facing flattening of
/// Program's internals (Program::tape_view()).  POD pointers so the kernel
/// translation units need no access to Program's private state.
struct TapeView {
    const Program::Insn* insns = nullptr;
    std::size_t n_insns = 0;
    const std::uint32_t* args = nullptr;
    const std::uint64_t* truths = nullptr;
    /// (input index, slot) pairs for every input the tape actually reads.
    const std::pair<std::uint32_t, std::uint32_t>* input_loads = nullptr;
    std::size_t n_input_loads = 0;
    const std::uint32_t* output_slots = nullptr;
    int n_inputs = 0;
    int n_outputs = 0;
    std::uint32_t slot_count = 0;
    bool uses_zero_slot = false;
};

/// Execute `tape` over `blocks` blocks of 64 lanes (block-major in/out, see
/// Program::run).  `slots` is the 64-byte-aligned arena described above,
/// sized slot_count * round_up(blocks, word_lanes) words.
using TapeRunFn = void (*)(const TapeView& tape, const std::uint64_t* in,
                           std::uint64_t* out, std::uint64_t* slots, int blocks);

/// Reduction structure for the fused sweep oracle: the Mastrovito
/// reduction-column supports T(k), flattened exactly as
/// verify::LaneReference stores them (indices[offsets[k] .. offsets[k+1])
/// are the i with Q[i][k] = 1).  POD pointers so the kernel translation
/// units take no dependency on the verify tier.
struct SweepOracleView {
    const std::int32_t* red_indices = nullptr;  ///< T(k) supports, flattened
    const std::int32_t* red_offsets = nullptr;  ///< m+1 offsets into indices
    int m = 0;
};

/// Fused sweep oracle: for each of `blocks` blocks (block-major `in`, 2m
/// lane-major words each), evaluate the lane-reference product — schoolbook
/// partials then the reduction columns — and compare against the tape's
/// outputs `got` (block-major, m words per block): diff[b] is the OR of
/// every coefficient's 64-lane difference, so block b verifies iff
/// diff[b] == 0.  `dwork` is caller-owned scratch of at least 8m + 64
/// words, reused across blocks; its internal layout is the kernel's own
/// (the vector rungs double-buffer both a zero-padded operand copy and
/// the partial products, so no load — strip, column, or compare — ever
/// lands on a wide store still in flight from the same block).
/// The scalar rung is the reference word-op sequence (bit-for-bit
/// verify::LaneReference::products + compare); vector rungs differ only in
/// row-op width and are screened by the guard tier alongside the tape
/// executor, so a verdict can never ride an unscreened SIMD path.
using OracleRunFn = void (*)(const SweepOracleView& oracle,
                             const std::uint64_t* in, const std::uint64_t* got,
                             std::uint64_t* diff, std::uint64_t* dwork,
                             int blocks);

struct TapeKernel {
    Backend backend = Backend::Scalar;
    /// Words per vector register (1 / 4 / 8): the slot stride granule.
    int word_lanes = 1;
    TapeRunFn run = nullptr;
    OracleRunFn oracle = nullptr;
};

/// The portable scalar executor (always compiled) — the reference semantics
/// every vector backend is screened against.
extern const TapeKernel kTapeScalar;

// Defined by their translation units; return nullptr when the TU was
// compiled without its ISA (non-x86 target or GFR_BULK_PORTABLE_ONLY).
[[nodiscard]] const TapeKernel* avx2_tape_kernel() noexcept;
[[nodiscard]] const TapeKernel* avx512_tape_kernel() noexcept;

/// Backends compiled into this binary, Scalar first.  The differential
/// tests sweep these (running only the ones backend_supported() allows).
[[nodiscard]] std::vector<Backend> compiled_tape_backends();

/// The compiled executor of `backend` (Scalar included), or nullptr.
[[nodiscard]] const TapeKernel* tape_kernel(Backend backend) noexcept;

/// The backend selection for one (CPU, policy) pair.  `kernel` always
/// points at an executor (scalar at worst).
struct ExecDispatch {
    bulk::CpuFeatures cpu;
    bool forced_scalar = false;
    const TapeKernel* kernel = nullptr;
};

/// Pure selection logic: the best compiled backend the features allow
/// (avx512 > avx2 > scalar).  Exposed so tests can pin the
/// never-select-unsupported-ISA property against arbitrary feature sets.
[[nodiscard]] ExecDispatch make_exec_dispatch(const bulk::CpuFeatures& f,
                                              bool force_scalar) noexcept;

/// Environment knob pinning the scalar executor (parsed with
/// bulk::env_flag_enabled: empty/"0"/"off"/"false"/"no" mean unset).
inline constexpr const char* kExecForceScalarEnv = "GFR_EXEC_FORCE_SCALAR";

/// The process-wide backend: CPU probed and GFR_EXEC_FORCE_SCALAR read
/// once, on first call.  The selection is screened against the scalar
/// executor on golden tapes before it is returned (guard/exec_check.h); a
/// failing backend is quarantined and the next rung takes its place.
[[nodiscard]] const ExecDispatch& dispatch();

}  // namespace gfr::exec

#endif  // GFR_EXEC_RUN_KERNELS_H
