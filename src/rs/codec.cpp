#include "rs/codec.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace gfr::rs {

namespace {

Matrix build_parity(const field::FieldOps& ops, int n, int k,
                    GeneratorKind kind) {
    return kind == GeneratorKind::Cauchy ? cauchy_parity_matrix(ops, n, k)
                                         : vandermonde_parity_matrix(ops, n, k);
}

template <typename Span>
void check_equal_lengths(const std::vector<Span>& shards, std::size_t len) {
    for (const auto& s : shards) {
        if (s.size() != len) {
            throw std::invalid_argument{"rs::Codec: shard lengths differ"};
        }
    }
}

}  // namespace

Codec::Codec(const field::FieldOps& ops, int n, int k, GeneratorKind kind)
    : ops_{&ops}, n_{n}, k_{k}, kind_{kind}, engine_{ops},
      parity_{build_parity(ops, n, k, kind)} {
    prepared_.reserve(static_cast<std::size_t>(parity_shards()) * k_);
    for (const std::uint64_t c : parity_.a) {
        prepared_.push_back(engine_.prepare(c));
    }
}

Codec::Codec(const field::FieldOps& ops, int n, int k, GeneratorKind kind,
             bulk::KernelKind forced)
    : ops_{&ops}, n_{n}, k_{k}, kind_{kind}, engine_{ops, forced},
      parity_{build_parity(ops, n, k, kind)} {
    prepared_.reserve(static_cast<std::size_t>(parity_shards()) * k_);
    for (const std::uint64_t c : parity_.a) {
        prepared_.push_back(engine_.prepare(c));
    }
}

template <typename T>
void Codec::encode_impl(const std::vector<std::span<const T>>& data,
                        const std::vector<std::span<T>>& parity) const {
    if (static_cast<int>(data.size()) != k_) {
        throw std::invalid_argument{"rs::Codec::encode: expected k data shards"};
    }
    if (static_cast<int>(parity.size()) != parity_shards()) {
        throw std::invalid_argument{
            "rs::Codec::encode: expected n-k parity shards"};
    }
    const std::size_t len = data.empty() ? 0 : data[0].size();
    check_equal_lengths(data, len);
    check_equal_lengths(parity, len);
    for (int r = 0; r < parity_shards(); ++r) {
        const auto* row = prepared_.data() + static_cast<std::size_t>(r) * k_;
        engine_.mul_region(row[0], data[0], parity[r]);
        for (int c = 1; c < k_; ++c) {
            engine_.addmul_region(row[c], data[c], parity[r]);
        }
    }
}

template <typename T>
void Codec::decode_impl(const std::vector<std::span<T>>& shards,
                        const std::vector<bool>& present) const {
    if (static_cast<int>(shards.size()) != n_) {
        throw std::invalid_argument{"rs::Codec::decode: expected n shards"};
    }
    if (static_cast<int>(present.size()) != n_) {
        throw std::invalid_argument{
            "rs::Codec::decode: present flags must have n entries"};
    }
    const std::size_t len = shards.empty() ? 0 : shards[0].size();
    check_equal_lengths(shards, len);
    const int present_count =
        static_cast<int>(std::count(present.begin(), present.end(), true));
    if (present_count < k_) {
        throw std::invalid_argument{
            "rs::Codec::decode: fewer than k shards present"};
    }

    std::vector<int> lost_data;
    for (int i = 0; i < k_; ++i) {
        if (!present[i]) {
            lost_data.push_back(i);
        }
    }

    if (!lost_data.empty()) {
        // k survivors, data shards first (each contributes a unit row, so
        // the inverse stays sparse there), then the lowest-index parity
        // shards to fill up.
        std::vector<int> survivors;
        for (int i = 0; i < k_ && static_cast<int>(survivors.size()) < k_; ++i) {
            if (present[i]) {
                survivors.push_back(i);
            }
        }
        for (int i = k_; i < n_ && static_cast<int>(survivors.size()) < k_;
             ++i) {
            if (present[i]) {
                survivors.push_back(i);
            }
        }
        // Rows of [I ; P] for the chosen survivors: solving M * d = s
        // recovers the full data vector d from the survivor shards s.
        Matrix m(k_, k_);
        for (int t = 0; t < k_; ++t) {
            const int s = survivors[t];
            if (s < k_) {
                m.at(t, s) = 1;
            } else {
                for (int c = 0; c < k_; ++c) {
                    m.at(t, c) = parity_.at(s - k_, c);
                }
            }
        }
        const Matrix minv = invert(*ops_, m);
        // d_j = sum_t minv[j][t] * shard(survivor_t); zero coefficients
        // (the unit-row structure above makes them common) skip their
        // region pass entirely.
        for (const int j : lost_data) {
            std::fill(shards[j].begin(), shards[j].end(), T{0});
            for (int t = 0; t < k_; ++t) {
                const std::uint64_t coeff = minv.at(j, t);
                if (coeff == 0) {
                    continue;
                }
                const auto p = engine_.prepare(coeff);
                engine_.addmul_region(
                    p, std::span<const T>{shards[survivors[t]]}, shards[j]);
            }
        }
    }

    // Parity regeneration from the (now complete) data shards.
    for (int r = 0; r < parity_shards(); ++r) {
        if (present[k_ + r]) {
            continue;
        }
        const auto* row = prepared_.data() + static_cast<std::size_t>(r) * k_;
        engine_.mul_region(row[0], std::span<const T>{shards[0]},
                           shards[k_ + r]);
        for (int c = 1; c < k_; ++c) {
            engine_.addmul_region(row[c], std::span<const T>{shards[c]},
                                  shards[k_ + r]);
        }
    }
}

void Codec::encode(const std::vector<std::span<const std::uint8_t>>& data,
                   const std::vector<std::span<std::uint8_t>>& parity) const {
    encode_impl(data, parity);
}
void Codec::encode(const std::vector<std::span<const std::uint16_t>>& data,
                   const std::vector<std::span<std::uint16_t>>& parity) const {
    encode_impl(data, parity);
}
void Codec::encode(const std::vector<std::span<const std::uint64_t>>& data,
                   const std::vector<std::span<std::uint64_t>>& parity) const {
    encode_impl(data, parity);
}

void Codec::decode(const std::vector<std::span<std::uint8_t>>& shards,
                   const std::vector<bool>& present) const {
    decode_impl(shards, present);
}
void Codec::decode(const std::vector<std::span<std::uint16_t>>& shards,
                   const std::vector<bool>& present) const {
    decode_impl(shards, present);
}
void Codec::decode(const std::vector<std::span<std::uint64_t>>& shards,
                   const std::vector<bool>& present) const {
    decode_impl(shards, present);
}

}  // namespace gfr::rs
