#ifndef GFR_RS_RS_MATRIX_H
#define GFR_RS_RS_MATRIX_H

// Dense element matrices over a single-word GF(2^m) — the linear-algebra
// tier of the Reed-Solomon codec (src/rs/codec.h).
//
// Two generator families, both systematic ([I ; P] with P the parity rows
// returned here) and both MDS, so any k of the n code shards reconstruct
// the stripe:
//
//   - Cauchy: P[r][c] = 1 / (x_r + y_c) with x_r = k+r, y_c = c as field
//     elements — every square submatrix of a Cauchy matrix is itself
//     Cauchy (nonsingular), which makes the MDS property structural.
//   - Vandermonde: rows i of V[i][j] = alpha_i^j (alpha_i = i) for
//     i = 0..n-1, systematised as V * inv(V_top) — any k rows of V are a
//     Vandermonde minor on distinct points, hence invertible, and right-
//     multiplying by an invertible matrix preserves that.
//
// Both need n distinct field elements, so n <= 2^m.  The erasure decoder
// inverts the k x k survivor submatrix with the Gauss-Jordan routine below
// (exact arithmetic — no pivot-magnitude concerns in a finite field; any
// nonzero pivot does).

#include "field/field_ops.h"

#include <cstdint>
#include <vector>

namespace gfr::rs {

/// Row-major matrix of canonical single-word field elements.
struct Matrix {
    int rows = 0;
    int cols = 0;
    std::vector<std::uint64_t> a;  ///< rows * cols entries

    Matrix() = default;
    Matrix(int r, int c) : rows{r}, cols{c}, a(static_cast<std::size_t>(r) * c, 0) {}

    [[nodiscard]] std::uint64_t& at(int r, int c) noexcept {
        return a[static_cast<std::size_t>(r) * cols + c];
    }
    [[nodiscard]] std::uint64_t at(int r, int c) const noexcept {
        return a[static_cast<std::size_t>(r) * cols + c];
    }
};

/// The (n-k) x k Cauchy parity matrix described above.  Requires
/// 1 <= k < n and n <= 2^m (n distinct elements split into k data points
/// and n-k parity points); throws std::invalid_argument otherwise.
[[nodiscard]] Matrix cauchy_parity_matrix(const field::FieldOps& ops, int n,
                                          int k);

/// The (n-k) x k systematic-Vandermonde parity matrix described above.
/// Same preconditions as cauchy_parity_matrix.
[[nodiscard]] Matrix vandermonde_parity_matrix(const field::FieldOps& ops,
                                               int n, int k);

/// Gauss-Jordan inverse over GF(2^m).  Throws std::invalid_argument when
/// the matrix is not square or is singular ("rs::invert: matrix is
/// singular" — an erasure pattern no MDS code could decode, so reaching it
/// means the generator matrix was not MDS).
[[nodiscard]] Matrix invert(const field::FieldOps& ops, const Matrix& m);

/// Plain O(n^3) product, used by tests and the systematising step.
[[nodiscard]] Matrix mat_mul(const field::FieldOps& ops, const Matrix& x,
                             const Matrix& y);

}  // namespace gfr::rs

#endif  // GFR_RS_RS_MATRIX_H
