#ifndef GFR_RS_CODEC_H
#define GFR_RS_CODEC_H

// rs::Codec — the systematic Reed-Solomon erasure codec over the bulk
// region engine.  This is the storage-workload face of the paper's
// reconfigurable GF(2^m) multipliers: one codec instance is an (n, k) MDS
// code over a caller-chosen field (any irreducible modulus with m <= 64 —
// reconfigurability is the point), encoding k data shards into n-k parity
// shards and reconstructing ANY <= n-k lost shards from the survivors.
//
//   encode:  parity[r] = sum_c P[r][c] * data[c]   (region addmuls)
//   decode:  pick k surviving rows of [I ; P], invert that k x k matrix
//            over GF(2^m) (rs_matrix.h), and region-multiply the survivor
//            shards by the inverse rows to rebuild each lost data shard;
//            lost parity is then re-encoded from the completed data.
//
// Shard layouts follow the field degree, one symbol per element:
//   - m <= 8:       std::uint8_t shards (byte layout; SSSE3/AVX2/GFNI
//                   kernels via bulk::dispatch)
//   - 8 < m <= 16:  std::uint16_t shards (the GF(2^16) tier's dense
//                   layout; split-byte tables)
//   - m <= 64:      std::uint64_t shards (one canonical element per word;
//                   VPCLMULQDQ or window-walk kernels)
//
// All region traffic goes through ONE RegionEngine constructed with the
// codec (kernel selection happens once); the forcing constructor pins a
// kernel kind exactly like RegionEngine's, which is how the tests and the
// BENCH_8 bench hold every SIMD path bit-identical to forced-scalar.
//
// Thread-safety: immutable after construction; decode builds its survivor
// inverse on the stack, so const calls are safe concurrently.

#include "bulk/region_engine.h"
#include "rs/rs_matrix.h"

#include <cstdint>
#include <span>
#include <vector>

namespace gfr::rs {

/// Which MDS generator family builds the parity matrix (rs_matrix.h).
enum class GeneratorKind { Cauchy, Vandermonde };

class Codec {
public:
    /// (n, k) code over ops' field, auto-selected region kernels.
    /// Throws std::invalid_argument unless 1 <= k < n, n <= 2^m, m <= 64.
    Codec(const field::FieldOps& ops, int n, int k,
          GeneratorKind kind = GeneratorKind::Cauchy);

    /// Same, but pins the region-kernel kind (tests/benches); throws what
    /// RegionEngine's forcing constructor throws for bad kinds.
    Codec(const field::FieldOps& ops, int n, int k, GeneratorKind kind,
          bulk::KernelKind forced);

    [[nodiscard]] int n() const noexcept { return n_; }
    [[nodiscard]] int k() const noexcept { return k_; }
    [[nodiscard]] int parity_shards() const noexcept { return n_ - k_; }
    [[nodiscard]] GeneratorKind generator_kind() const noexcept { return kind_; }
    [[nodiscard]] const Matrix& parity_matrix() const noexcept { return parity_; }
    [[nodiscard]] const bulk::RegionEngine& engine() const noexcept {
        return engine_;
    }

    // --- encode: data.size() == k, parity.size() == n-k, equal lengths ----
    // Layout must match the field degree (see the header comment); the
    // wrong layout throws the RegionEngine's layout gate.

    void encode(const std::vector<std::span<const std::uint8_t>>& data,
                const std::vector<std::span<std::uint8_t>>& parity) const;
    void encode(const std::vector<std::span<const std::uint16_t>>& data,
                const std::vector<std::span<std::uint16_t>>& parity) const;
    void encode(const std::vector<std::span<const std::uint64_t>>& data,
                const std::vector<std::span<std::uint64_t>>& parity) const;

    // --- decode: shards.size() == n (data then parity), present.size() == n
    // Every shard span must be allocated (equal lengths) — missing shards'
    // contents are ignored on input and fully rewritten.  Reconstructs all
    // absent shards in place; throws std::invalid_argument when fewer than
    // k shards are present (more than n-k erasures is beyond any MDS code).

    void decode(const std::vector<std::span<std::uint8_t>>& shards,
                const std::vector<bool>& present) const;
    void decode(const std::vector<std::span<std::uint16_t>>& shards,
                const std::vector<bool>& present) const;
    void decode(const std::vector<std::span<std::uint64_t>>& shards,
                const std::vector<bool>& present) const;

private:
    template <typename T>
    void encode_impl(const std::vector<std::span<const T>>& data,
                     const std::vector<std::span<T>>& parity) const;
    template <typename T>
    void decode_impl(const std::vector<std::span<T>>& shards,
                     const std::vector<bool>& present) const;

    const field::FieldOps* ops_;
    int n_;
    int k_;
    GeneratorKind kind_;
    bulk::RegionEngine engine_;
    Matrix parity_;  ///< (n-k) x k
    /// Prepared per parity coefficient, row-major (n-k) x k — built once,
    /// shared by every encode call and the parity-regeneration decode step.
    std::vector<bulk::RegionEngine::Prepared> prepared_;
};

}  // namespace gfr::rs

#endif  // GFR_RS_CODEC_H
