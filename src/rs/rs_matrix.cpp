#include "rs/rs_matrix.h"

#include <stdexcept>

namespace gfr::rs {

namespace {

void check_code_shape(const field::FieldOps& ops, int n, int k) {
    if (k < 1 || n <= k) {
        throw std::invalid_argument{"rs: requires 1 <= k < n"};
    }
    if (!ops.single_word()) {
        throw std::invalid_argument{"rs: field degree must be <= 64"};
    }
    const int m = ops.degree();
    if (m < 31 && static_cast<std::int64_t>(n) > (std::int64_t{1} << m)) {
        throw std::invalid_argument{
            "rs: n exceeds the field size (need n <= 2^m distinct elements)"};
    }
}

}  // namespace

Matrix cauchy_parity_matrix(const field::FieldOps& ops, int n, int k) {
    check_code_shape(ops, n, k);
    const int p = n - k;
    Matrix m(p, k);
    for (int r = 0; r < p; ++r) {
        // x_r = k+r and y_c = c are distinct by construction, so the XOR
        // is never zero and every entry has an inverse.
        const auto x = static_cast<std::uint64_t>(k + r);
        for (int c = 0; c < k; ++c) {
            m.at(r, c) = ops.inv(x ^ static_cast<std::uint64_t>(c));
        }
    }
    return m;
}

Matrix vandermonde_parity_matrix(const field::FieldOps& ops, int n, int k) {
    check_code_shape(ops, n, k);
    // V[i][j] = alpha_i^j over distinct points alpha_i = i.
    Matrix v(n, k);
    for (int i = 0; i < n; ++i) {
        const auto alpha = static_cast<std::uint64_t>(i);
        std::uint64_t pw = 1;
        for (int j = 0; j < k; ++j) {
            v.at(i, j) = pw;
            pw = ops.mul(pw, alpha);
        }
    }
    // Systematise: G = V * inv(V_top) has I in its top k rows; the parity
    // rows are the bottom (n-k) rows of that product.
    Matrix top(k, k);
    for (int i = 0; i < k; ++i) {
        for (int j = 0; j < k; ++j) {
            top.at(i, j) = v.at(i, j);
        }
    }
    const Matrix top_inv = invert(ops, top);
    Matrix bottom(n - k, k);
    for (int i = k; i < n; ++i) {
        for (int j = 0; j < k; ++j) {
            bottom.at(i - k, j) = v.at(i, j);
        }
    }
    return mat_mul(ops, bottom, top_inv);
}

Matrix invert(const field::FieldOps& ops, const Matrix& m) {
    if (m.rows != m.cols) {
        throw std::invalid_argument{"rs::invert: matrix must be square"};
    }
    const int n = m.rows;
    Matrix work = m;
    Matrix inv(n, n);
    for (int i = 0; i < n; ++i) {
        inv.at(i, i) = 1;
    }
    for (int col = 0; col < n; ++col) {
        int pivot = -1;
        for (int r = col; r < n; ++r) {
            if (work.at(r, col) != 0) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0) {
            throw std::invalid_argument{"rs::invert: matrix is singular"};
        }
        if (pivot != col) {
            for (int c = 0; c < n; ++c) {
                std::swap(work.at(pivot, c), work.at(col, c));
                std::swap(inv.at(pivot, c), inv.at(col, c));
            }
        }
        const std::uint64_t scale = ops.inv(work.at(col, col));
        for (int c = 0; c < n; ++c) {
            work.at(col, c) = ops.mul(scale, work.at(col, c));
            inv.at(col, c) = ops.mul(scale, inv.at(col, c));
        }
        for (int r = 0; r < n; ++r) {
            if (r == col) {
                continue;
            }
            const std::uint64_t f = work.at(r, col);
            if (f == 0) {
                continue;
            }
            for (int c = 0; c < n; ++c) {
                work.at(r, c) ^= ops.mul(f, work.at(col, c));
                inv.at(r, c) ^= ops.mul(f, inv.at(col, c));
            }
        }
    }
    return inv;
}

Matrix mat_mul(const field::FieldOps& ops, const Matrix& x, const Matrix& y) {
    if (x.cols != y.rows) {
        throw std::invalid_argument{"rs::mat_mul: shape mismatch"};
    }
    Matrix out(x.rows, y.cols);
    for (int i = 0; i < x.rows; ++i) {
        for (int j = 0; j < y.cols; ++j) {
            std::uint64_t acc = 0;
            for (int t = 0; t < x.cols; ++t) {
                acc ^= ops.mul(x.at(i, t), y.at(t, j));
            }
            out.at(i, j) = acc;
        }
    }
    return out;
}

}  // namespace gfr::rs
