#include "verify/lane_reference.h"

#include "mastrovito/reduction_matrix.h"

#include <stdexcept>

namespace gfr::verify {

LaneReference::LaneReference(const field::Field& field) : m_{field.degree()} {
    const mastrovito::ReductionMatrix q{field.modulus()};
    reduction_offsets_.reserve(static_cast<std::size_t>(m_) + 1);
    reduction_offsets_.push_back(0);
    for (int k = 0; k < m_; ++k) {
        for (const int i : q.t_indices_for_coefficient(k)) {
            reduction_indices_.push_back(i);
        }
        reduction_offsets_.push_back(static_cast<std::int32_t>(reduction_indices_.size()));
    }
}

void LaneReference::products(std::span<const std::uint64_t> in_words,
                             std::vector<std::uint64_t>& out_words,
                             Scratch& scratch) const {
    const std::size_t m = static_cast<std::size_t>(m_);
    if (in_words.size() != 2 * m) {
        throw std::invalid_argument{"LaneReference::products: need 2m input words"};
    }
    auto& d = scratch.d;
    d.assign(2 * m - 1, 0);
    const std::uint64_t* a = in_words.data();
    const std::uint64_t* b = in_words.data() + m;
    for (std::size_t i = 0; i < m; ++i) {
        const std::uint64_t ai = a[i];
        if (ai == 0) {
            continue;
        }
        std::uint64_t* row = d.data() + i;
        for (std::size_t j = 0; j < m; ++j) {
            row[j] ^= ai & b[j];
        }
    }
    out_words.resize(m);
    for (std::size_t k = 0; k < m; ++k) {
        std::uint64_t c = d[k];
        const std::int32_t lo = reduction_offsets_[k];
        const std::int32_t hi = reduction_offsets_[k + 1];
        for (std::int32_t t = lo; t < hi; ++t) {
            c ^= d[m + static_cast<std::size_t>(reduction_indices_[t])];
        }
        out_words[k] = c;
    }
}

}  // namespace gfr::verify
