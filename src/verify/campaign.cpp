#include "verify/campaign.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace gfr::verify {

int Campaign::worker_count(std::uint64_t total_sweeps) const noexcept {
    if (total_sweeps == 0) {
        return 1;
    }
    std::uint64_t requested =
        options_.threads > 0
            ? static_cast<std::uint64_t>(options_.threads)
            : static_cast<std::uint64_t>(
                  std::max(1U, std::thread::hardware_concurrency()));
    const std::uint64_t per = std::max<std::uint64_t>(1, options_.min_sweeps_per_worker);
    requested = std::min(requested, std::max<std::uint64_t>(1, total_sweeps / per));
    return static_cast<int>(std::min<std::uint64_t>(requested, 1024));
}

std::uint64_t Campaign::run(std::uint64_t total_sweeps,
                            const WorkerFactory& factory) const {
    if (total_sweeps == 0) {
        return kNoFailure;
    }
    const int workers = worker_count(total_sweeps);

    if (workers <= 1) {
        // Inline fast path: no threads, no atomics — a one-worker campaign
        // costs exactly what the pre-campaign scan did.
        SweepFn sweep = factory(0);
        for (std::uint64_t s = 0; s < total_sweeps; ++s) {
            if (sweep(s)) {
                return s;
            }
        }
        return kNoFailure;
    }

    const std::uint64_t chunk = std::max<std::uint64_t>(1, options_.chunk);
    std::atomic<std::uint64_t> cursor{0};
    std::atomic<std::uint64_t> first_failure{kNoFailure};
    std::atomic<bool> aborted{false};
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));

    const auto worker_body = [&](int worker_id) {
        try {
            SweepFn sweep = factory(worker_id);
            for (;;) {
                const std::uint64_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
                if (begin >= total_sweeps ||
                    begin >= first_failure.load(std::memory_order_acquire) ||
                    aborted.load(std::memory_order_acquire)) {
                    // The cursor is monotonic, so every chunk this worker
                    // could still claim lies above `begin`: nothing below
                    // the published minimum is left for it.
                    return;
                }
                const std::uint64_t end = std::min(begin + chunk, total_sweeps);
                for (std::uint64_t s = begin; s < end; ++s) {
                    if (s >= first_failure.load(std::memory_order_acquire) ||
                        aborted.load(std::memory_order_relaxed)) {
                        break;
                    }
                    if (sweep(s)) {
                        // Publish as a running minimum; the worker's own
                        // indices only grow, so it is done after one hit.
                        std::uint64_t seen = first_failure.load(std::memory_order_relaxed);
                        while (s < seen && !first_failure.compare_exchange_weak(
                                               seen, s, std::memory_order_acq_rel)) {
                        }
                        return;
                    }
                }
            }
        } catch (...) {
            errors[static_cast<std::size_t>(worker_id)] = std::current_exception();
            aborted.store(true, std::memory_order_release);
        }
    };

    {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w) {
            pool.emplace_back(worker_body, w);
        }
        for (auto& t : pool) {
            t.join();
        }
    }

    for (auto& e : errors) {
        if (e) {
            std::rethrow_exception(e);
        }
    }
    return first_failure.load(std::memory_order_acquire);
}

}  // namespace gfr::verify
