#ifndef GFR_VERIFY_LANE_REFERENCE_H
#define GFR_VERIFY_LANE_REFERENCE_H

// Bitsliced (lane-parallel) reference multiplier for verification sweeps.
//
// A verification sweep carries 64 independent operand pairs in lane-major
// words: word i holds bit i of A across all 64 lanes, word m+j holds bit j
// of B.  Instead of transposing lanes out and multiplying them one element
// at a time, LaneReference evaluates the schoolbook product and the
// Mastrovito reduction directly on the lane words —
//
//     d_k = sum_{i+j=k} a_i & b_j            (partial products, bitwise)
//     c_k = d_k  ^  sum_{i in T(k)} d_{m+i}  (reduction-matrix columns)
//
// — computing all 64 reference products in m^2 word operations with no
// per-lane work at all.  The output is already lane-major, so comparing
// against a simulated netlist is m word XORs.  Nothing here depends on the
// field fitting one machine word (one *word per bit*, not per element), so
// it serves as the sweep oracle across the multi-word regime too: the
// per-lane engine fallback pays 2m bit-extractions per lane to transpose
// operands out and m more to gather the netlist output back, which
// dominates its engine muls at every practical degree (measured 26x slower
// at m=163, 8x at m=571; VerifyOptions::lane_oracle_max_degree picks the
// oracle).
//
// The arithmetic here shares nothing with FieldOps (no clmul, no window
// tables, no fold clusters) — it is an independent implementation derived
// only from the reduction matrix, which keeps the verification oracle
// structurally separate from the engine it helps check.

#include "field/gf2m.h"

#include <cstdint>
#include <span>
#include <vector>

namespace gfr::verify {

class LaneReference {
public:
    /// Precomputes the reduction-column supports T(k) for the field's
    /// modulus.  Immutable afterwards; share one instance across threads or
    /// give each worker its own (products() needs a caller-owned scratch
    /// either way).
    explicit LaneReference(const field::Field& field);

    [[nodiscard]] int m() const noexcept { return m_; }

    /// The flattened reduction structure, exactly as exec::SweepOracleView
    /// wants it: indices[offsets[k] .. offsets[k+1]) are the i with
    /// Q[i][k] = 1.  Exposed so verify sweeps can hand the structure to the
    /// fused sweep-oracle kernels; the kernels recompute this class's exact
    /// word-op sequence, and products() below stays the scalar authority
    /// for failure extraction.
    [[nodiscard]] std::span<const std::int32_t> reduction_indices() const noexcept {
        return reduction_indices_;
    }
    [[nodiscard]] std::span<const std::int32_t> reduction_offsets() const noexcept {
        return reduction_offsets_;
    }

    /// Scratch for products(): the 2m-1 partial-product words.  One per
    /// worker; reused allocation-free across sweeps.
    struct Scratch {
        std::vector<std::uint64_t> d;
    };

    /// in_words: 2m lane-major words (a0..a(m-1), b0..b(m-1)).
    /// out_words: m lane-major product words c0..c(m-1) (resized on first
    /// use).  Every lane's product is the full reference C = A*B mod f.
    void products(std::span<const std::uint64_t> in_words,
                  std::vector<std::uint64_t>& out_words, Scratch& scratch) const;

private:
    int m_ = 0;
    // T(k) flattened: reduction_indices_[reduction_offsets_[k] ..
    // reduction_offsets_[k+1]) are the i with Q[i][k] = 1.
    std::vector<std::int32_t> reduction_indices_;
    std::vector<std::int32_t> reduction_offsets_;
};

}  // namespace gfr::verify

#endif  // GFR_VERIFY_LANE_REFERENCE_H
