#ifndef GFR_VERIFY_CAMPAIGN_H
#define GFR_VERIFY_CAMPAIGN_H

// Parallel verification campaign engine.
//
// Every verifier in this repo reduces to the same shape: a space of 64-lane
// "sweeps" (one word-parallel simulation plus a reference comparison), any
// one of which may surface a counterexample.  A Campaign shards that space
// across worker threads while keeping the *result* a pure function of the
// sweep space — never of the thread count or the scheduler:
//
//   - Sweeps are indexed 0..total-1.  Exhaustive regimes use the index as
//     the enumeration block; random regimes derive a per-sweep PRNG seed
//     from (campaign seed, sweep index) via derive_sweep_seed(), so sweep
//     contents are identical no matter which worker runs them.
//   - Workers claim contiguous chunks from an atomic cursor.  Each worker
//     owns its sweep state outright (simulator buffers, FieldOps::Scratch)
//     — the factory is called once per worker — while immutable inputs
//     (the Netlist, the Field) are shared freely.
//   - The first failure publishes its sweep index into an atomic running
//     minimum.  Sweeps at or above the published minimum are skipped, so a
//     failing campaign winds down early; sweeps *below* it are still
//     completed, which is exactly what makes the returned index the global
//     minimum — the same counterexample a single-threaded scan would find.
//
// The engine knows nothing about fields or netlists; mult::verify_multiplier
// and netlist::check_equivalence supply the sweep bodies.

#include <cstdint>
#include <functional>

namespace gfr::verify {

/// Sentinel for "no failing sweep".
inline constexpr std::uint64_t kNoFailure = ~std::uint64_t{0};

struct CampaignOptions {
    /// Worker threads.  <= 0 selects std::thread::hardware_concurrency().
    int threads = 0;
    /// Never spawn more workers than total_sweeps / this (tiny spaces run
    /// inline; a campaign of one sweep is just a function call).  Clients
    /// tune it to per-sweep cost: exhaustive regimes have microsecond
    /// sweeps and keep the default, random regimes pay a full multi-word
    /// product per lane and lower it so a 64-sweep campaign still shards.
    std::uint64_t min_sweeps_per_worker = 64;
    /// Sweeps claimed per atomic cursor fetch.  Large enough to keep the
    /// cursor cold, small enough that early cancellation bites.
    std::uint64_t chunk = 16;
};

/// Deterministic sharded sweep driver.  One Campaign is stateless between
/// runs and may itself be used from several threads at once.
class Campaign {
public:
    /// Runs one sweep; returns true iff it surfaced a failure (the worker
    /// records the payload itself — the engine only tracks the index).
    using SweepFn = std::function<bool(std::uint64_t sweep_index)>;

    /// Called once per worker (ids 0..worker_count-1) to build that
    /// worker's privately-owned SweepFn.
    using WorkerFactory = std::function<SweepFn(int worker_id)>;

    explicit Campaign(CampaignOptions options = {}) : options_{options} {}

    [[nodiscard]] const CampaignOptions& options() const noexcept { return options_; }

    /// Workers run() will actually use for a space of total_sweeps — clients
    /// size per-worker payload slots with this before launching.
    [[nodiscard]] int worker_count(std::uint64_t total_sweeps) const noexcept;

    /// Executes sweeps [0, total_sweeps) and returns the smallest failing
    /// sweep index, or kNoFailure.  Deterministic for a fixed sweep space:
    /// the same index comes back at any thread count.  Exceptions thrown by
    /// the factory or a sweep cancel the campaign and are rethrown (the
    /// first one, by worker id) after every worker has joined.
    std::uint64_t run(std::uint64_t total_sweeps, const WorkerFactory& factory) const;

    /// Seed for sweep `sweep_index` of a campaign seeded `campaign_seed`
    /// (splitmix64 over the pair).  Stable across platforms and releases:
    /// regression tests pin its values, because reproducing a logged
    /// counterexample depends on it.
    [[nodiscard]] static std::uint64_t derive_sweep_seed(
        std::uint64_t campaign_seed, std::uint64_t sweep_index) noexcept {
        std::uint64_t z = campaign_seed ^ (sweep_index + 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

private:
    CampaignOptions options_;
};

/// Minimal value-semantics PRNG for sweep bodies (xorshift64*): identical on
/// every platform, cheap to reseed per sweep.  Deliberately the same
/// generator the test harness uses, so logged seeds replay in either.
class SweepRng {
public:
    explicit SweepRng(std::uint64_t seed) noexcept
        : state_{seed != 0 ? seed : 0x9E3779B97F4A7C15ULL} {}

    std::uint64_t operator()() noexcept {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545F4914F6CDD1DULL;
    }

private:
    std::uint64_t state_;
};

}  // namespace gfr::verify

#endif  // GFR_VERIFY_CAMPAIGN_H
