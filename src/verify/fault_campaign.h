#ifndef GFR_VERIFY_FAULT_CAMPAIGN_H
#define GFR_VERIFY_FAULT_CAMPAIGN_H

// Fault-injection campaign over guarded (CED-augmented) netlists.
//
// The CED pass (guard/parity_ced.h) claims: a single fault at any covered
// gate that corrupts the function outputs also raises ced_alarm.  This
// driver *measures* that claim instead of trusting it: for every requested
// site it builds a verbatim faulty clone (netlist/clone.h, intern = false,
// so the injected fault can never be hash-merged into the checker logic),
// compiles it (exec::Program), and sweeps the input space — exhaustively
// when 2m <= 16 bits, else over seeded random blocks — comparing function
// outputs against the clean program's and watching the alarm bit:
//
//   corrupt lane  = some function output differs from the clean circuit
//   escaped lane  = corrupt && alarm low        (the CED claim violated)
//
// Per-site outcome: Escaped if any lane escaped; else Detected if any lane
// was corrupt (every corruption alarmed); else Benign (the fault never
// reached a function output — possible for TieFanins sites whose local
// error is never excited, e.g. AND(a,a) = a).  An alarm on an uncorrupted
// lane is NOT an escape or a false alarm: the fault is real, merely masked
// on that vector.
//
// Two fault models per site, both single-fault and permanent:
//   FlipGateKind — the gate computes the wrong function (And <-> Xor);
//   TieFanins    — fanin b shorted to a: XOR(a,a) pins the net to 0
//                  (stuck-at-0), AND(a,a) bypasses the gate (wire fault).
//
// The sweep space is sharded through verify::Campaign; outcomes land in a
// per-sweep slot array, so the report is deterministic at any thread count.

#include "netlist/netlist.h"
#include "verify/campaign.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gfr::verify {

enum class FaultKind : std::uint8_t { FlipGateKind, TieFanins };

[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

struct FaultSite {
    netlist::NodeId node = netlist::kInvalidNode;
    FaultKind kind = FaultKind::FlipGateKind;
    [[nodiscard]] std::string to_string() const;
};

enum class FaultOutcome : std::uint8_t { Benign, Detected, Escaped };

struct FaultCampaignOptions {
    /// Seed of the random-vector regime (2m > 16 inputs); the exhaustive
    /// regime ignores it.  Per-block contents derive from
    /// Campaign::derive_sweep_seed(seed, block), so results replay.
    std::uint64_t seed = 0xFA017ULL;
    /// 64-lane input blocks per site in the random regime.
    std::uint64_t random_blocks = 64;
    /// Sharding of the (site x kind) space across worker threads.
    CampaignOptions campaign{};
};

struct FaultReport {
    std::size_t injected = 0;  ///< sites x fault kinds actually simulated
    std::size_t detected = 0;  ///< corrupted at least one vector, all alarmed
    std::size_t benign = 0;    ///< never corrupted a function output
    std::size_t escaped = 0;   ///< corrupted with the alarm low — CED failure
    std::vector<FaultSite> escapes;  ///< every escaped injection, in order
    [[nodiscard]] bool all_detected() const noexcept { return escaped == 0; }
    [[nodiscard]] std::string to_string() const;
};

/// Inject both fault kinds at every site of `guarded` (a netlist processed
/// by guard::add_parity_ced: outputs [0, n_function) are the function,
/// `alarm_index` is the ced_alarm output) and report the outcomes.  Sites
/// must be And2/Xor2 nodes of the guarded netlist (std::invalid_argument
/// otherwise); the CED pass's CedInfo::covered_sites is the intended input.
[[nodiscard]] FaultReport run_fault_campaign(
    const netlist::Netlist& guarded, std::span<const netlist::NodeId> sites,
    std::size_t n_function, std::size_t alarm_index,
    const FaultCampaignOptions& options = {});

}  // namespace gfr::verify

#endif  // GFR_VERIFY_FAULT_CAMPAIGN_H
