#include "verify/fault_campaign.h"

#include "exec/program.h"
#include "netlist/clone.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace gfr::verify {

using netlist::GateKind;
using netlist::Netlist;
using netlist::NodeId;

const char* fault_kind_name(FaultKind kind) noexcept {
    switch (kind) {
        case FaultKind::FlipGateKind: return "flip-gate-kind";
        case FaultKind::TieFanins: return "tie-fanins";
    }
    return "?";
}

std::string FaultSite::to_string() const {
    return std::string{fault_kind_name(kind)} + "@node" + std::to_string(node);
}

std::string FaultReport::to_string() const {
    return "fault campaign: " + std::to_string(injected) + " injections: " +
           std::to_string(detected) + " detected, " + std::to_string(benign) +
           " benign, " + std::to_string(escaped) + " escaped";
}

namespace {

/// The campaign's vector schedule: block-major input words (as
/// exec::Program::run consumes them) plus the per-block live-lane masks.
struct VectorSchedule {
    std::vector<std::uint64_t> in;     ///< blocks x n_inputs, block-major
    std::vector<std::uint64_t> masks;  ///< live lanes per block
    std::uint64_t blocks = 0;
};

VectorSchedule build_schedule(int n_inputs, const FaultCampaignOptions& opt) {
    VectorSchedule s;
    const bool exhaustive = n_inputs <= 16;
    if (exhaustive) {
        const std::uint64_t lanes = std::uint64_t{1} << n_inputs;
        s.blocks = (lanes + 63) / 64;
        s.in.assign(s.blocks * static_cast<std::size_t>(n_inputs), 0);
        s.masks.assign(s.blocks, ~std::uint64_t{0});
        if (lanes < 64) {
            s.masks[0] = (std::uint64_t{1} << lanes) - 1;
        }
        for (std::uint64_t b = 0; b < s.blocks; ++b) {
            for (int i = 0; i < n_inputs; ++i) {
                std::uint64_t w = 0;
                for (int l = 0; l < 64; ++l) {
                    const std::uint64_t vec = b * 64 + static_cast<std::uint64_t>(l);
                    if (vec < lanes && ((vec >> i) & 1U) != 0) {
                        w |= std::uint64_t{1} << l;
                    }
                }
                s.in[b * static_cast<std::size_t>(n_inputs) +
                     static_cast<std::size_t>(i)] = w;
            }
        }
    } else {
        s.blocks = opt.random_blocks;
        s.in.assign(s.blocks * static_cast<std::size_t>(n_inputs), 0);
        s.masks.assign(s.blocks, ~std::uint64_t{0});
        for (std::uint64_t b = 0; b < s.blocks; ++b) {
            SweepRng rng{Campaign::derive_sweep_seed(opt.seed, b)};
            for (int i = 0; i < n_inputs; ++i) {
                s.in[b * static_cast<std::size_t>(n_inputs) +
                     static_cast<std::size_t>(i)] = rng();
            }
        }
    }
    return s;
}

}  // namespace

FaultReport run_fault_campaign(const Netlist& guarded,
                               std::span<const NodeId> sites,
                               std::size_t n_function, std::size_t alarm_index,
                               const FaultCampaignOptions& options) {
    if (n_function > guarded.outputs().size() ||
        alarm_index >= guarded.outputs().size()) {
        throw std::invalid_argument{
            "run_fault_campaign: output indices exceed the netlist"};
    }
    for (const NodeId site : sites) {
        if (site >= guarded.node_count()) {
            throw std::invalid_argument{
                "run_fault_campaign: site id out of range"};
        }
        const auto kind = guarded.node(site).kind;
        if (kind != GateKind::And2 && kind != GateKind::Xor2) {
            throw std::invalid_argument{
                "run_fault_campaign: sites must be And2/Xor2 gates"};
        }
    }

    const int n_inputs = static_cast<int>(guarded.inputs().size());
    const int n_outputs = static_cast<int>(guarded.outputs().size());
    const VectorSchedule sched = build_schedule(n_inputs, options);

    // Clean reference outputs, computed once and shared read-only.
    const exec::Program clean = exec::Program::compile(guarded);
    std::vector<std::uint64_t> clean_out(sched.blocks *
                                         static_cast<std::size_t>(n_outputs));
    {
        exec::Program::Scratch scratch;
        const int group = static_cast<int>(
            std::min<std::uint64_t>(exec::Program::kMaxBlocks, sched.blocks));
        for (std::uint64_t b = 0; b < sched.blocks;) {
            const int blocks = static_cast<int>(std::min<std::uint64_t>(
                static_cast<std::uint64_t>(group), sched.blocks - b));
            clean.run(
                std::span<const std::uint64_t>{
                    sched.in.data() + b * static_cast<std::size_t>(n_inputs),
                    static_cast<std::size_t>(blocks * n_inputs)},
                std::span<std::uint64_t>{
                    clean_out.data() + b * static_cast<std::size_t>(n_outputs),
                    static_cast<std::size_t>(blocks * n_outputs)},
                scratch, blocks);
            b += static_cast<std::uint64_t>(blocks);
        }
    }

    // One sweep per (site, fault kind); outcomes land in per-sweep slots so
    // the report is independent of the sharding.
    const std::uint64_t total = static_cast<std::uint64_t>(sites.size()) * 2;
    std::vector<FaultOutcome> outcomes(total, FaultOutcome::Benign);

    const Campaign campaign{options.campaign};
    campaign.run(total, [&](int) -> Campaign::SweepFn {
        // Per-worker mutable state, owned outright.
        auto scratch = std::make_shared<exec::Program::Scratch>();
        auto fout = std::make_shared<std::vector<std::uint64_t>>();
        return [&, scratch, fout](std::uint64_t sweep) -> bool {
            const NodeId site = sites[static_cast<std::size_t>(sweep / 2)];
            const FaultKind fk = (sweep % 2 == 0) ? FaultKind::FlipGateKind
                                                  : FaultKind::TieFanins;
            const netlist::GateHook hook = [site, fk](NodeId id, GateKind& k,
                                                      NodeId& a, NodeId& b) {
                if (id != site) {
                    return;
                }
                if (fk == FaultKind::FlipGateKind) {
                    k = (k == GateKind::And2) ? GateKind::Xor2 : GateKind::And2;
                } else {
                    b = a;
                }
            };
            const Netlist faulty_nl =
                netlist::clone_netlist(guarded, {.intern = false}, hook);
            const exec::Program faulty = exec::Program::compile(faulty_nl);

            FaultOutcome outcome = FaultOutcome::Benign;
            const int group = static_cast<int>(std::min<std::uint64_t>(
                exec::Program::kMaxBlocks, sched.blocks));
            fout->assign(static_cast<std::size_t>(group * n_outputs), 0);
            for (std::uint64_t b = 0;
                 b < sched.blocks && outcome != FaultOutcome::Escaped;) {
                const int blocks = static_cast<int>(std::min<std::uint64_t>(
                    static_cast<std::uint64_t>(group), sched.blocks - b));
                faulty.run(
                    std::span<const std::uint64_t>{
                        sched.in.data() + b * static_cast<std::size_t>(n_inputs),
                        static_cast<std::size_t>(blocks * n_inputs)},
                    std::span<std::uint64_t>{
                        fout->data(), static_cast<std::size_t>(blocks * n_outputs)},
                    *scratch, blocks);
                for (int blk = 0; blk < blocks; ++blk) {
                    const std::uint64_t mask =
                        sched.masks[b + static_cast<std::uint64_t>(blk)];
                    const std::uint64_t* fo =
                        fout->data() + static_cast<std::size_t>(blk * n_outputs);
                    const std::uint64_t* co =
                        clean_out.data() +
                        (b + static_cast<std::uint64_t>(blk)) *
                            static_cast<std::size_t>(n_outputs);
                    std::uint64_t corrupt = 0;
                    for (std::size_t o = 0; o < n_function; ++o) {
                        corrupt |= fo[o] ^ co[o];
                    }
                    corrupt &= mask;
                    if (corrupt == 0) {
                        continue;
                    }
                    if ((corrupt & ~fo[alarm_index]) != 0) {
                        outcome = FaultOutcome::Escaped;
                        break;
                    }
                    outcome = FaultOutcome::Detected;
                }
                b += static_cast<std::uint64_t>(blocks);
            }
            outcomes[sweep] = outcome;
            return false;  // record everything; never cancel the campaign
        };
    });

    FaultReport report;
    report.injected = total;
    for (std::uint64_t s = 0; s < total; ++s) {
        switch (outcomes[s]) {
            case FaultOutcome::Benign: ++report.benign; break;
            case FaultOutcome::Detected: ++report.detected; break;
            case FaultOutcome::Escaped:
                ++report.escaped;
                report.escapes.push_back(
                    FaultSite{sites[static_cast<std::size_t>(s / 2)],
                              (s % 2 == 0) ? FaultKind::FlipGateKind
                                           : FaultKind::TieFanins});
                break;
        }
    }
    return report;
}

}  // namespace gfr::verify
