#ifndef GFR_BULK_REGION_ENGINE_H
#define GFR_BULK_REGION_ENGINE_H

// bulk::RegionEngine — the streaming region API of the bulk subsystem.
//
// The unit of work here is a *buffer*, not an element: Reed-Solomon
// encoders, erasure-coding interleavers and verification sweeps multiply
// one constant across kilobytes of symbols, and the multiply-accumulate
// form `dst ^= c * src` is the inner operation of systematic RS encoding.
// RegionEngine wraps a field::FieldOps with exactly that traffic shape:
//
//   mul_region(prep, src, dst)     dst[i]  = c * src[i]
//   addmul_region(prep, src, dst)  dst[i] ^= c * src[i]
//   scale_region(prep, data)       data[i] = c * data[i]   (in place)
//
// over three element layouts:
//
//   - byte spans (fields with m <= 8): one symbol per byte — the dense
//     layout bulk byte traffic actually uses;
//   - u16 spans (fields with 8 < m <= 16): one symbol per uint16 — the
//     dense layout of the GF(2^16) erasure-codec tier (PAR2-style fields);
//     served by per-constant split-byte tables (lo[v] = c*v, hi[v] =
//     c*(v<<8); two lookups + XOR per symbol);
//   - u64 spans (any single-word field): one canonical element per word,
//     the layout of every existing FieldOps/ConstMultiplier region API;
//   - multi-word spans (m > 64): elem_words() consecutive words per
//     symbol, span length a multiple of elem_words().
//
// Kernel selection happens ONCE, at engine construction, from the
// process-wide bulk::dispatch() (runtime CPUID): AVX2/SSSE3 nibble-shuffle
// kernels for the byte layout, the VPCLMULQDQ wide kernel for u64 spans,
// and the portable scalar kernels (nibble tables / 4-bit window tables)
// everywhere else — always compiled, bit-identical on canonical operands,
// and the reference the differential tests hold every SIMD kernel to.  The
// forcing constructor pins a specific kernel kind (throwing if that kind is
// not compiled into the binary, not supported by the running CPU, or not
// applicable to the field) — tests and benches use it; regular callers use
// the auto-selecting constructor and can never land on an unsupported ISA.
//
// Per-constant state lives in a Prepared (nibble tables, window tables, or
// just the reduction parameters, depending on field and kernel): build one
// per generator coefficient, reuse it for the life of the stream.
//
// Contracts:
//   - Operands must be canonical (degree < m); the table kernels do not
//     reduce higher bits.
//   - dst may equal src exactly (in-place); *partial* overlap is rejected
//     with std::invalid_argument at every span entry point (the kernels
//     would stream stale or freshly-written bytes depending on direction
//     and vector width — silent corruption, so the engine refuses).
//   - The engine borrows the FieldOps (no copy): keep it alive for the
//     engine's lifetime, as Field does for its ops().
//   - Everything is immutable after construction; multi-word calls draw
//     working buffers from a caller FieldOps::Scratch (or the thread-local
//     default), so one engine serves concurrent threads — the FieldOps
//     discipline.

#include "bulk/kernels.h"
#include "field/field_ops.h"
#include "gf2/gf2_poly.h"
#include "guard/status.h"

#include <cstdint>
#include <span>
#include <vector>

namespace gfr::bulk {

class RegionEngine {
public:
    /// Best compiled kernels the running CPU supports (bulk::dispatch()).
    explicit RegionEngine(const field::FieldOps& ops);

    /// Pin one kernel kind for both layouts where applicable (the other
    /// layout falls back to scalar).  Throws std::invalid_argument when the
    /// kind is not compiled, not supported by this CPU, or not applicable
    /// to the field (byte kernels need m <= 8, word kernels m <= 64).
    RegionEngine(const field::FieldOps& ops, KernelKind forced);

    [[nodiscard]] const field::FieldOps& ops() const noexcept { return *ops_; }
    [[nodiscard]] int degree() const noexcept { return m_; }

    /// True when the byte layout applies (every symbol fits one byte).
    [[nodiscard]] bool byte_capable() const noexcept { return m_ <= 8; }
    /// True when the u16 layout applies (byte-capable fields use the byte
    /// layout instead — denser and SIMD-served).
    [[nodiscard]] bool u16_capable() const noexcept {
        return m_ > 8 && m_ <= 16;
    }
    [[nodiscard]] bool single_word() const noexcept { return m_ <= 64; }

    /// Kernel serving byte-layout calls (meaningful when byte_capable()).
    [[nodiscard]] KernelKind byte_kernel_kind() const noexcept {
        return byte_kernel_->kind;
    }
    /// Kernel serving u64-layout calls (meaningful when single_word()):
    /// Scalar means the window-table walk (or, for m <= 8, the scalar
    /// nibble walk over the reinterpreted byte layout).
    [[nodiscard]] KernelKind word_kernel_kind() const noexcept {
        return word_kernel_ != nullptr ? word_kernel_->kind
                                       : KernelKind::Scalar;
    }

    /// Per-constant prepared state.  Immutable; share freely across
    /// threads.  Build via RegionEngine::prepare — the state is tailored to
    /// that engine's field and kernel selection, and every region call
    /// validates the match (a Prepared from another field, or from an
    /// engine with a different kernel selection, throws instead of
    /// producing wrong symbols).
    class Prepared {
    public:
        [[nodiscard]] std::uint64_t constant() const noexcept { return c_; }

    private:
        friend class RegionEngine;
        std::uint64_t c_ = 0;             ///< canonical constant, m <= 64
        const field::FieldOps* ops_ = nullptr;  ///< preparing engine's field
        int m_ = -1;                      ///< degree of the preparing engine
        bool has_wide_ = false;           ///< wide_ filled (word kernel)
        NibbleTables nibbles_{};          ///< m <= 8
        WideParams wide_{};               ///< single-word carry-less kernel
        std::vector<std::uint64_t> windows_;  ///< scalar m > 8 fallback
        int n_windows_ = 0;
        std::vector<std::uint64_t> cwords_;   ///< m > 64: elem_words() words
        /// u16 layout (8 < m <= 16): 512 entries, lo half c*v, hi half
        /// c*(v<<8) for every byte v.
        std::vector<std::uint16_t> split16_;
    };

    /// Prepare a constant given as bits (requires single_word()).
    [[nodiscard]] Prepared prepare(std::uint64_t c) const;

    /// Prepare a constant given as a polynomial (any field; reduced first).
    [[nodiscard]] Prepared prepare(const gf2::Poly& c) const;

    // --- Byte layout (m <= 8): one symbol per byte ---------------------------

    void mul_region(const Prepared& p, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst) const;
    void addmul_region(const Prepared& p, std::span<const std::uint8_t> src,
                       std::span<std::uint8_t> dst) const;
    void scale_region(const Prepared& p, std::span<std::uint8_t> data) const;

    // --- u16 layout (8 < m <= 16): one symbol per uint16 ---------------------
    // The GF(2^16) erasure-codec layout: dense (no u64 padding), served by
    // the Prepared's split-byte tables.  Always available — no SIMD tier
    // yet, so forced-kernel engines serve it identically.

    void mul_region(const Prepared& p, std::span<const std::uint16_t> src,
                    std::span<std::uint16_t> dst) const;
    void addmul_region(const Prepared& p, std::span<const std::uint16_t> src,
                       std::span<std::uint16_t> dst) const;
    void scale_region(const Prepared& p, std::span<std::uint16_t> data) const;

    // --- u64 layout (m <= 64): one canonical element per word ----------------

    void mul_region(const Prepared& p, std::span<const std::uint64_t> src,
                    std::span<std::uint64_t> dst) const;
    void addmul_region(const Prepared& p, std::span<const std::uint64_t> src,
                       std::span<std::uint64_t> dst) const;
    void scale_region(const Prepared& p, std::span<std::uint64_t> data) const;

    /// out[i] = a[i] * b[i] (element-wise, any u64 operands — the
    /// FieldOps::mul_region semantics, served by the same dispatch).
    void mul_region_elementwise(std::span<const std::uint64_t> a,
                                std::span<const std::uint64_t> b,
                                std::span<std::uint64_t> out) const;

    // --- ABFT checksum lanes (single-word layouts) ---------------------------
    // Algorithm-based fault tolerance over the linearity of the region ops:
    // with S(r) = the XOR-fold (field sum) of region r, multiplication
    // commutes with the fold — S(c*src) = c*S(src) — so ONE independent
    // scalar multiply per region call maintains a running checksum of an
    // entire stream.  The _checked calls run the (possibly SIMD) kernel
    // over the data and update the checksum through FieldOps::mul, a
    // disjoint scalar code path; verify_region recomputes the fold and
    // compares.  A mismatch is a detected data fault (memory bit flip, DMA
    // corruption, kernel miscompute), not a programming error, so it comes
    // back as a guard::Status instead of an exception.  Cost: O(1) per
    // region call plus one O(n) fold per verification point — a few percent
    // on streaming workloads, against re-running the stream for detection.

    /// The ABFT checksum: XOR-fold (field sum) of a region.
    [[nodiscard]] std::uint64_t region_checksum(
        std::span<const std::uint8_t> data) const noexcept;
    [[nodiscard]] std::uint64_t region_checksum(
        std::span<const std::uint16_t> data) const noexcept;
    [[nodiscard]] std::uint64_t region_checksum(
        std::span<const std::uint64_t> data) const noexcept;

    /// dst[i] = c * src[i] and dst_sum = c * src_sum, the latter via the
    /// independent scalar multiply.  `src_sum` must be the maintained
    /// checksum of `src` for the lane to stay sound.
    void mul_region_checked(const Prepared& p,
                            std::span<const std::uint8_t> src,
                            std::uint64_t src_sum, std::span<std::uint8_t> dst,
                            std::uint64_t& dst_sum) const;
    void mul_region_checked(const Prepared& p,
                            std::span<const std::uint16_t> src,
                            std::uint64_t src_sum, std::span<std::uint16_t> dst,
                            std::uint64_t& dst_sum) const;
    void mul_region_checked(const Prepared& p,
                            std::span<const std::uint64_t> src,
                            std::uint64_t src_sum, std::span<std::uint64_t> dst,
                            std::uint64_t& dst_sum) const;

    /// dst[i] ^= c * src[i] and dst_sum ^= c * src_sum.
    void addmul_region_checked(const Prepared& p,
                               std::span<const std::uint8_t> src,
                               std::uint64_t src_sum,
                               std::span<std::uint8_t> dst,
                               std::uint64_t& dst_sum) const;
    void addmul_region_checked(const Prepared& p,
                               std::span<const std::uint16_t> src,
                               std::uint64_t src_sum,
                               std::span<std::uint16_t> dst,
                               std::uint64_t& dst_sum) const;
    void addmul_region_checked(const Prepared& p,
                               std::span<const std::uint64_t> src,
                               std::uint64_t src_sum,
                               std::span<std::uint64_t> dst,
                               std::uint64_t& dst_sum) const;

    /// Recompute the fold of `data` and compare against the maintained
    /// checksum.  Ok, or a Fault::RegionChecksum Status with coordinates.
    [[nodiscard]] guard::Status verify_region(std::span<const std::uint8_t> data,
                                              std::uint64_t expected_sum) const;
    [[nodiscard]] guard::Status verify_region(std::span<const std::uint16_t> data,
                                              std::uint64_t expected_sum) const;
    [[nodiscard]] guard::Status verify_region(std::span<const std::uint64_t> data,
                                              std::uint64_t expected_sum) const;

    // --- Multi-word layout (m > 64): elem_words() words per symbol -----------
    // Span lengths must be equal multiples of ops().elem_words().  The
    // carry-less word-level product/reduction kernels (PCLMUL-backed on
    // those builds) run element by element with zero steady-state
    // allocation; `scratch` must not be shared between threads.

    void mul_region_mw(const Prepared& p, std::span<const std::uint64_t> src,
                       std::span<std::uint64_t> dst,
                       field::FieldOps::Scratch& scratch) const;
    void mul_region_mw(const Prepared& p, std::span<const std::uint64_t> src,
                       std::span<std::uint64_t> dst) const {
        mul_region_mw(p, src, dst, field::FieldOps::thread_scratch());
    }
    void addmul_region_mw(const Prepared& p, std::span<const std::uint64_t> src,
                          std::span<std::uint64_t> dst,
                          field::FieldOps::Scratch& scratch) const;
    void addmul_region_mw(const Prepared& p, std::span<const std::uint64_t> src,
                          std::span<std::uint64_t> dst) const {
        addmul_region_mw(p, src, dst, field::FieldOps::thread_scratch());
    }

private:
    void init_kernels(KernelKind forced, bool have_forced);
    void check_prepared(const Prepared& p, bool need_word) const;
    void byte_call(bool add, const Prepared& p, const std::uint8_t* src,
                   std::uint8_t* dst, std::size_t n) const;
    void u16_call(bool add, const Prepared& p, const std::uint16_t* src,
                  std::uint16_t* dst, std::size_t n) const;
    void word_call(bool add, const Prepared& p, const std::uint64_t* src,
                   std::uint64_t* dst, std::size_t n) const;
    void mw_call(bool add, const Prepared& p, std::span<const std::uint64_t> src,
                 std::span<std::uint64_t> dst,
                 field::FieldOps::Scratch& scratch) const;

    const field::FieldOps* ops_;
    int m_ = 0;
    const ByteKernel* byte_kernel_ = nullptr;  ///< non-null when m <= 8
    const WordKernel* word_kernel_ = nullptr;  ///< null → scalar u64 path
};

}  // namespace gfr::bulk

#endif  // GFR_BULK_REGION_ENGINE_H
