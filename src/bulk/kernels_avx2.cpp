// AVX2 byte kernel: the SSSE3 split nibble-table shuffle widened to 32
// bytes per step — the tables are broadcast into both 128-bit lanes, so
// VPSHUFB performs 32 independent lookups per instruction.  The 16-byte
// remainder runs one SSE pass, the final <16 bytes run scalar.
//
// Compiled with -mavx2 only in this translation unit; the dispatch calls in
// here only after runtime CPUID (+XGETBV) reports AVX2.

#include "bulk/kernels.h"

#if defined(GFR_BULK_HAVE_AVX2)

#include <immintrin.h>

namespace gfr::bulk {

namespace {

void byte_mul_avx2(const NibbleTables& t, const std::uint8_t* src,
                   std::uint8_t* dst, std::size_t n) {
    const __m256i lo = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo)));
    const __m256i hi = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)));
    const __m256i nib = _mm256_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, nib));
        const __m256i ph = _mm256_shuffle_epi8(
            hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), nib));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_xor_si256(pl, ph));
    }
    if (i + 16 <= n) {
        const __m128i lo128 = _mm256_castsi256_si128(lo);
        const __m128i hi128 = _mm256_castsi256_si128(hi);
        const __m128i nib128 = _mm_set1_epi8(0x0F);
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        const __m128i pl = _mm_shuffle_epi8(lo128, _mm_and_si128(v, nib128));
        const __m128i ph = _mm_shuffle_epi8(
            hi128, _mm_and_si128(_mm_srli_epi64(v, 4), nib128));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                         _mm_xor_si128(pl, ph));
        i += 16;
    }
    for (; i < n; ++i) {
        const std::uint8_t s = src[i];
        dst[i] = static_cast<std::uint8_t>(t.lo[s & 0xF] ^ t.hi[s >> 4]);
    }
}

void byte_addmul_avx2(const NibbleTables& t, const std::uint8_t* src,
                      std::uint8_t* dst, std::size_t n) {
    const __m256i lo = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo)));
    const __m256i hi = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)));
    const __m256i nib = _mm256_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, nib));
        const __m256i ph = _mm256_shuffle_epi8(
            hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), nib));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(dst + i),
            _mm256_xor_si256(d, _mm256_xor_si256(pl, ph)));
    }
    if (i + 16 <= n) {
        const __m128i lo128 = _mm256_castsi256_si128(lo);
        const __m128i hi128 = _mm256_castsi256_si128(hi);
        const __m128i nib128 = _mm_set1_epi8(0x0F);
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        const __m128i d =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
        const __m128i pl = _mm_shuffle_epi8(lo128, _mm_and_si128(v, nib128));
        const __m128i ph = _mm_shuffle_epi8(
            hi128, _mm_and_si128(_mm_srli_epi64(v, 4), nib128));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                         _mm_xor_si128(d, _mm_xor_si128(pl, ph)));
        i += 16;
    }
    for (; i < n; ++i) {
        const std::uint8_t s = src[i];
        dst[i] ^= static_cast<std::uint8_t>(t.lo[s & 0xF] ^ t.hi[s >> 4]);
    }
}

const ByteKernel kByteAvx2{KernelKind::Avx2, &byte_mul_avx2, &byte_addmul_avx2};

}  // namespace

const ByteKernel* avx2_byte_kernel() noexcept { return &kByteAvx2; }

}  // namespace gfr::bulk

#else  // TU compiled without AVX2 (non-x86 or GFR_BULK_PORTABLE_ONLY)

namespace gfr::bulk {
const ByteKernel* avx2_byte_kernel() noexcept { return nullptr; }
}  // namespace gfr::bulk

#endif
