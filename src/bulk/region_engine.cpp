#include "bulk/region_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

namespace gfr::bulk {

RegionEngine::RegionEngine(const field::FieldOps& ops)
    : ops_{&ops}, m_{ops.degree()} {
    init_kernels(KernelKind::Scalar, /*have_forced=*/false);
}

RegionEngine::RegionEngine(const field::FieldOps& ops, KernelKind forced)
    : ops_{&ops}, m_{ops.degree()} {
    init_kernels(forced, /*have_forced=*/true);
}

void RegionEngine::init_kernels(KernelKind forced, bool have_forced) {
    const Dispatch& d = dispatch();
    if (!have_forced) {
        // Auto selection.  Byte-capable fields route their u64 layout
        // through the byte kernels too (the nibble shuffle is cheaper per
        // symbol than a carry-less multiply), so word_kernel_ stays null.
        byte_kernel_ = (m_ <= 8) ? d.byte : &kByteScalar;
        word_kernel_ =
            (m_ > 8 && m_ <= 64 && ops_->fold_bound() <= kMaxWideFolds)
                ? d.word
                : nullptr;
        return;
    }
    switch (forced) {
        case KernelKind::Scalar:
            byte_kernel_ = &kByteScalar;
            word_kernel_ = nullptr;
            return;
        case KernelKind::Ssse3:
        case KernelKind::Avx2:
        case KernelKind::Gfni: {
            if (m_ > 8) {
                throw std::invalid_argument{
                    "RegionEngine: byte kernels require m <= 8"};
            }
            const ByteKernel* k = byte_kernel(forced);
            if (k == nullptr) {
                throw std::invalid_argument{
                    "RegionEngine: kernel not compiled into this binary"};
            }
            if (!kernel_supported(forced, d.cpu)) {
                throw std::invalid_argument{
                    "RegionEngine: kernel not supported by this CPU"};
            }
            byte_kernel_ = k;
            word_kernel_ = nullptr;
            return;
        }
        case KernelKind::Vpclmul: {
            if (m_ > 64) {
                throw std::invalid_argument{
                    "RegionEngine: word kernels require m <= 64"};
            }
            const WordKernel* k = word_kernel(forced);
            if (k == nullptr) {
                throw std::invalid_argument{
                    "RegionEngine: kernel not compiled into this binary"};
            }
            if (!kernel_supported(forced, d.cpu)) {
                throw std::invalid_argument{
                    "RegionEngine: kernel not supported by this CPU"};
            }
            byte_kernel_ = &kByteScalar;
            word_kernel_ = k;
            return;
        }
    }
    throw std::invalid_argument{"RegionEngine: unknown kernel kind"};
}

RegionEngine::Prepared RegionEngine::prepare(std::uint64_t c) const {
    if (!single_word()) {
        throw std::invalid_argument{
            "RegionEngine::prepare(uint64): field needs m <= 64; pass a Poly"};
    }
    Prepared p;
    p.c_ = ops_->reduce(0, c);
    p.ops_ = ops_;
    p.m_ = m_;
    if (m_ <= 8) {
        p.nibbles_ = ops_->nibble_tables(p.c_);
    }
    if (u16_capable()) {
        // Split-byte tables for the u16 layout: symbol s maps to
        // lo[s & 0xFF] ^ hi[s >> 8], both halves canonical products.
        p.split16_.resize(512);
        for (std::uint64_t v = 0; v < 256; ++v) {
            p.split16_[v] = static_cast<std::uint16_t>(ops_->mul(p.c_, v));
            p.split16_[256 + v] =
                static_cast<std::uint16_t>(ops_->mul(p.c_, v << 8));
        }
    }
    if (word_kernel_ != nullptr) {
        p.wide_ = ops_->wide_params(p.c_);
        p.has_wide_ = true;
    } else if (m_ > 8 || byte_kernel_->kind == KernelKind::Scalar) {
        // Scalar u64 path: 4-bit window tables (the ConstMultiplier walk,
        // built by the same FieldOps::window_tables the ConstMultiplier
        // uses, so the two can never diverge).  Built for m <= 8 too when
        // the byte dispatch is scalar: the window walk costs 2 lookups per
        // u64 symbol where the scalar byte kernel over the 8-byte layout
        // would pay 16.
        p.n_windows_ = (m_ + 3) / 4;
        p.windows_ = ops_->window_tables(p.c_);
    }
    return p;
}

RegionEngine::Prepared RegionEngine::prepare(const gf2::Poly& c) const {
    if (single_word()) {
        gf2::Poly reduced = c;
        ops_->reduce_in_place(reduced);
        const auto words = reduced.words();
        return prepare(words.empty() ? 0 : words[0]);
    }
    gf2::Poly reduced = c;
    ops_->reduce_in_place(reduced);
    Prepared p;
    p.ops_ = ops_;
    p.m_ = m_;
    const auto words = reduced.words();
    p.cwords_.assign(ops_->elem_words(), 0);
    std::copy(words.begin(), words.end(), p.cwords_.begin());
    return p;
}

/// A Prepared only carries the state its preparing engine's kernels need,
/// so using one with another field or another kernel selection must fail
/// loudly, not produce wrong symbols.
void RegionEngine::check_prepared(const Prepared& p, bool need_word) const {
    // Pointer identity on the FieldOps: two fields of equal degree but
    // different moduli would pass a degree check and then reduce with the
    // wrong tails — silent corruption.  Field copies share one FieldOps
    // (shared_ptr), so normal sharing is unaffected.
    if (p.ops_ != ops_ || p.m_ != m_) {
        throw std::invalid_argument{
            "RegionEngine: Prepared was built for a different field"};
    }
    if (need_word && word_kernel_ == nullptr &&
        (m_ > 8 || byte_kernel_->kind == KernelKind::Scalar) &&
        p.n_windows_ == 0) {
        throw std::invalid_argument{
            "RegionEngine: Prepared lacks window tables for the scalar path "
            "(built by an engine with a different kernel selection)"};
    }
    if (need_word && word_kernel_ != nullptr && !p.has_wide_) {
        throw std::invalid_argument{
            "RegionEngine: Prepared lacks wide-kernel parameters (built by "
            "an engine with a different kernel selection)"};
    }
}

namespace {

/// Reject partially-overlapping src/dst at the span entry points: the
/// kernels stream vector-width blocks, so a partial overlap reads a mix of
/// stale and freshly-written symbols depending on direction and ISA —
/// silent corruption, refused loudly instead.  Exact aliasing (dst == src,
/// the in-place form every kernel guarantees) passes.
void check_no_partial_overlap(const void* src, const void* dst,
                              std::size_t bytes, const char* fn) {
    if (src == dst || bytes == 0) {
        return;
    }
    const auto s = reinterpret_cast<std::uintptr_t>(src);
    const auto d = reinterpret_cast<std::uintptr_t>(dst);
    if (s < d + bytes && d < s + bytes) {
        throw std::invalid_argument{
            std::string{fn} +
            ": src and dst overlap partially (dst must alias src exactly or "
            "not at all)"};
    }
}

}  // namespace

// --- Byte layout -------------------------------------------------------------

void RegionEngine::byte_call(bool add, const Prepared& p,
                             const std::uint8_t* src, std::uint8_t* dst,
                             std::size_t n) const {
    if (!byte_capable()) {
        throw std::invalid_argument{
            "RegionEngine: byte layout requires m <= 8"};
    }
    check_prepared(p, /*need_word=*/false);
    (add ? byte_kernel_->addmul : byte_kernel_->mul)(p.nibbles_, src, dst, n);
}

void RegionEngine::mul_region(const Prepared& p,
                              std::span<const std::uint8_t> src,
                              std::span<std::uint8_t> dst) const {
    if (src.size() != dst.size()) {
        throw std::invalid_argument{"RegionEngine::mul_region: length mismatch"};
    }
    check_no_partial_overlap(src.data(), dst.data(), src.size_bytes(),
                             "RegionEngine::mul_region");
    byte_call(false, p, src.data(), dst.data(), src.size());
}

void RegionEngine::addmul_region(const Prepared& p,
                                 std::span<const std::uint8_t> src,
                                 std::span<std::uint8_t> dst) const {
    if (src.size() != dst.size()) {
        throw std::invalid_argument{
            "RegionEngine::addmul_region: length mismatch"};
    }
    check_no_partial_overlap(src.data(), dst.data(), src.size_bytes(),
                             "RegionEngine::addmul_region");
    byte_call(true, p, src.data(), dst.data(), src.size());
}

void RegionEngine::scale_region(const Prepared& p,
                                std::span<std::uint8_t> data) const {
    byte_call(false, p, data.data(), data.data(), data.size());
}

// --- u16 layout --------------------------------------------------------------

void RegionEngine::u16_call(bool add, const Prepared& p,
                            const std::uint16_t* src, std::uint16_t* dst,
                            std::size_t n) const {
    if (!u16_capable()) {
        throw std::invalid_argument{
            "RegionEngine: u16 layout requires 8 < m <= 16 (byte-capable "
            "fields use the byte layout)"};
    }
    check_prepared(p, /*need_word=*/false);
    const std::uint16_t* lo = p.split16_.data();
    const std::uint16_t* hi = lo + 256;
    if (add) {
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint16_t s = src[i];
            dst[i] ^= static_cast<std::uint16_t>(lo[s & 0xFF] ^ hi[s >> 8]);
        }
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint16_t s = src[i];
            dst[i] = static_cast<std::uint16_t>(lo[s & 0xFF] ^ hi[s >> 8]);
        }
    }
}

void RegionEngine::mul_region(const Prepared& p,
                              std::span<const std::uint16_t> src,
                              std::span<std::uint16_t> dst) const {
    if (src.size() != dst.size()) {
        throw std::invalid_argument{"RegionEngine::mul_region: length mismatch"};
    }
    check_no_partial_overlap(src.data(), dst.data(), src.size_bytes(),
                             "RegionEngine::mul_region");
    u16_call(false, p, src.data(), dst.data(), src.size());
}

void RegionEngine::addmul_region(const Prepared& p,
                                 std::span<const std::uint16_t> src,
                                 std::span<std::uint16_t> dst) const {
    if (src.size() != dst.size()) {
        throw std::invalid_argument{
            "RegionEngine::addmul_region: length mismatch"};
    }
    check_no_partial_overlap(src.data(), dst.data(), src.size_bytes(),
                             "RegionEngine::addmul_region");
    u16_call(true, p, src.data(), dst.data(), src.size());
}

void RegionEngine::scale_region(const Prepared& p,
                                std::span<std::uint16_t> data) const {
    u16_call(false, p, data.data(), data.data(), data.size());
}

// --- u64 layout --------------------------------------------------------------

void RegionEngine::word_call(bool add, const Prepared& p,
                             const std::uint64_t* src, std::uint64_t* dst,
                             std::size_t n) const {
    if (!single_word()) {
        throw std::invalid_argument{
            "RegionEngine: u64 layout requires m <= 64; use the _mw calls"};
    }
    check_prepared(p, /*need_word=*/true);
    if (word_kernel_ != nullptr) {
        (add ? word_kernel_->addmul : word_kernel_->mul)(p.wide_, src, dst, n);
        return;
    }
    if (m_ <= 8 && byte_kernel_->kind != KernelKind::Scalar) {
        // Canonical elements keep their top seven bytes zero, and the
        // nibble tables map zero bytes to zero, so the SIMD byte kernels
        // apply directly to the (little-endian) u64 layout.  The scalar
        // dispatch skips this: two window lookups per symbol beat sixteen
        // nibble lookups over the padding bytes.
        (add ? byte_kernel_->addmul : byte_kernel_->mul)(
            p.nibbles_, reinterpret_cast<const std::uint8_t*>(src),
            reinterpret_cast<std::uint8_t*>(dst), n * sizeof(std::uint64_t));
        return;
    }
    (add ? word_addmul_windows : word_mul_windows)(p.windows_.data(),
                                                   p.n_windows_, src, dst, n);
}

void RegionEngine::mul_region(const Prepared& p,
                              std::span<const std::uint64_t> src,
                              std::span<std::uint64_t> dst) const {
    if (src.size() != dst.size()) {
        throw std::invalid_argument{"RegionEngine::mul_region: length mismatch"};
    }
    check_no_partial_overlap(src.data(), dst.data(), src.size_bytes(),
                             "RegionEngine::mul_region");
    word_call(false, p, src.data(), dst.data(), src.size());
}

void RegionEngine::addmul_region(const Prepared& p,
                                 std::span<const std::uint64_t> src,
                                 std::span<std::uint64_t> dst) const {
    if (src.size() != dst.size()) {
        throw std::invalid_argument{
            "RegionEngine::addmul_region: length mismatch"};
    }
    check_no_partial_overlap(src.data(), dst.data(), src.size_bytes(),
                             "RegionEngine::addmul_region");
    word_call(true, p, src.data(), dst.data(), src.size());
}

void RegionEngine::scale_region(const Prepared& p,
                                std::span<std::uint64_t> data) const {
    word_call(false, p, data.data(), data.data(), data.size());
}

void RegionEngine::mul_region_elementwise(std::span<const std::uint64_t> a,
                                          std::span<const std::uint64_t> b,
                                          std::span<std::uint64_t> out) const {
    if (a.size() != b.size() || a.size() != out.size()) {
        throw std::invalid_argument{
            "RegionEngine::mul_region_elementwise: length mismatch"};
    }
    if (!single_word()) {
        throw std::invalid_argument{
            "RegionEngine::mul_region_elementwise: requires m <= 64"};
    }
    check_no_partial_overlap(a.data(), out.data(), a.size_bytes(),
                             "RegionEngine::mul_region_elementwise");
    check_no_partial_overlap(b.data(), out.data(), b.size_bytes(),
                             "RegionEngine::mul_region_elementwise");
    if (word_kernel_ != nullptr) {
        word_kernel_->mul_elementwise(ops_->wide_params(0), a.data(), b.data(),
                                      out.data(), a.size());
        return;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] = ops_->mul(a[i], b[i]);
    }
}

// --- ABFT checksum lanes -----------------------------------------------------

std::uint64_t RegionEngine::region_checksum(
    std::span<const std::uint8_t> data) const noexcept {
    // Byte XOR is position-independent, so fold eight lanes per iteration
    // through a word accumulator and collapse its bytes at the end; the
    // ingest fold then runs at memory speed instead of byte speed.
    std::uint64_t acc = 0;
    std::size_t i = 0;
    for (; i + 8 <= data.size(); i += 8) {
        std::uint64_t w;
        std::memcpy(&w, data.data() + i, 8);
        acc ^= w;
    }
    std::uint8_t sum = 0;
    for (int s = 0; s < 64; s += 8) {
        sum ^= static_cast<std::uint8_t>(acc >> s);
    }
    for (; i < data.size(); ++i) {
        sum ^= data[i];
    }
    return sum;
}

std::uint64_t RegionEngine::region_checksum(
    std::span<const std::uint16_t> data) const noexcept {
    std::uint16_t sum = 0;
    for (const std::uint16_t v : data) {
        sum = static_cast<std::uint16_t>(sum ^ v);
    }
    return sum;
}

std::uint64_t RegionEngine::region_checksum(
    std::span<const std::uint64_t> data) const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : data) {
        sum ^= v;
    }
    return sum;
}

void RegionEngine::mul_region_checked(const Prepared& p,
                                      std::span<const std::uint8_t> src,
                                      std::uint64_t src_sum,
                                      std::span<std::uint8_t> dst,
                                      std::uint64_t& dst_sum) const {
    mul_region(p, src, dst);
    dst_sum = ops_->mul(p.c_, src_sum);
}

void RegionEngine::mul_region_checked(const Prepared& p,
                                      std::span<const std::uint16_t> src,
                                      std::uint64_t src_sum,
                                      std::span<std::uint16_t> dst,
                                      std::uint64_t& dst_sum) const {
    mul_region(p, src, dst);
    dst_sum = ops_->mul(p.c_, src_sum);
}

void RegionEngine::mul_region_checked(const Prepared& p,
                                      std::span<const std::uint64_t> src,
                                      std::uint64_t src_sum,
                                      std::span<std::uint64_t> dst,
                                      std::uint64_t& dst_sum) const {
    mul_region(p, src, dst);
    dst_sum = ops_->mul(p.c_, src_sum);
}

void RegionEngine::addmul_region_checked(const Prepared& p,
                                         std::span<const std::uint8_t> src,
                                         std::uint64_t src_sum,
                                         std::span<std::uint8_t> dst,
                                         std::uint64_t& dst_sum) const {
    addmul_region(p, src, dst);
    dst_sum ^= ops_->mul(p.c_, src_sum);
}

void RegionEngine::addmul_region_checked(const Prepared& p,
                                         std::span<const std::uint16_t> src,
                                         std::uint64_t src_sum,
                                         std::span<std::uint16_t> dst,
                                         std::uint64_t& dst_sum) const {
    addmul_region(p, src, dst);
    dst_sum ^= ops_->mul(p.c_, src_sum);
}

void RegionEngine::addmul_region_checked(const Prepared& p,
                                         std::span<const std::uint64_t> src,
                                         std::uint64_t src_sum,
                                         std::span<std::uint64_t> dst,
                                         std::uint64_t& dst_sum) const {
    addmul_region(p, src, dst);
    dst_sum ^= ops_->mul(p.c_, src_sum);
}

namespace {

std::string checksum_hex(std::uint64_t v) {
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
    return buf;
}

guard::Status checksum_verdict(std::uint64_t computed, std::uint64_t expected,
                               std::size_t n, const char* layout) {
    if (computed == expected) {
        return guard::Status::good();
    }
    return guard::Status::fail(
        guard::Fault::RegionChecksum,
        std::string{"region checksum mismatch over "} + std::to_string(n) +
            " " + layout + " symbols: computed " + checksum_hex(computed) +
            ", maintained " + checksum_hex(expected));
}

}  // namespace

guard::Status RegionEngine::verify_region(std::span<const std::uint8_t> data,
                                          std::uint64_t expected_sum) const {
    return checksum_verdict(region_checksum(data), expected_sum, data.size(),
                            "byte");
}

guard::Status RegionEngine::verify_region(std::span<const std::uint16_t> data,
                                          std::uint64_t expected_sum) const {
    return checksum_verdict(region_checksum(data), expected_sum, data.size(),
                            "u16");
}

guard::Status RegionEngine::verify_region(std::span<const std::uint64_t> data,
                                          std::uint64_t expected_sum) const {
    return checksum_verdict(region_checksum(data), expected_sum, data.size(),
                            "u64");
}

// --- Multi-word layout -------------------------------------------------------

void RegionEngine::mw_call(bool add, const Prepared& p,
                           std::span<const std::uint64_t> src,
                           std::span<std::uint64_t> dst,
                           field::FieldOps::Scratch& scratch) const {
    const std::size_t mw = ops_->elem_words();
    if (src.size() != dst.size() || src.size() % mw != 0) {
        throw std::invalid_argument{
            "RegionEngine: multi-word spans must be equal multiples of "
            "elem_words()"};
    }
    check_no_partial_overlap(src.data(), dst.data(), src.size_bytes(),
                             add ? "RegionEngine::addmul_region_mw"
                                 : "RegionEngine::mul_region_mw");
    check_prepared(p, /*need_word=*/false);
    if (p.cwords_.size() != mw) {
        throw std::invalid_argument{
            "RegionEngine: Prepared constant does not match this field"};
    }
    const std::size_t n = src.size() / mw;
    const std::size_t pn = 2 * mw;
    scratch.wprod.assign(pn, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t* e = src.data() + i * mw;
        std::uint64_t* o = dst.data() + i * mw;
        bool zero = true;
        for (std::size_t k = 0; k < mw; ++k) {
            zero = zero && e[k] == 0;
        }
        if (zero) {
            if (!add) {
                std::fill(o, o + mw, 0);
            }
            continue;
        }
        std::fill(scratch.wprod.begin(), scratch.wprod.end(), 0);
        gf2::mul_words(e, mw, p.cwords_.data(), mw, scratch.wprod.data(),
                       scratch.arena);
        ops_->reduce_words(scratch.wprod.data(), pn);
        if (add) {
            for (std::size_t k = 0; k < mw; ++k) {
                o[k] ^= scratch.wprod[k];
            }
        } else {
            std::copy_n(scratch.wprod.begin(), mw, o);
        }
    }
}

void RegionEngine::mul_region_mw(const Prepared& p,
                                 std::span<const std::uint64_t> src,
                                 std::span<std::uint64_t> dst,
                                 field::FieldOps::Scratch& scratch) const {
    mw_call(false, p, src, dst, scratch);
}

void RegionEngine::addmul_region_mw(const Prepared& p,
                                    std::span<const std::uint64_t> src,
                                    std::span<std::uint64_t> dst,
                                    field::FieldOps::Scratch& scratch) const {
    mw_call(true, p, src, dst, scratch);
}

}  // namespace gfr::bulk
