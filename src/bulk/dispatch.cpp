// Kernel selection: the pure policy (make_dispatch) plus the process-wide
// singleton that binds it to the detected CPU and the GFR_BULK_FORCE_SCALAR
// environment knob.

#include "bulk/kernels.h"

#include "guard/kernel_check.h"

#include <cstdlib>

namespace gfr::bulk {

// Every switch over KernelKind in this file is exhaustive *without* a
// default and without a fall-through return after the switch: a new
// enumerator fails to compile (-Werror=switch on the library target) until
// each table below names it.  The old trailing `return "?"` / `return
// nullptr` style let an unlisted kind silently dispatch nothing — exactly
// the latent bug wiring GFNI in would have tripped.

const char* kernel_name(KernelKind kind) noexcept {
    switch (kind) {
        case KernelKind::Scalar: return "scalar";
        case KernelKind::Ssse3: return "ssse3";
        case KernelKind::Avx2: return "avx2";
        case KernelKind::Vpclmul: return "vpclmul";
        case KernelKind::Gfni: return "gfni";
    }
    __builtin_unreachable();
}

bool kernel_supported(KernelKind kind, const CpuFeatures& f) noexcept {
    switch (kind) {
        case KernelKind::Scalar: return true;
        case KernelKind::Ssse3: return f.ssse3;
        case KernelKind::Avx2: return f.avx2;
        case KernelKind::Vpclmul:
            // The wide kernel also issues AVX2 integer ops and the 128-bit
            // PCLMULQDQ scalar helper, so require the full triple — not
            // just the VPCLMULQDQ bit (detect_cpu couples them today, but
            // this predicate is the policy the tests pin for *any*
            // feature combination).
            return f.vpclmulqdq && f.avx2 && f.pclmul;
        case KernelKind::Gfni:
            // Our GFNI kernel is the VEX 256-bit form plus AVX2 XORs for
            // addmul, so the raw GFNI bit alone (SSE-only Atom parts) is
            // not enough — those fall back to SSSE3.
            return f.gfni && f.avx2;
    }
    __builtin_unreachable();
}

std::vector<KernelKind> compiled_byte_kernels() {
    std::vector<KernelKind> kinds{KernelKind::Scalar};
    if (ssse3_byte_kernel() != nullptr) {
        kinds.push_back(KernelKind::Ssse3);
    }
    if (avx2_byte_kernel() != nullptr) {
        kinds.push_back(KernelKind::Avx2);
    }
    if (gfni_byte_kernel() != nullptr) {
        kinds.push_back(KernelKind::Gfni);
    }
    return kinds;
}

std::vector<KernelKind> compiled_word_kernels() {
    std::vector<KernelKind> kinds{KernelKind::Scalar};
    if (vpclmul_word_kernel() != nullptr) {
        kinds.push_back(KernelKind::Vpclmul);
    }
    return kinds;
}

const ByteKernel* byte_kernel(KernelKind kind) noexcept {
    switch (kind) {
        case KernelKind::Scalar: return &kByteScalar;
        case KernelKind::Ssse3: return ssse3_byte_kernel();
        case KernelKind::Avx2: return avx2_byte_kernel();
        case KernelKind::Gfni: return gfni_byte_kernel();
        case KernelKind::Vpclmul: return nullptr;  // word family only
    }
    __builtin_unreachable();
}

const WordKernel* word_kernel(KernelKind kind) noexcept {
    // Previously a `kind == Vpclmul ? ... : nullptr` ternary — the one
    // dispatch table the compiler could not check for exhaustiveness.
    switch (kind) {
        case KernelKind::Vpclmul: return vpclmul_word_kernel();
        case KernelKind::Scalar:  // scalar u64 path is the window walk,
        case KernelKind::Ssse3:   // byte family only
        case KernelKind::Avx2:
        case KernelKind::Gfni:
            return nullptr;
    }
    __builtin_unreachable();
}

Dispatch make_dispatch(const CpuFeatures& f, bool force_scalar) noexcept {
    Dispatch d;
    d.cpu = f;
    d.forced_scalar = force_scalar;
    d.byte = &kByteScalar;
    d.word = nullptr;
    if (force_scalar) {
        return d;
    }
    // Best compiled kernel the running CPU supports, never beyond: each
    // candidate requires both its TU (non-null registry) and the full
    // feature predicate in kernel_supported — one source of truth.  Byte
    // preference order: gfni > avx2 > ssse3 > scalar (GFNI does one
    // affine transform where the shuffle kernels do two lookups + XOR).
    for (const KernelKind kind :
         {KernelKind::Gfni, KernelKind::Avx2, KernelKind::Ssse3}) {
        if (const ByteKernel* k = byte_kernel(kind);
            k != nullptr && kernel_supported(kind, f)) {
            d.byte = k;
            break;
        }
    }
    if (const WordKernel* k = vpclmul_word_kernel();
        k != nullptr && kernel_supported(KernelKind::Vpclmul, f)) {
        d.word = k;
    }
    return d;
}

bool env_flag_enabled(const char* value) noexcept {
    if (value == nullptr || *value == '\0') {
        return false;
    }
    for (const char* off : {"0", "off", "false", "no"}) {
        const char* v = value;
        const char* w = off;
        for (; *v != '\0' && *w != '\0'; ++v, ++w) {
            const char c = (*v >= 'A' && *v <= 'Z')
                               ? static_cast<char>(*v - 'A' + 'a')
                               : *v;
            if (c != *w) {
                break;
            }
        }
        if (*v == '\0' && *w == '\0') {
            return false;
        }
    }
    return true;
}

namespace {

bool force_scalar_from_env() noexcept {
    // "GFR_BULK_FORCE_SCALAR=0" (or off/false/no, or empty) means unset —
    // scripts can pass the knob through unconditionally.
    return env_flag_enabled(std::getenv("GFR_BULK_FORCE_SCALAR"));
}

}  // namespace

const Dispatch& dispatch() {
    static const Dispatch d = guard::screen_and_record(
        make_dispatch(detect_cpu(), force_scalar_from_env()),
        std::getenv("GFR_GUARD_FAULT"));
    return d;
}

}  // namespace gfr::bulk
