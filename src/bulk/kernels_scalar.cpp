// Portable scalar region kernels — always compiled, any target.  These are
// the bit-identity reference every SIMD kernel is differentially tested
// against, and the fallback the dispatch pins on CPUs (or builds) without
// the vector ISAs.

#include "bulk/kernels.h"

namespace gfr::bulk {

namespace {

void byte_mul_scalar(const NibbleTables& t, const std::uint8_t* src,
                     std::uint8_t* dst, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t s = src[i];
        dst[i] = static_cast<std::uint8_t>(t.lo[s & 0xF] ^ t.hi[s >> 4]);
    }
}

void byte_addmul_scalar(const NibbleTables& t, const std::uint8_t* src,
                        std::uint8_t* dst, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t s = src[i];
        dst[i] ^= static_cast<std::uint8_t>(t.lo[s & 0xF] ^ t.hi[s >> 4]);
    }
}

}  // namespace

const ByteKernel kByteScalar{KernelKind::Scalar, &byte_mul_scalar,
                             &byte_addmul_scalar};

void word_mul_windows(const std::uint64_t* table, int windows,
                      const std::uint64_t* src, std::uint64_t* dst,
                      std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t a = src[i];
        std::uint64_t acc = 0;
        const std::uint64_t* t = table;
        for (int w = 0; w < windows; ++w, t += 16) {
            acc ^= t[(a >> (4 * w)) & 0xF];
        }
        dst[i] = acc;
    }
}

void word_addmul_windows(const std::uint64_t* table, int windows,
                         const std::uint64_t* src, std::uint64_t* dst,
                         std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t a = src[i];
        std::uint64_t acc = 0;
        const std::uint64_t* t = table;
        for (int w = 0; w < windows; ++w, t += 16) {
            acc ^= t[(a >> (4 * w)) & 0xF];
        }
        dst[i] ^= acc;
    }
}

}  // namespace gfr::bulk
