#ifndef GFR_BULK_CPU_H
#define GFR_BULK_CPU_H

// Runtime CPU feature detection for the bulk region-kernel dispatch.
//
// Queried exactly once, when bulk::dispatch() first materialises the kernel
// table; every later region call just reads function pointers.  Detection is
// raw CPUID + XGETBV (not __builtin_cpu_supports) so the answer is identical
// across compilers and old toolchains, and so AVX-class kernels are only
// reported when the OS has actually enabled YMM state (XCR0) — a CPU flag
// without OS save support would SIGILL on the first vmovdqu.
//
// On non-x86 targets every field is false and the dispatch keeps the
// portable scalar kernels, which are always compiled.

namespace gfr::bulk {

/// ISA capabilities relevant to the region kernels, as the *running* CPU and
/// OS report them (not as this binary was compiled).
struct CpuFeatures {
    bool ssse3 = false;       ///< PSHUFB (the 16-byte nibble-table shuffle)
    bool avx2 = false;        ///< 32-byte integer ops, YMM state OS-enabled
    bool pclmul = false;      ///< PCLMULQDQ (128-bit carry-less multiply)
    bool vpclmulqdq = false;  ///< VPCLMULQDQ on YMM (implies avx2 usable here)
    bool gfni = false;        ///< GF2P8AFFINEQB (8x8 bit-matrix transform)
    bool avx512f = false;     ///< AVX-512 Foundation, ZMM+opmask OS-enabled
};

/// Probe the running CPU.  Cheap (two CPUID leaves + one XGETBV), but
/// callers should prefer the cached copy in bulk::dispatch().
CpuFeatures detect_cpu() noexcept;

}  // namespace gfr::bulk

#endif  // GFR_BULK_CPU_H
