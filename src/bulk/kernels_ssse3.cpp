// SSSE3 byte kernel: the split 4-bit shuffle-table technique (ParPar's
// fast-GF-multiplication survey) — both nibble product tables live in XMM
// registers and PSHUFB performs 16 table lookups at once, so one 16-byte
// chunk costs two shuffles, a shift, two ANDs and a XOR.
//
// Compiled with -mssse3 only in this translation unit; the dispatch calls in
// here only after runtime CPUID reports SSSE3.

#include "bulk/kernels.h"

#if defined(GFR_BULK_HAVE_SSSE3)

#include <tmmintrin.h>

namespace gfr::bulk {

namespace {

void byte_mul_ssse3(const NibbleTables& t, const std::uint8_t* src,
                    std::uint8_t* dst, std::size_t n) {
    const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo));
    const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi));
    const __m128i nib = _mm_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(v, nib));
        const __m128i ph = _mm_shuffle_epi8(
            hi, _mm_and_si128(_mm_srli_epi64(v, 4), nib));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                         _mm_xor_si128(pl, ph));
    }
    for (; i < n; ++i) {
        const std::uint8_t s = src[i];
        dst[i] = static_cast<std::uint8_t>(t.lo[s & 0xF] ^ t.hi[s >> 4]);
    }
}

void byte_addmul_ssse3(const NibbleTables& t, const std::uint8_t* src,
                       std::uint8_t* dst, std::size_t n) {
    const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo));
    const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi));
    const __m128i nib = _mm_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        const __m128i d =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
        const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(v, nib));
        const __m128i ph = _mm_shuffle_epi8(
            hi, _mm_and_si128(_mm_srli_epi64(v, 4), nib));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                         _mm_xor_si128(d, _mm_xor_si128(pl, ph)));
    }
    for (; i < n; ++i) {
        const std::uint8_t s = src[i];
        dst[i] ^= static_cast<std::uint8_t>(t.lo[s & 0xF] ^ t.hi[s >> 4]);
    }
}

const ByteKernel kByteSsse3{KernelKind::Ssse3, &byte_mul_ssse3,
                            &byte_addmul_ssse3};

}  // namespace

const ByteKernel* ssse3_byte_kernel() noexcept { return &kByteSsse3; }

}  // namespace gfr::bulk

#else  // TU compiled without SSSE3 (non-x86 or GFR_BULK_PORTABLE_ONLY)

namespace gfr::bulk {
const ByteKernel* ssse3_byte_kernel() noexcept { return nullptr; }
}  // namespace gfr::bulk

#endif
