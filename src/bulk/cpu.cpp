#include "bulk/cpu.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace gfr::bulk {

#if defined(__x86_64__) || defined(__i386__)

namespace {

/// XCR0 via XGETBV (inline asm: the _xgetbv intrinsic would require
/// compiling this portable TU with -mxsave).  Only called when CPUID
/// reports OSXSAVE, so the instruction is guaranteed to exist.
unsigned long long read_xcr0() noexcept {
    unsigned int eax = 0;
    unsigned int edx = 0;
    __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
    return (static_cast<unsigned long long>(edx) << 32) | eax;
}

}  // namespace

CpuFeatures detect_cpu() noexcept {
    CpuFeatures f;
    unsigned int a = 0;
    unsigned int b = 0;
    unsigned int c = 0;
    unsigned int d = 0;
    if (__get_cpuid(1, &a, &b, &c, &d) == 0) {
        return f;
    }
    f.pclmul = (c & (1U << 1)) != 0;
    f.ssse3 = (c & (1U << 9)) != 0;
    const bool osxsave = (c & (1U << 27)) != 0;
    // AVX-class kernels additionally need the OS to save YMM state:
    // XCR0 bits 1 (SSE) and 2 (AVX) both set.
    const bool ymm_os = osxsave && (read_xcr0() & 0x6) == 0x6;
    if (__get_cpuid_count(7, 0, &a, &b, &c, &d) != 0) {
        f.avx2 = ymm_os && (b & (1U << 5)) != 0;
        // The 256-bit VPCLMULQDQ kernel mixes in AVX2 integer ops (shifts,
        // shuffles, XOR), so it is only usable when both are present.
        f.vpclmulqdq = f.avx2 && f.pclmul && (c & (1U << 10)) != 0;
        // GFNI exists in SSE-only parts (some Atoms), but our kernel uses
        // the VEX 256-bit form, so usability is gated in kernel_supported
        // (gfni && avx2) rather than here — report the raw CPU bit.
        f.gfni = (c & (1U << 8)) != 0;
        // AVX-512 needs the OS to save opmask + ZMM state on top of the
        // YMM requirement: XCR0 bits 1-2 (SSE/AVX) and 5-7 (opmask,
        // ZMM_Hi256, Hi16_ZMM) all set, i.e. XCR0 & 0xE6 == 0xE6.
        const bool zmm_os = osxsave && (read_xcr0() & 0xE6) == 0xE6;
        f.avx512f = zmm_os && (b & (1U << 16)) != 0;
    }
    return f;
}

#else  // non-x86: no SIMD kernels are compiled, scalar dispatch only

CpuFeatures detect_cpu() noexcept { return {}; }

#endif

}  // namespace gfr::bulk
