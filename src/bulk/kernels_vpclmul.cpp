// VPCLMULQDQ word kernel: four single-word field multiplies per pass.  One
// 256-bit register holds four canonical u64 elements; two VPCLMULQDQ
// issues produce their four 128-bit carry-less products (even elements via
// imm 0x00, odd via 0x01), and the modulus fold runs vectorized on the
// 128-bit lanes — exactly FieldOps::reduce's iteration, but executed a
// *fixed* number of times (WideParams::folds, precomputed from the worst
// canonical product degree) so the loop is branch-free.
//
// A residual test (VPTEST) then proves every lane canonical; inputs outside
// the canonical contract — legal for the elementwise entry point, which
// mirrors FieldOps::mul_region's any-u64 semantics — fail the test and that
// group of four is redone through the scalar PCLMUL helper, which is the
// unbounded FieldOps::reduce loop verbatim.
//
// Compiled with -mvpclmulqdq -mavx2 -mpclmul only in this translation unit;
// the dispatch calls in here only after runtime CPUID reports VPCLMULQDQ
// (which the detector only sets together with usable AVX2 and PCLMULQDQ).

#include "bulk/kernels.h"

#if defined(GFR_BULK_HAVE_VPCLMUL)

#include <immintrin.h>

namespace gfr::bulk {

namespace {

inline void clmul1(std::uint64_t a, std::uint64_t b, std::uint64_t& hi,
                   std::uint64_t& lo) noexcept {
    const __m128i p = _mm_clmulepi64_si128(
        _mm_cvtsi64_si128(static_cast<long long>(a)),
        _mm_cvtsi64_si128(static_cast<long long>(b)), 0x00);
    lo = static_cast<std::uint64_t>(_mm_cvtsi128_si64(p));
    hi = static_cast<std::uint64_t>(
        _mm_cvtsi128_si64(_mm_unpackhi_epi64(p, p)));
}

/// FieldOps::reduce semantics on WideParams: reduce a 128-bit carry-less
/// product of *arbitrary* u64 operands to the canonical element.
std::uint64_t reduce1(const WideParams& p, std::uint64_t hi,
                      std::uint64_t lo) noexcept {
    if (p.m == 64) {
        while (hi != 0) {
            std::uint64_t fh = 0;
            std::uint64_t fl = 0;
            clmul1(hi, p.tails_mask, fh, fl);
            lo ^= fl;
            hi = fh;
        }
        return lo;
    }
    for (;;) {
        const std::uint64_t ex_lo = (lo >> p.m) | (hi << (64 - p.m));
        const std::uint64_t ex_hi = hi >> p.m;
        if ((ex_lo | ex_hi) == 0) {
            return lo;
        }
        lo &= p.elem_mask;
        std::uint64_t fh = 0;
        std::uint64_t fl = 0;
        clmul1(ex_lo, p.tails_mask, fh, fl);
        lo ^= fl;
        hi = fh;
        if (ex_hi != 0) {
            clmul1(ex_hi, p.tails_mask, fh, fl);
            hi ^= fl;
        }
    }
}

std::uint64_t mul1(const WideParams& p, std::uint64_t a,
                   std::uint64_t b) noexcept {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    clmul1(a, b, hi, lo);
    return reduce1(p, hi, lo);
}

/// Vector state shared by every pass of one region call.
struct VCtx {
    __m256i tails;   ///< tails_mask broadcast to every qword
    __m256i lomask;  ///< per 128-bit lane: [elem_mask, 0]
    __m128i cnt_m;   ///< shift count m (SRL; count 64 legally yields 0)
    __m128i cnt_inv; ///< shift count 64 - m (SLL)
    int folds;
};

inline VCtx make_ctx(const WideParams& p) noexcept {
    VCtx v;
    v.tails = _mm256_set1_epi64x(static_cast<long long>(p.tails_mask));
    v.lomask = _mm256_set_epi64x(0, static_cast<long long>(p.elem_mask), 0,
                                 static_cast<long long>(p.elem_mask));
    v.cnt_m = _mm_cvtsi32_si128(p.m);
    v.cnt_inv = _mm_cvtsi32_si128(64 - p.m);
    v.folds = p.folds;
    return v;
}

/// One fold iteration over two 128-bit products [lo, hi] held in one ymm:
/// excess = (lo >> m) | (hi << (64-m)) lands in qword 0 of each lane
/// (qword 1 holds garbage the 0x00 CLMUL selector never reads), product is
/// masked to its canonical low part and the excess*tails fold XORed in.
inline __m256i fold_step(__m256i prod, const VCtx& v) noexcept {
    const __m256i sr = _mm256_srl_epi64(prod, v.cnt_m);
    const __m256i sl = _mm256_sll_epi64(prod, v.cnt_inv);
    const __m256i sl_swapped =
        _mm256_shuffle_epi32(sl, _MM_SHUFFLE(1, 0, 3, 2));
    const __m256i ex = _mm256_or_si256(sr, sl_swapped);
    const __m256i fold = _mm256_clmulepi64_epi128(ex, v.tails, 0x00);
    return _mm256_xor_si256(_mm256_and_si256(prod, v.lomask), fold);
}

inline __m256i reduce_pair(__m256i prod, const VCtx& v) noexcept {
    for (int k = 0; k < v.folds; ++k) {
        prod = fold_step(prod, v);
    }
    return prod;
}

/// Nonzero when any of the two lanes still carries bits outside the
/// canonical element after the fixed folds (only possible for inputs
/// outside the canonical contract).
inline bool residual(__m256i pe, __m256i po, const VCtx& v) noexcept {
    const __m256i r = _mm256_or_si256(_mm256_andnot_si256(v.lomask, pe),
                                      _mm256_andnot_si256(v.lomask, po));
    return _mm256_testz_si256(r, r) == 0;
}

void word_mul_vpclmul(const WideParams& p, const std::uint64_t* src,
                      std::uint64_t* dst, std::size_t n) {
    const VCtx v = make_ctx(p);
    const __m256i c = _mm256_set1_epi64x(static_cast<long long>(p.c));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i pe =
            reduce_pair(_mm256_clmulepi64_epi128(x, c, 0x00), v);
        const __m256i po =
            reduce_pair(_mm256_clmulepi64_epi128(x, c, 0x01), v);
        if (residual(pe, po, v)) {
            for (int k = 0; k < 4; ++k) {
                dst[i + static_cast<std::size_t>(k)] =
                    mul1(p, src[i + static_cast<std::size_t>(k)], p.c);
            }
            continue;
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_unpacklo_epi64(pe, po));
    }
    for (; i < n; ++i) {
        dst[i] = mul1(p, src[i], p.c);
    }
}

void word_addmul_vpclmul(const WideParams& p, const std::uint64_t* src,
                         std::uint64_t* dst, std::size_t n) {
    const VCtx v = make_ctx(p);
    const __m256i c = _mm256_set1_epi64x(static_cast<long long>(p.c));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i pe =
            reduce_pair(_mm256_clmulepi64_epi128(x, c, 0x00), v);
        const __m256i po =
            reduce_pair(_mm256_clmulepi64_epi128(x, c, 0x01), v);
        if (residual(pe, po, v)) {
            for (int k = 0; k < 4; ++k) {
                dst[i + static_cast<std::size_t>(k)] ^=
                    mul1(p, src[i + static_cast<std::size_t>(k)], p.c);
            }
            continue;
        }
        const __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(dst + i),
            _mm256_xor_si256(d, _mm256_unpacklo_epi64(pe, po)));
    }
    for (; i < n; ++i) {
        dst[i] ^= mul1(p, src[i], p.c);
    }
}

void word_mul_elementwise_vpclmul(const WideParams& p, const std::uint64_t* a,
                                  const std::uint64_t* b, std::uint64_t* dst,
                                  std::size_t n) {
    const VCtx v = make_ctx(p);
    // Unlike the const-mul kernels (canonical-operand contract), this entry
    // point mirrors FieldOps::mul_region and accepts any u64s.  The vector
    // fold only tracks excess bits below m+64, so groups with a
    // non-canonical operand (for m < 64 their product can carry higher
    // excess) are detected up front and redone through the unbounded scalar
    // reduce.  For m == 64 every u64 is canonical and the test never fires.
    const __m256i elem = _mm256_set1_epi64x(static_cast<long long>(p.elem_mask));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i y =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i noncanon = _mm256_or_si256(
            _mm256_andnot_si256(elem, x), _mm256_andnot_si256(elem, y));
        if (_mm256_testz_si256(noncanon, noncanon) == 0) {
            for (int k = 0; k < 4; ++k) {
                const auto j = i + static_cast<std::size_t>(k);
                dst[j] = mul1(p, a[j], b[j]);
            }
            continue;
        }
        const __m256i pe =
            reduce_pair(_mm256_clmulepi64_epi128(x, y, 0x00), v);
        const __m256i po =
            reduce_pair(_mm256_clmulepi64_epi128(x, y, 0x11), v);
        if (residual(pe, po, v)) {
            for (int k = 0; k < 4; ++k) {
                const auto j = i + static_cast<std::size_t>(k);
                dst[j] = mul1(p, a[j], b[j]);
            }
            continue;
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_unpacklo_epi64(pe, po));
    }
    for (; i < n; ++i) {
        dst[i] = mul1(p, a[i], b[i]);
    }
}

const WordKernel kWordVpclmul{KernelKind::Vpclmul, &word_mul_vpclmul,
                              &word_addmul_vpclmul,
                              &word_mul_elementwise_vpclmul};

}  // namespace

const WordKernel* vpclmul_word_kernel() noexcept { return &kWordVpclmul; }

}  // namespace gfr::bulk

#else  // TU compiled without VPCLMULQDQ (non-x86 or GFR_BULK_PORTABLE_ONLY)

namespace gfr::bulk {
const WordKernel* vpclmul_word_kernel() noexcept { return nullptr; }
}  // namespace gfr::bulk

#endif
