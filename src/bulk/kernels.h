#ifndef GFR_BULK_KERNELS_H
#define GFR_BULK_KERNELS_H

// Bulk region kernels: the ISA-specific inner loops of the streaming
// GF(2^m) engine, plus the process-wide runtime dispatch that selects them.
//
// This header is a *leaf*: it depends on nothing above <cstdint>, so the
// field layer (FieldOps / ConstMultiplier region routing) can sit on top of
// it while bulk::RegionEngine — the traffic-shaped API in
// bulk/region_engine.h — sits on top of the field layer.  Two sublayers,
// one directory:
//
//     bulk/kernels.*      (ISA kernels + dispatch; below src/field)
//     bulk/region_engine.* (streaming API over FieldOps; above src/field)
//
// Kernel families and the per-constant state they consume:
//
//   - Byte kernels (fields with m <= 8, one symbol per byte): split 4-bit
//     shuffle tables — NibbleTables holds c*v and c*(v<<4) for every nibble
//     v, and a multiply is two table lookups XORed.  The SSSE3/AVX2 kernels
//     do 16/32 lookups per PSHUFB; the scalar kernel is the same two loads
//     per byte.  Because table[0] == 0, these kernels are also correct on
//     u64-layout regions of canonical elements reinterpreted as bytes (the
//     seven zero padding bytes of each element multiply to zero).
//     The GFNI kernel is the same family with different per-constant state:
//     multiplication by a fixed constant is GF(2)-linear in the input byte,
//     so it is one 8x8 bit-matrix transform — GF2P8AFFINEQB applies it to 32
//     bytes per instruction under *any* degree-<=8 modulus (the instruction's
//     baked-in AES polynomial is only used by its sibling GF2P8MULB, which we
//     deliberately do not use).  NibbleTables carries the matrix alongside
//     the nibble tables; both describe the same linear map.
//   - Word kernels (any single-word field, one canonical element per u64):
//     wide carry-less multiply — each element is CLMULed by the constant and
//     the 128-bit product folded down through the modulus tails, four
//     elements per pass on the 256-bit VPCLMULQDQ path.  WideParams carries
//     the reduction structure; no per-constant tables.
//   - The portable scalar u64 kernel is the 4-bit window-table walk
//     (word_mul_windows / word_addmul_windows), the same technique
//     ConstMultiplier has used since PR 1 — always compiled, bit-identical
//     reference for every SIMD kernel.
//
// Aliasing contract (all kernels): dst may equal src exactly (in-place), or
// the two regions must not overlap at all.  Partial overlap is undefined.
//
// Dispatch: bulk::dispatch() probes the CPU once (bulk/cpu.h) and pins the
// best compiled-and-supported kernel per family.  A kernel is only eligible
// when (a) its translation unit was compiled (GFR_BULK_HAVE_* — off on
// non-x86 targets or with -DGFR_BULK_PORTABLE_ONLY=ON) and (b) the running
// CPU+OS report the ISA, so the dispatch can never select an unsupported
// instruction set.  Setting the environment variable GFR_BULK_FORCE_SCALAR
// (to anything but "0") before first use pins the portable scalar kernels —
// the CI fallback job and A/B benchmarking both use it.

#include "bulk/cpu.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gfr::bulk {

/// Which ISA a kernel is built on.  Scalar is always available.
/// Adding an enumerator is a compile error (-Werror=switch, no defaults)
/// until every dispatch table in dispatch.cpp handles it.
enum class KernelKind : std::uint8_t { Scalar, Ssse3, Avx2, Vpclmul, Gfni };

[[nodiscard]] const char* kernel_name(KernelKind kind) noexcept;

/// True when the running CPU (per `f`) can execute kernels of this kind.
[[nodiscard]] bool kernel_supported(KernelKind kind, const CpuFeatures& f) noexcept;

/// Per-constant state of the byte kernels: lo[v] = c*v, hi[v] = c*(v<<4)
/// for every 4-bit v, all canonical field bytes.  `matrix` is the same
/// linear map y -> c*y packed for GF2P8AFFINEQB: byte 7-i of the qword is
/// row i, whose bit j is bit i of c*y^j mod f — so output bit i is the
/// parity of (row i AND input byte).  Builders (FieldOps::nibble_tables)
/// must keep matrix and lo/hi consistent; the GFNI kernel uses the matrix
/// for its vector body and the tables for the scalar tail.
struct NibbleTables {
    std::uint8_t lo[16];
    std::uint8_t hi[16];
    std::uint64_t matrix = 0;
};

/// Per-field (and per-constant) state of the carry-less word kernels.
/// `folds` is the fold-iteration count that provably cancels every excess
/// bit of a product of canonical operands — the vector loop runs exactly
/// that many, branch-free, and a residual check catches (rare,
/// out-of-contract) non-canonical inputs, which are redone scalar.
struct WideParams {
    std::uint64_t c = 0;           ///< canonical constant (const-mul kernels)
    std::uint64_t tails_mask = 0;  ///< f - y^m as a bit mask
    std::uint64_t elem_mask = 0;   ///< low-m ones (all ones when m == 64)
    int m = 0;
    int folds = 1;
};

/// Wide-kernel eligibility bound shared by every routing site (FieldOps,
/// ConstMultiplier, RegionEngine): past this fold count the window-table
/// walk beats the branch-free wide kernel (dense or high-tailed moduli;
/// every paper-catalog field folds in 2-3).
inline constexpr int kMaxWideFolds = 4;

/// dst[i] = table-product of src[i]; `addmul` variants XOR into dst instead.
using ByteRegionFn = void (*)(const NibbleTables& t, const std::uint8_t* src,
                              std::uint8_t* dst, std::size_t n);

/// dst[i] = c * src[i] (or ^= for addmul) over canonical u64 elements.
using WordRegionFn = void (*)(const WideParams& p, const std::uint64_t* src,
                              std::uint64_t* dst, std::size_t n);

/// dst[i] = a[i] * b[i] over arbitrary u64 operands (reduced like
/// FieldOps::mul); used by FieldOps::mul_region.
using WordElementwiseFn = void (*)(const WideParams& p, const std::uint64_t* a,
                                   const std::uint64_t* b, std::uint64_t* dst,
                                   std::size_t n);

struct ByteKernel {
    KernelKind kind = KernelKind::Scalar;
    ByteRegionFn mul = nullptr;
    ByteRegionFn addmul = nullptr;
};

struct WordKernel {
    KernelKind kind = KernelKind::Scalar;
    WordRegionFn mul = nullptr;
    WordRegionFn addmul = nullptr;
    WordElementwiseFn mul_elementwise = nullptr;
};

// --- Portable scalar kernels (always compiled) -------------------------------

/// The scalar byte kernel (two nibble-table loads + XOR per byte).
extern const ByteKernel kByteScalar;

/// Scalar u64 const-multiply via per-constant 4-bit window tables
/// (`table[w*16 + v]` = c * (v << 4w) mod f, `windows` = ceil(m/4) of them):
/// the PR-1 ConstMultiplier walk, kept as the always-available reference.
void word_mul_windows(const std::uint64_t* table, int windows,
                      const std::uint64_t* src, std::uint64_t* dst,
                      std::size_t n) noexcept;
void word_addmul_windows(const std::uint64_t* table, int windows,
                         const std::uint64_t* src, std::uint64_t* dst,
                         std::size_t n) noexcept;

// --- ISA kernel registries ---------------------------------------------------
// Defined by their translation units; return nullptr when the TU was
// compiled without its ISA (non-x86 target or GFR_BULK_PORTABLE_ONLY).

[[nodiscard]] const ByteKernel* ssse3_byte_kernel() noexcept;
[[nodiscard]] const ByteKernel* avx2_byte_kernel() noexcept;
[[nodiscard]] const ByteKernel* gfni_byte_kernel() noexcept;
[[nodiscard]] const WordKernel* vpclmul_word_kernel() noexcept;

/// Kernels compiled into this binary, Scalar first.  The differential tests
/// sweep these (running only the ones kernel_supported() allows).
[[nodiscard]] std::vector<KernelKind> compiled_byte_kernels();
[[nodiscard]] std::vector<KernelKind> compiled_word_kernels();

/// The compiled byte kernel of `kind` (Scalar included), or nullptr.
[[nodiscard]] const ByteKernel* byte_kernel(KernelKind kind) noexcept;

/// The compiled non-scalar word kernel of `kind`, or nullptr (the scalar
/// u64 path is the window-table walk above, which needs no WideParams).
[[nodiscard]] const WordKernel* word_kernel(KernelKind kind) noexcept;

// --- Runtime dispatch --------------------------------------------------------

/// The kernel selection for one (CPU, policy) pair.  `byte` always points at
/// a kernel (scalar at worst); `word` is null when no wide carry-less kernel
/// is compiled+supported, in which case u64 callers keep the window walk.
struct Dispatch {
    CpuFeatures cpu;
    bool forced_scalar = false;
    const ByteKernel* byte = nullptr;
    const WordKernel* word = nullptr;
};

/// Pure selection logic: picks the best compiled kernel the features allow.
/// Exposed (rather than buried in dispatch()) so tests can pin the
/// never-select-unsupported-ISA property against arbitrary feature sets.
[[nodiscard]] Dispatch make_dispatch(const CpuFeatures& f, bool force_scalar) noexcept;

/// Shared parsing for boolean environment knobs (GFR_BULK_FORCE_SCALAR and
/// friends): enabled iff set, non-empty, and not one of "0", "off",
/// "false", "no" (case-insensitive).  `value` is the getenv() result.
[[nodiscard]] bool env_flag_enabled(const char* value) noexcept;

/// The process-wide dispatch: CPU probed and GFR_BULK_FORCE_SCALAR read
/// once, on first call.  Every non-scalar kernel the selection picks is
/// self-tested against the scalar reference before it is returned
/// (guard/kernel_check.h); a failing kernel is quarantined and the next
/// rung of the ladder takes its place, so callers can never observe a
/// kernel that failed its golden vectors.
[[nodiscard]] const Dispatch& dispatch();

}  // namespace gfr::bulk

#endif  // GFR_BULK_KERNELS_H
