// GFNI byte kernel: constant-multiply in GF(2^m), m <= 8, as one affine
// transform per 32 bytes.  Multiplication by a fixed constant c under any
// modulus f is GF(2)-linear in the input byte, so the whole map is an 8x8
// bit matrix M with output bit i = parity(M.row[i] AND input) — exactly
// what GF2P8AFFINEQB computes (row i lives in qword byte 7-i, imm8 = 0).
// Unlike GF2P8MULB this does NOT bake in the AES polynomial: the modulus is
// encoded in the matrix by the table builder (FieldOps::nibble_tables), so
// the kernel serves every degree-<=8 field in the catalog.
//
// The VEX 256-bit form also needs AVX2 for the addmul XOR, which is why
// kernel_supported gates Gfni on (gfni && avx2).  The <32-byte remainder
// runs one 128-bit pass then falls back to the nibble tables, which the
// NibbleTables contract keeps consistent with the matrix.
//
// Compiled with -mgfni -mavx2 only in this translation unit; the dispatch
// calls in here only after runtime CPUID (+XGETBV) reports GFNI and AVX2.

#include "bulk/kernels.h"

#if defined(GFR_BULK_HAVE_GFNI)

#include <immintrin.h>

namespace gfr::bulk {

namespace {

void byte_mul_gfni(const NibbleTables& t, const std::uint8_t* src,
                   std::uint8_t* dst, std::size_t n) {
    const __m256i mat =
        _mm256_set1_epi64x(static_cast<long long>(t.matrix));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_gf2p8affine_epi64_epi8(v, mat, 0));
    }
    if (i + 16 <= n) {
        const __m128i mat128 = _mm256_castsi256_si128(mat);
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                         _mm_gf2p8affine_epi64_epi8(v, mat128, 0));
        i += 16;
    }
    for (; i < n; ++i) {
        const std::uint8_t s = src[i];
        dst[i] = static_cast<std::uint8_t>(t.lo[s & 0xF] ^ t.hi[s >> 4]);
    }
}

void byte_addmul_gfni(const NibbleTables& t, const std::uint8_t* src,
                      std::uint8_t* dst, std::size_t n) {
    const __m256i mat =
        _mm256_set1_epi64x(static_cast<long long>(t.matrix));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(dst + i),
            _mm256_xor_si256(d, _mm256_gf2p8affine_epi64_epi8(v, mat, 0)));
    }
    if (i + 16 <= n) {
        const __m128i mat128 = _mm256_castsi256_si128(mat);
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        const __m128i d =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(dst + i),
            _mm_xor_si128(d, _mm_gf2p8affine_epi64_epi8(v, mat128, 0)));
        i += 16;
    }
    for (; i < n; ++i) {
        const std::uint8_t s = src[i];
        dst[i] ^= static_cast<std::uint8_t>(t.lo[s & 0xF] ^ t.hi[s >> 4]);
    }
}

const ByteKernel kByteGfni{KernelKind::Gfni, &byte_mul_gfni,
                           &byte_addmul_gfni};

}  // namespace

const ByteKernel* gfni_byte_kernel() noexcept { return &kByteGfni; }

}  // namespace gfr::bulk

#else  // TU compiled without GFNI (non-x86 or GFR_BULK_PORTABLE_ONLY)

namespace gfr::bulk {
const ByteKernel* gfni_byte_kernel() noexcept { return nullptr; }
}  // namespace gfr::bulk

#endif
