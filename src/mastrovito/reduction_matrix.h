#ifndef GFR_MASTROVITO_REDUCTION_MATRIX_H
#define GFR_MASTROVITO_REDUCTION_MATRIX_H

// Reduction matrix Q of an irreducible polynomial f of degree m.
//
// Row i (0 <= i <= m-2) holds the canonical-basis expansion of
// x^(m+i) mod f(x):   x^(m+i) = sum_k Q[i][k] x^k.
//
// Q drives everything "Mastrovito" in the paper:
//   c_k = d_k + sum_i Q[i][k] * d_(m+i)
// which in S/T notation (S_(k+1) = d_k, T_i = d_(m+i)) is exactly the paper's
// Table I:  c_k = S_(k+1) + sum of the T_i with Q[i][k] = 1.

#include "gf2/gf2_poly.h"

#include <vector>

namespace gfr::mastrovito {

class ReductionMatrix {
public:
    /// Requires deg(f) >= 2.  f need not be irreducible for the matrix to be
    /// well defined, but fields built on it obviously do.
    explicit ReductionMatrix(const gf2::Poly& f);

    [[nodiscard]] int m() const noexcept { return m_; }

    /// Q[i][k]: does x^(m+i) mod f contain x^k?  Requires 0 <= i <= m-2.
    [[nodiscard]] bool at(int i, int k) const;

    /// x^(m+i) mod f as a polynomial.
    [[nodiscard]] const gf2::Poly& row(int i) const;

    /// Exponents present in row i, ascending.
    [[nodiscard]] std::vector<int> row_support(int i) const;

    /// The i with Q[i][k] = 1, ascending — i.e. which T_i feed coefficient
    /// c_k of the product (column support of Q).
    [[nodiscard]] std::vector<int> t_indices_for_coefficient(int k) const;

    /// Total number of ones in Q (the XOR cost of a naive reduction layer).
    [[nodiscard]] int ones_count() const;

private:
    int m_ = 0;
    std::vector<gf2::Poly> rows_;  // rows_[i] = x^(m+i) mod f
};

}  // namespace gfr::mastrovito

#endif  // GFR_MASTROVITO_REDUCTION_MATRIX_H
