#ifndef GFR_MASTROVITO_MASTROVITO_MATRIX_H
#define GFR_MASTROVITO_MASTROVITO_MATRIX_H

// The Mastrovito product matrix M(A):  c = M(A) * b  over GF(2), where each
// entry M[k][j] is a GF(2) sum of coordinates of A.  This combines polynomial
// multiplication and modular reduction in a single matrix — the classic
// bit-parallel formulation ([1], used by the Paar multiplier [2] that the
// paper benchmarks against).

#include "mastrovito/reduction_matrix.h"

#include <vector>

namespace gfr::mastrovito {

class MastrovitoMatrix {
public:
    explicit MastrovitoMatrix(const ReductionMatrix& q);

    [[nodiscard]] int m() const noexcept { return m_; }

    /// Sorted a-indices whose XOR forms entry (k, j); empty = constant 0.
    /// Indices appearing an even number of times have cancelled already.
    [[nodiscard]] const std::vector<int>& entry(int k, int j) const;

    /// Total number of (non-cancelled) a-terms across the matrix; a proxy for
    /// the XOR cost of a naive (unshared) row evaluation.
    [[nodiscard]] int term_count() const;

private:
    int m_ = 0;
    std::vector<std::vector<int>> entries_;  // (k * m + j) -> a-indices
};

}  // namespace gfr::mastrovito

#endif  // GFR_MASTROVITO_MASTROVITO_MATRIX_H
