#include "mastrovito/mastrovito_matrix.h"

#include <algorithm>
#include <stdexcept>

namespace gfr::mastrovito {

MastrovitoMatrix::MastrovitoMatrix(const ReductionMatrix& q) : m_{q.m()} {
    entries_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), {});
    // c_k = sum_j b_j * ( [0 <= k-j] a_(k-j)  +  sum_{Q[i][k]=1} a_(m+i-j) ),
    // with every a-index constrained to [0, m-1] and duplicates cancelling.
    for (int k = 0; k < m_; ++k) {
        const auto t_rows = q.t_indices_for_coefficient(k);
        for (int j = 0; j < m_; ++j) {
            std::vector<int> idx;
            if (k - j >= 0) {
                idx.push_back(k - j);  // k-j <= k <= m-1 always holds
            }
            for (const int i : t_rows) {
                const int a = m_ + i - j;
                if (a >= 0 && a <= m_ - 1) {
                    idx.push_back(a);
                }
            }
            std::sort(idx.begin(), idx.end());
            // Cancel pairs mod 2.
            std::vector<int> kept;
            for (std::size_t p = 0; p < idx.size();) {
                std::size_t r = p;
                while (r < idx.size() && idx[r] == idx[p]) {
                    ++r;
                }
                if ((r - p) % 2 == 1) {
                    kept.push_back(idx[p]);
                }
                p = r;
            }
            entries_[static_cast<std::size_t>(k) * static_cast<std::size_t>(m_) +
                     static_cast<std::size_t>(j)] = std::move(kept);
        }
    }
}

const std::vector<int>& MastrovitoMatrix::entry(int k, int j) const {
    if (k < 0 || k >= m_ || j < 0 || j >= m_) {
        throw std::out_of_range{"MastrovitoMatrix::entry: index out of range"};
    }
    return entries_[static_cast<std::size_t>(k) * static_cast<std::size_t>(m_) +
                    static_cast<std::size_t>(j)];
}

int MastrovitoMatrix::term_count() const {
    int total = 0;
    for (const auto& e : entries_) {
        total += static_cast<int>(e.size());
    }
    return total;
}

}  // namespace gfr::mastrovito
