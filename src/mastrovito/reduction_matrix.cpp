#include "mastrovito/reduction_matrix.h"

#include <stdexcept>

namespace gfr::mastrovito {

using gf2::Poly;

ReductionMatrix::ReductionMatrix(const Poly& f) : m_{f.degree()} {
    if (m_ < 2) {
        throw std::invalid_argument{"ReductionMatrix: degree must be >= 2"};
    }
    rows_.reserve(static_cast<std::size_t>(m_ - 1));
    // Iteratively: row_0 = x^m mod f = f - x^m (over GF(2): f + x^m);
    // row_(i+1) = x * row_i mod f, reducing the possible overflow term x^m.
    Poly r = f + Poly::monomial(m_);
    rows_.push_back(r);
    for (int i = 1; i <= m_ - 2; ++i) {
        r = r << 1;
        if (r.coeff(m_)) {
            r.set_coeff(m_, false);
            r += rows_[0];
        }
        rows_.push_back(r);
    }
}

bool ReductionMatrix::at(int i, int k) const {
    if (i < 0 || i > m_ - 2) {
        throw std::out_of_range{"ReductionMatrix::at: row out of range"};
    }
    if (k < 0 || k > m_ - 1) {
        throw std::out_of_range{"ReductionMatrix::at: column out of range"};
    }
    return rows_[static_cast<std::size_t>(i)].coeff(k);
}

const Poly& ReductionMatrix::row(int i) const {
    if (i < 0 || i > m_ - 2) {
        throw std::out_of_range{"ReductionMatrix::row: row out of range"};
    }
    return rows_[static_cast<std::size_t>(i)];
}

std::vector<int> ReductionMatrix::row_support(int i) const { return row(i).support(); }

std::vector<int> ReductionMatrix::t_indices_for_coefficient(int k) const {
    std::vector<int> out;
    for (int i = 0; i <= m_ - 2; ++i) {
        if (at(i, k)) {
            out.push_back(i);
        }
    }
    return out;
}

int ReductionMatrix::ones_count() const {
    int total = 0;
    for (const auto& r : rows_) {
        total += r.weight();
    }
    return total;
}

}  // namespace gfr::mastrovito
