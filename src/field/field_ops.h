#ifndef GFR_FIELD_FIELD_OPS_H
#define GFR_FIELD_FIELD_OPS_H

// Fixed-modulus fast arithmetic engine for GF(2^m).
//
// The paper's whole premise is that sparse (trinomial / pentanomial) moduli
// admit cheap shift-XOR reduction.  FieldOps precomputes the modulus's sparse
// support once and then reduces products by folding the excess bits down
// through the tail exponents, instead of the generic bit-serial divmod the
// reference path uses.  Two regimes:
//
//   - m <= 64 ("single-word"): elements are one std::uint64_t.  Multiply is a
//     portable carry-less comb (or PCLMULQDQ when compiled with
//     GFR_USE_PCLMUL on x86), reduction is 2-3 fold iterations, and no
//     operation allocates.
//   - m > 64 ("multi-word"): elements stay gf2::Poly; the engine routes
//     through the allocation-free Poly kernels (mul_into / square_into /
//     add_shifted) and reuses an internal excess scratch, so steady-state
//     multiplies do no heap work beyond the caller's output element.
//
// ConstMultiplier serves bulk "region" traffic (Reed-Solomon encoding,
// verification sweeps): one constant multiplied across many elements via
// per-constant 4-bit window tables, the classic software-GF technique
// (cf. ParPar's fast-GF-multiplication notes).
//
// Thread-safety: FieldOps is immutable after construction; every operation
// is const.  The multi-word (m > 64) path needs working buffers, which the
// caller passes as an explicit FieldOps::Scratch — one per thread (or use
// the convenience overloads, which borrow a thread_local default).  One
// FieldOps instance can therefore serve concurrent verification and
// region-encode traffic with no external locking.  The single-word path and
// ConstMultiplier::mul are pure.

#include "bulk/kernels.h"
#include "gf2/clmul.h"
#include "gf2/gf2_poly.h"

#include <bit>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace gfr::field {

namespace detail {

using gf2::detail::clmul64;    // word-level carry-less product primitive
using gf2::detail::spread32;   // shared with Poly::square_into

}  // namespace detail

class FieldOps {
public:
    /// Precompute the reduction structure for a fixed modulus of degree >= 2.
    /// Irreducibility is the caller's concern (field::Field checks it).
    explicit FieldOps(gf2::Poly modulus);

    [[nodiscard]] int degree() const noexcept { return m_; }
    [[nodiscard]] const gf2::Poly& modulus() const noexcept { return modulus_; }

    /// True when elements fit one word and the u64 fast path applies.
    [[nodiscard]] bool single_word() const noexcept { return m_ <= 64; }

    /// Words per canonical element: ceil(m / 64).
    [[nodiscard]] std::size_t elem_words() const noexcept {
        return static_cast<std::size_t>(m_ + 63) / 64;
    }

    // --- Single-word path (requires single_word()); zero heap allocations --
    // Header-inline: these are the innermost ops of every hot loop.

    /// Reduce a 128-bit carry-less product (hi:lo) modulo the field modulus.
    /// Folds the excess E = P div y^m down by one carry-less multiply with
    /// the tail polynomial (P mod f == P mod y^m + E * (f - y^m)), iterated
    /// until no excess remains; sparse moduli converge in 2-3 folds because
    /// the largest tail sits far below m.
    [[nodiscard]] std::uint64_t reduce(std::uint64_t hi, std::uint64_t lo) const noexcept {
        if (m_ == 64) {
            while (hi != 0) {
                std::uint64_t fold_hi = 0;
                std::uint64_t fold_lo = 0;
                detail::clmul64(hi, tails_mask_, fold_hi, fold_lo);
                lo ^= fold_lo;
                hi = fold_hi;
            }
            return lo;
        }
        for (;;) {
            const std::uint64_t ex_lo = (lo >> m_) | (hi << (64 - m_));
            const std::uint64_t ex_hi = hi >> m_;
            if ((ex_lo | ex_hi) == 0) {
                return lo;
            }
            lo &= elem_mask_;
            std::uint64_t fold_hi = 0;
            std::uint64_t fold_lo = 0;
            detail::clmul64(ex_lo, tails_mask_, fold_hi, fold_lo);
            lo ^= fold_lo;
            hi = fold_hi;
            if (ex_hi != 0) {
                // deg(ex_hi) + deg(tails) < 64, so this lands entirely in hi.
                detail::clmul64(ex_hi, tails_mask_, fold_hi, fold_lo);
                hi ^= fold_lo;
            }
        }
    }

    [[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b) const noexcept {
        std::uint64_t hi = 0;
        std::uint64_t lo = 0;
        detail::clmul64(a, b, hi, lo);
        return reduce(hi, lo);
    }

    [[nodiscard]] std::uint64_t sqr(std::uint64_t a) const noexcept {
        return reduce(detail::spread32(static_cast<std::uint32_t>(a >> 32)),
                      detail::spread32(static_cast<std::uint32_t>(a)));
    }

    [[nodiscard]] std::uint64_t pow(std::uint64_t a, std::uint64_t e) const noexcept {
        std::uint64_t result = 1;
        std::uint64_t base = a;
        while (e != 0) {
            if (e & 1U) {
                result = mul(result, base);
            }
            base = sqr(base);
            e >>= 1U;
        }
        return result;
    }

    /// Multiplicative inverse via the Itoh-Tsujii addition chain on m - 1:
    /// a^-1 = (a^(2^(m-1) - 1))^2, built from ~m squarings but only
    /// floor(log2(m-1)) + popcount(m-1) - 1 multiplies (Fermat's ladder pays
    /// m - 1 multiplies).  Throws std::invalid_argument on zero.
    [[nodiscard]] std::uint64_t inv(std::uint64_t a) const;

    /// Multiplicative inverse via Fermat (a^(2^m - 2)): the m-1 high
    /// squarings multiplied together.  Kept as an engine-internal
    /// cross-check/benchmark target for inv()'s addition chain.
    [[nodiscard]] std::uint64_t inv_fermat(std::uint64_t a) const;

    /// Element-wise batch multiply: out[i] = a[i] * b[i].  Spans must have
    /// equal length; out may alias a or b (exactly — not partially).  Routed
    /// through the bulk kernel dispatch: the VPCLMULQDQ wide kernel when the
    /// running CPU has it, the scalar mul() loop otherwise — results are
    /// bit-identical either way.
    void mul_region(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                    std::span<std::uint64_t> out) const;

    /// In-place scale of a region by one constant.  Operands must be
    /// canonical (degree < m): neither the window tables nor the SIMD
    /// region kernels cover higher bits.  Routed through the bulk dispatch
    /// (nibble-shuffle kernel for m <= 8, VPCLMULQDQ wide kernel otherwise,
    /// scalar window tables as the portable fallback).  For repeated use of
    /// the same constant, hold a ConstMultiplier instead.
    void mul_region_const(std::uint64_t c, std::span<std::uint64_t> data) const;

    /// Reduction structure handed to the bulk carry-less word kernels.
    /// `c` is stored as given — canonicalise with reduce(0, c) first when it
    /// may exceed degree m.  Requires single_word().
    [[nodiscard]] bulk::WideParams wide_params(std::uint64_t c) const noexcept {
        bulk::WideParams p;
        p.c = c;
        p.tails_mask = tails_mask_;
        p.elem_mask = elem_mask_;
        p.m = m_;
        p.folds = fold_bound_;
        return p;
    }

    /// Fold iterations that provably cancel the excess of any product of two
    /// canonical elements (single-word fields; sparse moduli need 2-3).
    [[nodiscard]] int fold_bound() const noexcept { return fold_bound_; }

    /// Per-constant nibble product tables for the bulk byte kernels:
    /// lo[v] = c*v, hi[v] = c*(v << 4) for every 4-bit v.  Requires
    /// degree() <= 8; c is canonicalised first.  The one builder shared by
    /// ConstMultiplier and bulk::RegionEngine, so their tables can never
    /// diverge.
    [[nodiscard]] bulk::NibbleTables nibble_tables(std::uint64_t c) const;

    /// Per-constant 4-bit window tables for the scalar u64 region walk:
    /// ceil(m/4) x 16 entries, table[w*16 + v] = c * (v << 4w) mod f.
    /// Requires single_word(); c is canonicalised first.
    [[nodiscard]] std::vector<std::uint64_t> window_tables(std::uint64_t c) const;

    // --- Multi-word path (any m); caller-owned scratch ---------------------
    //
    // The engine itself is immutable: all working storage for the m > 64
    // operations lives in a Scratch the caller owns.  Hot consumers
    // (verification sweeps, region encoders) hold one Scratch per thread and
    // pass it explicitly; casual callers can use the overloads without a
    // scratch parameter, which borrow a thread_local default.

    /// Working buffers for the multi-word operations.  Modulus-independent:
    /// one Scratch serves any number of FieldOps instances, but must not be
    /// shared between threads.  Buffers grow to the largest operand seen and
    /// are then reused, so steady-state operation allocates nothing.
    struct Scratch {
        gf2::MulArena arena;  ///< Karatsuba split/sum arena for mul
        gf2::Poly base;       ///< reduced operand held across the inv chain
        // Raw word buffers for the reduction fold and the inversion chain's
        // square/multiply loop (kept off the Poly bookkeeping: ~m squarings
        // per inverse make per-op normalize/degree scans the dominant cost
        // otherwise).
        std::vector<std::uint64_t> wcur, wtmp, wprod, wsave;
    };

    /// The calling thread's default Scratch (shared by every FieldOps on
    /// that thread; never shared across threads).
    static Scratch& thread_scratch();

    /// out = a * b mod f.  out must not alias a or b.
    void mul(const gf2::Poly& a, const gf2::Poly& b, gf2::Poly& out,
             Scratch& scratch) const;
    void mul(const gf2::Poly& a, const gf2::Poly& b, gf2::Poly& out) const {
        mul(a, b, out, thread_scratch());
    }

    /// out = a^2 mod f.  out must not alias a.
    void sqr(const gf2::Poly& a, gf2::Poly& out, Scratch& scratch) const;
    void sqr(const gf2::Poly& a, gf2::Poly& out) const {
        sqr(a, out, thread_scratch());
    }

    /// out = a^-1 mod f via the Itoh-Tsujii addition chain (multi-word
    /// sibling of inv(std::uint64_t); also serves m <= 64 operands).  Throws
    /// std::invalid_argument when a is zero (mod f).  out must not alias a.
    void inv(const gf2::Poly& a, gf2::Poly& out, Scratch& scratch) const;
    void inv(const gf2::Poly& a, gf2::Poly& out) const {
        inv(a, out, thread_scratch());
    }

    /// Reduce an arbitrary polynomial modulo f by shift-XOR folding.
    void reduce_in_place(gf2::Poly& p, Scratch& scratch) const;
    void reduce_in_place(gf2::Poly& p) const {
        reduce_in_place(p, thread_scratch());
    }

    /// In-place word-span reduction: fold every bit >= m of p (pn words)
    /// down through the modulus tails, leaving the canonical element in the
    /// low elem_words() words and zeros above.  The raw sibling of
    /// reduce_in_place for callers holding bare buffers (the inversion
    /// chain, bulk pipelines).  Requires pn >= elem_words() + 1 so tail
    /// spill of the boundary word stays in bounds.
    void reduce_words(std::uint64_t* p, std::size_t pn) const noexcept;

private:
    gf2::Poly modulus_;
    int m_ = 0;
    std::vector<int> tails_;        ///< support of the modulus below y^m
    std::uint64_t elem_mask_ = 0;   ///< low-m mask (all-ones when m == 64)
    std::uint64_t tails_mask_ = 0;  ///< bit t set per tail (f - y^m), m <= 64
    // Nonzero tails packed as one word shifted down by their minimum
    // exponent: a type II pentanomial's {n, n+1, n+2} cluster (or a
    // trinomial's single tail) folds with ONE carry-less multiply deposited
    // at bit n, plus a direct XOR for the constant tail.
    std::uint64_t cluster_mask_ = 0;  ///< (f - y^m - 1) >> cluster_shift_
    int cluster_shift_ = 0;           ///< smallest nonzero tail exponent
    bool cluster_fold_ok_ = false;    ///< fast single-pass fold applicable
    int fold_bound_ = 1;              ///< see fold_bound()
};

/// Precomputed constant multiplier for region traffic in single-word fields:
/// table_[w][v] = c * (v << 4w) mod f for every 4-bit window w of the operand,
/// so one multiply is ceil(m/4) table lookups XORed together.
///
/// Since PR 5 the region entry points route through the bulk kernel
/// dispatch, resolved once at construction: fields with m <= 8 run the
/// nibble-shuffle byte kernels directly on the u64 layout (each element's
/// seven zero padding bytes multiply to zero), wider fields run the
/// VPCLMULQDQ wide kernel, and the window-table walk remains the portable
/// scalar path — all bit-identical on canonical operands.
class ConstMultiplier {
public:
    /// Requires ops.single_word().  Builds ceil(m/4) * 16 table entries.
    /// The constant is reduced; operands passed to mul() must already be
    /// canonical (degree < m) — bits beyond the top window are not reduced.
    ConstMultiplier(const FieldOps& ops, std::uint64_t c);

    [[nodiscard]] std::uint64_t constant() const noexcept { return c_; }

    [[nodiscard]] std::uint64_t mul(std::uint64_t a) const noexcept {
        std::uint64_t acc = 0;
        const std::uint64_t* t = table_.data();
        for (int w = 0; w < windows_; ++w, t += 16) {
            acc ^= t[(a >> (4 * w)) & 0xF];
        }
        return acc;
    }

    /// data[i] = c * data[i] for the whole region, in place.
    void mul_region(std::span<std::uint64_t> data) const noexcept;

    /// out[i] = c * in[i].  Spans must have equal length; out may alias in
    /// exactly (in-place) — partial overlap is undefined.
    void mul_region(std::span<const std::uint64_t> in,
                    std::span<std::uint64_t> out) const;

private:
    std::uint64_t c_ = 0;
    int windows_ = 0;
    std::vector<std::uint64_t> table_;  ///< windows_ x 16 window products
    // Bulk dispatch routing, resolved once at construction (null → scalar
    // window walk).  byte_kernel_ only for m <= 8 on little-endian x86
    // (which is the only place the SIMD byte kernels exist).
    const bulk::ByteKernel* byte_kernel_ = nullptr;
    const bulk::WordKernel* word_kernel_ = nullptr;
    bulk::NibbleTables nibbles_{};
    bulk::WideParams wide_{};
};

}  // namespace gfr::field

#endif  // GFR_FIELD_FIELD_OPS_H
