#ifndef GFR_FIELD_FIELD_OPS_H
#define GFR_FIELD_FIELD_OPS_H

// Fixed-modulus fast arithmetic engine for GF(2^m).
//
// The paper's whole premise is that sparse (trinomial / pentanomial) moduli
// admit cheap shift-XOR reduction.  FieldOps precomputes the modulus's sparse
// support once and then reduces products by folding the excess bits down
// through the tail exponents, instead of the generic bit-serial divmod the
// reference path uses.  Two regimes:
//
//   - m <= 64 ("single-word"): elements are one std::uint64_t.  Multiply is a
//     portable carry-less comb (or PCLMULQDQ when compiled with
//     GFR_USE_PCLMUL on x86), reduction is 2-3 fold iterations, and no
//     operation allocates.
//   - m > 64 ("multi-word"): elements stay gf2::Poly; the engine routes
//     through the allocation-free Poly kernels (mul_into / square_into /
//     add_shifted) and reuses an internal excess scratch, so steady-state
//     multiplies do no heap work beyond the caller's output element.
//
// ConstMultiplier serves bulk "region" traffic (Reed-Solomon encoding,
// verification sweeps): one constant multiplied across many elements via
// per-constant 4-bit window tables, the classic software-GF technique
// (cf. ParPar's fast-GF-multiplication notes).
//
// Thread-safety: the multi-word path mutates internal scratch, so one
// FieldOps instance must not be shared across threads without external
// locking.  The single-word path and ConstMultiplier::mul are pure.

#include "gf2/gf2_poly.h"

#include <bit>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#if defined(GFR_USE_PCLMUL) && defined(__PCLMUL__)
#include <wmmintrin.h>
#endif

namespace gfr::field {

namespace detail {

/// 64x64 -> 128 carry-less multiply.  Header-inline so the single-word field
/// operations fold into their callers.
inline void clmul64(std::uint64_t a, std::uint64_t b, std::uint64_t& hi,
                    std::uint64_t& lo) noexcept {
#if defined(GFR_USE_PCLMUL) && defined(__PCLMUL__)
    const __m128i va = _mm_cvtsi64_si128(static_cast<long long>(a));
    const __m128i vb = _mm_cvtsi64_si128(static_cast<long long>(b));
    const __m128i prod = _mm_clmulepi64_si128(va, vb, 0x00);
    lo = static_cast<std::uint64_t>(_mm_cvtsi128_si64(prod));
    // High half via SSE2 unpack (avoids an SSE4.1 dependency for the extract).
    hi = static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(prod, prod)));
#else
    // Portable comb over the set bits of the sparser operand.
    if (std::popcount(b) > std::popcount(a)) {
        std::swap(a, b);
    }
    hi = 0;
    lo = 0;
    while (b != 0) {
        const int k = std::countr_zero(b);
        b &= b - 1;
        lo ^= a << k;
        if (k != 0) {
            hi ^= a >> (64 - k);
        }
    }
#endif
}

using gf2::detail::spread32;  // shared with Poly::square_into

}  // namespace detail

class FieldOps {
public:
    /// Precompute the reduction structure for a fixed modulus of degree >= 2.
    /// Irreducibility is the caller's concern (field::Field checks it).
    explicit FieldOps(gf2::Poly modulus);

    [[nodiscard]] int degree() const noexcept { return m_; }
    [[nodiscard]] const gf2::Poly& modulus() const noexcept { return modulus_; }

    /// True when elements fit one word and the u64 fast path applies.
    [[nodiscard]] bool single_word() const noexcept { return m_ <= 64; }

    // --- Single-word path (requires single_word()); zero heap allocations --
    // Header-inline: these are the innermost ops of every hot loop.

    /// Reduce a 128-bit carry-less product (hi:lo) modulo the field modulus.
    /// Folds the excess E = P div y^m down by one carry-less multiply with
    /// the tail polynomial (P mod f == P mod y^m + E * (f - y^m)), iterated
    /// until no excess remains; sparse moduli converge in 2-3 folds because
    /// the largest tail sits far below m.
    [[nodiscard]] std::uint64_t reduce(std::uint64_t hi, std::uint64_t lo) const noexcept {
        if (m_ == 64) {
            while (hi != 0) {
                std::uint64_t fold_hi = 0;
                std::uint64_t fold_lo = 0;
                detail::clmul64(hi, tails_mask_, fold_hi, fold_lo);
                lo ^= fold_lo;
                hi = fold_hi;
            }
            return lo;
        }
        for (;;) {
            const std::uint64_t ex_lo = (lo >> m_) | (hi << (64 - m_));
            const std::uint64_t ex_hi = hi >> m_;
            if ((ex_lo | ex_hi) == 0) {
                return lo;
            }
            lo &= elem_mask_;
            std::uint64_t fold_hi = 0;
            std::uint64_t fold_lo = 0;
            detail::clmul64(ex_lo, tails_mask_, fold_hi, fold_lo);
            lo ^= fold_lo;
            hi = fold_hi;
            if (ex_hi != 0) {
                // deg(ex_hi) + deg(tails) < 64, so this lands entirely in hi.
                detail::clmul64(ex_hi, tails_mask_, fold_hi, fold_lo);
                hi ^= fold_lo;
            }
        }
    }

    [[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b) const noexcept {
        std::uint64_t hi = 0;
        std::uint64_t lo = 0;
        detail::clmul64(a, b, hi, lo);
        return reduce(hi, lo);
    }

    [[nodiscard]] std::uint64_t sqr(std::uint64_t a) const noexcept {
        return reduce(detail::spread32(static_cast<std::uint32_t>(a >> 32)),
                      detail::spread32(static_cast<std::uint32_t>(a)));
    }

    [[nodiscard]] std::uint64_t pow(std::uint64_t a, std::uint64_t e) const noexcept {
        std::uint64_t result = 1;
        std::uint64_t base = a;
        while (e != 0) {
            if (e & 1U) {
                result = mul(result, base);
            }
            base = sqr(base);
            e >>= 1U;
        }
        return result;
    }

    /// Multiplicative inverse via Fermat (a^(2^m - 2)).  Throws on zero.
    [[nodiscard]] std::uint64_t inv(std::uint64_t a) const;

    /// Element-wise batch multiply: out[i] = a[i] * b[i].  Spans must have
    /// equal length; out may alias a or b.
    void mul_region(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
                    std::span<std::uint64_t> out) const;

    /// In-place scale of a region by one constant.  Operands must be
    /// canonical (degree < m): the window tables do not cover higher bits.
    /// For repeated use of the same constant, hold a ConstMultiplier instead
    /// (this builds one per call).
    void mul_region_const(std::uint64_t c, std::span<std::uint64_t> data) const;

    // --- Multi-word path (any m); internal scratch reuse -------------------

    /// out = a * b mod f.  out must not alias a or b.
    void mul(const gf2::Poly& a, const gf2::Poly& b, gf2::Poly& out);

    /// out = a^2 mod f.  out must not alias a.
    void sqr(const gf2::Poly& a, gf2::Poly& out);

    /// Reduce an arbitrary polynomial modulo f by shift-XOR folding.
    void reduce_in_place(gf2::Poly& p);

private:
    gf2::Poly modulus_;
    int m_ = 0;
    std::vector<int> tails_;        ///< support of the modulus below y^m
    std::uint64_t elem_mask_ = 0;   ///< low-m mask (all-ones when m == 64)
    std::uint64_t tails_mask_ = 0;  ///< bit t set per tail (f - y^m), m <= 64
    std::vector<std::uint64_t> prod_;  ///< multi-word product scratch
    gf2::Poly excess_;                 ///< multi-word reduction scratch
};

/// Precomputed constant multiplier for region traffic in single-word fields:
/// table_[w][v] = c * (v << 4w) mod f for every 4-bit window w of the operand,
/// so one multiply is ceil(m/4) table lookups XORed together.
class ConstMultiplier {
public:
    /// Requires ops.single_word().  Builds ceil(m/4) * 16 table entries.
    /// The constant is reduced; operands passed to mul() must already be
    /// canonical (degree < m) — bits beyond the top window are not reduced.
    ConstMultiplier(const FieldOps& ops, std::uint64_t c);

    [[nodiscard]] std::uint64_t constant() const noexcept { return c_; }

    [[nodiscard]] std::uint64_t mul(std::uint64_t a) const noexcept {
        std::uint64_t acc = 0;
        const std::uint64_t* t = table_.data();
        for (int w = 0; w < windows_; ++w, t += 16) {
            acc ^= t[(a >> (4 * w)) & 0xF];
        }
        return acc;
    }

    /// data[i] = c * data[i] for the whole region, in place.
    void mul_region(std::span<std::uint64_t> data) const noexcept;

    /// out[i] = c * in[i].  Spans must have equal length; may alias.
    void mul_region(std::span<const std::uint64_t> in,
                    std::span<std::uint64_t> out) const;

private:
    std::uint64_t c_ = 0;
    int windows_ = 0;
    std::vector<std::uint64_t> table_;  ///< windows_ x 16 window products
};

}  // namespace gfr::field

#endif  // GFR_FIELD_FIELD_OPS_H
