#ifndef GFR_FIELD_FIELD_CATALOG_H
#define GFR_FIELD_FIELD_CATALOG_H

// Catalog of the binary fields used in the paper's evaluation (Table V) and
// the standards bodies it cites.
//
//   - Paper Table V rows: (8,2), (64,23), (113,4), (113,34), (122,49),
//     (139,59), (148,72), (163,66), (163,68).
//   - SECG recommends GF(2^113); NIST ECDSA recommends degrees
//     163, 233, 283, 409, 571 (all constructible from type II pentanomials,
//     which is the paper's motivating claim).

#include "field/gf2m.h"

#include <string>
#include <vector>

namespace gfr::field {

/// One evaluation field: type II pentanomial parameters plus provenance.
struct FieldSpec {
    int m = 0;
    int n = 0;
    std::string origin;  // "", "SECG", "NIST", ...

    [[nodiscard]] Field make() const { return Field::type2(m, n); }
    [[nodiscard]] std::string label() const;  // "(8,2)" / "(113,4) SECG"
};

/// The nine (m, n) pairs of Table V, in table order.
const std::vector<FieldSpec>& table5_fields();

/// The five NIST ECDSA binary-field degrees.
const std::vector<int>& nist_ecdsa_degrees();

/// GF(2^8) with f = y^8 + y^4 + y^3 + y^2 + 1 — the worked example of the
/// whole paper (Tables I-IV).
Field gf256_paper_field();

}  // namespace gfr::field

#endif  // GFR_FIELD_FIELD_CATALOG_H
