#include "field/field_catalog.h"

namespace gfr::field {

std::string FieldSpec::label() const {
    std::string out = "(" + std::to_string(m) + "," + std::to_string(n) + ")";
    if (!origin.empty()) {
        out += " " + origin;
    }
    return out;
}

const std::vector<FieldSpec>& table5_fields() {
    static const std::vector<FieldSpec> fields = {
        {8, 2, ""},       {64, 23, ""},      {113, 4, "SECG"},
        {113, 34, "SECG"}, {122, 49, ""},    {139, 59, ""},
        {148, 72, ""},    {163, 66, "NIST"}, {163, 68, "NIST"},
    };
    return fields;
}

const std::vector<int>& nist_ecdsa_degrees() {
    static const std::vector<int> degrees = {163, 233, 283, 409, 571};
    return degrees;
}

Field gf256_paper_field() { return Field::type2(8, 2); }

}  // namespace gfr::field
