#include "field/gf2m.h"

#include "gf2/irreducibility.h"
#include "gf2/pentanomial.h"

#include <stdexcept>

namespace gfr::field {

using gf2::Poly;

namespace {

/// Low word of a canonical element (elements of single-word fields have at
/// most one word by the degree < m invariant).
std::uint64_t word_of(const Field::Element& e) noexcept {
    return e.words().empty() ? 0 : e.words()[0];
}

/// True when the u64 fast path may read this operand whole.  Non-canonical
/// inputs of degree >= 64 must take the generic path (which reduces them)
/// rather than being silently truncated to their low word.
bool fits_word(const Field::Element& e) noexcept { return e.words().size() <= 1; }

}  // namespace

Field::Field(Poly modulus) : modulus_{std::move(modulus)}, m_{modulus_.degree()} {
    if (m_ < 2) {
        throw std::invalid_argument{"Field: modulus degree must be >= 2"};
    }
    if (!gf2::is_irreducible(modulus_)) {
        throw std::invalid_argument{"Field: modulus is not irreducible: " +
                                    modulus_.to_string()};
    }
    ops_ = std::make_shared<FieldOps>(modulus_);
}

Field::Element Field::element_from_word(std::uint64_t w) const {
    Element e;
    e.assign_word(w);
    return e;
}

Field Field::type2(int m, int n) {
    return Field{gf2::TypeIIPentanomial{m, n}.poly()};
}

bool Field::is_element(const Element& e) const noexcept { return e.degree() < m_; }

Field::Element Field::add(const Element& a, const Element& b) const { return a + b; }

Field::Element Field::reduce(const gf2::Poly& p) const {
    Element out = p;
    ops_->reduce_in_place(out);
    return out;
}

Field::Element Field::mul(const Element& a, const Element& b) const {
    if (ops_->single_word() && fits_word(a) && fits_word(b)) {
        return element_from_word(ops_->mul(word_of(a), word_of(b)));
    }
    Element out;
    ops_->mul(a, b, out);
    return out;
}

Field::Element Field::sqr(const Element& a) const {
    if (ops_->single_word() && fits_word(a)) {
        return element_from_word(ops_->sqr(word_of(a)));
    }
    Element out;
    ops_->sqr(a, out);
    return out;
}

Field::Element Field::mul_reference(const Element& a, const Element& b) const {
    Poly prod;
    Poly::mul_comb_into(a, b, prod);  // independent of the clmul/Karatsuba path
    return prod % modulus_;
}

Field::Element Field::sqr_reference(const Element& a) const {
    return a.square() % modulus_;
}

void Field::mul_region_const(const Element& c, std::span<Element> data) const {
    Element constant = c;  // snapshot: c may alias an element of data
    ops_->reduce_in_place(constant);
    if (ops_->single_word()) {
        const ConstMultiplier cm{*ops_, word_of(constant)};
        Element out;
        for (auto& e : data) {
            if (is_element(e)) {  // window tables cover canonical operands only
                e.assign_word(cm.mul(word_of(e)));
            } else {  // non-canonical entry: reduce through the generic path
                ops_->mul(constant, e, out);
                std::swap(e, out);
            }
        }
        return;
    }
    Element out;
    for (auto& e : data) {
        ops_->mul(constant, e, out);
        std::swap(e, out);  // buffer ping-pong: no per-element allocation
    }
}

Field::Element Field::pow(const Element& a, std::uint64_t e) const {
    if (ops_->single_word() && fits_word(a)) {
        return element_from_word(ops_->pow(word_of(a), e));
    }
    Element result = one();
    Element base = a;
    while (e != 0) {
        if (e & 1U) {
            result = mul(result, base);
        }
        base = sqr(base);
        e >>= 1U;
    }
    return result;
}

Field::Element Field::inv(const Element& a) const {
    if (a.is_zero()) {
        throw std::invalid_argument{"Field::inv: zero has no inverse"};
    }
    if (ops_->single_word() && fits_word(a)) {
        return element_from_word(ops_->inv(word_of(a)));
    }
    Element out;
    ops_->inv(a, out);
    return out;
}

Field::Element Field::inv_euclid(const Element& a) const {
    if (a.is_zero()) {
        throw std::invalid_argument{"Field::inv_euclid: zero has no inverse"};
    }
    // Extended Euclid over GF(2)[y]: maintain g1*a == r1 (mod f).
    Poly r0 = modulus_;
    Poly r1 = a;
    Poly g0;               // coefficient of a for r0 (starts at 0)
    Poly g1 = Poly::one(); // coefficient of a for r1
    while (!r1.is_one()) {
        auto [q, r] = Poly::divmod(r0, r1);
        r0 = std::move(r1);
        r1 = std::move(r);
        Poly g = g0 + q * g1;
        g0 = std::move(g1);
        g1 = std::move(g);
        if (r1.is_zero()) {
            throw std::logic_error{
                "Field::inv_euclid: gcd != 1; modulus not irreducible?"};
        }
    }
    return g1 % modulus_;
}

Field::Element Field::inv_fermat(const Element& a) const {
    if (a.is_zero()) {
        throw std::invalid_argument{"Field::inv_fermat: zero has no inverse"};
    }
    if (ops_->single_word() && fits_word(a)) {
        return element_from_word(ops_->inv_fermat(word_of(a)));
    }
    // a^(2^m - 2) = prod of squarings: (2^m - 2) = 111...10 in binary.
    Element result = one();
    Element power = sqr(a);  // a^2
    for (int i = 1; i < m_; ++i) {
        result = mul(result, power);
        power = sqr(power);
    }
    return result;
}

bool Field::trace(const Element& a) const {
    Element acc = a;
    Element sum = a;
    for (int i = 1; i < m_; ++i) {
        acc = sqr(acc);
        sum += acc;
    }
    // The trace lands in GF(2): either 0 or 1.
    if (sum.is_zero()) {
        return false;
    }
    if (sum.is_one()) {
        return true;
    }
    throw std::logic_error{"Field::trace: trace not in GF(2); modulus not irreducible?"};
}

Field::Element Field::half_trace(const Element& a) const {
    if (m_ % 2 == 0) {
        throw std::invalid_argument{"Field::half_trace: requires odd extension degree"};
    }
    Element acc = a;
    Element sum = a;
    for (int i = 1; i <= (m_ - 1) / 2; ++i) {
        acc = sqr(sqr(acc));
        sum += acc;
    }
    return sum;
}

std::optional<Field::Element> Field::solve_quadratic(const Element& c) const {
    if (trace(c)) {
        return std::nullopt;  // z^2 + z = c solvable iff Tr(c) = 0
    }
    const Element z = half_trace(c);
    return z;
}

Field::Element Field::from_bits(std::uint64_t bits) const {
    if (m_ < 64 && m_ >= 0) {
        bits &= (m_ == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << m_) - 1);
    }
    return element_from_word(bits);  // heap-free: single word stays inline
}

std::uint64_t Field::to_bits(const Element& e) const {
    if (m_ > 64) {
        throw std::invalid_argument{"Field::to_bits: field degree exceeds 64"};
    }
    return e.words().empty() ? 0 : e.words()[0];
}

Field::Element Field::random_element(std::mt19937_64& rng) const {
    std::vector<std::uint64_t> words(static_cast<std::size_t>((m_ + 63) / 64), 0);
    for (auto& w : words) {
        w = rng();
    }
    const int top_bits = m_ % 64;
    if (top_bits != 0) {
        words.back() &= (std::uint64_t{1} << top_bits) - 1;
    }
    return Poly::from_words(words);
}

std::string Field::to_string() const {
    return "GF(2^" + std::to_string(m_) + ") mod " + modulus_.to_string();
}

}  // namespace gfr::field
