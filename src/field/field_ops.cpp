#include "field/field_ops.h"

#include <stdexcept>
#include <utility>

namespace gfr::field {

using detail::clmul64;

FieldOps::FieldOps(gf2::Poly modulus) : modulus_{std::move(modulus)}, m_{modulus_.degree()} {
#if defined(GFR_USE_PCLMUL) && defined(__PCLMUL__) && defined(__GNUC__)
    // Compiled for PCLMULQDQ: fail loudly here rather than SIGILL later when
    // this binary lands on a CPU without it (rebuild with
    // -DGFR_ENABLE_PCLMUL=OFF for a portable binary).
    if (!__builtin_cpu_supports("pclmul")) {
        throw std::runtime_error{
            "FieldOps: built with GFR_USE_PCLMUL but this CPU lacks PCLMULQDQ"};
    }
#endif
    if (m_ < 2) {
        throw std::invalid_argument{"FieldOps: modulus degree must be >= 2"};
    }
    for (const int e : modulus_.support()) {
        if (e < m_) {
            tails_.push_back(e);
        }
    }
    if (m_ <= 64) {
        elem_mask_ = (m_ == 64) ? ~std::uint64_t{0}
                                : ((std::uint64_t{1} << m_) - 1);
        for (const int t : tails_) {
            tails_mask_ |= std::uint64_t{1} << t;
        }
    }
}

std::uint64_t FieldOps::inv(std::uint64_t a) const {
    if (a == 0) {
        throw std::invalid_argument{"FieldOps::inv: zero has no inverse"};
    }
    // Fermat: a^(2^m - 2) as the product of the m-1 high squarings.
    std::uint64_t result = 1;
    std::uint64_t power = sqr(a);
    for (int i = 1; i < m_; ++i) {
        result = mul(result, power);
        power = sqr(power);
    }
    return result;
}

void FieldOps::mul_region(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b,
                          std::span<std::uint64_t> out) const {
    if (a.size() != b.size() || a.size() != out.size()) {
        throw std::invalid_argument{"FieldOps::mul_region: span length mismatch"};
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] = mul(a[i], b[i]);
    }
}

void FieldOps::mul_region_const(std::uint64_t c, std::span<std::uint64_t> data) const {
    const ConstMultiplier cm{*this, c};
    cm.mul_region(data);
}

void FieldOps::mul(const gf2::Poly& a, const gf2::Poly& b, gf2::Poly& out) {
    const auto aw = a.words();
    const auto bw = b.words();
    if (single_word() && aw.size() <= 1 && bw.size() <= 1) {
        out.assign_word(mul(aw.empty() ? 0 : aw[0], bw.empty() ? 0 : bw[0]));
        return;
    }
    if (aw.empty() || bw.empty()) {
        out.assign_words({});
        return;
    }
    // Word-level schoolbook: one carry-less 64x64 product per word pair
    // (PCLMULQDQ when compiled in, portable comb otherwise).
    prod_.assign(aw.size() + bw.size(), 0);
    for (std::size_t i = 0; i < aw.size(); ++i) {
        for (std::size_t j = 0; j < bw.size(); ++j) {
            std::uint64_t hi = 0;
            std::uint64_t lo = 0;
            clmul64(aw[i], bw[j], hi, lo);
            prod_[i + j] ^= lo;
            prod_[i + j + 1] ^= hi;
        }
    }
    out.assign_words(prod_);
    reduce_in_place(out);
}

void FieldOps::sqr(const gf2::Poly& a, gf2::Poly& out) {
    const auto aw = a.words();
    if (single_word() && aw.size() <= 1) {
        out.assign_word(sqr(aw.empty() ? 0 : aw[0]));
        return;
    }
    gf2::Poly::square_into(a, out);
    reduce_in_place(out);
}

void FieldOps::reduce_in_place(gf2::Poly& p) {
    // Fold the excess E = p div y^m down through the tails until deg < m,
    // via the allocation-free Poly kernels; excess_ is reused across calls.
    while (p.degree() >= m_) {
        gf2::Poly::shr_into(p, m_, excess_);
        p.truncate(m_);
        for (const int t : tails_) {
            p.add_shifted(excess_, t);
        }
    }
}

ConstMultiplier::ConstMultiplier(const FieldOps& ops, std::uint64_t c) {
    if (!ops.single_word()) {
        throw std::invalid_argument{
            "ConstMultiplier: requires a single-word field (m <= 64)"};
    }
    c_ = ops.reduce(0, c);  // canonicalise so constant() reports a field element
    windows_ = (ops.degree() + 3) / 4;
    table_.assign(static_cast<std::size_t>(windows_) * 16, 0);
    for (int w = 0; w < windows_; ++w) {
        for (std::uint64_t v = 1; v < 16; ++v) {
            table_[static_cast<std::size_t>(w) * 16 + v] =
                ops.mul(c_, ops.reduce(0, v << (4 * w)));
        }
    }
}

void ConstMultiplier::mul_region(std::span<std::uint64_t> data) const noexcept {
    for (auto& d : data) {
        d = mul(d);
    }
}

void ConstMultiplier::mul_region(std::span<const std::uint64_t> in,
                                 std::span<std::uint64_t> out) const {
    if (in.size() != out.size()) {
        throw std::invalid_argument{"ConstMultiplier::mul_region: span length mismatch"};
    }
    for (std::size_t i = 0; i < in.size(); ++i) {
        out[i] = mul(in[i]);
    }
}

}  // namespace gfr::field
