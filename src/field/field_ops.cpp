#include "field/field_ops.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gfr::field {

using detail::clmul64;

FieldOps::FieldOps(gf2::Poly modulus) : modulus_{std::move(modulus)}, m_{modulus_.degree()} {
#if defined(GFR_USE_PCLMUL) && defined(__PCLMUL__) && defined(__GNUC__)
    // Compiled for PCLMULQDQ: fail loudly here rather than SIGILL later when
    // this binary lands on a CPU without it (rebuild with
    // -DGFR_ENABLE_PCLMUL=OFF for a portable binary).
    if (!__builtin_cpu_supports("pclmul")) {
        throw std::runtime_error{
            "FieldOps: built with GFR_USE_PCLMUL but this CPU lacks PCLMULQDQ"};
    }
#endif
    if (m_ < 2) {
        throw std::invalid_argument{"FieldOps: modulus degree must be >= 2"};
    }
    for (const int e : modulus_.support()) {
        if (e < m_) {
            tails_.push_back(e);
        }
    }
    if (m_ <= 64) {
        elem_mask_ = (m_ == 64) ? ~std::uint64_t{0}
                                : ((std::uint64_t{1} << m_) - 1);
        for (const int t : tails_) {
            tails_mask_ |= std::uint64_t{1} << t;
        }
        // Fold-count bound for the branch-free SIMD reduction: starting
        // from the worst canonical product degree 2m-2, each fold replaces
        // degree d with d - m + max_tail, so iterate that recurrence until
        // it drops below m.  Sparse (paper-catalog) moduli converge in 2-3.
        if (!tails_.empty()) {
            const int t_max = tails_.back();
            long d = 2L * m_ - 2;
            int folds = 0;
            while (d >= m_) {
                d = d - m_ + t_max;
                ++folds;
            }
            fold_bound_ = folds > 0 ? folds : 1;
        }
    }
    // Cluster-fold precomputation: constant tail plus one <64-bit cluster of
    // nonzero tails, all far enough below m that a top-down fold never
    // re-deposits at or above the word being folded.
    if (tails_.size() >= 2 && tails_.front() == 0 && tails_.back() < m_ - 63 &&
        tails_.back() - tails_[1] < 64) {
        cluster_shift_ = tails_[1];
        for (std::size_t k = 1; k < tails_.size(); ++k) {
            cluster_mask_ |= std::uint64_t{1} << (tails_[k] - cluster_shift_);
        }
        cluster_fold_ok_ = true;
    }
}

std::uint64_t FieldOps::inv(std::uint64_t a) const {
    a = reduce(0, a);  // canonicalise: a == 0 mod f has no inverse
    if (a == 0) {
        throw std::invalid_argument{"FieldOps::inv: zero has no inverse"};
    }
    // Itoh-Tsujii addition chain on e = m - 1: maintain cur = a^(2^t - 1)
    // and walk e's bits from the second-highest down.  Doubling t costs t
    // squarings and one multiply ("cur^(2^t) * cur"); absorbing a set bit
    // costs one squaring and one multiply by a.  Finish with
    // a^-1 = (a^(2^(m-1) - 1))^2.
    const auto e = static_cast<unsigned>(m_ - 1);
    std::uint64_t cur = a;
    int t = 1;
    for (int i = std::bit_width(e) - 2; i >= 0; --i) {
        std::uint64_t power = cur;
        for (int j = 0; j < t; ++j) {
            power = sqr(power);
        }
        cur = mul(power, cur);
        t *= 2;
        if ((e >> i) & 1U) {
            cur = mul(sqr(cur), a);
            ++t;
        }
    }
    return sqr(cur);
}

std::uint64_t FieldOps::inv_fermat(std::uint64_t a) const {
    a = reduce(0, a);  // canonicalise: a == 0 mod f has no inverse
    if (a == 0) {
        throw std::invalid_argument{"FieldOps::inv_fermat: zero has no inverse"};
    }
    // Fermat: a^(2^m - 2) as the product of the m-1 high squarings.
    std::uint64_t result = 1;
    std::uint64_t power = sqr(a);
    for (int i = 1; i < m_; ++i) {
        result = mul(result, power);
        power = sqr(power);
    }
    return result;
}

void FieldOps::mul_region(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b,
                          std::span<std::uint64_t> out) const {
    if (a.size() != b.size() || a.size() != out.size()) {
        throw std::invalid_argument{"FieldOps::mul_region: span length mismatch"};
    }
    if (single_word() && fold_bound_ <= bulk::kMaxWideFolds) {
        if (const bulk::WordKernel* k = bulk::dispatch().word; k != nullptr) {
            k->mul_elementwise(wide_params(0), a.data(), b.data(), out.data(),
                               a.size());
            return;
        }
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] = mul(a[i], b[i]);
    }
}

void FieldOps::mul_region_const(std::uint64_t c, std::span<std::uint64_t> data) const {
    // This per-call entry point skips the full ConstMultiplier build where
    // the dispatched kernel needs less: the byte kernels only want the 32
    // nibble products (not the window tables), and the wide carry-less
    // kernel needs no per-constant tables at all.
    if (m_ <= 8) {
        if (const bulk::ByteKernel* k = bulk::dispatch().byte;
            k->kind != bulk::KernelKind::Scalar) {
            const bulk::NibbleTables t = nibble_tables(c);
            k->mul(t, reinterpret_cast<const std::uint8_t*>(data.data()),
                   reinterpret_cast<std::uint8_t*>(data.data()),
                   data.size() * sizeof(std::uint64_t));
            return;
        }
    } else if (single_word() && fold_bound_ <= bulk::kMaxWideFolds) {
        if (const bulk::WordKernel* k = bulk::dispatch().word; k != nullptr) {
            k->mul(wide_params(reduce(0, c)), data.data(), data.data(),
                   data.size());
            return;
        }
    }
    const ConstMultiplier cm{*this, c};
    cm.mul_region(data);
}

namespace {

/// dst (2n words) = square of (src, n words): interleave each bit with zero.
/// With PCLMULQDQ, w x w is the interleave in one instruction.
void spread_words(const std::uint64_t* src, std::size_t n, std::uint64_t* dst) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t w = src[i];
#if defined(GFR_USE_PCLMUL) && defined(__PCLMUL__)
        detail::clmul64(w, w, dst[2 * i + 1], dst[2 * i]);
#else
        dst[2 * i] = detail::spread32(static_cast<std::uint32_t>(w));
        dst[2 * i + 1] = detail::spread32(static_cast<std::uint32_t>(w >> 32));
#endif
    }
}

}  // namespace

FieldOps::Scratch& FieldOps::thread_scratch() {
    static thread_local Scratch scratch;
    return scratch;
}

void FieldOps::mul(const gf2::Poly& a, const gf2::Poly& b, gf2::Poly& out,
                   Scratch& scratch) const {
    const auto aw = a.words();
    const auto bw = b.words();
    if (single_word() && aw.size() <= 1 && bw.size() <= 1) {
        out.assign_word(mul(aw.empty() ? 0 : aw[0], bw.empty() ? 0 : bw[0]));
        return;
    }
    if (aw.empty() || bw.empty()) {
        out.assign_words({});
        return;
    }
    // Word-level schoolbook with the Karatsuba layer above the crossover
    // (one carry-less 64x64 product per word pair at the base) straight into
    // the scratch word buffer, then fold the excess and hand the canonical
    // words to out in one assignment — no intermediate Poly bookkeeping.
    const std::size_t pn = std::max(aw.size() + bw.size(), elem_words() + 1);
    scratch.wprod.assign(pn, 0);
    gf2::mul_words(aw.data(), aw.size(), bw.data(), bw.size(), scratch.wprod.data(),
                   scratch.arena);
    reduce_words(scratch.wprod.data(), pn);
    out.assign_words({scratch.wprod.data(), std::min(pn, elem_words())});
}

void FieldOps::sqr(const gf2::Poly& a, gf2::Poly& out, Scratch& scratch) const {
    const auto aw = a.words();
    if (single_word() && aw.size() <= 1) {
        out.assign_word(sqr(aw.empty() ? 0 : aw[0]));
        return;
    }
    if (aw.empty()) {
        out.assign_words({});
        return;
    }
    const std::size_t pn = std::max(2 * aw.size(), elem_words() + 1);
    scratch.wtmp.assign(pn, 0);
    spread_words(aw.data(), aw.size(), scratch.wtmp.data());
    reduce_words(scratch.wtmp.data(), pn);
    out.assign_words({scratch.wtmp.data(), std::min(pn, elem_words())});
}

void FieldOps::reduce_words(std::uint64_t* p, std::size_t pn) const noexcept {
    const int top = m_ % 64;  // 0: the element boundary is word-aligned
    const auto mdiv = static_cast<std::size_t>(m_ / 64);
    const std::size_t first_full = (top != 0) ? mdiv + 1 : mdiv;
#if defined(GFR_USE_PCLMUL) && defined(__PCLMUL__)
    // Single-pass carry-less fold: walk the excess words top-down; the word
    // w at index i carries exponents 64i..64i+63, eliminated by XORing w at
    // bit s = 64i - m (constant tail) plus one clmul of w with the packed
    // nonzero-tail cluster deposited at s + cluster_shift.  Every deposit
    // lands strictly below word i (largest tail below m - 63), so the
    // descending scan absorbs re-spills in the same pass and the partial
    // boundary word finishes without looping.  Dense or high-tailed moduli
    // fall through to the generic shift-XOR path.
    if (cluster_fold_ok_) {
        // (hi:lo) XOR-deposited at bit position s; high writes past the
        // value's true top XOR zeros, with one guard keeping them in bounds.
        const auto deposit = [p, pn](std::uint64_t lo, std::uint64_t hi,
                                     std::size_t s) {
            const std::size_t ws = s / 64;
            const int bs = static_cast<int>(s % 64);
            if (bs == 0) {
                p[ws] ^= lo;
                p[ws + 1] ^= hi;
            } else {
                p[ws] ^= lo << bs;
                p[ws + 1] ^= (lo >> (64 - bs)) ^ (hi << bs);
                if (ws + 2 < pn) {
                    p[ws + 2] ^= hi >> (64 - bs);
                }
            }
        };
        for (std::size_t i = pn; i-- > first_full;) {
            const std::uint64_t w = p[i];
            if (w == 0) {
                continue;
            }
            p[i] = 0;
            const auto s = static_cast<std::size_t>(static_cast<long>(i) * 64 - m_);
            std::uint64_t hi = 0;
            std::uint64_t lo = 0;
            detail::clmul64(w, cluster_mask_, hi, lo);
            deposit(w, 0, s);
            deposit(lo, hi, s + static_cast<std::size_t>(cluster_shift_));
        }
        if (top != 0) {
            const std::uint64_t w = p[mdiv] >> top;
            if (w != 0) {
                p[mdiv] &= (std::uint64_t{1} << top) - 1;
                std::uint64_t hi = 0;
                std::uint64_t lo = 0;
                detail::clmul64(w, cluster_mask_, hi, lo);
                p[0] ^= w;
                deposit(lo, hi, static_cast<std::size_t>(cluster_shift_));
            }
        }
        return;
    }
#endif
    // One pass folds every excess word top-down; for the catalog's sparse
    // moduli (largest tail well below m - 64) nothing re-spills and the
    // second pass just verifies.  Dense or high-tailed moduli re-deposit
    // excess bits, which the outer loop picks up again.
    for (;;) {
        bool any = false;
        for (std::size_t i = pn; i-- > first_full;) {
            const std::uint64_t w = p[i];
            if (w == 0) {
                continue;
            }
            p[i] = 0;
            any = true;
            const auto base = static_cast<long>(i) * 64 - m_;
            for (const int t : tails_) {
                const auto sh = static_cast<std::size_t>(base + t);
                const auto ws = sh / 64;
                const int bs = static_cast<int>(sh % 64);
                p[ws] ^= w << bs;
                if (bs != 0) {
                    p[ws + 1] ^= w >> (64 - bs);
                }
            }
        }
        if (top != 0) {
            const std::uint64_t w = p[mdiv] >> top;
            if (w != 0) {
                any = true;
                p[mdiv] &= (std::uint64_t{1} << top) - 1;
                for (const int t : tails_) {
                    const auto ws = static_cast<std::size_t>(t) / 64;
                    const int bs = t % 64;
                    p[ws] ^= w << bs;
                    if (bs != 0) {
                        p[ws + 1] ^= w >> (64 - bs);
                    }
                }
            }
        }
        if (!any) {
            return;
        }
    }
}

void FieldOps::inv(const gf2::Poly& a, gf2::Poly& out, Scratch& scratch) const {
    const auto aw = a.words();
    if (single_word() && aw.size() <= 1) {
        out.assign_word(inv(aw.empty() ? 0 : aw[0]));  // throws on zero
        return;
    }
    scratch.base = a;
    reduce_in_place(scratch.base, scratch);
    if (scratch.base.is_zero()) {
        throw std::invalid_argument{"FieldOps::inv: zero has no inverse"};
    }
    // Itoh-Tsujii addition chain on e = m - 1 (see the single-word overload
    // for the recurrence).  The ~m squarings dominate the chain, so the loop
    // runs on raw word buffers: spread + fold per squaring, mul_words (with
    // its Karatsuba layer) + fold per multiply — no Poly normalize/degree
    // bookkeeping per operation.
    const std::size_t mw = elem_words();
    const std::size_t bufn = 2 * mw;
    scratch.wcur.assign(bufn, 0);
    scratch.wtmp.assign(bufn, 0);
    scratch.wprod.assign(bufn, 0);
    scratch.wsave.assign(bufn, 0);
    const auto bw = scratch.base.words();
    std::copy(bw.begin(), bw.end(), scratch.wcur.begin());

    const auto square_times = [&](int k) {
        for (int j = 0; j < k; ++j) {
            spread_words(scratch.wcur.data(), mw, scratch.wtmp.data());
            reduce_words(scratch.wtmp.data(), bufn);
            std::swap(scratch.wcur, scratch.wtmp);
        }
    };
    const auto mul_cur_by = [&](const std::uint64_t* other) {
        std::fill(scratch.wprod.begin(), scratch.wprod.end(), 0);
        gf2::mul_words(scratch.wcur.data(), mw, other, mw, scratch.wprod.data(),
                       scratch.arena);
        reduce_words(scratch.wprod.data(), bufn);
        std::swap(scratch.wcur, scratch.wprod);
    };

    const auto e = static_cast<unsigned>(m_ - 1);
    int t = 1;
    for (int i = std::bit_width(e) - 2; i >= 0; --i) {
        std::copy(scratch.wcur.begin(), scratch.wcur.end(), scratch.wsave.begin());
        square_times(t);                      // cur = cur^(2^t)
        mul_cur_by(scratch.wsave.data());     // cur = a^(2^(2t) - 1)
        t *= 2;
        if ((e >> i) & 1U) {
            square_times(1);
            std::copy(bw.begin(), bw.end(), scratch.wsave.begin());
            std::fill(scratch.wsave.begin() + static_cast<long>(bw.size()),
                      scratch.wsave.end(), 0);
            mul_cur_by(scratch.wsave.data()); // cur = a^(2^(t+1) - 1)
            ++t;
        }
    }
    square_times(1);  // a^-1 = (a^(2^(m-1) - 1))^2
    out.assign_words({scratch.wcur.data(), mw});
}

void FieldOps::reduce_in_place(gf2::Poly& p, Scratch& scratch) const {
    if (p.degree() < m_) {
        return;
    }
    // Route through the word-span fold: copy into the scratch buffer sized
    // for the tail-spill contract, reduce, and hand the canonical low words
    // back.  The copies are a few words; the fold itself is the clmul fast
    // path on PCLMUL builds.
    const auto pw = p.words();
    const std::size_t pn = std::max(pw.size(), elem_words()) + 1;
    scratch.wtmp.assign(pn, 0);
    std::copy(pw.begin(), pw.end(), scratch.wtmp.begin());
    reduce_words(scratch.wtmp.data(), pn);
    p.assign_words({scratch.wtmp.data(), elem_words()});
}

bulk::NibbleTables FieldOps::nibble_tables(std::uint64_t c) const {
    if (m_ > 8) {
        throw std::invalid_argument{
            "FieldOps::nibble_tables: requires degree <= 8"};
    }
    const std::uint64_t cc = reduce(0, c);
    bulk::NibbleTables t;
    for (std::uint64_t v = 0; v < 16; ++v) {
        t.lo[v] = static_cast<std::uint8_t>(mul(cc, v));
        t.hi[v] = static_cast<std::uint8_t>(mul(cc, v << 4));
    }
    // The same map packed for GF2P8AFFINEQB (the GFNI byte kernel): matrix
    // byte 7-i is row i, whose bit j is bit i of c * y^j mod f — the
    // columns of the linear map y -> c*y.  Output bit i of the transform is
    // then parity(row i AND input byte), which is that map exactly.
    t.matrix = 0;
    for (int j = 0; j < 8; ++j) {
        const std::uint64_t col = mul(cc, std::uint64_t{1} << j);
        for (int i = 0; i < 8; ++i) {
            if ((col >> i) & 1U) {
                t.matrix |= std::uint64_t{1} << ((7 - i) * 8 + j);
            }
        }
    }
    return t;
}

std::vector<std::uint64_t> FieldOps::window_tables(std::uint64_t c) const {
    if (!single_word()) {
        throw std::invalid_argument{
            "FieldOps::window_tables: requires a single-word field"};
    }
    const std::uint64_t cc = reduce(0, c);
    const int windows = (m_ + 3) / 4;
    std::vector<std::uint64_t> table(static_cast<std::size_t>(windows) * 16, 0);
    for (int w = 0; w < windows; ++w) {
        for (std::uint64_t v = 1; v < 16; ++v) {
            table[static_cast<std::size_t>(w) * 16 + v] =
                mul(cc, reduce(0, v << (4 * w)));
        }
    }
    return table;
}

ConstMultiplier::ConstMultiplier(const FieldOps& ops, std::uint64_t c) {
    if (!ops.single_word()) {
        throw std::invalid_argument{
            "ConstMultiplier: requires a single-word field (m <= 64)"};
    }
    c_ = ops.reduce(0, c);  // canonicalise so constant() reports a field element
    windows_ = (ops.degree() + 3) / 4;
    table_ = ops.window_tables(c_);
    // Resolve the bulk region kernels once.  Byte kernels (m <= 8) run the
    // nibble shuffle directly over the u64 layout: canonical elements keep
    // their top seven bytes zero and table[0] == 0 maps them to zero.
    const bulk::Dispatch& d = bulk::dispatch();
    if (ops.degree() <= 8) {
        nibbles_ = ops.nibble_tables(c_);
        if (d.byte->kind != bulk::KernelKind::Scalar) {
            byte_kernel_ = d.byte;
        }
    } else if (d.word != nullptr && ops.fold_bound() <= bulk::kMaxWideFolds) {
        word_kernel_ = d.word;
        wide_ = ops.wide_params(c_);
    }
}

void ConstMultiplier::mul_region(std::span<std::uint64_t> data) const noexcept {
    if (byte_kernel_ != nullptr) {
        byte_kernel_->mul(nibbles_,
                          reinterpret_cast<const std::uint8_t*>(data.data()),
                          reinterpret_cast<std::uint8_t*>(data.data()),
                          data.size() * sizeof(std::uint64_t));
        return;
    }
    if (word_kernel_ != nullptr) {
        word_kernel_->mul(wide_, data.data(), data.data(), data.size());
        return;
    }
    bulk::word_mul_windows(table_.data(), windows_, data.data(), data.data(),
                           data.size());
}

void ConstMultiplier::mul_region(std::span<const std::uint64_t> in,
                                 std::span<std::uint64_t> out) const {
    if (in.size() != out.size()) {
        throw std::invalid_argument{"ConstMultiplier::mul_region: span length mismatch"};
    }
    if (byte_kernel_ != nullptr) {
        byte_kernel_->mul(nibbles_,
                          reinterpret_cast<const std::uint8_t*>(in.data()),
                          reinterpret_cast<std::uint8_t*>(out.data()),
                          in.size() * sizeof(std::uint64_t));
        return;
    }
    if (word_kernel_ != nullptr) {
        word_kernel_->mul(wide_, in.data(), out.data(), in.size());
        return;
    }
    bulk::word_mul_windows(table_.data(), windows_, in.data(), out.data(),
                           in.size());
}

}  // namespace gfr::field
