#include "netlist/clone.h"

#include <string>
#include <vector>

namespace gfr::netlist {

Netlist clone_netlist(const Netlist& src, const CloneOptions& options,
                      const GateHook& gate_hook, const OutputHook& output_hook) {
    Netlist dst;
    std::vector<NodeId> map(src.node_count(), kInvalidNode);
    std::vector<std::string> input_name(src.node_count());
    for (const auto& port : src.inputs()) {
        input_name[port.node] = port.name;
    }
    for (NodeId id = 0; id < src.node_count(); ++id) {
        const auto& node = src.node(id);
        switch (node.kind) {  // protected marks carried over after the switch
            case GateKind::Input:
                map[id] = dst.add_input(input_name[id]);
                break;
            case GateKind::Const0:
                // A netlist holds at most one Const0 node, so const0() in
                // the destination appends exactly one node here and the
                // verbatim mode's 1:1 id map holds for it too.
                map[id] = dst.const0();
                break;
            case GateKind::And2:
            case GateKind::Xor2: {
                auto kind = node.kind;
                auto a = node.a;
                auto b = node.b;
                if (gate_hook) {
                    gate_hook(id, kind, a, b);
                }
                const NodeId fa = map[a];
                const NodeId fb = map[b];
                if (options.intern) {
                    map[id] = (kind == GateKind::And2) ? dst.make_and(fa, fb)
                                                       : dst.make_xor(fa, fb);
                } else {
                    map[id] = (kind == GateKind::And2)
                                  ? dst.make_and_fresh(fa, fb)
                                  : dst.make_xor_fresh(fa, fb);
                }
                break;
            }
        }
        // Preserve protected marks: fault campaigns clone CED-guarded
        // netlists, and an optimization pass running on the clone must see
        // the same frozen checker logic the original carried.  (In interned
        // mode the mark lands on whatever node the gate merged into — the
        // conservative direction.)
        if (src.is_protected(id) && map[id] != kInvalidNode) {
            dst.set_protected(map[id]);
        }
    }
    std::vector<NodeId> mapped_outputs;
    mapped_outputs.reserve(src.outputs().size());
    for (const auto& port : src.outputs()) {
        mapped_outputs.push_back(map[port.node]);
    }
    for (std::size_t o = 0; o < src.outputs().size(); ++o) {
        NodeId node = mapped_outputs[o];
        if (output_hook) {
            node = output_hook(o, mapped_outputs, dst);
        }
        dst.add_output(src.outputs()[o].name, node);
    }
    return dst;
}

}  // namespace gfr::netlist
