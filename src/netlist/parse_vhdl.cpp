#include "netlist/parse_vhdl.h"

#include <cctype>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gfr::netlist {

namespace {

std::string trim(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
        ++b;
    }
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
        --e;
    }
    return s.substr(b, e - b);
}

std::vector<std::string> tokens(const std::string& s) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])) != 0) {
            ++i;
        }
        std::size_t j = i;
        while (j < s.size() &&
               std::isspace(static_cast<unsigned char>(s[j])) == 0) {
            ++j;
        }
        if (j > i) {
            out.push_back(s.substr(i, j - i));
        }
        i = j;
    }
    return out;
}

[[noreturn]] void fail(int line, const std::string& why) {
    throw std::invalid_argument{"parse_vhdl: line " + std::to_string(line) +
                                ": " + why};
}

}  // namespace

Netlist parse_vhdl(const std::string& text) {
    Netlist nl;
    // name -> driving node.  Inputs land here at declaration, everything else
    // at its (single) assignment; emit_vhdl orders gates by id, so operands
    // are always defined before use.
    std::unordered_map<std::string, NodeId> driver;
    std::vector<std::string> output_names;  // declaration order
    std::unordered_set<std::string> output_set;

    const auto lookup = [&](const std::string& name, int line) -> NodeId {
        const auto it = driver.find(name);
        if (it == driver.end()) {
            fail(line, "undefined signal '" + name + "'");
        }
        return it->second;
    };

    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl_pos = text.find('\n', pos);
        const std::string raw =
            text.substr(pos, nl_pos == std::string::npos ? std::string::npos
                                                         : nl_pos - pos);
        pos = nl_pos == std::string::npos ? text.size() + 1 : nl_pos + 1;
        ++line_no;
        const std::string line = trim(raw);
        if (line.empty()) {
            continue;
        }

        const std::size_t assign = line.find("<=");
        if (assign != std::string::npos) {
            const std::string lhs = trim(line.substr(0, assign));
            std::string rhs = trim(line.substr(assign + 2));
            if (rhs.empty() || rhs.back() != ';') {
                fail(line_no, "assignment does not end in ';'");
            }
            rhs = trim(rhs.substr(0, rhs.size() - 1));
            if (lhs.empty() || tokens(lhs).size() != 1) {
                fail(line_no, "malformed assignment target");
            }
            if (driver.count(lhs) != 0) {
                fail(line_no, "signal '" + lhs + "' driven twice");
            }
            const std::vector<std::string> rt = tokens(rhs);
            NodeId node = kInvalidNode;
            if (rt.size() == 1 && rt[0] == "'0'") {
                node = nl.const0();
            } else if (rt.size() == 1) {
                node = lookup(rt[0], line_no);
            } else if (rt.size() == 3 && rt[1] == "and") {
                node = nl.make_and_fresh(lookup(rt[0], line_no),
                                         lookup(rt[2], line_no));
            } else if (rt.size() == 3 && rt[1] == "xor") {
                node = nl.make_xor_fresh(lookup(rt[0], line_no),
                                         lookup(rt[2], line_no));
            } else {
                fail(line_no, "unsupported expression '" + rhs +
                                  "' (expected and/xor/'0'/copy)");
            }
            driver.emplace(lhs, node);
            continue;
        }

        const std::size_t colon = line.find(':');
        if (colon != std::string::npos) {
            const std::vector<std::string> before = tokens(line.substr(0, colon));
            const std::vector<std::string> after = tokens(line.substr(colon + 1));
            if (before.size() != 1 || after.empty()) {
                continue;  // not a port/signal declaration (e.g. "end ...;")
            }
            const std::string& name = before[0];
            if (after[0] == "in") {
                if (driver.count(name) != 0) {
                    fail(line_no, "duplicate declaration of '" + name + "'");
                }
                driver.emplace(name, nl.add_input(name));
            } else if (after[0] == "out") {
                if (!output_set.insert(name).second) {
                    fail(line_no, "duplicate declaration of '" + name + "'");
                }
                output_names.push_back(name);
            }
            // anything else (signal declarations) carries no connectivity
            continue;
        }
        // library/use/entity/architecture/begin/end scaffolding: ignored.
    }

    if (output_names.empty()) {
        fail(line_no, "no output ports declared");
    }
    for (const std::string& name : output_names) {
        const auto it = driver.find(name);
        if (it == driver.end()) {
            fail(line_no, "output '" + name + "' has no driver");
        }
        nl.add_output(name, it->second);
    }
    return nl;
}

}  // namespace gfr::netlist
