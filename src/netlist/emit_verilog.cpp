#include "netlist/emit_verilog.h"

#include <stdexcept>

namespace gfr::netlist {

namespace {

std::string sanitize(const std::string& name) {
    std::string out;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    if (out.empty() || !((out[0] >= 'a' && out[0] <= 'z') || (out[0] >= 'A' && out[0] <= 'Z') ||
                         out[0] == '_')) {
        out = "p" + out;
    }
    return out;
}

}  // namespace

std::string emit_verilog(const Netlist& nl, const std::string& module_name) {
    if (nl.outputs().empty()) {
        throw std::invalid_argument{"emit_verilog: netlist has no outputs"};
    }
    const auto reachable = nl.reachable_from_outputs();
    const std::string module = sanitize(module_name);

    std::string out = "module " + module + " (\n";
    for (const auto& port : nl.inputs()) {
        out += "  input  wire " + sanitize(port.name) + ",\n";
    }
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
        out += "  output wire " + sanitize(nl.outputs()[i].name);
        out += (i + 1 < nl.outputs().size()) ? ",\n" : "\n";
    }
    out += ");\n";

    std::vector<std::string> wire(nl.node_count());
    for (const auto& port : nl.inputs()) {
        wire[port.node] = sanitize(port.name);
    }
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        if (!reachable[id]) {
            continue;
        }
        const Node& n = nl.node(id);
        if (n.kind == GateKind::And2 || n.kind == GateKind::Xor2 ||
            n.kind == GateKind::Const0) {
            wire[id] = "n" + std::to_string(id);
            out += "  wire " + wire[id] + ";\n";
        }
    }
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        if (!reachable[id]) {
            continue;
        }
        const Node& n = nl.node(id);
        switch (n.kind) {
            case GateKind::Input:
                break;
            case GateKind::Const0:
                out += "  assign " + wire[id] + " = 1'b0;\n";
                break;
            case GateKind::And2:
                out += "  assign " + wire[id] + " = " + wire[n.a] + " & " + wire[n.b] + ";\n";
                break;
            case GateKind::Xor2:
                out += "  assign " + wire[id] + " = " + wire[n.a] + " ^ " + wire[n.b] + ";\n";
                break;
        }
    }
    for (const auto& port : nl.outputs()) {
        out += "  assign " + sanitize(port.name) + " = " + wire[port.node] + ";\n";
    }
    out += "endmodule\n";
    return out;
}

}  // namespace gfr::netlist
