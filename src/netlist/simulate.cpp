#include "netlist/simulate.h"

#include <stdexcept>

namespace gfr::netlist {

std::vector<std::uint64_t> Simulator::run(std::span<const std::uint64_t> input_words) {
    std::vector<std::uint64_t> out;
    run_into(input_words, out);
    return out;
}

const exec::Program& Simulator::program() {
    if (!program_.has_value()) {
        program_ = exec::Program::compile(*nl_);
    }
    return *program_;
}

void Simulator::run_into(std::span<const std::uint64_t> input_words,
                         std::vector<std::uint64_t>& out_words) {
    if (input_words.size() != nl_->inputs().size()) {
        throw std::invalid_argument{"Simulator::run: wrong number of input words"};
    }
    const exec::Program& prog = program();
    out_words.resize(nl_->outputs().size());
    prog.run(input_words, out_words, scratch_);
}

std::vector<std::uint64_t> simulate(const Netlist& nl,
                                    std::span<const std::uint64_t> input_words) {
    Simulator sim{nl};
    return sim.run(input_words);
}

std::vector<std::uint64_t> simulate_interpreted(
    const Netlist& nl, std::span<const std::uint64_t> input_words) {
    if (input_words.size() != nl.inputs().size()) {
        throw std::invalid_argument{
            "simulate_interpreted: wrong number of input words"};
    }
    std::vector<std::uint64_t> values(nl.node_count(), 0);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        values[nl.inputs()[i].node] = input_words[i];
    }
    // Node ids are topologically ordered by construction.
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        const Node& n = nl.node(id);
        switch (n.kind) {
            case GateKind::Input:
            case GateKind::Const0:
                break;
            case GateKind::And2:
                values[id] = values[n.a] & values[n.b];
                break;
            case GateKind::Xor2:
                values[id] = values[n.a] ^ values[n.b];
                break;
        }
    }
    std::vector<std::uint64_t> out(nl.outputs().size());
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
        out[o] = values[nl.outputs()[o].node];
    }
    return out;
}

}  // namespace gfr::netlist
