#ifndef GFR_NETLIST_EMIT_VHDL_H
#define GFR_NETLIST_EMIT_VHDL_H

// Structural VHDL emission.  This is the artefact the paper's flow starts
// from ("The design entry has been behavioral VHDL"): one concurrent signal
// assignment per gate, ports named after the netlist's inputs/outputs.

#include "netlist/netlist.h"

#include <string>

namespace gfr::netlist {

/// Render the reachable logic of `nl` as a synthesisable VHDL entity.
/// Port and signal names are sanitised to VHDL identifiers.
std::string emit_vhdl(const Netlist& nl, const std::string& entity_name);

}  // namespace gfr::netlist

#endif  // GFR_NETLIST_EMIT_VHDL_H
