#ifndef GFR_NETLIST_EQUIVALENCE_H
#define GFR_NETLIST_EQUIVALENCE_H

// Combinational equivalence checking between two netlists.
//
// Netlists are compared on matching input/output *names* (order may differ).
// For small input counts the check is exhaustive (64 assignments per
// simulation sweep); beyond the threshold it falls back to dense random
// vectors.  Random simulation over tens of thousands of lanes is a strong
// filter for XOR/AND logic of this shape: any single wrong product term
// flips ~half of all lanes.
//
// Both netlists compile once into exec::Program tapes; every sweep executes
// the compiled tapes, and exhaustive regimes batch up to four enumeration
// blocks (256 assignments) into one bitsliced pass.  The sweep space runs
// through verify::Campaign: shards across worker threads (each owning only
// execution scratch over the shared immutable tapes), per-sweep seed
// derivation in the random regime, and globally-first-mismatch reporting,
// so verdict and counterexample are identical at any thread count.

#include "netlist/netlist.h"

#include <cstdint>
#include <optional>
#include <string>

namespace gfr::netlist {

/// A concrete counterexample: input assignment plus the differing output.
///
/// input_bits is indexed like lhs.inputs() — NOT like rhs.inputs(), whose
/// declaration order may differ.  input_names carries the matching lhs input
/// names so the assignment is unambiguous however the ports are ordered;
/// to_string() prints name=value pairs.
struct Mismatch {
    std::vector<std::uint8_t> input_bits;  // indexed like lhs.inputs()
    std::vector<std::string> input_names;  // lhs.inputs() names, same indexing
    std::string output_name;
    bool lhs_value = false;
    bool rhs_value = false;

    /// Reproduction coordinates: the campaign seed and the failing sweep
    /// index.  Filled by check_equivalence; to_string() renders them as a
    /// one-line repro recipe (random regime: the per-sweep PRNG seed via
    /// Campaign::derive_sweep_seed is printed too, since that plus the
    /// sweep index pins the exact vectors forever).
    std::uint64_t campaign_seed = 0;
    std::uint64_t sweep_index = ~std::uint64_t{0};  ///< ~0 = not recorded
    bool random_regime = false;

    [[nodiscard]] std::string to_string() const;
};

struct EquivalenceOptions {
    int max_exhaustive_inputs = 22;   ///< exhaustive up to 2^22 assignments
    int random_sweeps = 256;          ///< 64 lanes per sweep when random
    std::uint64_t seed = 0x5eed5eedULL;
    int threads = 0;  ///< campaign workers; <= 0 = hardware concurrency
};

/// Returns std::nullopt when equivalent (under the chosen regime), or the
/// first mismatch found.  Throws std::invalid_argument when the interfaces
/// (input/output name sets) do not match.
std::optional<Mismatch> check_equivalence(const Netlist& lhs, const Netlist& rhs,
                                          const EquivalenceOptions& options = {});

}  // namespace gfr::netlist

#endif  // GFR_NETLIST_EQUIVALENCE_H
