#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace gfr::netlist {

std::string NetlistStats::delay_string() const {
    std::string out;
    if (and_depth > 0) {
        out += (and_depth == 1) ? "T_A" : std::to_string(and_depth) + "T_A";
    }
    if (xor_depth > 0) {
        if (!out.empty()) {
            out += " + ";
        }
        out += (xor_depth == 1) ? "T_X" : std::to_string(xor_depth) + "T_X";
    }
    return out.empty() ? "0" : out;
}

void Netlist::check_capacity() const {
    if (nodes_.size() + 1 >= kMaxNodes) {
        throw std::length_error{"Netlist: node count limit reached (2^32 - 1)"};
    }
}

NodeId Netlist::add_input(std::string name) {
    if (input_index(name) >= 0) {
        throw std::invalid_argument{"Netlist::add_input: duplicate input name " + name};
    }
    check_capacity();
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{GateKind::Input, kInvalidNode, kInvalidNode});
    input_index_by_name_.emplace(name, static_cast<int>(inputs_.size()));
    inputs_.push_back(Port{std::move(name), id});
    return id;
}

NodeId Netlist::const0() {
    if (const0_ == kInvalidNode) {
        check_capacity();
        const0_ = static_cast<NodeId>(nodes_.size());
        nodes_.push_back(Node{GateKind::Const0, kInvalidNode, kInvalidNode});
    }
    return const0_;
}

NodeId Netlist::intern(GateKind kind, NodeId a, NodeId b) {
    if (a > b) {
        std::swap(a, b);  // commutative gates get canonical fanin order
    }
    if (!structural_sharing_) {
        check_capacity();
        const NodeId id = static_cast<NodeId>(nodes_.size());
        nodes_.push_back(Node{kind, a, b});
        return id;  // literal elaboration: never merged, never probed
    }
    const detail::StructuralKey key{static_cast<std::uint8_t>(kind), a, b};
    const auto it = structural_hash_.find(key);
    if (it != structural_hash_.end()) {
        return it->second;
    }
    check_capacity();
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{kind, a, b});
    structural_hash_.emplace(key, id);
    return id;
}

NodeId Netlist::find_gate(GateKind kind, NodeId a, NodeId b) const {
    if (a > b) {
        std::swap(a, b);
    }
    const detail::StructuralKey key{static_cast<std::uint8_t>(kind), a, b};
    const auto it = structural_hash_.find(key);
    return it != structural_hash_.end() ? it->second : kInvalidNode;
}

void Netlist::set_protected(NodeId id) {
    if (id >= nodes_.size()) {
        throw std::out_of_range{"Netlist::set_protected: node id out of range"};
    }
    if (protected_.size() < nodes_.size()) {
        protected_.resize(nodes_.size(), 0);
    }
    if (protected_[id] == 0) {
        protected_[id] = 1;
        ++protected_count_;
    }
}

NodeId Netlist::make_and(NodeId a, NodeId b) {
    if (a >= nodes_.size() || b >= nodes_.size()) {
        throw std::out_of_range{"Netlist::make_and: fanin id out of range"};
    }
    if (a == b) {
        return a;  // x & x = x
    }
    if ((const0_ != kInvalidNode) && (a == const0_ || b == const0_)) {
        return const0();  // x & 0 = 0
    }
    return intern(GateKind::And2, a, b);
}

NodeId Netlist::make_xor(NodeId a, NodeId b) {
    if (a >= nodes_.size() || b >= nodes_.size()) {
        throw std::out_of_range{"Netlist::make_xor: fanin id out of range"};
    }
    if (a == b) {
        return const0();  // x ^ x = 0
    }
    if (const0_ != kInvalidNode) {
        if (a == const0_) {
            return b;  // 0 ^ x = x
        }
        if (b == const0_) {
            return a;
        }
    }
    return intern(GateKind::Xor2, a, b);
}

NodeId Netlist::make_and_fresh(NodeId a, NodeId b) {
    if (a >= nodes_.size() || b >= nodes_.size()) {
        throw std::out_of_range{"Netlist::make_and_fresh: fanin id out of range"};
    }
    check_capacity();
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{GateKind::And2, a, b});
    return id;
}

NodeId Netlist::make_xor_fresh(NodeId a, NodeId b) {
    if (a >= nodes_.size() || b >= nodes_.size()) {
        throw std::out_of_range{"Netlist::make_xor_fresh: fanin id out of range"};
    }
    check_capacity();
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{GateKind::Xor2, a, b});
    return id;
}

NodeId Netlist::make_xor_tree(std::span<const NodeId> leaves, TreeShape shape) {
    if (leaves.empty()) {
        return const0();
    }
    std::vector<NodeId> level(leaves.begin(), leaves.end());
    if (shape == TreeShape::Chain) {
        NodeId acc = level[0];
        for (std::size_t i = 1; i < level.size(); ++i) {
            acc = make_xor(acc, level[i]);
        }
        return acc;
    }
    // Balanced: repeatedly pair adjacent elements; an odd tail carries over,
    // which keeps the tree complete whenever the leaf count is a power of two.
    while (level.size() > 1) {
        std::vector<NodeId> next;
        next.reserve((level.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            next.push_back(make_xor(level[i], level[i + 1]));
        }
        if (level.size() % 2 == 1) {
            next.push_back(level.back());
        }
        level = std::move(next);
    }
    return level[0];
}

void Netlist::add_output(std::string name, NodeId node) {
    if (node >= nodes_.size()) {
        throw std::out_of_range{"Netlist::add_output: node id out of range"};
    }
    outputs_.push_back(Port{std::move(name), node});
}

int Netlist::input_index(const std::string& name) const {
    const auto it = input_index_by_name_.find(name);
    return it != input_index_by_name_.end() ? it->second : -1;
}

int Netlist::output_index(const std::string& name) const {
    for (std::size_t i = 0; i < outputs_.size(); ++i) {
        if (outputs_[i].name == name) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

std::vector<bool> Netlist::reachable_from_outputs() const {
    std::vector<bool> seen(nodes_.size(), false);
    std::vector<NodeId> stack;
    for (const auto& out : outputs_) {
        if (!seen[out.node]) {
            seen[out.node] = true;
            stack.push_back(out.node);
        }
    }
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        const Node& n = nodes_[id];
        for (const NodeId fi : {n.a, n.b}) {
            if (fi != kInvalidNode && !seen[fi]) {
                seen[fi] = true;
                stack.push_back(fi);
            }
        }
    }
    return seen;
}

std::vector<int> Netlist::fanout_counts() const {
    const auto seen = reachable_from_outputs();
    std::vector<int> fanout(nodes_.size(), 0);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (!seen[id]) {
            continue;
        }
        const Node& n = nodes_[id];
        if (n.a != kInvalidNode) {
            ++fanout[n.a];
        }
        if (n.b != kInvalidNode) {
            ++fanout[n.b];
        }
    }
    for (const auto& out : outputs_) {
        ++fanout[out.node];
    }
    return fanout;
}

NetlistStats Netlist::stats() const {
    const auto seen = reachable_from_outputs();
    NetlistStats s;
    s.n_inputs = static_cast<std::int64_t>(inputs_.size());
    s.n_outputs = static_cast<std::int64_t>(outputs_.size());
    std::vector<std::int64_t> and_depth(nodes_.size(), 0);
    std::vector<std::int64_t> xor_depth(nodes_.size(), 0);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (!seen[id]) {
            continue;
        }
        const Node& n = nodes_[id];
        switch (n.kind) {
            case GateKind::Input:
            case GateKind::Const0:
                break;
            case GateKind::And2:
                ++s.n_and;
                and_depth[id] = 1 + std::max(and_depth[n.a], and_depth[n.b]);
                xor_depth[id] = std::max(xor_depth[n.a], xor_depth[n.b]);
                break;
            case GateKind::Xor2:
                ++s.n_xor;
                and_depth[id] = std::max(and_depth[n.a], and_depth[n.b]);
                xor_depth[id] = 1 + std::max(xor_depth[n.a], xor_depth[n.b]);
                break;
        }
        s.and_depth = std::max(s.and_depth, and_depth[id]);
        s.xor_depth = std::max(s.xor_depth, xor_depth[id]);
    }
    return s;
}

}  // namespace gfr::netlist
