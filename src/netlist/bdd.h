#ifndef GFR_NETLIST_BDD_H
#define GFR_NETLIST_BDD_H

// Reduced Ordered Binary Decision Diagrams (ROBDD), Bryant 1986 style, with
// hash-consed nodes and a computed-table-cached apply.  Canonical form makes
// equivalence a pointer comparison, so this gives *formal* combinational
// equivalence for netlists whose BDDs stay tractable — a complete complement
// to the simulation-based checker in equivalence.h.  XOR-dominated
// multiplier logic has well-behaved BDDs at the GF(2^8) scale (16 inputs),
// which is exactly the exhaustive regime of the paper's worked example.

#include "netlist/equivalence.h"
#include "netlist/netlist.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace gfr::netlist {

/// A BDD manager owning all nodes.  Node references are indices; 0 and 1 are
/// the terminal constants.  Variables are ordered by their index (smaller
/// index = closer to the root).
class BddManager {
public:
    using Ref = std::uint32_t;
    static constexpr Ref kFalse = 0;
    static constexpr Ref kTrue = 1;

    /// Manager for `n_vars` input variables.  Throws on negative counts.
    explicit BddManager(int n_vars);

    [[nodiscard]] int var_count() const noexcept { return n_vars_; }
    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

    /// The function of a single variable.
    [[nodiscard]] Ref var(int v);

    [[nodiscard]] Ref bdd_and(Ref a, Ref b);
    [[nodiscard]] Ref bdd_xor(Ref a, Ref b);
    [[nodiscard]] Ref bdd_not(Ref a);

    /// Canonical form: equivalence is reference equality.
    [[nodiscard]] static bool same(Ref a, Ref b) noexcept { return a == b; }

    /// Evaluate under a full assignment (bit v of `assignment` drives
    /// variable v).
    [[nodiscard]] bool evaluate(Ref f, std::uint64_t assignment) const;

    /// A satisfying assignment of f, or nullopt when f == false.
    [[nodiscard]] std::optional<std::uint64_t> any_sat(Ref f) const;

    /// Number of satisfying assignments over all var_count() variables.
    [[nodiscard]] double sat_count(Ref f) const;

    /// Nodes reachable from f (the BDD's size, excluding terminals).
    [[nodiscard]] std::size_t size(Ref f) const;

private:
    struct Node {
        int var;   // terminals use n_vars_
        Ref lo;
        Ref hi;
    };

    Ref make_node(int var, Ref lo, Ref hi);

    enum class Op : std::uint8_t { And, Xor };
    Ref apply(Op op, Ref a, Ref b);

    int n_vars_ = 0;
    std::vector<Node> nodes_;
    // Unique table: (var, lo, hi) -> ref; computed table: (op, a, b) -> ref.
    std::unordered_map<std::uint64_t, Ref> unique_;
    std::unordered_map<std::uint64_t, Ref> computed_;
};

/// Build the BDDs of every output of `nl` (inputs map to variables in
/// inputs() order).  Requires nl.inputs().size() <= 64.
std::vector<BddManager::Ref> build_output_bdds(BddManager& mgr, const Netlist& nl);

/// Formal equivalence via canonical BDDs: nullopt when equivalent, otherwise
/// a counterexample assignment (mapped like Mismatch in equivalence.h).
/// Interfaces are matched by name, as in check_equivalence.
std::optional<Mismatch> check_equivalence_bdd(const Netlist& lhs, const Netlist& rhs);

}  // namespace gfr::netlist

#endif  // GFR_NETLIST_BDD_H
