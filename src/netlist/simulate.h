#ifndef GFR_NETLIST_SIMULATE_H
#define GFR_NETLIST_SIMULATE_H

// Word-parallel netlist simulation: each std::uint64_t carries 64 independent
// input assignments ("lanes"), so one sweep evaluates 64 test vectors at
// once.  This is the workhorse behind equivalence checking and the
// multiplier verification in src/multipliers/verify.h.
//
// Since PR 4 the Simulator is a thin wrapper over the compiled execution
// layer (exec::Program): the first run() compiles the netlist into a DCE'd,
// liveness-scheduled instruction tape (cached for the Simulator's lifetime)
// and every sweep executes that tape instead of re-interpreting the node
// vector.  The node-by-node reference interpreter survives as
// simulate_interpreted() — structurally independent of the compiler, it is
// the differential anchor the exec tests compare the tape against.

#include "exec/program.h"
#include "netlist/netlist.h"

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

namespace gfr::netlist {

/// Reusable simulator.  Construction precomputes nothing; the first run
/// compiles the netlist once (compile-per-instance, so a mutated clone never
/// inherits a stale tape) and later runs reuse tape and scratch.
class Simulator {
public:
    explicit Simulator(const Netlist& nl) : nl_{&nl} {}

    /// Evaluate all outputs for 64 lanes.  input_words[i] is the 64-lane
    /// value of input i (in inputs() order).  Returns one word per output.
    std::vector<std::uint64_t> run(std::span<const std::uint64_t> input_words);

    /// Allocation-free variant: writes one word per output into out_words,
    /// resizing it only on first use.  Sweep loops (verification,
    /// equivalence) should hold one Simulator and one output buffer and call
    /// this instead of run().
    void run_into(std::span<const std::uint64_t> input_words,
                  std::vector<std::uint64_t>& out_words);

    /// The compiled tape, compiling it on first use.  Callers that manage
    /// their own scratch (campaign workers) execute this directly.
    const exec::Program& program();

private:
    const Netlist* nl_;
    std::optional<exec::Program> program_;
    exec::Program::Scratch scratch_;
};

/// One-shot convenience wrapper around Simulator::run.
std::vector<std::uint64_t> simulate(const Netlist& nl,
                                    std::span<const std::uint64_t> input_words);

/// Reference interpreter: evaluates the node vector gate by gate, exactly
/// the pre-compile simulation semantics.  Slow path, shared by differential
/// tests (compiled tape vs interpreter) and frozen benchmark baselines; it
/// deliberately shares no code with exec::Program.
std::vector<std::uint64_t> simulate_interpreted(
    const Netlist& nl, std::span<const std::uint64_t> input_words);

/// Input pattern words for exhaustive simulation.  Block `block` of the
/// enumeration assigns lanes 0..63 the assignments with index
/// 64*block .. 64*block+63, where assignment bit i drives input i.
/// (Inputs 0..5 cycle within a word; inputs >= 6 are constant per block.)
/// Inline: exhaustive campaigns call this 2m times per 64-lane block, so
/// the fill loop must compile down to stores, not cross-TU calls.
inline std::uint64_t exhaustive_pattern(int input_index, std::uint64_t block) {
    // The six in-word variables use the classic truth-table masks.
    constexpr std::uint64_t kMasks[6] = {
        0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
        0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};
    if (input_index < 0) {
        throw std::invalid_argument{"exhaustive_pattern: negative input index"};
    }
    if (input_index < 6) {
        return kMasks[input_index];
    }
    return ((block >> (input_index - 6)) & 1U) ? ~std::uint64_t{0} : 0;
}

}  // namespace gfr::netlist

#endif  // GFR_NETLIST_SIMULATE_H
