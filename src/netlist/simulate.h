#ifndef GFR_NETLIST_SIMULATE_H
#define GFR_NETLIST_SIMULATE_H

// Word-parallel netlist simulation: each std::uint64_t carries 64 independent
// input assignments ("lanes"), so one topological sweep evaluates 64 test
// vectors at once.  This is the workhorse behind equivalence checking and
// the multiplier verification in src/multipliers/verify.h.

#include "netlist/netlist.h"

#include <cstdint>
#include <span>
#include <vector>

namespace gfr::netlist {

/// Reusable simulator; construction precomputes nothing heavy, but keeping
/// one instance alive reuses the value buffer across calls.
class Simulator {
public:
    explicit Simulator(const Netlist& nl) : nl_{&nl} {}

    /// Evaluate all outputs for 64 lanes.  input_words[i] is the 64-lane
    /// value of input i (in inputs() order).  Returns one word per output.
    std::vector<std::uint64_t> run(std::span<const std::uint64_t> input_words);

    /// Allocation-free variant: writes one word per output into out_words,
    /// resizing it only on first use.  Sweep loops (verification,
    /// equivalence) should hold one Simulator and one output buffer and call
    /// this instead of run().
    void run_into(std::span<const std::uint64_t> input_words,
                  std::vector<std::uint64_t>& out_words);

private:
    const Netlist* nl_;
    std::vector<std::uint64_t> values_;
};

/// One-shot convenience wrapper around Simulator::run.
std::vector<std::uint64_t> simulate(const Netlist& nl,
                                    std::span<const std::uint64_t> input_words);

/// Input pattern words for exhaustive simulation.  Block `block` of the
/// enumeration assigns lanes 0..63 the assignments with index
/// 64*block .. 64*block+63, where assignment bit i drives input i.
/// (Inputs 0..5 cycle within a word; inputs >= 6 are constant per block.)
std::uint64_t exhaustive_pattern(int input_index, std::uint64_t block);

}  // namespace gfr::netlist

#endif  // GFR_NETLIST_SIMULATE_H
