#include "netlist/emit_dot.h"

#include <stdexcept>

namespace gfr::netlist {

std::string emit_dot(const Netlist& nl, const std::string& graph_name) {
    if (nl.outputs().empty()) {
        throw std::invalid_argument{"emit_dot: netlist has no outputs"};
    }
    const auto reachable = nl.reachable_from_outputs();
    std::string out = "digraph \"" + graph_name + "\" {\n";
    out += "  rankdir=BT;\n";
    for (const auto& port : nl.inputs()) {
        out += "  n" + std::to_string(port.node) + " [shape=box,label=\"" +
               port.name + "\"];\n";
    }
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        if (!reachable[id]) {
            continue;
        }
        const Node& n = nl.node(id);
        switch (n.kind) {
            case GateKind::Input:
                break;
            case GateKind::Const0:
                out += "  n" + std::to_string(id) + " [shape=plaintext,label=\"0\"];\n";
                break;
            case GateKind::And2:
                out += "  n" + std::to_string(id) +
                       " [shape=triangle,label=\"&\"];\n";
                break;
            case GateKind::Xor2:
                out += "  n" + std::to_string(id) + " [shape=circle,label=\"^\"];\n";
                break;
        }
        if (n.a != kInvalidNode) {
            out += "  n" + std::to_string(n.a) + " -> n" + std::to_string(id) + ";\n";
        }
        if (n.b != kInvalidNode) {
            out += "  n" + std::to_string(n.b) + " -> n" + std::to_string(id) + ";\n";
        }
    }
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
        const auto& port = nl.outputs()[o];
        out += "  out" + std::to_string(o) + " [shape=doublecircle,label=\"" +
               port.name + "\"];\n";
        out += "  n" + std::to_string(port.node) + " -> out" + std::to_string(o) +
               ";\n";
    }
    out += "}\n";
    return out;
}

}  // namespace gfr::netlist
